#!/usr/bin/env python3
"""Validate chaos-smoke runs of the serving CLIs under fault injection.

This is the tool the CI chaos-smoke job invokes after running route_server
(or sweep_cli) with --faults / a faulty: oracle spec. Three modes:

  validate <log> [--expect PREFIX ...] [--max-failed-frac F]
      Structural checks on one run's stdout: the summary lines the server
      always prints ("hops:", "admission:") are present, every --expect
      prefix ("resilience:", "adaptive:", "mutations:") found its line, no
      "error:" line leaked through, and the resilience tallies parse — at
      least one pair admitted and failed_pairs / pairs_admitted within
      --max-failed-frac (default 0.05, the >= 95% served acceptance bar).

  determinism <log_a> <log_b>
      The chaos contract: every fault draw is a pure function of
      (seed, target, attempt), so two same-seed runs must agree byte for
      byte on the deterministic summary lines — hops:, resilience:,
      adaptive:, mutations:, invalidation:. Wall-clock surfaces (sojourn
      quantiles, "admission:" peak-queue depth, service totals) are
      excluded: they measure the scheduler, not the schedule.

  jsonl-determinism <a.jsonl> <b.jsonl>
      Same contract for sweep_cli's --jsonl records: compares the two runs
      line by line after masking wall-clock keys (seconds), pinning the
      routed metrics (hop counts, greedy diameter, stretch) exactly.

Exit code: 0 when every check passes, 1 on a validation failure, 2 on
unreadable input / bad usage. Prints one line per failure so the CI log is
enough to diagnose.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

# Summary lines that are pure functions of (seed, fault schedule, demand):
# the surface two same-seed chaos runs must reproduce byte for byte.
DETERMINISTIC_PREFIXES = (
    "hops:",
    "resilience:",
    "adaptive:",
    "mutations:",
    "invalidation:",
)

# Wall-clock observations inside sweep jsonl records: masked before the
# line-by-line comparison. Everything else is pinned exactly.
MASKED_KEYS = {"seconds"}

RESILIENCE_LINE = re.compile(
    r"^resilience: (?P<injected>\d+) injected failures, (?P<retries>\d+) "
    r"retries, (?P<fallback>\d+) fallback pairs, (?P<degraded>\d+) degraded, "
    r"(?P<failed>\d+) failed, (?P<breaches>\d+) deadline breaches$"
)
ADMISSION_LINE = re.compile(r"^admission: (?P<admitted>\d+) admitted, ")


def read_lines(path: str) -> list[str]:
    try:
        return Path(path).read_text().splitlines()
    except OSError as err:
        print(f"cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)


def validate(args: argparse.Namespace) -> int:
    lines = read_lines(args.log)
    failures = []

    def require_line(prefix: str) -> str | None:
        for line in lines:
            if line.startswith(prefix):
                return line
        failures.append(f"missing '{prefix}' line")
        return None

    for line in lines:
        if line.startswith("error:"):
            failures.append(f"run reported an error: {line}")

    require_line("hops:")
    admission = require_line("admission:")
    for prefix in args.expect:
        require_line(prefix if prefix.endswith(":") else prefix + ":")

    admitted = 0
    if admission is not None:
        match = ADMISSION_LINE.match(admission)
        if match is None:
            failures.append(f"unparseable admission line: {admission}")
        else:
            admitted = int(match.group("admitted"))
            if admitted == 0:
                failures.append("no pairs admitted — the chaos run served "
                                "nothing")

    for line in lines:
        if not line.startswith("resilience:"):
            continue
        match = RESILIENCE_LINE.match(line)
        if match is None:
            failures.append(f"unparseable resilience line: {line}")
            break
        failed = int(match.group("failed"))
        if admitted > 0 and failed > args.max_failed_frac * admitted:
            failures.append(
                f"{failed} failed pairs of {admitted} admitted exceeds the "
                f"{args.max_failed_frac:.0%} budget")
        break

    for failure in failures:
        print(f"FAIL [{args.log}]: {failure}", file=sys.stderr)
    if not failures:
        print(f"ok: {args.log} passes chaos validation "
              f"(expected: {', '.join(args.expect) or 'base lines only'})")
    return 1 if failures else 0


def deterministic_lines(path: str) -> list[str]:
    return [line for line in read_lines(path)
            if line.startswith(DETERMINISTIC_PREFIXES)]


def determinism(args: argparse.Namespace) -> int:
    a, b = deterministic_lines(args.log_a), deterministic_lines(args.log_b)
    if not a:
        print(f"FAIL: {args.log_a} has no deterministic summary lines",
              file=sys.stderr)
        return 1
    if a == b:
        print(f"ok: {len(a)} deterministic lines identical across "
              f"{args.log_a} and {args.log_b}")
        return 0
    print(f"FAIL: same-seed chaos runs diverged "
          f"({args.log_a} vs {args.log_b})", file=sys.stderr)
    for i in range(max(len(a), len(b))):
        want = a[i] if i < len(a) else "<missing>"
        got = b[i] if i < len(b) else "<missing>"
        if want != got:
            print(f"  run a: {want}\n  run b: {got}", file=sys.stderr)
    return 1


def masked_records(path: str) -> list[str]:
    records = []
    for i, raw in enumerate(read_lines(path), start=1):
        if not raw.strip():
            continue
        try:
            record = json.loads(raw)
        except json.JSONDecodeError as err:
            print(f"{path}:{i}: not JSON: {err}", file=sys.stderr)
            sys.exit(2)
        for key in MASKED_KEYS & record.keys():
            record[key] = 0
        records.append(json.dumps(record, sort_keys=True))
    return records


def jsonl_determinism(args: argparse.Namespace) -> int:
    a, b = masked_records(args.jsonl_a), masked_records(args.jsonl_b)
    if not a:
        print(f"FAIL: {args.jsonl_a} holds no records", file=sys.stderr)
        return 1
    if a == b:
        print(f"ok: {len(a)} masked jsonl records identical across "
              f"{args.jsonl_a} and {args.jsonl_b}")
        return 0
    print(f"FAIL: same-seed sweep runs diverged "
          f"({args.jsonl_a} vs {args.jsonl_b})", file=sys.stderr)
    for i in range(max(len(a), len(b))):
        want = a[i] if i < len(a) else "<missing>"
        got = b[i] if i < len(b) else "<missing>"
        if want != got:
            print(f"  line {i + 1}:\n    run a: {want}\n    run b: {got}",
                  file=sys.stderr)
    return 1


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="mode", required=True)

    p_validate = sub.add_parser("validate", help="structural checks on a log")
    p_validate.add_argument("log")
    p_validate.add_argument("--expect", action="append", default=[],
                            metavar="PREFIX",
                            help="summary line that must be present "
                                 "(resilience, adaptive, mutations)")
    p_validate.add_argument("--max-failed-frac", type=float, default=0.05,
                            help="failed/admitted budget (default 0.05)")
    p_validate.set_defaults(run=validate)

    p_det = sub.add_parser("determinism",
                           help="same-seed runs agree on deterministic lines")
    p_det.add_argument("log_a")
    p_det.add_argument("log_b")
    p_det.set_defaults(run=determinism)

    p_jsonl = sub.add_parser("jsonl-determinism",
                             help="same-seed sweep jsonl records agree")
    p_jsonl.add_argument("jsonl_a")
    p_jsonl.add_argument("jsonl_b")
    p_jsonl.set_defaults(run=jsonl_determinism)

    args = parser.parse_args()
    return args.run(args)


if __name__ == "__main__":
    sys.exit(main())
