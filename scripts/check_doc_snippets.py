#!/usr/bin/env python3
"""Compile-check the C++ snippets embedded in the markdown docs.

Every fenced ```cpp block in README.md and docs/*.md must be a complete
translation unit: it is extracted verbatim and fed to
`$CXX -std=c++20 -fsyntax-only -I src`, so documented examples break the
build when the API they show drifts. Fragments that should not be compiled
use a plain ``` fence or another language tag.

Usage: scripts/check_doc_snippets.py [repo_root]
Exit code: 0 when every snippet compiles, 1 otherwise.
"""

import os
import pathlib
import re
import subprocess
import sys
import tempfile

FENCE = re.compile(r"^```cpp\s*$")
CLOSE = re.compile(r"^```\s*$")


def extract_snippets(path: pathlib.Path):
    """Yields (first_line_number, snippet_text) for each ```cpp block."""
    snippet, start = None, 0
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        if snippet is None:
            if FENCE.match(line):
                snippet, start = [], number + 1
        elif CLOSE.match(line):
            yield start, "\n".join(snippet) + "\n"
            snippet = None
        else:
            snippet.append(line)
    if snippet is not None:
        raise SystemExit(f"{path}: unterminated ```cpp fence at line {start}")


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    cxx = os.environ.get("CXX", "g++")
    sources = sorted([root / "README.md", *(root / "docs").glob("*.md")])

    checked = failures = 0
    for doc in sources:
        if not doc.exists():
            continue
        for line_number, snippet in extract_snippets(doc):
            checked += 1
            with tempfile.NamedTemporaryFile(
                mode="w", suffix=".cpp", delete=False
            ) as handle:
                handle.write(snippet)
                tmp = handle.name
            try:
                result = subprocess.run(
                    [cxx, "-std=c++20", "-fsyntax-only",
                     "-I", str(root / "src"), tmp],
                    capture_output=True,
                    text=True,
                )
            finally:
                os.unlink(tmp)
            where = f"{doc.relative_to(root)}:{line_number}"
            if result.returncode != 0:
                failures += 1
                print(f"FAIL {where}\n{result.stderr}", file=sys.stderr)
            else:
                print(f"ok   {where}")
    print(f"{checked} snippet(s) checked, {failures} failure(s)")
    if checked == 0:
        print("error: no ```cpp snippets found — wrong repo root?",
              file=sys.stderr)
        return 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
