#!/usr/bin/env python3
"""Render BENCH_*.json consolidated trajectories as charts.

Consumes the `nav-bench-trajectory-v1` documents the bench harness writes
under --jsonl (BENCH_e1.json ... BENCH_e12.json, BENCH_micro.json), as well
as the merged BENCH_all.json ({"merged": true, "benches": [...]}, rendered
bench by bench):

    {
      "schema": "nav-bench-trajectory-v1",
      "bench": "...", "id": "...", "quick": ...,
      "group_by": ["scheme", "workload"],
      "key_fields": ["section", "family", ...],
      "metrics": ["greedy_diameter", ...],
      "loose_metrics": ["seconds", ...],
      "cells": [ {flat jsonl row}, ... ]
    }

For every metric the script prints one ASCII bar chart per value of the
first group_by field, with one bar per value of the second. With --png and
matplotlib installed it also writes <bench>_<metric>.png; without
matplotlib the flag degrades to a warning (no hard dependency).

Usage: scripts/plot_bench.py [BENCH_all.json ...] [--metric M] [--png]
Exit code: 0 on success, 1 when no input document can be read.
"""

import argparse
import glob
import json
import pathlib
import sys

BAR_WIDTH = 46


def load_documents(paths):
    documents = []
    for path in paths:
        try:
            doc = json.loads(pathlib.Path(path).read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"warning: skipping {path}: {error}", file=sys.stderr)
            continue
        if doc.get("schema") != "nav-bench-trajectory-v1":
            print(f"warning: {path} is not a nav-bench-trajectory-v1 "
                  "document", file=sys.stderr)
            continue
        if doc.get("merged"):
            for sub in doc.get("benches", []):
                documents.append((f"{path}#{sub.get('bench')}", sub))
        else:
            documents.append((path, doc))
    return documents


def ascii_chart(title, rows):
    """Prints `rows` of (label, value) as a horizontal bar chart."""
    print(f"\n{title}")
    if not rows:
        print("  (no cells)")
        return
    label_width = max(len(label) for label, _ in rows)
    peak = max((value for _, value in rows), default=0.0)
    for label, value in rows:
        bar = "#" * (round(value / peak * BAR_WIDTH) if peak > 0 else 0)
        print(f"  {label:<{label_width}}  {value:>12.3f}  {bar}")


def plot_document(path, doc, only_metric, png):
    group_by = doc.get("group_by", [])
    metrics = doc.get("metrics", [])
    cells = doc.get("cells", [])
    outer_key = group_by[0] if group_by else None
    inner_key = group_by[1] if len(group_by) > 1 else None
    print(f"== {path}: bench={doc.get('bench')} family={doc.get('family')} "
          f"n={doc.get('n')} quick={doc.get('quick')} "
          f"({len(cells)} cells) ==")

    for metric in metrics:
        if only_metric and metric != only_metric:
            continue
        outer_values = []
        for cell in cells:
            value = cell.get(outer_key, "") if outer_key else ""
            if value not in outer_values:
                outer_values.append(value)
        for outer in outer_values:
            rows = [
                (str(cell.get(inner_key, f"cell{i}")), float(cell[metric]))
                for i, cell in enumerate(cells)
                if metric in cell
                and (not outer_key or cell.get(outer_key) == outer)
            ]
            suffix = f" [{outer_key}={outer}]" if outer_key else ""
            ascii_chart(f"{metric}{suffix}", rows)
        if png:
            save_png(doc, cells, metric, outer_key, inner_key)
    print()


def save_png(doc, cells, metric, outer_key, inner_key):
    try:
        import matplotlib  # noqa: F401  (optional dependency)
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("warning: matplotlib not available, skipping --png",
              file=sys.stderr)
        return
    fig, ax = plt.subplots(figsize=(8, 4.5))
    outers = []
    for cell in cells:
        value = cell.get(outer_key, "")
        if value not in outers:
            outers.append(value)
    for outer in outers:
        xs, ys = [], []
        for cell in cells:
            if metric in cell and cell.get(outer_key, "") == outer:
                xs.append(str(cell.get(inner_key, "")))
                ys.append(float(cell[metric]))
        ax.plot(xs, ys, marker="o", label=str(outer))
    ax.set_title(f"{doc.get('bench')} n={doc.get('n')}: {metric}")
    ax.set_ylabel(metric)
    ax.tick_params(axis="x", rotation=30)
    if outers:
        ax.legend(title=outer_key)
    out = f"{doc.get('bench')}_{metric}.png"
    fig.tight_layout()
    fig.savefig(out, dpi=120)
    plt.close(fig)
    print(f"png written: {out}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*",
                        help="trajectory documents (default: BENCH_*.json)")
    parser.add_argument("--metric", help="plot only this metric")
    parser.add_argument("--png", action="store_true",
                        help="also write PNGs (needs matplotlib)")
    args = parser.parse_args()

    paths = args.files or sorted(glob.glob("BENCH_*.json"))
    documents = load_documents(paths)
    if not documents:
        print("error: no readable nav-bench-trajectory-v1 documents "
              f"(looked at: {paths or 'BENCH_*.json'})", file=sys.stderr)
        return 1
    for path, doc in documents:
        plot_document(path, doc, args.metric, args.png)
    return 0


if __name__ == "__main__":
    sys.exit(main())
