#!/usr/bin/env python3
"""Golden-file checks for the bench binaries themselves.

Three modes, all run from ctest (see CMakeLists.txt):

  jsonl <binary> <produced-file> <golden>
      Runs `<binary> --quick --jsonl` in a scratch directory and compares
      the produced JSONL against the golden, line by line, after masking
      wall-clock-dependent fields (MASKED_KEYS set to 0). Everything else —
      field order, counts, hop/stretch quantiles, double formatting — is
      pinned byte-for-byte through a canonical re-dump.

  traj <binary> <produced-file> <golden>
      Runs `<binary> --quick --jsonl` in a scratch directory and compares
      the produced nav-bench-trajectory-v1 document (BENCH_<id>.json, the
      bench::Harness output) against the golden: header fields (schema,
      key/metric classification, group_by) and every cell are pinned after
      masking the document's own loose_metrics plus MASKED_KEYS — i.e. the
      harness's wall-clock classification drives the masking.

  list <binary> <golden>
      Runs `<binary> --benchmark_list_tests` (google-benchmark) and
      compares the output bytes exactly: the registered benchmark names and
      argument grids are the deterministic surface of a timing suite.

Pass --update as the last argument to rewrite the golden from the current
build (then read the diff in review before committing it).

Exit code: 0 on match, 1 on mismatch or execution failure.
"""

import json
import pathlib
import subprocess
import sys
import tempfile

# Wall-clock observations: masked before comparison. The demand, the routes,
# and their quantiles stay pinned.
MASKED_KEYS = {
    "seconds",
    "routes_per_sec",
    "sojourn_ms_p50",
    "sojourn_ms_p95",
    "sojourn_ms_p99",
    "peak_queued_pairs",
    "blocked_submits",
}


def canonicalise(text):
    """Masks MASKED_KEYS and re-dumps each JSONL line canonically."""
    lines = []
    for raw in text.splitlines():
        if not raw.strip():
            continue
        record = json.loads(raw)
        for key in MASKED_KEYS & record.keys():
            record[key] = 0
        lines.append(json.dumps(record, separators=(", ", ": ")))
    return lines


def canonicalise_traj(text):
    """One line per trajectory-document header field and per masked cell."""
    doc = json.loads(text)
    masked = MASKED_KEYS | set(doc.get("loose_metrics", []))
    lines = []
    for key in ("schema", "bench", "id", "quick", "group_by", "key_fields",
                "metrics", "loose_metrics"):
        lines.append(f"{key}: {json.dumps(doc.get(key))}")
    for cell in doc.get("cells", []):
        for key in masked & cell.keys():
            cell[key] = 0
        lines.append(json.dumps(cell, separators=(", ", ": ")))
    return lines


def diff_lines(produced_name, golden_path, produced, golden):
    if produced == golden:
        print(f"ok: {produced_name} matches {golden_path} "
              f"({len(produced)} lines)")
        return 0
    print(f"FAIL: {produced_name} diverges from {golden_path}",
          file=sys.stderr)
    for i in range(max(len(produced), len(golden))):
        want = golden[i] if i < len(golden) else "<missing>"
        got = produced[i] if i < len(produced) else "<missing>"
        if want != got:
            print(f"line {i + 1}:\n  golden:   {want}\n  produced: {got}",
                  file=sys.stderr)
    return 1


def run_masked(binary, produced_name, golden_path, update, canonicaliser):
    with tempfile.TemporaryDirectory() as scratch:
        result = subprocess.run(
            [str(pathlib.Path(binary).resolve()), "--quick", "--jsonl"],
            cwd=scratch, capture_output=True, text=True)
        if result.returncode != 0:
            print(f"FAIL: {binary} exited {result.returncode}\n"
                  f"{result.stderr}", file=sys.stderr)
            return 1
        produced_file = pathlib.Path(scratch) / produced_name
        if not produced_file.exists():
            print(f"FAIL: {binary} did not write {produced_name}",
                  file=sys.stderr)
            return 1
        produced = canonicaliser(produced_file.read_text())

    golden_file = pathlib.Path(golden_path)
    if update:
        golden_file.parent.mkdir(parents=True, exist_ok=True)
        golden_file.write_text("\n".join(produced) + "\n")
        print(f"updated {golden_path} ({len(produced)} lines)")
        return 0
    # jsonl goldens re-canonicalise idempotently (each line is JSON); traj
    # goldens are already the canonical line format, so compare raw lines.
    golden = (canonicalise(golden_file.read_text())
              if canonicaliser is canonicalise
              else golden_file.read_text().splitlines())
    return diff_lines(produced_name, golden_path, produced, golden)


def run_list(binary, golden_path, update):
    result = subprocess.run([binary, "--benchmark_list_tests"],
                            capture_output=True, text=True)
    if result.returncode != 0:
        print(f"FAIL: {binary} exited {result.returncode}\n{result.stderr}",
              file=sys.stderr)
        return 1
    golden_file = pathlib.Path(golden_path)
    if update:
        golden_file.parent.mkdir(parents=True, exist_ok=True)
        golden_file.write_text(result.stdout)
        print(f"updated {golden_path}")
        return 0
    if result.stdout == golden_file.read_text():
        print(f"ok: benchmark list matches {golden_path}")
        return 0
    print(f"FAIL: benchmark list diverges from {golden_path}\n"
          f"got:\n{result.stdout}", file=sys.stderr)
    return 1


def main():
    args = sys.argv[1:]
    update = "--update" in args
    if update:
        args.remove("--update")
    if len(args) == 4 and args[0] == "jsonl":
        return run_masked(args[1], args[2], args[3], update, canonicalise)
    if len(args) == 4 and args[0] == "traj":
        return run_masked(args[1], args[2], args[3], update,
                          canonicalise_traj)
    if len(args) == 3 and args[0] == "list":
        return run_list(args[1], args[2], update)
    print(__doc__, file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
