#!/usr/bin/env python3
"""Validate the observability exports the CLIs write.

This is the tool the CI obs-smoke job invokes after running route_server
(or sweep_cli) with --metrics-out / --trace-out:

    scripts/check_obs_output.py --metrics metrics.prom --trace trace.json

Checks, chosen to catch real export bugs rather than restate the writers:

  Prometheus text (--metrics):
    * every non-comment line is `name{labels} value` or `name value`, with a
      metric name matching [a-zA-Z_:][a-zA-Z0-9_:]* and a finite value;
    * every sample is preceded by a `# TYPE` comment for its family
      (histogram samples belong to the family without _bucket/_sum/_count);
    * declared types are counter|gauge|histogram only;
    * histogram families are complete: _bucket series with increasing
      cumulative counts, a `+Inf` bucket, and _sum/_count with
      count == the +Inf bucket;
    * at least --min-series samples overall (default 1) — an empty scrape
      from an instrumented binary means the registry was never wired in.

  Chrome trace JSON (--trace):
    * parses as JSON with a `traceEvents` list;
    * every event has name/ph/pid/tid/ts and, for ph=="X", a numeric
      non-negative dur;
    * timestamps are finite and non-negative;
    * at least --min-events events (default 1) — a run with tracing enabled
      must record spans, otherwise the NAV_TRACE gate or ring export broke.

Exit code: 0 when every requested check passes, 1 on a validation failure,
2 on unreadable input / bad usage. Prints one line per failure with the
offending line/event so the CI log is enough to diagnose.
"""

from __future__ import annotations

import argparse
import json
import math
import re
import sys
from pathlib import Path

METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
TYPE_LINE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) (?P<type>\S+)$"
)
VALID_TYPES = {"counter", "gauge", "histogram"}
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def family_of(sample_name: str) -> str:
    """Map a sample name to its declared family (strips histogram suffixes)."""
    for suffix in HISTOGRAM_SUFFIXES:
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def parse_label_value(labels: str, key: str) -> str | None:
    match = re.search(rf'{key}="([^"]*)"', labels or "")
    return match.group(1) if match else None


def check_prometheus(path: Path, min_series: int) -> list[str]:
    errors: list[str] = []
    declared: dict[str, str] = {}
    # family -> list of (le, cumulative_count) for histogram bucket audits.
    buckets: dict[str, list[tuple[str, float]]] = {}
    sums: dict[str, float] = {}
    counts: dict[str, float] = {}
    samples = 0

    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            if line.startswith("# TYPE"):
                match = TYPE_LINE.match(line)
                if not match:
                    errors.append(f"{path}:{lineno}: malformed TYPE line: {line}")
                    continue
                if match["type"] not in VALID_TYPES:
                    errors.append(
                        f"{path}:{lineno}: unknown metric type "
                        f"'{match['type']}' for {match['name']}"
                    )
                declared[match["name"]] = match["type"]
            continue

        match = SAMPLE_LINE.match(line)
        if not match:
            errors.append(f"{path}:{lineno}: unparseable sample line: {line}")
            continue
        samples += 1
        name = match["name"]
        try:
            value = float(match["value"])
        except ValueError:
            errors.append(f"{path}:{lineno}: non-numeric value: {line}")
            continue
        if not math.isfinite(value):
            errors.append(f"{path}:{lineno}: non-finite value: {line}")

        family = family_of(name)
        if family not in declared and name not in declared:
            errors.append(
                f"{path}:{lineno}: sample '{name}' has no preceding "
                f"# TYPE declaration"
            )
            continue
        family_type = declared.get(family, declared.get(name))
        if name.endswith("_bucket"):
            if family_type != "histogram":
                errors.append(
                    f"{path}:{lineno}: _bucket sample under non-histogram "
                    f"family '{family}'"
                )
            le = parse_label_value(match["labels"] or "", "le")
            if le is None:
                errors.append(f"{path}:{lineno}: bucket without le label: {line}")
            else:
                buckets.setdefault(family, []).append((le, value))
        elif name.endswith("_sum") and family_type == "histogram":
            sums[family] = value
        elif name.endswith("_count") and family_type == "histogram":
            counts[family] = value

    for family, series in buckets.items():
        les = [le for le, _ in series]
        values = [v for _, v in series]
        if "+Inf" not in les:
            errors.append(f"{path}: histogram '{family}' is missing a +Inf bucket")
        if any(b > a for b, a in zip(values, values[1:])):
            errors.append(
                f"{path}: histogram '{family}' bucket counts are not "
                f"cumulative: {values}"
            )
        if family not in sums:
            errors.append(f"{path}: histogram '{family}' is missing _sum")
        if family not in counts:
            errors.append(f"{path}: histogram '{family}' is missing _count")
        elif les and "+Inf" in les:
            inf_count = values[les.index("+Inf")]
            if counts[family] != inf_count:
                errors.append(
                    f"{path}: histogram '{family}' _count {counts[family]} "
                    f"!= +Inf bucket {inf_count}"
                )

    if samples < min_series:
        errors.append(
            f"{path}: only {samples} samples, expected at least {min_series} "
            f"— was the registry wired into the binary?"
        )
    return errors


def check_chrome_trace(path: Path, min_events: int) -> list[str]:
    errors: list[str] = []
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return [f"{path}: not valid JSON: {exc}"]

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: missing or non-list 'traceEvents'"]

    for i, event in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        for field in ("name", "ph", "pid", "tid", "ts"):
            if field not in event:
                errors.append(f"{where}: missing '{field}': {event}")
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            if not math.isfinite(ts) or ts < 0:
                errors.append(f"{where}: bad ts {ts}")
        elif ts is not None:
            errors.append(f"{where}: non-numeric ts {ts!r}")
        if event.get("ph") == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or not math.isfinite(dur) or dur < 0:
                errors.append(f"{where}: complete event with bad dur {dur!r}")

    if len(events) < min_events:
        errors.append(
            f"{path}: only {len(events)} trace events, expected at least "
            f"{min_events} — did --trace-out enable the tracer?"
        )
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--metrics", type=Path, help="Prometheus text file")
    parser.add_argument("--trace", type=Path, help="chrome://tracing JSON file")
    parser.add_argument("--min-series", type=int, default=1,
                        help="minimum Prometheus samples (default 1)")
    parser.add_argument("--min-events", type=int, default=1,
                        help="minimum trace events (default 1)")
    args = parser.parse_args()

    if args.metrics is None and args.trace is None:
        parser.error("nothing to check: pass --metrics and/or --trace")

    errors: list[str] = []
    for path, kind in ((args.metrics, "metrics"), (args.trace, "trace")):
        if path is not None and not path.is_file():
            print(f"error: {kind} file not found: {path}", file=sys.stderr)
            return 2
    if args.metrics is not None:
        errors += check_prometheus(args.metrics, args.min_series)
    if args.trace is not None:
        errors += check_chrome_trace(args.trace, args.min_events)

    for error in errors:
        print(f"FAIL: {error}")
    if not errors:
        checked = [str(p) for p in (args.metrics, args.trace) if p is not None]
        print(f"OK: {', '.join(checked)}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
