#!/usr/bin/env python3
"""Diff two nav-bench-trajectory-v1 documents and fail on regressions.

This is the tool the CI bench gate and the nightly trajectory diff invoke:

    scripts/compare_bench.py bench/baselines/quick.json build/BENCH_all.json

Both inputs may be a single-bench document (BENCH_e1.json) or a merged one
(BENCH_all.json, {"merged": true, "benches": [...]}). Cells are aligned into
series by (bench, cell key), where the cell key is the tuple of the
document's `key_fields` present in the cell (section, family, scheme,
router, workload, n, ...). For every shared series, every metric is compared
under a relative threshold:

  * strict metrics (hop counts, stretch, greedy diameter, exponents — the
    document's `metrics` list): threshold --strict-rel (default 1e-6, i.e.
    deterministic modulo floating-point ulps). A worse value beyond the
    threshold is a REGRESSION; a better one is reported as an improvement.
  * loose metrics (wall clock, throughput, queue depths — the document's
    `loose_metrics` list): informational by default; pass --loose-rel to
    gate them too (e.g. --loose-rel 0.5 tolerates 50% noise).

"Worse" respects direction: lower is better except for throughput-style
metrics (*_per_sec, *_per_second, speedup), where higher is better.

Series present only in the current document are reported as added
(informational: new coverage must not fail the gate). Series that
disappeared are a regression — coverage loss — unless --allow-missing.
The same rule applies per metric inside a shared series: a newly measured
metric is informational, a vanished one is a regression.

Exit code: 0 when no regression, 1 on regression/coverage loss, 2 on
unreadable or schema-invalid input.

Baseline refresh (after an intended perf/behaviour change): rebuild, run
every bench with `--quick --jsonl` in one directory, and copy the resulting
BENCH_all.json over bench/baselines/quick.json — the diff of the baseline
file documents the accepted change in review.
"""

import argparse
import json
import pathlib
import sys

SCHEMA = "nav-bench-trajectory-v1"

HIGHER_BETTER = {"speedup"}
HIGHER_BETTER_SUFFIXES = ("_per_sec", "_per_second")


def lower_is_better(metric):
    return not (metric in HIGHER_BETTER
                or metric.endswith(HIGHER_BETTER_SUFFIXES))


def load_benches(path):
    """Returns {bench_name: doc} from a single or merged trajectory file."""
    try:
        doc = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"error: cannot read {path}: {error}")
    if doc.get("schema") != SCHEMA:
        raise SystemExit(f"error: {path} is not a {SCHEMA} document")
    docs = doc.get("benches", []) if doc.get("merged") else [doc]
    benches = {}
    for sub in docs:
        if sub.get("schema") != SCHEMA:
            raise SystemExit(f"error: {path} embeds a non-{SCHEMA} document")
        name = sub.get("bench", "?")
        if name in benches:
            print(f"warning: {path} contains bench '{name}' twice; "
                  "keeping the last occurrence", file=sys.stderr)
        benches[name] = sub
    return benches


def build_series(benches):
    """Returns ({(bench, key): {metric: value}}, {metric: is_loose})."""
    series, loose = {}, {}
    for name, doc in benches.items():
        key_fields = set(doc.get("key_fields", []))
        doc_loose = set(doc.get("loose_metrics", []))
        for cell in doc.get("cells", []):
            key = (name,) + tuple(
                sorted((k, str(v)) for k, v in cell.items()
                       if k in key_fields))
            metrics = {k: v for k, v in cell.items() if k not in key_fields}
            if key in series:
                print(f"warning: duplicate series {format_key(key)}; "
                      "keeping the last occurrence", file=sys.stderr)
            series[key] = metrics
            for metric in metrics:
                loose[metric] = loose.get(metric, False) or metric in doc_loose
    return series, loose


def format_key(key):
    bench, *fields = key
    return f"{bench}[" + " ".join(f"{k}={v}" for k, v in fields) + "]"


def relative_delta(base, current):
    if base == current:
        return 0.0
    if base is None or current is None:
        return float("inf")
    if base == 0:
        return float("inf")
    return (current - base) / abs(base)


def fmt(value):
    if value is None:
        return "null"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", help="baseline trajectory document")
    parser.add_argument("current", help="current trajectory document")
    parser.add_argument("--strict-rel", type=float, default=1e-6,
                        help="relative threshold for deterministic metrics "
                             "(default: %(default)s)")
    parser.add_argument("--loose-rel", type=float, default=None,
                        help="relative threshold for wall-clock metrics "
                             "(default: informational only)")
    parser.add_argument("--allow-missing", action="store_true",
                        help="do not fail when a baseline series disappears")
    parser.add_argument("--show-all", action="store_true",
                        help="also print unchanged metrics")
    args = parser.parse_args()

    base_benches = load_benches(args.baseline)
    cur_benches = load_benches(args.current)
    for name in sorted(base_benches.keys() & cur_benches.keys()):
        if base_benches[name].get("quick") != cur_benches[name].get("quick"):
            print(f"warning: bench '{name}': baseline quick="
                  f"{base_benches[name].get('quick')} vs current quick="
                  f"{cur_benches[name].get('quick')} — comparing a quick "
                  "grid against a full one", file=sys.stderr)

    base_series, base_loose = build_series(base_benches)
    cur_series, cur_loose = build_series(cur_benches)
    loose = {m: base_loose.get(m, False) or cur_loose.get(m, False)
             for m in base_loose.keys() | cur_loose.keys()}

    removed = sorted(set(base_series) - set(cur_series))
    added = sorted(set(cur_series) - set(base_series))
    shared = sorted(set(base_series) & set(cur_series))

    regressions, improvements, infos, compared = [], [], [], 0
    for key in shared:
        base_metrics, cur_metrics = base_series[key], cur_series[key]
        for metric in sorted(set(base_metrics) | set(cur_metrics)):
            b = base_metrics.get(metric)
            c = cur_metrics.get(metric)
            is_loose = loose.get(metric, False)
            threshold = args.loose_rel if is_loose else args.strict_rel
            rel = relative_delta(b, c)
            compared += 1
            row = (format_key(key), metric, fmt(b), fmt(c),
                   "n/a" if rel in (None, float("inf")) else f"{rel:+.2%}")
            if threshold is None:
                if rel != 0.0 and args.show_all:
                    infos.append(row)
                continue
            if abs(rel) <= threshold:
                if args.show_all and rel != 0.0:
                    infos.append(row)
                continue
            if b is None:
                # Metric newly measured for an existing series: coverage
                # gain, informational like an added series.
                infos.append(row)
                continue
            if c is None:
                # Metric vanished from an existing series: coverage loss.
                regressions.append(row)
                continue
            worse = (c > b) if lower_is_better(metric) else (c < b)
            (regressions if worse else improvements).append(row)

    def print_rows(title, rows):
        if not rows:
            return
        print(f"\n{title}:")
        widths = [max(len(r[i]) for r in rows) for i in range(5)]
        for r in rows:
            print("  " + "  ".join(r[i].ljust(widths[i]) for i in range(5)))

    print(f"compared {len(shared)} series ({compared} metric values) "
          f"across {len(base_benches)} baseline / {len(cur_benches)} "
          "current benches")
    print_rows("REGRESSIONS (worse beyond threshold)", regressions)
    print_rows("improvements (better beyond threshold)", improvements)
    print_rows("informational deltas", infos)
    if removed:
        print(f"\nseries missing from current ({len(removed)}):")
        for key in removed:
            print(f"  {format_key(key)}")
    if added:
        print(f"\nseries added in current ({len(added)}):")
        for key in added:
            print(f"  {format_key(key)}")

    failed = bool(regressions) or (bool(removed) and not args.allow_missing)
    if failed:
        print("\nFAIL: "
              + (f"{len(regressions)} metric regression(s)" if regressions
                 else "")
              + (" and " if regressions and removed else "")
              + (f"{len(removed)} missing series" if removed
                 and not args.allow_missing else ""))
        print("(intended change? refresh the baseline — see the module "
              "docstring or docs/ARCHITECTURE.md)")
        return 1
    print("\nok: no regression"
          + (f" ({len(improvements)} improvement(s))" if improvements else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
