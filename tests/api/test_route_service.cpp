// test_route_service.cpp — the batch engine's contract: target sharding and
// batch splitting are pure execution concerns; every result bit matches
// sequential per-pair routing for the same seed.
#include "api/route_service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "api/engine.hpp"
#include "graph/families.hpp"
#include "routing/trial_runner.hpp"

namespace nav::api {
namespace {

using Pair = std::pair<graph::NodeId, graph::NodeId>;

std::vector<Pair> mixed_target_pairs(graph::NodeId n, std::size_t count,
                                     std::size_t distinct_targets,
                                     std::uint64_t seed) {
  // Interleaved targets: the worst case for an LRU target cache, the best
  // case for target sharding.
  std::vector<Pair> pairs;
  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    const auto t = static_cast<graph::NodeId>(i % distinct_targets);
    auto s = static_cast<graph::NodeId>(random_index(rng, n));
    if (s == t) s = (s + 1) % n;
    pairs.emplace_back(s, t);
  }
  return pairs;
}

void expect_same_results(const std::vector<routing::RouteResult>& a,
                         const std::vector<routing::RouteResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].steps, b[i].steps) << i;
    EXPECT_EQ(a[i].long_links_used, b[i].long_links_used) << i;
    EXPECT_EQ(a[i].initial_distance, b[i].initial_distance) << i;
    EXPECT_TRUE(a[i].reached) << i;
  }
}

TEST(RouteService, ShardedBatchBitIdenticalToSequentialRouting) {
  auto engine = NavigationEngine::from_family("grid2d", 400);
  engine.use_scheme("uniform");
  const auto pairs = mixed_target_pairs(engine.graph().num_nodes(), 64, 12, 1);
  const Rng rng(42);

  // Ground truth: one route per pair, request order, no service at all.
  std::vector<routing::RouteResult> expected;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    expected.push_back(engine.route(pairs[i].first, pairs[i].second,
                                    rng.child(i)));
  }

  for (const bool parallel : {false, true}) {
    for (const bool shard : {false, true}) {
      RouteServiceOptions options;
      options.parallel = parallel;
      options.shard_by_target = shard;
      const RouteService service(engine, options);
      expect_same_results(service.route_batch(pairs, rng), expected);
    }
  }
}

TEST(RouteService, BatchSplitDoesNotChangeResults) {
  // Splitting one batch into arbitrary sub-batches must not move any pair to
  // a different rng stream: route_jobs with explicit child indices glues the
  // halves back together bit for bit.
  auto engine = NavigationEngine::from_family("cycle", 512);
  engine.use_scheme("ball");
  const auto pairs = mixed_target_pairs(engine.graph().num_nodes(), 48, 7, 2);
  const Rng rng(7);
  const RouteService service(engine);
  const auto whole = service.route_batch(pairs, rng);

  for (const std::size_t split : {1u, 13u, 24u, 47u}) {
    std::vector<RouteJob> head, tail;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      auto& side = (i < split) ? head : tail;
      side.push_back({pairs[i].first, pairs[i].second, rng.child(i)});
    }
    auto glued = service.route_jobs(std::move(head));
    const auto rest = service.route_jobs(std::move(tail));
    glued.insert(glued.end(), rest.begin(), rest.end());
    expect_same_results(glued, whole);
  }
}

TEST(RouteService, ShardingCutsBfsChurnAtCacheOracleSizes) {
  // A small LRU + interleaved targets: per-pair order thrashes (most pairs
  // miss), target shards pay exactly one BFS per distinct target — even in
  // parallel and even across multiple prefetch waves, because shards route
  // through wave-pinned vectors instead of re-querying the oracle.
  Rng graph_rng(3);
  const auto g = graph::family("grid2d").make(400, graph_rng);
  const std::size_t distinct = 16;
  const auto pairs = mixed_target_pairs(g.num_nodes(), 128, distinct, 4);

  const auto run = [&](bool shard, bool parallel, std::size_t wave) {
    graph::TargetDistanceCache cache(g, 4);  // capacity << distinct targets
    const auto router = routing::make_router("greedy", g, cache);
    RouteServiceOptions options;
    options.parallel = parallel;
    options.shard_by_target = shard;
    options.max_pinned_targets = wave;
    const RouteService service(g, cache, nullptr, *router, options);
    (void)service.route_batch(pairs, Rng(5));
    return cache.misses();
  };

  const auto thrashing_misses = run(false, false, 512);
  EXPECT_GT(thrashing_misses, 4 * distinct);
  for (const bool parallel : {false, true}) {
    for (const std::size_t wave : {static_cast<std::size_t>(3),
                                   static_cast<std::size_t>(512)}) {
      EXPECT_EQ(run(true, parallel, wave), distinct)
          << "parallel=" << parallel << " wave=" << wave;
    }
  }
}

TEST(RouteService, WaveSplitDoesNotChangeResults) {
  // Forcing many small prefetch waves is another execution-schedule change
  // that must not move a single bit.
  auto engine = NavigationEngine::from_family("grid2d", 400);
  engine.use_scheme("uniform");
  const auto pairs = mixed_target_pairs(engine.graph().num_nodes(), 60, 11, 6);
  const auto whole = RouteService(engine).route_batch(pairs, Rng(3));
  RouteServiceOptions tiny_waves;
  tiny_waves.max_pinned_targets = 2;
  expect_same_results(
      RouteService(engine, tiny_waves).route_batch(pairs, Rng(3)), whole);
}

TEST(RouteService, UnreachablePairThrowsOnTheCallingThread) {
  // Two components: reachability is checked after the wave prefetch, before
  // the fan-out, so the throw reaches the caller (pool tasks are noexcept
  // by policy) — and a submit() future carries it instead of terminating.
  graph::Graph g(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  graph::DistanceMatrix oracle(g);
  const auto router = routing::make_router("greedy", g, oracle);
  RouteService service(g, oracle, nullptr, *router);
  const std::vector<Pair> cross = {{0, 2}, {0, 5}};
  EXPECT_THROW((void)service.route_batch(cross, Rng(1)),
               std::invalid_argument);
  auto future = service.submit(cross, Rng(1));
  EXPECT_THROW((void)future.get(), std::invalid_argument);
  // Same-component routing still works afterwards.
  EXPECT_EQ(service.route_batch(std::vector<Pair>{{3, 5}}, Rng(2))
                .at(0)
                .steps,
            2u);
}

TEST(RouteService, SubmitDeliversFailuresThroughTheFuture) {
  // A bad batch must fail its own future, not kill the service thread; the
  // queue keeps draining afterwards.
  auto engine = NavigationEngine::from_family("path", 64);
  RouteService service(engine);
  auto bad = service.submit({{0, 9999}}, Rng(1));  // target out of range
  auto good = service.submit({{0, 63}}, Rng(2));
  EXPECT_THROW((void)bad.get(), std::invalid_argument);
  EXPECT_EQ(good.get().at(0).steps, 63u);
  // "executed" means dequeued AND routed: the failed batch doesn't count.
  EXPECT_EQ(service.queue_stats().executed_batches, 1u);
  EXPECT_EQ(service.queue_stats().submitted_batches, 2u);
}

TEST(RouteService, EstimateDiameterMatchesTrialRunnerBitForBit) {
  // The Experiment rewiring contract: the batched estimator must reproduce
  // routing::estimate_routed_diameter exactly — same pair selection, same
  // child streams, same accumulation order.
  auto engine = NavigationEngine::from_family("grid2d", 256);
  engine.use_scheme("ml");
  routing::TrialConfig config;
  config.num_pairs = 6;
  config.resamples = 5;
  const Rng rng(0xbeef);

  const auto reference = routing::estimate_routed_diameter(
      engine.router(), engine.scheme(), engine.oracle(), config, rng);
  const auto batched = RouteService(engine).estimate_diameter(config, rng);

  EXPECT_DOUBLE_EQ(batched.max_mean_steps, reference.max_mean_steps);
  EXPECT_DOUBLE_EQ(batched.overall_mean_steps, reference.overall_mean_steps);
  EXPECT_DOUBLE_EQ(batched.max_ci_halfwidth, reference.max_ci_halfwidth);
  EXPECT_EQ(batched.trials, reference.trials);
  ASSERT_EQ(batched.pairs.size(), reference.pairs.size());
  for (std::size_t p = 0; p < reference.pairs.size(); ++p) {
    EXPECT_EQ(batched.pairs[p].s, reference.pairs[p].s);
    EXPECT_EQ(batched.pairs[p].t, reference.pairs[p].t);
    EXPECT_EQ(batched.pairs[p].distance, reference.pairs[p].distance);
    EXPECT_DOUBLE_EQ(batched.pairs[p].mean_steps,
                     reference.pairs[p].mean_steps);
    EXPECT_DOUBLE_EQ(batched.pairs[p].ci_halfwidth,
                     reference.pairs[p].ci_halfwidth);
    EXPECT_DOUBLE_EQ(batched.pairs[p].max_steps, reference.pairs[p].max_steps);
    EXPECT_DOUBLE_EQ(batched.pairs[p].mean_long_links,
                     reference.pairs[p].mean_long_links);
  }
}

TEST(RouteService, SubmitServesQueuedBatches) {
  auto engine = NavigationEngine::from_family("torus2d", 256);
  engine.use_scheme("uniform").use_router("lookahead:1");
  RouteService service(engine);

  std::vector<std::vector<Pair>> batches;
  std::vector<std::future<std::vector<routing::RouteResult>>> futures;
  for (std::uint64_t b = 0; b < 5; ++b) {
    batches.push_back(
        mixed_target_pairs(engine.graph().num_nodes(), 8 + 8 * b, 3 + b, b));
    futures.push_back(service.submit(batches.back(), Rng(b)));
  }
  for (std::size_t b = 0; b < batches.size(); ++b) {
    const auto async_results = futures[b].get();
    expect_same_results(async_results,
                        service.route_batch(batches[b], Rng(b)));
  }
  EXPECT_GE(service.totals().batches, 10u);
  EXPECT_GT(service.totals().pairs, 0u);
}

TEST(RouteService, ReportsShardTelemetry) {
  auto engine = NavigationEngine::from_family("path", 128);
  const RouteService service(engine);
  const auto pairs = mixed_target_pairs(128, 30, 5, 9);
  (void)service.route_batch(pairs, Rng(1));
  const auto report = service.last_report();
  EXPECT_EQ(report.pairs, 30u);
  EXPECT_EQ(report.distinct_targets, 5u);
  EXPECT_EQ(report.shards, 5u);
  EXPECT_GE(report.seconds, 0.0);
}

TEST(RouteService, EmptyBatch) {
  auto engine = NavigationEngine::from_family("path", 16);
  const RouteService service(engine);
  EXPECT_TRUE(service.route_batch(std::vector<Pair>{}, Rng(1)).empty());
  EXPECT_EQ(service.last_report().shards, 0u);
}

TEST(RouteService, ExplicitPairsEstimateMatchesSelectingOverload) {
  // The workload-axis entry point: handing estimate_diameter the exact
  // select_trial_pairs output must reproduce the selecting overload bit for
  // bit (same per-pair child streams, same accumulation).
  auto engine = NavigationEngine::from_family("grid2d", 196);
  engine.use_scheme("ball");
  routing::TrialConfig config;
  config.num_pairs = 5;
  config.resamples = 4;
  const Rng rng(0xF00D);
  const RouteService service(engine);

  Rng pair_rng = rng.child(0xA11);
  const auto pairs =
      routing::select_trial_pairs(engine.graph(), config, pair_rng);
  const auto explicit_estimate = service.estimate_diameter(config, rng, pairs);
  const auto selecting_estimate = service.estimate_diameter(config, rng);

  EXPECT_DOUBLE_EQ(explicit_estimate.max_mean_steps,
                   selecting_estimate.max_mean_steps);
  EXPECT_DOUBLE_EQ(explicit_estimate.overall_mean_steps,
                   selecting_estimate.overall_mean_steps);
  ASSERT_EQ(explicit_estimate.pairs.size(), selecting_estimate.pairs.size());
  for (std::size_t p = 0; p < explicit_estimate.pairs.size(); ++p) {
    EXPECT_EQ(explicit_estimate.pairs[p].s, selecting_estimate.pairs[p].s);
    EXPECT_EQ(explicit_estimate.pairs[p].t, selecting_estimate.pairs[p].t);
    EXPECT_DOUBLE_EQ(explicit_estimate.pairs[p].mean_steps,
                     selecting_estimate.pairs[p].mean_steps);
  }
}

TEST(RouteService, QueueStatsTrackSubmissions) {
  auto engine = NavigationEngine::from_family("path", 64);
  RouteService service(engine);
  EXPECT_EQ(service.queue_stats().submitted_batches, 0u);
  auto f1 = service.submit({{0, 63}, {1, 63}}, Rng(1));
  auto f2 = service.submit({{2, 40}}, Rng(2));
  (void)f1.get();
  (void)f2.get();
  const auto stats = service.queue_stats();
  EXPECT_EQ(stats.submitted_batches, 2u);
  EXPECT_EQ(stats.submitted_pairs, 3u);
  EXPECT_EQ(stats.executed_batches, 2u);
  EXPECT_EQ(stats.shed_batches, 0u);
  // Both futures resolved: nothing can still be queued.
  EXPECT_EQ(stats.queued_batches, 0u);
  EXPECT_EQ(stats.queued_pairs, 0u);
  EXPECT_GE(stats.peak_queued_pairs, 1u);
}

TEST(RouteService, QueueStatsBitIdenticalToScrapedRegistry) {
  // queue_stats() is now a view over the service registry: every field must
  // equal the corresponding route_service.* counter/gauge in a scrape taken
  // while the service is quiescent. This is the migration contract — the
  // public QueueStats API moved onto the registry without changing a value.
  auto engine = NavigationEngine::from_family("grid2d", 256);
  engine.use_scheme("uniform");
  RouteServiceOptions options;
  options.admission = AdmissionPolicy::shed(/*deadline_seconds=*/60.0);
  RouteService service(engine, options);

  const auto pairs = mixed_target_pairs(engine.graph().num_nodes(), 24, 6, 9);
  auto f1 = service.submit(pairs, Rng(3));
  auto f2 = service.submit({{0, 100}, {1, 101}}, Rng(4));
  (void)f1.get();
  (void)f2.get();

  const auto stats = service.queue_stats();
  const auto snapshot = service.metrics().scrape();
  const auto counter = [&](const char* name) -> std::size_t {
    const auto* c = snapshot.find_counter(name);
    EXPECT_NE(c, nullptr) << name;
    return c ? static_cast<std::size_t>(c->value) : ~std::size_t{0};
  };
  const auto gauge = [&](const char* name) -> std::size_t {
    const auto* g = snapshot.find_gauge(name);
    EXPECT_NE(g, nullptr) << name;
    return g ? static_cast<std::size_t>(g->value) : ~std::size_t{0};
  };
  EXPECT_EQ(stats.submitted_batches,
            counter("route_service.submitted_batches"));
  EXPECT_EQ(stats.submitted_pairs, counter("route_service.submitted_pairs"));
  EXPECT_EQ(stats.executed_batches, counter("route_service.executed_batches"));
  EXPECT_EQ(stats.shed_batches, counter("route_service.shed_batches"));
  EXPECT_EQ(stats.shed_pairs, counter("route_service.shed_pairs"));
  EXPECT_EQ(stats.blocked_submits, counter("route_service.blocked_submits"));
  EXPECT_EQ(stats.queued_batches, gauge("route_service.queued_batches"));
  EXPECT_EQ(stats.queued_pairs, gauge("route_service.queued_pairs"));
  EXPECT_EQ(stats.peak_queued_pairs,
            gauge("route_service.peak_queued_pairs"));
  // Sanity: the run actually moved the counters.
  EXPECT_EQ(stats.submitted_batches, 2u);
  EXPECT_EQ(stats.submitted_pairs, 26u);
}

TEST(RouteService, PauseHoldsTheQueueAndResumeDrainsIt) {
  auto engine = NavigationEngine::from_family("path", 64);
  RouteService service(engine);
  service.pause();
  auto future = service.submit({{0, 63}}, Rng(1));
  // Paused: the batch must still be queued (dequeueing is frozen, so this
  // cannot race with the service thread).
  EXPECT_EQ(service.queue_stats().queued_batches, 1u);
  EXPECT_EQ(future.wait_for(std::chrono::milliseconds(20)),
            std::future_status::timeout);
  service.resume();
  EXPECT_EQ(future.get().at(0).steps, 63u);
  EXPECT_EQ(service.queue_stats().queued_batches, 0u);
}

TEST(RouteService, BoundedAdmissionBlocksProducersUntilRoomFrees) {
  auto engine = NavigationEngine::from_family("path", 64);
  RouteServiceOptions options;
  options.admission = AdmissionPolicy::bounded(4);
  RouteService service(engine, options);
  service.pause();

  // Admitted into the empty queue even though it exceeds the bound — the
  // oversized-batch rule that keeps a single big batch serviceable.
  auto big = service.submit({{0, 9}, {1, 9}, {2, 9}, {3, 9}, {4, 9}, {5, 9}},
                            Rng(1));
  EXPECT_EQ(service.queue_stats().queued_pairs, 6u);

  // A second producer must block while the queue is over the bound; while
  // the service stays paused, its batch cannot be enqueued.
  std::promise<void> submitted;
  auto submitted_future = submitted.get_future();
  std::thread producer([&] {
    auto small = service.submit({{7, 20}}, Rng(2));
    submitted.set_value();
    (void)small.get();
  });
  EXPECT_EQ(submitted_future.wait_for(std::chrono::milliseconds(40)),
            std::future_status::timeout);
  EXPECT_EQ(service.queue_stats().queued_batches, 1u);

  service.resume();
  producer.join();
  (void)big.get();
  const auto stats = service.queue_stats();
  EXPECT_EQ(stats.blocked_submits, 1u);
  EXPECT_EQ(stats.submitted_batches, 2u);
  EXPECT_EQ(stats.executed_batches, 2u);
}

TEST(RouteService, ShedAdmissionFailsAgedFuturesWithShedError) {
  auto engine = NavigationEngine::from_family("path", 64);
  RouteServiceOptions options;
  options.admission = AdmissionPolicy::shed(1e-6);
  RouteService service(engine, options);
  service.pause();
  auto stale = service.submit({{0, 63}}, Rng(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  service.resume();
  EXPECT_THROW((void)stale.get(), ShedError);
  const auto stats = service.queue_stats();
  EXPECT_EQ(stats.shed_batches, 1u);
  EXPECT_EQ(stats.shed_pairs, 1u);
  EXPECT_EQ(stats.executed_batches, 0u);

  // A generous deadline admits everything again: shedding is per batch, not
  // a poisoned state.
  RouteServiceOptions lenient;
  lenient.admission = AdmissionPolicy::shed(60.0);
  RouteService healthy(engine, lenient);
  auto fresh = healthy.submit({{0, 63}}, Rng(1));
  EXPECT_EQ(fresh.get().at(0).steps, 63u);
  EXPECT_EQ(healthy.queue_stats().shed_batches, 0u);
}

TEST(RouteService, SchemeSizeMismatchRejected) {
  Rng graph_rng(1);
  const auto g = graph::family("path").make(32, graph_rng);
  const auto other = graph::family("path").make(33, graph_rng);
  graph::DistanceMatrix oracle(g);
  const auto router = routing::make_router("greedy", g, oracle);
  Rng rng(2);
  const auto scheme = core::make_scheme("uniform", other, rng);
  EXPECT_THROW(RouteService(g, oracle, scheme.get(), *router),
               std::invalid_argument);
}

}  // namespace
}  // namespace nav::api
