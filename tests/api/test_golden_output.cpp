// test_golden_output.cpp — golden-file coverage for the ResultSink renderers.
//
// A fixed-seed mini-sweep is rendered through CsvSink and JsonLinesSink and
// compared byte-for-byte against goldens captured from the same build. The
// only nondeterministic field, wall-clock "seconds", is masked to 0.0 before
// rendering, so any other byte of drift — field order, quoting, double
// formatting (std::to_chars shortest-round-trip), or a change in the Monte
// Carlo numbers themselves — fails loudly here.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "api/experiment.hpp"
#include "api/result_sink.hpp"

namespace nav::api {
namespace {

// family x sizes x schemes x routers grid pinned by seed 7. Any change to
// the rng stream layout, pair selection, or routing behaviour shifts these
// numbers — update the goldens below only after understanding why.
ExperimentResult golden_sweep() {
  return Experiment::on("path")
      .sizes({48, 96})
      .schemes({"none", "uniform"})
      .routers({"greedy", "lookahead:1"})
      .pairs(2)
      .resamples(3)
      .seed(7)
      .run();
}

/// The sweep's records with the wall-clock field zeroed.
std::vector<Record> masked_records() {
  std::vector<Record> records;
  for (const auto& cell : golden_sweep().cells) {
    auto record = cell.record();
    for (auto& field : record) {
      if (field.key == "seconds") field.value = 0.0;
    }
    records.push_back(std::move(record));
  }
  return records;
}

// The workload column ("uniform" = the legacy trial-pair selection) was
// inserted by the workload-axis PR; every other byte is unchanged from the
// pre-axis goldens, pinning that default grids stayed bit-identical.
constexpr const char* kGoldenCsv =
    "family,workload,scheme,router,n_requested,n,m,diameter_lb,"
    "greedy_diameter,mean_steps,ci95,seconds\n"
    "path,uniform,none,greedy,48,48,47,47,47.000000,32.750000,0.000000,"
    "0.000000\n"
    "path,uniform,none,lookahead:1,48,48,47,47,47.000000,27.250000,0.000000,"
    "0.000000\n"
    "path,uniform,uniform,greedy,48,48,47,47,10.333333,6.583333,7.702686,"
    "0.000000\n"
    "path,uniform,uniform,lookahead:1,48,48,47,47,6.666667,5.000000,1.728558,"
    "0.000000\n"
    "path,uniform,none,greedy,96,96,95,95,95.000000,62.500000,0.000000,"
    "0.000000\n"
    "path,uniform,none,lookahead:1,96,96,95,95,95.000000,66.250000,0.000000,"
    "0.000000\n"
    "path,uniform,uniform,greedy,96,96,95,95,12.000000,9.916667,2.993949,"
    "0.000000\n"
    "path,uniform,uniform,lookahead:1,96,96,95,95,10.000000,8.750000,"
    "2.993949,0.000000\n";

const char* const kGoldenJsonLines[] = {
    R"({"family": "path", "workload": "uniform", "scheme": "none", "router": "greedy", "n_requested": 48, "n": 48, "m": 47, "diameter_lb": 47, "greedy_diameter": 47.0, "mean_steps": 32.75, "ci95": 0.0, "seconds": 0.0})",
    R"({"family": "path", "workload": "uniform", "scheme": "none", "router": "lookahead:1", "n_requested": 48, "n": 48, "m": 47, "diameter_lb": 47, "greedy_diameter": 47.0, "mean_steps": 27.25, "ci95": 0.0, "seconds": 0.0})",
    R"({"family": "path", "workload": "uniform", "scheme": "uniform", "router": "greedy", "n_requested": 48, "n": 48, "m": 47, "diameter_lb": 47, "greedy_diameter": 10.333333333333334, "mean_steps": 6.583333333333333, "ci95": 7.702686400067043, "seconds": 0.0})",
    R"({"family": "path", "workload": "uniform", "scheme": "uniform", "router": "lookahead:1", "n_requested": 48, "n": 48, "m": 47, "diameter_lb": 47, "greedy_diameter": 6.666666666666667, "mean_steps": 5.0, "ci95": 1.728557523228866, "seconds": 0.0})",
    R"({"family": "path", "workload": "uniform", "scheme": "none", "router": "greedy", "n_requested": 96, "n": 96, "m": 95, "diameter_lb": 95, "greedy_diameter": 95.0, "mean_steps": 62.5, "ci95": 0.0, "seconds": 0.0})",
    R"({"family": "path", "workload": "uniform", "scheme": "none", "router": "lookahead:1", "n_requested": 96, "n": 96, "m": 95, "diameter_lb": 95, "greedy_diameter": 95.0, "mean_steps": 66.25, "ci95": 0.0, "seconds": 0.0})",
    R"({"family": "path", "workload": "uniform", "scheme": "uniform", "router": "greedy", "n_requested": 96, "n": 96, "m": 95, "diameter_lb": 95, "greedy_diameter": 12.0, "mean_steps": 9.916666666666668, "ci95": 2.9939494540378155, "seconds": 0.0})",
    R"({"family": "path", "workload": "uniform", "scheme": "uniform", "router": "lookahead:1", "n_requested": 96, "n": 96, "m": 95, "diameter_lb": 95, "greedy_diameter": 10.0, "mean_steps": 8.75, "ci95": 2.9939494540378155, "seconds": 0.0})",
};

TEST(GoldenOutput, CsvMatchesGolden) {
  std::ostringstream out;
  CsvSink sink(out);
  for (const auto& record : masked_records()) sink.write(record);
  sink.flush();
  EXPECT_EQ(out.str(), kGoldenCsv);
}

TEST(GoldenOutput, JsonLinesMatchGolden) {
  std::ostringstream out;
  JsonLinesSink sink(out);
  const auto records = masked_records();
  for (const auto& record : records) sink.write(record);
  sink.flush();

  std::istringstream lines(out.str());
  std::string line;
  std::size_t i = 0;
  while (std::getline(lines, line)) {
    ASSERT_LT(i, std::size(kGoldenJsonLines));
    EXPECT_EQ(line, kGoldenJsonLines[i]) << "line " << i;
    ++i;
  }
  EXPECT_EQ(i, std::size(kGoldenJsonLines));
  EXPECT_EQ(i, records.size());
}

TEST(GoldenOutput, GoldenJsonLinesRoundTrip) {
  // The goldens themselves must survive parse -> serialise unchanged: this
  // pins the exact round-tripping contract of to_json_line/parse_json_line.
  for (const auto* line : kGoldenJsonLines) {
    EXPECT_EQ(to_json_line(parse_json_line(line)), line);
  }
}

TEST(GoldenOutput, NoneCellsPinTheAnalyticDiameter) {
  // Cross-check the goldens against paper ground truth instead of the
  // renderer: without long links the greedy diameter of an n-path is n-1.
  const auto result = golden_sweep();
  ASSERT_EQ(result.cells.size(), 8u);
  EXPECT_DOUBLE_EQ(result.cells[0].greedy_diameter, 47.0);
  EXPECT_DOUBLE_EQ(result.cells[4].greedy_diameter, 95.0);
}

}  // namespace
}  // namespace nav::api
