#include "routing/router_factory.hpp"

#include <gtest/gtest.h>

#include "core/scheme_factory.hpp"
#include "core/uniform_scheme.hpp"
#include "graph/generators.hpp"
#include "routing/greedy_router.hpp"
#include "routing/lookahead_router.hpp"

namespace nav::routing {
namespace {

TEST(RouterRegistry, UnknownSpecThrows) {
  const auto g = graph::make_path(16);
  graph::DistanceMatrix oracle(g);
  EXPECT_THROW((void)make_router("dijkstra", g, oracle),
               std::invalid_argument);
  EXPECT_THROW((void)make_router("", g, oracle), std::invalid_argument);
  EXPECT_THROW((void)make_router("lookahead", g, oracle),
               std::invalid_argument);
  EXPECT_THROW((void)make_router("lookahead:", g, oracle),
               std::invalid_argument);
  EXPECT_THROW((void)make_router("lookahead:two", g, oracle),
               std::invalid_argument);
  EXPECT_THROW((void)make_router("lookahead:-1", g, oracle),
               std::invalid_argument);
  // Depths past unsigned range must throw, not silently truncate to a
  // different router.
  EXPECT_THROW((void)make_router("lookahead:4294967296", g, oracle),
               std::invalid_argument);
  EXPECT_THROW((void)make_router("lookahead:99999999999999999999", g, oracle),
               std::invalid_argument);
}

TEST(RouterRegistry, KnownSpecsBuild) {
  const auto g = graph::make_cycle(32);
  graph::DistanceMatrix oracle(g);
  EXPECT_EQ(make_router("greedy", g, oracle)->name(), "greedy");
  EXPECT_EQ(make_router("lookahead:1", g, oracle)->name(), "lookahead:1");
  EXPECT_EQ(make_router("lookahead:3", g, oracle)->name(), "lookahead:3");
  for (const auto& spec : standard_router_specs()) {
    EXPECT_NE(make_router(spec, g, oracle), nullptr) << spec;
  }
}

TEST(RouterRegistry, LookaheadDepthZeroEqualsGreedy) {
  // Depth 0 means "no awareness beyond your own link", i.e. the paper's
  // greedy process — the registry maps it to the same implementation, so
  // routes agree draw for draw.
  const auto g = graph::make_grid2d(12, 12);
  graph::DistanceMatrix oracle(g);
  const auto greedy = make_router("greedy", g, oracle);
  const auto depth0 = make_router("lookahead:0", g, oracle);
  core::UniformScheme scheme(g);
  Rng rng(0xA0);
  for (int trial = 0; trial < 20; ++trial) {
    Rng trial_rng = rng.child(trial);
    const auto s = static_cast<graph::NodeId>(random_index(trial_rng, 144));
    auto t = static_cast<graph::NodeId>(random_index(trial_rng, 144));
    if (t == s) t = (t + 1) % 144;
    const auto a = greedy->route(s, t, &scheme, trial_rng.child(1), true);
    const auto b = depth0->route(s, t, &scheme, trial_rng.child(1), true);
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.long_links_used, b.long_links_used);
    EXPECT_EQ(a.trace, b.trace);
  }
}

TEST(RouterRegistry, LookaheadRouteIsValidAndBounded) {
  const auto g = graph::make_path(256);
  graph::DistanceMatrix oracle(g);
  core::UniformScheme scheme(g);
  for (const unsigned depth : {1u, 2u, 3u}) {
    const auto router =
        make_router("lookahead:" + std::to_string(depth), g, oracle);
    for (int trial = 0; trial < 10; ++trial) {
      const auto result = router->route(0, 255, &scheme, Rng(trial));
      EXPECT_TRUE(result.reached);
      // Each committed move drops the distance by >= 1 in <= 1 + depth hops.
      EXPECT_LE(result.steps, (1u + depth) * 255u);
    }
  }
}

TEST(RouterRegistry, DeeperLookaheadNoWorseOnAverage) {
  // More awareness can only shrink the NoN score of the chosen move; check
  // the measured averages line up that way (with generous slack, the claim
  // is statistical).
  const auto g = graph::make_path(1024);
  graph::DistanceMatrix oracle(g);
  core::UniformScheme scheme(g);
  double mean[3] = {0, 0, 0};
  const int trials = 24;
  for (int d = 0; d < 3; ++d) {
    const auto router =
        make_router("lookahead:" + std::to_string(d), g, oracle);
    for (int trial = 0; trial < trials; ++trial) {
      mean[d] += router->route(0, 1023, &scheme, Rng(900 + trial)).steps;
    }
    mean[d] /= trials;
  }
  EXPECT_LT(mean[1], mean[0] * 1.10);
  EXPECT_LT(mean[2], mean[0] * 1.10);
}

TEST(RouterRegistry, SchemeSizeMismatchRejected) {
  const auto g = graph::make_path(8);
  const auto g2 = graph::make_path(9);
  graph::DistanceMatrix oracle(g);
  core::UniformScheme wrong(g2);
  for (const auto* spec : {"greedy", "lookahead:1"}) {
    const auto router = make_router(spec, g, oracle);
    EXPECT_THROW((void)router->route(0, 7, &wrong, Rng(1)),
                 std::invalid_argument)
        << spec;
  }
}

TEST(RouterRegistry, RouterRngIsPrivatePerCall) {
  // Router::route takes its rng by value: two calls with the same stream
  // state replay the same augmentation draw.
  const auto g = graph::make_cycle(64);
  graph::DistanceMatrix oracle(g);
  core::UniformScheme scheme(g);
  for (const auto* spec : {"greedy", "lookahead:1"}) {
    const auto router = make_router(spec, g, oracle);
    Rng rng(0x5eed);
    const auto a = router->route(0, 32, &scheme, rng, true);
    const auto b = router->route(0, 32, &scheme, rng, true);
    EXPECT_EQ(a.trace, b.trace) << spec;
  }
}

}  // namespace
}  // namespace nav::routing
