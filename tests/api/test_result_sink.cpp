#include "api/result_sink.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

namespace nav::api {
namespace {

Record sample_record() {
  return {
      {"family", std::string("path")},
      {"scheme", std::string("ball")},
      {"router", std::string("lookahead:1")},
      {"n", std::uint64_t{4096}},
      {"greedy_diameter", 42.25},
      {"seconds", 0.125},
  };
}

TEST(JsonLines, RoundTripPreservesOrderTypesAndValues) {
  const auto record = sample_record();
  const auto parsed = parse_json_line(to_json_line(record));
  ASSERT_EQ(parsed.size(), record.size());
  for (std::size_t i = 0; i < record.size(); ++i) {
    EXPECT_EQ(parsed[i].key, record[i].key);
    EXPECT_EQ(parsed[i].value, record[i].value) << record[i].key;
  }
}

TEST(JsonLines, DoubleRoundTripIsExact) {
  // Shortest-round-trip formatting: awkward doubles survive bit for bit, and
  // integral-valued doubles stay doubles (never collapse to the int type).
  const Record record = {
      {"tenth", 0.1},
      {"third", 1.0 / 3.0},
      {"tiny", 5e-324},
      {"huge", 1.7976931348623157e308},
      {"negative", -2.5},
      {"integral", 3.0},
      {"neg_integral", -3.0},
      {"zero", 0.0},
  };
  const auto parsed = parse_json_line(to_json_line(record));
  ASSERT_EQ(parsed.size(), record.size());
  for (std::size_t i = 0; i < record.size(); ++i) {
    ASSERT_TRUE(std::holds_alternative<double>(parsed[i].value))
        << record[i].key;
    EXPECT_EQ(std::get<double>(parsed[i].value),
              std::get<double>(record[i].value))
        << record[i].key;
  }
}

TEST(JsonLines, NonFiniteDoublesBecomeNullAndParseAsNaN) {
  const Record record = {
      {"nan", std::numeric_limits<double>::quiet_NaN()},
      {"inf", std::numeric_limits<double>::infinity()},
      {"ninf", -std::numeric_limits<double>::infinity()},
  };
  const auto line = to_json_line(record);
  EXPECT_EQ(line,
            "{\"nan\": null, \"inf\": null, \"ninf\": null}");
  const auto parsed = parse_json_line(line);
  ASSERT_EQ(parsed.size(), 3u);
  for (const auto& field : parsed) {
    ASSERT_TRUE(std::holds_alternative<double>(field.value)) << field.key;
    EXPECT_TRUE(std::isnan(std::get<double>(field.value))) << field.key;
  }
}

TEST(JsonLines, IntegerRoundTripAtTheExtremes) {
  const Record record = {
      {"zero", std::uint64_t{0}},
      {"max", std::uint64_t{18446744073709551615ULL}},
  };
  const auto parsed = parse_json_line(to_json_line(record));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].value, record[0].value);
  EXPECT_EQ(parsed[1].value, record[1].value);
}

TEST(JsonLines, StringEscapesRoundTrip) {
  const Record record = {
      {"quote", std::string("he said \"hi\"")},
      {"backslash", std::string("a\\b")},
      {"newline", std::string("line1\nline2\ttabbed")},
      {"control", std::string("bell\x07!")},
      {"utf8", std::string("café")},  // multi-byte passthrough
  };
  const auto line = to_json_line(record);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const auto parsed = parse_json_line(line);
  ASSERT_EQ(parsed.size(), record.size());
  for (std::size_t i = 0; i < record.size(); ++i) {
    EXPECT_EQ(parsed[i].value, record[i].value) << record[i].key;
  }
}

TEST(JsonLines, MalformedInputThrows) {
  EXPECT_THROW((void)parse_json_line(""), std::invalid_argument);
  EXPECT_THROW((void)parse_json_line("{"), std::invalid_argument);
  EXPECT_THROW((void)parse_json_line("[1, 2]"), std::invalid_argument);
  EXPECT_THROW((void)parse_json_line("{\"a\": }"), std::invalid_argument);
  EXPECT_THROW((void)parse_json_line("{\"a\": 1} trailing"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_json_line("{\"a\": {\"nested\": 1}}"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_json_line("{\"a\": 1,}"), std::invalid_argument);
}

TEST(JsonLinesSink, OneObjectPerLine) {
  std::ostringstream out;
  JsonLinesSink sink(out);
  sink.write(sample_record());
  sink.write(sample_record());
  sink.flush();
  std::istringstream lines(out.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    const auto parsed = parse_json_line(line);
    EXPECT_EQ(parsed.size(), sample_record().size());
    ++count;
  }
  EXPECT_EQ(count, 2);
}

TEST(TableSink, ColumnsComeFromFirstRecord) {
  TableSink sink;
  sink.write(sample_record());
  sink.write(sample_record());
  const auto& table = sink.table();
  EXPECT_EQ(table.columns(), 6u);
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.header().front(), "family");
  EXPECT_EQ(table.row(0)[3], "4096");
}

TEST(TableSink, EmptySinkThrowsOnAccess) {
  TableSink sink;
  EXPECT_THROW((void)sink.table(), std::invalid_argument);
}

TEST(CsvSink, HeaderThenRowsWithQuoting) {
  std::ostringstream out;
  CsvSink sink(out);
  Record record = sample_record();
  record.push_back({"note", std::string("a,b and \"q\"")});
  sink.write(record);
  sink.flush();
  std::istringstream lines(out.str());
  std::string header, row;
  ASSERT_TRUE(std::getline(lines, header));
  ASSERT_TRUE(std::getline(lines, row));
  EXPECT_EQ(header,
            "family,scheme,router,n,greedy_diameter,seconds,note");
  EXPECT_NE(row.find("\"a,b and \"\"q\"\"\""), std::string::npos);
}

}  // namespace
}  // namespace nav::api
