#include "api/experiment.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace nav::api {
namespace {

Experiment small_grid() {
  return Experiment::on("path")
      .sizes({64, 128})
      .schemes({"none", "uniform"})
      .routers({"greedy", "lookahead:1"})
      .pairs(2)
      .resamples(3)
      .seed(0xAB);
}

TEST(ExperimentApi, ProducesOneCellPerGridPoint) {
  const auto result = small_grid().run();
  EXPECT_EQ(result.cells.size(), 2u * 2u * 2u);
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.family, "path");
    EXPECT_GT(cell.n_actual, 0u);
    EXPECT_GT(cell.greedy_diameter, 0.0);
    EXPECT_GE(cell.greedy_diameter, cell.mean_steps);
    EXPECT_TRUE(cell.router == "greedy" || cell.router == "lookahead:1");
  }
}

TEST(ExperimentApi, DeterministicGivenSeed) {
  const auto a = small_grid().run();
  const auto b = small_grid().run();
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].scheme, b.cells[i].scheme);
    EXPECT_EQ(a.cells[i].router, b.cells[i].router);
    EXPECT_DOUBLE_EQ(a.cells[i].greedy_diameter, b.cells[i].greedy_diameter);
  }
}

TEST(ExperimentApi, RoutersAreARealAxis) {
  // The "none" scheme leaves nothing to look ahead over: both routers must
  // walk exactly the shortest path, while with "uniform" lookahead may only
  // help. This pins the router column to observable behaviour.
  const auto result = small_grid().run();
  for (const auto& cell : result.cells) {
    if (cell.scheme == "none") {
      EXPECT_DOUBLE_EQ(cell.greedy_diameter,
                       static_cast<double>(cell.diameter_lb))
          << cell.router;
    }
  }
}

TEST(ExperimentApi, FitRecoversLinearForNone) {
  // Greedy diameter of "none" on paths is exactly n-1: slope ~ 1. (Migrated
  // from the retired routing/experiment.hpp shim's test suite.)
  const auto result = Experiment::on("path")
                          .sizes({128, 256, 512, 1024})
                          .schemes({"none"})
                          .pairs(3)
                          .resamples(4)
                          .seed(99)
                          .run();
  const auto fits = result.fits();
  ASSERT_EQ(fits.size(), 1u);
  EXPECT_EQ(fits[0].scheme, "none");
  EXPECT_NEAR(fits[0].fit.slope, 1.0, 0.02);
  EXPECT_GT(fits[0].fit.r_squared, 0.999);
}

TEST(ExperimentApi, FitsCoverSchemeTimesRouter) {
  const auto result = small_grid().run();
  const auto fits = result.fits();
  ASSERT_EQ(fits.size(), 4u);
  const auto table = result.fit_table();
  EXPECT_EQ(table.rows(), 4u);
  EXPECT_EQ(table.columns(), 5u);
}

TEST(ExperimentApi, TableHasRouterColumn) {
  const auto table = small_grid().run().table();
  EXPECT_EQ(table.columns(), 11u);
  EXPECT_NE(table.to_ascii().find("router"), std::string::npos);
  EXPECT_NE(table.to_ascii().find("lookahead:1"), std::string::npos);
}

TEST(ExperimentApi, WorkloadAxisMultipliesTheGrid) {
  const auto base = small_grid().run();
  const auto with_axis =
      small_grid().workloads({"uniform", "adversarial"}).run();
  ASSERT_EQ(with_axis.cells.size(), 2u * base.cells.size());
  // Cells are workload-major inside each size: the "uniform" half must be
  // bit-identical to the axis-free grid (the legacy-stream guarantee), the
  // "adversarial" half is a genuinely different demand.
  std::size_t base_index = 0;
  for (const auto& cell : with_axis.cells) {
    if (cell.workload == "uniform") {
      ASSERT_LT(base_index, base.cells.size());
      EXPECT_EQ(cell.scheme, base.cells[base_index].scheme);
      EXPECT_EQ(cell.router, base.cells[base_index].router);
      EXPECT_DOUBLE_EQ(cell.greedy_diameter,
                       base.cells[base_index].greedy_diameter);
      EXPECT_DOUBLE_EQ(cell.mean_steps, base.cells[base_index].mean_steps);
      ++base_index;
    } else {
      EXPECT_EQ(cell.workload, "adversarial");
      EXPECT_GT(cell.greedy_diameter, 0.0);
    }
  }
  EXPECT_EQ(base_index, base.cells.size());
  // One fit per (workload, scheme, router) combination.
  EXPECT_EQ(with_axis.fits().size(), 2u * base.fits().size());
}

TEST(ExperimentApi, AdversarialWorkloadForcesFarPairsOnThePath) {
  // On a path with no long links greedy walks the exact distance, so the
  // mean over adversarial far pairs (>= half the diameter) must exceed the
  // uniform-demand mean (expected distance ~ n/3).
  const auto result = Experiment::on("path")
                          .sizes({256})
                          .workloads({"uniform", "adversarial"})
                          .schemes({"none"})
                          .pairs(12)
                          .resamples(1)
                          .seed(3)
                          .run();
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_GT(result.cells[1].mean_steps, result.cells[0].mean_steps);
  EXPECT_GE(result.cells[1].mean_steps, 128.0);
}

TEST(ExperimentApi, OracleAxisMultipliesTheGrid) {
  const auto base = small_grid().run();
  const auto with_axis = small_grid().oracles({"auto", "landmark:4"}).run();
  ASSERT_EQ(with_axis.cells.size(), 2u * base.cells.size());
  // Cells are oracle-major inside each size. Trial streams carry no oracle
  // term, so the "auto" half is bit-identical to the axis-free grid; the
  // landmark half routes the SAME pairs on the approximate field.
  std::size_t base_index = 0;
  for (const auto& cell : with_axis.cells) {
    EXPECT_TRUE(cell.show_oracle);
    if (cell.oracle == "auto") {
      ASSERT_LT(base_index, base.cells.size());
      EXPECT_EQ(cell.scheme, base.cells[base_index].scheme);
      EXPECT_EQ(cell.router, base.cells[base_index].router);
      EXPECT_DOUBLE_EQ(cell.greedy_diameter,
                       base.cells[base_index].greedy_diameter);
      EXPECT_DOUBLE_EQ(cell.mean_steps, base.cells[base_index].mean_steps);
      ++base_index;
    } else {
      EXPECT_EQ(cell.oracle, "landmark:4");
    }
  }
  EXPECT_EQ(base_index, base.cells.size());
  // The axis surfaces in the table (one extra column) but never in
  // axis-free grids, whose record layout is pinned by golden files.
  EXPECT_FALSE(base.cells.front().show_oracle);
  const auto table = with_axis.table();
  EXPECT_EQ(table.columns(), 12u);
  EXPECT_NE(table.to_ascii().find("oracle"), std::string::npos);
  EXPECT_NE(table.to_ascii().find("landmark:4"), std::string::npos);
}

TEST(ExperimentApi, FileBackedGraphsNeedNoSizes) {
  const std::string fixture = std::string(NAV_TEST_DATA_DIR) + "/karate.dimacs";
  const auto result = Experiment::graphs({"file:" + fixture})
                          .schemes({"uniform"})
                          .pairs(2)
                          .resamples(2)
                          .seed(7)
                          .run();
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_EQ(result.cells[0].family, "file:" + fixture);
  EXPECT_EQ(result.cells[0].n_actual, 34u);
  // Sizeless file cells backfill the request with the loaded size so
  // power-law fits never see log 0.
  EXPECT_EQ(result.cells[0].n_requested, 34u);
  EXPECT_EQ(result.cells[0].m, 78u);
  EXPECT_GT(result.cells[0].greedy_diameter, 0.0);
}

TEST(ExperimentApi, GraphsAxisMixesFamiliesAndFiles) {
  const std::string fixture = std::string(NAV_TEST_DATA_DIR) + "/karate.dimacs";
  const auto result = Experiment::graphs({"path", "file:" + fixture})
                          .sizes({32})
                          .schemes({"none"})
                          .pairs(2)
                          .resamples(2)
                          .seed(7)
                          .run();
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.cells[0].family, "path");
  EXPECT_EQ(result.cells[0].n_actual, 32u);
  EXPECT_EQ(result.cells[1].n_actual, 34u);  // the file decides its own n
  // A generated family in the mix still needs sizes...
  EXPECT_THROW((void)Experiment::graphs({"path", "file:" + fixture})
                   .schemes({"none"})
                   .run(),
               std::invalid_argument);
  // ...and the graph axis can never be empty.
  EXPECT_THROW((void)Experiment::graphs({}), std::invalid_argument);
}

TEST(ExperimentApi, StreamsCellsToSinksAsJsonLines) {
  std::ostringstream out;
  JsonLinesSink sink(out);
  const auto result = small_grid().stream_to(sink).run();
  std::istringstream lines(out.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    const auto record = parse_json_line(line);
    ASSERT_EQ(record[0].key, "family");
    EXPECT_EQ(std::get<std::string>(record[0].value), "path");
    ++count;
  }
  EXPECT_EQ(count, result.cells.size());
}

TEST(ExperimentApi, WriteReplaysAllCells) {
  const auto result = small_grid().run();
  TableSink sink;
  result.write(sink);
  EXPECT_EQ(sink.table().rows(), result.cells.size());
}

TEST(ExperimentApi, RejectsEmptyAndUnknownGrids) {
  EXPECT_THROW((void)Experiment::on("path").run(), std::invalid_argument);
  EXPECT_THROW((void)Experiment::on("path").sizes({16}).schemes({}).run(),
               std::invalid_argument);
  EXPECT_THROW((void)Experiment::on("path").sizes({16}).routers({}).run(),
               std::invalid_argument);
  EXPECT_THROW((void)Experiment::on("not-a-family").sizes({16}).run(),
               std::invalid_argument);
  EXPECT_THROW((void)Experiment::on("path").sizes({16}).routers(
                   {"warp-drive"}).run(),
               std::invalid_argument);
}

TEST(ExperimentApi, LargeSizeUsesCacheOracle) {
  const auto result = Experiment::on("path")
                          .sizes({512})
                          .schemes({"uniform"})
                          .pairs(2)
                          .resamples(2)
                          .dense_oracle_limit(128)
                          .run();
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_GT(result.cells[0].greedy_diameter, 0.0);
}

}  // namespace
}  // namespace nav::api
