#include "api/engine.hpp"

#include <gtest/gtest.h>

#include "core/uniform_scheme.hpp"
#include "graph/generators.hpp"
#include "graph/landmark_oracle.hpp"

namespace nav::api {
namespace {

TEST(NavigationEngine, FromFamilyBuildsAndRoutes) {
  auto engine = NavigationEngine::from_family("path", 64);
  EXPECT_EQ(engine.graph().num_nodes(), 64u);
  EXPECT_EQ(engine.scheme(), nullptr);
  EXPECT_EQ(engine.router_spec(), "greedy");
  const auto result = engine.route(0, 63, Rng(1));
  EXPECT_TRUE(result.reached);
  EXPECT_EQ(result.steps, 63u);  // no scheme: pure shortest-path walk
}

TEST(NavigationEngine, OracleAutoSelectionRespectsLimit) {
  EngineOptions dense;
  dense.dense_oracle_limit = 128;
  auto small = NavigationEngine::from_family("cycle", 64, 0x5eed, dense);
  EXPECT_NE(dynamic_cast<const graph::DistanceMatrix*>(&small.oracle()),
            nullptr);
  auto large = NavigationEngine::from_family("cycle", 256, 0x5eed, dense);
  EXPECT_NE(dynamic_cast<const graph::TargetDistanceCache*>(&large.oracle()),
            nullptr);
}

TEST(NavigationEngine, UseSchemeAndRouterAreFluent) {
  auto engine = NavigationEngine::from_family("cycle", 128);
  engine.use_scheme("ball").use_router("lookahead:1");
  ASSERT_NE(engine.scheme(), nullptr);
  EXPECT_EQ(engine.scheme_spec(), "ball");
  EXPECT_EQ(engine.router_spec(), "lookahead:1");
  EXPECT_EQ(engine.router().name(), "lookahead:1");
  const auto result = engine.route(0, 64, Rng(2));
  EXPECT_TRUE(result.reached);
  EXPECT_LE(result.steps, 2u * 64u);
  engine.use_scheme("none");
  EXPECT_EQ(engine.scheme(), nullptr);
}

TEST(NavigationEngine, CustomSchemePtrInstalls) {
  auto engine = NavigationEngine::from_family("path", 32);
  engine.use_scheme(std::make_unique<core::UniformScheme>(engine.graph()));
  ASSERT_NE(engine.scheme(), nullptr);
  EXPECT_EQ(engine.scheme_spec(), "uniform");
}

TEST(NavigationEngine, CustomSchemeSizeMismatchRejected) {
  auto engine = NavigationEngine::from_family("path", 32);
  const auto other = graph::make_path(33);
  EXPECT_THROW(
      (void)engine.use_scheme(std::make_unique<core::UniformScheme>(other)),
      std::invalid_argument);
}

TEST(NavigationEngine, UnknownSpecsThrow) {
  auto engine = NavigationEngine::from_family("path", 32);
  EXPECT_THROW((void)engine.use_scheme("warp-drive"), std::invalid_argument);
  EXPECT_THROW((void)engine.use_router("warp-drive"), std::invalid_argument);
  EXPECT_THROW((void)NavigationEngine::from_family("not-a-family", 32),
               std::invalid_argument);
}

TEST(NavigationEngine, RouteManyMatchesSequentialRouting) {
  auto engine = NavigationEngine::from_family("grid2d", 256);
  engine.use_scheme("uniform");
  std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs;
  Rng pair_rng(3);
  for (int i = 0; i < 40; ++i) {
    const auto s = static_cast<graph::NodeId>(random_index(pair_rng, 256));
    auto t = static_cast<graph::NodeId>(random_index(pair_rng, 256));
    if (t == s) t = (t + 1) % 256;
    pairs.emplace_back(s, t);
  }
  const Rng batch_rng(4);
  const auto parallel = engine.route_many(pairs, batch_rng, true);
  const auto serial = engine.route_many(pairs, batch_rng, false);
  ASSERT_EQ(parallel.size(), pairs.size());
  ASSERT_EQ(serial.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_TRUE(parallel[i].reached);
    // Pair i derives from rng.child(i): thread schedule cannot matter.
    EXPECT_EQ(parallel[i].steps, serial[i].steps);
    EXPECT_EQ(parallel[i].long_links_used, serial[i].long_links_used);
  }
}

TEST(NavigationEngine, RouteManyEmptyBatch) {
  auto engine = NavigationEngine::from_family("path", 16);
  const std::vector<std::pair<graph::NodeId, graph::NodeId>> none;
  EXPECT_TRUE(engine.route_many(none, Rng(5)).empty());
}

TEST(NavigationEngine, EstimateDiameterTracksKnownValue) {
  // Without long links the greedy diameter of the path is exactly n - 1,
  // and the peripheral pair policy always samples the endpoints.
  auto engine = NavigationEngine::from_family("path", 100);
  routing::TrialConfig trials;
  trials.num_pairs = 2;
  trials.resamples = 2;
  const auto est = engine.estimate_diameter(trials, Rng(6));
  EXPECT_DOUBLE_EQ(est.max_mean_steps, 99.0);
}

TEST(NavigationEngine, OracleSpecSelectsBackend) {
  EngineOptions options;
  options.oracle_spec = "landmark:4";
  auto engine = NavigationEngine::from_family("grid2d", 256, 0x5eed, options);
  const auto* landmark =
      dynamic_cast<const graph::LandmarkOracle*>(&engine.oracle());
  ASSERT_NE(landmark, nullptr);
  EXPECT_EQ(landmark->num_landmarks(), 4u);
  // Stall-tolerant routing end to end: never aborts on the inexact field.
  for (std::uint64_t i = 0; i < 8; ++i) {
    (void)engine.route(static_cast<graph::NodeId>(i), 255, Rng(i));
  }
  EngineOptions bad;
  bad.oracle_spec = "btree";
  EXPECT_THROW((void)NavigationEngine::from_family("path", 32, 0, bad),
               std::invalid_argument);
}

TEST(NavigationEngine, LoadGraphReadsFileSpecs) {
  const std::string fixture = std::string(NAV_TEST_DATA_DIR) + "/karate.dimacs";
  // Bare paths and explicit "file:"/"dimacs:" specs all resolve.
  auto engine = NavigationEngine::load_graph(fixture);
  EXPECT_EQ(engine.graph().num_nodes(), 34u);
  EXPECT_EQ(engine.graph().num_edges(), 78u);
  auto spec_engine = NavigationEngine::load_graph("dimacs:" + fixture);
  EXPECT_EQ(spec_engine.graph().num_nodes(), 34u);
  const auto result = engine.route(0, 33, Rng(1));
  EXPECT_TRUE(result.reached);
  EXPECT_THROW((void)NavigationEngine::load_graph("/nonexistent_xyz/k.gr"),
               std::runtime_error);
}

TEST(NavigationEngine, EngineIsMovable) {
  auto engine = NavigationEngine::from_family("cycle", 64);
  engine.use_scheme("uniform").use_router("lookahead:1");
  auto moved = std::move(engine);
  const auto result = moved.route(0, 32, Rng(7));
  EXPECT_TRUE(result.reached);
  EXPECT_EQ(moved.graph().num_nodes(), 64u);
}

}  // namespace
}  // namespace nav::api
