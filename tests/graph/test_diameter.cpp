#include "graph/diameter.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace nav::graph {
namespace {

TEST(Diameter, KnownValues) {
  EXPECT_EQ(exact_diameter(make_path(10)), 9u);
  EXPECT_EQ(exact_diameter(make_cycle(10)), 5u);
  EXPECT_EQ(exact_diameter(make_cycle(11)), 5u);
  EXPECT_EQ(exact_diameter(make_complete(7)), 1u);
  EXPECT_EQ(exact_diameter(make_star(9)), 2u);
  EXPECT_EQ(exact_diameter(make_grid2d(4, 6)), 8u);
  EXPECT_EQ(exact_diameter(make_hypercube(5)), 5u);
  EXPECT_EQ(exact_diameter(make_torus2d(6, 6)), 6u);
}

TEST(Diameter, SingletonIsZero) {
  EXPECT_EQ(exact_diameter(Graph(1, {})), 0u);
}

TEST(Diameter, RequiresConnectivity) {
  Graph g(3, {{0, 1}});
  EXPECT_THROW(exact_diameter(g), std::invalid_argument);
}

TEST(Eccentricities, PathProfile) {
  const auto ecc = eccentricities(make_path(5));
  EXPECT_EQ(ecc[0], 4u);
  EXPECT_EQ(ecc[2], 2u);  // center
  EXPECT_EQ(ecc[4], 4u);
}

TEST(DoubleSweep, ExactOnTrees) {
  EXPECT_EQ(double_sweep_lower_bound(make_path(33)), 32u);
  EXPECT_EQ(double_sweep_lower_bound(make_star(10)), 2u);
  EXPECT_EQ(double_sweep_lower_bound(make_balanced_tree(31, 2)),
            exact_diameter(make_balanced_tree(31, 2)));
}

TEST(DoubleSweep, LowerBoundsExact) {
  for (const auto& g : {make_grid2d(5, 8), make_torus2d(5, 7), make_cycle(17)}) {
    EXPECT_LE(double_sweep_lower_bound(g), exact_diameter(g));
  }
}

TEST(PeripheralPair, EndpointsOfPath) {
  const auto p = peripheral_pair(make_path(12));
  EXPECT_EQ(p.distance, 11u);
  EXPECT_TRUE((p.a == 0 && p.b == 11) || (p.a == 11 && p.b == 0));
}

TEST(PeripheralPair, DistanceMatchesBfs) {
  const auto g = make_grid2d(6, 6);
  const auto p = peripheral_pair(g);
  EXPECT_EQ(bfs_distances(g, p.a)[p.b], p.distance);
}

}  // namespace
}  // namespace nav::graph
