#include "graph/graph.hpp"

#include <gtest/gtest.h>

namespace nav::graph {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, TriangleBasics) {
  Graph g(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(Graph, NeighborsSorted) {
  Graph g(5, {{0, 4}, {0, 2}, {0, 1}, {0, 3}});
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 4u);
  for (std::size_t i = 0; i + 1 < nbrs.size(); ++i) {
    EXPECT_LT(nbrs[i], nbrs[i + 1]);
  }
}

TEST(Graph, ParallelEdgesDeduplicated) {
  Graph g(2, {{0, 1}, {1, 0}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Graph, RejectsSelfLoop) {
  EXPECT_THROW(Graph(2, {{1, 1}}), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRangeEndpoint) {
  EXPECT_THROW(Graph(2, {{0, 2}}), std::invalid_argument);
}

TEST(Graph, IsolatedNodesAllowed) {
  Graph g(4, {{0, 1}});
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_TRUE(g.neighbors(3).empty());
}

TEST(Graph, EdgeListCanonical) {
  Graph g(4, {{3, 2}, {1, 0}, {2, 0}});
  const auto edges = g.edge_list();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], (std::pair<NodeId, NodeId>{0, 1}));
  EXPECT_EQ(edges[1], (std::pair<NodeId, NodeId>{0, 2}));
  EXPECT_EQ(edges[2], (std::pair<NodeId, NodeId>{2, 3}));
}

TEST(Graph, SummaryMentionsCounts) {
  Graph g(3, {{0, 1}});
  EXPECT_EQ(g.summary(), "Graph(n=3, m=1)");
}

TEST(GraphBuilder, BuildsAndValidates) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  EXPECT_EQ(b.pending_edges(), 2u);
  const Graph g = std::move(b).build();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphBuilder, RejectsEagerly) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 0), std::invalid_argument);
  EXPECT_THROW(b.add_edge(0, 5), std::invalid_argument);
}

TEST(GraphBuilder, NonConsumingBuild) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const Graph g1 = b.build();
  const Graph g2 = b.build();
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
}

}  // namespace
}  // namespace nav::graph
