#include "graph/graph_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "graph/generators.hpp"

namespace nav::graph {
namespace {

TEST(GraphIo, RoundTripStream) {
  const auto g = make_grid2d(4, 5);
  std::stringstream buffer;
  write_graph(buffer, g);
  const auto back = read_graph(buffer);
  EXPECT_EQ(back.num_nodes(), g.num_nodes());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  EXPECT_EQ(back.edge_list(), g.edge_list());
}

TEST(GraphIo, RoundTripFile) {
  const auto g = make_cycle(12);
  const std::string path = ::testing::TempDir() + "nav_io_test.graph";
  save_graph(path, g);
  const auto back = load_graph(path);
  EXPECT_EQ(back.edge_list(), g.edge_list());
  std::remove(path.c_str());
}

TEST(GraphIo, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "# a comment\n\nnav-graph 1\n# another\nn 3\n\n0 1\n# trailing\n1 2\n");
  const auto g = read_graph(in);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphIo, IsolatedNodesSurvive) {
  Graph g(5, {{0, 1}});
  std::stringstream buffer;
  write_graph(buffer, g);
  EXPECT_EQ(read_graph(buffer).num_nodes(), 5u);
}

TEST(GraphIo, RejectsBadHeader) {
  std::stringstream in("wrong 1\nn 2\n");
  EXPECT_THROW(read_graph(in), std::invalid_argument);
}

TEST(GraphIo, RejectsBadVersion) {
  std::stringstream in("nav-graph 2\nn 2\n");
  EXPECT_THROW(read_graph(in), std::invalid_argument);
}

TEST(GraphIo, RejectsMissingCount) {
  std::stringstream in("nav-graph 1\n0 1\n");
  EXPECT_THROW(read_graph(in), std::invalid_argument);
}

TEST(GraphIo, RejectsOutOfRangeEdge) {
  std::stringstream in("nav-graph 1\nn 2\n0 5\n");
  EXPECT_THROW(read_graph(in), std::invalid_argument);
}

TEST(GraphIo, RejectsEmptyStream) {
  std::stringstream in("");
  EXPECT_THROW(read_graph(in), std::invalid_argument);
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(load_graph("/nonexistent_xyz/g.graph"), std::runtime_error);
}

// ---- load_edge_list: real-graph ingestion -------------------------------

/// Runs `fn`, returning the exception message ("" when nothing threw) — the
/// malformed-input matrix asserts on the "<source>:<line>:" prefix.
template <typename Fn>
std::string thrown_message(Fn&& fn) {
  try {
    fn();
  } catch (const std::exception& error) {
    return error.what();
  }
  return "";
}

TEST(EdgeList, AutoDetectsNavGraph) {
  std::stringstream in("nav-graph 1\nn 3\n0 1\n1 2\n");
  const auto loaded = load_edge_list(in);
  EXPECT_EQ(loaded.format, EdgeListFormat::kNavGraph);
  EXPECT_EQ(loaded.graph.num_nodes(), 3u);
  EXPECT_EQ(loaded.graph.num_edges(), 2u);
}

TEST(EdgeList, AutoDetectsDimacs) {
  std::stringstream in("c tiny\np edge 3 2\ne 1 2\ne 2 3\n");
  const auto loaded = load_edge_list(in);
  EXPECT_EQ(loaded.format, EdgeListFormat::kDimacs);
  EXPECT_EQ(loaded.graph.num_nodes(), 3u);
  EXPECT_EQ(loaded.graph.num_edges(), 2u);
  // 1-based input: 'e 1 2' must have become the 0-based edge (0, 1).
  EXPECT_EQ(loaded.graph.edge_list().front(), (std::pair<NodeId, NodeId>{0, 1}));
}

TEST(EdgeList, AutoDetectsSnap) {
  std::stringstream in("# comment\n10 20\n20 30\n10 30\n");
  const auto loaded = load_edge_list(in);
  EXPECT_EQ(loaded.format, EdgeListFormat::kSnap);
  // Arbitrary ids remap densely in first-seen order: 10->0, 20->1, 30->2.
  EXPECT_EQ(loaded.graph.num_nodes(), 3u);
  EXPECT_EQ(loaded.graph.num_edges(), 3u);
}

TEST(EdgeList, DimacsToleratesSelfLoopsAndDuplicates) {
  std::stringstream in(
      "p edge 3 5\ne 1 2\ne 2 1\ne 2 2\ne 2 3\ne 1 3\n");
  const auto loaded = load_edge_list(in);
  EXPECT_EQ(loaded.self_loops, 1u);
  EXPECT_EQ(loaded.duplicate_edges, 1u);  // e 2 1 duplicates e 1 2
  EXPECT_EQ(loaded.graph.num_edges(), 3u);
}

TEST(EdgeList, NavGraphSelfLoopsToleratedOnlyByIngestion) {
  const std::string text = "nav-graph 1\nn 2\n0 0\n0 1\n";
  std::stringstream strict(text);
  EXPECT_THROW((void)read_graph(strict), std::invalid_argument);
  std::stringstream tolerant(text);
  const auto loaded = load_edge_list(tolerant);
  EXPECT_EQ(loaded.self_loops, 1u);
  EXPECT_EQ(loaded.graph.num_edges(), 1u);
}

TEST(EdgeList, ExtractsLargestComponent) {
  // Two components: a triangle {0,1,2} and an edge {3,4}.
  std::stringstream in("p edge 5 4\ne 1 2\ne 2 3\ne 1 3\ne 4 5\n");
  const auto loaded = load_edge_list(in);
  EXPECT_EQ(loaded.nodes_loaded, 5u);
  EXPECT_EQ(loaded.nodes_dropped, 2u);
  EXPECT_EQ(loaded.graph.num_nodes(), 3u);
  EXPECT_EQ(loaded.graph.num_edges(), 3u);
}

TEST(EdgeList, KeepLargestComponentCanBeDisabled) {
  std::stringstream in("p edge 5 4\ne 1 2\ne 2 3\ne 1 3\ne 4 5\n");
  EdgeListOptions options;
  options.keep_largest_component = false;
  const auto loaded = load_edge_list(in, "<stream>", options);
  EXPECT_EQ(loaded.nodes_dropped, 0u);
  EXPECT_EQ(loaded.graph.num_nodes(), 5u);
}

TEST(EdgeList, ExplicitFormatOverridesSniffing) {
  // "1 2" sniffs as SNAP; forcing kDimacs must reject it as a bad line.
  std::stringstream in("1 2\n");
  EdgeListOptions options;
  options.format = EdgeListFormat::kDimacs;
  EXPECT_THROW((void)load_edge_list(in, "<stream>", options),
               std::invalid_argument);
}

TEST(EdgeList, ErrorsCarrySourceAndLineNumber) {
  // Line 4 (comment and blank lines still count) holds the bad endpoint.
  std::stringstream in("c header\np edge 2 2\n\ne 1 7\n");
  const auto message = thrown_message([&] { (void)load_edge_list(in, "k.gr"); });
  EXPECT_NE(message.find("k.gr:4:"), std::string::npos) << message;
  EXPECT_NE(message.find("out of range"), std::string::npos) << message;
}

TEST(EdgeList, MalformedInputMatrix) {
  // Every row: input text -> required "<source>:<line>" anchor. The matrix
  // pins both that malformed input THROWS and that the message localises it.
  const struct {
    const char* text;
    const char* anchor;
  } cases[] = {
      {"", "<in>:0"},                                // empty input
      {"e 1 2\n", "<in>:1"},                         // 'e' alone: undetectable
      {"p edge 2 1\ne 0 1\n", "<in>:2"},             // DIMACS ids are 1-based
      {"p edge 2 1\ne 1\n", "<in>:2"},               // short edge line
      {"p edge 2 1\nq 1 2\n", "<in>:2"},             // unknown DIMACS type
      {"p edge 2 1\np edge 2 1\n", "<in>:2"},        // duplicate problem line
      {"c only comments\n", "<in>:1"},               // missing problem line
      {"p edge x 1\n", "<in>:1"},                    // non-numeric count
      {"1 2\n3 4 5\n", "<in>:2"},                    // SNAP token overflow
      {"1 2\n3 x\n", "<in>:2"},                      // SNAP bad endpoint
      {"nav-graph 1\nn 2\n0 1 2\n", "<in>:3"},       // native bad edge line
      {"one two three\n", "<in>:1"},                 // undetectable format
  };
  for (const auto& c : cases) {
    std::stringstream in(c.text);
    const auto message =
        thrown_message([&] { (void)load_edge_list(in, "<in>"); });
    EXPECT_NE(message.find(c.anchor), std::string::npos)
        << "input " << ::testing::PrintToString(c.text) << " reported: "
        << message;
  }
}

TEST(EdgeList, DimacsEdgeBeforeProblemLineThrows) {
  std::stringstream in("c header\ne 1 2\np edge 2 1\n");
  const auto message =
      thrown_message([&] { (void)load_edge_list(in, "<in>"); });
  EXPECT_NE(message.find("<in>:2:"), std::string::npos) << message;
  EXPECT_NE(message.find("before the problem line"), std::string::npos)
      << message;
}

TEST(EdgeList, LoadsKarateFixture) {
  // The checked-in CI fixture: Zachary's karate club, DIMACS, connected.
  const auto loaded =
      load_edge_list(std::string(NAV_TEST_DATA_DIR) + "/karate.dimacs");
  EXPECT_EQ(loaded.format, EdgeListFormat::kDimacs);
  EXPECT_EQ(loaded.graph.num_nodes(), 34u);
  EXPECT_EQ(loaded.graph.num_edges(), 78u);
  EXPECT_EQ(loaded.nodes_dropped, 0u);
  EXPECT_EQ(loaded.self_loops, 0u);
  EXPECT_EQ(loaded.duplicate_edges, 0u);
  // Node 34 (0-based 33) is the highest-degree node in the club.
  EXPECT_EQ(loaded.graph.degree(33), 17u);
}

TEST(EdgeList, MissingFileNamesThePath) {
  const auto message = thrown_message(
      [] { (void)load_edge_list("/nonexistent_xyz/k.gr"); });
  EXPECT_NE(message.find("/nonexistent_xyz/k.gr"), std::string::npos);
}

}  // namespace
}  // namespace nav::graph
