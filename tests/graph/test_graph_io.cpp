#include "graph/graph_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "graph/generators.hpp"

namespace nav::graph {
namespace {

TEST(GraphIo, RoundTripStream) {
  const auto g = make_grid2d(4, 5);
  std::stringstream buffer;
  write_graph(buffer, g);
  const auto back = read_graph(buffer);
  EXPECT_EQ(back.num_nodes(), g.num_nodes());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  EXPECT_EQ(back.edge_list(), g.edge_list());
}

TEST(GraphIo, RoundTripFile) {
  const auto g = make_cycle(12);
  const std::string path = ::testing::TempDir() + "nav_io_test.graph";
  save_graph(path, g);
  const auto back = load_graph(path);
  EXPECT_EQ(back.edge_list(), g.edge_list());
  std::remove(path.c_str());
}

TEST(GraphIo, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "# a comment\n\nnav-graph 1\n# another\nn 3\n\n0 1\n# trailing\n1 2\n");
  const auto g = read_graph(in);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphIo, IsolatedNodesSurvive) {
  Graph g(5, {{0, 1}});
  std::stringstream buffer;
  write_graph(buffer, g);
  EXPECT_EQ(read_graph(buffer).num_nodes(), 5u);
}

TEST(GraphIo, RejectsBadHeader) {
  std::stringstream in("wrong 1\nn 2\n");
  EXPECT_THROW(read_graph(in), std::invalid_argument);
}

TEST(GraphIo, RejectsBadVersion) {
  std::stringstream in("nav-graph 2\nn 2\n");
  EXPECT_THROW(read_graph(in), std::invalid_argument);
}

TEST(GraphIo, RejectsMissingCount) {
  std::stringstream in("nav-graph 1\n0 1\n");
  EXPECT_THROW(read_graph(in), std::invalid_argument);
}

TEST(GraphIo, RejectsOutOfRangeEdge) {
  std::stringstream in("nav-graph 1\nn 2\n0 5\n");
  EXPECT_THROW(read_graph(in), std::invalid_argument);
}

TEST(GraphIo, RejectsEmptyStream) {
  std::stringstream in("");
  EXPECT_THROW(read_graph(in), std::invalid_argument);
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(load_graph("/nonexistent_xyz/g.graph"), std::runtime_error);
}

}  // namespace
}  // namespace nav::graph
