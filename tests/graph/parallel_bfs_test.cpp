// Differential coverage for the multi-worker BFS sweep: ParallelBfs must be
// bit-identical to the scalar engine on every registered family, radius, and
// worker count — including the degenerate frontiers (radius 0, isolated
// sources, disconnected graphs) — and DistanceMatrix slabs must hash
// byte-identical for every ParallelPolicy and across repeated builds.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/bfs_engine.hpp"
#include "graph/distance_oracle.hpp"
#include "graph/families.hpp"
#include "graph/generators.hpp"

namespace nav::graph {
namespace {

constexpr std::size_t kWorkerCounts[] = {1, 2, 3, 8};
constexpr Dist kRadii[] = {Dist{0}, Dist{1}, Dist{3}, Dist{17}, kInfDist};

/// A policy whose adaptivity thresholds are floored, so even the small
/// differential graphs drive the parallel top-down, bottom-up, and two-pass
/// frontier-rebuild code paths instead of the serial small-level shortcut.
ParallelPolicy exercising_policy(std::size_t workers) {
  ParallelPolicy policy;
  policy.num_workers = workers;
  policy.serial_frontier_cutoff = 1;
  policy.min_diropt_nodes = 1;
  return policy;
}

std::uint64_t fnv1a(std::span<const Dist> data) {
  std::uint64_t h = 1469598103934665603ull;
  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  for (std::size_t i = 0; i < data.size_bytes(); ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  return h;
}

TEST(ParallelBfs, MatchesScalarAcrossFamiliesRadiiAndWorkers) {
  BfsWorkspace scalar;
  for (const std::size_t workers : kWorkerCounts) {
    ParallelBfs sweep(exercising_policy(workers));
    ASSERT_EQ(sweep.workers(), workers);
    for (const FamilySpec& spec : all_families()) {
      Rng rng(0xBF5 + workers);
      const Graph g = spec.make(600, rng);
      std::vector<Dist> expect(g.num_nodes());
      std::vector<Dist> got(g.num_nodes());
      for (const NodeId s : {NodeId{0}, g.num_nodes() - 1, g.num_nodes() / 2}) {
        for (const Dist radius : kRadii) {
          scalar.distances_into_scalar(g, s, expect, radius);
          sweep.distances_into(g, s, got, radius);
          ASSERT_EQ(got, expect) << spec.name << " source=" << s
                                 << " r=" << radius << " workers=" << workers;
        }
      }
    }
  }
}

TEST(ParallelBfs, ProductionThresholdsMatchScalarOnLargerGraphs) {
  // Default adaptivity thresholds on graphs big enough to cross the
  // direction-optimizing gate: the sweep mixes serial small levels with
  // parallel wide ones and must still agree bit for bit.
  Rng rng(0x51AB);
  std::vector<std::pair<std::string, Graph>> graphs;
  graphs.emplace_back("hypercube", make_hypercube(11));
  graphs.emplace_back("gnp", make_connected_gnp(2000, 6.0 / 2000.0, rng));
  graphs.emplace_back("grid2d", make_grid2d(48, 48));
  BfsWorkspace scalar;
  for (const std::size_t workers : kWorkerCounts) {
    ParallelPolicy policy;
    policy.num_workers = workers;
    ParallelBfs sweep(policy);
    for (const auto& [name, g] : graphs) {
      std::vector<Dist> expect(g.num_nodes());
      std::vector<Dist> got(g.num_nodes());
      for (const NodeId s : {NodeId{0}, g.num_nodes() / 2}) {
        scalar.distances_into_scalar(g, s, expect);
        sweep.distances_into(g, s, got);
        ASSERT_EQ(got, expect) << name << " source=" << s
                               << " workers=" << workers;
      }
    }
  }
}

TEST(ParallelBfs, EmptyFrontierAndDisconnectedEdgeCases) {
  // Two components plus one fully isolated node: a sweep from the isolated
  // source empties its frontier after level 0, and cross-component nodes
  // must keep kInfDist at every worker count.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 1; v < 300; ++v) edges.push_back({v - 1, v});
  for (NodeId v = 301; v < 600; ++v) edges.push_back({v - 1, v});
  const Graph g(601, edges);  // node 600 is isolated
  BfsWorkspace scalar;
  for (const std::size_t workers : kWorkerCounts) {
    ParallelBfs sweep(exercising_policy(workers));
    std::vector<Dist> expect(g.num_nodes());
    std::vector<Dist> got(g.num_nodes());
    for (const NodeId s : {NodeId{0}, NodeId{350}, NodeId{600}}) {
      for (const Dist radius : kRadii) {
        scalar.distances_into_scalar(g, s, expect, radius);
        sweep.distances_into(g, s, got, radius);
        ASSERT_EQ(got, expect)
            << "source=" << s << " r=" << radius << " workers=" << workers;
      }
    }
    // The isolated source reaches only itself.
    sweep.distances_into(g, 600, got);
    EXPECT_EQ(got[600], 0u);
    EXPECT_EQ(got[0], kInfDist);
    EXPECT_EQ(got[599], kInfDist);
  }
}

TEST(ParallelBfs, RadiusPromotionMatchesWorkspaceCutover) {
  // A finite radius >= n-1 cannot bind; both engines promote it to the
  // unbounded sweep and the outputs stay identical to the bounded semantics.
  const Graph g = make_path(700);
  BfsWorkspace scalar;
  ParallelBfs sweep(exercising_policy(3));
  std::vector<Dist> expect(g.num_nodes());
  std::vector<Dist> got(g.num_nodes());
  for (const Dist radius :
       {static_cast<Dist>(g.num_nodes() - 1), static_cast<Dist>(g.num_nodes()),
        static_cast<Dist>(2 * g.num_nodes())}) {
    scalar.distances_into_scalar(g, 0, expect, radius);
    sweep.distances_into(g, 0, got, radius);
    ASSERT_EQ(got, expect) << "r=" << radius;
  }
}

TEST(ParallelBfs, RepeatedSweepsOnWarmInstanceStayIdentical) {
  Rng rng(0x7EA1);
  const Graph g = make_connected_gnp(900, 5.0 / 900.0, rng);
  BfsWorkspace scalar;
  std::vector<Dist> expect(g.num_nodes());
  scalar.distances_into_scalar(g, 7, expect);
  ParallelBfs sweep(exercising_policy(8));
  std::vector<Dist> got(g.num_nodes());
  for (int run = 0; run < 20; ++run) {
    sweep.distances_into(g, 7, got);
    ASSERT_EQ(got, expect) << "run " << run;
  }
}

TEST(ParallelBfs, PolicyResolution) {
  EXPECT_GE(ParallelPolicy{}.resolved_workers(), 1u);
  EXPECT_EQ(ParallelPolicy::serial().resolved_workers(), 1u);
  ParallelPolicy two;
  two.num_workers = 2;
  EXPECT_EQ(two.resolved_workers(), 2u);
  EXPECT_GE(shared_parallel_bfs().workers(), 1u);
}

TEST(DistanceMatrixDeterminism, SlabHashIndependentOfWorkerCount) {
  Rng rng(0xD57);
  const Graph g = make_connected_gnp(500, 6.0 / 500.0, rng);
  std::uint64_t reference_hash = 0;
  for (const std::size_t workers : kWorkerCounts) {
    ParallelPolicy policy;
    policy.num_workers = workers;
    const DistanceMatrix dm(g, policy);
    const std::uint64_t h = fnv1a(dm.slab());
    if (workers == kWorkerCounts[0]) {
      reference_hash = h;
    } else {
      ASSERT_EQ(h, reference_hash) << "workers=" << workers;
    }
  }
}

TEST(DistanceMatrixDeterminism, RepeatedBuildsAndRebuildsHashIdentical) {
  Rng rng(0xD58);
  const Graph g = make_connected_gnp(400, 5.0 / 400.0, rng);
  ParallelPolicy policy;
  policy.num_workers = 3;
  const DistanceMatrix first(g, policy);
  const std::uint64_t reference_hash = fnv1a(first.slab());
  for (int run = 0; run < 3; ++run) {
    DistanceMatrix dm(g, policy);
    ASSERT_EQ(fnv1a(dm.slab()), reference_hash) << "build " << run;
    dm.rebuild_all(g);
    ASSERT_EQ(fnv1a(dm.slab()), reference_hash) << "rebuild " << run;
    const std::vector<NodeId> some{0, 13, 399, 200};
    dm.rebuild_rows(g, some);
    ASSERT_EQ(fnv1a(dm.slab()), reference_hash) << "row rebuild " << run;
  }
}

TEST(TargetDistanceCachePolicy, PrefetchWavesMatchScalarRowsAtEveryWidth) {
  Rng rng(0xCA9);
  const Graph g = make_connected_gnp(800, 5.0 / 800.0, rng);
  BfsWorkspace scalar;
  std::vector<Dist> expect(g.num_nodes());
  for (const std::size_t workers : kWorkerCounts) {
    ParallelPolicy policy;
    policy.num_workers = workers;
    TargetDistanceCache cache(g, 16, policy);
    // Narrow wave (fewer misses than workers: the intra-sweep ParallelBfs
    // path) and a wide wave (row farming), plus duplicates and re-hits.
    const std::vector<NodeId> narrow{3};
    const std::vector<NodeId> wide{10, 20, 30, 40, 50, 60, 70, 80, 20, 10};
    std::vector<DistVecPtr> rows;
    cache.prefetch_into(narrow, rows);
    ASSERT_EQ(rows.size(), narrow.size());
    scalar.distances_into_scalar(g, 3, expect);
    EXPECT_TRUE(*rows[0] == std::span<const Dist>(expect)) << workers;
    cache.prefetch_into(wide, rows);
    ASSERT_EQ(rows.size(), wide.size());
    for (std::size_t i = 0; i < wide.size(); ++i) {
      scalar.distances_into_scalar(g, wide[i], expect);
      ASSERT_TRUE(*rows[i] == std::span<const Dist>(expect))
          << "workers=" << workers << " i=" << i;
    }
    // Duplicates share the first occurrence's pin.
    EXPECT_EQ(rows[8], rows[1]);
    EXPECT_EQ(rows[9], rows[0]);
    // An all-hit repeat serves the same rows from residency.
    std::vector<DistVecPtr> again;
    cache.prefetch_into(wide, again);
    for (std::size_t i = 0; i < wide.size(); ++i) {
      ASSERT_EQ(again[i], rows[i]) << "workers=" << workers << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace nav::graph
