#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/diameter.hpp"

namespace nav::graph {
namespace {

TEST(Generators, PathShape) {
  const auto g = make_path(6);
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(3), 2u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, PathSingleton) {
  const auto g = make_path(1);
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Generators, CycleShape) {
  const auto g = make_cycle(7);
  EXPECT_EQ(g.num_edges(), 7u);
  for (NodeId v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_THROW(make_cycle(2), std::invalid_argument);
}

TEST(Generators, CompleteShape) {
  const auto g = make_complete(6);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_EQ(g.max_degree(), 5u);
}

TEST(Generators, StarShape) {
  const auto g = make_star(8);
  EXPECT_EQ(g.num_edges(), 7u);
  EXPECT_EQ(g.degree(0), 7u);
  EXPECT_EQ(g.degree(3), 1u);
}

TEST(Generators, BalancedTreeIsTree) {
  for (const NodeId n : {1u, 2u, 7u, 10u, 31u, 100u}) {
    const auto g = make_balanced_tree(n, 2);
    EXPECT_EQ(g.num_nodes(), n);
    EXPECT_EQ(g.num_edges(), n - 1u);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Generators, BalancedTreeDepthLogarithmic) {
  const auto g = make_balanced_tree(127, 2);  // complete depth-6 binary tree
  EXPECT_EQ(exact_diameter(g), 12u);
}

TEST(Generators, TernaryTree) {
  const auto g = make_balanced_tree(13, 3);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, CaterpillarShape) {
  const auto g = make_caterpillar(5, 2);
  EXPECT_EQ(g.num_nodes(), 15u);
  EXPECT_EQ(g.num_edges(), 14u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(2), 4u);  // middle spine: 2 spine + 2 legs
}

TEST(Generators, CombShape) {
  const auto g = make_comb(4, 3);
  EXPECT_EQ(g.num_nodes(), 16u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.num_edges(), 15u);  // a tree
  EXPECT_EQ(exact_diameter(g), 3u + 3u + 3u);
}

TEST(Generators, SpiderShape) {
  const auto g = make_spider(4, 5);
  EXPECT_EQ(g.num_nodes(), 21u);
  EXPECT_EQ(g.degree(0), 4u);
  EXPECT_EQ(exact_diameter(g), 10u);
}

TEST(Generators, Grid2dShape) {
  const auto g = make_grid2d(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3u + 2u * 4u);  // 17
  EXPECT_EQ(exact_diameter(g), 5u);
}

TEST(Generators, Torus2dIsFourRegular) {
  const auto g = make_torus2d(4, 5);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_THROW(make_torus2d(2, 5), std::invalid_argument);
}

TEST(Generators, Grid3dShape) {
  const auto g = make_grid3d(3, 3, 3);
  EXPECT_EQ(g.num_nodes(), 27u);
  EXPECT_EQ(exact_diameter(g), 6u);
}

TEST(Generators, HypercubeShape) {
  const auto g = make_hypercube(4);
  EXPECT_EQ(g.num_nodes(), 16u);
  EXPECT_EQ(g.num_edges(), 32u);
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Generators, LollipopShape) {
  const auto g = make_lollipop(5, 10);
  EXPECT_EQ(g.num_nodes(), 15u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(exact_diameter(g), 11u);
}

TEST(Generators, BarbellShape) {
  const auto g = make_barbell(4, 3);
  EXPECT_EQ(g.num_nodes(), 11u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(exact_diameter(g), 6u);  // clique hop + 4 bridge hops + clique hop
}

TEST(Generators, RingOfCliquesShape) {
  const auto g = make_ring_of_cliques(4, 3);
  EXPECT_EQ(g.num_nodes(), 12u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, SubdividedCompleteShape) {
  const auto g = make_subdivided_complete(4, 2);
  EXPECT_EQ(g.num_nodes(), 4u + 6u * 2u);
  EXPECT_TRUE(is_connected(g));
  for (NodeId v = 0; v < 4; ++v) EXPECT_EQ(g.degree(v), 3u);
  // Farthest pairs are internal nodes of disjoint subdivided edges:
  // 1 step to a terminal + (seg+1) across another edge + 1 step inside = 5.
  EXPECT_EQ(exact_diameter(g), 5u);
}

TEST(Generators, SubdividedCompleteZeroSegIsComplete) {
  const auto g = make_subdivided_complete(5, 0);
  EXPECT_EQ(g.num_edges(), 10u);
}

TEST(Generators, GnpEdgeCountNearExpectation) {
  Rng rng(1);
  const auto g = make_gnp(200, 0.1, rng);
  const double expected = 0.1 * 200 * 199 / 2;
  EXPECT_GT(static_cast<double>(g.num_edges()), expected * 0.8);
  EXPECT_LT(static_cast<double>(g.num_edges()), expected * 1.2);
}

TEST(Generators, GnpEdgeCasesPZeroOne) {
  Rng rng(2);
  EXPECT_EQ(make_gnp(10, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(make_gnp(10, 1.0, rng).num_edges(), 45u);
}

TEST(Generators, ConnectedGnpAlwaysConnected) {
  Rng rng(3);
  for (int i = 0; i < 5; ++i) {
    // Deliberately sparse: repair path must kick in sometimes.
    const auto g = make_connected_gnp(64, 0.02, rng);
    EXPECT_TRUE(is_connected(g)) << "iteration " << i;
    EXPECT_EQ(g.num_nodes(), 64u);
  }
}

TEST(Generators, RandomTreeIsUniformTree) {
  Rng rng(4);
  for (const NodeId n : {1u, 2u, 3u, 10u, 100u}) {
    const auto g = make_random_tree(n, rng);
    EXPECT_EQ(g.num_nodes(), n);
    EXPECT_EQ(g.num_edges(), n > 0 ? n - 1 : 0u);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Generators, RandomTreeVariesWithSeed) {
  Rng a(5), b(6);
  const auto g1 = make_random_tree(50, a);
  const auto g2 = make_random_tree(50, b);
  EXPECT_NE(g1.edge_list(), g2.edge_list());
}

TEST(Generators, RandomCaterpillarIsTree) {
  Rng rng(7);
  for (int i = 0; i < 5; ++i) {
    const auto g = make_random_caterpillar(60, rng);
    EXPECT_EQ(g.num_nodes(), 60u);
    EXPECT_EQ(g.num_edges(), 59u);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Generators, RandomRegularConnectedAndNearRegular) {
  Rng rng(8);
  const auto g = make_random_regular(100, 4, rng);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_TRUE(is_connected(g));
  // Pairing-model repair may drop a few stubs; stay close to 4-regular.
  std::size_t total_degree = 0;
  for (NodeId v = 0; v < 100; ++v) {
    total_degree += g.degree(v);
    EXPECT_LE(g.degree(v), 4u + 2u);
  }
  EXPECT_GT(total_degree, 100u * 4u * 9 / 10);
}

TEST(Generators, RandomRegularSmallDiameter) {
  Rng rng(9);
  const auto g = make_random_regular(512, 4, rng);
  EXPECT_LE(exact_diameter(g), 12u);  // expander-ish: ~log n
}

TEST(Generators, RandomRegularValidation) {
  Rng rng(10);
  EXPECT_THROW(make_random_regular(10, 2, rng), std::invalid_argument);
  EXPECT_THROW(make_random_regular(9, 3, rng), std::invalid_argument);  // odd n*d
  EXPECT_THROW(make_random_regular(4, 5, rng), std::invalid_argument);
}

TEST(Generators, KleinbergBaseIsSquareTorus) {
  const auto g = make_kleinberg_base(5);
  EXPECT_EQ(g.num_nodes(), 25u);
  for (NodeId v = 0; v < 25; ++v) EXPECT_EQ(g.degree(v), 4u);
}

}  // namespace
}  // namespace nav::graph
