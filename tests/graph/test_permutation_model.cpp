#include "graph/permutation_model.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"

namespace nav::graph {
namespace {

TEST(PermutationModel, IdentityHasNoEdges) {
  PermutationModel m({0, 1, 2, 3});
  EXPECT_EQ(m.to_graph().num_edges(), 0u);
}

TEST(PermutationModel, ReversalIsComplete) {
  PermutationModel m({3, 2, 1, 0});
  EXPECT_EQ(m.to_graph().num_edges(), 6u);
}

TEST(PermutationModel, EdgesAreExactlyInversions) {
  PermutationModel m({1, 3, 0, 2});
  const auto g = m.to_graph();
  EXPECT_TRUE(g.has_edge(0, 2));   // 1 > 0
  EXPECT_TRUE(g.has_edge(1, 2));   // 3 > 0
  EXPECT_TRUE(g.has_edge(1, 3));   // 3 > 2
  EXPECT_FALSE(g.has_edge(0, 1));  // 1 < 3
  EXPECT_FALSE(g.has_edge(0, 3));  // 1 < 2
  EXPECT_FALSE(g.has_edge(2, 3));  // 0 < 2
}

TEST(PermutationModel, CutSetMatchesDefinition) {
  PermutationModel m({1, 3, 0, 2});
  // Cut c=2: u crosses iff (u<2) XOR (pi(u)<2). pi = [1,3,0,2].
  // u=0: 0<2, 1<2 -> no. u=1: 1<2, 3>=2 -> yes. u=2: 2>=2, 0<2 -> yes.
  // u=3: both right -> no.
  const auto cut = m.cut_set(2);
  EXPECT_EQ(cut, (std::vector<NodeId>{1, 2}));
}

TEST(PermutationModel, CutSidesEquinumerous) {
  Rng rng(3);
  const auto m = random_permutation_model(40, rng);
  for (NodeId c = 1; c < 40; ++c) {
    std::size_t left = 0, right = 0;
    for (const NodeId u : m.cut_set(c)) {
      (u < c ? left : right) += 1;
    }
    EXPECT_EQ(left, right) << "cut " << c;
  }
}

TEST(PermutationModel, RejectsNonPermutation) {
  EXPECT_THROW(PermutationModel({0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(PermutationModel({0, 5, 1}), std::invalid_argument);
  EXPECT_THROW(PermutationModel({}), std::invalid_argument);
}

TEST(PermutationModel, RandomIsValidPermutation) {
  Rng rng(4);
  const auto m = random_permutation_model(100, rng);
  std::vector<bool> seen(100, false);
  for (NodeId u = 0; u < 100; ++u) {
    EXPECT_FALSE(seen[m.pi(u)]);
    seen[m.pi(u)] = true;
  }
}

TEST(PermutationModel, BandedIsConnected) {
  Rng rng(5);
  for (const NodeId n : {8u, 33u, 100u, 257u}) {
    const auto m = banded_permutation_model(n, 8, rng);
    EXPECT_TRUE(is_connected(m.to_graph())) << "n=" << n;
  }
}

TEST(PermutationModel, BandedIsSparseForSmallWindow) {
  Rng rng(6);
  const auto m = banded_permutation_model(400, 6, rng);
  const auto g = m.to_graph();
  // Window-local shuffles: expected O(n * w) edges, far below n^2/4.
  EXPECT_LT(g.num_edges(), 400u * 20u);
}

TEST(PermutationModel, BandedEveryCutCrossed) {
  Rng rng(7);
  const auto m = banded_permutation_model(120, 5, rng);
  for (NodeId c = 1; c < 120; ++c) {
    EXPECT_FALSE(m.cut_set(c).empty()) << "cut " << c;
  }
}

}  // namespace
}  // namespace nav::graph
