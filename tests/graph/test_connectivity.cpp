#include "graph/connectivity.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace nav::graph {
namespace {

TEST(Connectivity, SingleComponent) {
  const auto g = make_cycle(6);
  const auto c = connected_components(g);
  EXPECT_EQ(c.count, 1u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Connectivity, TwoComponents) {
  Graph g(5, {{0, 1}, {2, 3}});
  const auto c = connected_components(g);
  EXPECT_EQ(c.count, 3u);  // {0,1}, {2,3}, {4}
  EXPECT_EQ(c.component_of[0], c.component_of[1]);
  EXPECT_EQ(c.component_of[2], c.component_of[3]);
  EXPECT_NE(c.component_of[0], c.component_of[2]);
  EXPECT_FALSE(is_connected(g));
}

TEST(Connectivity, ComponentIdsOrderedBySmallestNode) {
  Graph g(4, {{2, 3}});
  const auto c = connected_components(g);
  EXPECT_EQ(c.component_of[0], 0u);
  EXPECT_EQ(c.component_of[1], 1u);
  EXPECT_EQ(c.component_of[2], 2u);
  EXPECT_EQ(c.component_of[3], 2u);
}

TEST(Connectivity, EmptyAndSingletonConnected) {
  EXPECT_TRUE(is_connected(Graph(1, {})));
  EXPECT_TRUE(is_connected(Graph(0, {})));
}

TEST(LargestComponent, ExtractsBiggest) {
  // Components: {0,1,2} (triangle), {3,4}.
  Graph g(5, {{0, 1}, {1, 2}, {0, 2}, {3, 4}});
  const auto lc = largest_component(g);
  EXPECT_EQ(lc.graph.num_nodes(), 3u);
  EXPECT_EQ(lc.graph.num_edges(), 3u);
  EXPECT_EQ(lc.new_to_old.size(), 3u);
  EXPECT_EQ(lc.old_to_new[3], kNoNode);
  EXPECT_EQ(lc.old_to_new[0], 0u);
  EXPECT_TRUE(is_connected(lc.graph));
}

TEST(LargestComponent, PreservesEdgesUnderRelabeling) {
  Graph g(6, {{4, 5}, {4, 3}, {5, 3}, {0, 1}});
  const auto lc = largest_component(g);
  ASSERT_EQ(lc.graph.num_nodes(), 3u);
  // The triangle 3-4-5 must map to a triangle.
  for (NodeId u = 0; u < 3; ++u) EXPECT_EQ(lc.graph.degree(u), 2u);
}

TEST(LargestComponent, WholeGraphWhenConnected) {
  const auto g = make_path(7);
  const auto lc = largest_component(g);
  EXPECT_EQ(lc.graph.num_nodes(), 7u);
  EXPECT_EQ(lc.graph.num_edges(), 6u);
}

}  // namespace
}  // namespace nav::graph
