#include "graph/bfs.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"

namespace nav::graph {
namespace {

TEST(Bfs, PathDistances) {
  const auto g = make_path(5);
  const auto d = bfs_distances(g, 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
}

TEST(Bfs, UnreachableIsInf) {
  Graph g(3, {{0, 1}});
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[2], kInfDist);
}

TEST(Bfs, BoundedStopsAtRadius) {
  const auto g = make_path(10);
  const auto d = bfs_distances_bounded(g, 0, 3);
  EXPECT_EQ(d[3], 3u);
  EXPECT_EQ(d[4], kInfDist);
}

TEST(Bfs, BoundedZeroRadiusOnlySource) {
  const auto g = make_path(4);
  const auto d = bfs_distances_bounded(g, 2, 0);
  EXPECT_EQ(d[2], 0u);
  EXPECT_EQ(d[1], kInfDist);
  EXPECT_EQ(d[3], kInfDist);
}

TEST(Ball, SizesOnPath) {
  const auto g = make_path(100);
  EXPECT_EQ(ball(g, 50, 0).size(), 1u);
  EXPECT_EQ(ball(g, 50, 3).size(), 7u);   // 3 left + center + 3 right
  EXPECT_EQ(ball(g, 0, 5).size(), 6u);    // one-sided at the endpoint
  EXPECT_EQ(ball_size(g, 50, 200), 100u); // whole graph
}

TEST(Ball, FirstElementIsCenterAndOrderIsByDistance) {
  const auto g = make_grid2d(5, 5);
  const auto b = ball(g, 12, 2);
  EXPECT_EQ(b.front(), 12u);
  const auto dist = bfs_distances(g, 12);
  for (std::size_t i = 0; i + 1 < b.size(); ++i) {
    EXPECT_LE(dist[b[i]], dist[b[i + 1]]);
  }
}

TEST(Ball, GridBallCountsMatchManhattan) {
  // Interior node of a big grid: |B(u, r)| = 2r^2 + 2r + 1.
  const auto g = make_grid2d(21, 21);
  const NodeId center = 10 * 21 + 10;
  for (Dist r = 0; r <= 4; ++r) {
    EXPECT_EQ(ball_size(g, center, r), 2u * r * r + 2u * r + 1u) << "r=" << r;
  }
}

TEST(MultiSourceBfs, NearestSourceWins) {
  const auto g = make_path(10);
  const auto d = multi_source_bfs(g, {0, 9});
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[9], 0u);
  EXPECT_EQ(d[4], 4u);
  EXPECT_EQ(d[5], 4u);
}

TEST(MultiSourceBfs, DuplicateSourcesFine) {
  const auto g = make_path(5);
  const auto d = multi_source_bfs(g, {2, 2, 2});
  EXPECT_EQ(d[0], 2u);
}

TEST(FarthestNode, PathEndpoint) {
  const auto g = make_path(8);
  const auto far = farthest_node(g, 3);
  EXPECT_EQ(far.node, 7u);
  EXPECT_EQ(far.distance, 4u);
}

TEST(ShortestPath, PathGraphIsIdentity) {
  const auto g = make_path(6);
  const auto p = shortest_path(g, 1, 4);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p.front(), 1u);
  EXPECT_EQ(p.back(), 4u);
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    EXPECT_TRUE(g.has_edge(p[i], p[i + 1]));
  }
}

TEST(ShortestPath, SourceEqualsTarget) {
  const auto g = make_path(3);
  const auto p = shortest_path(g, 1, 1);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], 1u);
}

TEST(ShortestPath, UnreachableGivesEmpty) {
  Graph g(3, {{0, 1}});
  EXPECT_TRUE(shortest_path(g, 0, 2).empty());
}

TEST(ShortestPath, GridLengthMatchesBfs) {
  const auto g = make_grid2d(6, 7);
  const auto d = bfs_distances(g, 0);
  const auto p = shortest_path(g, 0, 41);
  EXPECT_EQ(p.size(), d[41] + 1u);
}

TEST(Bfs, RejectsBadSource) {
  const auto g = make_path(3);
  EXPECT_THROW(bfs_distances(g, 5), std::invalid_argument);
  EXPECT_THROW(ball(g, 5, 1), std::invalid_argument);
  EXPECT_THROW(multi_source_bfs(g, {}), std::invalid_argument);
}

}  // namespace
}  // namespace nav::graph
