// LandmarkOracle invariants: the triangle estimate is an upper bound that is
// 1-Lipschitz along edges, exact at landmarks and inside the patch ball, and
// deterministic — and exact()-aware routers terminate on it.
#include "graph/landmark_oracle.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/uniform_scheme.hpp"
#include "graph/distance_oracle.hpp"
#include "graph/generators.hpp"
#include "routing/greedy_router.hpp"
#include "routing/lookahead_router.hpp"

namespace nav::graph {
namespace {

LandmarkOptions with_k(std::size_t k,
                       LandmarkSelection sel = LandmarkSelection::kFarthest) {
  LandmarkOptions options;
  options.k = k;
  options.selection = sel;
  return options;
}

TEST(LandmarkOracle, IsAnUpperBoundEverywhere) {
  const auto g = make_grid2d(12, 10);
  const DistanceMatrix exact(g);
  const LandmarkOracle approx(g, with_k(6));
  for (NodeId t = 0; t < g.num_nodes(); t += 7) {
    const auto row = approx.distances_to(t);
    const auto truth = exact.distances_to(t);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      ASSERT_GE((*row)[u], (*truth)[u]) << "u=" << u << " t=" << t;
      ASSERT_NE((*row)[u], kInfDist);  // connected graph: bound is finite
    }
    EXPECT_EQ((*row)[t], 0u);  // the anchor: d̂(t, t) = 0
  }
}

TEST(LandmarkOracle, ExactAtLandmarksAndInsidePatchBall) {
  const auto g = make_grid2d(12, 10);
  const DistanceMatrix exact(g);
  LandmarkOptions options = with_k(5);
  options.exact_radius = 3;
  const LandmarkOracle approx(g, options);
  const NodeId target = 57;
  const auto row = approx.distances_to(target);
  const auto truth = exact.distances_to(target);
  // At a landmark l, the l = u term collapses the bound to the truth.
  for (const NodeId l : approx.landmarks()) {
    EXPECT_EQ((*row)[l], (*truth)[l]) << "landmark " << l;
    EXPECT_EQ(approx.distance(l, target), (*truth)[l]);
  }
  // Inside the patch ball the overlay forces exactness.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if ((*truth)[u] <= options.exact_radius) {
      EXPECT_EQ((*row)[u], (*truth)[u]) << "patched node " << u;
    }
  }
}

TEST(LandmarkOracle, PureFieldIsLipschitzAlongEdges) {
  // |d̂(u, t) - d̂(v, t)| <= 1 for every edge (u, v): the property that lets
  // greedy descend without overshooting the target. This holds for the PURE
  // triangle field (each d(·, l) term is 1-Lipschitz, so the min is); the
  // exact-ball patch deliberately breaks it at the ball boundary in exchange
  // for strict descent inside, so test with the patch off and skip the
  // row[t] = 0 anchor's edges.
  const auto g = make_grid2d(9, 9);
  LandmarkOptions options = with_k(4);
  options.exact_radius = 0;
  const LandmarkOracle approx(g, options);
  const NodeId target = 40;
  const auto row = approx.distances_to(target);
  for (const auto& [u, v] : g.edge_list()) {
    if (u == target || v == target) continue;
    const auto du = (*row)[u];
    const auto dv = (*row)[v];
    ASSERT_LE(du > dv ? du - dv : dv - du, 1u)
        << "edge (" << u << ", " << v << ")";
  }
}

TEST(LandmarkOracle, IsDeterministicAndReportsExactFalse) {
  const auto g = make_grid2d(10, 8);
  const LandmarkOracle a(g, with_k(6));
  const LandmarkOracle b(g, with_k(6));
  EXPECT_FALSE(a.exact());
  ASSERT_EQ(a.num_landmarks(), 6u);
  EXPECT_TRUE(std::equal(a.landmarks().begin(), a.landmarks().end(),
                         b.landmarks().begin(), b.landmarks().end()));
  for (NodeId t = 0; t < g.num_nodes(); t += 11) {
    ASSERT_TRUE(*a.distances_to(t) == *b.distances_to(t));
  }
}

TEST(LandmarkOracle, SelectionsDiffer) {
  // Degree selection picks hubs; farthest spreads out. On a star-ish graph
  // the first landmark is the hub either way, but on a grid the two
  // traversals pick different sets past the seed.
  const auto g = make_grid2d(10, 10);
  const LandmarkOracle by_degree(g, with_k(8, LandmarkSelection::kDegree));
  const LandmarkOracle farthest(g, with_k(8, LandmarkSelection::kFarthest));
  ASSERT_EQ(by_degree.num_landmarks(), 8u);
  ASSERT_EQ(farthest.num_landmarks(), 8u);
  const auto d = by_degree.landmarks();
  const auto f = farthest.landmarks();
  EXPECT_FALSE(std::equal(d.begin(), d.end(), f.begin(), f.end()));
}

TEST(LandmarkOracle, KClampsToNodeCountAndFullCoverIsExact) {
  // k >= n: every node is a landmark, so the bound collapses to the truth.
  const auto g = make_cycle(12);
  const LandmarkOracle approx(g, with_k(64));
  EXPECT_EQ(approx.num_landmarks(), 12u);
  const DistanceMatrix exact(g);
  for (NodeId t = 0; t < g.num_nodes(); ++t) {
    ASSERT_TRUE(*approx.distances_to(t) == *exact.distances_to(t));
  }
}

TEST(LandmarkOracle, MoreLandmarksNeverWorsenTheBound) {
  const auto g = make_grid2d(14, 9);
  const LandmarkOracle coarse(g, with_k(2));
  const LandmarkOracle fine(g, with_k(16));
  const NodeId target = 100;
  const auto loose = coarse.distances_to(target);
  const auto tight = fine.distances_to(target);
  // Farthest selection grows the landmark set monotonically (same seed,
  // same traversal), so the k=16 min includes every k=2 term.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    ASSERT_LE((*tight)[u], (*loose)[u]) << "u=" << u;
  }
}

TEST(LandmarkOracle, RowCacheHitsAndMisses) {
  const auto g = make_grid2d(8, 8);
  LandmarkOptions options = with_k(4);
  options.row_cache_slots = 2;
  const LandmarkOracle approx(g, options);
  (void)approx.distances_to(1);
  (void)approx.distances_to(1);
  (void)approx.distances_to(2);
  (void)approx.distances_to(3);  // evicts target 1
  (void)approx.distances_to(1);  // re-materialises
  EXPECT_EQ(approx.misses(), 4u);
  EXPECT_EQ(approx.hits(), 1u);
}

TEST(LandmarkOracle, RejectsDegenerateOptions) {
  const auto g = make_cycle(8);
  EXPECT_THROW((void)LandmarkOracle(g, with_k(0)), std::invalid_argument);
}

TEST(LandmarkOracle, RoutersTerminateOnTheApproximateField) {
  // The field stalls greedy descent at local minima (classically: AT a
  // landmark, where no neighbour improves the bound); exact()-aware routers
  // must return cleanly — reached or not — rather than abort on the broken
  // strict-descent invariant. 40 random pairs exercise plenty of stalls.
  const auto g = make_grid2d(16, 16);
  const LandmarkOracle approx(g, with_k(8));
  const core::UniformScheme scheme(g);
  const routing::GreedyRouter greedy(g, approx);
  const routing::LookaheadRouter lookahead(g, approx, 1);
  for (std::uint64_t trial = 0; trial < 40; ++trial) {
    Rng rng(trial);
    const auto s = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    auto t = static_cast<NodeId>(rng.next_below(g.num_nodes() - 1));
    if (t >= s) ++t;
    const auto got = greedy.route(s, t, &scheme, Rng(7 + trial));
    const auto deep = lookahead.route(s, t, &scheme, Rng(7 + trial));
    if (got.reached) EXPECT_GT(got.steps, 0u);
    if (deep.reached) EXPECT_GT(deep.steps, 0u);
  }
  // A pair starting inside the exact patch ball must arrive: the overlay
  // makes the field strictly descending there.
  const auto near = greedy.route(1, 0, &scheme, Rng(99));
  EXPECT_TRUE(near.reached);
  EXPECT_EQ(near.steps, 1u);
}

}  // namespace
}  // namespace nav::graph
