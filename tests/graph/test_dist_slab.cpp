// Compact distance storage (dist_slab.hpp) and its oracle integration: the
// narrow widths are a pure storage decision, so every width must be
// bit-identical to u32 on reads — and saturation must be a loud error,
// never a silently wrong distance.
#include "graph/dist_slab.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/uniform_scheme.hpp"
#include "graph/distance_oracle.hpp"
#include "graph/generators.hpp"
#include "routing/greedy_router.hpp"

namespace nav::graph {
namespace {

constexpr DistWidth kWidths[] = {DistWidth::kU8, DistWidth::kU16,
                                 DistWidth::kU32};

TEST(DistSlab, WidthHelpers) {
  EXPECT_EQ(width_bytes(DistWidth::kU8), 1u);
  EXPECT_EQ(width_bytes(DistWidth::kU16), 2u);
  EXPECT_EQ(width_bytes(DistWidth::kU32), 4u);
  EXPECT_EQ(max_finite(DistWidth::kU8), 0xFEu);
  EXPECT_EQ(max_finite(DistWidth::kU16), 0xFFFEu);
  EXPECT_EQ(max_finite(DistWidth::kU32), kInfDist - 1);
  EXPECT_EQ(width_for_bound(0), DistWidth::kU8);
  EXPECT_EQ(width_for_bound(0xFE), DistWidth::kU8);
  EXPECT_EQ(width_for_bound(0xFF), DistWidth::kU16);
  EXPECT_EQ(width_for_bound(0xFFFE), DistWidth::kU16);
  EXPECT_EQ(width_for_bound(0xFFFF), DistWidth::kU32);
  EXPECT_STREQ(width_token(DistWidth::kU8), "u8");
  EXPECT_EQ(parse_dist_width("u16", "spec"), DistWidth::kU16);
  EXPECT_THROW((void)parse_dist_width("u64", "spec"), std::invalid_argument);
}

TEST(DistSlab, NarrowWidenRoundTrip) {
  const std::vector<Dist> row = {0, 1, 17, 0xFE, kInfDist, 3};
  for (const auto width : kWidths) {
    std::vector<std::uint8_t> packed(row.size() * width_bytes(width));
    EXPECT_FALSE(narrow_row(row, width, packed.data()));
    std::vector<Dist> widened(row.size());
    widen_row(packed.data(), width, widened);
    EXPECT_EQ(widened, row) << width_token(width);
    for (std::size_t i = 0; i < row.size(); ++i) {
      EXPECT_EQ(widen_entry(packed.data(), width, i), row[i]);
    }
  }
}

TEST(DistSlab, NarrowRowReportsSaturation) {
  const std::vector<Dist> row = {0, 0xFF, 2};  // 0xFF exceeds u8's max 0xFE
  std::vector<std::uint8_t> packed(row.size());
  EXPECT_TRUE(narrow_row(row, DistWidth::kU8, packed.data()));
  std::vector<std::uint8_t> wide(row.size() * 2);
  EXPECT_FALSE(narrow_row(row, DistWidth::kU16, wide.data()));
}

// ---- DistanceMatrix at every width --------------------------------------

TEST(DistSlab, MatrixWidthsAreBitIdentical) {
  const auto g = make_grid2d(9, 7);
  const DistanceMatrix reference(g);
  for (const auto width : kWidths) {
    const DistanceMatrix narrow(g, {}, width);
    EXPECT_EQ(narrow.width(), width);
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      const auto row = narrow.distances_to(t);
      const auto ref = reference.distances_to(t);
      ASSERT_TRUE(*row == *ref) << width_token(width) << " target " << t;
      EXPECT_EQ(narrow.distance(5, t), reference.distance(5, t));
    }
  }
}

TEST(DistSlab, NarrowMatrixGuardsSlabAccess) {
  const auto g = make_cycle(16);
  const DistanceMatrix narrow(g, {}, DistWidth::kU8);
  EXPECT_THROW((void)narrow.slab(), std::invalid_argument);
  EXPECT_EQ(narrow.packed_slab().size(),
            static_cast<std::size_t>(16) * 16);
  const DistanceMatrix wide(g);
  EXPECT_EQ(wide.slab().size(), wide.packed_slab().size() / sizeof(Dist));
}

TEST(DistSlab, MatrixSaturationThrows) {
  // A 300-path has distances up to 299 > u8's max finite 254.
  const auto g = make_path(300);
  EXPECT_THROW((void)DistanceMatrix(g, {}, DistWidth::kU8),
               std::invalid_argument);
  EXPECT_NO_THROW((void)DistanceMatrix(g, {}, DistWidth::kU16));
}

TEST(DistSlab, MatrixRebuildChecksSaturation) {
  const auto small = make_path(64);
  DistanceMatrix m(small, {}, DistWidth::kU8);
  EXPECT_NO_THROW(m.rebuild_all(small));
  const NodeId targets[] = {0, 63};
  EXPECT_NO_THROW(m.rebuild_rows(small, targets));
}

// ---- TargetDistanceCache at every width ---------------------------------

TEST(DistSlab, CacheWidthsAreBitIdentical) {
  const auto g = make_grid2d(12, 11);
  const TargetDistanceCache reference(g, 8);
  for (const auto width : kWidths) {
    const TargetDistanceCache narrow(g, 8, {}, width);
    EXPECT_EQ(narrow.width(), width);
    // More distinct targets than capacity: hits, misses, and evictions all
    // happen while the comparison runs (both caches recompute evicted rows
    // deterministically).
    for (NodeId t = 0; t < 24; ++t) {
      ASSERT_TRUE(*narrow.distances_to(t) == *reference.distances_to(t))
          << width_token(width) << " target " << t;
      EXPECT_EQ(narrow.distance(3, t), reference.distance(3, t));
    }
  }
}

TEST(DistSlab, CachePrefetchWidthsAreBitIdentical) {
  const auto g = make_grid2d(10, 10);
  const TargetDistanceCache reference(g, 4);
  const std::vector<NodeId> wave = {3, 97, 3, 41, 55, 41, 7};
  for (const auto width : kWidths) {
    const TargetDistanceCache narrow(g, 4, {}, width);
    std::vector<DistVecPtr> pins, ref_pins;
    narrow.prefetch_into(wave, pins);
    reference.prefetch_into(wave, ref_pins);
    ASSERT_EQ(pins.size(), wave.size());
    for (std::size_t i = 0; i < wave.size(); ++i) {
      ASSERT_TRUE(*pins[i] == *ref_pins[i])
          << width_token(width) << " wave slot " << i;
    }
    // Duplicate targets share one row (identity, not just equality).
    EXPECT_TRUE(pins[0] == pins[2]);
    EXPECT_TRUE(pins[3] == pins[5]);
  }
}

TEST(DistSlab, CacheSaturationThrows) {
  const auto g = make_path(300);
  const TargetDistanceCache narrow(g, 4, {}, DistWidth::kU8);
  EXPECT_THROW((void)narrow.distances_to(0), std::invalid_argument);
  std::vector<DistVecPtr> pins;
  const std::vector<NodeId> wave = {0, 100};
  EXPECT_THROW(narrow.prefetch_into(wave, pins), std::invalid_argument);
  // u16 holds the same graph fine.
  const TargetDistanceCache wide(g, 4, {}, DistWidth::kU16);
  EXPECT_EQ((*wide.distances_to(0))[299], 299u);
}

TEST(DistSlab, CacheBudgetScalesWithWidth) {
  const NodeId n = 1024;
  const MemoryBudget budget{32 * 1024};
  const auto u32_slots =
      TargetDistanceCache::capacity_for_budget(budget, n, DistWidth::kU32);
  const auto u16_slots =
      TargetDistanceCache::capacity_for_budget(budget, n, DistWidth::kU16);
  const auto u8_slots =
      TargetDistanceCache::capacity_for_budget(budget, n, DistWidth::kU8);
  EXPECT_EQ(u32_slots, 8u);
  EXPECT_EQ(u16_slots, 16u);
  EXPECT_EQ(u8_slots, 32u);
  // The 2-arg legacy overload is the u32 rule.
  EXPECT_EQ(TargetDistanceCache::capacity_for_budget(budget, n), u32_slots);
}

TEST(DistSlab, CacheEraseAndClearWorkAtNarrowWidths) {
  const auto g = make_grid2d(8, 8);
  TargetDistanceCache cache(g, 4, {}, DistWidth::kU8);
  (void)cache.distances_to(5);
  (void)cache.distances_to(9);
  EXPECT_TRUE(cache.peek(5) != nullptr);
  EXPECT_TRUE(cache.erase(5));
  EXPECT_FALSE(cache.erase(5));
  EXPECT_TRUE(cache.peek(5) == nullptr);
  cache.clear();
  EXPECT_TRUE(cache.peek(9) == nullptr);
  // The cache still serves queries after a clear.
  EXPECT_EQ(cache.distance(0, 9), (*cache.distances_to(9))[0]);
}

TEST(DistSlab, PeekBeyondWideWindowDoesNotDisturbLru) {
  // Capacity above kWideWindow: some resident targets are packed-only.
  const auto g = make_grid2d(8, 8);
  TargetDistanceCache cache(g, TargetDistanceCache::kWideWindow + 8, {},
                            DistWidth::kU8);
  for (NodeId t = 0; t < TargetDistanceCache::kWideWindow + 8; ++t) {
    (void)cache.distances_to(t);
  }
  const TargetDistanceCache reference(g, 4);
  for (NodeId t = 0; t < TargetDistanceCache::kWideWindow + 8; ++t) {
    const auto peeked = cache.peek(t);
    ASSERT_TRUE(peeked != nullptr) << "target " << t;
    ASSERT_TRUE(*peeked == *reference.distances_to(t)) << "target " << t;
  }
}

// ---- routing is width-invariant -----------------------------------------

TEST(DistSlab, GreedyRoutesAreBitIdenticalAcrossWidths) {
  const auto g = make_grid2d(16, 16);
  const core::UniformScheme scheme(g);
  const DistanceMatrix reference(g);
  const routing::GreedyRouter ref_router(g, reference);
  for (const auto width : kWidths) {
    const TargetDistanceCache cache(g, 8, {}, width);
    const routing::GreedyRouter router(g, cache);
    for (std::uint64_t trial = 0; trial < 24; ++trial) {
      Rng rng(trial);
      const auto s = static_cast<NodeId>(rng.next_below(g.num_nodes()));
      auto t = static_cast<NodeId>(rng.next_below(g.num_nodes() - 1));
      if (t >= s) ++t;
      const auto got = router.route(s, t, &scheme, Rng(1000 + trial));
      const auto want = ref_router.route(s, t, &scheme, Rng(1000 + trial));
      ASSERT_EQ(got.steps, want.steps)
          << width_token(width) << " pair (" << s << ", " << t << ")";
      ASSERT_EQ(got.reached, want.reached);
    }
  }
}

}  // namespace
}  // namespace nav::graph
