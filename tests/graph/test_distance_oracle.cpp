#include "graph/distance_oracle.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "graph/generators.hpp"

namespace nav::graph {
namespace {

TEST(DistanceMatrix, MatchesBfs) {
  const auto g = make_grid2d(5, 5);
  DistanceMatrix dm(g);
  for (NodeId t = 0; t < g.num_nodes(); t += 7) {
    const auto d = bfs_distances(g, t);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      EXPECT_EQ(dm.distance(u, t), d[u]);
    }
  }
}

TEST(DistanceMatrix, Symmetric) {
  const auto g = make_cycle(9);
  DistanceMatrix dm(g);
  for (NodeId u = 0; u < 9; ++u)
    for (NodeId v = 0; v < 9; ++v) EXPECT_EQ(dm.distance(u, v), dm.distance(v, u));
}

TEST(DistanceMatrix, SharedVectorMatchesScalar) {
  const auto g = make_path(20);
  DistanceMatrix dm(g);
  const auto vec = dm.distances_to(5);
  for (NodeId u = 0; u < 20; ++u) EXPECT_EQ((*vec)[u], dm.distance(u, 5));
}

TEST(TargetCache, MatchesBfs) {
  const auto g = make_grid2d(6, 4);
  TargetDistanceCache cache(g, 4);
  const auto d = bfs_distances(g, 13);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(cache.distance(u, 13), d[u]);
  }
}

TEST(TargetCache, HitsAndMisses) {
  const auto g = make_path(30);
  TargetDistanceCache cache(g, 2);
  (void)cache.distances_to(0);
  (void)cache.distances_to(0);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_GE(cache.hits(), 1u);
}

TEST(TargetCache, EvictsAtCapacityButStaysCorrect) {
  const auto g = make_path(30);
  TargetDistanceCache cache(g, 2);
  const auto a = cache.distances_to(1);
  (void)cache.distances_to(2);
  (void)cache.distances_to(3);  // evicts target 1
  // Held pointer stays valid and correct after eviction.
  EXPECT_EQ((*a)[10], 9u);
  // Re-request recomputes.
  EXPECT_EQ(cache.distance(10, 1), 9u);
  EXPECT_GE(cache.misses(), 4u);
}

TEST(TargetCache, ZeroCapacityClampedToOne) {
  const auto g = make_path(5);
  TargetDistanceCache cache(g, 0);
  EXPECT_EQ(cache.distance(0, 4), 4u);
}

TEST(TargetCache, PrefetchPinsBatchAndMatchesBfs) {
  const auto g = make_grid2d(8, 8);
  TargetDistanceCache cache(g, 2);  // capacity below the batch size
  const std::vector<NodeId> targets = {3, 17, 3, 40, 63};  // with a duplicate
  const auto pinned = cache.prefetch(targets);
  ASSERT_EQ(pinned.size(), targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const auto expect = bfs_distances(g, targets[i]);
    ASSERT_NE(pinned[i], nullptr);
    EXPECT_EQ(*pinned[i], expect) << "target " << targets[i];
  }
  // Duplicate targets share one vector; one BFS each for the 4 distinct.
  EXPECT_EQ(pinned[0], pinned[2]);
  EXPECT_EQ(cache.misses(), 4u);
  // A second prefetch of a resident target is a hit, not a BFS.
  const auto before = cache.misses();
  (void)cache.prefetch(std::vector<NodeId>{63});
  EXPECT_EQ(cache.misses(), before);
  EXPECT_GE(cache.hits(), 2u);  // the duplicate + the re-prefetch
}

TEST(TargetCache, PrefetchDefaultImplOnDenseMatrix) {
  const auto g = make_cycle(12);
  DistanceMatrix dm(g);
  const std::vector<NodeId> targets = {0, 5, 11};
  const auto pinned = dm.prefetch(targets);
  ASSERT_EQ(pinned.size(), 3u);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    EXPECT_EQ(pinned[i], dm.distances_to(targets[i]));
  }
}

TEST(TargetCache, MemoryBudgetSizesCapacity) {
  const auto g = make_path(100);  // one vector = 100 * sizeof(Dist) = 400 B
  EXPECT_EQ(TargetDistanceCache::capacity_for_budget({4000}, 100), 10u);
  EXPECT_EQ(TargetDistanceCache::capacity_for_budget({399}, 100), 1u);  // >= 1
  TargetDistanceCache cache(g, MemoryBudget{1200});
  EXPECT_EQ(cache.capacity(), 3u);
  (void)cache.distances_to(0);
  (void)cache.distances_to(1);
  (void)cache.distances_to(2);
  (void)cache.distances_to(0);  // still resident under a 3-vector budget
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 3u);
}

TEST(TargetCache, ConcurrentAccessConsistent) {
  const auto g = make_grid2d(10, 10);
  TargetDistanceCache cache(g, 8);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, &g, &failures] {
      for (NodeId target = 0; target < 20; ++target) {
        const auto vec = cache.distances_to(target);
        if ((*vec)[target] != 0) failures.fetch_add(1);
        if (vec->size() != g.num_nodes()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace nav::graph
