#include "graph/interval_model.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"

namespace nav::graph {
namespace {

TEST(IntervalModel, AdjacencyIffIntersection) {
  // [0,2], [1,3], [4,5]: 0-1 intersect, 2 is separate.
  IntervalModel m({{0, 2}, {1, 3}, {4, 5}});
  const auto g = m.to_graph();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 2));
}

TEST(IntervalModel, TouchingEndpointsAreAdjacent) {
  IntervalModel m({{0, 2}, {2, 4}});
  EXPECT_TRUE(m.to_graph().has_edge(0, 1));
}

TEST(IntervalModel, NestedIntervalsAdjacent) {
  IntervalModel m({{0, 10}, {3, 4}});
  EXPECT_TRUE(m.to_graph().has_edge(0, 1));
}

TEST(IntervalModel, BruteForceAgreement) {
  Rng rng(5);
  const auto model = random_interval_model(40, rng);
  const auto g = model.to_graph();
  for (NodeId u = 0; u < 40; ++u) {
    for (NodeId v = u + 1; v < 40; ++v) {
      const auto& a = model.interval(u);
      const auto& b = model.interval(v);
      const bool intersect = a.lo <= b.hi && b.lo <= a.hi;
      EXPECT_EQ(g.has_edge(u, v), intersect) << u << "," << v;
    }
  }
}

TEST(IntervalModel, StabReturnsContainingIntervals) {
  IntervalModel m({{0, 5}, {2, 3}, {6, 8}});
  const auto hit = m.stab(2);
  ASSERT_EQ(hit.size(), 2u);
  EXPECT_EQ(hit[0], 0u);
  EXPECT_EQ(hit[1], 1u);
}

TEST(IntervalModel, EventPointsSortedUnique) {
  IntervalModel m({{3, 7}, {3, 5}, {1, 7}});
  const auto pts = m.event_points();
  EXPECT_EQ(pts, (std::vector<std::int64_t>{1, 3, 5, 7}));
}

TEST(IntervalModel, RejectsInvertedInterval) {
  EXPECT_THROW(IntervalModel({{5, 3}}), std::invalid_argument);
}

TEST(IntervalModel, RejectsEmpty) {
  EXPECT_THROW(IntervalModel({}), std::invalid_argument);
}

TEST(IntervalModel, ConnectedRandomIsConnected) {
  Rng rng(9);
  for (int i = 0; i < 5; ++i) {
    const auto model = connected_random_interval_model(50, rng);
    EXPECT_TRUE(is_connected(model.to_graph()));
    EXPECT_EQ(model.num_nodes(), 50u);
  }
}

TEST(IntervalModel, RandomModelRespectsSpan) {
  Rng rng(10);
  const auto model = random_interval_model(30, rng, 100, 5);
  for (NodeId u = 0; u < 30; ++u) {
    EXPECT_GE(model.interval(u).lo, 0);
    EXPECT_LT(model.interval(u).lo, 100);
    EXPECT_LE(model.interval(u).hi - model.interval(u).lo, 5);
  }
}

}  // namespace
}  // namespace nav::graph
