// Differential coverage for the BFS engine: every workspace kernel is pinned
// bit-identical to the pre-engine reference implementations across graph
// families and radii, and the 16-bit epoch machinery survives wraparound.
#include "graph/bfs_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "graph/generators.hpp"

namespace nav::graph {
namespace {

/// Family grid for the differential sweep: tree-ish, grid-ish, low-diameter,
/// random, and degenerate shapes. Sizes stay small enough for full sweeps
/// per source yet straddle the direction-optimizing gate (n >= 1024).
std::vector<std::pair<std::string, Graph>> differential_graphs() {
  Rng rng(0xD1FF);
  std::vector<std::pair<std::string, Graph>> graphs;
  graphs.emplace_back("path", make_path(1500));
  graphs.emplace_back("cycle", make_cycle(1200));
  graphs.emplace_back("star", make_star(1100));
  graphs.emplace_back("balanced_tree", make_balanced_tree(2047));
  graphs.emplace_back("grid2d", make_grid2d(40, 40));
  graphs.emplace_back("torus2d", make_torus2d(36, 36));
  graphs.emplace_back("hypercube", make_hypercube(11));
  graphs.emplace_back("complete", make_complete(64));
  graphs.emplace_back("gnp", make_connected_gnp(1400, 6.0 / 1400.0, rng));
  graphs.emplace_back("random_tree", make_random_tree(1300, rng));
  graphs.emplace_back("lollipop", make_lollipop(40, 1200));
  graphs.emplace_back("tiny_path", make_path(5));
  // Disconnected: unreached nodes must keep kInfDist in every kernel.
  graphs.emplace_back("disconnected", Graph(1200, [] {
                        std::vector<std::pair<NodeId, NodeId>> edges;
                        for (NodeId v = 1; v < 600; ++v) edges.push_back({v - 1, v});
                        for (NodeId v = 601; v < 1200; ++v) edges.push_back({v - 1, v});
                        return edges;
                      }()));
  return graphs;
}

std::vector<NodeId> sample_sources(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> sources{0, n - 1, n / 2, n / 3};
  sources.resize(std::min<std::size_t>(sources.size(), n));
  return sources;
}

TEST(BfsEngine, ScalarKernelMatchesReferenceAllRadii) {
  BfsWorkspace ws;
  for (const auto& [name, g] : differential_graphs()) {
    std::vector<Dist> out(g.num_nodes());
    for (const NodeId s : sample_sources(g)) {
      for (const Dist radius : {Dist{0}, Dist{1}, Dist{3}, Dist{17}, kInfDist}) {
        const auto expect = bfs_distances_reference(g, s, radius);
        ws.distances_into_scalar(g, s, out, radius);
        EXPECT_EQ(out, expect) << name << " source=" << s << " r=" << radius;
      }
    }
  }
}

TEST(BfsEngine, DirectionOptimizingMatchesReference) {
  BfsWorkspace ws;
  for (const auto& [name, g] : differential_graphs()) {
    std::vector<Dist> out(g.num_nodes());
    for (const NodeId s : sample_sources(g)) {
      const auto expect = bfs_distances_reference(g, s);
      ws.distances_into(g, s, out);  // full sweep: direction-optimizing path
      EXPECT_EQ(out, expect) << name << " source=" << s;
    }
  }
}

TEST(BfsEngine, BallMatchesReferenceOrderExactly) {
  BfsWorkspace ws;
  for (const auto& [name, g] : differential_graphs()) {
    for (const NodeId s : sample_sources(g)) {
      for (const Dist radius : {Dist{0}, Dist{1}, Dist{2}, Dist{5}, Dist{40}}) {
        const auto expect = ball_reference(g, s, radius);
        const auto view = ws.ball(g, s, radius);
        ASSERT_EQ(view.order.size(), expect.size())
            << name << " center=" << s << " r=" << radius;
        EXPECT_TRUE(std::equal(view.order.begin(), view.order.end(),
                               expect.begin()))
            << name << " center=" << s << " r=" << radius;
      }
    }
  }
}

TEST(BfsEngine, BallWholeGraphDetection) {
  const auto g = make_path(10);
  BfsWorkspace ws;
  // Radius below the eccentricity: not exhausted.
  EXPECT_FALSE(ws.ball(g, 0, 8).whole_graph);
  // Radius exactly the eccentricity of node 0: exhausted at depth 9.
  const auto exact = ws.ball(g, 0, 9);
  EXPECT_TRUE(exact.whole_graph);
  EXPECT_EQ(exact.exhausted_depth, 9u);
  // From the middle, exhaustion happens at the middle node's eccentricity.
  const auto mid = ws.ball(g, 5, 100);
  EXPECT_TRUE(mid.whole_graph);
  EXPECT_EQ(mid.exhausted_depth, 5u);
  EXPECT_EQ(mid.order.size(), 10u);
}

TEST(BfsEngine, MultiSourceMatchesWrapper) {
  BfsWorkspace ws;
  for (const auto& [name, g] : differential_graphs()) {
    const std::vector<NodeId> sources{0, g.num_nodes() - 1, 0};
    const auto expect = multi_source_bfs(g, sources);
    std::vector<Dist> out(g.num_nodes());
    ws.multi_source_into(g, sources, out);
    EXPECT_EQ(out, expect) << name;
  }
}

TEST(BfsEngine, EccentricityAndFarthestMatchReference) {
  BfsWorkspace ws;
  for (const auto& [name, g] : differential_graphs()) {
    for (const NodeId s : sample_sources(g)) {
      const auto dist = bfs_distances_reference(g, s);
      Dist ecc = 0;
      FarthestResult far{s, 0};
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (dist[v] != kInfDist && dist[v] > far.distance) far = {v, dist[v]};
        if (dist[v] != kInfDist) ecc = std::max(ecc, dist[v]);
      }
      EXPECT_EQ(ws.eccentricity(g, s), ecc) << name << " source=" << s;
      const auto got = ws.farthest(g, s);
      EXPECT_EQ(got.node, far.node) << name << " source=" << s;
      EXPECT_EQ(got.distance, far.distance) << name << " source=" << s;
    }
  }
}

TEST(BfsEngine, EpochWraparoundStress) {
  // The 16-bit generation counter wraps every 65535 prepares; stale stamps
  // from before the wrap must never read as visited. Drive well past one
  // wrap with balls + marker-channel use on a small graph, checking exact
  // membership at every iteration.
  const auto g = make_grid2d(6, 6);
  BfsWorkspace ws;
  const auto expect_r2 = ball_reference(g, 14, 2);
  bool wrapped = false;
  std::uint16_t last_epoch = 0;
  for (int i = 0; i < 70'000; ++i) {
    const auto view = ws.ball(g, 14, 2);
    ASSERT_EQ(view.order.size(), expect_r2.size()) << "iteration " << i;
    ASSERT_TRUE(
        std::equal(view.order.begin(), view.order.end(), expect_r2.begin()))
        << "iteration " << i;
    if (ws.epoch() < last_epoch) wrapped = true;
    last_epoch = ws.epoch();
    if (i % 9 == 0) {
      // Exercise the marker channel across the same epochs.
      ws.prepare(g.num_nodes());
      ws.mark(3);
      ASSERT_TRUE(ws.marked(3));
      ASSERT_FALSE(ws.marked(4));
      ASSERT_FALSE(ws.visited(3));
    }
  }
  EXPECT_TRUE(wrapped) << "stress must cross at least one epoch wrap";
}

TEST(BfsEngine, WorkspaceGrowsAcrossGraphs) {
  // One workspace serves graphs of different sizes back to back.
  BfsWorkspace ws;
  const auto small = make_path(10);
  const auto big = make_grid2d(30, 30);
  EXPECT_EQ(ws.ball(small, 0, 3).order.size(), 4u);
  EXPECT_EQ(ws.ball(big, 0, 1).order.size(), 3u);
  EXPECT_EQ(ws.ball(small, 9, 2).order.size(), 3u);
  EXPECT_GE(ws.capacity(), 900u);
}

TEST(BfsEngine, KernelsValidateArguments) {
  const auto g = make_path(4);
  BfsWorkspace ws;
  std::vector<Dist> out(4);
  std::vector<Dist> wrong(3);
  EXPECT_THROW(ws.distances_into(g, 9, out), std::invalid_argument);
  EXPECT_THROW(ws.distances_into(g, 0, wrong), std::invalid_argument);
  EXPECT_THROW(ws.ball(g, 4, 1), std::invalid_argument);
  EXPECT_THROW(ws.eccentricity(g, 7), std::invalid_argument);
  EXPECT_THROW(ws.multi_source_into(g, {}, out), std::invalid_argument);
}

TEST(BfsEngine, SparseDenseCutoverIsExplicit) {
  // The dispatch decision is observable via last_sweep_kind(): radii that
  // cannot bind (>= n-1) are promoted to the unbounded kernel instead of
  // silently degrading to a bounded scan of the whole graph, and the
  // direction-optimizing gate stays pinned to the n/edge thresholds.
  BfsWorkspace ws;
  const auto big = make_grid2d(40, 40);  // clears the diropt gate (n=1600)
  const NodeId n = big.num_nodes();
  std::vector<Dist> out(n);

  ws.distances_into(big, 0, out);
  EXPECT_EQ(ws.last_sweep_kind(),
            BfsWorkspace::SweepKind::kDirectionOptimizing);
  ws.distances_into(big, 0, out, 3);
  EXPECT_EQ(ws.last_sweep_kind(), BfsWorkspace::SweepKind::kScalarBounded);
  // radius n-2 is the largest value that still dispatches bounded...
  ws.distances_into(big, 0, out, static_cast<Dist>(n - 2));
  EXPECT_EQ(ws.last_sweep_kind(), BfsWorkspace::SweepKind::kScalarBounded);
  // ...and n-1 (or anything larger) promotes to the full sweep, with output
  // identical to the bounded semantics it replaces.
  for (const Dist r : {static_cast<Dist>(n - 1), static_cast<Dist>(n),
                       static_cast<Dist>(3 * n)}) {
    ws.distances_into(big, 0, out, r);
    EXPECT_EQ(ws.last_sweep_kind(),
              BfsWorkspace::SweepKind::kDirectionOptimizing)
        << "r=" << r;
    EXPECT_EQ(out, bfs_distances_reference(big, 0, r)) << "r=" << r;
  }

  // Below the gate the full sweep stays scalar — including promoted radii.
  const auto tiny = make_path(64);
  std::vector<Dist> tout(64);
  ws.distances_into(tiny, 0, tout);
  EXPECT_EQ(ws.last_sweep_kind(), BfsWorkspace::SweepKind::kScalarFull);
  ws.distances_into(tiny, 0, tout, 63);  // n-1: promoted, still scalar full
  EXPECT_EQ(ws.last_sweep_kind(), BfsWorkspace::SweepKind::kScalarFull);
  EXPECT_EQ(tout, bfs_distances_reference(tiny, 0));
  ws.distances_into(tiny, 0, tout, 62);  // n-2: binds, bounded
  EXPECT_EQ(ws.last_sweep_kind(), BfsWorkspace::SweepKind::kScalarBounded);
  EXPECT_EQ(tout, bfs_distances_reference(tiny, 0, 62));
}

TEST(BfsEngine, LocalWorkspaceIsPerThread) {
  BfsWorkspace* main_ws = &local_bfs_workspace();
  EXPECT_EQ(main_ws, &local_bfs_workspace());  // stable on one thread
  BfsWorkspace* other_ws = nullptr;
  std::thread([&] { other_ws = &local_bfs_workspace(); }).join();
  EXPECT_NE(main_ws, other_ws);
}

}  // namespace
}  // namespace nav::graph
