#include "graph/families.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"

namespace nav::graph {
namespace {

TEST(Families, RegistryNonEmptyAndNamed) {
  const auto& fams = all_families();
  EXPECT_GE(fams.size(), 14u);
  for (const auto& f : fams) {
    EXPECT_FALSE(f.name.empty());
    EXPECT_FALSE(f.description.empty());
    EXPECT_TRUE(f.make != nullptr);
  }
}

TEST(Families, LookupByName) {
  EXPECT_EQ(family("path").name, "path");
  EXPECT_TRUE(has_family("torus2d"));
  EXPECT_FALSE(has_family("nope"));
  EXPECT_THROW(family("nope"), std::invalid_argument);
}

TEST(Families, DeterministicFamiliesIgnoreRng) {
  for (const auto& f : all_families()) {
    if (f.randomized) continue;
    Rng a(1), b(999);
    const auto g1 = f.make(64, a);
    const auto g2 = f.make(64, b);
    EXPECT_EQ(g1.edge_list(), g2.edge_list()) << f.name;
  }
}

TEST(Families, RandomFamiliesDeterministicGivenSeed) {
  for (const auto& f : all_families()) {
    if (!f.randomized) continue;
    Rng a(7), b(7);
    const auto g1 = f.make(64, a);
    const auto g2 = f.make(64, b);
    EXPECT_EQ(g1.edge_list(), g2.edge_list()) << f.name;
  }
}

// Parameterized: every family must produce a connected graph of roughly the
// requested size at several scales.
class FamilyInstanceTest
    : public ::testing::TestWithParam<std::tuple<std::string, NodeId>> {};

TEST_P(FamilyInstanceTest, ConnectedAndRoughlyRequestedSize) {
  const auto& [name, n] = GetParam();
  const auto& fam = family(name);
  Rng rng(0xfa31);
  const auto g = fam.make(n, rng);
  EXPECT_TRUE(is_connected(g)) << name;
  EXPECT_GE(g.num_nodes(), n / 3) << name;
  EXPECT_LE(g.num_nodes(), static_cast<std::uint64_t>(n) * 3 + 8) << name;
}

std::vector<std::tuple<std::string, NodeId>> family_size_grid() {
  std::vector<std::tuple<std::string, NodeId>> grid;
  for (const auto& f : all_families()) {
    for (const NodeId n : {32u, 128u, 1024u}) {
      grid.emplace_back(f.name, n);
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, FamilyInstanceTest, ::testing::ValuesIn(family_size_grid()),
    [](const ::testing::TestParamInfo<std::tuple<std::string, NodeId>>& info) {
      return std::get<0>(info.param) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace nav::graph
