// make_oracle: the one construction path for distance backends. Spec
// grammar, width resolution, config plumbing, and the catalog.
#include "graph/oracle_factory.hpp"

#include <gtest/gtest.h>

#include "graph/distance_oracle.hpp"
#include "graph/generators.hpp"
#include "graph/landmark_oracle.hpp"

namespace nav::graph {
namespace {

TEST(OracleFactory, AutoReproducesTheLegacySizeRule) {
  const auto g = make_grid2d(8, 8);
  // Default dense_limit (4096) >= 64 nodes: a matrix.
  const auto dense = make_oracle("auto", g);
  EXPECT_NE(dynamic_cast<DistanceMatrix*>(dense.get()), nullptr);
  // Dropping the limit below n flips the same spec to a cache.
  OracleConfig config;
  config.dense_limit = 32;
  config.cache_slots = 5;
  const auto sparse = make_oracle("auto", g, config);
  const auto* cache = dynamic_cast<TargetDistanceCache*>(sparse.get());
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->capacity(), 5u);
  // Either backend answers identically (both exact).
  EXPECT_TRUE(dense->exact());
  for (NodeId t = 0; t < g.num_nodes(); t += 13) {
    ASSERT_TRUE(*dense->distances_to(t) == *sparse->distances_to(t));
  }
}

TEST(OracleFactory, MatrixSpecsParseWidths) {
  const auto g = make_grid2d(6, 6);
  const auto plain = make_oracle("matrix", g);
  const auto* matrix = dynamic_cast<DistanceMatrix*>(plain.get());
  ASSERT_NE(matrix, nullptr);
  EXPECT_EQ(matrix->width(), DistWidth::kU32);
  const auto packed = make_oracle("matrix:u8", g);
  EXPECT_EQ(dynamic_cast<DistanceMatrix*>(packed.get())->width(),
            DistWidth::kU8);
  // "auto" width: a 6x6 grid's diameter bound fits u8 comfortably.
  const auto sized = make_oracle("matrix:auto", g);
  EXPECT_EQ(dynamic_cast<DistanceMatrix*>(sized.get())->width(),
            DistWidth::kU8);
}

TEST(OracleFactory, AutoWidthWidensWithTheGraph) {
  // A 300-path has eccentricity(0) = 299; 2x that needs u16.
  const auto g = make_path(300);
  const auto oracle = make_oracle("cache:4:auto", g);
  EXPECT_EQ(dynamic_cast<TargetDistanceCache*>(oracle.get())->width(),
            DistWidth::kU16);
}

TEST(OracleFactory, CacheSpecsParseCapacityAndBudget) {
  const auto g = make_grid2d(8, 8);  // n = 64
  OracleConfig config;
  config.cache_slots = 7;
  const auto bare = make_oracle("cache", g, config);
  EXPECT_EQ(dynamic_cast<TargetDistanceCache*>(bare.get())->capacity(), 7u);
  const auto counted = make_oracle("cache:12", g);
  EXPECT_EQ(dynamic_cast<TargetDistanceCache*>(counted.get())->capacity(),
            12u);
  // "2K" is a byte budget: 2048 / (64 nodes * 4 bytes) = 8 slots.
  const auto budgeted = make_oracle("cache:2K", g);
  EXPECT_EQ(dynamic_cast<TargetDistanceCache*>(budgeted.get())->capacity(),
            8u);
  // At u16 the same budget buys twice the slots.
  const auto narrow = make_oracle("cache:2K:u16", g);
  const auto* narrow_cache =
      dynamic_cast<TargetDistanceCache*>(narrow.get());
  EXPECT_EQ(narrow_cache->capacity(), 16u);
  EXPECT_EQ(narrow_cache->width(), DistWidth::kU16);
}

TEST(OracleFactory, LandmarkSpecsParse) {
  const auto g = make_grid2d(8, 8);
  const auto defaulted = make_oracle("landmark:5", g);
  const auto* oracle = dynamic_cast<LandmarkOracle*>(defaulted.get());
  ASSERT_NE(oracle, nullptr);
  EXPECT_EQ(oracle->num_landmarks(), 5u);
  EXPECT_FALSE(oracle->exact());
  const auto by_degree = make_oracle("landmark:3:degree", g);
  EXPECT_EQ(dynamic_cast<LandmarkOracle*>(by_degree.get())->num_landmarks(),
            3u);
  const auto farthest = make_oracle("landmark:3:farthest", g);
  EXPECT_NE(dynamic_cast<LandmarkOracle*>(farthest.get()), nullptr);
}

TEST(OracleFactory, RejectsMalformedSpecs) {
  const auto g = make_cycle(8);
  EXPECT_THROW((void)make_oracle("", g), std::invalid_argument);
  EXPECT_THROW((void)make_oracle("auto:4096", g), std::invalid_argument);
  EXPECT_THROW((void)make_oracle("matrix:u64", g), std::invalid_argument);
  EXPECT_THROW((void)make_oracle("cache:zero", g), std::invalid_argument);
  EXPECT_THROW((void)make_oracle("cache:4:u16:extra", g),
               std::invalid_argument);
  EXPECT_THROW((void)make_oracle("landmark", g), std::invalid_argument);
  EXPECT_THROW((void)make_oracle("landmark:0", g), std::invalid_argument);
  EXPECT_THROW((void)make_oracle("landmark:4:closest", g),
               std::invalid_argument);
  EXPECT_THROW((void)make_oracle("btree", g), std::invalid_argument);
}

TEST(OracleFactory, SaturationSurfacesAtConstruction) {
  // Declaring u8 over a 300-path must throw (max finite 254 < 299), at
  // make_oracle time for the eager matrix backend.
  const auto g = make_path(300);
  EXPECT_THROW((void)make_oracle("matrix:u8", g), std::invalid_argument);
}

TEST(OracleFactory, CatalogListsEverySpecFamily) {
  const auto& catalog = oracle_catalog();
  ASSERT_EQ(catalog.size(), 5u);
  EXPECT_EQ(catalog[0].spec.rfind("auto", 0), 0u);
  EXPECT_EQ(catalog[1].spec.rfind("matrix", 0), 0u);
  EXPECT_EQ(catalog[2].spec.rfind("cache", 0), 0u);
  EXPECT_EQ(catalog[3].spec.rfind("landmark", 0), 0u);
  EXPECT_EQ(catalog[4].spec.rfind("faulty", 0), 0u);
  for (const auto& info : catalog) EXPECT_FALSE(info.description.empty());
}

}  // namespace
}  // namespace nav::graph
