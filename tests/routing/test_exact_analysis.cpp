#include "routing/exact_analysis.hpp"

#include <gtest/gtest.h>

#include "core/ball_scheme.hpp"
#include "core/kleinberg_scheme.hpp"
#include "core/ml_scheme.hpp"
#include "core/rank_scheme.hpp"
#include "core/uniform_scheme.hpp"
#include "graph/generators.hpp"
#include "routing/trial_runner.hpp"

namespace nav::routing {
namespace {

TEST(ExactAnalysis, NoSchemeEqualsDistance) {
  const auto g = graph::make_grid2d(5, 5);
  const auto expected = exact_expected_steps(g, nullptr, 12);
  const auto dist = graph::bfs_distances(g, 12);
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_DOUBLE_EQ(expected[u], static_cast<double>(dist[u]));
  }
}

TEST(ExactAnalysis, TargetIsZero) {
  const auto g = graph::make_path(10);
  core::UniformScheme scheme(g);
  EXPECT_DOUBLE_EQ(exact_expected_steps(g, &scheme, 4)[4], 0.0);
}

TEST(ExactAnalysis, ExpectationBoundedByDistance) {
  const auto g = graph::make_path(64);
  core::UniformScheme scheme(g);
  const auto expected = exact_expected_steps(g, &scheme, 63);
  const auto dist = graph::bfs_distances(g, 63);
  for (graph::NodeId u = 0; u < 64; ++u) {
    EXPECT_LE(expected[u], static_cast<double>(dist[u]) + 1e-9);
    EXPECT_GE(expected[u], 0.0);
  }
}

TEST(ExactAnalysis, TwoNodePathIsOneStep) {
  const auto g = graph::make_path(2);
  core::UniformScheme scheme(g);
  EXPECT_DOUBLE_EQ(exact_pair_expectation(g, &scheme, 0, 1), 1.0);
}

TEST(ExactAnalysis, HandComputedUniformOnP3) {
  // Path 0-1-2, target 2, uniform contacts over {0,1,2}.
  // T(1) = 1 (neighbour 2 is the target; no contact beats it).
  // From 0: best local is 1 (dist 1). Contact draw: 2 w.p. 1/3 (dist 0 <
  // dist 1: take it, 1 + T(2) = 1); else 1 + T(1) = 2.
  // T(0) = (1/3)(1) + (2/3)(2) = 5/3.
  const auto g = graph::make_path(3);
  core::UniformScheme scheme(g);
  EXPECT_NEAR(exact_pair_expectation(g, &scheme, 0, 2), 5.0 / 3.0, 1e-12);
}

TEST(ExactAnalysis, MonteCarloMatchesExactUniform) {
  const auto g = graph::make_path(96);
  core::UniformScheme scheme(g);
  const double exact = exact_pair_expectation(g, &scheme, 0, 95);
  graph::DistanceMatrix oracle(g);
  const auto mc = estimate_pair(g, &scheme, oracle, 0, 95, 3000, Rng(5));
  EXPECT_NEAR(mc.mean_steps, exact, 5.0 * mc.ci_halfwidth + 1e-9);
}

TEST(ExactAnalysis, MonteCarloMatchesExactBall) {
  const auto g = graph::make_path(96);
  core::BallScheme scheme(g);
  const double exact = exact_pair_expectation(g, &scheme, 0, 95);
  graph::DistanceMatrix oracle(g);
  const auto mc = estimate_pair(g, &scheme, oracle, 0, 95, 3000, Rng(6));
  EXPECT_NEAR(mc.mean_steps, exact, 5.0 * mc.ci_halfwidth + 1e-9);
}

TEST(ExactAnalysis, MonteCarloMatchesExactML) {
  const auto g = graph::make_path(64);
  core::MLScheme scheme(g);
  const double exact = exact_pair_expectation(g, &scheme, 0, 63);
  graph::DistanceMatrix oracle(g);
  const auto mc = estimate_pair(g, &scheme, oracle, 0, 63, 3000, Rng(7));
  EXPECT_NEAR(mc.mean_steps, exact, 5.0 * mc.ci_halfwidth + 1e-9);
}

TEST(ExactAnalysis, MonteCarloMatchesExactKleinbergOnGrid) {
  const auto g = graph::make_grid2d(8, 8);
  core::KleinbergScheme scheme(g, 2.0);
  const double exact = exact_pair_expectation(g, &scheme, 0, 63);
  graph::DistanceMatrix oracle(g);
  const auto mc = estimate_pair(g, &scheme, oracle, 0, 63, 2000, Rng(8));
  EXPECT_NEAR(mc.mean_steps, exact, 5.0 * mc.ci_halfwidth + 1e-9);
}

TEST(ExactAnalysis, MonteCarloMatchesExactRank) {
  const auto g = graph::make_cycle(48);
  core::RankScheme scheme(g);
  const double exact = exact_pair_expectation(g, &scheme, 0, 24);
  graph::DistanceMatrix oracle(g);
  const auto mc = estimate_pair(g, &scheme, oracle, 0, 24, 2000, Rng(9));
  EXPECT_NEAR(mc.mean_steps, exact, 5.0 * mc.ci_halfwidth + 1e-9);
}

TEST(ExactAnalysis, GreedyDiameterNoSchemeIsDiameter) {
  const auto g = graph::make_grid2d(6, 5);
  const auto result = exact_greedy_diameter(g, nullptr);
  EXPECT_DOUBLE_EQ(result.value, 9.0);  // (6-1)+(5-1)
}

TEST(ExactAnalysis, GreedyDiameterArgmaxConsistent) {
  const auto g = graph::make_path(24);
  core::UniformScheme scheme(g);
  const auto result = exact_greedy_diameter(g, &scheme);
  const double check = exact_pair_expectation(g, &scheme, result.argmax_source,
                                              result.argmax_target);
  EXPECT_DOUBLE_EQ(result.value, check);
  EXPECT_GT(result.value, 0.0);
}

TEST(ExactAnalysis, UniformGreedyDiameterBelowDiameter) {
  const auto g = graph::make_path(64);
  core::UniformScheme scheme(g);
  const auto result = exact_greedy_diameter(g, &scheme);
  EXPECT_LT(result.value, 63.0);
  EXPECT_GT(result.value, 5.0);
}

TEST(ExactAnalysis, RequiresConnectivity) {
  graph::Graph g(3, {{0, 1}});
  core::UniformScheme scheme(g);
  EXPECT_THROW(exact_expected_steps(g, &scheme, 0), std::invalid_argument);
}

TEST(ExactAnalysis, FixedLevelBallLacksExactSupport) {
  const auto g = graph::make_path(8);
  const auto fixed = core::BallScheme::make_fixed_level(g, 2);
  EXPECT_THROW(exact_expected_steps(g, fixed.get(), 7), std::logic_error);
}

}  // namespace
}  // namespace nav::routing
