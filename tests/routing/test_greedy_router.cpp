#include "routing/greedy_router.hpp"

#include <gtest/gtest.h>

#include "core/scheme_factory.hpp"
#include "core/uniform_scheme.hpp"
#include "graph/families.hpp"
#include "graph/generators.hpp"

namespace nav::routing {
namespace {

TEST(GreedyRouter, NoSchemeFollowsShortestPath) {
  const auto g = graph::make_path(20);
  graph::DistanceMatrix oracle(g);
  GreedyRouter router(g, oracle);
  Rng rng(1);
  const auto result = router.route(2, 17, nullptr, rng);
  EXPECT_TRUE(result.reached);
  EXPECT_EQ(result.steps, 15u);
  EXPECT_EQ(result.initial_distance, 15u);
  EXPECT_EQ(result.long_links_used, 0u);
}

TEST(GreedyRouter, SourceEqualsTargetZeroSteps) {
  const auto g = graph::make_cycle(8);
  graph::DistanceMatrix oracle(g);
  GreedyRouter router(g, oracle);
  Rng rng(2);
  const auto result = router.route(3, 3, nullptr, rng);
  EXPECT_EQ(result.steps, 0u);
  EXPECT_TRUE(result.reached);
}

TEST(GreedyRouter, StepsNeverExceedInitialDistance) {
  const auto g = graph::make_grid2d(8, 8);
  graph::DistanceMatrix oracle(g);
  GreedyRouter router(g, oracle);
  core::UniformScheme scheme(g);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const auto s = static_cast<graph::NodeId>(random_index(rng, 64));
    const auto t = static_cast<graph::NodeId>(random_index(rng, 64));
    const auto result = router.route(s, t, &scheme, rng);
    EXPECT_LE(result.steps, result.initial_distance);
    EXPECT_TRUE(result.reached);
  }
}

TEST(GreedyRouter, TraceIsAWalkEndingAtTarget) {
  const auto g = graph::make_grid2d(6, 6);
  graph::DistanceMatrix oracle(g);
  GreedyRouter router(g, oracle);
  core::UniformScheme scheme(g);
  Rng rng(4);
  const auto result = router.route(0, 35, &scheme, rng, /*record_trace=*/true);
  ASSERT_EQ(result.trace.size(), result.steps + 1u);
  ASSERT_EQ(result.long_flags.size(), result.steps);
  EXPECT_EQ(result.trace.front(), 0u);
  EXPECT_EQ(result.trace.back(), 35u);
  // Every local hop must be a real edge; long hops may be any pair.
  for (std::size_t i = 0; i < result.steps; ++i) {
    if (!result.long_flags[i]) {
      EXPECT_TRUE(g.has_edge(result.trace[i], result.trace[i + 1]));
    }
  }
}

TEST(GreedyRouter, DistanceStrictlyDecreasesAlongTrace) {
  const auto g = graph::make_cycle(32);
  graph::DistanceMatrix oracle(g);
  GreedyRouter router(g, oracle);
  core::UniformScheme scheme(g);
  Rng rng(5);
  const auto result = router.route(0, 16, &scheme, rng, true);
  for (std::size_t i = 0; i + 1 < result.trace.size(); ++i) {
    EXPECT_LT(oracle.distance(result.trace[i + 1], 16),
              oracle.distance(result.trace[i], 16));
  }
}

TEST(GreedyRouter, LazyEqualsEagerInDistribution) {
  // Same augmented graph: routing with pre-sampled contacts must give the
  // same step count as lazy sampling with the same per-node draws. Since
  // greedy never revisits nodes, fixing the contacts reproduces lazy routing
  // when the lazy rng produces those same contacts on first visit — here we
  // simply check eager routing is valid and bounded.
  const auto g = graph::make_path(64);
  graph::DistanceMatrix oracle(g);
  GreedyRouter router(g, oracle);
  core::UniformScheme scheme(g);
  Rng rng(6);
  const auto contacts = core::sample_all_contacts(scheme, rng);
  const auto result = router.route_with_contacts(0, 63, contacts);
  EXPECT_TRUE(result.reached);
  EXPECT_LE(result.steps, 63u);
}

TEST(GreedyRouter, EagerContactUsedWhenStrictlyBetter) {
  // Node 0 gets a long link straight to the target: route = 1 step.
  const auto g = graph::make_path(10);
  graph::DistanceMatrix oracle(g);
  GreedyRouter router(g, oracle);
  std::vector<graph::NodeId> contacts(10, core::kNoContact);
  contacts[0] = 9;
  const auto result = router.route_with_contacts(0, 9, contacts, true);
  EXPECT_EQ(result.steps, 1u);
  EXPECT_EQ(result.long_links_used, 1u);
  ASSERT_EQ(result.long_flags.size(), 1u);
  EXPECT_EQ(result.long_flags[0], 1u);
}

TEST(GreedyRouter, ContactNotUsedWhenWorse) {
  // Long link pointing backwards is ignored.
  const auto g = graph::make_path(10);
  graph::DistanceMatrix oracle(g);
  GreedyRouter router(g, oracle);
  std::vector<graph::NodeId> contacts(10, core::kNoContact);
  contacts[5] = 0;
  const auto result = router.route_with_contacts(5, 9, contacts);
  EXPECT_EQ(result.steps, 4u);
  EXPECT_EQ(result.long_links_used, 0u);
}

TEST(GreedyRouter, ContactEqualDistanceNotTaken) {
  // Tie between local neighbour and long link: local preferred.
  const auto g = graph::make_path(10);
  graph::DistanceMatrix oracle(g);
  GreedyRouter router(g, oracle);
  std::vector<graph::NodeId> contacts(10, core::kNoContact);
  contacts[2] = 3;  // same as the local step toward 9
  const auto result = router.route_with_contacts(2, 9, contacts);
  EXPECT_EQ(result.long_links_used, 0u);
}

TEST(GreedyRouter, RejectsBadEndpoints) {
  const auto g = graph::make_path(4);
  graph::DistanceMatrix oracle(g);
  GreedyRouter router(g, oracle);
  Rng rng(7);
  EXPECT_THROW((void)router.route(0, 9, nullptr, rng), std::invalid_argument);
  EXPECT_THROW((void)router.route(9, 0, nullptr, rng), std::invalid_argument);
}

TEST(GreedyRouter, RejectsUnreachableTarget) {
  graph::Graph g(4, {{0, 1}, {2, 3}});
  graph::DistanceMatrix oracle(g);
  GreedyRouter router(g, oracle);
  Rng rng(8);
  EXPECT_THROW((void)router.route(0, 3, nullptr, rng), std::invalid_argument);
}

TEST(GreedyRouter, SchemeSizeMismatchRejected) {
  const auto g = graph::make_path(8);
  const auto g2 = graph::make_path(9);
  graph::DistanceMatrix oracle(g);
  GreedyRouter router(g, oracle);
  core::UniformScheme wrong(g2);
  Rng rng(9);
  EXPECT_THROW((void)router.route(0, 7, &wrong, rng), std::invalid_argument);
}

TEST(GreedyRouter, WorksWithTargetCacheOracle) {
  const auto g = graph::make_grid2d(10, 10);
  graph::TargetDistanceCache oracle(g, 4);
  GreedyRouter router(g, oracle);
  core::UniformScheme scheme(g);
  Rng rng(10);
  const auto result = router.route(0, 99, &scheme, rng);
  EXPECT_TRUE(result.reached);
  EXPECT_LE(result.steps, 18u);
}

}  // namespace
}  // namespace nav::routing
