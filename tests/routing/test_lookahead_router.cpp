#include "routing/lookahead_router.hpp"

#include <gtest/gtest.h>

#include "core/ball_scheme.hpp"
#include "core/uniform_scheme.hpp"
#include "graph/generators.hpp"
#include "routing/greedy_router.hpp"
#include "routing/router_factory.hpp"
#include "runtime/stats.hpp"

namespace nav::routing {
namespace {

TEST(LookaheadRouter, NoContactsEqualsShortestPath) {
  const auto g = graph::make_path(30);
  graph::DistanceMatrix oracle(g);
  LookaheadRouter router(g, oracle);
  const std::vector<graph::NodeId> none(30, core::kNoContact);
  const auto result = router.route(2, 27, none);
  EXPECT_TRUE(result.reached);
  EXPECT_EQ(result.steps, 25u);
  EXPECT_EQ(result.long_links_used, 0u);
}

TEST(LookaheadRouter, UsesNeighborsContact) {
  // Node 1's contact goes straight to the target; starting at 0 the NoN rule
  // sees it through the lookahead: 0 -> 1 -> 9 in two hops.
  const auto g = graph::make_path(10);
  graph::DistanceMatrix oracle(g);
  LookaheadRouter router(g, oracle);
  std::vector<graph::NodeId> contacts(10, core::kNoContact);
  contacts[1] = 9;
  const auto result = router.route(0, 9, contacts, true);
  EXPECT_EQ(result.steps, 2u);
  ASSERT_EQ(result.trace.size(), 3u);
  EXPECT_EQ(result.trace[1], 1u);
  EXPECT_EQ(result.trace[2], 9u);
  EXPECT_EQ(result.long_links_used, 1u);
}

TEST(LookaheadRouter, TakesBackwardNeighborForItsContact) {
  // The node *behind* u has a contact adjacent to the target: NoN walks one
  // step away from t, then jumps — still a win overall.
  const auto g = graph::make_path(50);
  graph::DistanceMatrix oracle(g);
  LookaheadRouter router(g, oracle);
  std::vector<graph::NodeId> contacts(50, core::kNoContact);
  contacts[9] = 48;  // behind the source
  const auto result = router.route(10, 49, contacts, true);
  // 10 -> 9 (backward), 9 -> 48 (long), 48 -> 49: 3 steps vs 39 plain.
  EXPECT_EQ(result.steps, 3u);
  EXPECT_EQ(result.trace[1], 9u);
  EXPECT_EQ(result.trace[2], 48u);
}

TEST(LookaheadRouter, StepsAtMostTwiceDistance) {
  const auto g = graph::make_grid2d(12, 12);
  graph::DistanceMatrix oracle(g);
  LookaheadRouter router(g, oracle);
  core::UniformScheme scheme(g);
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const auto contacts = core::sample_all_contacts(scheme, rng);
    const auto result = router.route(0, 143, contacts);
    EXPECT_TRUE(result.reached);
    EXPECT_LE(result.steps, 2u * result.initial_distance);
  }
}

TEST(LookaheadRouter, BeatsPlainGreedyOnAverage) {
  const auto g = graph::make_path(2048);
  graph::DistanceMatrix oracle(g);
  GreedyRouter plain(g, oracle);
  LookaheadRouter lookahead(g, oracle);
  core::UniformScheme scheme(g);
  Rng rng(4);
  RunningStats plain_steps, non_steps;
  for (int trial = 0; trial < 60; ++trial) {
    const auto contacts = core::sample_all_contacts(scheme, rng);
    plain_steps.add(plain.route_with_contacts(0, 2047, contacts).steps);
    non_steps.add(lookahead.route(0, 2047, contacts).steps);
  }
  EXPECT_LT(non_steps.mean(), plain_steps.mean());
}

TEST(LookaheadRouter, SourceEqualsTarget) {
  const auto g = graph::make_cycle(8);
  graph::DistanceMatrix oracle(g);
  LookaheadRouter router(g, oracle);
  const std::vector<graph::NodeId> none(8, core::kNoContact);
  EXPECT_EQ(router.route(5, 5, none).steps, 0u);
}

TEST(LookaheadRouter, TraceConsistent) {
  const auto g = graph::make_torus2d(8, 8);
  graph::DistanceMatrix oracle(g);
  LookaheadRouter router(g, oracle);
  core::BallScheme scheme(g);
  Rng rng(5);
  const auto contacts = core::sample_all_contacts(scheme, rng);
  const auto result = router.route(0, 36, contacts, true);
  ASSERT_EQ(result.trace.size(), result.steps + 1u);
  EXPECT_EQ(result.trace.front(), 0u);
  EXPECT_EQ(result.trace.back(), 36u);
  for (std::size_t i = 0; i < result.steps; ++i) {
    if (!result.long_flags[i]) {
      EXPECT_TRUE(g.has_edge(result.trace[i], result.trace[i + 1]));
    }
  }
}

TEST(LookaheadRouter, DeeperAwarenessIsMonotoneOrEqualPastDepth3) {
  // The E10 sweep stops at d = 3; this pins the untested d = 4, 5 regime on
  // a non-trivial instance: a 2048-node path under the uniform scheme, the
  // geometry where awareness depth matters most. Over a fixed-seed set of
  // sampled augmentations, mean hops must not increase from d = 3 to 4 to 5
  // (chains only grow candidate sets), and every route respects the
  // (1 + d) · dist(s, t) bound.
  const auto g = graph::make_path(2048);
  graph::DistanceMatrix oracle(g);
  core::UniformScheme scheme(g);
  const LookaheadRouter d3(g, oracle, 3);
  const LookaheadRouter d4(g, oracle, 4);
  const LookaheadRouter d5(g, oracle, 5);

  Rng rng(0xE10);
  RunningStats steps3, steps4, steps5;
  for (int trial = 0; trial < 40; ++trial) {
    const auto contacts = core::sample_all_contacts(scheme, rng);
    const auto r3 = d3.route(0, 2047, contacts);
    const auto r4 = d4.route(0, 2047, contacts);
    const auto r5 = d5.route(0, 2047, contacts);
    ASSERT_TRUE(r3.reached && r4.reached && r5.reached);
    EXPECT_LE(r3.steps, 4u * r3.initial_distance);
    EXPECT_LE(r4.steps, 5u * r4.initial_distance);
    EXPECT_LE(r5.steps, 6u * r5.initial_distance);
    steps3.add(r3.steps);
    steps4.add(r4.steps);
    steps5.add(r5.steps);
  }
  EXPECT_LE(steps4.mean(), steps3.mean());
  EXPECT_LE(steps5.mean(), steps4.mean());
  // Depth is doing real work, not ties: d = 5 must strictly beat d = 3 on
  // this seed.
  EXPECT_LT(steps5.mean(), steps3.mean());
}

TEST(LookaheadRouter, RegistryBuildsDepths4And5) {
  const auto g = graph::make_grid2d(12, 12);
  graph::DistanceMatrix oracle(g);
  for (const unsigned depth : {4u, 5u}) {
    const auto router = routing::make_router(
        "lookahead:" + std::to_string(depth), g, oracle);
    EXPECT_EQ(router->name(), "lookahead:" + std::to_string(depth));
    core::UniformScheme scheme(g);
    const auto result = router->route(0, 143, &scheme, Rng(1));
    EXPECT_TRUE(result.reached);
    EXPECT_LE(result.steps, (1u + depth) * result.initial_distance);
  }
}

TEST(MemoContacts, StableAcrossRepeatedAccess) {
  const auto g = graph::make_path(64);
  core::UniformScheme scheme(g);
  core::MemoContacts contacts(scheme, Rng(11));
  const auto first = contacts(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(contacts(7), first);
}

TEST(MemoContacts, AccessOrderIndependent) {
  const auto g = graph::make_path(64);
  core::UniformScheme scheme(g);
  core::MemoContacts forward(scheme, Rng(12));
  core::MemoContacts backward(scheme, Rng(12));
  std::vector<graph::NodeId> fwd, bwd(64);
  for (graph::NodeId u = 0; u < 64; ++u) fwd.push_back(forward(u));
  for (graph::NodeId u = 64; u > 0; --u) bwd[u - 1] = backward(u - 1);
  for (graph::NodeId u = 0; u < 64; ++u) EXPECT_EQ(fwd[u], bwd[u]);
}

TEST(MemoContacts, LookaheadRouteMatchesEagerEquivalent) {
  // Routing through MemoContacts must equal routing through the fully
  // materialised vector of the same streams.
  const auto g = graph::make_cycle(128);
  graph::DistanceMatrix oracle(g);
  LookaheadRouter router(g, oracle);
  core::UniformScheme scheme(g);
  core::MemoContacts memo(scheme, Rng(13));
  std::vector<graph::NodeId> eager(g.num_nodes());
  {
    core::MemoContacts fill(scheme, Rng(13));
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) eager[u] = fill(u);
  }
  const auto via_memo = router.route(
      0, 64, [&memo](graph::NodeId u) { return memo(u); });
  const auto via_eager = router.route(0, 64, eager);
  EXPECT_EQ(via_memo.steps, via_eager.steps);
  EXPECT_EQ(via_memo.long_links_used, via_eager.long_links_used);
}

TEST(LookaheadRouter, RejectsBadInput) {
  const auto g = graph::make_path(5);
  graph::DistanceMatrix oracle(g);
  LookaheadRouter router(g, oracle);
  const std::vector<graph::NodeId> none(5, core::kNoContact);
  EXPECT_THROW((void)router.route(0, 9, none), std::invalid_argument);
  const std::vector<graph::NodeId> short_vec(3, core::kNoContact);
  EXPECT_THROW((void)router.route(0, 4, short_vec), std::invalid_argument);
}

}  // namespace
}  // namespace nav::routing
