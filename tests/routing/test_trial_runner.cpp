#include "routing/trial_runner.hpp"

#include <gtest/gtest.h>

#include "core/scheme_factory.hpp"
#include "core/uniform_scheme.hpp"
#include "graph/generators.hpp"

namespace nav::routing {
namespace {

TEST(EstimatePair, NoSchemeIsExactDistance) {
  const auto g = graph::make_path(50);
  graph::DistanceMatrix oracle(g);
  const auto est = estimate_pair(g, nullptr, oracle, 5, 45, 8, Rng(1));
  EXPECT_DOUBLE_EQ(est.mean_steps, 40.0);
  EXPECT_DOUBLE_EQ(est.ci_halfwidth, 0.0);
  EXPECT_EQ(est.distance, 40u);
  EXPECT_DOUBLE_EQ(est.mean_long_links, 0.0);
}

TEST(EstimatePair, UniformHelpsOnLongPath) {
  const auto g = graph::make_path(1024);
  graph::DistanceMatrix oracle(g);
  core::UniformScheme scheme(g);
  const auto est = estimate_pair(g, &scheme, oracle, 0, 1023, 24, Rng(2));
  EXPECT_LT(est.mean_steps, 400.0);  // far below the 1023 baseline
  EXPECT_GT(est.mean_long_links, 0.0);
}

TEST(EstimatePair, DeterministicGivenRng) {
  const auto g = graph::make_path(256);
  graph::DistanceMatrix oracle(g);
  core::UniformScheme scheme(g);
  const auto a = estimate_pair(g, &scheme, oracle, 0, 255, 16, Rng(7));
  const auto b = estimate_pair(g, &scheme, oracle, 0, 255, 16, Rng(7));
  EXPECT_DOUBLE_EQ(a.mean_steps, b.mean_steps);
  EXPECT_DOUBLE_EQ(a.max_steps, b.max_steps);
}

TEST(EstimatePair, ParallelEqualsSequential) {
  const auto g = graph::make_cycle(512);
  graph::DistanceMatrix oracle(g);
  core::UniformScheme scheme(g);
  const auto par = estimate_pair(g, &scheme, oracle, 0, 200, 32, Rng(3), true);
  const auto seq = estimate_pair(g, &scheme, oracle, 0, 200, 32, Rng(3), false);
  EXPECT_DOUBLE_EQ(par.mean_steps, seq.mean_steps);
}

TEST(GreedyDiameter, AllPairsOnTinyGraph) {
  const auto g = graph::make_path(6);
  graph::DistanceMatrix oracle(g);
  TrialConfig config;
  config.policy = TrialConfig::PairPolicy::kAllPairs;
  config.resamples = 2;
  const auto est = estimate_greedy_diameter(g, nullptr, oracle, config, Rng(4));
  EXPECT_EQ(est.pairs.size(), 30u);  // 6*5 ordered pairs
  EXPECT_DOUBLE_EQ(est.max_mean_steps, 5.0);  // diameter of P6
}

TEST(GreedyDiameter, PeripheralPairIncluded) {
  const auto g = graph::make_path(64);
  graph::DistanceMatrix oracle(g);
  TrialConfig config;
  config.num_pairs = 4;
  config.resamples = 2;
  const auto est = estimate_greedy_diameter(g, nullptr, oracle, config, Rng(5));
  EXPECT_EQ(est.pairs.size(), 4u + 2u);
  // The peripheral pair dominates: its distance is the diameter 63.
  EXPECT_DOUBLE_EQ(est.max_mean_steps, 63.0);
}

TEST(GreedyDiameter, RandomPolicyOnlyRandomPairs) {
  const auto g = graph::make_cycle(32);
  graph::DistanceMatrix oracle(g);
  TrialConfig config;
  config.policy = TrialConfig::PairPolicy::kRandom;
  config.num_pairs = 7;
  config.resamples = 2;
  const auto est = estimate_greedy_diameter(g, nullptr, oracle, config, Rng(6));
  EXPECT_EQ(est.pairs.size(), 7u);
}

TEST(GreedyDiameter, MaxAtLeastMean) {
  const auto g = graph::make_grid2d(8, 8);
  graph::DistanceMatrix oracle(g);
  core::UniformScheme scheme(g);
  TrialConfig config;
  config.num_pairs = 6;
  config.resamples = 6;
  const auto est =
      estimate_greedy_diameter(g, &scheme, oracle, config, Rng(7));
  EXPECT_GE(est.max_mean_steps, est.overall_mean_steps);
  EXPECT_EQ(est.trials, (6u + 2u) * 6u);
}

TEST(GreedyDiameter, DeterministicAcrossRuns) {
  const auto g = graph::make_cycle(128);
  graph::DistanceMatrix oracle(g);
  core::UniformScheme scheme(g);
  TrialConfig config;
  config.num_pairs = 5;
  config.resamples = 5;
  const auto a = estimate_greedy_diameter(g, &scheme, oracle, config, Rng(8));
  const auto b = estimate_greedy_diameter(g, &scheme, oracle, config, Rng(8));
  EXPECT_DOUBLE_EQ(a.max_mean_steps, b.max_mean_steps);
  EXPECT_DOUBLE_EQ(a.overall_mean_steps, b.overall_mean_steps);
}

TEST(GreedyDiameter, RequiresRoutableGraph) {
  graph::Graph tiny(1, {});
  graph::DistanceMatrix oracle(tiny);
  TrialConfig config;
  EXPECT_THROW(
      estimate_greedy_diameter(tiny, nullptr, oracle, config, Rng(9)),
      std::invalid_argument);
}

}  // namespace
}  // namespace nav::routing
