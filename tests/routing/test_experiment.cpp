#include "routing/experiment.hpp"

#include <gtest/gtest.h>

namespace nav::routing {
namespace {

SweepConfig small_config() {
  SweepConfig config;
  config.family = "path";
  config.sizes = {64, 128, 256};
  config.schemes = {"none", "uniform"};
  config.trials.num_pairs = 3;
  config.trials.resamples = 4;
  config.seed = 99;
  return config;
}

TEST(Sweep, ProducesRowPerCell) {
  const auto rows = run_sweep(small_config());
  EXPECT_EQ(rows.size(), 3u * 2u);
  for (const auto& r : rows) {
    EXPECT_EQ(r.family, "path");
    EXPECT_GT(r.n_actual, 0u);
    EXPECT_GT(r.greedy_diameter, 0.0);
    EXPECT_GE(r.greedy_diameter, r.mean_steps);
  }
}

TEST(Sweep, NoneSchemeTracksDiameter) {
  const auto rows = run_sweep(small_config());
  for (const auto& r : rows) {
    if (r.scheme == "none") {
      EXPECT_DOUBLE_EQ(r.greedy_diameter, static_cast<double>(r.diameter_lb));
    }
  }
}

TEST(Sweep, DeterministicGivenSeed) {
  const auto a = run_sweep(small_config());
  const auto b = run_sweep(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].greedy_diameter, b[i].greedy_diameter);
  }
}

TEST(Sweep, TableHasHeaderAndRows) {
  const auto rows = run_sweep(small_config());
  const auto table = sweep_table(rows);
  EXPECT_EQ(table.rows(), rows.size());
  EXPECT_EQ(table.columns(), 9u);
  EXPECT_NE(table.to_ascii().find("greedy-diam"), std::string::npos);
}

TEST(Sweep, FitRecoversLinearForNone) {
  // Greedy diameter of "none" on paths is exactly n-1: slope ~ 1.
  auto config = small_config();
  config.schemes = {"none"};
  config.sizes = {128, 256, 512, 1024};
  const auto rows = run_sweep(config);
  const auto fits = fit_exponents(rows);
  ASSERT_EQ(fits.size(), 1u);
  EXPECT_EQ(fits[0].scheme, "none");
  EXPECT_NEAR(fits[0].fit.slope, 1.0, 0.02);
  EXPECT_GT(fits[0].fit.r_squared, 0.999);
}

TEST(Sweep, FitTableRenders) {
  const auto rows = run_sweep(small_config());
  const auto table = fit_table(fit_exponents(rows));
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_NE(table.to_ascii().find("exponent"), std::string::npos);
}

TEST(Sweep, RejectsEmptyGrid) {
  SweepConfig config;
  config.family = "path";
  EXPECT_THROW(run_sweep(config), std::invalid_argument);
  config.sizes = {16};
  EXPECT_THROW(run_sweep(config), std::invalid_argument);
}

TEST(Sweep, UnknownFamilyThrows) {
  auto config = small_config();
  config.family = "not-a-family";
  EXPECT_THROW(run_sweep(config), std::invalid_argument);
}

TEST(Sweep, LargeSizeUsesCacheOracle) {
  // Just exercises the TargetDistanceCache path (> dense_oracle_limit).
  auto config = small_config();
  config.sizes = {512};
  config.dense_oracle_limit = 128;
  config.schemes = {"uniform"};
  const auto rows = run_sweep(config);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GT(rows[0].greedy_diameter, 0.0);
}

}  // namespace
}  // namespace nav::routing
