// test_resilient_service.cpp — graceful degradation through RouteService:
// the bounded-retry loop converges on transient faults (the chaos
// acceptance bar: every batch completes, >= 95% of pairs non-failed), the
// fallback chain routes through a degraded oracle when retries or the
// deadline budget run out, stalled (exact()=false) rows flow through
// submit()'s prefetch waves with reached == false reported rather than
// thrown, and the virtual-time Shed/Adaptive admission paths are
// deterministic, structured, and bit-identical across same-seed runs.
#include "api/route_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "api/engine.hpp"
#include "graph/generators.hpp"
#include "graph/oracle_factory.hpp"
#include "resilience/fault_spec.hpp"
#include "resilience/faulty_oracle.hpp"
#include "routing/router_factory.hpp"

namespace nav::api {
namespace {

using Pair = std::pair<graph::NodeId, graph::NodeId>;

std::vector<Pair> mixed_pairs(graph::NodeId n, std::size_t count,
                              std::size_t distinct_targets,
                              std::uint64_t seed) {
  std::vector<Pair> pairs;
  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    const auto t = static_cast<graph::NodeId>(i % distinct_targets);
    auto s = static_cast<graph::NodeId>(random_index(rng, n));
    if (s == t) s = (s + 1) % n;
    pairs.emplace_back(s, t);
  }
  return pairs;
}

/// One full faulted serving stack over a shared engine: the faulty oracle,
/// a posture-matched router, and the service. Fresh per run so the fault
/// schedule's attempt counters replay from zero.
struct FaultedStack {
  FaultedStack(const NavigationEngine& engine, const std::string& oracle_spec,
               RouteServiceOptions options = {})
      : oracle(graph::make_oracle(oracle_spec, engine.graph())),
        router(routing::make_router("greedy", engine.graph(), *oracle)),
        service(engine.graph(), *oracle, engine.scheme(), *router,
                std::move(options)) {}

  std::unique_ptr<graph::DistanceOracle> oracle;
  routing::RouterPtr router;
  RouteService service;
};

TEST(ResilientService, ChaosBatchCompletesWithMostPairsServed) {
  // The acceptance bar: under fail:0.05 + stall:0.05 every batch completes
  // with zero uncaught exceptions and >= 95% of pairs non-failed.
  auto engine = NavigationEngine::from_family("grid2d", 400);
  engine.use_scheme("uniform");
  const auto pairs = mixed_pairs(400, 256, 48, 0xC0);
  RouteServiceOptions options;
  options.resilience.tolerate_faults = true;
  FaultedStack stack(engine, "faulty:cache:16:fail:0.05:stall:0.05:seed:5",
                     options);

  const auto report = stack.service.route_batch_report(pairs, Rng(42));
  ASSERT_EQ(report.results.size(), pairs.size());
  ASSERT_EQ(report.status.size(), pairs.size());
  EXPECT_EQ(report.exact_pairs + report.degraded_pairs + report.failed_pairs,
            pairs.size());
  // >= 95% non-failed (exact or degraded).
  EXPECT_GE((report.exact_pairs + report.degraded_pairs) * 20,
            pairs.size() * 19);
  // fail:0.05 over 48 distinct targets virtually guarantees retry work.
  EXPECT_GT(report.retries, 0u);
  // The tallies land in queue_stats() too.
  const auto stats = stack.service.queue_stats();
  EXPECT_EQ(stats.retries, report.retries);
  EXPECT_EQ(stats.degraded_pairs, report.degraded_pairs);
  EXPECT_EQ(stats.failed_pairs, report.failed_pairs);
}

TEST(ResilientService, SameSeedChaosRunsAreBitIdentical) {
  auto engine = NavigationEngine::from_family("grid2d", 400);
  engine.use_scheme("uniform");
  const auto pairs = mixed_pairs(400, 128, 32, 0xD1);
  const auto run = [&] {
    RouteServiceOptions options;
    options.resilience.tolerate_faults = true;
    FaultedStack stack(engine, "faulty:cache:16:fail:0.1:stall:0.1:seed:9",
                       options);
    return stack.service.route_batch_report(pairs, Rng(7));
  };
  const auto a = run();
  const auto b = run();
  // Fault schedule, retry counts, fallback decisions, and every per-pair
  // status and route must replay bit for bit from a fresh stack.
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.fallback_pairs, b.fallback_pairs);
  EXPECT_EQ(a.deadline_breached, b.deadline_breached);
  ASSERT_EQ(a.status, b.status);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].steps, b.results[i].steps) << i;
    EXPECT_EQ(a.results[i].reached, b.results[i].reached) << i;
    EXPECT_EQ(a.results[i].initial_distance, b.results[i].initial_distance)
        << i;
  }
}

TEST(ResilientService, FallbackChainRoutesThroughTheLandmarkTier) {
  // fail:1.0 exhausts every retry; the landmark fallback tier then serves
  // every pair as kDegraded — none failed, none thrown.
  auto engine = NavigationEngine::from_family("grid2d", 400);
  engine.use_scheme("uniform");
  const auto fallback_oracle =
      graph::make_oracle("landmark:8", engine.graph());
  const auto fallback_router =
      routing::make_router("greedy", engine.graph(), *fallback_oracle);
  RouteServiceOptions options;
  options.resilience.fallback_oracle = fallback_oracle.get();
  options.resilience.fallback_router = fallback_router.get();
  FaultedStack stack(engine, "faulty:cache:16:fail:1.0", options);

  const auto pairs = mixed_pairs(400, 32, 8, 0xE2);
  const auto report = stack.service.route_batch_report(pairs, Rng(3));
  EXPECT_EQ(report.exact_pairs, 0u);
  EXPECT_EQ(report.degraded_pairs, pairs.size());
  EXPECT_EQ(report.failed_pairs, 0u);
  EXPECT_EQ(report.fallback_pairs, pairs.size());
  // One wave, max_retries rounds of futile retry.
  EXPECT_EQ(report.retries, options.resilience.max_retries);
  for (const auto status : report.status) {
    EXPECT_EQ(status, DegradationStatus::kDegraded);
  }
  EXPECT_GT(stack.service.queue_stats().fallback_pairs, 0u);
}

TEST(ResilientService, DeadlineBudgetShortCircuitsToTheFallback) {
  auto engine = NavigationEngine::from_family("grid2d", 400);
  engine.use_scheme("uniform");
  const auto fallback_oracle =
      graph::make_oracle("landmark:8", engine.graph());
  const auto fallback_router =
      routing::make_router("greedy", engine.graph(), *fallback_oracle);
  RouteServiceOptions options;
  options.resilience.fallback_oracle = fallback_oracle.get();
  options.resilience.fallback_router = fallback_router.get();
  // The first retry round's backoff (1 ms virtual) blows a 1 us budget:
  // exactly one round runs, then the batch is declared over-budget.
  options.resilience.batch_deadline_seconds = 1e-6;
  FaultedStack stack(engine, "faulty:cache:16:fail:1.0", options);

  const auto pairs = mixed_pairs(400, 16, 4, 0xF3);
  const auto report = stack.service.route_batch_report(pairs, Rng(4));
  EXPECT_TRUE(report.deadline_breached);
  EXPECT_EQ(report.retries, 1u);
  EXPECT_EQ(report.degraded_pairs, pairs.size());
  EXPECT_EQ(report.failed_pairs, 0u);
  EXPECT_EQ(stack.service.queue_stats().deadline_breaches, 1u);
}

TEST(ResilientService, ToleratedFaultsReportFailedPairs) {
  // No fallback tier, tolerate_faults: dead targets surface as per-pair
  // kFailed results (reached = false) instead of a thrown batch.
  auto engine = NavigationEngine::from_family("grid2d", 400);
  engine.use_scheme("uniform");
  RouteServiceOptions options;
  options.resilience.tolerate_faults = true;
  FaultedStack stack(engine, "faulty:cache:16:fail:1.0", options);

  const auto pairs = mixed_pairs(400, 12, 3, 0xA4);
  const auto report = stack.service.route_batch_report(pairs, Rng(5));
  EXPECT_EQ(report.failed_pairs, pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(report.status[i], DegradationStatus::kFailed) << i;
    EXPECT_FALSE(report.results[i].reached) << i;
    EXPECT_EQ(report.results[i].initial_distance, graph::kInfDist) << i;
    EXPECT_EQ(report.results[i].steps, 0u) << i;
  }
  EXPECT_EQ(stack.service.queue_stats().failed_pairs, pairs.size());
}

TEST(ResilientService, WithoutToleranceOrFallbackTheBatchThrows) {
  auto engine = NavigationEngine::from_family("grid2d", 400);
  engine.use_scheme("uniform");
  FaultedStack stack(engine, "faulty:cache:16:fail:1.0");
  const auto pairs = mixed_pairs(400, 8, 2, 0xB5);
  EXPECT_THROW((void)stack.service.route_batch(pairs, Rng(6)),
               resilience::TransientOracleError);
}

TEST(ResilientService, StalledRowsFlowThroughSubmitPrefetchWaves) {
  // Satellite: the exact()=false stall machinery through the service.
  // stall:1.0 widens every row; the router (built over the faulty oracle)
  // latches the stall-tolerant posture, submit()'s prefetch waves carry the
  // widened rows, and whatever stalls comes back reached == false — counted
  // as degraded, never thrown.
  auto engine = NavigationEngine::from_family("grid2d", 400);
  engine.use_scheme("uniform");
  RouteServiceOptions options;
  options.max_pinned_targets = 4;  // several waves per batch
  FaultedStack stack(engine, "faulty:matrix:stall:1.0:seed:2", options);
  ASSERT_FALSE(stack.oracle->exact());

  const auto pairs = mixed_pairs(400, 64, 16, 0xC6);
  auto future = stack.service.submit(
      std::vector<Pair>(pairs.begin(), pairs.end()), Rng(11));
  const auto via_submit = future.get();  // must not throw
  ASSERT_EQ(via_submit.size(), pairs.size());

  // Stall membership is attempt-independent, so the same stack's synchronous
  // path replays identically — submit()'s waves changed nothing.
  const auto report = stack.service.route_batch_report(pairs, Rng(11));
  std::size_t unreached = 0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(via_submit[i].steps, report.results[i].steps) << i;
    EXPECT_EQ(via_submit[i].reached, report.results[i].reached) << i;
    if (!via_submit[i].reached) ++unreached;
  }
  // Unreached-but-executed pairs are the degraded ones.
  EXPECT_EQ(report.degraded_pairs, unreached);
  EXPECT_EQ(report.exact_pairs, pairs.size() - unreached);
  EXPECT_EQ(report.failed_pairs, 0u);
}

TEST(ResilientService, StalledFieldReportsUnreachedNotThrown) {
  // A field with no descent anywhere (constant distance everywhere except
  // the target itself) stalls greedy immediately: every far pair must come
  // back reached == false through the full prefetch path.
  static constexpr graph::Dist kFlat = 5;
  class FlatOracle final : public graph::DistanceOracle {
   public:
    explicit FlatOracle(std::size_t n) : n_(n) {}
    [[nodiscard]] bool exact() const noexcept override { return false; }
    [[nodiscard]] graph::Dist distance(
        graph::NodeId u, graph::NodeId target) const override {
      return u == target ? 0 : kFlat;
    }
    [[nodiscard]] graph::DistVecPtr distances_to(
        graph::NodeId target) const override {
      std::shared_ptr<graph::Dist[]> row(new graph::Dist[n_]);
      for (std::size_t u = 0; u < n_; ++u) {
        row[u] = (u == target) ? 0 : kFlat;
      }
      std::shared_ptr<const graph::Dist> alias(row, row.get());
      return {std::move(alias), n_};
    }

   private:
    std::size_t n_;
  };

  const auto g = graph::make_grid2d(10, 10);
  FlatOracle flat(g.num_nodes());
  const auto router = routing::make_router("greedy", g, flat);
  RouteService service(g, flat, nullptr, *router);
  // Far pairs: no neighbour of the source ever improves the flat bound.
  const std::vector<Pair> pairs = {{0, 99}, {9, 90}, {0, 55}};
  const auto report = service.route_batch_report(pairs, Rng(13));
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_FALSE(report.results[i].reached) << i;
    EXPECT_EQ(report.status[i], DegradationStatus::kDegraded) << i;
  }
  EXPECT_EQ(report.degraded_pairs, pairs.size());
}

TEST(ResilientService, VirtualShedCarriesStructuredContext) {
  // Virtual-time Shed is a pure function of arrival times and batch sizes:
  // with cost 2^-7 s/pair, batch 0 (16 pairs) occupies the server until
  // vtime 0.125, so batches 1 and 2 (same arrival) age 0.125 > 0.1 and shed
  // — batch 1 with 16 pairs still queued behind it. (Dyadic cost: every
  // virtual instant is exactly representable, so the equalities are exact.)
  auto engine = NavigationEngine::from_family("grid2d", 400);
  engine.use_scheme("uniform");
  RouteServiceOptions options;
  options.admission = AdmissionPolicy::shed(0.1);
  options.virtual_pair_cost_seconds = 0.0078125;
  RouteService shed_service(engine.graph(), engine.oracle(), engine.scheme(),
                            engine.router(), options);
  const auto pairs = mixed_pairs(400, 16, 4, 0xD7);

  shed_service.pause();
  std::vector<std::future<std::vector<routing::RouteResult>>> futures;
  for (int b = 0; b < 3; ++b) {
    futures.push_back(shed_service.submit(
        std::vector<Pair>(pairs.begin(), pairs.end()), Rng(b), 0.0));
  }
  shed_service.resume();

  EXPECT_EQ(futures[0].get().size(), pairs.size());
  bool caught = false;
  try {
    (void)futures[1].get();
  } catch (const ShedError& e) {
    caught = true;
    EXPECT_EQ(e.reason(), ShedError::Reason::kDeadline);
    EXPECT_DOUBLE_EQ(e.waited_seconds(), 0.125);
    EXPECT_EQ(e.batch_pairs(), 16u);
    EXPECT_EQ(e.queue_depth_pairs(), 16u);  // batch 2 still behind it
  }
  EXPECT_TRUE(caught);
  EXPECT_THROW((void)futures[2].get(), ShedError);
  const auto stats = shed_service.queue_stats();
  EXPECT_EQ(stats.shed_batches, 2u);
  EXPECT_EQ(stats.shed_pairs, 32u);
  EXPECT_EQ(stats.rejected_batches, 0u);
}

TEST(ResilientService, AdaptiveAdmissionIsDeterministic) {
  // All six batches arrive at vtime 0. Batch 0 is admitted into an idle
  // server (backlog 0), costs 32 * 2^-7 = 0.25 s of virtual work, and
  // breaches the 0.05 s SLO — the window halves from 64 to 32. Every later
  // batch then sees backlog 32 + its own 32 > 32 and is rejected. The whole
  // story must replay identically from a fresh service.
  auto engine = NavigationEngine::from_family("grid2d", 400);
  engine.use_scheme("uniform");
  const auto pairs = mixed_pairs(400, 32, 8, 0xE8);
  struct Outcome {
    std::vector<bool> rejected;
    std::vector<double> sojourns;
    QueueStats stats;
  };
  const auto run = [&] {
    RouteServiceOptions options;
    options.admission = AdmissionPolicy::adaptive(0.05);
    options.admission.adaptive_start_pairs = 64;
    options.admission.adaptive_min_pairs = 16;
    options.virtual_pair_cost_seconds = 0.0078125;
    RouteService service(engine.graph(), engine.oracle(), engine.scheme(),
                         engine.router(), options);
    service.pause();
    std::vector<std::future<std::vector<routing::RouteResult>>> futures;
    for (int b = 0; b < 6; ++b) {
      futures.push_back(service.submit(
          std::vector<Pair>(pairs.begin(), pairs.end()), Rng(b), 0.0));
    }
    service.resume();
    Outcome out;
    for (auto& future : futures) {
      try {
        (void)future.get();
        out.rejected.push_back(false);
      } catch (const ShedError& e) {
        EXPECT_EQ(e.reason(), ShedError::Reason::kRejected);
        out.rejected.push_back(true);
      }
    }
    out.sojourns = service.virtual_sojourns();
    out.stats = service.queue_stats();
    return out;
  };

  const auto a = run();
  EXPECT_EQ(a.rejected,
            (std::vector<bool>{false, true, true, true, true, true}));
  ASSERT_EQ(a.sojourns.size(), 1u);
  EXPECT_DOUBLE_EQ(a.sojourns[0], 0.25);
  EXPECT_EQ(a.stats.rejected_batches, 5u);
  EXPECT_EQ(a.stats.rejected_pairs, 5u * 32u);
  EXPECT_EQ(a.stats.slo_breaches, 1u);
  EXPECT_EQ(a.stats.adaptive_window_pairs, 32u);
  EXPECT_EQ(a.stats.shed_batches, 0u);

  const auto b = run();
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.sojourns, b.sojourns);
  EXPECT_EQ(a.stats.rejected_pairs, b.stats.rejected_pairs);
  EXPECT_EQ(a.stats.slo_breaches, b.stats.slo_breaches);
  EXPECT_EQ(a.stats.adaptive_window_pairs, b.stats.adaptive_window_pairs);
}

TEST(ResilientService, AdaptiveWindowRecoversAdditively) {
  // Batches spaced a full service interval apart never queue: sojourn ==
  // 0.25 s < slo 0.5, so each served batch grows the window by
  // adaptive_increase_pairs — AIMD's additive half.
  auto engine = NavigationEngine::from_family("grid2d", 400);
  engine.use_scheme("uniform");
  RouteServiceOptions options;
  options.admission = AdmissionPolicy::adaptive(0.5);
  options.admission.adaptive_start_pairs = 64;
  options.admission.adaptive_increase_pairs = 16;
  options.virtual_pair_cost_seconds = 0.0078125;
  RouteService service(engine.graph(), engine.oracle(), engine.scheme(),
                       engine.router(), options);
  const auto pairs = mixed_pairs(400, 32, 8, 0xF9);
  std::vector<std::future<std::vector<routing::RouteResult>>> futures;
  for (int b = 0; b < 3; ++b) {
    futures.push_back(service.submit(
        std::vector<Pair>(pairs.begin(), pairs.end()), Rng(b), b * 0.25));
  }
  for (auto& future : futures) EXPECT_EQ(future.get().size(), pairs.size());
  const auto stats = service.queue_stats();
  EXPECT_EQ(stats.slo_breaches, 0u);
  EXPECT_EQ(stats.rejected_batches, 0u);
  EXPECT_EQ(stats.adaptive_window_pairs, 64u + 3u * 16u);
  EXPECT_EQ(service.virtual_sojourns(),
            (std::vector<double>{0.25, 0.25, 0.25}));
}

TEST(ResilientService, AdaptivePolicyValidatesItsConfiguration) {
  auto engine = NavigationEngine::from_family("grid2d", 100);
  engine.use_scheme("uniform");
  // kAdaptive without a virtual pair cost can never observe a sojourn.
  RouteServiceOptions no_cost;
  no_cost.admission = AdmissionPolicy::adaptive(0.1);
  EXPECT_THROW(RouteService(engine.graph(), engine.oracle(), engine.scheme(),
                            engine.router(), no_cost),
               std::invalid_argument);
  EXPECT_THROW((void)AdmissionPolicy::adaptive(0.0), std::invalid_argument);
  EXPECT_THROW((void)AdmissionPolicy::adaptive(-1.0), std::invalid_argument);
}

TEST(ResilientService, ShedErrorFormatsItsStructuredContext) {
  const ShedError shed(ShedError::Reason::kDeadline, 0.25, 32, 64);
  EXPECT_EQ(shed.reason(), ShedError::Reason::kDeadline);
  EXPECT_DOUBLE_EQ(shed.waited_seconds(), 0.25);
  EXPECT_EQ(shed.batch_pairs(), 32u);
  EXPECT_EQ(shed.queue_depth_pairs(), 64u);
  const std::string what = shed.what();
  EXPECT_NE(what.find("32 pairs"), std::string::npos);
  EXPECT_NE(what.find("shed"), std::string::npos);
  const ShedError rejected(ShedError::Reason::kRejected, 0.0, 8, 0);
  EXPECT_NE(std::string(rejected.what()).find("rejected"), std::string::npos);
}

}  // namespace
}  // namespace nav::api
