// test_faulty_oracle.cpp — the fault-injecting decorator's contract: exact
// pass-through when fault-free, per-attempt fail draws that converge under
// retry, the partial-success prefetch contract, stall widening that stays a
// valid upper bound, and virtual (never wall) slow latency. Plus the
// make_oracle("faulty:...") registration.
#include "resilience/faulty_oracle.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/oracle_factory.hpp"
#include "resilience/virtual_clock.hpp"

namespace nav::resilience {
namespace {

using graph::Dist;
using graph::DistVecPtr;
using graph::NodeId;
using graph::make_oracle;

FaultSpec parse_faults(const std::string& spec) {
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const auto colon = spec.find(':', start);
    if (colon == std::string::npos) {
      tokens.push_back(spec.substr(start));
      break;
    }
    tokens.push_back(spec.substr(start, colon - start));
    start = colon + 1;
  }
  return FaultSpec::parse(tokens, spec);
}

TEST(FaultyOracle, FaultFreeSpecIsATransparentDecorator) {
  const auto g = graph::make_grid2d(8, 8);
  const auto base = make_oracle("matrix", g);
  FaultSpec spec;  // all probabilities zero
  const FaultyOracle faulty(*base, spec);
  EXPECT_TRUE(faulty.exact());
  for (NodeId t = 0; t < g.num_nodes(); t += 7) {
    EXPECT_TRUE(*faulty.distances_to(t) == *base->distances_to(t)) << t;
    EXPECT_EQ(faulty.distance(0, t), base->distance(0, t)) << t;
  }
  EXPECT_EQ(faulty.injected_failures(), 0u);
  EXPECT_EQ(faulty.stalled_rows(), 0u);
}

TEST(FaultyOracle, StallMakesTheOracleInexact) {
  const auto g = graph::make_grid2d(8, 8);
  const auto base = make_oracle("matrix", g);
  const FaultyOracle stalled(*base, parse_faults("stall:0.5"));
  EXPECT_FALSE(stalled.exact());
  const FaultyOracle failing(*base, parse_faults("fail:0.5"));
  EXPECT_TRUE(failing.exact());  // fail faults do not change exactness
}

TEST(FaultyOracle, StalledRowsAreWidenedUpperBounds) {
  const auto g = graph::make_path(64);
  const auto base = make_oracle("matrix", g);
  const FaultyOracle faulty(*base, parse_faults("stall:1.0"));
  const NodeId target = 0;
  ASSERT_TRUE(faulty.fault_spec().stalled(target));
  const auto exact_row = base->distances_to(target);
  const auto widened = faulty.distances_to(target);
  for (std::size_t u = 0; u < g.num_nodes(); ++u) {
    const Dist d = (*exact_row)[u];
    EXPECT_GE((*widened)[u], d) << u;
    EXPECT_LE((*widened)[u], d + 1) << u;
    if (d <= faulty.fault_spec().stall_exact_radius) {
      EXPECT_EQ((*widened)[u], d) << u;
    }
    // The single-entry query agrees with the row entry for entry.
    EXPECT_EQ(faulty.distance(static_cast<NodeId>(u), target), (*widened)[u]);
  }
  EXPECT_GT(faulty.stalled_rows(), 0u);
}

TEST(FaultyOracle, FailDrawsAreFreshPerAttemptSoRetriesConverge) {
  const auto g = graph::make_grid2d(8, 8);
  const auto base = make_oracle("matrix", g);
  const FaultyOracle faulty(*base, parse_faults("fail:0.5"));
  // Hammer every target until it answers: with per-attempt draws at p = 0.5
  // each target succeeds in a handful of attempts; a stuck per-target draw
  // would loop forever on its first failing target.
  for (NodeId t = 0; t < g.num_nodes(); ++t) {
    bool answered = false;
    for (int attempt = 0; attempt < 64 && !answered; ++attempt) {
      try {
        (void)faulty.distances_to(t);
        answered = true;
      } catch (const TransientOracleError&) {
      }
    }
    EXPECT_TRUE(answered) << t;
  }
  EXPECT_GT(faulty.injected_failures(), 0u);
}

TEST(FaultyOracle, SameSeedSameAttemptOrderSameFailures) {
  const auto g = graph::make_grid2d(8, 8);
  const auto base = make_oracle("matrix", g);
  const auto run = [&] {
    const FaultyOracle faulty(*base, parse_faults("fail:0.3:seed:11"));
    std::vector<NodeId> failed;
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      try {
        (void)faulty.distances_to(t);
      } catch (const TransientOracleError& e) {
        failed.insert(failed.end(), e.targets().begin(), e.targets().end());
      }
    }
    return failed;
  };
  // Fresh decorators replay the identical fault schedule: same targets fail
  // on the same (first) attempt.
  EXPECT_EQ(run(), run());
}

TEST(FaultyOracle, PrefetchFillsSurvivorsBeforeThrowing) {
  const auto g = graph::make_grid2d(10, 10);
  const auto base = make_oracle("cache:16", g);
  const FaultyOracle faulty(*base, parse_faults("fail:0.4:seed:3"));
  // Find a wave whose first attempt fails a strict subset.
  std::vector<NodeId> wave = {0, 5, 9, 13, 21, 34, 55, 89};
  std::vector<DistVecPtr> out;
  std::vector<NodeId> failed;
  try {
    faulty.prefetch_into(wave, out);
  } catch (const TransientOracleError& e) {
    failed = e.targets();
  }
  ASSERT_FALSE(failed.empty())
      << "fail:0.4 over 8 targets should fail at least one on attempt 0";
  ASSERT_LT(failed.size(), wave.size())
      << "and should not fail all of them";
  ASSERT_EQ(out.size(), wave.size());
  for (std::size_t i = 0; i < wave.size(); ++i) {
    const bool did_fail = std::find(failed.begin(), failed.end(), wave[i]) !=
                          failed.end();
    if (did_fail) {
      // Failed positions stay null — the retry loop knows exactly what to
      // re-request.
      EXPECT_EQ(out[i], nullptr) << i;
    } else {
      // Partial success: every surviving position was filled BEFORE the
      // throw, and with the correct row.
      ASSERT_NE(out[i], nullptr) << i;
      EXPECT_TRUE(*out[i] == *base->distances_to(wave[i])) << i;
    }
  }
  // Retrying just the failed subset converges (per-attempt fresh draws).
  std::vector<NodeId> pending = failed;
  for (int round = 0; round < 64 && !pending.empty(); ++round) {
    std::vector<DistVecPtr> retry;
    try {
      faulty.prefetch_into(pending, retry);
      pending.clear();
    } catch (const TransientOracleError& e) {
      pending = e.targets();
    }
  }
  EXPECT_TRUE(pending.empty());
}

TEST(FaultyOracle, PrefetchSharesRowsAcrossDuplicateTargets) {
  const auto g = graph::make_grid2d(8, 8);
  const auto base = make_oracle("matrix", g);
  const FaultyOracle faulty(*base, parse_faults("stall:1.0"));
  const std::vector<NodeId> wave = {7, 3, 7, 7, 3};
  std::vector<DistVecPtr> out;
  faulty.prefetch_into(wave, out);
  ASSERT_EQ(out.size(), wave.size());
  // One fault draw and one widened copy per DISTINCT target; duplicate
  // positions share the handle (identity compare).
  EXPECT_EQ(out[0], out[2]);
  EXPECT_EQ(out[0], out[3]);
  EXPECT_EQ(out[1], out[4]);
  EXPECT_EQ(faulty.stalled_rows(), 2u);
}

TEST(FaultyOracle, SlowFaultsAdvanceTheVirtualClockOnly) {
  const auto g = graph::make_grid2d(8, 8);
  const auto base = make_oracle("matrix", g);
  VirtualClock clock;  // private clock: the test owns the whole timeline
  const FaultyOracle faulty(*base, parse_faults("slow:1.0:250"), &clock);
  const auto before = clock.micros();
  (void)faulty.distances_to(0);
  (void)faulty.distances_to(1);
  EXPECT_EQ(clock.micros(), before + 500u);
  EXPECT_EQ(faulty.injected_slow_micros(), 500u);
}

TEST(FaultyOracle, FactoryBuildsTheDecorator) {
  const auto g = graph::make_grid2d(8, 8);
  const auto oracle =
      make_oracle("faulty:cache:8:fail:0.05:stall:0.1:seed:7", g);
  const auto* faulty = dynamic_cast<const FaultyOracle*>(oracle.get());
  ASSERT_NE(faulty, nullptr);
  EXPECT_FALSE(faulty->exact());  // stall:0.1 > 0
  EXPECT_DOUBLE_EQ(faulty->fault_spec().fail_p, 0.05);
  EXPECT_DOUBLE_EQ(faulty->fault_spec().stall_p, 0.1);
  EXPECT_EQ(faulty->fault_spec().seed, 7u);
  // The base spec before the first fault head went to the cache backend.
  EXPECT_NE(dynamic_cast<const graph::TargetDistanceCache*>(&faulty->base()),
            nullptr);
}

TEST(FaultyOracle, FactoryRejectsDegenerateSpecs) {
  const auto g = graph::make_cycle(8);
  // No fault clauses at all.
  EXPECT_THROW((void)make_oracle("faulty:cache", g), std::invalid_argument);
  EXPECT_THROW((void)make_oracle("faulty", g), std::invalid_argument);
  // Nested fault decorators are rejected, not silently stacked.
  EXPECT_THROW((void)make_oracle("faulty:faulty:cache:fail:0.1", g),
               std::invalid_argument);
  // Unknown fault clause.
  EXPECT_THROW((void)make_oracle("faulty:cache:crash:0.5", g),
               std::invalid_argument);
}

}  // namespace
}  // namespace nav::resilience
