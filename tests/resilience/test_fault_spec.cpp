// test_fault_spec.cpp — the fault-schedule contract: the clause grammar
// parses exactly, every draw is a pure function of (seed, target, attempt),
// and the stall transform produces valid upper bounds.
#include "resilience/fault_spec.hpp"

#include <gtest/gtest.h>

#include "graph/bfs.hpp"

namespace nav::resilience {
namespace {

std::vector<std::string> split(const std::string& spec) {
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const auto colon = spec.find(':', start);
    if (colon == std::string::npos) {
      tokens.push_back(spec.substr(start));
      break;
    }
    tokens.push_back(spec.substr(start, colon - start));
    start = colon + 1;
  }
  return tokens;
}

TEST(FaultSpec, ParsesEveryClauseFamily) {
  const auto spec =
      FaultSpec::parse(split("fail:0.05:stall:0.1:slow:0.2:500:seed:7"),
                       "fail:0.05:stall:0.1:slow:0.2:500:seed:7");
  EXPECT_DOUBLE_EQ(spec.fail_p, 0.05);
  EXPECT_DOUBLE_EQ(spec.stall_p, 0.1);
  EXPECT_DOUBLE_EQ(spec.slow_p, 0.2);
  EXPECT_DOUBLE_EQ(spec.slow_us, 500.0);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_TRUE(spec.any());
}

TEST(FaultSpec, DefaultsAreFaultFree) {
  const FaultSpec spec;
  EXPECT_FALSE(spec.any());
  // No fault family active: nothing stalls, nothing fails, at any attempt.
  for (graph::NodeId t = 0; t < 64; ++t) {
    EXPECT_FALSE(spec.stalled(t));
    EXPECT_FALSE(spec.fails(t, 0));
    EXPECT_FALSE(spec.slow(t, 3));
  }
}

TEST(FaultSpec, RejectsMalformedClauses) {
  for (const auto* bad :
       {"blorp:0.5", "fail", "fail:1.5", "fail:-0.1", "fail:x",
        "stall:0.1:stall:0.2", "slow:0.5", "slow:0.5:-3", "seed:x",
        "fail:0.05:seed"}) {
    EXPECT_THROW((void)FaultSpec::parse(split(bad), bad),
                 std::invalid_argument)
        << bad;
  }
}

TEST(FaultSpec, IdentifiesFaultHeads) {
  EXPECT_TRUE(FaultSpec::is_fault_head("stall"));
  EXPECT_TRUE(FaultSpec::is_fault_head("fail"));
  EXPECT_TRUE(FaultSpec::is_fault_head("slow"));
  EXPECT_TRUE(FaultSpec::is_fault_head("seed"));
  EXPECT_FALSE(FaultSpec::is_fault_head("cache"));
  EXPECT_FALSE(FaultSpec::is_fault_head("64"));
}

TEST(FaultSpec, DrawsAreDeterministicFunctionsOfSeedTargetAttempt) {
  const auto a = FaultSpec::parse(split("fail:0.5:stall:0.5"), "x");
  const auto b = FaultSpec::parse(split("fail:0.5:stall:0.5"), "x");
  for (graph::NodeId t = 0; t < 256; ++t) {
    EXPECT_EQ(a.stalled(t), b.stalled(t)) << t;
    for (std::uint64_t attempt = 0; attempt < 4; ++attempt) {
      EXPECT_EQ(a.fails(t, attempt), b.fails(t, attempt)) << t;
    }
  }
}

TEST(FaultSpec, SeedRekeysTheSchedule) {
  const auto a = FaultSpec::parse(split("stall:0.5"), "x");
  const auto b = FaultSpec::parse(split("stall:0.5:seed:99"), "x");
  std::size_t differs = 0;
  for (graph::NodeId t = 0; t < 512; ++t) {
    if (a.stalled(t) != b.stalled(t)) ++differs;
  }
  EXPECT_GT(differs, 0u);
}

TEST(FaultSpec, StallFractionTracksProbability) {
  const auto spec = FaultSpec::parse(split("stall:0.25"), "x");
  std::size_t stalled = 0;
  const std::size_t n = 4096;
  for (graph::NodeId t = 0; t < n; ++t) {
    if (spec.stalled(t)) ++stalled;
  }
  // Seeded hash membership: the observed fraction should sit near p.
  EXPECT_GT(stalled, n / 8);
  EXPECT_LT(stalled, n / 2);
}

TEST(FaultSpec, FailDrawsAreFreshPerAttempt) {
  // A target that failed attempt k must be able to succeed at attempt k+1 —
  // that per-attempt freshness is what makes bounded retries converge. With
  // p = 0.5, some target must flip between consecutive attempts.
  const auto spec = FaultSpec::parse(split("fail:0.5"), "x");
  bool flipped = false;
  for (graph::NodeId t = 0; t < 128 && !flipped; ++t) {
    flipped = spec.fails(t, 0) != spec.fails(t, 1);
  }
  EXPECT_TRUE(flipped);
}

TEST(FaultSpec, StallTransformIsABoundedUpperBound) {
  const auto spec = FaultSpec::parse(split("stall:1.0"), "x");
  graph::NodeId stalled_target = 0;
  ASSERT_TRUE(spec.stalled(stalled_target));
  for (graph::Dist d = 0; d < 200; ++d) {
    const auto widened = spec.stall_transform(d, stalled_target);
    if (d <= spec.stall_exact_radius) {
      // Within the exact ball the row stays exact (routes that get close
      // still terminate).
      EXPECT_EQ(widened, d) << d;
    } else {
      EXPECT_GE(widened, d) << d;
      EXPECT_LE(widened, d + 1) << d;
    }
  }
  // Infinity passes through untouched.
  EXPECT_EQ(spec.stall_transform(graph::kInfDist, stalled_target),
            graph::kInfDist);
}

TEST(FaultSpec, TransientErrorCarriesTheFailedSubset) {
  const TransientOracleError error({3, 7, 11});
  EXPECT_EQ(error.targets().size(), 3u);
  EXPECT_EQ(error.targets()[1], 7u);
  EXPECT_NE(std::string(error.what()).find("3 target"), std::string::npos);
}

}  // namespace
}  // namespace nav::resilience
