// test_worker_team_failure.cpp — the lane-failure injection contract:
// a failed lane's body is taken over by the coordinator (full work coverage,
// every lane index executed exactly once per run), countdowns trigger at
// deterministic dispatch boundaries mid-sweep, and ParallelBfs slabs stay
// bit-identical to the scalar engine with lanes failed.
#include "runtime/worker_team.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "graph/bfs_engine.hpp"
#include "graph/generators.hpp"

namespace nav {
namespace {

TEST(WorkerTeamFailure, FailedLaneBodyRunsOnTheCoordinator) {
  WorkerTeam team(4);
  std::vector<std::thread::id> ran_by(4);
  auto record = [&](std::size_t lane) {
    ran_by[lane] = std::this_thread::get_id();
  };
  team.run(record);
  // Healthy baseline: lane 0 is the caller, workers run their own bodies.
  EXPECT_EQ(ran_by[0], std::this_thread::get_id());
  EXPECT_NE(ran_by[2], std::this_thread::get_id());

  team.fail_lane(2);
  EXPECT_EQ(team.failed_lanes(), 1u);
  std::vector<std::uint32_t> runs(4, 0);
  std::mutex runs_mutex;
  team.run([&](std::size_t lane) {
    std::lock_guard lock(runs_mutex);
    ++runs[lane];
    ran_by[lane] = std::this_thread::get_id();
  });
  // Every lane index still executed exactly once; the failed lane's body ran
  // on the coordinating (calling) thread.
  EXPECT_EQ(runs, (std::vector<std::uint32_t>{1, 1, 1, 1}));
  EXPECT_EQ(ran_by[2], std::this_thread::get_id());

  team.heal_lanes();
  EXPECT_EQ(team.failed_lanes(), 0u);
  team.run(record);
  EXPECT_NE(ran_by[2], std::this_thread::get_id());
}

TEST(WorkerTeamFailure, CountdownFailsTheLaneMidSequence) {
  WorkerTeam team(3);
  team.run([](std::size_t) {});  // start the workers
  // Fail lane 1 after 2 more dispatches: dispatches 0 and 1 are healthy,
  // dispatch 2 onward is taken over.
  team.fail_lane(1, 2);
  EXPECT_EQ(team.failed_lanes(), 0u) << "countdown pending, not active yet";
  std::vector<bool> taken_over;
  for (int dispatch = 0; dispatch < 4; ++dispatch) {
    std::vector<std::thread::id> ran_by(3);
    std::mutex mutex;
    team.run([&](std::size_t lane) {
      std::lock_guard lock(mutex);
      ran_by[lane] = std::this_thread::get_id();
    });
    taken_over.push_back(ran_by[1] == std::this_thread::get_id());
  }
  EXPECT_EQ(taken_over, (std::vector<bool>{false, false, true, true}));
  EXPECT_EQ(team.failed_lanes(), 1u);
}

TEST(WorkerTeamFailure, RejectsLaneZeroAndOutOfRangeLanes) {
  WorkerTeam team(2);
  EXPECT_THROW(team.fail_lane(0), std::invalid_argument);
  EXPECT_THROW(team.fail_lane(2), std::invalid_argument);
}

TEST(WorkerTeamFailure, ParallelBfsSlabsBitIdenticalUnderLaneLoss) {
  // The acceptance bar: a parallel sweep that loses a lane MID-SWEEP (the
  // countdown fires between level dispatches) still produces distances
  // bit-identical to the scalar engine — the coordinator covers the failed
  // lane's ranges, only the executing thread differs.
  const auto g = graph::make_grid2d(40, 40);
  graph::BfsWorkspace scalar;
  std::vector<graph::Dist> expect(g.num_nodes());
  scalar.distances_into_scalar(g, 0, expect);

  graph::ParallelPolicy policy;
  policy.num_workers = 4;
  policy.serial_frontier_cutoff = 1;  // force parallel dispatch every level
  policy.min_diropt_nodes = 1;
  graph::ParallelBfs sweep(policy);
  std::vector<graph::Dist> got(g.num_nodes());
  sweep.distances_into(g, 0, got);  // healthy warm-up sweep
  ASSERT_EQ(got, expect);

  // Lose lane 3 a few dispatches into the next sweep, then lane 1 entirely.
  sweep.team().fail_lane(3, 5);
  sweep.distances_into(g, 0, got);
  EXPECT_EQ(got, expect) << "mid-sweep lane loss changed the slab";

  sweep.team().fail_lane(1);
  sweep.distances_into(g, 0, got);
  EXPECT_EQ(got, expect) << "two failed lanes changed the slab";
  EXPECT_EQ(sweep.team().failed_lanes(), 2u);

  sweep.team().heal_lanes();
  sweep.distances_into(g, 0, got);
  EXPECT_EQ(got, expect);
  EXPECT_EQ(sweep.team().failed_lanes(), 0u);
}

}  // namespace
}  // namespace nav
