// test_traffic_driver.cpp — the load-driving contract: arrival schedules are
// deterministic virtual-time sequences, every admitted batch routes
// bit-identically to sequential routing, and admission policies observably
// block (Bounded) or shed (Shed) under saturating bursts.
#include "workload/traffic_driver.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "api/engine.hpp"

namespace nav::workload {
namespace {

using api::AdmissionPolicy;
using api::NavigationEngine;
using api::RouteService;
using api::RouteServiceOptions;

NavigationEngine make_engine(graph::NodeId n = 400) {
  auto engine = NavigationEngine::from_family("grid2d", n);
  engine.use_scheme("uniform");
  return engine;
}

TEST(ArrivalSchedule, ParsesAndRejects) {
  const auto poisson = ArrivalSchedule::parse("poisson:2.5");
  EXPECT_EQ(poisson.kind, ArrivalSchedule::Kind::kPoisson);
  EXPECT_DOUBLE_EQ(poisson.rate, 2.5);
  const auto burst = ArrivalSchedule::parse("burst:4:0.125");
  EXPECT_EQ(burst.kind, ArrivalSchedule::Kind::kBurst);
  EXPECT_EQ(burst.burst_size, 4u);
  EXPECT_DOUBLE_EQ(burst.gap_seconds, 0.125);
  for (const auto* bad : {"steady", "poisson", "poisson:0", "poisson:x",
                          "burst:4", "burst:0:1", "burst:2:-1"}) {
    EXPECT_THROW((void)ArrivalSchedule::parse(bad), std::invalid_argument)
        << bad;
  }
}

TEST(ArrivalSchedule, BurstTimesAreGroupedAndGapped) {
  const auto schedule = ArrivalSchedule::parse("burst:3:0.5");
  const auto times = schedule.arrival_times(7, Rng(1));
  const std::vector<double> expected = {0.0, 0.0, 0.0, 0.5, 0.5, 0.5, 1.0};
  EXPECT_EQ(times, expected);
}

TEST(ArrivalSchedule, PoissonTimesAreDeterministicAndIncreasing) {
  const auto schedule = ArrivalSchedule::parse("poisson:10");
  const auto a = schedule.arrival_times(32, Rng(5));
  const auto b = schedule.arrival_times(32, Rng(5));
  EXPECT_EQ(a, b);
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_GE(a[i], a[i - 1]);
  // Mean gap should be in the right ballpark of 1/rate = 0.1s.
  EXPECT_GT(a.back(), 0.5);
  EXPECT_LT(a.back(), 10.0);
}

TEST(TrafficDriver, AdmittedBatchesRouteBitIdenticallyToSequential) {
  // The open-loop schedule, the submit() queue, and the service thread are
  // pure execution concerns: batch b still routes exactly like a standalone
  // route_batch(workload.batch(...), rng.child(0xB47).child(b)).
  const auto engine = make_engine();
  RouteService service(engine);
  const auto workload = engine.make_workload("hotset:6:0.7", 0xBEEF);
  TrafficOptions options;
  options.schedule = "burst:4:0.0";
  options.batches = 8;
  options.batch_size = 32;
  options.keep_results = true;
  TrafficDriver driver(service, *workload, options);
  const Rng rng(0xD21);
  const auto report = driver.run(rng);

  EXPECT_EQ(report.pairs_submitted, 8u * 32u);
  EXPECT_EQ(report.pairs_admitted, 8u * 32u);
  EXPECT_EQ(report.pairs_shed, 0u);
  EXPECT_EQ(report.hops.count, 8u * 32u);
  ASSERT_EQ(report.results.size(), 8u);

  // Reference: same demand stream, no queue, no service thread.
  const auto reference_workload = engine.make_workload("hotset:6:0.7", 0xBEEF);
  const RouteService reference(engine);
  Rng gen_rng = rng.child(0x6e4);
  for (std::size_t b = 0; b < 8; ++b) {
    const auto pairs = reference_workload->batch(32, gen_rng);
    const auto expected = reference.route_batch(pairs, rng.child(0xB47).child(b));
    ASSERT_EQ(report.results[b].size(), expected.size()) << b;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(report.results[b][i].steps, expected[i].steps) << b;
      EXPECT_EQ(report.results[b][i].long_links_used,
                expected[i].long_links_used)
          << b;
      EXPECT_EQ(report.results[b][i].initial_distance,
                expected[i].initial_distance)
          << b;
    }
  }
}

TEST(TrafficDriver, BoundedAdmissionBlocksUnderSaturatingBurst) {
  // A paused service cannot drain, so once the first batch is queued every
  // further submit must block on the bound; a delayed resume() then lets the
  // run complete. Proves backpressure engages (blocked_submits, peak depth)
  // and that blocking never changes a route (bit-identity vs reference).
  const auto engine = make_engine();
  RouteServiceOptions options;
  options.admission = AdmissionPolicy::bounded(32);
  RouteService service(engine, options);
  const auto workload = engine.make_workload("zipf:1.1", 0x2e);
  TrafficOptions traffic;
  traffic.schedule = "burst:6:0.0";  // everything arrives at once
  traffic.batches = 6;
  traffic.batch_size = 32;
  traffic.keep_results = true;
  TrafficDriver driver(service, *workload, traffic);

  service.pause();
  std::thread resumer([&service] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    service.resume();
  });
  const Rng rng(0xB0B);
  const auto report = driver.run(rng);
  resumer.join();

  // Batch 0 is admitted into the empty queue; while the service is paused,
  // batch 1's submit must wait (32 queued + 32 > 32) — backpressure was
  // observably engaged and the queue never exceeded the bound.
  EXPECT_GE(report.queue.blocked_submits, 1u);
  EXPECT_GE(report.queue.peak_queued_pairs, 32u);
  EXPECT_EQ(report.pairs_admitted, 6u * 32u);
  EXPECT_EQ(report.pairs_shed, 0u);

  const auto reference_workload = engine.make_workload("zipf:1.1", 0x2e);
  const RouteService reference(engine);
  Rng gen_rng = rng.child(0x6e4);
  for (std::size_t b = 0; b < 6; ++b) {
    const auto pairs = reference_workload->batch(32, gen_rng);
    const auto expected = reference.route_batch(pairs, rng.child(0xB47).child(b));
    ASSERT_EQ(report.results[b].size(), expected.size()) << b;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(report.results[b][i].steps, expected[i].steps) << b;
    }
  }
}

TEST(TrafficDriver, ShedAdmissionDropsAgedBatchesInVirtualTime) {
  // Virtual-time shedding: the driver stamps every batch with its arrival
  // vtime, and with virtual_pair_cost_seconds set the deadline is evaluated
  // against the virtual backlog — a pure function of arrivals and batch
  // sizes, no pause/sleep choreography, deterministic on any machine. The
  // burst lands all four batches at vtime 0; batch 0 occupies the server
  // for 16 * 2^-7 = 0.125 virtual seconds, so batches 1-3 each age 0.125 >
  // 0.1 and shed.
  const auto engine = make_engine();
  RouteServiceOptions options;
  options.admission = AdmissionPolicy::shed(0.1);
  options.virtual_pair_cost_seconds = 0.0078125;
  RouteService service(engine, options);
  const auto workload = engine.make_workload("uniform", 1);
  TrafficOptions traffic;
  traffic.schedule = "burst:4:0.0";
  traffic.batches = 4;
  traffic.batch_size = 16;
  TrafficDriver driver(service, *workload, traffic);
  const auto report = driver.run(Rng(0x5ed));

  EXPECT_EQ(report.pairs_admitted, 16u);
  EXPECT_EQ(report.pairs_shed, 3u * 16u);
  EXPECT_EQ(report.queue.shed_batches, 3u);
  EXPECT_EQ(report.hops.count, 16u);
  EXPECT_FALSE(report.batches[0].shed);
  for (std::size_t b = 1; b < 4; ++b) EXPECT_TRUE(report.batches[b].shed) << b;
  // The exact same run sheds the exact same batches.
  RouteService replay_service(engine, options);
  const auto replay_workload = engine.make_workload("uniform", 1);
  TrafficDriver replay(replay_service, *replay_workload, traffic);
  const auto again = replay.run(Rng(0x5ed));
  EXPECT_EQ(again.pairs_shed, report.pairs_shed);
  EXPECT_EQ(again.pairs_admitted, report.pairs_admitted);
}

TEST(TrafficDriver, AdaptiveAdmissionReportsDeterministicSloVerdict) {
  // Overload through the AIMD controller: every batch arrives at vtime 0,
  // the first admitted batch breaches the 0.05 s SLO (32 pairs * 2^-7 s =
  // 0.25 s sojourn), the window halves, and the rest are rejected. The
  // report's adaptive block carries the virtual quantiles and the strict
  // p99_under_slo verdict, all replay-stable.
  const auto engine = make_engine();
  const auto run = [&] {
    RouteServiceOptions options;
    options.admission = AdmissionPolicy::adaptive(0.05);
    options.admission.adaptive_start_pairs = 64;
    options.admission.adaptive_min_pairs = 16;
    options.virtual_pair_cost_seconds = 0.0078125;
    RouteService service(engine, options);
    const auto workload = engine.make_workload("zipf:1.1", 0x77);
    TrafficOptions traffic;
    traffic.schedule = "burst:6:0.0";
    traffic.batches = 6;
    traffic.batch_size = 32;
    TrafficDriver driver(service, *workload, traffic);
    return driver.run(Rng(0xADA));
  };
  const auto report = run();
  EXPECT_TRUE(report.adaptive);
  EXPECT_DOUBLE_EQ(report.slo_seconds, 0.05);
  EXPECT_EQ(report.pairs_admitted, 32u);
  EXPECT_EQ(report.pairs_rejected, 5u * 32u);
  EXPECT_EQ(report.pairs_shed, 0u);
  EXPECT_EQ(report.queue.rejected_batches, 5u);
  EXPECT_EQ(report.slo_breaches, 1u);
  EXPECT_FALSE(report.p99_under_slo);  // 250 ms p99 vs 50 ms SLO
  EXPECT_EQ(report.sojourn_v_ms.count, 1u);
  EXPECT_DOUBLE_EQ(report.sojourn_v_ms.p99, 250.0);
  EXPECT_EQ(report.adaptive_window_pairs, 32u);
  EXPECT_FALSE(report.batches[0].rejected);
  EXPECT_TRUE(report.batches[1].rejected);
  // The jsonl row grows the adaptive columns only on adaptive runs, and the
  // verdict is replay-stable.
  const auto record = report.record();
  bool has_verdict = false;
  for (const auto& field : record) {
    if (field.key == "p99_under_slo") has_verdict = true;
  }
  EXPECT_TRUE(has_verdict);
  const auto again = run();
  EXPECT_EQ(again.pairs_rejected, report.pairs_rejected);
  EXPECT_EQ(again.slo_breaches, report.slo_breaches);
  EXPECT_EQ(again.p99_under_slo, report.p99_under_slo);
  EXPECT_DOUBLE_EQ(again.sojourn_v_ms.p99, report.sojourn_v_ms.p99);
}

TEST(TrafficDriver, ReportSummarisesQuantilesAndRendersTable) {
  const auto engine = make_engine();
  RouteService service(engine);
  const auto workload = engine.make_workload("local:4");
  TrafficOptions options;
  options.schedule = "poisson:1000";
  options.batches = 5;
  options.batch_size = 20;
  TrafficDriver driver(service, *workload, options);
  const auto report = driver.run(Rng(77));

  EXPECT_EQ(report.workload, "local:4");
  EXPECT_EQ(report.schedule, "poisson:1000");
  EXPECT_EQ(report.hops.count, 100u);
  EXPECT_GE(report.hops.p99, report.hops.p50);
  EXPECT_GE(report.hops.max, report.hops.p99);
  // local:4 pairs start at distance <= 4 and greedy strictly shrinks the
  // distance each hop, so every route is at most 4 hops. (Stretch may dip
  // below 1: a long link can cover several base-graph hops at once.)
  EXPECT_LE(report.hops.max, 4.0);
  EXPECT_GT(report.stretch.p50, 0.0);
  EXPECT_EQ(report.sojourn_ms.count, 5u);

  const auto table = report.table();
  EXPECT_EQ(table.rows(), 5u);
  const auto record = report.record();
  EXPECT_EQ(record[0].key, "workload");
  // The jsonl row and the table must agree on the batch count.
  EXPECT_EQ(std::get<std::uint64_t>(record[2].value), 5u);
}

TEST(TrafficDriver, FailedBatchDoesNotAbandonTheRun) {
  // A custom workload that emits one out-of-range pair in batch 1: that
  // batch's future fails with invalid_argument (not ShedError), the run
  // continues, and every other batch is still admitted and summarised.
  class BrokenWorkload final : public Workload {
   public:
    [[nodiscard]] std::string name() const override { return "broken"; }
    [[nodiscard]] Pair next(Rng& /*rng*/) override {
      ++draws_;
      if (draws_ == 12) return {0, 9999};  // lands in batch 1 of 8-pair batches
      return {0, 1};
    }

   private:
    std::size_t draws_ = 0;
  };

  const auto engine = make_engine(64);
  RouteService service(engine);
  BrokenWorkload workload;
  TrafficOptions options;
  options.batches = 4;
  options.batch_size = 8;
  TrafficDriver driver(service, workload, options);
  const auto report = driver.run(Rng(1));

  EXPECT_EQ(report.pairs_failed, 8u);
  EXPECT_EQ(report.pairs_admitted, 3u * 8u);
  EXPECT_EQ(report.pairs_shed, 0u);
  EXPECT_TRUE(report.batches[1].failed);
  EXPECT_FALSE(report.batches[0].failed);
  EXPECT_NE(report.table().to_ascii().find("failed"), std::string::npos);
}

TEST(TrafficDriver, NegativeShedDeadlineIsRejected) {
  EXPECT_THROW((void)AdmissionPolicy::shed(-1.0), std::invalid_argument);
}

TEST(TrafficDriver, RejectsDegenerateOptions) {
  const auto engine = make_engine(64);
  RouteService service(engine);
  const auto workload = engine.make_workload("uniform");
  TrafficOptions zero_batches;
  zero_batches.batches = 0;
  EXPECT_THROW(TrafficDriver(service, *workload, zero_batches),
               std::invalid_argument);
  TrafficOptions zero_size;
  zero_size.batch_size = 0;
  EXPECT_THROW(TrafficDriver(service, *workload, zero_size),
               std::invalid_argument);
  TrafficOptions bad_schedule;
  bad_schedule.schedule = "tsunami";
  EXPECT_THROW(TrafficDriver(service, *workload, bad_schedule),
               std::invalid_argument);
}

}  // namespace
}  // namespace nav::workload
