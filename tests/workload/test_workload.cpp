// test_workload.cpp — the demand-model registry's contract: every generator
// is deterministic under its seeds, respects its distribution's shape, and
// "uniform" reproduces the classic trial-pair stream bit for bit.
#include "workload/workload.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <unordered_map>

#include "graph/bfs.hpp"
#include "graph/families.hpp"
#include "graph/generators.hpp"
#include "routing/trial_runner.hpp"

namespace nav::workload {
namespace {

graph::Graph test_graph(graph::NodeId n = 256) {
  Rng rng(0x9e0);
  return graph::family("grid2d").make(n, rng);
}

TEST(Workload, UniformIsBitIdenticalToSelectTrialPairs) {
  // The acceptance contract: a bench that swaps select_trial_pairs for
  // make_workload("uniform") sees the exact same pairs from the same rng.
  const auto g = test_graph(400);
  routing::TrialConfig config;
  config.policy = routing::TrialConfig::PairPolicy::kRandom;
  config.num_pairs = 64;
  Rng legacy_rng(0x1234);
  const auto expected = routing::select_trial_pairs(g, config, legacy_rng);

  const auto uniform = make_workload("uniform", g, Rng(0));  // seed unused
  Rng workload_rng(0x1234);
  const auto pairs = uniform->batch(64, workload_rng);
  ASSERT_EQ(pairs.size(), expected.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(pairs[i], expected[i]) << "pair " << i;
  }
}

TEST(Workload, BatchesAreDeterministicUnderSeeds) {
  const auto g = test_graph();
  for (const auto& spec : standard_workload_specs()) {
    const auto a = make_workload(spec, g, Rng(7));
    const auto b = make_workload(spec, g, Rng(7));
    Rng draw_a(9), draw_b(9);
    EXPECT_EQ(a->batch(40, draw_a), b->batch(40, draw_b)) << spec;
  }
}

TEST(Workload, PairsNeverSelfRoute) {
  const auto g = test_graph();
  for (const auto& spec : standard_workload_specs()) {
    const auto w = make_workload(spec, g, Rng(3));
    Rng rng(4);
    for (const auto& [s, t] : w->batch(200, rng)) {
      EXPECT_NE(s, t) << spec;
      EXPECT_LT(s, g.num_nodes()) << spec;
      EXPECT_LT(t, g.num_nodes()) << spec;
    }
  }
}

TEST(Workload, ZipfConcentratesTargets) {
  const auto g = test_graph(400);
  const auto zipf = make_workload("zipf:1.4", g, Rng(11));
  Rng rng(12);
  std::unordered_map<graph::NodeId, std::size_t> counts;
  const std::size_t draws = 4000;
  for (const auto& [s, t] : zipf->batch(draws, rng)) counts[t] += 1;
  std::size_t top = 0;
  for (const auto& [t, c] : counts) top = std::max(top, c);
  // Under uniform demand the busiest of 400 targets gets ~draws/400 = 10;
  // Zipf(1.4)'s rank-1 mass is orders of magnitude above that.
  EXPECT_GT(top, draws / 40);
}

TEST(Workload, LocalPairsStayWithinRadius) {
  const auto g = test_graph(400);
  const auto local = make_workload("local:3", g, Rng(0));
  Rng rng(5);
  for (const auto& [s, t] : local->batch(60, rng)) {
    const auto dist = graph::bfs_distances_bounded(g, s, 3);
    ASSERT_NE(dist[t], graph::kInfDist);
    EXPECT_LE(dist[t], 3u);
    EXPECT_GE(dist[t], 1u);
  }
}

TEST(Workload, AdversarialPairsAreFar) {
  // On a path the peripheral endpoints are 0 and n-1; every generated pair
  // targets whichever is farther, so dist(s, t) >= (n-1)/2.
  const auto g = graph::make_path(101);
  const auto adversarial = make_workload("adversarial", g, Rng(0));
  Rng rng(6);
  for (const auto& [s, t] : adversarial->batch(80, rng)) {
    EXPECT_TRUE(t == 0 || t == 100);
    const auto dist = t > s ? t - s : s - t;
    EXPECT_GE(dist, 50u);
  }
}

TEST(Workload, HotsetAbsorbsItsProbability) {
  const auto g = test_graph(400);
  const auto hot = make_workload("hotset:4:1.0", g, Rng(21));
  Rng rng(22);
  std::set<graph::NodeId> targets;
  for (const auto& [s, t] : hot->batch(200, rng)) targets.insert(t);
  // p = 1.0: every draw lands in the 4-node hot set (collisions with the
  // source redraw the whole pair, never leak a cold target).
  EXPECT_LE(targets.size(), 4u);

  const auto cold = make_workload("hotset:4:0.0", g, Rng(21));
  Rng cold_rng(22);
  std::set<graph::NodeId> cold_targets;
  for (const auto& [s, t] : cold->batch(200, cold_rng)) cold_targets.insert(t);
  EXPECT_GT(cold_targets.size(), 50u);  // p = 0: plain uniform demand
}

TEST(Workload, TraceRoundTripsAndReplaysCyclically) {
  const auto g = test_graph(64);
  const std::vector<Pair> recorded = {{0, 5}, {9, 2}, {33, 40}};
  const std::string path = "test_workload_trace.jsonl";
  save_trace(path, recorded);
  EXPECT_EQ(load_trace(path), recorded);

  const auto trace = make_workload("trace:" + path, g, Rng(0));
  Rng rng(1);
  const auto pairs = trace->batch(7, rng);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(pairs[i], recorded[i % recorded.size()]) << i;
  }
  std::remove(path.c_str());
}

TEST(Workload, TraceRejectsBadContent) {
  const auto g = test_graph(16);  // 16-node graph: id 99 is out of range
  const std::string path = "test_workload_bad_trace.jsonl";
  {
    std::ofstream out(path);
    out << R"({"s": 0, "t": 99})" << "\n";
  }
  EXPECT_THROW((void)make_workload("trace:" + path, g, Rng(0)),
               std::invalid_argument);
  {
    std::ofstream out(path);
    out << "not json\n";
  }
  EXPECT_THROW((void)make_workload("trace:" + path, g, Rng(0)),
               std::invalid_argument);
  std::remove(path.c_str());
  EXPECT_THROW((void)load_trace(path), std::runtime_error);
}

TEST(Workload, RejectsMalformedSpecs) {
  const auto g = test_graph(64);
  for (const auto* spec :
       {"nope", "zipf", "zipf:abc", "local:0", "local:-1", "hotset:4",
        "hotset:0:0.5", "hotset:4:1.5", "uniform:extra", "trace:"}) {
    EXPECT_THROW((void)make_workload(spec, g, Rng(0)), std::invalid_argument)
        << spec;
  }
}

TEST(Workload, CatalogCoversTheRegistry) {
  const auto& catalog = workload_catalog();
  ASSERT_EQ(catalog.size(), 6u);
  EXPECT_EQ(catalog.front().spec, "uniform");
  const auto g = test_graph(64);
  // Every standard spec must build (the docs promise the catalog is live).
  for (const auto& spec : standard_workload_specs()) {
    EXPECT_NE(make_workload(spec, g, Rng(1)), nullptr) << spec;
  }
}

}  // namespace
}  // namespace nav::workload
