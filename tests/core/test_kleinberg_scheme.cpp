#include "core/kleinberg_scheme.hpp"

#include <gtest/gtest.h>

#include <map>

#include "graph/generators.hpp"

namespace nav::core {
namespace {

TEST(Kleinberg, NeverSelfContact) {
  const auto g = graph::make_cycle(12);
  KleinbergScheme scheme(g, 1.0);
  Rng rng(1);
  for (int i = 0; i < 300; ++i) EXPECT_NE(scheme.sample_contact(4, rng), 4u);
}

TEST(Kleinberg, AlphaZeroIsUniformOverOthers) {
  const auto g = graph::make_path(9);
  KleinbergScheme scheme(g, 0.0);
  for (graph::NodeId v = 1; v < 9; ++v) {
    EXPECT_NEAR(scheme.probability(0, v), 1.0 / 8.0, 1e-12);
  }
  EXPECT_DOUBLE_EQ(scheme.probability(0, 0), 0.0);
}

TEST(Kleinberg, ProbabilitiesDecayWithDistance) {
  const auto g = graph::make_path(64);
  KleinbergScheme scheme(g, 1.5);
  EXPECT_GT(scheme.probability(0, 1), scheme.probability(0, 2));
  EXPECT_GT(scheme.probability(0, 10), scheme.probability(0, 40));
}

TEST(Kleinberg, ProbabilitiesNormalised) {
  const auto g = graph::make_grid2d(5, 5);
  KleinbergScheme scheme(g, 2.0);
  double total = 0.0;
  for (graph::NodeId v = 0; v < 25; ++v) total += scheme.probability(7, v);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Kleinberg, EmpiricalMatchesExact) {
  const auto g = graph::make_path(10);
  KleinbergScheme scheme(g, 1.0);
  Rng rng(5);
  constexpr int kDraws = 100000;
  std::map<graph::NodeId, int> counts;
  for (int i = 0; i < kDraws; ++i) ++counts[scheme.sample_contact(3, rng)];
  for (graph::NodeId v = 0; v < 10; ++v) {
    EXPECT_NEAR(counts[v] / static_cast<double>(kDraws),
                scheme.probability(3, v), 0.01);
  }
}

TEST(Kleinberg, NameIncludesAlpha) {
  const auto g = graph::make_path(4);
  EXPECT_EQ(KleinbergScheme(g, 2.0).name(), "kleinberg(a=2.00)");
}

TEST(TorusKleinberg, MatchesGenericOnTorus) {
  // The O(1) torus specialisation must agree with the BFS-based generic
  // scheme (torus BFS distance == wrapped Manhattan distance).
  const graph::NodeId side = 7;
  const auto g = graph::make_torus2d(side, side);
  KleinbergScheme generic(g, 2.0);
  TorusKleinbergScheme fast(side, 2.0);
  for (const graph::NodeId u : {0u, 10u, 36u}) {
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_NEAR(fast.probability(u, v), generic.probability(u, v), 1e-9)
          << "u=" << u << " v=" << v;
    }
  }
}

TEST(TorusKleinberg, SampleDistributionMatchesExact) {
  TorusKleinbergScheme scheme(5, 2.0);
  Rng rng(11);
  constexpr int kDraws = 200000;
  std::map<graph::NodeId, int> counts;
  for (int i = 0; i < kDraws; ++i) ++counts[scheme.sample_contact(12, rng)];
  for (graph::NodeId v = 0; v < 25; ++v) {
    EXPECT_NEAR(counts[v] / static_cast<double>(kDraws),
                scheme.probability(12, v), 0.01);
  }
}

TEST(TorusKleinberg, TranslationInvariant) {
  TorusKleinbergScheme scheme(6, 1.0);
  // P(u -> u + offset) must not depend on u.
  EXPECT_NEAR(scheme.probability(0, 7), scheme.probability(14, (14 + 7) % 36),
              1e-12);
}

TEST(TorusKleinberg, RejectsTinySide) {
  EXPECT_THROW(TorusKleinbergScheme(2, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace nav::core
