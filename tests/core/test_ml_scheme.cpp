#include "core/ml_scheme.hpp"

#include <gtest/gtest.h>

#include <map>

#include "decomposition/builders.hpp"
#include "graph/generators.hpp"

namespace nav::core {
namespace {

TEST(MLScheme, BuildsFromExplicitDecomposition) {
  const auto g = graph::make_path(16);
  const auto pd = decomp::path_graph_decomposition(g);
  MLScheme scheme(g, pd);
  EXPECT_EQ(scheme.name(), "ml");
  EXPECT_EQ(scheme.num_nodes(), 16u);
}

TEST(MLScheme, PortfolioConstructorWorksOnTrees) {
  const auto g = graph::make_balanced_tree(31, 2);
  MLScheme scheme(g);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const auto c = scheme.sample_contact(5, rng);
    EXPECT_TRUE(c == kNoContact || c < 31u);
  }
}

TEST(MLScheme, ProbabilitiesSumToAtMostOne) {
  const auto g = graph::make_path(12);
  MLScheme scheme(g, decomp::path_graph_decomposition(g));
  for (graph::NodeId u = 0; u < 12; ++u) {
    double total = 0.0;
    for (graph::NodeId v = 0; v < 12; ++v) total += scheme.probability(u, v);
    EXPECT_LE(total, 1.0 + 1e-9) << "node " << u;
    EXPECT_GT(total, 0.4) << "node " << u;  // U half alone contributes 1/2
  }
}

TEST(MLScheme, EmpiricalMatchesExactProbability) {
  const auto g = graph::make_path(8);
  MLScheme scheme(g, decomp::path_graph_decomposition(g));
  Rng rng(7);
  constexpr int kDraws = 200000;
  std::map<graph::NodeId, int> counts;
  int none = 0;
  for (int i = 0; i < kDraws; ++i) {
    const auto c = scheme.sample_contact(0, rng);
    if (c == kNoContact) ++none;
    else ++counts[c];
  }
  for (graph::NodeId v = 0; v < 8; ++v) {
    EXPECT_NEAR(counts[v] / static_cast<double>(kDraws),
                scheme.probability(0, v), 0.01)
        << "contact " << v;
  }
}

TEST(MLScheme, UniformHalfReachesEverywhere) {
  // Even with the hierarchy half missing its targets, every node must be
  // reachable as a contact through the U half.
  const auto g = graph::make_caterpillar(8, 1);
  MLScheme scheme(g);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GE(scheme.probability(0, v), 0.5 / g.num_nodes() - 1e-12);
  }
}

TEST(MLScheme, HierarchyOnlyModeNeverUsesUniform) {
  const auto g = graph::make_path(8);
  MLSchemeOptions opt;
  opt.mode = MLSchemeOptions::Mode::kHierarchyOnly;
  MLScheme scheme(g, decomp::path_graph_decomposition(g), opt);
  EXPECT_EQ(scheme.name(), "ml-A-only");
  // Hierarchy contacts only ever live in ancestor bags of L(u)=1: labels
  // {1, 2, 4} -> nodes within those bags. Node 6 (labels 6/7) must have
  // probability 0.
  EXPECT_DOUBLE_EQ(scheme.probability(0, 6), 0.0);
}

TEST(MLScheme, UniformOnlyModeIsUniform) {
  const auto g = graph::make_path(8);
  MLSchemeOptions opt;
  opt.mode = MLSchemeOptions::Mode::kUniformOnly;
  MLScheme scheme(g, decomp::path_graph_decomposition(g), opt);
  EXPECT_EQ(scheme.name(), "ml-U-only");
  for (graph::NodeId v = 0; v < 8; ++v) {
    EXPECT_DOUBLE_EQ(scheme.probability(3, v), 1.0 / 8.0);
  }
}

TEST(MLScheme, LabelClassUniformVariantDiffers) {
  // With the trivial decomposition every node gets label 1, so the strict
  // label-class U half picks label uniform in [1..n] and only label 1 has
  // members: contact probability collapses to 1/n per *label*, i.e. the
  // row mostly fails. The node-uniform variant keeps 1/(2n) per node.
  const auto g = graph::make_cycle(8);
  const auto pd = decomp::trivial_decomposition(g);
  MLSchemeOptions strict;
  strict.uniform_over_nodes = false;
  MLScheme label_class(g, pd, strict);
  MLScheme node_uniform(g, pd);
  // Node-uniform: P(contact = v) >= 1/(2n). Label-class: P = (1/n)·(1/n)·...
  EXPECT_GT(node_uniform.probability(0, 5), label_class.probability(0, 5));
  EXPECT_EQ(label_class.name(), "ml-labelU");
}

TEST(MLScheme, ContactsAlwaysValidNodes) {
  Rng rng(13);
  const auto g = graph::make_random_tree(64, rng);
  MLScheme scheme(g);
  for (graph::NodeId u = 0; u < 64; u += 5) {
    for (int i = 0; i < 50; ++i) {
      const auto c = scheme.sample_contact(u, rng);
      EXPECT_TRUE(c == kNoContact || c < 64u);
    }
  }
}

}  // namespace
}  // namespace nav::core
