#include "core/augmentation_matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/level_hierarchy.hpp"

namespace nav::core {
namespace {

TEST(UniformMatrix, EntriesAreOneOverN) {
  UniformMatrix u(8);
  for (Label i = 1; i <= 8; ++i) {
    for (Label j = 1; j <= 8; ++j) EXPECT_DOUBLE_EQ(u.entry(i, j), 0.125);
    EXPECT_NEAR(u.row_sum(i), 1.0, 1e-12);
  }
}

TEST(UniformMatrix, SamplesUniformly) {
  UniformMatrix u(4);
  Rng rng(2);
  std::map<Label, int> counts;
  for (int i = 0; i < 40000; ++i) ++counts[*u.sample_row(1, rng)];
  for (Label j = 1; j <= 4; ++j) EXPECT_NEAR(counts[j] / 40000.0, 0.25, 0.01);
}

TEST(HierarchyMatrix, EntriesMatchAncestors) {
  HierarchyMatrix a(7);
  const double p = a.ancestor_probability();
  EXPECT_NEAR(p, 1.0 / (1.0 + std::log2(7.0)), 1e-12);
  // Row 5: ancestors within 7 are {5, 6, 4}.
  EXPECT_DOUBLE_EQ(a.entry(5, 5), p);
  EXPECT_DOUBLE_EQ(a.entry(5, 6), p);
  EXPECT_DOUBLE_EQ(a.entry(5, 4), p);
  EXPECT_DOUBLE_EQ(a.entry(5, 7), 0.0);
  EXPECT_DOUBLE_EQ(a.entry(5, 1), 0.0);
}

TEST(HierarchyMatrix, RowSumsAtMostOne) {
  for (const Label n : {1u, 2u, 7u, 8u, 100u, 1000u}) {
    HierarchyMatrix a(n);
    for (Label i = 1; i <= n; i += std::max<Label>(1, n / 17)) {
      EXPECT_LE(a.row_sum(i), 1.0 + 1e-9) << "n=" << n << " i=" << i;
    }
  }
}

TEST(HierarchyMatrix, SampleMatchesEntryDistribution) {
  HierarchyMatrix a(7);
  Rng rng(5);
  std::map<Label, int> counts;
  int none = 0;
  constexpr int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) {
    const auto j = a.sample_row(5, rng);
    if (j.has_value()) ++counts[*j];
    else ++none;
  }
  for (const Label j : {5u, 6u, 4u}) {
    EXPECT_NEAR(counts[j] / static_cast<double>(kDraws), a.entry(5, j), 0.01);
  }
  EXPECT_NEAR(none / static_cast<double>(kDraws), 1.0 - a.row_sum(5), 0.01);
}

TEST(MixMatrix, EntriesAreAverages) {
  auto a = std::make_shared<HierarchyMatrix>(8);
  auto u = std::make_shared<UniformMatrix>(8);
  MixMatrix m(a, u);
  for (Label i = 1; i <= 8; ++i) {
    for (Label j = 1; j <= 8; ++j) {
      EXPECT_DOUBLE_EQ(m.entry(i, j), 0.5 * (a->entry(i, j) + u->entry(i, j)));
    }
    EXPECT_LE(m.row_sum(i), 1.0 + 1e-9);
  }
}

TEST(MixMatrix, RejectsSizeMismatch) {
  EXPECT_THROW(MixMatrix(std::make_shared<UniformMatrix>(4),
                         std::make_shared<UniformMatrix>(5)),
               std::invalid_argument);
}

TEST(MixMatrix, NameCombinesComponents) {
  MixMatrix m(std::make_shared<HierarchyMatrix>(4),
              std::make_shared<UniformMatrix>(4));
  EXPECT_EQ(m.name(), "(A+U)/2");
}

TEST(ExplicitMatrix, SetAndValidate) {
  ExplicitMatrix m(3);
  EXPECT_TRUE(m.is_valid());  // zero matrix is a valid (empty) augmentation
  m.set(1, 2, 0.5);
  m.set(1, 3, 0.5);
  EXPECT_TRUE(m.is_valid());
  m.set(1, 1, 0.5);  // row 1 now sums to 1.5
  EXPECT_FALSE(m.is_valid());
}

TEST(ExplicitMatrix, RejectsBadProbability) {
  ExplicitMatrix m(2);
  EXPECT_THROW(m.set(1, 1, -0.1), std::invalid_argument);
  EXPECT_THROW(m.set(1, 1, 1.1), std::invalid_argument);
  EXPECT_THROW(m.set(0, 1, 0.5), std::invalid_argument);
}

TEST(ExplicitMatrix, SampleRespectsResidual) {
  ExplicitMatrix m(2);
  m.set(1, 2, 0.25);
  Rng rng(7);
  int hits = 0, none = 0;
  for (int i = 0; i < 40000; ++i) {
    const auto j = m.sample_row(1, rng);
    if (j.has_value()) {
      EXPECT_EQ(*j, 2u);
      ++hits;
    } else {
      ++none;
    }
  }
  EXPECT_NEAR(hits / 40000.0, 0.25, 0.01);
  EXPECT_NEAR(none / 40000.0, 0.75, 0.01);
}

TEST(ExplicitMatrix, MaterialisesViews) {
  HierarchyMatrix a(6);
  ExplicitMatrix m(a);
  for (Label i = 1; i <= 6; ++i)
    for (Label j = 1; j <= 6; ++j) EXPECT_DOUBLE_EQ(m.entry(i, j), a.entry(i, j));
  EXPECT_TRUE(m.is_valid());
}

TEST(MatrixScheme, MapsLabelsToNodes) {
  // Matrix sends label 1 -> label 2 with probability 1; nodes 1,2 share
  // label 2, so contacts split evenly between them.
  ExplicitMatrix m(2);
  m.set(1, 2, 1.0);
  m.set(2, 2, 1.0);
  MatrixScheme scheme(std::make_shared<ExplicitMatrix>(m),
                      Labeling({1, 2, 2}, 2));
  Rng rng(1);
  std::map<graph::NodeId, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[scheme.sample_contact(0, rng)];
  EXPECT_EQ(counts.count(0), 0u);
  EXPECT_NEAR(counts[1] / 20000.0, 0.5, 0.02);
  EXPECT_NEAR(counts[2] / 20000.0, 0.5, 0.02);
}

TEST(MatrixScheme, EmptyClassGivesNoContact) {
  ExplicitMatrix m(3);
  m.set(1, 3, 1.0);  // label 3 has no members below
  MatrixScheme scheme(std::make_shared<ExplicitMatrix>(m),
                      Labeling({1, 2}, 3));
  Rng rng(2);
  EXPECT_EQ(scheme.sample_contact(0, rng), kNoContact);
}

TEST(MatrixScheme, ProbabilityDividesByClassSize) {
  ExplicitMatrix m(2);
  m.set(1, 2, 0.8);
  MatrixScheme scheme(std::make_shared<ExplicitMatrix>(m),
                      Labeling({1, 2, 2}, 2));
  EXPECT_DOUBLE_EQ(scheme.probability(0, 1), 0.4);
  EXPECT_DOUBLE_EQ(scheme.probability(0, 2), 0.4);
}

TEST(MatrixScheme, RejectsMatrixSmallerThanUniverse) {
  EXPECT_THROW(MatrixScheme(std::make_shared<UniformMatrix>(2),
                            Labeling({1, 2, 3}, 3)),
               std::invalid_argument);
}

}  // namespace
}  // namespace nav::core
