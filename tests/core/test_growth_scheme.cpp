#include "core/growth_scheme.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "graph/generators.hpp"

namespace nav::core {
namespace {

TEST(GrowthScheme, NeverSelfContact) {
  const auto g = graph::make_path(20);
  GrowthScheme scheme(g);
  Rng rng(1);
  for (int i = 0; i < 300; ++i) EXPECT_NE(scheme.sample_contact(7, rng), 7u);
}

TEST(GrowthScheme, PathMatchesHarmonic) {
  // On the path from an interior node, |B(u, r)| = 2r + 1 for small r, so
  // φ_u(v) ∝ 1/(2·dist+1) — harmonic-like decay per node.
  const auto g = graph::make_path(101);
  GrowthScheme scheme(g);
  const auto row = scheme.probability_row(50);
  // Ratio between distance-1 and distance-10 contacts: (2·10+1)/(2·1+1) = 7.
  EXPECT_NEAR(row[51] / row[60], 21.0 / 3.0, 1e-9);
  EXPECT_NEAR(row[49], row[51], 1e-12);  // symmetry
}

TEST(GrowthScheme, RowNormalised) {
  Rng rng(2);
  const auto g = graph::make_connected_gnp(60, 0.1, rng);
  GrowthScheme scheme(g);
  for (graph::NodeId u = 0; u < 60; u += 13) {
    const auto row = scheme.probability_row(u);
    double total = 0.0;
    for (const double p : row) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(row[u], 0.0);
  }
}

TEST(GrowthScheme, NormaliserIsLogarithmic) {
  // Z = Σ_r layer(r)/|B(r)| <= ln n on any graph — the property that makes
  // one Θ(1/log n) slice land at every distance scale.
  for (const auto& g : {graph::make_path(512), graph::make_grid2d(23, 23),
                        graph::make_star(256)}) {
    GrowthScheme scheme(g);
    // Reconstruct Z from the exact row of node 0: Z = 1 / max ... instead
    // check: the probability of the farthest node times |B(max)| <= 1, and
    // the probability of a nearest neighbour >= 1/(deg · ln n · 2).
    const auto row = scheme.probability_row(0);
    const double ln_n = std::log(static_cast<double>(g.num_nodes()));
    const auto nbrs = g.neighbors(0);
    ASSERT_FALSE(nbrs.empty());
    EXPECT_GE(row[nbrs[0]],
              1.0 / (static_cast<double>(nbrs.size()) * 2.0 * (ln_n + 1.0)));
  }
}

TEST(GrowthScheme, EmpiricalMatchesExact) {
  const auto g = graph::make_cycle(24);
  GrowthScheme scheme(g);
  const auto row = scheme.probability_row(3);
  Rng rng(4);
  constexpr int kDraws = 100000;
  std::map<graph::NodeId, int> counts;
  for (int i = 0; i < kDraws; ++i) ++counts[scheme.sample_contact(3, rng)];
  for (graph::NodeId v = 0; v < 24; ++v) {
    EXPECT_NEAR(counts[v] / static_cast<double>(kDraws), row[v], 0.01) << v;
  }
}

TEST(GrowthScheme, RequiresTwoNodes) {
  EXPECT_THROW(GrowthScheme(graph::Graph(1, {})), std::invalid_argument);
}

}  // namespace
}  // namespace nav::core
