#include "core/ball_scheme.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "graph/generators.hpp"

namespace nav::core {
namespace {

TEST(BallScheme, LevelsDefaultToCeilLog2) {
  const auto g = graph::make_path(100);
  BallScheme scheme(g);
  EXPECT_EQ(scheme.levels(), 7u);  // ceil(log2 100)
  const auto g2 = graph::make_path(128);
  EXPECT_EQ(BallScheme(g2).levels(), 7u);
  const auto g3 = graph::make_path(129);
  EXPECT_EQ(BallScheme(g3).levels(), 8u);
}

TEST(BallScheme, ContactAlwaysInLargestBall) {
  const auto g = graph::make_path(64);
  BallScheme scheme(g);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto c = scheme.sample_contact(10, rng);
    ASSERT_LT(c, 64u);
  }
}

TEST(BallScheme, ProbabilityFormulaMatchesPaper) {
  // φ_u(v) = (1/L) Σ_{k=r(v)}^{L} 1/|B_k(u)| — check against a hand
  // computation on the 9-node path, u = 4 (center), L = ceil(log2 9) = 4.
  const auto g = graph::make_path(9);
  BallScheme scheme(g);
  ASSERT_EQ(scheme.levels(), 4u);
  // Ball sizes from the center: r=2 -> 5, r=4 -> 9, r=8 -> 9, r=16 -> 9.
  const auto sizes = scheme.ball_sizes(4);
  EXPECT_EQ(sizes[1], 5u);
  EXPECT_EQ(sizes[2], 9u);
  EXPECT_EQ(sizes[3], 9u);
  EXPECT_EQ(sizes[4], 9u);
  // v at distance 1 (node 5): r(v) = 1 -> (1/4)(1/5 + 1/9 + 1/9 + 1/9).
  EXPECT_NEAR(scheme.probability(4, 5), 0.25 * (0.2 + 3.0 / 9.0), 1e-12);
  // v at distance 3 (node 7): r(v) = 2 -> (1/4)(3/9).
  EXPECT_NEAR(scheme.probability(4, 7), 0.25 * (3.0 / 9.0), 1e-12);
  // v = u: in every ball.
  EXPECT_NEAR(scheme.probability(4, 4), 0.25 * (0.2 + 3.0 / 9.0), 1e-12);
}

TEST(BallScheme, EmpiricalMatchesExact) {
  const auto g = graph::make_path(16);
  BallScheme scheme(g);
  Rng rng(3);
  constexpr int kDraws = 300000;
  std::map<graph::NodeId, int> counts;
  for (int i = 0; i < kDraws; ++i) ++counts[scheme.sample_contact(8, rng)];
  double total = 0.0;
  for (graph::NodeId v = 0; v < 16; ++v) {
    const double exact = scheme.probability(8, v);
    total += exact;
    EXPECT_NEAR(counts[v] / static_cast<double>(kDraws), exact, 0.01)
        << "contact " << v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);  // the scheme always yields a contact
}

TEST(BallScheme, NearbyNodesMoreLikely) {
  const auto g = graph::make_path(256);
  BallScheme scheme(g);
  EXPECT_GT(scheme.probability(128, 129), scheme.probability(128, 200));
}

TEST(BallScheme, SymmetricOnVertexTransitiveGraphs) {
  const auto g = graph::make_cycle(32);
  BallScheme scheme(g);
  EXPECT_NEAR(scheme.probability(0, 5), scheme.probability(7, 12), 1e-12);
}

TEST(BallScheme, EccCacheDoesNotChangeDistribution) {
  // Sampling repeatedly (warming the whole-graph shortcut) must keep the
  // distribution intact: compare counts before/after many draws.
  const auto g = graph::make_star(20);
  BallScheme scheme(g);
  Rng rng(5);
  constexpr int kDraws = 100000;
  std::map<graph::NodeId, int> first, second;
  for (int i = 0; i < kDraws; ++i) ++first[scheme.sample_contact(0, rng)];
  for (int i = 0; i < kDraws; ++i) ++second[scheme.sample_contact(0, rng)];
  for (graph::NodeId v = 0; v < 20; ++v) {
    EXPECT_NEAR(first[v] / static_cast<double>(kDraws),
                second[v] / static_cast<double>(kDraws), 0.012)
        << v;
  }
}

TEST(BallScheme, GridBallGrowth) {
  const auto g = graph::make_grid2d(31, 31);
  BallScheme scheme(g);
  const graph::NodeId center = 15 * 31 + 15;
  const auto sizes = scheme.ball_sizes(center);
  // |B(u, 2^k)| = 2r^2+2r+1 for interior nodes.
  EXPECT_EQ(sizes[1], 13u);   // r=2
  EXPECT_EQ(sizes[2], 41u);   // r=4
  EXPECT_EQ(sizes[3], 145u);  // r=8
}

TEST(BallScheme, FixedLevelVariantSamplesOneRadius) {
  const auto g = graph::make_path(64);
  const auto fixed = BallScheme::make_fixed_level(g, 2);  // radius 4
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const auto c = fixed->sample_contact(32, rng);
    ASSERT_LT(c, 64u);
    EXPECT_LE(c >= 32 ? c - 32 : 32 - c, 4u);
  }
  EXPECT_EQ(fixed->name(), "ball-fixed-k2");
}

TEST(BallScheme, WorksOnSingleNode) {
  const auto g = graph::Graph(1, {});
  BallScheme scheme(g);
  Rng rng(1);
  EXPECT_EQ(scheme.sample_contact(0, rng), 0u);
}

}  // namespace
}  // namespace nav::core
