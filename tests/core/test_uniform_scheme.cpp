#include "core/uniform_scheme.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"

namespace nav::core {
namespace {

TEST(UniformScheme, ContactsCoverAllNodesUniformly) {
  const auto g = graph::make_path(10);
  UniformScheme scheme(g);
  Rng rng(1);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[scheme.sample_contact(3, rng)];
  for (const int c : counts) {
    EXPECT_NEAR(c / static_cast<double>(kDraws), 0.1, 0.01);
  }
}

TEST(UniformScheme, ProbabilityIsOneOverN) {
  const auto g = graph::make_cycle(25);
  UniformScheme scheme(g);
  EXPECT_DOUBLE_EQ(scheme.probability(0, 24), 0.04);
  EXPECT_DOUBLE_EQ(scheme.probability(5, 5), 0.04);  // self allowed
}

TEST(UniformScheme, MetadataCorrect) {
  const auto g = graph::make_path(4);
  UniformScheme scheme(g);
  EXPECT_EQ(scheme.name(), "uniform");
  EXPECT_EQ(scheme.num_nodes(), 4u);
}

TEST(UniformScheme, SampleAllContactsGivesOnePerNode) {
  const auto g = graph::make_path(16);
  UniformScheme scheme(g);
  Rng rng(3);
  const auto contacts = sample_all_contacts(scheme, rng);
  ASSERT_EQ(contacts.size(), 16u);
  for (const auto c : contacts) EXPECT_LT(c, 16u);
}

}  // namespace
}  // namespace nav::core
