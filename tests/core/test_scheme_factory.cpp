#include "core/scheme_factory.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace nav::core {
namespace {

TEST(SchemeFactory, NoneIsNull) {
  const auto g = graph::make_path(8);
  Rng rng(1);
  EXPECT_EQ(make_scheme("none", g, rng), nullptr);
}

TEST(SchemeFactory, BuildsEveryStandardSpec) {
  const auto g = graph::make_path(32);
  Rng rng(2);
  for (const auto& spec :
       {"uniform", "ball", "ml", "ml-labelU", "ml-A-only", "ml-U-only",
        "ml-random-label", "rank", "kleinberg:2.0", "ball-fixed:3"}) {
    const auto scheme = make_scheme(spec, g, rng);
    ASSERT_NE(scheme, nullptr) << spec;
    EXPECT_EQ(scheme->num_nodes(), 32u) << spec;
    Rng sample_rng(3);
    const auto c = scheme->sample_contact(0, sample_rng);
    EXPECT_TRUE(c == kNoContact || c < 32u) << spec;
  }
}

TEST(SchemeFactory, KleinbergParsesAlpha) {
  const auto g = graph::make_path(16);
  Rng rng(4);
  const auto scheme = make_scheme("kleinberg:1.5", g, rng);
  EXPECT_NE(scheme->name().find("1.50"), std::string::npos);
}

TEST(SchemeFactory, UnknownSpecThrows) {
  const auto g = graph::make_path(8);
  Rng rng(5);
  EXPECT_THROW(make_scheme("definitely-not-a-scheme", g, rng),
               std::invalid_argument);
}

TEST(SchemeFactory, StandardSpecsNonEmpty) {
  const auto specs = standard_scheme_specs();
  EXPECT_GE(specs.size(), 3u);
  const auto g = graph::make_path(16);
  Rng rng(6);
  for (const auto& spec : specs) {
    EXPECT_NE(make_scheme(spec, g, rng), nullptr) << spec;
  }
}

TEST(SchemeFactory, RandomLabelVariantDeterministicGivenRng) {
  const auto g = graph::make_path(16);
  Rng a(7), b(7);
  const auto s1 = make_scheme("ml-random-label", g, a);
  const auto s2 = make_scheme("ml-random-label", g, b);
  // Same rng seed -> same random labeling -> identical probabilities.
  for (graph::NodeId v = 0; v < 16; ++v) {
    EXPECT_DOUBLE_EQ(s1->probability(3, v), s2->probability(3, v));
  }
}

}  // namespace
}  // namespace nav::core
