#include "core/level_hierarchy.hpp"

#include <gtest/gtest.h>

#include <set>

namespace nav::core {
namespace {

TEST(Level, OddNumbersAreLevelZero) {
  for (const std::uint64_t x : {1ull, 3ull, 5ull, 999ull}) EXPECT_EQ(level(x), 0u);
}

TEST(Level, PowersOfTwo) {
  EXPECT_EQ(level(2), 1u);
  EXPECT_EQ(level(4), 2u);
  EXPECT_EQ(level(1024), 10u);
}

TEST(Level, MixedValues) {
  EXPECT_EQ(level(6), 1u);    // 110
  EXPECT_EQ(level(12), 2u);   // 1100
  EXPECT_EQ(level(40), 3u);   // 101000
}

TEST(Level, RejectsZero) { EXPECT_THROW(level(0), std::invalid_argument); }

TEST(Ancestor, ZeroIsSelf) {
  for (const std::uint64_t x : {1ull, 6ull, 40ull, 1023ull}) {
    EXPECT_EQ(ancestor(x, 0), x);
  }
}

TEST(Ancestor, PaperExampleFive) {
  // x = 5 = 101b, k = 0: y(1) = 2 + (bits >= 2) = 6; y(2) = 4; y(3) = 8.
  EXPECT_EQ(ancestor(5, 1), 6u);
  EXPECT_EQ(ancestor(5, 2), 4u);
  EXPECT_EQ(ancestor(5, 3), 8u);
}

TEST(Ancestor, SixGoesToFour) {
  // x = 6 = 110b, k = 1: y(1) = 100b = 4.
  EXPECT_EQ(ancestor(6, 1), 4u);
  EXPECT_EQ(ancestor(6, 2), 8u);
}

TEST(Ancestor, LevelIncreasesByOne) {
  for (std::uint64_t x = 1; x <= 64; ++x) {
    for (std::uint32_t j = 0; j <= 5; ++j) {
      EXPECT_EQ(level(ancestor(x, j)), level(x) + j);
    }
  }
}

TEST(Ancestor, ConsecutiveAncestorsChain) {
  // y(j+1) of x equals y(1) of y(j): the relation forms a tree.
  for (std::uint64_t x = 1; x <= 100; ++x) {
    for (std::uint32_t j = 0; j <= 4; ++j) {
      EXPECT_EQ(ancestor(x, j + 1), ancestor(ancestor(x, j), 1));
    }
  }
}

TEST(AncestorsWithin, CountBoundedByNuMinusLevel) {
  // An index of level k has at most ν - k ancestors in [1, n] (paper §2.2).
  for (const std::uint64_t n : {1ull, 7ull, 8ull, 100ull, 1024ull}) {
    std::uint32_t nu = 0;
    while ((1ull << nu) <= n) ++nu;  // 2^{ν-1} <= n < 2^ν
    for (std::uint64_t x = 1; x <= n; ++x) {
      const auto anc = ancestors_within(x, n);
      EXPECT_GE(anc.size(), 1u) << "x in A(x)";
      EXPECT_EQ(anc.front(), x);
      EXPECT_LE(anc.size(), nu - level(x)) << "x=" << x << " n=" << n;
      std::set<std::uint64_t> distinct(anc.begin(), anc.end());
      EXPECT_EQ(distinct.size(), anc.size());
      for (const auto y : anc) {
        EXPECT_GE(y, 1u);
        EXPECT_LE(y, n);
      }
    }
  }
}

TEST(AncestorsWithin, BinaryTreeStructure) {
  // Among 1..7 the hierarchy is the complete binary tree rooted at 4:
  // leaves 1,3,5,7 (level 0); 2,6 (level 1); 4 (level 2).
  EXPECT_EQ(ancestors_within(1, 7), (std::vector<std::uint64_t>{1, 2, 4}));
  EXPECT_EQ(ancestors_within(3, 7), (std::vector<std::uint64_t>{3, 2, 4}));
  EXPECT_EQ(ancestors_within(5, 7), (std::vector<std::uint64_t>{5, 6, 4}));
  EXPECT_EQ(ancestors_within(7, 7), (std::vector<std::uint64_t>{7, 6, 4}));
  EXPECT_EQ(ancestors_within(4, 7), (std::vector<std::uint64_t>{4}));
}

TEST(AncestorsWithin, NonMonotoneButComplete) {
  // A(5) ∩ [1,8] = {5, 6, 4, 8} — note the dip to 4 before 8.
  EXPECT_EQ(ancestors_within(5, 8), (std::vector<std::uint64_t>{5, 6, 4, 8}));
}

TEST(MaxLevelIndex, SingletonInterval) {
  EXPECT_EQ(max_level_index(5, 5), 5u);
  EXPECT_EQ(max_level_index(8, 8), 8u);
}

TEST(MaxLevelIndex, PicksHighestPowerOfTwoMultiple) {
  EXPECT_EQ(max_level_index(1, 7), 4u);
  EXPECT_EQ(max_level_index(5, 7), 6u);
  EXPECT_EQ(max_level_index(9, 15), 12u);
  EXPECT_EQ(max_level_index(3, 4), 4u);
  EXPECT_EQ(max_level_index(1, 100), 64u);
}

TEST(MaxLevelIndex, ResultIsUniqueMaximum) {
  // Exhaustive check on small intervals: the returned index strictly
  // dominates every other index's level — Theorem 2's L(u) well-definedness.
  for (std::uint64_t lo = 1; lo <= 40; ++lo) {
    for (std::uint64_t hi = lo; hi <= 40; ++hi) {
      const auto best = max_level_index(lo, hi);
      ASSERT_GE(best, lo);
      ASSERT_LE(best, hi);
      for (std::uint64_t x = lo; x <= hi; ++x) {
        if (x != best) EXPECT_LT(level(x), level(best)) << lo << ".." << hi;
      }
    }
  }
}

TEST(MaxLevelIndex, RejectsBadInterval) {
  EXPECT_THROW(max_level_index(0, 5), std::invalid_argument);
  EXPECT_THROW(max_level_index(6, 5), std::invalid_argument);
}

}  // namespace
}  // namespace nav::core
