#include "core/name_independent.hpp"

#include <gtest/gtest.h>

#include <set>

namespace nav::core {
namespace {

TEST(InternalMass, ZeroMatrixIsZero) {
  ExplicitMatrix m(5);
  EXPECT_DOUBLE_EQ(internal_mass(m, {1, 2, 3}), 0.0);
}

TEST(InternalMass, CountsOrderedPairsOnce) {
  ExplicitMatrix m(3);
  m.set(1, 2, 0.5);
  m.set(2, 1, 0.25);
  m.set(1, 1, 0.25);  // diagonal excluded by i != j
  EXPECT_DOUBLE_EQ(internal_mass(m, {1, 2}), 0.75);
}

TEST(FindSparseSet, UniformMatrixAlwaysSparse) {
  // For U, any √n-set I has mass |I|(|I|-1)/n < 1.
  UniformMatrix u(100);
  Rng rng(1);
  const auto sparse = find_sparse_label_set(u, 10, rng);
  EXPECT_EQ(sparse.labels.size(), 10u);
  EXPECT_LT(sparse.internal_mass, 1.0);
  std::set<Label> distinct(sparse.labels.begin(), sparse.labels.end());
  EXPECT_EQ(distinct.size(), 10u);
  for (const auto l : sparse.labels) {
    EXPECT_GE(l, 1u);
    EXPECT_LE(l, 100u);
  }
}

TEST(FindSparseSet, MassMatchesRecount) {
  HierarchyMatrix a(64);
  Rng rng(2);
  const auto sparse = find_sparse_label_set(a, 8, rng);
  EXPECT_NEAR(internal_mass(a, sparse.labels), sparse.internal_mass, 1e-9);
  EXPECT_LT(sparse.internal_mass, 1.0);
}

TEST(FindSparseSet, WorksOnMixMatrix) {
  auto mix = std::make_shared<MixMatrix>(std::make_shared<HierarchyMatrix>(144),
                                         std::make_shared<UniformMatrix>(144));
  Rng rng(3);
  const auto sparse = find_sparse_label_set(*mix, 12, rng);
  EXPECT_LT(sparse.internal_mass, 1.0);
}

TEST(FindSparseSet, LocalSearchEscapesDenseStart) {
  // An adversarial matrix where a dense cluster exists: labels 1..10 link to
  // each other with high probability; the sparse set must avoid the cluster.
  ExplicitMatrix m(64);
  for (Label i = 1; i <= 10; ++i) {
    for (Label j = 1; j <= 10; ++j) {
      if (i != j) m.set(i, j, 0.1);
    }
  }
  ASSERT_TRUE(m.is_valid());
  Rng rng(4);
  const auto sparse = find_sparse_label_set(m, 8, rng);
  EXPECT_LT(sparse.internal_mass, 1.0);
}

TEST(FindSparseSet, RejectsBadSetSize) {
  UniformMatrix u(10);
  Rng rng(5);
  EXPECT_THROW(find_sparse_label_set(u, 1, rng), std::invalid_argument);
  EXPECT_THROW(find_sparse_label_set(u, 11, rng), std::invalid_argument);
}

TEST(AdversarialPath, InstanceIsWellFormed) {
  UniformMatrix u(100);
  Rng rng(6);
  const auto inst = make_adversarial_path(u, rng);
  EXPECT_EQ(inst.path.num_nodes(), 100u);
  EXPECT_TRUE(inst.labeling.all_distinct());
  EXPECT_LT(inst.internal_mass, 1.0);
  // Segment has ceil(sqrt(100)) = 10 consecutive positions.
  EXPECT_EQ(inst.segment_end - inst.segment_begin, 10u);
  // s, t at thirds inside the segment.
  EXPECT_GE(inst.source, inst.segment_begin);
  EXPECT_LT(inst.target, inst.segment_end);
  EXPECT_LT(inst.source, inst.target);
  EXPECT_EQ(inst.target - inst.source, (2u * 10u) / 3u - 10u / 3u);
}

TEST(AdversarialPath, AllLabelsUsedExactlyOnce) {
  HierarchyMatrix a(64);
  Rng rng(7);
  const auto inst = make_adversarial_path(a, rng);
  std::set<std::uint32_t> labels;
  for (graph::NodeId v = 0; v < 64; ++v) labels.insert(inst.labeling.label(v));
  EXPECT_EQ(labels.size(), 64u);
  EXPECT_EQ(*labels.begin(), 1u);
  EXPECT_EQ(*labels.rbegin(), 64u);
}

TEST(AdversarialPath, RejectsTooShortPath) {
  UniformMatrix u(4);
  Rng rng(8);
  EXPECT_THROW(make_adversarial_path(u, rng), std::invalid_argument);
}

}  // namespace
}  // namespace nav::core
