#include "core/restricted_label_scheme.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace nav::core {
namespace {

TEST(LabelBudget, EndpointsAndMonotonicity) {
  EXPECT_EQ(label_budget(1024, 0.0), 1u);
  EXPECT_EQ(label_budget(1024, 1.0), 1024u);
  EXPECT_EQ(label_budget(1024, 0.5), 32u);
  EXPECT_LE(label_budget(1024, 0.25), label_budget(1024, 0.75));
}

TEST(LabelBudget, RejectsBadEpsilon) {
  EXPECT_THROW(label_budget(100, -0.1), std::invalid_argument);
  EXPECT_THROW(label_budget(100, 1.5), std::invalid_argument);
}

TEST(RestrictedScheme, BuildsAndSamples) {
  const auto g = graph::make_path(64);
  const auto scheme = make_restricted_label_scheme(g, 8);
  EXPECT_EQ(scheme->name(), "ml-k8");
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto c = scheme->sample_contact(10, rng);
    EXPECT_TRUE(c == kNoContact || c < 64u);
  }
}

TEST(RestrictedScheme, FullBudgetProbabilitiesCoverAllNodes) {
  const auto g = graph::make_path(16);
  const auto scheme = make_restricted_label_scheme(g, 16);
  for (graph::NodeId v = 0; v < 16; ++v) {
    EXPECT_GT(scheme->probability(0, v), 0.0) << v;
  }
}

TEST(RestrictedScheme, SingleLabelDegenerates) {
  // k = 1: every contact is a uniform node (label 1 class = everyone), both
  // halves included; still a valid scheme.
  const auto g = graph::make_path(32);
  const auto scheme = make_restricted_label_scheme(g, 1);
  Rng rng(2);
  int contacts = 0;
  for (int i = 0; i < 1000; ++i) {
    contacts += (scheme->sample_contact(5, rng) != kNoContact);
  }
  EXPECT_EQ(contacts, 1000);  // both A (self-ancestor) and U rows always hit
}

TEST(RestrictedScheme, ClampsOversizedBudget) {
  const auto g = graph::make_path(8);
  const auto scheme = make_restricted_label_scheme(g, 1000);
  EXPECT_EQ(scheme->name(), "ml-k8");
}

TEST(RestrictedScheme, ProbabilityUniformWithinBlock) {
  // Blocks of equal size: contacts land uniformly within a chosen block.
  const auto g = graph::make_path(16);
  const auto scheme = make_restricted_label_scheme(g, 4);
  // Nodes 0..3 share label 1; their probabilities from node 15 must agree.
  const double p0 = scheme->probability(15, 0);
  for (graph::NodeId v = 1; v < 4; ++v) {
    EXPECT_NEAR(scheme->probability(15, v), p0, 1e-12);
  }
}

}  // namespace
}  // namespace nav::core
