#include "core/rank_scheme.hpp"

#include <gtest/gtest.h>

#include <map>

#include "graph/generators.hpp"

namespace nav::core {
namespace {

TEST(RankScheme, NeverSelfContact) {
  const auto g = graph::make_path(10);
  RankScheme scheme(g);
  Rng rng(1);
  for (int i = 0; i < 300; ++i) EXPECT_NE(scheme.sample_contact(5, rng), 5u);
}

TEST(RankScheme, CloserRanksMoreLikely) {
  const auto g = graph::make_path(64);
  RankScheme scheme(g);
  // Node 1 has rank 1 or 2 from node 0; node 63 has rank 63.
  EXPECT_GT(scheme.probability(0, 1), scheme.probability(0, 63));
}

TEST(RankScheme, ProbabilitiesNormalised) {
  const auto g = graph::make_cycle(12);
  RankScheme scheme(g);
  double total = 0.0;
  for (graph::NodeId v = 0; v < 12; ++v) total += scheme.probability(3, v);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(RankScheme, EmpiricalMatchesExact) {
  const auto g = graph::make_star(8);
  RankScheme scheme(g);
  Rng rng(4);
  constexpr int kDraws = 100000;
  std::map<graph::NodeId, int> counts;
  for (int i = 0; i < kDraws; ++i) ++counts[scheme.sample_contact(1, rng)];
  for (graph::NodeId v = 0; v < 8; ++v) {
    EXPECT_NEAR(counts[v] / static_cast<double>(kDraws),
                scheme.probability(1, v), 0.01);
  }
}

TEST(RankScheme, HarmonicWeightsExactOnKnownOrder) {
  // From node 0 of a path, BFS order is 0,1,2,...: rank_0(v) = v.
  const auto g = graph::make_path(5);
  RankScheme scheme(g);
  const double h4 = 1.0 + 0.5 + 1.0 / 3.0 + 0.25;
  EXPECT_NEAR(scheme.probability(0, 1), 1.0 / h4, 1e-12);
  EXPECT_NEAR(scheme.probability(0, 4), 0.25 / h4, 1e-12);
}

TEST(RankScheme, RequiresTwoNodes) {
  EXPECT_THROW(RankScheme(graph::Graph(1, {})), std::invalid_argument);
}

}  // namespace
}  // namespace nav::core
