#include "core/labeling.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/level_hierarchy.hpp"
#include "decomposition/builders.hpp"
#include "graph/generators.hpp"

namespace nav::core {
namespace {

TEST(Labeling, BasicAccessors) {
  Labeling l({1, 2, 2, 3}, 4);
  EXPECT_EQ(l.num_nodes(), 4u);
  EXPECT_EQ(l.universe(), 4u);
  EXPECT_EQ(l.label(0), 1u);
  EXPECT_EQ(l.members(2), (std::vector<graph::NodeId>{1, 2}));
  EXPECT_TRUE(l.members(4).empty());
  EXPECT_FALSE(l.all_distinct());
}

TEST(Labeling, DefaultIsEmpty) {
  Labeling l;
  EXPECT_EQ(l.num_nodes(), 0u);
}

TEST(Labeling, RejectsOutOfRangeLabels) {
  EXPECT_THROW(Labeling({0}, 3), std::invalid_argument);
  EXPECT_THROW(Labeling({5}, 3), std::invalid_argument);
}

TEST(Labeling, SampleMemberUniform) {
  Labeling l({1, 1, 1, 2}, 2);
  Rng rng(3);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 30000; ++i) ++counts[l.sample_member(1, rng)];
  EXPECT_EQ(counts[3], 0);
  for (int v = 0; v < 3; ++v) EXPECT_NEAR(counts[v] / 30000.0, 1.0 / 3, 0.02);
}

TEST(Labeling, SampleEmptyClassGivesNoNode) {
  Labeling l({1}, 2);
  Rng rng(1);
  EXPECT_EQ(l.sample_member(2, rng), graph::kNoNode);
}

TEST(Labeling, IdentityAndRandomDistinct) {
  const auto id = identity_labeling(5);
  EXPECT_TRUE(id.all_distinct());
  for (graph::NodeId u = 0; u < 5; ++u) EXPECT_EQ(id.label(u), u + 1);

  Rng rng(9);
  const auto rnd = random_distinct_labeling(64, rng);
  EXPECT_TRUE(rnd.all_distinct());
  std::vector<bool> seen(65, false);
  for (graph::NodeId u = 0; u < 64; ++u) {
    EXPECT_FALSE(seen[rnd.label(u)]);
    seen[rnd.label(u)] = true;
  }
}

TEST(Labeling, BlockLabelingShape) {
  const auto l = block_labeling(10, 2);
  EXPECT_EQ(l.universe(), 2u);
  for (graph::NodeId u = 0; u < 5; ++u) EXPECT_EQ(l.label(u), 1u);
  for (graph::NodeId u = 5; u < 10; ++u) EXPECT_EQ(l.label(u), 2u);
}

TEST(Labeling, BlockLabelingFullBudgetIsDistinct) {
  EXPECT_TRUE(block_labeling(8, 8).all_distinct());
}

TEST(Labeling, BlockLabelingBalancedClasses) {
  const auto l = block_labeling(100, 7);
  for (std::uint32_t lbl = 1; lbl <= 7; ++lbl) {
    EXPECT_GE(l.members(lbl).size(), 14u);
    EXPECT_LE(l.members(lbl).size(), 15u);
  }
}

TEST(DecompositionLabeling, PathBagsGiveMaxLevelIndices) {
  // Path 0-1-2-3, bags {0,1},{1,2},{2,3} = 1-based indices 1..3.
  // Node 0: interval [1,1] -> 1; node 1: [1,2] -> 2; node 2: [2,3] -> 2;
  // node 3: [3,3] -> 3.
  const auto g = graph::make_path(4);
  const auto pd = decomp::path_graph_decomposition(g);
  const auto l = decomposition_labeling(pd, 4);
  EXPECT_EQ(l.label(0), 1u);
  EXPECT_EQ(l.label(1), 2u);
  EXPECT_EQ(l.label(2), 2u);
  EXPECT_EQ(l.label(3), 3u);
}

TEST(DecompositionLabeling, LabelsAreMaxLevelOfOwnInterval) {
  const auto g = graph::make_path(33);
  const auto pd = decomp::path_graph_decomposition(g);
  const auto l = decomposition_labeling(pd, g.num_nodes());
  const auto intervals = pd.node_intervals(g.num_nodes());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto lo = static_cast<std::uint64_t>(intervals[u].first) + 1;
    const auto hi = static_cast<std::uint64_t>(intervals[u].last) + 1;
    EXPECT_EQ(l.label(u), max_level_index(lo, hi));
  }
}

TEST(DecompositionLabeling, NodesOfSameLabelShareABag) {
  // L(u) = i implies u ∈ X_i: the Theorem 2 proof bounds the label-class size
  // by |X_i| through exactly this containment.
  const auto g = graph::make_caterpillar(12, 2);
  const auto pd = decomp::caterpillar_decomposition(g);
  const auto l = decomposition_labeling(pd, g.num_nodes());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto& bag = pd.bag(l.label(u) - 1);
    EXPECT_TRUE(std::binary_search(bag.begin(), bag.end(), u)) << "node " << u;
  }
}

TEST(DecompositionLabeling, TrivialDecompositionAllLabelOne) {
  const auto g = graph::make_cycle(6);
  const auto pd = decomp::trivial_decomposition(g);
  const auto l = decomposition_labeling(pd, 6);
  for (graph::NodeId u = 0; u < 6; ++u) EXPECT_EQ(l.label(u), 1u);
}

TEST(DecompositionLabeling, UniverseIsNumNodes) {
  const auto g = graph::make_path(9);
  const auto pd = decomp::path_graph_decomposition(g);
  EXPECT_EQ(decomposition_labeling(pd, 9).universe(), 9u);
}

}  // namespace
}  // namespace nav::core
