// Zero-allocation contracts, proven with a counting allocator. This suite
// lives in its own binary: NAV_DEFINE_ALLOC_COUNTER() replaces ::operator
// new process-wide, which is a per-program decision.
//
// Measurement discipline: warm every code path first (workspace growth,
// cache fill, thread-locals), snapshot nav::allocation_count(), run the
// steady-state operation, snapshot again — and only then assert (gtest
// macros allocate). All tests stay single-threaded so no other thread can
// perturb the counter inside a measurement window.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/uniform_scheme.hpp"
#include "graph/bfs_engine.hpp"
#include "graph/distance_oracle.hpp"
#include "graph/dist_slab.hpp"
#include "graph/generators.hpp"
#include "graph/landmark_oracle.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "resilience/faulty_oracle.hpp"
#include "routing/greedy_router.hpp"
#include "runtime/alloc_counter.hpp"

NAV_DEFINE_ALLOC_COUNTER();

namespace nav::graph {
namespace {

TEST(ZeroAlloc, WarmWorkspaceKernelsAllocateNothing) {
  const auto g = make_grid2d(48, 48);
  BfsWorkspace ws;
  std::vector<Dist> out(g.num_nodes());
  // Warm-up: grows the queue, stamps, and direction-optimizing bitmaps.
  ws.distances_into(g, 0, out);
  ws.distances_into_scalar(g, 0, out);
  (void)ws.ball(g, 100, 5);
  (void)ws.eccentricity(g, 7);

  const std::uint64_t before = nav::allocation_count();
  for (NodeId s = 0; s < 32; ++s) {
    ws.distances_into(g, s, out);              // direction-optimizing sweep
    ws.distances_into_scalar(g, s, out, 6);    // bounded scalar sweep
    (void)ws.ball(g, s, 4);                    // sparse ball
    (void)ws.eccentricity(g, s);
  }
  const std::uint64_t after = nav::allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "a warm BfsWorkspace must perform zero heap allocations per sweep";
}

TEST(ZeroAlloc, ReferenceKernelAllocatesEveryCall) {
  // Sanity check that the counter actually counts: the pre-engine reference
  // kernel heap-allocates its result and queue on every call.
  const auto g = make_grid2d(16, 16);
  (void)bfs_distances_reference(g, 0);
  const std::uint64_t before = nav::allocation_count();
  (void)bfs_distances_reference(g, 0);
  const std::uint64_t after = nav::allocation_count();
  EXPECT_GE(after - before, 2u);
}

TEST(ZeroAlloc, SteadyStateOracleHitAllocatesNothing) {
  const auto g = make_grid2d(40, 40);
  TargetDistanceCache cache(g, 4);
  const NodeId target = 123;
  (void)cache.distances_to(target);  // the one miss: BFS into an arena slot

  const std::uint64_t before = nav::allocation_count();
  Dist sum = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto pin = cache.distances_to(target);  // hit: pin copy + LRU bump
    sum += (*pin)[static_cast<NodeId>(i % g.num_nodes())];
    sum += cache.distance(7, target);
  }
  const std::uint64_t after = nav::allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "a steady-state oracle hit must perform zero heap allocations";
  EXPECT_GT(sum, 0u);  // keep the loop observable
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_GE(cache.hits(), 2000u);
}

TEST(ZeroAlloc, SteadyStateRoutingOnWarmCacheAllocatesNothing) {
  const auto g = make_grid2d(32, 32);
  TargetDistanceCache cache(g, 2);
  const routing::GreedyRouter router(g, cache);
  core::UniformScheme scheme(g);
  const NodeId target = g.num_nodes() - 1;
  Rng rng(42);
  (void)router.route(0, target, &scheme, rng.child(0));  // warms the cache

  const std::uint64_t before = nav::allocation_count();
  std::uint32_t hops = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    hops += router.route(5, target, &scheme, rng.child(i)).steps;
    hops += router.route(9, target, nullptr, rng.child(i)).steps;
  }
  const std::uint64_t after = nav::allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "routing against a resident target must not touch the allocator";
  EXPECT_GT(hops, 0u);
}

TEST(ZeroAlloc, ArenaRecyclingServesMissesWithoutRowAllocations) {
  // A miss is not allocation-free (the LRU list and hash map own nodes, the
  // slot handle owns a control block), but the distance ROW must come from a
  // recycled arena slot, never a fresh heap block — including on a FULL
  // cache, where the row is computed before the victim's slot frees (the
  // arena's +1 spare slot covers exactly that window). The byte counter is
  // the proof: one spilled row for n=4096 would add 16 KiB at a stroke,
  // while 37 misses of pure bookkeeping stay within a few KiB.
  const auto g = make_path(4096);
  TargetDistanceCache cache(g, 2);
  (void)cache.distances_to(0);
  (void)cache.distances_to(1);  // LRU now full: both slots resident
  (void)cache.distances_to(2);  // full-cache miss; must use the spare slot
  const std::uint64_t count_before = nav::allocation_count();
  const std::uint64_t bytes_before = nav::allocation_bytes();
  for (NodeId t = 3; t < 40; ++t) {
    (void)cache.distances_to(t);  // every miss evicts and recycles
  }
  const std::uint64_t count_after = nav::allocation_count();
  const std::uint64_t bytes_after = nav::allocation_bytes();
  EXPECT_LE(count_after - count_before, 37u * 4u);
  EXPECT_LT(bytes_after - bytes_before, 4096u * sizeof(Dist));
}

TEST(ZeroAlloc, WarmParallelSweepAllocatesNothing) {
  // The multi-worker sweep inherits the engine's allocation contract: the
  // worker-team startup and scratch growth happen on the FIRST sweep (the
  // one exempt moment); every warm sweep after that — parallel out-fill,
  // chunk-claimed top-down, bottom-up words, two-pass frontier rebuild —
  // must never touch the allocator, on any lane.
  const auto g = make_grid2d(48, 48);
  ParallelPolicy policy;
  policy.num_workers = 4;
  policy.serial_frontier_cutoff = 1;  // force the parallel code paths
  policy.min_diropt_nodes = 1;
  ParallelBfs sweep(policy);
  std::vector<Dist> out(g.num_nodes());
  sweep.distances_into(g, 0, out);  // warm: lazy thread start + scratch
  sweep.distances_into(g, 1, out, 7);

  const std::uint64_t before = nav::allocation_count();
  for (NodeId s = 0; s < 16; ++s) {
    sweep.distances_into(g, s, out);      // full sweep, all parallel levels
    sweep.distances_into(g, s, out, 6);   // bounded sweep
  }
  const std::uint64_t after = nav::allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "a warm ParallelBfs must perform zero heap allocations per sweep";
}

TEST(ZeroAlloc, WarmPrefetchWaveAllocatesNothing) {
  // An all-hit prefetch wave is the oracle's steady state under RouteService:
  // dedup runs on grow-only thread scratch, residents are refcount copies
  // into a caller-reused vector — nothing may reach the allocator.
  const auto g = make_grid2d(40, 40);
  TargetDistanceCache cache(g, 8, ParallelPolicy::serial());
  const std::vector<NodeId> wave{5, 9, 13, 5, 21, 9};
  std::vector<DistVecPtr> pinned;
  cache.prefetch_into(wave, pinned);  // warm: misses, scratch, out growth
  cache.prefetch_into(wave, pinned);  // warm: the all-hit shape itself

  const std::uint64_t before = nav::allocation_count();
  for (int i = 0; i < 200; ++i) cache.prefetch_into(wave, pinned);
  const std::uint64_t after = nav::allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "a resident prefetch wave must perform zero heap allocations";
  EXPECT_EQ(cache.misses(), 4u);  // only the first wave's distinct targets
}

TEST(ZeroAlloc, ParallelMissWavesRecycleArenaRows) {
  // Narrow waves (fewer misses than workers) run each miss as one
  // multi-worker sweep; the row must still come from a recycled arena slot,
  // never a fresh heap block. Bookkeeping per miss stays O(1) (LRU node,
  // map node, slot control block) — the byte counter proves no n-sized row
  // was ever heap-spilled.
  const auto g = make_path(4096);
  ParallelPolicy policy;
  policy.num_workers = 2;
  policy.serial_frontier_cutoff = 1;
  policy.min_diropt_nodes = 1;
  TargetDistanceCache cache(g, 2, policy);
  std::vector<DistVecPtr> pinned;
  std::vector<NodeId> wave(1);
  for (NodeId t = 0; t < 3; ++t) {  // warm: team start, spare slot, scratch
    wave[0] = t;
    cache.prefetch_into(wave, pinned);
  }
  pinned.clear();  // drop the last pin so its slot recycles
  const std::uint64_t count_before = nav::allocation_count();
  const std::uint64_t bytes_before = nav::allocation_bytes();
  for (NodeId t = 3; t < 40; ++t) {
    wave[0] = t;
    cache.prefetch_into(wave, pinned);  // miss, evict, recycle — every wave
    pinned.clear();
  }
  const std::uint64_t count_after = nav::allocation_count();
  const std::uint64_t bytes_after = nav::allocation_bytes();
  EXPECT_LE(count_after - count_before, 37u * 4u);
  EXPECT_LT(bytes_after - bytes_before, 4096u * sizeof(Dist));
}

TEST(ZeroAlloc, WarmNarrowCacheHitAllocatesNothing) {
  // The compact-slab cache's steady state: a wide-window-resident row hit is
  // a refcount copy of the widened view, and a point query reads the packed
  // row directly (widen_entry, no row materialisation). Neither may touch
  // the allocator once warm.
  const auto g = make_grid2d(40, 40);
  TargetDistanceCache cache(g, 4, {}, DistWidth::kU16);
  const NodeId target = 123;
  (void)cache.distances_to(target);  // the one miss: BFS + narrow + widen

  const std::uint64_t before = nav::allocation_count();
  Dist sum = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto pin = cache.distances_to(target);  // wide-window hit
    sum += (*pin)[static_cast<NodeId>(i % g.num_nodes())];
    sum += cache.distance(7, target);  // packed point query
  }
  const std::uint64_t after = nav::allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "a warm narrow-width cache hit must perform zero heap allocations";
  EXPECT_GT(sum, 0u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ZeroAlloc, WarmLandmarkHitAllocatesNothing) {
  // The approximate backend inherits the oracle allocation contract: row
  // materialisation (triangle merge + patch BFS) happens on the miss; a warm
  // hit is an LRU splice plus a refcount copy, and point queries ride the
  // same row cache.
  const auto g = make_grid2d(32, 32);
  LandmarkOracle oracle(g, {});
  const NodeId target = g.num_nodes() - 1;
  (void)oracle.distances_to(target);  // the one miss

  const std::uint64_t before = nav::allocation_count();
  Dist sum = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto pin = oracle.distances_to(target);
    sum += (*pin)[static_cast<NodeId>(i % g.num_nodes())];
    sum += oracle.distance(5, target);
  }
  const std::uint64_t after = nav::allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "a warm landmark row hit must perform zero heap allocations";
  EXPECT_GT(sum, 0u);
  EXPECT_EQ(oracle.misses(), 1u);
  EXPECT_GE(oracle.hits(), 2000u);
}

TEST(ZeroAlloc, WarmMetricIncrementsAllocateNothing) {
  // The obs registry's hot-path contract: once this thread's shard exists
  // (created by the warm-up increments), counter inc, gauge set/add/set_max,
  // and histogram observe are wait-free stores — zero allocations.
  obs::Registry reg;
  const auto counter = reg.counter("alloc_test.counter");
  const auto gauge = reg.gauge("alloc_test.gauge");
  const auto hist = reg.histogram("alloc_test.hist", 0.0, 100.0, 32);
  counter.inc();      // warm: attaches this thread's shard
  gauge.set(1);
  hist.observe(1.0);

  const std::uint64_t before = nav::allocation_count();
  for (int i = 0; i < 10000; ++i) {
    counter.inc();
    counter.inc(3);
    gauge.add(2);
    gauge.sub(1);
    gauge.set_max(i);
    hist.observe(static_cast<double>(i % 150) - 10.0);  // bins + under + over
  }
  const std::uint64_t after = nav::allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "warm metric increments must perform zero heap allocations";
  EXPECT_EQ(counter.value(), 1u + 10000u * 4u);
}

TEST(ZeroAlloc, WarmTraceSpansAllocateNothing) {
  // Span recording promises zero-allocation-when-warm: the ring is created
  // on this thread's first recorded span, after which NAV_OBS_SPAN is a
  // clock read plus a locked ring write.
  auto& tracer = obs::Tracer::instance();
  tracer.set_enabled(true);
  { NAV_OBS_SPAN("alloc-test-warm"); }  // warm: attaches this thread's ring

  const std::uint64_t before = nav::allocation_count();
  for (int i = 0; i < 1000; ++i) {
    NAV_OBS_SPAN("alloc-test-span", "i", static_cast<double>(i));
  }
  const std::uint64_t after = nav::allocation_count();
  tracer.set_enabled(false);
  EXPECT_EQ(after - before, 0u)
      << "warm span recording must perform zero heap allocations";
  EXPECT_GE(tracer.event_count(), 1001u);
  tracer.clear();
}

TEST(ZeroAlloc, DisabledTracerSpanSitesAllocateNothing) {
  // The common case — tracing off — must cost one relaxed load, no ring.
  auto& tracer = obs::Tracer::instance();
  tracer.set_enabled(false);
  const std::uint64_t before = nav::allocation_count();
  for (int i = 0; i < 1000; ++i) {
    NAV_OBS_SPAN("disabled-span");
  }
  const std::uint64_t after = nav::allocation_count();
  EXPECT_EQ(after - before, 0u);
}

TEST(ZeroAlloc, InstrumentedWarmRouteHitAllocatesNothing) {
  // End-to-end: the oracle hit path now bumps registry counters
  // (oracle.cache_hits et al). A warm hit must STILL be allocation-free —
  // the instrumentation sweep is not allowed to tax the paths it observes.
  const auto g = make_grid2d(32, 32);
  TargetDistanceCache cache(g, 4);
  core::UniformScheme scheme(g);
  routing::GreedyRouter router(g, cache);
  const NodeId target = g.num_nodes() - 1;
  Rng rng(11);
  (void)router.route(0, target, &scheme, rng);  // warm: miss + shard attach

  const std::uint64_t before = nav::allocation_count();
  for (int i = 0; i < 200; ++i) {
    Rng trial(static_cast<std::uint64_t>(i));
    (void)router.route(static_cast<NodeId>(i % 31), target, &scheme, trial);
  }
  const std::uint64_t after = nav::allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "instrumented warm route hits must stay allocation-free";
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ZeroAlloc, WarmFaultFreeFaultyOracleHitAllocatesNothing) {
  // The resilience decorator must not tax the healthy path: with no fault
  // family active, a warm FaultyOracle hit is the base oracle's hit plus an
  // attempt-counter bump on an existing map entry — still allocation-free.
  // (Stall widening allocates by design — the heap copy IS the fault — so
  // only the fault-free posture carries the zero-alloc contract.)
  const auto g = make_grid2d(32, 32);
  TargetDistanceCache cache(g, 4);
  const resilience::FaultSpec spec;  // all probabilities zero
  const resilience::FaultyOracle faulty(cache, spec);
  core::UniformScheme scheme(g);
  routing::GreedyRouter router(g, faulty);
  const NodeId target = g.num_nodes() - 1;
  Rng rng(17);
  // Warm: the base cache miss, the attempt-counter map entry for `target`,
  // and the router's scratch.
  (void)router.route(0, target, &scheme, rng);

  const std::uint64_t before = nav::allocation_count();
  std::uint32_t hops = 0;
  for (int i = 0; i < 200; ++i) {
    Rng trial(static_cast<std::uint64_t>(i));
    hops += router.route(static_cast<NodeId>(i % 31), target, &scheme, trial)
                .steps;
    hops += faulty.distance(7, target);
  }
  const std::uint64_t after = nav::allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "a warm fault-free FaultyOracle hit must stay allocation-free";
  EXPECT_GT(hops, 0u);
  EXPECT_EQ(faulty.injected_failures(), 0u);
}

}  // namespace
}  // namespace nav::graph
