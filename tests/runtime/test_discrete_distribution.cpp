#include "runtime/discrete_distribution.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nav {
namespace {

TEST(DiscreteDistribution, RejectsBadWeights) {
  EXPECT_THROW(DiscreteDistribution({}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({1.0, -0.5}), std::invalid_argument);
}

TEST(DiscreteDistribution, SingleOutcome) {
  DiscreteDistribution d({3.0});
  Rng rng(1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(d.sample(rng), 0u);
  EXPECT_DOUBLE_EQ(d.probability(0), 1.0);
}

TEST(DiscreteDistribution, NormalisesProbabilities) {
  DiscreteDistribution d({1.0, 3.0});
  EXPECT_DOUBLE_EQ(d.probability(0), 0.25);
  EXPECT_DOUBLE_EQ(d.probability(1), 0.75);
}

TEST(DiscreteDistribution, ZeroWeightNeverSampled) {
  DiscreteDistribution d({1.0, 0.0, 1.0});
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) EXPECT_NE(d.sample(rng), 1u);
}

TEST(DiscreteDistribution, EmpiricalMatchesExact) {
  const std::vector<double> weights{5.0, 1.0, 2.0, 2.0};
  DiscreteDistribution d(weights);
  Rng rng(42);
  constexpr int kDraws = 200000;
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < kDraws; ++i) ++counts[d.sample(rng)];
  for (std::size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / kDraws, d.probability(i), 0.01)
        << "outcome " << i;
  }
}

TEST(DiscreteDistribution, LargeSupportHarmonic) {
  std::vector<double> weights(1000);
  for (std::size_t r = 0; r < weights.size(); ++r) {
    weights[r] = 1.0 / static_cast<double>(r + 1);
  }
  DiscreteDistribution d(weights);
  Rng rng(3);
  // First outcome should be sampled with probability 1/H_1000 ~ 0.1334.
  int first = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) first += (d.sample(rng) == 0);
  EXPECT_NEAR(static_cast<double>(first) / kDraws, d.probability(0), 0.01);
}

TEST(DiscreteDistribution, ProbabilityOutOfRangeThrows) {
  DiscreteDistribution d({1.0});
  EXPECT_THROW(d.probability(1), std::invalid_argument);
}

}  // namespace
}  // namespace nav
