#include "runtime/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "runtime/rng.hpp"

namespace nav {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, left, right;
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 10.0;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, CiShrinksWithSamples) {
  RunningStats small, large;
  Rng rng(11);
  for (int i = 0; i < 10; ++i) small.add(rng.next_double());
  for (int i = 0; i < 1000; ++i) large.add(rng.next_double());
  EXPECT_GT(small.ci_halfwidth(), large.ci_halfwidth());
}

TEST(RunningStats, CiLevelMonotone) {
  RunningStats s;
  Rng rng(12);
  for (int i = 0; i < 100; ++i) s.add(rng.next_double());
  EXPECT_LT(s.ci_halfwidth(0.90), s.ci_halfwidth(0.95));
  EXPECT_LT(s.ci_halfwidth(0.95), s.ci_halfwidth(0.99));
}

TEST(Percentile, KnownQuantiles) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.0);
}

TEST(Percentile, InterpolatesBetweenValues) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.35), 3.5);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 1.5), std::invalid_argument);
}

TEST(QuantileSummary, MatchesPercentileOnUnsortedInput) {
  std::vector<double> xs;
  for (int i = 100; i >= 1; --i) xs.push_back(static_cast<double>(i));
  const auto summary = summarize(xs);
  EXPECT_EQ(summary.count, 100u);
  EXPECT_DOUBLE_EQ(summary.mean, 50.5);
  EXPECT_DOUBLE_EQ(summary.min, 1.0);
  EXPECT_DOUBLE_EQ(summary.max, 100.0);
  EXPECT_DOUBLE_EQ(summary.p50, percentile(xs, 0.50));
  EXPECT_DOUBLE_EQ(summary.p90, percentile(xs, 0.90));
  EXPECT_DOUBLE_EQ(summary.p95, percentile(xs, 0.95));
  EXPECT_DOUBLE_EQ(summary.p99, percentile(xs, 0.99));
}

TEST(QuantileSummary, EmptySampleIsAllZero) {
  const auto summary = summarize({});
  EXPECT_EQ(summary.count, 0u);
  EXPECT_DOUBLE_EQ(summary.mean, 0.0);
  EXPECT_DOUBLE_EQ(summary.p99, 0.0);
}

TEST(HistogramPercentile, InterpolatesInsideBins) {
  // 100 samples uniform over [0, 10) in 10 bins: the histogram percentile
  // must land within a bin width of the exact order statistic.
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) / 10.0);
  EXPECT_NEAR(h.percentile(0.5), 5.0, 1.0);
  EXPECT_NEAR(h.percentile(0.95), 9.5, 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 10.0);
}

TEST(HistogramPercentile, ResolvesOverflowAndUnderflowToTheEdges) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);  // underflow
  h.add(0.5);
  h.add(9.0);  // overflow
  EXPECT_DOUBLE_EQ(h.percentile(0.01), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 1.0);
  Histogram empty(0.0, 1.0, 4);
  EXPECT_THROW((void)empty.percentile(0.5), std::invalid_argument);
  EXPECT_THROW((void)h.percentile(1.5), std::invalid_argument);
}

TEST(HistogramPercentile, EmptyHistogramThrowsForEveryQ) {
  const Histogram empty(0.0, 10.0, 8);
  EXPECT_THROW((void)empty.percentile(0.0), std::invalid_argument);
  EXPECT_THROW((void)empty.percentile(0.5), std::invalid_argument);
  EXPECT_THROW((void)empty.percentile(1.0), std::invalid_argument);
}

TEST(HistogramPercentile, SingleSampleInterpolatesAcrossItsBin) {
  // One sample in bin [4, 6): the estimator only knows the bin, so the
  // percentile sweeps linearly across that bin as q goes 0 -> 1.
  Histogram h(0.0, 10.0, 5);
  h.add(5.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);  // q=0 pins to lo by convention
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 5.0);  // bin midpoint
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 6.0);  // bin upper edge
}

TEST(HistogramPercentile, AllSamplesInOneBinStayInsideThatBin) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(3.5);  // every sample lands in [3, 4)
  EXPECT_DOUBLE_EQ(h.percentile(0.25), 3.25);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 3.5);
  EXPECT_DOUBLE_EQ(h.percentile(0.75), 3.75);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 4.0);
}

TEST(HistogramPercentile, OutOfRangeSamplesClampToBounds) {
  // Samples beyond [lo, hi) never enter a bin; the percentile resolves the
  // underflow mass to lo and the overflow mass to hi instead of extrapolating.
  Histogram h(0.0, 1.0, 4);
  for (int i = 0; i < 10; ++i) h.add(-1e9);
  for (int i = 0; i < 10; ++i) h.add(+1e9);
  EXPECT_EQ(h.underflow(), 10u);
  EXPECT_EQ(h.overflow(), 10u);
  EXPECT_EQ(h.total(), 20u);
  EXPECT_DOUBLE_EQ(h.percentile(0.25), 0.0);  // inside the underflow mass
  EXPECT_DOUBLE_EQ(h.percentile(0.75), 1.0);  // inside the overflow mass
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1.0);
}

TEST(Histogram, CountsFallInRightBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(5.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi is exclusive
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
}

TEST(Histogram, BinBoundaries) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const auto s = h.render(10);
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(PowerFit, RecoversExactPowerLaw) {
  // y = 3 * x^0.5
  std::vector<double> xs, ys;
  for (double x = 10; x <= 1e6; x *= 10) {
    xs.push_back(x);
    ys.push_back(3.0 * std::sqrt(x));
  }
  const auto fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.slope, 0.5, 1e-9);
  EXPECT_NEAR(std::exp(fit.intercept), 3.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(PowerFit, RecoversCubeRoot) {
  std::vector<double> xs, ys;
  for (double x = 2; x <= (1 << 20); x *= 2) {
    xs.push_back(x);
    ys.push_back(std::cbrt(x));
  }
  const auto fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.slope, 1.0 / 3.0, 1e-9);
}

TEST(PowerFit, FlatLineHasZeroSlope) {
  const auto fit = fit_power_law({1, 10, 100, 1000}, {5, 5, 5, 5});
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
}

TEST(PowerFit, IgnoresNonPositivePoints) {
  const auto fit =
      fit_power_law({-1, 0, 10, 100, 1000}, {1, 1, 10, 100, 1000});
  EXPECT_NEAR(fit.slope, 1.0, 1e-9);
}

TEST(PowerFit, TooFewPointsGivesZero) {
  const auto fit = fit_power_law({10}, {5});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
}

}  // namespace
}  // namespace nav
