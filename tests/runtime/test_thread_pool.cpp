#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "runtime/rng.hpp"

namespace nav {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(3);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ThreadCountReported) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPool, DefaultThreadsPositive) {
  EXPECT_GE(ThreadPool::default_threads(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, [&](std::size_t) { ++calls; });
  parallel_for(pool, 7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, NonZeroBegin) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  parallel_for(pool, 10, 20, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), std::size_t{145});  // 10+...+19
}

TEST(ParallelFor, ResultIndependentOfThreadCount) {
  // Deterministic body keyed by index: results must agree across pool sizes.
  auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> out(512);
    parallel_for(pool, 0, 512, [&](std::size_t i) {
      Rng rng = Rng(77).child(i);
      out[i] = rng();
    });
    return out;
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(ParallelFor, GlobalPoolWorks) {
  std::atomic<int> counter{0};
  parallel_for(0, 64, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, ManySmallBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 20; ++round) {
    parallel_for(pool, 0, 10, [&](std::size_t) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 200);
}

}  // namespace
}  // namespace nav
