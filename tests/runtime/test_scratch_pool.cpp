#include "runtime/scratch_pool.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace nav {
namespace {

struct Counter {
  int value = 0;
};

TEST(ThreadScratch, StablePerThreadDistinctAcrossThreads) {
  Counter& a = thread_scratch<Counter>();
  a.value = 42;
  EXPECT_EQ(&a, &thread_scratch<Counter>());
  EXPECT_EQ(thread_scratch<Counter>().value, 42);
  Counter* other = nullptr;
  int other_initial = -1;
  std::thread([&] {
    other = &thread_scratch<Counter>();
    other_initial = other->value;
  }).join();
  EXPECT_NE(other, &a);
  EXPECT_EQ(other_initial, 0);  // fresh instance, not a's state
}

TEST(ScratchPool, LeaseRecyclesInstances) {
  ScratchPool<Counter> pool;
  Counter* first = nullptr;
  {
    auto lease = pool.acquire();
    lease->value = 7;
    first = &*lease;
  }
  EXPECT_EQ(pool.idle(), 1u);
  auto lease = pool.acquire();
  EXPECT_EQ(&*lease, first);   // recycled, not reconstructed
  EXPECT_EQ(lease->value, 7);  // state survives (scratch contract: grow-only)
  EXPECT_EQ(pool.idle(), 0u);
}

TEST(ScratchPool, ConcurrentAcquiresGetDistinctInstances) {
  ScratchPool<Counter> pool;
  auto a = pool.acquire();
  auto b = pool.acquire();
  EXPECT_NE(&*a, &*b);
}

TEST(ScratchPool, LeaseSurvivesPoolDestruction) {
  ScratchPool<Counter>::Lease* escaped = nullptr;
  {
    ScratchPool<Counter> pool;
    escaped = new ScratchPool<Counter>::Lease(pool.acquire());
    (*escaped)->value = 9;
  }  // pool dies with a lease outstanding
  EXPECT_EQ((**escaped).value, 9);
  delete escaped;  // returns into the orphaned free list, then frees with it
}

TEST(ScratchPool, MovedFromLeaseDoesNotDoubleReturn) {
  ScratchPool<Counter> pool;
  {
    auto a = pool.acquire();
    auto b = std::move(a);
    b->value = 3;
  }
  EXPECT_EQ(pool.idle(), 1u);
}

TEST(ScratchPool, MoveAssignReturnsTheDisplacedInstance) {
  // a = move(b) must put a's instance back in the pool, not destroy it —
  // otherwise every reassignment permanently shrinks the pool.
  ScratchPool<Counter> pool;
  {
    auto a = pool.acquire();
    auto b = pool.acquire();
    a = std::move(b);
    EXPECT_EQ(pool.idle(), 1u);  // a's original instance came back at once
  }
  EXPECT_EQ(pool.idle(), 2u);  // both instances survive the scope
}

}  // namespace
}  // namespace nav
