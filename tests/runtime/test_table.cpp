#include "runtime/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace nav {
namespace {

TEST(Table, RequiresHeaders) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RowWidthMustMatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, AsciiContainsHeaderRuleAndCells) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const auto s = t.to_ascii();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(Table, MarkdownShape) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  const auto md = t.to_markdown();
  EXPECT_NE(md.find("| x | y |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"a"});
  t.add_row({"hello, world"});
  t.add_row({"say \"hi\""});
  const auto csv = t.to_csv();
  EXPECT_NE(csv.find("\"hello, world\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvPlainCellsUnquoted) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_NE(t.to_csv().find("1,2"), std::string::npos);
}

TEST(Table, SaveCsvRoundTrip) {
  Table t({"k", "v"});
  t.add_row({"n", "42"});
  const std::string path = ::testing::TempDir() + "nav_table_test.csv";
  t.save_csv(path);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), t.to_csv());
  std::remove(path.c_str());
}

TEST(Table, SaveCsvBadPathThrows) {
  Table t({"a"});
  EXPECT_THROW(t.save_csv("/nonexistent_dir_xyz/file.csv"), std::runtime_error);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::integer(123456), "123456");
}

TEST(Table, WithCiFormat) {
  EXPECT_EQ(Table::with_ci(10.5, 0.25, 2), "10.50 +- 0.25");
}

TEST(Table, RowAccess) {
  Table t({"a"});
  t.add_row({"x"});
  EXPECT_EQ(t.row(0)[0], "x");
  EXPECT_THROW(t.row(1), std::invalid_argument);
}

}  // namespace
}  // namespace nav
