#include "runtime/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace nav {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(99);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(2024);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBound)];
  // Expected 10000 per bucket; 4-sigma band ~ +-380.
  for (const int c : counts) {
    EXPECT_GT(c, 9500);
    EXPECT_LT(c, 10500);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NextBoolRespectsProbability) {
  Rng rng(17);
  int heads = 0;
  for (int i = 0; i < 20000; ++i) heads += rng.next_bool(0.25);
  EXPECT_NEAR(heads / 20000.0, 0.25, 0.02);
}

TEST(Rng, ChildStreamsAreIndependentish) {
  Rng root(55);
  Rng c0 = root.child(0);
  Rng c1 = root.child(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (c0() == c1());
  EXPECT_LT(equal, 2);
}

TEST(Rng, ChildIsDeterministic) {
  Rng root(55);
  Rng a = root.child(42);
  Rng b = root.child(42);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, ChildDoesNotAdvanceParent) {
  Rng a(9), b(9);
  (void)a.child(3);
  EXPECT_EQ(a(), b());
}

TEST(Rng, NestedChildrenDistinct) {
  Rng root(1);
  std::set<std::uint64_t> firsts;
  for (std::uint64_t i = 0; i < 32; ++i) {
    for (std::uint64_t j = 0; j < 32; ++j) {
      Rng c = root.child(i).child(j);
      firsts.insert(c());
    }
  }
  EXPECT_EQ(firsts.size(), 32u * 32u);  // no collisions among 1024 streams
}

TEST(Rng, RandomIndexCoversRange) {
  Rng rng(8);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(random_index(rng, 7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(SplitMix, KnownFirstOutputsDiffer) {
  std::uint64_t s1 = 0, s2 = 1;
  EXPECT_NE(splitmix64_next(s1), splitmix64_next(s2));
}

}  // namespace
}  // namespace nav
