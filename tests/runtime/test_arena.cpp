#include "runtime/arena.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

namespace nav {
namespace {

TEST(SlabArena, SlotsAreDistinctAndWritable) {
  SlabArena<std::uint32_t> arena(4, 8);
  auto a = arena.try_acquire();
  auto b = arena.try_acquire();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a.get(), b.get());
  for (std::size_t i = 0; i < 8; ++i) a.get()[i] = 100 + i;
  for (std::size_t i = 0; i < 8; ++i) b.get()[i] = 200 + i;
  EXPECT_EQ(a.get()[7], 107u);
  EXPECT_EQ(b.get()[0], 200u);
}

TEST(SlabArena, ExhaustsAtSlotBudget) {
  SlabArena<std::uint32_t> arena(2, 4);
  auto a = arena.try_acquire();
  auto b = arena.try_acquire();
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
  EXPECT_EQ(arena.try_acquire(), nullptr);  // every slot pinned
  EXPECT_EQ(arena.slots_in_use(), 2u);
}

TEST(SlabArena, ReleasedSlotsRecycleWithoutNewChunks) {
  SlabArena<std::uint32_t> arena(2, 4);
  auto a = arena.try_acquire();
  const auto* first = a.get();
  a.reset();  // back to the free list
  EXPECT_EQ(arena.slots_in_use(), 0u);
  auto b = arena.try_acquire();
  EXPECT_EQ(b.get(), first);  // LIFO recycling, no growth
  EXPECT_EQ(arena.slots_allocated(), 2u);  // the first chunk covered both slots
}

TEST(SlabArena, ChunksGrowLazilyTowardsBudget) {
  // 100-slot budget, 10 slots per chunk: memory tracks the working set.
  SlabArena<std::uint32_t> arena(100, 4, 10);
  EXPECT_EQ(arena.slots_allocated(), 0u);
  std::vector<std::shared_ptr<std::uint32_t>> pins;
  for (int i = 0; i < 15; ++i) pins.push_back(arena.try_acquire());
  EXPECT_EQ(arena.slots_allocated(), 20u);  // two chunks carved
  EXPECT_EQ(arena.slots_in_use(), 15u);
}

TEST(SlabArena, HandlesOutliveTheArena) {
  std::shared_ptr<std::uint32_t> pin;
  {
    SlabArena<std::uint32_t> arena(1, 16);
    pin = arena.try_acquire();
    for (std::size_t i = 0; i < 16; ++i) pin.get()[i] = 7;
  }  // arena object gone; the handle co-owns the slab
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(pin.get()[i], 7u);
}

TEST(SlabArena, CrossThreadReleaseIsSafe) {
  SlabArena<std::uint32_t> arena(8, 4);
  std::vector<std::shared_ptr<std::uint32_t>> pins;
  for (int i = 0; i < 8; ++i) pins.push_back(arena.try_acquire());
  std::thread releaser([&] { pins.clear(); });
  releaser.join();
  EXPECT_EQ(arena.slots_in_use(), 0u);
  EXPECT_NE(arena.try_acquire(), nullptr);
}

}  // namespace
}  // namespace nav
