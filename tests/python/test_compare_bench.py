#!/usr/bin/env python3
"""Unit tests for scripts/compare_bench.py (run as a ctest entry).

Builds synthetic nav-bench-trajectory-v1 documents and checks the exit code
and report for the cases the CI gate depends on: no change, improvement,
strict regression, loose (wall-clock) deltas, added series, removed series,
throughput direction, and merged-document handling.
"""

import contextlib
import io
import json
import pathlib
import sys
import tempfile
import unittest

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent.parent / "scripts"))
import compare_bench  # noqa: E402


def make_doc(cells, bench="e1_test", loose=("seconds",), quick=True):
    return {
        "schema": "nav-bench-trajectory-v1",
        "bench": bench,
        "id": bench,
        "quick": quick,
        "group_by": ["scheme", "family"],
        "key_fields": ["section", "family", "scheme", "n"],
        "metrics": ["greedy_diameter", "mean_steps"],
        "loose_metrics": list(loose),
        "cells": cells,
    }


def cell(family="path", scheme="uniform", n=1024, diam=40.0, steps=28.0,
         seconds=0.5, **extra):
    out = {"section": "S", "family": family, "scheme": scheme, "n": n,
           "greedy_diameter": diam, "mean_steps": steps, "seconds": seconds}
    out.update(extra)
    return out


class CompareBenchTest(unittest.TestCase):
    def run_compare(self, base_doc, cur_doc, *extra_args):
        with tempfile.TemporaryDirectory() as scratch:
            base = pathlib.Path(scratch) / "base.json"
            cur = pathlib.Path(scratch) / "cur.json"
            base.write_text(json.dumps(base_doc))
            cur.write_text(json.dumps(cur_doc))
            argv = sys.argv
            sys.argv = ["compare_bench.py", str(base), str(cur), *extra_args]
            stdout = io.StringIO()
            try:
                with contextlib.redirect_stdout(stdout):
                    code = compare_bench.main()
            finally:
                sys.argv = argv
            return code, stdout.getvalue()

    def test_no_change_passes(self):
        doc = make_doc([cell(), cell(scheme="ball", diam=20.0)])
        code, out = self.run_compare(doc, doc)
        self.assertEqual(code, 0)
        self.assertIn("no regression", out)

    def test_wallclock_noise_is_informational(self):
        base = make_doc([cell(seconds=0.5)])
        cur = make_doc([cell(seconds=5.0)])  # 10x slower, loose metric
        code, out = self.run_compare(base, cur)
        self.assertEqual(code, 0)
        self.assertNotIn("REGRESSIONS", out)

    def test_wallclock_gated_when_loose_rel_set(self):
        base = make_doc([cell(seconds=0.5)])
        cur = make_doc([cell(seconds=5.0)])
        code, out = self.run_compare(base, cur, "--loose-rel", "0.5")
        self.assertEqual(code, 1)
        self.assertIn("seconds", out)

    def test_hop_count_regression_fails(self):
        base = make_doc([cell(diam=40.0)])
        cur = make_doc([cell(diam=44.0)])  # +10% hops
        code, out = self.run_compare(base, cur)
        self.assertEqual(code, 1)
        self.assertIn("REGRESSIONS", out)
        self.assertIn("greedy_diameter", out)

    def test_hop_count_improvement_passes_and_is_reported(self):
        base = make_doc([cell(diam=40.0)])
        cur = make_doc([cell(diam=30.0)])
        code, out = self.run_compare(base, cur)
        self.assertEqual(code, 0)
        self.assertIn("improvements", out)

    def test_ulp_noise_within_strict_threshold_passes(self):
        base = make_doc([cell(diam=40.0)])
        cur = make_doc([cell(diam=40.0 * (1 + 1e-9))])
        code, _ = self.run_compare(base, cur)
        self.assertEqual(code, 0)

    def test_throughput_direction_higher_is_better(self):
        base = make_doc([cell(routes_per_sec=1000.0)],
                        loose=("seconds", "routes_per_sec"))
        cur = make_doc([cell(routes_per_sec=100.0)],
                       loose=("seconds", "routes_per_sec"))
        code, out = self.run_compare(base, cur, "--loose-rel", "0.5")
        self.assertEqual(code, 1)
        self.assertIn("routes_per_sec", out)
        # And the reverse (faster) direction passes the same gate.
        code, _ = self.run_compare(cur, base, "--loose-rel", "0.5")
        self.assertEqual(code, 0)

    def test_added_series_is_informational(self):
        base = make_doc([cell()])
        cur = make_doc([cell(), cell(scheme="ball", diam=20.0)])
        code, out = self.run_compare(base, cur)
        self.assertEqual(code, 0)
        self.assertIn("series added in current (1)", out)

    def test_removed_series_fails_unless_allowed(self):
        base = make_doc([cell(), cell(scheme="ball", diam=20.0)])
        cur = make_doc([cell()])
        code, out = self.run_compare(base, cur)
        self.assertEqual(code, 1)
        self.assertIn("series missing from current (1)", out)
        code, _ = self.run_compare(base, cur, "--allow-missing")
        self.assertEqual(code, 0)

    def test_added_metric_in_shared_series_is_informational(self):
        base = make_doc([cell()])
        cur = make_doc([cell(extra_metric=5.0)])
        code, out = self.run_compare(base, cur)
        self.assertEqual(code, 0)
        self.assertNotIn("REGRESSIONS", out)

    def test_removed_metric_in_shared_series_fails(self):
        base = make_doc([cell(extra_metric=3.0)])
        cur = make_doc([cell()])
        code, out = self.run_compare(base, cur)
        self.assertEqual(code, 1)
        self.assertIn("extra_metric", out)

    def test_merged_documents_align_by_bench(self):
        merged_base = {"schema": "nav-bench-trajectory-v1", "merged": True,
                       "benches": [make_doc([cell()], bench="e1_test"),
                                   make_doc([cell(diam=9.0)],
                                            bench="e8_test")]}
        merged_cur = {"schema": "nav-bench-trajectory-v1", "merged": True,
                      "benches": [make_doc([cell()], bench="e1_test"),
                                  make_doc([cell(diam=9.9)],
                                           bench="e8_test")]}
        code, out = self.run_compare(merged_base, merged_cur)
        self.assertEqual(code, 1)
        self.assertIn("e8_test", out)
        self.assertNotIn("e1_test[", out.split("REGRESSIONS")[1])

    def test_schema_mismatch_is_a_hard_error(self):
        with self.assertRaises(SystemExit):
            self.run_compare({"schema": "something-else"}, make_doc([cell()]))


if __name__ == "__main__":
    unittest.main(verbosity=2)
