// test_probability_rows.cpp — properties of exact distribution evaluation.
//
// probability_row(u) is the backbone of exact_analysis: it must (a) agree
// with the scalar probability(u, v), (b) form a sub-distribution, and (c)
// predict empirical sampling frequencies. Parameterized over the exactly-
// evaluable schemes × representative families.
#include <gtest/gtest.h>

#include <map>

#include "core/scheme_factory.hpp"
#include "graph/families.hpp"
#include "runtime/rng.hpp"

namespace nav {
namespace {

using Param = std::tuple<std::string, std::string>;

class ProbabilityRowTest : public ::testing::TestWithParam<Param> {};

TEST_P(ProbabilityRowTest, RowMatchesScalarAndSubDistribution) {
  const auto& [spec, family_name] = GetParam();
  Rng rng(0xbead);
  const auto g = graph::family(family_name).make(96, rng);
  const auto scheme = core::make_scheme(spec, g, rng);
  ASSERT_NE(scheme, nullptr);

  for (graph::NodeId u = 0; u < g.num_nodes(); u += 31) {
    const auto row = scheme->probability_row(u);
    ASSERT_EQ(row.size(), g.num_nodes());
    double total = 0.0;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_GE(row[v], 0.0) << spec << "/" << family_name;
      EXPECT_NEAR(row[v], scheme->probability(u, v), 1e-9)
          << spec << "/" << family_name << " u=" << u << " v=" << v;
      total += row[v];
    }
    EXPECT_LE(total, 1.0 + 1e-6) << spec << "/" << family_name;
  }
}

TEST_P(ProbabilityRowTest, EmpiricalFrequenciesMatchRow) {
  const auto& [spec, family_name] = GetParam();
  Rng rng(0xfeed);
  const auto g = graph::family(family_name).make(48, rng);
  const auto scheme = core::make_scheme(spec, g, rng);
  ASSERT_NE(scheme, nullptr);

  const graph::NodeId u = g.num_nodes() / 2;
  const auto row = scheme->probability_row(u);
  constexpr int kDraws = 60000;
  std::map<graph::NodeId, int> counts;
  int none = 0;
  Rng draw_rng(0xd0);
  for (int i = 0; i < kDraws; ++i) {
    const auto c = scheme->sample_contact(u, draw_rng);
    if (c == core::kNoContact) ++none;
    else ++counts[c];
  }
  double total_row = 0.0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(counts[v] / static_cast<double>(kDraws), row[v], 0.015)
        << spec << "/" << family_name << " v=" << v;
    total_row += row[v];
  }
  EXPECT_NEAR(none / static_cast<double>(kDraws), 1.0 - total_row, 0.015);
}

std::vector<Param> grid() {
  const std::vector<std::string> schemes = {"uniform", "ml",  "ml-labelU",
                                            "ball",    "rank", "kleinberg:1.5",
                                            "growth"};
  const std::vector<std::string> families = {"path", "torus2d", "random_tree",
                                             "ring_of_cliques"};
  std::vector<Param> out;
  for (const auto& s : schemes)
    for (const auto& f : families) out.emplace_back(s, f);
  return out;
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string name = std::get<0>(info.param) + "_" + std::get<1>(info.param);
  for (auto& ch : name) {
    if (ch == '-' || ch == ':' || ch == '.') ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Grid, ProbabilityRowTest, ::testing::ValuesIn(grid()),
                         param_name);

}  // namespace
}  // namespace nav
