// test_theorem_shapes.cpp — end-to-end checks that each theorem's *shape*
// shows up in simulation at moderate sizes. Tolerances are generous: these
// are asymptotic statements sampled at one or two sizes; the bench suite
// (bench/) measures the full curves.
#include <gtest/gtest.h>

#include <cmath>

#include "core/ball_scheme.hpp"
#include "core/ml_scheme.hpp"
#include "core/name_independent.hpp"
#include "core/scheme_factory.hpp"
#include "core/uniform_scheme.hpp"
#include "decomposition/interval_decomposition.hpp"
#include "graph/diameter.hpp"
#include "graph/families.hpp"
#include "graph/generators.hpp"
#include "graph/interval_model.hpp"
#include "routing/trial_runner.hpp"

namespace nav {
namespace {

using core::kNoContact;
using graph::NodeId;

double pair_mean(const graph::Graph& g, const core::AugmentationScheme* scheme,
                 NodeId s, NodeId t, std::size_t resamples, std::uint64_t seed) {
  graph::TargetDistanceCache oracle(g, 8);
  return routing::estimate_pair(g, scheme, oracle, s, t, resamples, Rng(seed))
      .mean_steps;
}

// --- Peleg's O(sqrt n) upper bound for the uniform scheme (paper §1) --------

TEST(TheoremShapes, UniformOnPathIsThetaSqrtN) {
  const NodeId n = 1 << 14;
  const auto g = graph::make_path(n);
  core::UniformScheme scheme(g);
  const double mean = pair_mean(g, &scheme, 0, n - 1, 48, 11);
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  EXPECT_GT(mean, 0.5 * sqrt_n);
  EXPECT_LT(mean, 4.0 * sqrt_n);
}

TEST(TheoremShapes, UniformScalesLikeSqrtAcrossSizes) {
  // mean(4n) / mean(n) ~ 2 for a sqrt curve (ratio well below the 4 of a
  // linear curve).
  const auto small = graph::make_path(1 << 12);
  const auto large = graph::make_path(1 << 14);
  core::UniformScheme s_small(small), s_large(large);
  const double m_small = pair_mean(small, &s_small, 0, (1 << 12) - 1, 48, 12);
  const double m_large = pair_mean(large, &s_large, 0, (1 << 14) - 1, 48, 13);
  const double ratio = m_large / m_small;
  EXPECT_GT(ratio, 1.3);
  EXPECT_LT(ratio, 3.0);
}

// --- Theorem 1: adversarial labeling forces Omega(sqrt n) -------------------

TEST(TheoremShapes, AdversarialPathDefeatsUniformMatrix) {
  const NodeId n = 1 << 12;
  core::UniformMatrix matrix(n);
  Rng rng(21);
  const auto inst = core::make_adversarial_path(matrix, rng);
  core::MatrixScheme scheme(std::make_shared<core::UniformMatrix>(matrix),
                            inst.labeling);
  // s -> t within the sparse segment: expected steps >= alpha * sqrt(n)/3
  // (the segment has essentially no internal shortcut).
  const double mean = pair_mean(inst.path, &scheme, inst.source, inst.target,
                                32, 22);
  const double segment = std::ceil(std::sqrt(static_cast<double>(n)));
  EXPECT_GT(mean, segment / 6.0);  // Thm 1 bound: (|S|/3)·alpha with alpha<1
}

// --- Theorem 2 / Corollary 1: (M,L) is polylog on small-pathshape families --

TEST(TheoremShapes, MLBeatsUniformOnPath) {
  // The polylog-vs-sqrt crossover on the path sits around n ~ 2^16 with the
  // construction's constants ((1+log n)-way hierarchy rows fire slowly), so
  // test at 2^16 with a moderate margin; the bench sweeps show the full gap.
  const NodeId n = 1 << 16;
  const auto g = graph::make_path(n);
  Rng rng(31);
  const auto ml = core::make_scheme("ml", g, rng);
  const auto uniform = core::make_scheme("uniform", g, rng);
  const double ml_mean = pair_mean(g, ml.get(), 0, n - 1, 16, 32);
  const double uniform_mean = pair_mean(g, uniform.get(), 0, n - 1, 16, 33);
  EXPECT_LT(ml_mean, 0.8 * uniform_mean);
  // Polylog bound with a generous constant: ps=1, so c * log^2 n.
  const double log_n = std::log2(static_cast<double>(n));
  EXPECT_LT(ml_mean, 3.0 * log_n * log_n);
}

TEST(TheoremShapes, MLPolylogOnTrees) {
  Rng rng(41);
  const auto g = graph::make_random_tree(1 << 13, rng);
  const auto ml = core::make_scheme("ml", g, rng);
  const auto pp = graph::peripheral_pair(g);
  const double mean = pair_mean(g, ml.get(), pp.a, pp.b, 24, 42);
  const double log_n = std::log2(static_cast<double>(g.num_nodes()));
  // Corollary 1: O(log^3 n); allow a liberal constant.
  EXPECT_LT(mean, 2.0 * log_n * log_n * log_n);
}

TEST(TheoremShapes, MLPolylogOnIntervalGraphs) {
  Rng rng(51);
  const auto model = graph::connected_random_interval_model(1 << 12, rng);
  const auto g = model.to_graph();
  const auto pd = decomp::interval_decomposition(model);
  core::MLScheme scheme(g, pd);
  const auto pp = graph::peripheral_pair(g);
  const double mean = pair_mean(g, &scheme, pp.a, pp.b, 24, 52);
  const double log_n = std::log2(static_cast<double>(g.num_nodes()));
  // Corollary 1: O(log^2 n) for AT-free; allow constant slack.
  EXPECT_LT(mean, 4.0 * log_n * log_n);
}

// --- Theorem 4: the ball scheme beats sqrt(n) -------------------------------

TEST(TheoremShapes, BallSchemeNearCubeRootOnPath) {
  const NodeId n = 1 << 15;
  const auto g = graph::make_path(n);
  core::BallScheme scheme(g);
  const double mean = pair_mean(g, &scheme, 0, n - 1, 24, 61);
  const double cbrt_n = std::cbrt(static_cast<double>(n));
  const double log_n = std::log2(static_cast<double>(n));
  EXPECT_GT(mean, 0.3 * cbrt_n);              // not magically fast
  EXPECT_LT(mean, 3.0 * cbrt_n * log_n);      // Õ(n^{1/3})
}

TEST(TheoremShapes, BallBeatsUniformOnLargePath) {
  const NodeId n = 1 << 15;
  const auto g = graph::make_path(n);
  core::BallScheme ball(g);
  core::UniformScheme uniform(g);
  const double ball_mean = pair_mean(g, &ball, 0, n - 1, 24, 62);
  const double uniform_mean = pair_mean(g, &uniform, 0, n - 1, 24, 63);
  EXPECT_LT(ball_mean, 0.75 * uniform_mean);
}

TEST(TheoremShapes, BallSchemeUniversalAcrossFamilies) {
  // Õ(n^{1/3}) must hold on *every* family (universality); test a spread.
  Rng rng(71);
  for (const auto* name : {"cycle", "grid2d", "random_tree", "torus2d"}) {
    const auto g = graph::family(name).make(1 << 12, rng);
    core::BallScheme scheme(g);
    const auto pp = graph::peripheral_pair(g);
    const double mean = pair_mean(g, &scheme, pp.a, pp.b, 16, 72);
    const double n = static_cast<double>(g.num_nodes());
    const double bound = 4.0 * std::cbrt(n) * std::log2(n);
    EXPECT_LT(mean, bound) << name;
  }
}

// --- Greedy routing invariant: never slower than no augmentation ------------

TEST(TheoremShapes, AugmentationNeverHurts) {
  // Steps <= dist(s,t) for every scheme (distance strictly decreases).
  const auto g = graph::make_comb(64, 63);
  graph::TargetDistanceCache oracle(g, 4);
  const auto pp = graph::peripheral_pair(g);
  Rng rng(81);
  for (const auto& spec : {"uniform", "ml", "ball"}) {
    const auto scheme = core::make_scheme(spec, g, rng);
    const auto est = routing::estimate_pair(g, scheme.get(), oracle, pp.a,
                                            pp.b, 8, Rng(82));
    EXPECT_LE(est.max_steps, static_cast<double>(pp.distance)) << spec;
  }
}

}  // namespace
}  // namespace nav
