// test_determinism.cpp — the reproducibility contract: one master seed
// determines every number, regardless of thread count or schedule.
#include <gtest/gtest.h>

#include "api/experiment.hpp"
#include "core/scheme_factory.hpp"
#include "graph/families.hpp"
#include "graph/generators.hpp"
#include "routing/trial_runner.hpp"
#include "runtime/thread_pool.hpp"

namespace nav {
namespace {

TEST(Determinism, SweepIdenticalAcrossRuns) {
  const auto sweep = [] {
    return api::Experiment::on("cycle")
        .sizes({128, 256})
        .schemes({"uniform", "ball"})
        .pairs(4)
        .resamples(4)
        .seed(2024)
        .run();
  };
  const auto a = sweep();
  const auto b = sweep();
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.cells[i].greedy_diameter, b.cells[i].greedy_diameter)
        << i;
    EXPECT_DOUBLE_EQ(a.cells[i].mean_steps, b.cells[i].mean_steps) << i;
  }
}

TEST(Determinism, PairEstimateIndependentOfParallelism) {
  const auto g = graph::make_path(512);
  graph::DistanceMatrix oracle(g);
  Rng rng(5);
  const auto scheme = core::make_scheme("ball", g, rng);
  const auto par =
      routing::estimate_pair(g, scheme.get(), oracle, 0, 511, 24, Rng(6), true);
  const auto seq = routing::estimate_pair(g, scheme.get(), oracle, 0, 511, 24,
                                          Rng(6), false);
  EXPECT_DOUBLE_EQ(par.mean_steps, seq.mean_steps);
  EXPECT_DOUBLE_EQ(par.max_steps, seq.max_steps);
  EXPECT_DOUBLE_EQ(par.mean_long_links, seq.mean_long_links);
}

TEST(Determinism, RandomFamiliesReproducible) {
  for (const auto& fam : graph::all_families()) {
    Rng a(42), b(42);
    const auto g1 = fam.make(200, a);
    const auto g2 = fam.make(200, b);
    EXPECT_EQ(g1.edge_list(), g2.edge_list()) << fam.name;
  }
}

TEST(Determinism, SchemeSamplingReproducible) {
  const auto g = graph::make_grid2d(16, 16);
  Rng build(9);
  for (const auto& spec : {"uniform", "ml", "ball", "rank"}) {
    const auto scheme = core::make_scheme(spec, g, build);
    Rng r1(77), r2(77);
    for (int i = 0; i < 64; ++i) {
      const auto u = static_cast<graph::NodeId>(i % g.num_nodes());
      EXPECT_EQ(scheme->sample_contact(u, r1), scheme->sample_contact(u, r2))
          << spec;
    }
  }
}

}  // namespace
}  // namespace nav
