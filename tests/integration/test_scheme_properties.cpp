// test_scheme_properties.cpp — cross-cutting properties every scheme must
// satisfy, parameterized over scheme × family (paper §1's model contract).
#include <gtest/gtest.h>

#include <cmath>

#include "core/scheme_factory.hpp"
#include "graph/diameter.hpp"
#include "graph/families.hpp"
#include "routing/greedy_router.hpp"
#include "routing/trial_runner.hpp"

namespace nav {
namespace {

using Param = std::tuple<std::string, std::string>;  // (scheme, family)

class SchemeFamilyTest : public ::testing::TestWithParam<Param> {};

TEST_P(SchemeFamilyTest, ContactsValidAndRoutingBounded) {
  const auto& [spec, family_name] = GetParam();
  Rng rng(0xc0ffee);
  const auto g = graph::family(family_name).make(256, rng);
  const auto scheme = core::make_scheme(spec, g, rng);
  ASSERT_NE(scheme, nullptr);
  EXPECT_EQ(scheme->num_nodes(), g.num_nodes());

  // 1. Contacts are in range (or absent).
  Rng sample_rng(1);
  for (graph::NodeId u = 0; u < g.num_nodes(); u += 17) {
    for (int i = 0; i < 8; ++i) {
      const auto c = scheme->sample_contact(u, sample_rng);
      ASSERT_TRUE(c == core::kNoContact || c < g.num_nodes())
          << spec << "/" << family_name;
    }
  }

  // 2. Greedy routing terminates within dist(s, t) steps — the paper's
  //    strict-decrease argument, for every scheme and every family.
  graph::TargetDistanceCache oracle(g, 4);
  routing::GreedyRouter router(g, oracle);
  const auto pp = graph::peripheral_pair(g);
  Rng route_rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    // route() consumes a private stream; vary trials via child streams.
    const auto result =
        router.route(pp.a, pp.b, scheme.get(), route_rng.child(trial));
    EXPECT_TRUE(result.reached);
    EXPECT_LE(result.steps, pp.distance);
  }

  // 3. Exact probabilities, when implemented, form a sub-distribution.
  if (scheme->probability(0, 0) >= 0.0) {
    double total = 0.0;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      const double p = scheme->probability(0, v);
      ASSERT_GE(p, 0.0);
      ASSERT_LE(p, 1.0 + 1e-9);
      total += p;
    }
    EXPECT_LE(total, 1.0 + 1e-6) << spec << "/" << family_name;
  }
}

std::vector<Param> scheme_family_grid() {
  const std::vector<std::string> schemes = {"uniform", "ml",        "ball",
                                            "rank",    "ml-labelU", "growth"};
  const std::vector<std::string> families = {
      "path", "cycle", "caterpillar", "balanced_tree", "random_tree",
      "grid2d", "torus2d", "gnp", "random_regular", "interval",
      "ring_of_cliques"};
  std::vector<Param> grid;
  for (const auto& s : schemes)
    for (const auto& f : families) grid.emplace_back(s, f);
  return grid;
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string name =
      std::get<0>(info.param) + "_" + std::get<1>(info.param);
  for (auto& ch : name) {
    if (ch == '-' || ch == ':' || ch == '.') ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Grid, SchemeFamilyTest,
                         ::testing::ValuesIn(scheme_family_grid()), param_name);

}  // namespace
}  // namespace nav
