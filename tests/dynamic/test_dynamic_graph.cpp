// test_dynamic_graph.cpp — the epoch/address contract of DynamicGraph: edge
// toggles rebuild the CSR in place (references stay valid), the epoch bumps
// only on effective change, kFailNode expands to edge removals, and
// listeners observe the post-mutation graph with a normalised delta.
#include "dynamic/dynamic_graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "graph/families.hpp"
#include "graph/graph.hpp"
#include "runtime/rng.hpp"

namespace nav::dynamic {
namespace {

Graph small_cycle(NodeId n = 8) {
  Rng rng(1);
  return graph::family("cycle").make(n, rng);
}

TEST(DynamicGraph, StartsAtEpochZeroWithSortedEdges) {
  DynamicGraph dyn(small_cycle());
  EXPECT_EQ(dyn.epoch(), 0u);
  const auto edges = dyn.edges();
  ASSERT_EQ(edges.size(), 8u);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_LT(edges[i].first, edges[i].second);
    if (i > 0) EXPECT_LT(edges[i - 1], edges[i]);
  }
}

TEST(DynamicGraph, AddAndRemoveToggleMembershipAndEpoch) {
  DynamicGraph dyn(small_cycle());
  EXPECT_FALSE(dyn.has_edge(0, 4));

  const EdgeMutation add{EdgeMutation::Op::kAddEdge, 0, 4};
  const auto d1 = dyn.apply({&add, 1});
  EXPECT_EQ(d1.epoch, 1u);
  EXPECT_EQ(d1.edges_added, 1u);
  EXPECT_EQ(d1.edges_removed, 0u);
  EXPECT_TRUE(dyn.has_edge(0, 4));
  EXPECT_TRUE(dyn.has_edge(4, 0));  // symmetric membership

  const EdgeMutation remove{EdgeMutation::Op::kRemoveEdge, 4, 0};
  const auto d2 = dyn.apply({&remove, 1});
  EXPECT_EQ(d2.epoch, 2u);
  EXPECT_EQ(d2.edges_removed, 1u);
  EXPECT_FALSE(dyn.has_edge(0, 4));
  EXPECT_EQ(dyn.epoch(), 2u);
}

TEST(DynamicGraph, NoOpBatchDoesNotBumpEpoch) {
  DynamicGraph dyn(small_cycle());
  // Adding an existing edge and removing an absent one are both no-ops.
  const std::vector<EdgeMutation> batch = {
      {EdgeMutation::Op::kAddEdge, 0, 1},
      {EdgeMutation::Op::kRemoveEdge, 0, 5},
  };
  const auto delta = dyn.apply(batch);
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.requested, 2u);
  EXPECT_EQ(dyn.epoch(), 0u);
}

TEST(DynamicGraph, GraphReferenceIsAddressStableAcrossApply) {
  DynamicGraph dyn(small_cycle());
  const Graph& ref = dyn.graph();
  const Graph* address = &ref;
  const auto m_before = ref.num_edges();

  const EdgeMutation add{EdgeMutation::Op::kAddEdge, 1, 5};
  (void)dyn.apply({&add, 1});

  // Same object, new contents: holders of `const Graph&` observe the
  // mutation without rebinding.
  EXPECT_EQ(&dyn.graph(), address);
  EXPECT_EQ(ref.num_edges(), m_before + 1);
}

TEST(DynamicGraph, FailNodeExpandsToIncidentEdgeRemovals) {
  DynamicGraph dyn(small_cycle());
  const EdgeMutation fail{EdgeMutation::Op::kFailNode, 3, 0};
  const auto delta = dyn.apply({&fail, 1});

  // Node 3 on a cycle has exactly two incident edges; listeners only ever
  // see edge events, normalised to u < v.
  EXPECT_EQ(delta.edges_removed, 2u);
  EXPECT_EQ(delta.events.size(), 2u);
  for (const auto& event : delta.events) {
    EXPECT_EQ(event.op, EdgeMutation::Op::kRemoveEdge);
    EXPECT_LT(event.u, event.v);
    EXPECT_TRUE(event.u == 3 || event.v == 3);
  }
  EXPECT_FALSE(dyn.has_edge(2, 3));
  EXPECT_FALSE(dyn.has_edge(3, 4));
  EXPECT_EQ(dyn.graph().degree(3), 0u);  // isolated, not deleted
  EXPECT_EQ(dyn.graph().num_nodes(), 8u);
}

TEST(DynamicGraph, RejectsOutOfRangeAndSelfLoops) {
  DynamicGraph dyn(small_cycle());
  const EdgeMutation out_of_range{EdgeMutation::Op::kAddEdge, 0, 99};
  EXPECT_THROW((void)dyn.apply({&out_of_range, 1}), std::invalid_argument);
  const EdgeMutation self_loop{EdgeMutation::Op::kAddEdge, 2, 2};
  EXPECT_THROW((void)dyn.apply({&self_loop, 1}), std::invalid_argument);
  EXPECT_EQ(dyn.epoch(), 0u);
}

class RecordingListener final : public MutationListener {
 public:
  void on_mutation(const DynamicGraph& g, const MutationDelta& delta) override {
    ++calls;
    last_epoch = delta.epoch;
    // The contract: the CSR is already rebuilt when listeners run.
    edges_at_callback = g.graph().num_edges();
  }
  int calls = 0;
  std::uint64_t last_epoch = 0;
  std::size_t edges_at_callback = 0;
};

TEST(DynamicGraph, ListenersSeePostMutationStateAndUnsubscribe) {
  DynamicGraph dyn(small_cycle());
  RecordingListener listener;
  dyn.subscribe(listener);

  const EdgeMutation add{EdgeMutation::Op::kAddEdge, 0, 3};
  (void)dyn.apply({&add, 1});
  EXPECT_EQ(listener.calls, 1);
  EXPECT_EQ(listener.last_epoch, 1u);
  EXPECT_EQ(listener.edges_at_callback, 9u);

  // No-op batches notify nobody.
  const EdgeMutation noop{EdgeMutation::Op::kAddEdge, 0, 3};
  (void)dyn.apply({&noop, 1});
  EXPECT_EQ(listener.calls, 1);

  dyn.unsubscribe(listener);
  const EdgeMutation remove{EdgeMutation::Op::kRemoveEdge, 0, 3};
  (void)dyn.apply({&remove, 1});
  EXPECT_EQ(listener.calls, 1);
}

}  // namespace
}  // namespace nav::dynamic
