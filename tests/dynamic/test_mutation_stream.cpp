// test_mutation_stream.cpp — the perturbation registry contract: specs
// parse strictly, streams are deterministic under one seed, reset() replays
// the process, one-shots arm exactly once, and JSONL traces round-trip
// through save_mutation_trace / load_mutation_trace into a replay stream.
#include "dynamic/mutation_stream.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/families.hpp"
#include "runtime/rng.hpp"

namespace nav::dynamic {
namespace {

DynamicGraph make_dyn(const std::string& family = "torus2d", NodeId n = 256) {
  Rng rng(0xD111);
  return DynamicGraph(graph::family(family).make(n, rng));
}

bool same_events(const std::vector<EdgeMutation>& a,
                 const std::vector<EdgeMutation>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].op != b[i].op || a[i].u != b[i].u || a[i].v != b[i].v) {
      return false;
    }
  }
  return true;
}

TEST(MutationRegistry, CatalogListsEverySpecFamily) {
  const auto& catalog = mutation_catalog();
  ASSERT_GE(catalog.size(), 4u);
  std::set<std::string> prefixes;
  for (const auto& info : catalog) {
    prefixes.insert(info.spec.substr(0, info.spec.find(':')));
    EXPECT_FALSE(info.description.empty()) << info.spec;
  }
  for (const auto* expected : {"churn", "fail", "targeted", "trace"}) {
    EXPECT_TRUE(prefixes.count(expected)) << expected;
  }
}

TEST(MutationRegistry, RejectsUnknownAndMalformedSpecs) {
  // "none" is the driver-side sentinel for "no stream", never a stream.
  for (const auto* bad : {"none", "melt", "churn", "churn:x", "churn:-1",
                          "fail", "fail:x", "targeted", "targeted:x", ""}) {
    EXPECT_THROW((void)make_mutation_stream(bad), std::invalid_argument)
        << bad;
  }
}

TEST(ChurnStream, DeterministicAndReplaysAfterReset) {
  auto dyn_a = make_dyn();
  auto dyn_b = make_dyn();
  auto stream = make_mutation_stream("churn:4");
  EXPECT_EQ(stream->name(), "churn:4");

  std::vector<std::vector<EdgeMutation>> first;
  for (int i = 0; i < 5; ++i) {
    Rng rng = Rng(0xC0).child(i);
    first.push_back(stream->step(dyn_a, rng));
    (void)dyn_a.apply(first.back());
  }
  stream->reset();
  for (int i = 0; i < 5; ++i) {
    Rng rng = Rng(0xC0).child(i);
    const auto replay = stream->step(dyn_b, rng);
    EXPECT_TRUE(same_events(first[i], replay)) << "step " << i;
    (void)dyn_b.apply(replay);
  }
}

TEST(ChurnStream, FractionalRateContributesBernoulliExtra) {
  auto dyn = make_dyn();
  auto stream = make_mutation_stream("churn:0.5");
  std::size_t total = 0;
  for (int i = 0; i < 64; ++i) {
    Rng rng = Rng(0x5E).child(i);
    total += stream->step(dyn, rng).size();
  }
  // Expectation is 32; anywhere inside (0, 64) proves the coin exists and
  // isn't stuck at 0 or 1.
  EXPECT_GT(total, 8u);
  EXPECT_LT(total, 56u);
}

TEST(FailStream, OneShotRemovesTheRequestedFraction) {
  auto dyn = make_dyn();
  const auto m = dyn.edges().size();
  auto stream = make_mutation_stream("fail:0.1");

  Rng rng0(0xF0);
  const auto batch = stream->step(dyn, rng0);
  EXPECT_EQ(batch.size(), m / 10);
  std::set<std::pair<NodeId, NodeId>> distinct;
  for (const auto& event : batch) {
    EXPECT_EQ(event.op, EdgeMutation::Op::kRemoveEdge);
    EXPECT_TRUE(dyn.has_edge(event.u, event.v));
    distinct.insert({event.u, event.v});
  }
  EXPECT_EQ(distinct.size(), batch.size());  // distinct uniform edges

  // Later steps are empty; reset() re-arms the shot.
  Rng rng1(0xF1);
  EXPECT_TRUE(stream->step(dyn, rng1).empty());
  stream->reset();
  Rng rng2(0xF0);
  EXPECT_EQ(stream->step(dyn, rng2).size(), m / 10);
}

TEST(TargetedStream, FailsTheHighestDegreeNodes) {
  // A star inside a path: node 0 has degree 5, everyone else at most 2.
  DynamicGraph dyn(Graph(
      6, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {1, 2}}));
  auto stream = make_mutation_stream("targeted:1");
  Rng rng(0x7A);
  const auto batch = stream->step(dyn, rng);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].op, EdgeMutation::Op::kFailNode);
  EXPECT_EQ(batch[0].u, 0u);

  const auto delta = dyn.apply(batch);
  EXPECT_EQ(delta.edges_removed, 5u);
  EXPECT_EQ(dyn.graph().degree(0), 0u);

  // The attack is one-shot.
  Rng rng2(0x7B);
  EXPECT_TRUE(stream->step(dyn, rng2).empty());
}

TEST(TraceStream, SaveLoadRoundTripAndReplay) {
  const std::string path = ::testing::TempDir() + "mutation_trace.jsonl";
  const std::vector<std::vector<EdgeMutation>> steps = {
      {{EdgeMutation::Op::kAddEdge, 0, 7},
       {EdgeMutation::Op::kRemoveEdge, 1, 2}},
      {},  // a quiet step must survive the round trip
      {{EdgeMutation::Op::kFailNode, 3, 0}},
  };
  save_mutation_trace(path, steps);

  const auto loaded = load_mutation_trace(path);
  ASSERT_EQ(loaded.size(), steps.size());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    EXPECT_TRUE(same_events(steps[i], loaded[i])) << "step " << i;
  }

  auto dyn = make_dyn("cycle", 16);
  auto stream = make_mutation_stream("trace:" + path);
  Rng rng(0);
  for (std::size_t i = 0; i < steps.size(); ++i) {
    EXPECT_TRUE(same_events(stream->step(dyn, rng), steps[i])) << i;
  }
  // Drained after the last recorded step; reset() rewinds to step 0.
  EXPECT_TRUE(stream->step(dyn, rng).empty());
  stream->reset();
  EXPECT_TRUE(same_events(stream->step(dyn, rng), steps[0]));
  std::remove(path.c_str());
}

TEST(TraceStream, MissingFileAndMalformedLinesThrow) {
  EXPECT_THROW((void)load_mutation_trace("/nonexistent/trace.jsonl"),
               std::runtime_error);
  EXPECT_THROW((void)make_mutation_stream("trace:/nonexistent/trace.jsonl"),
               std::runtime_error);
}

}  // namespace
}  // namespace nav::dynamic
