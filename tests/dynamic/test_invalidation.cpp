// test_invalidation.cpp — the correctness contract of DynamicOracle:
// incremental invalidation serves rows bit-identical to the full-flush
// reference AND to a cold rebuild, across graph families × churn rates and
// both storage backends; the tightness test provably retains rows a flush
// would drop; and the 16-bit watermark survives >2^16 mutations through the
// defensive wrap flush. The closed-loop TrafficDriver contract ("churn:0"
// reproduces open-loop routes bit for bit) rides along, since it is the
// end-to-end face of the same invariant.
#include "dynamic/invalidation.hpp"

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "api/route_service.hpp"
#include "core/scheme_factory.hpp"
#include "dynamic/mutation_stream.hpp"
#include "graph/families.hpp"
#include "routing/router_factory.hpp"
#include "workload/traffic_driver.hpp"
#include "workload/workload.hpp"

namespace nav::dynamic {
namespace {

using graph::Dist;

// An oracle-free reference: BFS from scratch on the current CSR.
graph::DistVecPtr cold_row(const Graph& g, NodeId target) {
  graph::TargetDistanceCache fresh(g, 1);
  return fresh.distances_to(target);
}

bool rows_equal(const graph::DistVecPtr& a, const graph::DistVecPtr& b) {
  return *a == static_cast<std::span<const Dist>>(*b);
}

struct DifferentialOutcome {
  InvalidationStats incremental;
  InvalidationStats full_flush;
};

// Drives one (family, churn) cell: the same mutation trajectory applied to
// two DynamicGraphs, one watched by a kIncremental oracle and one by the
// kFullFlush reference. Every step, probe rows from both are compared
// against each other and against a cold rebuild.
DifferentialOutcome run_differential(const std::string& family,
                                     const std::string& churn_spec,
                                     DynamicOracle::Backend backend,
                                     NodeId n = 256) {
  Rng graph_rng_a(0x1D);
  Rng graph_rng_b(0x1D);
  DynamicGraph dyn_inc(graph::family(family).make(n, graph_rng_a));
  DynamicGraph dyn_flush(graph::family(family).make(n, graph_rng_b));

  DynamicOracle::Options inc_options;
  inc_options.mode = DynamicOracle::Mode::kIncremental;
  inc_options.backend = backend;
  DynamicOracle oracle_inc(dyn_inc, inc_options);

  DynamicOracle::Options flush_options;
  flush_options.mode = DynamicOracle::Mode::kFullFlush;
  flush_options.backend = backend;
  DynamicOracle oracle_flush(dyn_flush, flush_options);

  auto stream = make_mutation_stream(churn_spec);
  const std::vector<NodeId> probes = {0, static_cast<NodeId>(n / 3),
                                      static_cast<NodeId>(n / 2),
                                      static_cast<NodeId>(n - 1)};
  // Warm both oracles so there are resident rows to invalidate or retain.
  for (const auto target : probes) {
    (void)oracle_inc.distances_to(target);
    (void)oracle_flush.distances_to(target);
  }

  for (int step = 0; step < 8; ++step) {
    Rng rng = Rng(0xD1FF).child(step);
    const auto batch = stream->step(dyn_inc, rng);
    const auto delta = dyn_inc.apply(batch);
    // Replaying the *effective* events keeps the twin bit-identical even
    // though churn sampled against dyn_inc's state.
    const auto twin = dyn_flush.apply(delta.events);
    EXPECT_EQ(twin.events.size(), delta.events.size());

    for (const auto target : probes) {
      const auto row_inc = oracle_inc.distances_to(target);
      const auto row_flush = oracle_flush.distances_to(target);
      const auto row_cold = cold_row(dyn_inc.graph(), target);
      EXPECT_TRUE(rows_equal(row_inc, row_flush))
          << family << " " << churn_spec << " step " << step << " target "
          << target;
      EXPECT_TRUE(rows_equal(row_inc, row_cold))
          << family << " " << churn_spec << " step " << step << " target "
          << target;
    }
  }
  return {oracle_inc.stats(), oracle_flush.stats()};
}

class InvalidationDifferential
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(InvalidationDifferential, MatchesFullFlushAndColdRebuild) {
  const auto& [family, churn] = GetParam();
  for (const auto backend :
       {DynamicOracle::Backend::kMatrix, DynamicOracle::Backend::kCache}) {
    const auto outcome = run_differential(family, churn, backend);
    EXPECT_EQ(outcome.incremental.mutations_seen,
              outcome.full_flush.mutations_seen);
    // The reference drops everything each mutation; the tightness test must
    // never invalidate more than that.
    EXPECT_LE(outcome.incremental.targets_invalidated,
              outcome.full_flush.targets_invalidated);
    EXPECT_EQ(outcome.full_flush.targets_retained, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesTimesChurn, InvalidationDifferential,
    ::testing::Combine(::testing::Values("torus2d", "gnp", "random_regular"),
                       ::testing::Values("churn:1", "churn:4")),
    [](const auto& info) {
      auto name = std::get<0>(info.param) + "_" + std::get<1>(info.param);
      for (auto& c : name) {
        if (c == ':') c = '_';
      }
      return name;
    });

TEST(Invalidation, TightnessRetainsRowsAFlushWouldDrop) {
  // A long cycle plus one far-away chord: rows for targets near node 0 have
  // both chord endpoints on equal BFS levels only rarely, so slack events
  // exist and retention is observable. churn:1 over many steps guarantees
  // some slack event hits a resident row.
  const auto outcome = run_differential("torus2d", "churn:1",
                                        DynamicOracle::Backend::kMatrix, 1024);
  EXPECT_GT(outcome.incremental.targets_retained, 0u);
  EXPECT_LT(outcome.incremental.targets_invalidated,
            outcome.full_flush.targets_invalidated);
}

TEST(Invalidation, FailStreamDisconnectionStaysExact) {
  // Heavy one-shot failure can disconnect the graph: rows must agree with
  // the cold rebuild including kInfDist entries.
  const auto outcome = run_differential("random_tree", "fail:0.3",
                                        DynamicOracle::Backend::kCache, 128);
  EXPECT_GE(outcome.incremental.mutations_seen, 1u);
}

TEST(Invalidation, WatermarkSurvivesEpochWraparound) {
  // >2^16 effective mutations on a tiny cycle: toggle one chord back and
  // forth. The 16-bit generation must wrap at least once, the defensive
  // wrap flush must fire, and rows must still match a cold rebuild after.
  constexpr NodeId n = 32;
  Rng graph_rng(3);
  DynamicGraph dyn(graph::family("cycle").make(n, graph_rng));
  DynamicOracle::Options options;
  options.backend = DynamicOracle::Backend::kMatrix;
  DynamicOracle oracle(dyn, options);
  (void)oracle.distances_to(0);

  const std::uint16_t watermark_before = oracle.watermark();
  constexpr int kSteps = (1 << 16) + 64;
  for (int i = 0; i < kSteps; ++i) {
    const EdgeMutation toggle{i % 2 == 0 ? EdgeMutation::Op::kAddEdge
                                         : EdgeMutation::Op::kRemoveEdge,
                              0, n / 2};
    const auto delta = dyn.apply({&toggle, 1});
    ASSERT_FALSE(delta.empty());
  }

  const auto stats = oracle.stats();
  EXPECT_EQ(stats.mutations_seen, static_cast<std::uint64_t>(kSteps));
  EXPECT_GE(stats.wrap_flushes, 1u);
  // 64 extra steps past the wrap: the generation counter went round.
  EXPECT_LT(oracle.watermark(), watermark_before + 1000u);

  for (const NodeId target : {NodeId{0}, NodeId{7}, NodeId{n - 1}}) {
    EXPECT_TRUE(rows_equal(oracle.distances_to(target),
                           cold_row(dyn.graph(), target)))
        << "target " << target;
  }
}

TEST(Invalidation, ClosedLoopChurnZeroMatchesOpenLoopBitForBit) {
  // TrafficDriver's dynamic mode collects each batch before the mutation
  // point (closed loop). With a mutation-free stream the routed results
  // must equal the open-loop run exactly — same demand, same rng streams,
  // same routes.
  const NodeId n = 400;
  auto make_report = [&](bool closed_loop) {
    Rng graph_rng(0x5eed);
    DynamicGraph dyn(graph::family("torus2d").make(n, graph_rng));
    const Graph& g = dyn.graph();
    DynamicOracle oracle(dyn);
    Rng scheme_rng(0x5eed);
    const auto scheme = core::make_scheme("ball", g, scheme_rng);
    const auto router = routing::make_router("greedy", g, oracle);
    api::RouteServiceOptions options;
    api::RouteService service(g, oracle, scheme.get(), *router, options);
    const auto demand = workload::make_workload("zipf:1.1", g, Rng(11));
    workload::TrafficOptions traffic;
    traffic.batches = 4;
    traffic.batch_size = 32;
    traffic.keep_results = true;
    auto stream = make_mutation_stream("churn:0");
    if (closed_loop) {
      traffic.dynamic_graph = &dyn;
      traffic.mutations = stream.get();
    }
    workload::TrafficDriver driver(service, *demand, traffic);
    return driver.run(Rng(17));
  };

  const auto open = make_report(false);
  const auto closed = make_report(true);
  ASSERT_EQ(open.results.size(), closed.results.size());
  EXPECT_EQ(closed.mutation_events, 0u);
  EXPECT_EQ(closed.final_epoch, 0u);
  for (std::size_t b = 0; b < open.results.size(); ++b) {
    ASSERT_EQ(open.results[b].size(), closed.results[b].size()) << b;
    for (std::size_t r = 0; r < open.results[b].size(); ++r) {
      const auto& lhs = open.results[b][r];
      const auto& rhs = closed.results[b][r];
      EXPECT_EQ(lhs.steps, rhs.steps) << b << ":" << r;
      EXPECT_EQ(lhs.long_links_used, rhs.long_links_used) << b << ":" << r;
      EXPECT_EQ(lhs.initial_distance, rhs.initial_distance) << b << ":" << r;
      EXPECT_EQ(lhs.reached, rhs.reached) << b << ":" << r;
    }
  }
}

}  // namespace
}  // namespace nav::dynamic
