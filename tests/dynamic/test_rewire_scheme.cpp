// test_rewire_scheme.cpp — the self-organization contract: RewireScheme is
// a realised augmentation (exact indicator probabilities, deterministic
// sample_contact), learn() only consumes traced routes, losing nodes
// re-draw deterministically, and the registry spelling "rewire:uniform"
// reaches it through core::make_scheme.
#include "dynamic/rewire_scheme.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/scheme_factory.hpp"
#include "graph/distance_oracle.hpp"
#include "graph/families.hpp"
#include "routing/router_factory.hpp"

namespace nav::dynamic {
namespace {

using graph::Graph;
using graph::NodeId;

Graph make_cycle(NodeId n = 128) {
  Rng rng(2);
  return graph::family("cycle").make(n, rng);
}

TEST(RewireScheme, IsARealisedAugmentation) {
  const auto g = make_cycle();
  Rng rng(0x11);
  const auto scheme = make_rewire_scheme("rewire:uniform", g, rng);
  EXPECT_EQ(scheme->num_nodes(), g.num_nodes());
  EXPECT_EQ(scheme->name(), "rewire:uniform");

  const auto& contacts = scheme->contacts();
  ASSERT_EQ(contacts.size(), g.num_nodes());
  Rng probe(0x22);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_NE(contacts[u], u);  // never a self link
    // sample_contact is deterministic — the realised link, not a draw.
    EXPECT_EQ(scheme->sample_contact(u, probe), contacts[u]);
    // probability() is the exact indicator of the realised link.
    EXPECT_DOUBLE_EQ(scheme->probability(u, contacts[u]), 1.0);
    const NodeId other = contacts[u] == 0 && u != 1 ? 1 : 0;
    if (other != contacts[u] && other != u) {
      EXPECT_DOUBLE_EQ(scheme->probability(u, other), 0.0);
    }
  }
}

TEST(RewireScheme, RegistryDispatchesAndRejects) {
  const auto g = make_cycle(32);
  Rng rng(0x33);
  const auto via_registry = core::make_scheme("rewire:uniform", g, rng);
  EXPECT_EQ(via_registry->name(), "rewire:uniform");

  Rng rng2(0x34);
  EXPECT_THROW((void)make_rewire_scheme("rewire:greedy", g, rng2),
               std::invalid_argument);
  EXPECT_THROW((void)make_rewire_scheme("rewire", g, rng2),
               std::invalid_argument);
}

TEST(RewireScheme, UntracedRoutesContributeNothing) {
  const auto g = make_cycle();
  Rng rng(0x44);
  const auto scheme = make_rewire_scheme("rewire:uniform", g, rng);
  const auto contacts_before = scheme->contacts();

  graph::DistanceMatrix oracle(g);
  const auto router = routing::make_router("greedy", g, oracle);
  std::vector<routing::RouteResult> results;
  Rng route_rng(0x55);
  for (int i = 0; i < 32; ++i) {
    results.push_back(router->route(0, 64, scheme.get(),
                                    route_rng.child(i),
                                    /*record_trace=*/false));
  }
  Rng learn_rng(0x66);
  const auto report = scheme->learn(results, learn_rng);
  EXPECT_EQ(report.traced_routes, 0u);
  EXPECT_EQ(report.nodes_rewired, 0u);
  EXPECT_EQ(scheme->contacts(), contacts_before);
}

// The driver loop of bench_e13_dynamic section E13d, shrunk: route with
// traces, learn, repeat — identical seeds must give identical trajectories,
// and evidence must actually accumulate (successes + failures > 0, some
// node eventually re-draws on a cycle where most initial links are junk).
TEST(RewireScheme, LearnLoopIsDeterministicAndRewires) {
  const auto g = make_cycle(256);
  graph::DistanceMatrix oracle(g);

  auto run_loop = [&]() {
    Rng scheme_rng(0x77);
    auto scheme = make_rewire_scheme("rewire:uniform", g, scheme_rng);
    const auto router = routing::make_router("greedy", g, oracle);
    std::size_t total_rewired = 0, total_evidence = 0;
    for (int round = 0; round < 4; ++round) {
      std::vector<routing::RouteResult> results;
      Rng route_rng = Rng(0x88).child(round);
      Rng pair_rng = Rng(0x99).child(round);
      for (int i = 0; i < 128; ++i) {
        const auto s = static_cast<NodeId>(pair_rng.next_below(256));
        auto t = static_cast<NodeId>(pair_rng.next_below(256));
        if (t == s) t = (t + 1) % 256;
        results.push_back(router->route(s, t, scheme.get(),
                                        route_rng.child(i),
                                        /*record_trace=*/true));
      }
      Rng learn_rng = Rng(0xAA).child(round);
      const auto report = scheme->learn(results, learn_rng);
      EXPECT_EQ(report.traced_routes, results.size());
      total_rewired += report.nodes_rewired;
      total_evidence += report.successes + report.failures;
    }
    return std::make_pair(scheme->contacts(), std::make_pair(total_rewired,
                                                             total_evidence));
  };

  const auto [contacts_a, counts_a] = run_loop();
  const auto [contacts_b, counts_b] = run_loop();
  EXPECT_EQ(contacts_a, contacts_b);  // fully deterministic trajectory
  EXPECT_EQ(counts_a, counts_b);
  EXPECT_GT(counts_a.second, 0u);  // evidence accumulated
  EXPECT_GT(counts_a.first, 0u);   // and some losers re-drew
}

}  // namespace
}  // namespace nav::dynamic
