// test_trace_disabled.cpp — proves the NAV_TRACE=0 configuration compiles
// span sites to no-ops. This TU force-defines NAV_TRACE 0 BEFORE including
// trace.hpp (the header only defaults the macro, it never overrides), so the
// NAV_OBS_SPAN macro here expands to NullSpan even though the rest of the
// test binary is built with tracing on — exactly the mixed-TU situation the
// always-defined ScopedSpan/NullSpan pair keeps ODR-safe.
#define NAV_TRACE 0
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <type_traits>

namespace nav::obs {
namespace {

// The stand-in must be free of state: an empty class, trivially
// constructible and destructible, so the optimiser erases the span site.
static_assert(std::is_empty_v<NullSpan>);
static_assert(std::is_trivially_destructible_v<NullSpan>);

// The macro must have selected NullSpan in this TU.
#if NAV_TRACE
#error "NAV_TRACE was force-defined to 0 in this TU"
#endif

TEST(TraceDisabled, SpanSitesRecordNothingEvenWhenEnabled) {
  Tracer::instance().clear();
  Tracer::instance().set_enabled(true);
  {
    NAV_OBS_SPAN("compiled-out");
    NAV_OBS_SPAN("also-gone", "n", 3.0);
  }
  EXPECT_EQ(Tracer::instance().event_count(), 0u);
  Tracer::instance().set_enabled(false);
}

TEST(TraceDisabled, NullSpanAcceptsTheFullScopedSpanShape) {
  // Same constructor/set_arg surface as ScopedSpan: instrumented code needs
  // no #if around argument use.
  NullSpan plain("name");
  NullSpan with_arg("name", "items", 9.0);
  with_arg.set_arg("items", 10.0);
  SUCCEED();
}

}  // namespace
}  // namespace nav::obs
