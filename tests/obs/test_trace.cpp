// test_trace.cpp — the span tracer: runtime gate, ring wrap accounting,
// multi-thread rings, and both exporters. The Tracer is a process-wide
// singleton, so every test clears it and restores the disabled state.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>

namespace nav::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
  }
  void TearDown() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
  }
};

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  { NAV_OBS_SPAN("quiet"); }
  EXPECT_EQ(Tracer::instance().event_count(), 0u);
}

TEST_F(TraceTest, EnabledSpanRecordsOnDestruction) {
  Tracer::instance().set_enabled(true);
  {
    NAV_OBS_SPAN("work", "items", 7.0);
    EXPECT_EQ(Tracer::instance().event_count(), 0u);  // still open
  }
  EXPECT_EQ(Tracer::instance().event_count(), 1u);
}

TEST_F(TraceTest, SpanOpenedWhileDisabledDoesNotRecord) {
  // The gate is sampled at span ENTRY: enabling mid-span must not record a
  // span whose start was never captured.
  ScopedSpan span("late");
  Tracer::instance().set_enabled(true);
  {
    ScopedSpan inner("inner");
  }
  Tracer::instance().set_enabled(false);
  EXPECT_EQ(Tracer::instance().event_count(), 1u);  // only "inner"
}

TEST_F(TraceTest, ExplicitRecordCarriesFields) {
  Tracer::instance().set_enabled(true);
  Tracer::instance().record("explicit", 1000, 2500, "n", 42.0);
  std::ostringstream out;
  Tracer::instance().write_jsonl(out);
  const std::string line = out.str();
  EXPECT_NE(line.find("\"explicit\""), std::string::npos);
  EXPECT_NE(line.find("\"n\""), std::string::npos);
  EXPECT_NE(line.find("42"), std::string::npos);
}

TEST_F(TraceTest, RingWrapDropsOldestAndCounts) {
  Tracer::instance().set_ring_capacity(16);
  Tracer::instance().set_enabled(true);
  // A fresh thread gets a fresh (capacity-16) ring; overfill it 3x.
  std::thread t([] {
    for (int i = 0; i < 48; ++i) {
      Tracer::instance().record("spin", 0, 1);
    }
  });
  t.join();
  EXPECT_EQ(Tracer::instance().event_count(), 16u);
  EXPECT_EQ(Tracer::instance().dropped_events(), 32u);
  Tracer::instance().set_ring_capacity(16384);  // restore the default
}

TEST_F(TraceTest, ClearDiscardsEventsAndDropCounts) {
  Tracer::instance().set_enabled(true);
  Tracer::instance().record("gone", 0, 1);
  Tracer::instance().clear();
  EXPECT_EQ(Tracer::instance().event_count(), 0u);
  EXPECT_EQ(Tracer::instance().dropped_events(), 0u);
}

TEST_F(TraceTest, ThreadsGetDistinctTids) {
  Tracer::instance().set_enabled(true);
  Tracer::instance().record("main-thread", 0, 1);
  std::thread t([] { Tracer::instance().record("worker-thread", 0, 1); });
  t.join();
  std::ostringstream out;
  Tracer::instance().write_jsonl(out);
  const std::string text = out.str();
  // Two events, two distinct "tid": fields.
  EXPECT_NE(text.find("main-thread"), std::string::npos);
  EXPECT_NE(text.find("worker-thread"), std::string::npos);
  std::size_t tid_fields = 0;
  for (std::size_t pos = 0;
       (pos = text.find("\"tid\":", pos)) != std::string::npos; ++pos) {
    ++tid_fields;
  }
  EXPECT_EQ(tid_fields, 2u);
}

TEST_F(TraceTest, ChromeTraceIsWellFormedEnvelope) {
  Tracer::instance().set_enabled(true);
  Tracer::instance().record("paint", 1000, 3000, "pixels", 64.0);
  std::ostringstream out;
  Tracer::instance().write_chrome_trace(out);
  const std::string text = out.str();
  EXPECT_EQ(text.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"paint\""), std::string::npos);
  // 1000ns start -> 1 microsecond timestamp; 2000ns duration -> 2us.
  EXPECT_NE(text.find("\"ts\":1"), std::string::npos);
  EXPECT_NE(text.find("\"dur\":2"), std::string::npos);
  EXPECT_NE(text.find("\"args\":{\"pixels\":64}"), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\""), std::string::npos);
}

TEST_F(TraceTest, NowNsIsMonotone) {
  const auto a = Tracer::now_ns();
  const auto b = Tracer::now_ns();
  EXPECT_LE(a, b);
}

TEST_F(TraceTest, SetArgAttachesLate) {
  Tracer::instance().set_enabled(true);
  {
    ScopedSpan span("sized-later");
    span.set_arg("bytes", 128.0);
  }
  std::ostringstream out;
  Tracer::instance().write_jsonl(out);
  EXPECT_NE(out.str().find("\"bytes\""), std::string::npos);
}

TEST_F(TraceTest, ConcurrentRecordingIsSafe) {
  Tracer::instance().set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        NAV_OBS_SPAN("burst");
      }
    });
  }
  for (auto& t : threads) t.join();
  // Each fresh thread ring holds 16384 >= 500 events: nothing drops.
  EXPECT_GE(Tracer::instance().event_count(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace nav::obs
