// test_metrics.cpp — behaviour of the obs metrics registry: registration,
// dedup, sharded aggregation, snapshot math, and the text writers. The
// multithreaded cases double as the TSan surface for the wait-free shard
// protocol (CI runs this binary under -fsanitize=thread).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

namespace nav::obs {
namespace {

TEST(Registry, CounterStartsAtZeroAndAccumulates) {
  Registry reg;
  const Counter c = reg.counter("requests");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Registry, SameNameReturnsSameCell) {
  Registry reg;
  const Counter a = reg.counter("shared");
  const Counter b = reg.counter("shared");
  a.inc(3);
  b.inc(4);
  EXPECT_EQ(a.value(), 7u);
  EXPECT_EQ(b.value(), 7u);
  EXPECT_EQ(reg.metric_count(), 1u);
}

TEST(Registry, KindMismatchThrows) {
  Registry reg;
  (void)reg.counter("x");
  EXPECT_THROW((void)reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("x", 0, 1, 4), std::invalid_argument);
}

TEST(Registry, HistogramShapeMismatchThrows) {
  Registry reg;
  (void)reg.histogram("h", 0.0, 10.0, 5);
  EXPECT_NO_THROW((void)reg.histogram("h", 0.0, 10.0, 5));
  EXPECT_THROW((void)reg.histogram("h", 0.0, 20.0, 5), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("h", 0.0, 10.0, 6), std::invalid_argument);
}

TEST(Registry, DefaultConstructedHandlesAreNoOps) {
  const Counter c;
  const Gauge g;
  const HistogramHandle h;
  c.inc();
  g.set(7);
  g.add(1);
  g.set_max(99);
  h.observe(0.5);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
}

TEST(Registry, GaugeSetAddSubSetMax) {
  Registry reg;
  const Gauge g = reg.gauge("depth");
  g.set(10);
  EXPECT_EQ(g.value(), 10);
  g.add(5);
  g.sub(3);
  EXPECT_EQ(g.value(), 12);
  const Gauge peak = reg.gauge("peak");
  peak.set_max(12);
  peak.set_max(7);  // below: no change
  EXPECT_EQ(peak.value(), 12);
  peak.set_max(40);
  EXPECT_EQ(peak.value(), 40);
  // Gauges can go negative (they are signed instantaneous values).
  g.sub(100);
  EXPECT_EQ(g.value(), -88);
}

TEST(Registry, HistogramBinsUnderflowOverflowSum) {
  Registry reg;
  const HistogramHandle h = reg.histogram("lat", 0.0, 10.0, 10);
  h.observe(-1.0);   // underflow
  h.observe(0.0);    // bin 0
  h.observe(5.5);    // bin 5
  h.observe(9.999);  // bin 9
  h.observe(10.0);   // overflow (hi is exclusive)
  h.observe(25.0);   // overflow
  const auto snap = reg.scrape();
  const auto* hv = snap.find_histogram("lat");
  ASSERT_NE(hv, nullptr);
  EXPECT_EQ(hv->underflow, 1u);
  EXPECT_EQ(hv->overflow, 2u);
  EXPECT_EQ(hv->counts[0], 1u);
  EXPECT_EQ(hv->counts[5], 1u);
  EXPECT_EQ(hv->counts[9], 1u);
  EXPECT_EQ(hv->total(), 6u);
  EXPECT_DOUBLE_EQ(hv->sum, -1.0 + 0.0 + 5.5 + 9.999 + 10.0 + 25.0);
  EXPECT_DOUBLE_EQ(hv->mean(), hv->sum / 6.0);
}

TEST(Registry, ScrapeIsRegistrationOrdered) {
  Registry reg;
  (void)reg.counter("b");
  (void)reg.counter("a");
  (void)reg.gauge("z");
  (void)reg.histogram("m", 0, 1, 2);
  const auto snap = reg.scrape();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "b");
  EXPECT_EQ(snap.counters[1].name, "a");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].name, "z");
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "m");
}

TEST(Registry, FindReturnsNullForUnknownNames) {
  Registry reg;
  (void)reg.counter("present");
  const auto snap = reg.scrape();
  EXPECT_NE(snap.find_counter("present"), nullptr);
  EXPECT_EQ(snap.find_counter("absent"), nullptr);
  EXPECT_EQ(snap.find_gauge("present"), nullptr);
  EXPECT_EQ(snap.find_histogram("present"), nullptr);
}

TEST(Registry, ManyMetricsForceShardGrowth) {
  // Register past any initial shard capacity AFTER the thread already
  // attached: the grow-by-replacement path must preserve earlier counts.
  Registry reg;
  const Counter first = reg.counter("first");
  first.inc(5);  // attaches this thread's shard at small capacity
  std::vector<Counter> later;
  for (int i = 0; i < 300; ++i) {
    later.push_back(reg.counter("c" + std::to_string(i)));
  }
  later.back().inc(9);  // out-of-range cell: triggers shard growth
  first.inc(1);
  EXPECT_EQ(first.value(), 6u);
  EXPECT_EQ(later.back().value(), 9u);
  EXPECT_EQ(later.front().value(), 0u);
}

TEST(Registry, CountsFromExitedThreadsPersist) {
  Registry reg;
  const Counter c = reg.counter("work");
  std::thread t([&] { c.inc(17); });
  t.join();
  // The exited thread's shard stays in the registry: counts are monotone.
  EXPECT_EQ(c.value(), 17u);
  c.inc(3);
  EXPECT_EQ(c.value(), 20u);
}

TEST(Registry, ConcurrentIncrementsSumExactly) {
  // The TSan centrepiece: N threads hammer the same counter and histogram
  // through their own shards; the join gives happens-before, so the scrape
  // is exact.
  Registry reg;
  const Counter c = reg.counter("hits");
  const HistogramHandle h = reg.histogram("vals", 0.0, 100.0, 10);
  const Gauge g = reg.gauge("peak");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(static_cast<double>(i % 100));
        g.set_max(t * kPerThread + i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  const auto snap = reg.scrape();
  const auto* hv = snap.find_histogram("vals");
  ASSERT_NE(hv, nullptr);
  EXPECT_EQ(hv->total(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.find_gauge("peak")->value,
            (kThreads - 1) * kPerThread + kPerThread - 1);
}

TEST(Registry, ConcurrentRegistrationAndIncrement) {
  // Threads race registration (cold path) against increments (hot path);
  // nothing here asserts totals beyond each thread's own counter, which is
  // exact after join.
  Registry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::uint64_t> expect(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const Counter mine = reg.counter("own" + std::to_string(t));
      const Counter shared = reg.counter("shared");
      for (int i = 0; i < 1000; ++i) {
        mine.inc();
        shared.inc();
      }
      expect[t] = 1000;
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = reg.scrape();
  for (int t = 0; t < kThreads; ++t) {
    const auto* cv = snap.find_counter("own" + std::to_string(t));
    ASSERT_NE(cv, nullptr);
    EXPECT_EQ(cv->value, expect[t]);
  }
  EXPECT_EQ(snap.find_counter("shared")->value, 8000u);
}

TEST(Registry, ScrapeRacingWritersIsSafe) {
  // A scrape concurrent with increments must be race-free (TSan) and may
  // only under-report in-flight bumps — never tear or over-report beyond
  // the final exact total.
  Registry reg;
  const Counter c = reg.counter("streamed");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) c.inc();
  });
  std::uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t now = c.value();
    EXPECT_GE(now, last);  // monotone across scrapes
    last = now;
  }
  stop.store(true);
  writer.join();
  EXPECT_GE(c.value(), last);
}

TEST(SnapshotPercentile, MirrorsStreamingHistogram) {
  Registry reg;
  const HistogramHandle h = reg.histogram("p", 0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.observe(static_cast<double>(i));
  const auto snap = reg.scrape();
  const auto* hv = snap.find_histogram("p");
  ASSERT_NE(hv, nullptr);
  // Median of 0..99 with unit bins interpolates inside bin 49/50.
  EXPECT_NEAR(hv->percentile(0.5), 50.0, 1.0);
  EXPECT_NEAR(hv->percentile(0.0), 0.0, 1.0);
  EXPECT_NEAR(hv->percentile(1.0), 100.0, 1.0);
}

TEST(SnapshotPercentile, EmptyReturnsLoNotThrow) {
  Registry reg;
  (void)reg.histogram("empty", 5.0, 10.0, 4);
  const auto snap = reg.scrape();
  const auto* hv = snap.find_histogram("empty");
  ASSERT_NE(hv, nullptr);
  EXPECT_DOUBLE_EQ(hv->percentile(0.5), 5.0);
}

TEST(SnapshotPercentile, UnderflowAndOverflowResolveToBounds) {
  Registry reg;
  const HistogramHandle h = reg.histogram("uo", 0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.observe(-5.0);  // all underflow
  const auto snap = reg.scrape();
  EXPECT_DOUBLE_EQ(snap.find_histogram("uo")->percentile(0.5), 0.0);

  Registry reg2;
  const HistogramHandle h2 = reg2.histogram("uo", 0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h2.observe(50.0);  // all overflow
  const auto snap2 = reg2.scrape();
  EXPECT_DOUBLE_EQ(snap2.find_histogram("uo")->percentile(0.9), 10.0);
}

TEST(PrometheusWriter, EmitsTypedSanitisedSeries) {
  Registry reg;
  reg.counter("route_service.submitted_pairs").inc(12);
  reg.gauge("queue.depth").set(3);
  const HistogramHandle h = reg.histogram("exec.ms", 0.0, 10.0, 2);
  h.observe(1.0);
  h.observe(6.0);
  h.observe(42.0);  // overflow -> only the +Inf bucket
  std::ostringstream out;
  write_prometheus(reg.scrape(), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE nav_route_service_submitted_pairs counter"),
            std::string::npos);
  EXPECT_NE(text.find("nav_route_service_submitted_pairs 12"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE nav_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("nav_queue_depth 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE nav_exec_ms histogram"), std::string::npos);
  // Cumulative buckets: le="5" holds 1 sample, le="10" holds 2, +Inf all 3.
  EXPECT_NE(text.find("nav_exec_ms_bucket{le=\"5\"} 1"), std::string::npos);
  EXPECT_NE(text.find("nav_exec_ms_bucket{le=\"10\"} 2"), std::string::npos);
  EXPECT_NE(text.find("nav_exec_ms_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("nav_exec_ms_count 3"), std::string::npos);
}

TEST(JsonWriter, EmitsAllThreeSections) {
  Registry reg;
  reg.counter("c1").inc(7);
  reg.gauge("g1").set(-2);
  reg.histogram("h1", 0.0, 4.0, 2).observe(1.0);
  std::ostringstream out;
  write_metrics_json(reg.scrape(), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"counters\""), std::string::npos);
  EXPECT_NE(text.find("\"c1\":7"), std::string::npos);
  EXPECT_NE(text.find("\"g1\":-2"), std::string::npos);
  EXPECT_NE(text.find("\"h1\""), std::string::npos);
  EXPECT_NE(text.find("\"count\":1"), std::string::npos);
}

TEST(DefaultRegistry, IsProcessWideSingleton) {
  Registry& a = default_registry();
  Registry& b = default_registry();
  EXPECT_EQ(&a, &b);
  const Counter c = a.counter("test.default_registry_probe");
  const std::uint64_t before = c.value();
  c.inc();
  EXPECT_EQ(b.counter("test.default_registry_probe").value(), before + 1);
}

}  // namespace
}  // namespace nav::obs
