#include "decomposition/tree_path_decomposition.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "decomposition/measures.hpp"
#include "graph/generators.hpp"

namespace nav::decomp {
namespace {

std::size_t log2_ceil(std::size_t n) {
  std::size_t k = 0;
  while ((std::size_t{1} << k) < n) ++k;
  return k;
}

TEST(TreeCentroid, PathCentroidIsMiddle) {
  const auto g = graph::make_path(9);
  std::vector<graph::NodeId> nodes;
  for (graph::NodeId v = 0; v < 9; ++v) nodes.push_back(v);
  EXPECT_EQ(subtree_centroid(g, nodes), 4u);
}

TEST(TreeCentroid, StarCentroidIsCenter) {
  const auto g = graph::make_star(8);
  std::vector<graph::NodeId> nodes;
  for (graph::NodeId v = 0; v < 8; ++v) nodes.push_back(v);
  EXPECT_EQ(subtree_centroid(g, nodes), 0u);
}

TEST(TreeCentroid, SubtreeRestriction) {
  const auto g = graph::make_path(10);
  // Subtree = nodes 6..9: centroid should be 7 or 8.
  const auto c = subtree_centroid(g, {6, 7, 8, 9});
  EXPECT_TRUE(c == 7 || c == 8);
}

TEST(TreePathDecomposition, ValidOnPaths) {
  const auto g = graph::make_path(17);
  const auto pd = tree_path_decomposition(g);
  std::string why;
  EXPECT_TRUE(pd.is_valid(g, &why)) << why;
  EXPECT_LE(width_of(pd), log2_ceil(17) + 1);
}

TEST(TreePathDecomposition, ValidOnStars) {
  const auto g = graph::make_star(33);
  const auto pd = tree_path_decomposition(g);
  EXPECT_TRUE(pd.is_valid(g));
  EXPECT_LE(width_of(pd), 2u);  // center + leaf bags
}

TEST(TreePathDecomposition, ValidOnBalancedTrees) {
  for (const graph::NodeId n : {2u, 3u, 15u, 64u, 255u, 1000u}) {
    const auto g = graph::make_balanced_tree(n, 2);
    const auto pd = tree_path_decomposition(g);
    std::string why;
    ASSERT_TRUE(pd.is_valid(g, &why)) << "n=" << n << ": " << why;
    EXPECT_LE(width_of(pd), log2_ceil(n) + 1) << "n=" << n;
  }
}

TEST(TreePathDecomposition, SingletonTree) {
  const auto g = graph::make_path(1);
  const auto pd = tree_path_decomposition(g);
  EXPECT_TRUE(pd.is_valid(g));
  EXPECT_EQ(pd.num_bags(), 1u);
}

TEST(TreePathDecomposition, RejectsNonTrees) {
  EXPECT_THROW(tree_path_decomposition(graph::make_cycle(5)),
               std::invalid_argument);
  graph::Graph disconnected(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(tree_path_decomposition(disconnected), std::invalid_argument);
}

// Property test over random trees: valid + logarithmic width, i.e. the
// pathshape O(log n) guarantee used by Corollary 1.
class RandomTreeDecomposition : public ::testing::TestWithParam<int> {};

TEST_P(RandomTreeDecomposition, ValidWithLogWidth) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const graph::NodeId n = 200 + static_cast<graph::NodeId>(GetParam()) * 97;
  const auto g = graph::make_random_tree(n, rng);
  const auto pd = tree_path_decomposition(g);
  std::string why;
  ASSERT_TRUE(pd.is_valid(g, &why)) << why;
  EXPECT_LE(width_of(pd), log2_ceil(n) + 1);
  // Shape <= width always; on trees this is the Corollary 1 certificate.
  const auto m = measure(g, pd);
  EXPECT_LE(m.shape, log2_ceil(n) + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreeDecomposition,
                         ::testing::Range(0, 10));

TEST(TreePathDecomposition, CaterpillarGetsSmallWidthToo) {
  const auto g = graph::make_caterpillar(32, 2);
  const auto pd = tree_path_decomposition(g);
  EXPECT_TRUE(pd.is_valid(g));
  EXPECT_LE(width_of(pd), log2_ceil(g.num_nodes()) + 1);
}

}  // namespace
}  // namespace nav::decomp
