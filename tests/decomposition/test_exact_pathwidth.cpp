#include "decomposition/exact.hpp"

#include <gtest/gtest.h>

#include "decomposition/measures.hpp"
#include "graph/generators.hpp"

namespace nav::decomp {
namespace {

TEST(ExactPathwidth, KnownValues) {
  EXPECT_EQ(exact_pathwidth(graph::make_path(8)), 1u);
  EXPECT_EQ(exact_pathwidth(graph::make_cycle(8)), 2u);
  EXPECT_EQ(exact_pathwidth(graph::make_complete(6)), 5u);
  EXPECT_EQ(exact_pathwidth(graph::make_star(7)), 1u);
  EXPECT_EQ(exact_pathwidth(graph::make_grid2d(3, 3)), 3u);
  EXPECT_EQ(exact_pathwidth(graph::make_grid2d(3, 5)), 3u);
  EXPECT_EQ(exact_pathwidth(graph::make_grid2d(4, 4)), 4u);
}

TEST(ExactPathwidth, SingletonAndEdge) {
  EXPECT_EQ(exact_pathwidth(graph::Graph(1, {})), 0u);
  EXPECT_EQ(exact_pathwidth(graph::make_path(2)), 1u);
}

TEST(ExactPathwidth, SpiderIsTwo) {
  // Three legs of length 2 from a center: pathwidth 2 (not a caterpillar).
  EXPECT_EQ(exact_pathwidth(graph::make_spider(3, 2)), 2u);
}

TEST(ExactPathwidth, CaterpillarIsOnePlusLegsBound) {
  // Caterpillars have pathwidth 1 (they are exactly the pw-1 trees... with
  // legs attached the width stays small): spine 4, 1 leg each -> pw 1.
  EXPECT_LE(exact_pathwidth(graph::make_caterpillar(4, 1)), 2u);
}

TEST(ExactPathwidth, CompleteBipartiteViaBarbell) {
  // Barbell of two K_4 and a 2-path bridge: pw = 3 (each clique forces 3).
  EXPECT_EQ(exact_pathwidth(graph::make_barbell(4, 2)), 3u);
}

TEST(ExactPathwidth, WitnessDecompositionIsValidAndTight) {
  for (const auto& g :
       {graph::make_cycle(9), graph::make_grid2d(3, 4), graph::make_complete(5),
        graph::make_spider(3, 2), graph::make_hypercube(3)}) {
    const auto result = exact_pathwidth_witness(g);
    std::string why;
    ASSERT_TRUE(result.decomposition.is_valid(g, &why)) << why;
    EXPECT_EQ(width_of(result.decomposition), result.pathwidth);
    EXPECT_EQ(result.ordering.size(), g.num_nodes());
  }
}

TEST(ExactPathwidth, HypercubeQ3) {
  EXPECT_EQ(exact_pathwidth(graph::make_hypercube(3)), 4u);
}

TEST(ExactPathwidth, RejectsLargeGraphs) {
  EXPECT_THROW(exact_pathwidth(graph::make_path(23)), std::invalid_argument);
}

TEST(ExactPathwidth, DisconnectedTakesMaxComponentish) {
  // Two triangles: pathwidth 2.
  graph::Graph g(6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  EXPECT_EQ(exact_pathwidth(g), 2u);
}

TEST(ExactPathwidth, RandomTreesAreLowWidth) {
  Rng rng(12);
  for (int i = 0; i < 6; ++i) {
    const auto g = graph::make_random_tree(14, rng);
    const auto pw = exact_pathwidth(g);
    EXPECT_LE(pw, 4u);  // log2(14) ~ 3.8; trees of 14 nodes stay below
    EXPECT_GE(pw, 1u);
  }
}

}  // namespace
}  // namespace nav::decomp
