#include "decomposition/permutation_decomposition.hpp"

#include <gtest/gtest.h>

#include "decomposition/measures.hpp"
#include "graph/permutation_model.hpp"

namespace nav::decomp {
namespace {

TEST(PermutationDecomposition, ReversalClique) {
  graph::PermutationModel model({4, 3, 2, 1, 0});
  const auto g = model.to_graph();
  const auto pd = permutation_decomposition(model);
  std::string why;
  EXPECT_TRUE(pd.is_valid(g, &why)) << why;
  EXPECT_LE(measure(g, pd).length, 1u);  // clique: everything adjacent
}

TEST(PermutationDecomposition, IdentityIsolatedVertices) {
  graph::PermutationModel model({0, 1, 2, 3});
  const auto g = model.to_graph();
  const auto pd = permutation_decomposition(model);
  std::string why;
  EXPECT_TRUE(pd.is_valid(g, &why)) << why;  // coverage of fixed points
}

TEST(PermutationDecomposition, SingleNode) {
  graph::PermutationModel model({0});
  const auto pd = permutation_decomposition(model);
  EXPECT_TRUE(pd.is_valid(model.to_graph()));
}

TEST(PermutationDecomposition, MixedFixedAndMoved) {
  graph::PermutationModel model({0, 2, 1, 3, 5, 4});
  const auto g = model.to_graph();
  const auto pd = permutation_decomposition(model);
  std::string why;
  EXPECT_TRUE(pd.is_valid(g, &why)) << why;
}

// The Corollary 1 certificate: pathlength <= 2 for permutation graphs,
// via the left/right-crosser adjacency argument.
class RandomPermutationDecomposition : public ::testing::TestWithParam<int> {};

TEST_P(RandomPermutationDecomposition, ValidWithLengthAtMostTwo) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const auto model = graph::random_permutation_model(60, rng);
  const auto g = model.to_graph();
  const auto pd = permutation_decomposition(model);
  std::string why;
  ASSERT_TRUE(pd.is_valid(g, &why)) << why;
  const auto m = measure(g, pd);
  EXPECT_LE(m.length, 2u);
  EXPECT_LE(m.shape, 2u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPermutationDecomposition,
                         ::testing::Range(0, 8));

class BandedPermutationDecomposition : public ::testing::TestWithParam<int> {};

TEST_P(BandedPermutationDecomposition, SparseModelsAlsoLengthTwo) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 3);
  const auto model = graph::banded_permutation_model(120, 6, rng);
  const auto g = model.to_graph();
  const auto pd = permutation_decomposition(model);
  std::string why;
  ASSERT_TRUE(pd.is_valid(g, &why)) << why;
  EXPECT_LE(measure(g, pd).length, 2u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BandedPermutationDecomposition,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace nav::decomp
