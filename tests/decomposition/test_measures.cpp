#include "decomposition/measures.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace nav::decomp {
namespace {

TEST(Measures, BagWidth) {
  EXPECT_EQ(bag_width({}), 0u);
  EXPECT_EQ(bag_width({5}), 0u);
  EXPECT_EQ(bag_width({1, 2, 3}), 2u);
}

TEST(Measures, BagLengthOnPath) {
  const auto g = graph::make_path(10);
  EXPECT_EQ(bag_length(g, {3}), 0u);
  EXPECT_EQ(bag_length(g, {3, 4}), 1u);
  EXPECT_EQ(bag_length(g, {0, 9}), 9u);
  EXPECT_EQ(bag_length(g, {0, 5, 9}), 9u);
}

TEST(Measures, BagLengthUsesGraphDistanceNotInduced) {
  // Bag {0, 2} on a path 0-1-2: induced subgraph is disconnected but the
  // graph distance is 2 (paper: length measured in G).
  const auto g = graph::make_path(3);
  EXPECT_EQ(bag_length(g, {0, 2}), 2u);
}

TEST(Measures, BagLengthDisconnectedIsInf) {
  graph::Graph g(3, {{0, 1}});
  EXPECT_EQ(bag_length(g, {0, 2}), graph::kInfDist);
}

TEST(Measures, BagShapeIsMinOfWidthAndLength) {
  const auto g = graph::make_path(10);
  // Bag {0..9}: width 9, length 9 -> shape 9.
  Bag all;
  for (graph::NodeId v = 0; v < 10; ++v) all.push_back(v);
  EXPECT_EQ(bag_shape(g, all), 9u);
  // Bag {0, 9}: width 1, length 9 -> shape 1.
  EXPECT_EQ(bag_shape(g, {0, 9}), 1u);
  // Clique bag: width large, length 1 -> shape 1.
  const auto k = graph::make_complete(6);
  EXPECT_EQ(bag_shape(k, {0, 1, 2, 3, 4, 5}), 1u);
}

TEST(Measures, DecompositionMeasuresAggregate) {
  const auto g = graph::make_path(4);
  PathDecomposition pd({{0, 1}, {1, 2, 3}});
  const auto m = measure(g, pd);
  EXPECT_EQ(m.width, 2u);
  EXPECT_EQ(m.length, 2u);  // bag {1,2,3} spans distance 2
  EXPECT_EQ(m.shape, 2u);
  EXPECT_EQ(m.num_bags, 2u);
  EXPECT_EQ(m.max_bag_size, 3u);
}

TEST(Measures, WidthOfFastPath) {
  PathDecomposition pd({{0, 1}, {1, 2, 3}, {3}});
  EXPECT_EQ(width_of(pd), 2u);
}

TEST(Measures, TreeDecompositionMeasured) {
  const auto g = graph::make_star(4);
  TreeDecomposition td({{0, 1}, {0, 2}, {0, 3}}, {{0, 1}, {1, 2}});
  const auto m = measure(g, td);
  EXPECT_EQ(m.width, 1u);
  EXPECT_EQ(m.length, 1u);
  EXPECT_EQ(m.shape, 1u);
  EXPECT_EQ(width_of(td), 1u);
}

TEST(Measures, CliqueShapeIsOneViaTrivialBag) {
  // The paper's point: cliques have huge width but length 1, so shape 1.
  const auto g = graph::make_complete(20);
  Bag all;
  for (graph::NodeId v = 0; v < 20; ++v) all.push_back(v);
  const auto m = measure(g, PathDecomposition({all}));
  EXPECT_EQ(m.width, 19u);
  EXPECT_EQ(m.length, 1u);
  EXPECT_EQ(m.shape, 1u);
}

}  // namespace
}  // namespace nav::decomp
