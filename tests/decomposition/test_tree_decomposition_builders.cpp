#include "decomposition/tree_decomposition_builders.hpp"

#include <gtest/gtest.h>

#include "decomposition/measures.hpp"
#include "decomposition/tree_path_decomposition.hpp"
#include "graph/generators.hpp"

namespace nav::decomp {
namespace {

TEST(TreeEdgeDecomposition, PathTree) {
  const auto g = graph::make_path(10);
  const auto td = tree_edge_decomposition(g);
  std::string why;
  ASSERT_TRUE(td.is_valid(g, &why)) << why;
  EXPECT_EQ(td.num_bags(), 9u);
  EXPECT_EQ(width_of(td), 1u);
}

TEST(TreeEdgeDecomposition, StarTree) {
  const auto g = graph::make_star(12);
  const auto td = tree_edge_decomposition(g);
  std::string why;
  ASSERT_TRUE(td.is_valid(g, &why)) << why;
  const auto m = measure(g, td);
  EXPECT_EQ(m.width, 1u);
  EXPECT_EQ(m.length, 1u);
  EXPECT_EQ(m.shape, 1u);
}

TEST(TreeEdgeDecomposition, BalancedTree) {
  const auto g = graph::make_balanced_tree(63, 2);
  const auto td = tree_edge_decomposition(g);
  std::string why;
  ASSERT_TRUE(td.is_valid(g, &why)) << why;
  EXPECT_EQ(measure(g, td).shape, 1u);
}

TEST(TreeEdgeDecomposition, SingletonTree) {
  const auto g = graph::make_path(1);
  const auto td = tree_edge_decomposition(g);
  EXPECT_TRUE(td.is_valid(g));
  EXPECT_EQ(td.num_bags(), 1u);
}

TEST(TreeEdgeDecomposition, RejectsNonTrees) {
  EXPECT_THROW(tree_edge_decomposition(graph::make_cycle(5)),
               std::invalid_argument);
}

// The motivation for pathSHAPE vs treeshape: trees have ts = 1 but their
// best PATH decompositions can need Θ(log n) — the gap the paper's Theorem 2
// pays on trees (log³ instead of log²).
TEST(TreeEdgeDecomposition, TreeshapeOneVsPathshapeLogGap) {
  const auto g = graph::make_balanced_tree(255, 2);
  const auto ts_witness = measure(g, tree_edge_decomposition(g)).shape;
  EXPECT_EQ(ts_witness, 1u);
  // Pathwidth of the complete binary tree of depth 7 is Θ(depth); our
  // centroid path decomposition realises width <= ceil(log2 n).
  const auto pd = tree_path_decomposition(g);
  EXPECT_GE(width_of(pd), 2u);
}

// Property sweep: valid + shape 1 across random trees.
class RandomTreeEdgeDecomposition : public ::testing::TestWithParam<int> {};

TEST_P(RandomTreeEdgeDecomposition, AlwaysShapeOne) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 5);
  const auto g = graph::make_random_tree(150, rng);
  const auto td = tree_edge_decomposition(g);
  std::string why;
  ASSERT_TRUE(td.is_valid(g, &why)) << why;
  EXPECT_EQ(measure(g, td).shape, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreeEdgeDecomposition,
                         ::testing::Range(0, 8));

TEST(TrivialTreeDecomposition, AnyGraph) {
  const auto g = graph::make_cycle(9);
  const auto td = trivial_tree_decomposition(g);
  EXPECT_TRUE(td.is_valid(g));
  EXPECT_EQ(td.num_bags(), 1u);
  // shape = min(n-1, diam) = min(8, 4) = 4.
  EXPECT_EQ(measure(g, td).shape, 4u);
}

}  // namespace
}  // namespace nav::decomp
