#include "decomposition/pathshape.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "decomposition/builders.hpp"
#include "decomposition/exact.hpp"
#include "graph/families.hpp"
#include "graph/generators.hpp"

namespace nav::decomp {
namespace {

TEST(Pathshape, PathIsOne) {
  const auto best = best_path_decomposition(graph::make_path(64));
  EXPECT_EQ(best.measures.shape, 1u);
  EXPECT_TRUE(best.method == "path-walk" || best.method == "caterpillar" ||
              best.method == "bfs-layer")
      << best.method;
}

TEST(Pathshape, CompleteGraphIsOneViaTrivial) {
  // K_n: every pair adjacent -> trivial bag has length 1 -> shape 1.
  const auto best = best_path_decomposition(graph::make_complete(24));
  EXPECT_EQ(best.measures.shape, 1u);
}

TEST(Pathshape, CaterpillarAtMostTwo) {
  const auto best = best_path_decomposition(graph::make_caterpillar(20, 3));
  EXPECT_LE(best.measures.shape, 2u);
}

TEST(Pathshape, TreesLogarithmic) {
  Rng rng(5);
  const auto g = graph::make_random_tree(500, rng);
  const auto best = best_path_decomposition(g);
  const auto bound = static_cast<std::size_t>(std::ceil(std::log2(500))) + 1;
  EXPECT_LE(best.measures.shape, bound);
}

TEST(Pathshape, UpperBoundNeverBelowExactPathwidthFloor) {
  // ps(G) <= pw(G); our heuristic shape is an upper bound on ps, so it can be
  // below pw (shape uses length too) but the *decomposition* must be valid.
  Rng rng(6);
  for (const auto& name : {"path", "cycle", "grid2d"}) {
    const auto g = graph::family(name).make(18, rng);
    const auto best = best_path_decomposition(g);
    std::string why;
    EXPECT_TRUE(best.decomposition.is_valid(g, &why)) << name << ": " << why;
  }
}

TEST(Pathshape, WinnerValidAcrossAllFamilies) {
  Rng rng(7);
  for (const auto& fam : graph::all_families()) {
    const auto g = fam.make(80, rng);
    const auto best = best_path_decomposition(g);
    std::string why;
    ASSERT_TRUE(best.decomposition.is_valid(g, &why)) << fam.name << ": " << why;
    EXPECT_FALSE(best.method.empty());
    // shape is a min(width, length) aggregate: never exceeds n - 1.
    EXPECT_LE(best.measures.shape, static_cast<std::size_t>(g.num_nodes()));
  }
}

TEST(Pathshape, UpperBoundHelper) {
  EXPECT_EQ(pathshape_upper_bound(graph::make_path(32)), 1u);
  EXPECT_LE(pathshape_upper_bound(graph::make_cycle(32)), 3u);
}

TEST(Pathshape, CycleIsAtMostTwo) {
  // Cycle: bfs-layer from any node gives bags of consecutive layer pairs;
  // width 3 but length <= 2 (two nodes per layer are close around the seam)…
  // portfolio must land at shape <= 3 in any case (pw(C_n) = 2).
  const auto best = best_path_decomposition(graph::make_cycle(40));
  EXPECT_LE(best.measures.shape, 3u);
}

TEST(Pathshape, OptionsExcludeTrivial) {
  PathshapeOptions opt;
  opt.include_trivial = false;
  const auto best = best_path_decomposition(graph::make_complete(12), opt);
  EXPECT_NE(best.method, "trivial");
}

TEST(Pathshape, LengthCapStillSound) {
  PathshapeOptions opt;
  opt.max_bag_for_length = 2;  // force width-only scoring
  const auto best = best_path_decomposition(graph::make_path(32), opt);
  std::string why;
  EXPECT_TRUE(best.decomposition.is_valid(graph::make_path(32), &why)) << why;
  EXPECT_LE(best.measures.shape, 31u);
}

TEST(MeasureCapped, CapSkipsLengthOnBigBags) {
  const auto g = graph::make_complete(10);
  const auto pd = trivial_decomposition(g);
  const auto capped = measure_capped(g, pd, 4);
  EXPECT_EQ(capped.shape, 9u);  // width-only (cap), not length 1
  const auto uncapped = measure_capped(g, pd, 100);
  EXPECT_EQ(uncapped.shape, 1u);
}

}  // namespace
}  // namespace nav::decomp
