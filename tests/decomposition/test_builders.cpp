#include "decomposition/builders.hpp"

#include <gtest/gtest.h>

#include "decomposition/measures.hpp"
#include "graph/families.hpp"
#include "graph/generators.hpp"

namespace nav::decomp {
namespace {

TEST(TrivialDecomposition, ValidOnAnyGraph) {
  for (const auto& g :
       {graph::make_cycle(7), graph::make_complete(5), graph::make_grid2d(3, 3)}) {
    const auto pd = trivial_decomposition(g);
    EXPECT_EQ(pd.num_bags(), 1u);
    EXPECT_TRUE(pd.is_valid(g));
  }
}

TEST(PathGraphDecomposition, ShapeOneOnPaths) {
  const auto g = graph::make_path(50);
  const auto pd = path_graph_decomposition(g);
  std::string why;
  EXPECT_TRUE(pd.is_valid(g, &why)) << why;
  const auto m = measure(g, pd);
  EXPECT_EQ(m.width, 1u);
  EXPECT_EQ(m.length, 1u);
  EXPECT_EQ(m.shape, 1u);  // witnesses ps(path) = 1
}

TEST(PathGraphDecomposition, WorksWhenIdsArePermuted) {
  // A path graph whose node ids are not in path order.
  graph::Graph g(5, {{2, 0}, {0, 4}, {4, 1}, {1, 3}});
  const auto pd = path_graph_decomposition(g);
  EXPECT_TRUE(pd.is_valid(g));
  EXPECT_EQ(measure(g, pd).shape, 1u);
}

TEST(PathGraphDecomposition, RejectsNonPaths) {
  EXPECT_THROW(path_graph_decomposition(graph::make_cycle(5)),
               std::invalid_argument);
  EXPECT_THROW(path_graph_decomposition(graph::make_star(5)),
               std::invalid_argument);
}

TEST(PathGraphDecomposition, SingletonOk) {
  const auto g = graph::make_path(1);
  EXPECT_TRUE(path_graph_decomposition(g).is_valid(g));
}

TEST(BfsLayerDecomposition, ValidAcrossFamilies) {
  Rng rng(2);
  for (const auto& fam : graph::all_families()) {
    const auto g = fam.make(96, rng);
    const auto pd = bfs_layer_decomposition(g);
    std::string why;
    EXPECT_TRUE(pd.is_valid(g, &why)) << fam.name << ": " << why;
  }
}

TEST(BfsLayerDecomposition, PathGivesWidthOne) {
  const auto g = graph::make_path(20);
  const auto pd = bfs_layer_decomposition(g);
  EXPECT_EQ(width_of(pd), 1u);
}

TEST(BfsLayerDecomposition, RootChoiceRespected) {
  const auto g = graph::make_path(10);
  const auto from_middle = bfs_layer_decomposition(g, 5);
  // Rooted at the middle, layers pair up: width grows to 3 nodes per bag.
  EXPECT_TRUE(from_middle.is_valid(g));
  EXPECT_GE(width_of(from_middle), 2u);
}

TEST(BfsLayerDecomposition, RejectsDisconnected) {
  graph::Graph g(3, {{0, 1}});
  EXPECT_THROW(bfs_layer_decomposition(g), std::invalid_argument);
}

TEST(CaterpillarDecomposition, ValidWithSmallShape) {
  const auto g = graph::make_caterpillar(10, 3);
  const auto pd = caterpillar_decomposition(g);
  std::string why;
  EXPECT_TRUE(pd.is_valid(g, &why)) << why;
  const auto m = measure(g, pd);
  EXPECT_LE(m.length, 2u);
  EXPECT_LE(m.shape, 2u);  // certifies ps(caterpillar) <= 2
}

TEST(CaterpillarDecomposition, PurePathIsCaterpillar) {
  const auto g = graph::make_path(12);
  const auto pd = caterpillar_decomposition(g);
  EXPECT_TRUE(pd.is_valid(g));
  EXPECT_LE(measure(g, pd).shape, 2u);
}

TEST(CaterpillarDecomposition, StarIsCaterpillar) {
  const auto g = graph::make_star(9);
  const auto pd = caterpillar_decomposition(g);
  EXPECT_TRUE(pd.is_valid(g));
}

TEST(CaterpillarDecomposition, RejectsNonCaterpillarTrees) {
  // A spider with 3 legs of length 3 has a branching non-leaf structure.
  EXPECT_THROW(caterpillar_decomposition(graph::make_spider(3, 3)),
               std::invalid_argument);
}

TEST(CaterpillarDecomposition, RejectsNonTrees) {
  EXPECT_THROW(caterpillar_decomposition(graph::make_cycle(6)),
               std::invalid_argument);
}

}  // namespace
}  // namespace nav::decomp
