#include "decomposition/elimination.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "decomposition/exact.hpp"
#include "decomposition/measures.hpp"
#include "graph/families.hpp"
#include "graph/generators.hpp"

namespace nav::decomp {
namespace {

TEST(EliminationOrdering, IsPermutation) {
  Rng rng(1);
  const auto g = graph::make_connected_gnp(40, 0.15, rng);
  for (const auto h :
       {EliminationHeuristic::kMinDegree, EliminationHeuristic::kMinFill}) {
    const auto ordering = elimination_ordering(g, h);
    std::vector<std::uint8_t> seen(40, 0);
    for (const auto v : ordering) {
      ASSERT_LT(v, 40u);
      EXPECT_FALSE(seen[v]);
      seen[v] = 1;
    }
    EXPECT_EQ(ordering.size(), 40u);
  }
}

TEST(EliminationOrdering, MinDegreeStartsAtLeaves) {
  const auto g = graph::make_star(8);
  const auto ordering =
      elimination_ordering(g, EliminationHeuristic::kMinDegree);
  // The center (node 0, degree 7) must be eliminated after some leaves.
  EXPECT_NE(ordering.front(), 0u);
}

TEST(EliminationTree, ValidAcrossFamilies) {
  Rng rng(2);
  for (const auto& fam : graph::all_families()) {
    const auto g = fam.make(64, rng);
    const auto td =
        elimination_tree_decomposition(g, EliminationHeuristic::kMinDegree);
    std::string why;
    EXPECT_TRUE(td.is_valid(g, &why)) << fam.name << ": " << why;
  }
}

TEST(EliminationTree, MinFillValidToo) {
  Rng rng(3);
  const auto g = graph::make_connected_gnp(48, 0.12, rng);
  const auto td =
      elimination_tree_decomposition(g, EliminationHeuristic::kMinFill);
  std::string why;
  EXPECT_TRUE(td.is_valid(g, &why)) << why;
}

TEST(EliminationTree, TreesGetWidthOne) {
  Rng rng(4);
  const auto g = graph::make_random_tree(60, rng);
  const auto td =
      elimination_tree_decomposition(g, EliminationHeuristic::kMinDegree);
  EXPECT_TRUE(td.is_valid(g));
  EXPECT_EQ(width_of(td), 1u);  // min-degree on trees eliminates leaves
}

TEST(EliminationTree, CycleGetsWidthTwo) {
  const auto g = graph::make_cycle(20);
  const auto td =
      elimination_tree_decomposition(g, EliminationHeuristic::kMinDegree);
  EXPECT_TRUE(td.is_valid(g));
  EXPECT_EQ(width_of(td), 2u);
}

TEST(EliminationTree, CliqueIsOneBigBag) {
  const auto g = graph::make_complete(7);
  const auto td =
      elimination_tree_decomposition(g, EliminationHeuristic::kMinDegree);
  EXPECT_TRUE(td.is_valid(g));
  EXPECT_EQ(width_of(td), 6u);  // treewidth of K7
}

TEST(EliminationTree, ArbitraryOrderingStillValid) {
  const auto g = graph::make_grid2d(4, 4);
  std::vector<graph::NodeId> ordering(16);
  std::iota(ordering.begin(), ordering.end(), graph::NodeId{0});
  const auto td = elimination_tree_decomposition(g, ordering);
  std::string why;
  EXPECT_TRUE(td.is_valid(g, &why)) << why;
}

TEST(EliminationTree, RejectsBadOrdering) {
  const auto g = graph::make_path(4);
  EXPECT_THROW(elimination_tree_decomposition(g, {0, 1, 2}),
               std::invalid_argument);
  EXPECT_THROW(elimination_tree_decomposition(g, {0, 0, 1, 2}),
               std::invalid_argument);
}

TEST(EliminationTree, NearOptimalOnSmallGraphsVsExactPathwidth) {
  // Treewidth <= pathwidth, so the elimination width may legitimately beat
  // the exact *pathwidth*; it must never be absurdly larger on small graphs.
  Rng rng(5);
  for (int seed = 0; seed < 6; ++seed) {
    const auto g = graph::make_connected_gnp(14, 0.25, rng);
    const auto pw = exact_pathwidth(g);
    const auto td =
        elimination_tree_decomposition(g, EliminationHeuristic::kMinFill);
    EXPECT_LE(width_of(td), 2 * pw + 2) << "seed " << seed;
  }
}

TEST(EliminationPath, ValidAcrossFamilies) {
  Rng rng(6);
  for (const auto& fam : graph::all_families()) {
    const auto g = fam.make(48, rng);
    const auto ordering =
        elimination_ordering(g, EliminationHeuristic::kMinDegree);
    const auto pd = elimination_path_decomposition(g, ordering);
    std::string why;
    EXPECT_TRUE(pd.is_valid(g, &why)) << fam.name << ": " << why;
  }
}

TEST(EliminationPath, PathIdentityOrderingIsWidthOne) {
  const auto g = graph::make_path(12);
  std::vector<graph::NodeId> ordering(12);
  std::iota(ordering.begin(), ordering.end(), graph::NodeId{0});
  const auto pd = elimination_path_decomposition(g, ordering);
  EXPECT_TRUE(pd.is_valid(g));
  EXPECT_EQ(width_of(pd), 1u);
}

TEST(EliminationPath, MatchesExactWitnessStyle) {
  // Using the exact-pathwidth optimal ordering must reproduce width = pw.
  const auto g = graph::make_cycle(10);
  const auto exact = exact_pathwidth_witness(g);
  const auto pd = elimination_path_decomposition(g, exact.ordering);
  EXPECT_TRUE(pd.is_valid(g));
  EXPECT_EQ(width_of(pd), exact.pathwidth);
}

}  // namespace
}  // namespace nav::decomp
