#include "decomposition/interval_decomposition.hpp"

#include <gtest/gtest.h>

#include "decomposition/measures.hpp"
#include "graph/interval_model.hpp"

namespace nav::decomp {
namespace {

TEST(IntervalDecomposition, SimpleChain) {
  graph::IntervalModel model({{0, 2}, {1, 3}, {2, 4}, {3, 5}});
  const auto g = model.to_graph();
  const auto pd = interval_decomposition(model);
  std::string why;
  EXPECT_TRUE(pd.is_valid(g, &why)) << why;
  const auto m = measure(g, pd);
  EXPECT_LE(m.length, 1u);  // bags are cliques
  EXPECT_LE(m.shape, 1u);   // pathshape(interval graph) <= 1 (Corollary 1)
}

TEST(IntervalDecomposition, NestedIntervals) {
  graph::IntervalModel model({{0, 10}, {1, 2}, {3, 4}, {5, 6}, {7, 8}});
  const auto g = model.to_graph();
  const auto pd = interval_decomposition(model);
  EXPECT_TRUE(pd.is_valid(g));
  EXPECT_LE(measure(g, pd).length, 1u);
}

TEST(IntervalDecomposition, SingleInterval) {
  graph::IntervalModel model({{0, 1}});
  const auto pd = interval_decomposition(model);
  EXPECT_TRUE(pd.is_valid(model.to_graph()));
}

TEST(IntervalDecomposition, BagsAreCliques) {
  Rng rng(3);
  const auto model = graph::random_interval_model(30, rng);
  const auto g = model.to_graph();
  const auto pd = interval_decomposition(model);
  for (const auto& bag : pd.bags()) {
    for (std::size_t i = 0; i < bag.size(); ++i) {
      for (std::size_t j = i + 1; j < bag.size(); ++j) {
        EXPECT_TRUE(g.has_edge(bag[i], bag[j]))
            << bag[i] << " " << bag[j] << " share a stab point";
      }
    }
  }
}

// Property: across random models the decomposition is always a valid clique
// path, certifying pathshape <= 1.
class RandomIntervalDecomposition : public ::testing::TestWithParam<int> {};

TEST_P(RandomIntervalDecomposition, ValidCliquePath) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 101);
  const auto model = graph::connected_random_interval_model(80, rng);
  const auto g = model.to_graph();
  const auto pd = interval_decomposition(model);
  std::string why;
  ASSERT_TRUE(pd.is_valid(g, &why)) << why;
  const auto m = measure(g, pd);
  EXPECT_LE(m.length, 1u);
  EXPECT_LE(m.shape, 1u);
  // Reduced: strictly fewer bags than 2n event points.
  EXPECT_LE(pd.num_bags(), static_cast<std::size_t>(2 * g.num_nodes()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomIntervalDecomposition,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace nav::decomp
