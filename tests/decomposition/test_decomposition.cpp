#include "decomposition/decomposition.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace nav::decomp {
namespace {

using graph::make_cycle;
using graph::make_path;

TEST(Bag, MakeBagSortsAndDedups) {
  EXPECT_EQ(make_bag({3, 1, 2, 1, 3}), (Bag{1, 2, 3}));
  EXPECT_EQ(make_bag({}), Bag{});
}

TEST(PathDecomposition, ValidPathBags) {
  const auto g = make_path(4);
  PathDecomposition pd({{0, 1}, {1, 2}, {2, 3}});
  std::string why;
  EXPECT_TRUE(pd.is_valid(g, &why)) << why;
}

TEST(PathDecomposition, DetectsMissingVertex) {
  const auto g = make_path(4);
  PathDecomposition pd({{0, 1}, {1, 2}});  // node 3 missing
  std::string why;
  EXPECT_FALSE(pd.is_valid(g, &why));
  EXPECT_NE(why.find("vertex 3"), std::string::npos);
}

TEST(PathDecomposition, DetectsMissingEdge) {
  const auto g = make_cycle(4);
  PathDecomposition pd({{0, 1}, {1, 2}, {2, 3}});  // edge (0,3) uncovered
  std::string why;
  EXPECT_FALSE(pd.is_valid(g, &why));
  EXPECT_NE(why.find("edge"), std::string::npos);
}

TEST(PathDecomposition, DetectsBrokenContiguity) {
  const auto g = make_path(3);
  // Node 0 appears in bags 0 and 2 but not 1.
  PathDecomposition pd({{0, 1}, {1, 2}, {0, 2}});
  std::string why;
  EXPECT_FALSE(pd.is_valid(g, &why));
  EXPECT_NE(why.find("contiguous"), std::string::npos);
}

TEST(PathDecomposition, DetectsOutOfRangeVertex) {
  const auto g = make_path(2);
  PathDecomposition pd({{0, 1, 9}});
  std::string why;
  EXPECT_FALSE(pd.is_valid(g, &why));
}

TEST(PathDecomposition, SingleBagAlwaysValidForAnyGraph) {
  const auto g = make_cycle(5);
  PathDecomposition pd({{0, 1, 2, 3, 4}});
  EXPECT_TRUE(pd.is_valid(g));
}

TEST(PathDecomposition, NodeIntervalsContiguous) {
  PathDecomposition pd({{0, 1}, {1, 2}, {2, 3}});
  const auto intervals = pd.node_intervals(4);
  EXPECT_EQ(intervals[1].first, 0u);
  EXPECT_EQ(intervals[1].last, 1u);
  EXPECT_EQ(intervals[0].first, 0u);
  EXPECT_EQ(intervals[0].last, 0u);
  EXPECT_EQ(intervals[3].first, 2u);
}

TEST(PathDecomposition, ReduceDropsSubsumedBags) {
  const auto g = make_path(3);
  PathDecomposition pd({{0}, {0, 1}, {1}, {1, 2}, {2}});
  const auto removed = pd.reduce();
  EXPECT_EQ(removed, 3u);
  EXPECT_EQ(pd.num_bags(), 2u);
  EXPECT_TRUE(pd.is_valid(g));
}

TEST(PathDecomposition, ReduceKeepsSingleBag) {
  PathDecomposition pd({{0, 1, 2}});
  EXPECT_EQ(pd.reduce(), 0u);
  EXPECT_EQ(pd.num_bags(), 1u);
}

TEST(PathDecomposition, EmptyDecompositionOnlyValidForEmptyGraph) {
  PathDecomposition pd;
  EXPECT_TRUE(pd.is_valid(graph::Graph(0, {})));
  EXPECT_FALSE(pd.is_valid(make_path(1)));
}

TEST(TreeDecomposition, PathAsTreeValid) {
  const auto g = make_path(4);
  const auto td =
      to_tree_decomposition(PathDecomposition({{0, 1}, {1, 2}, {2, 3}}));
  std::string why;
  EXPECT_TRUE(td.is_valid(g, &why)) << why;
}

TEST(TreeDecomposition, StarDecompositionValid) {
  // K_1,3: bags {0,1},{0,2},{0,3} on a star-shaped bag tree.
  const auto g = graph::make_star(4);
  TreeDecomposition td({{0, 1}, {0, 2}, {0, 3}}, {{0, 1}, {1, 2}});
  EXPECT_TRUE(td.is_valid(g));
}

TEST(TreeDecomposition, DetectsDisconnectedVertexSubtree) {
  const auto g = make_path(3);
  // Node 0 in bags 0 and 2, which are not adjacent in the bag tree.
  TreeDecomposition td({{0, 1}, {1, 2}, {0, 2}}, {{0, 1}, {1, 2}});
  std::string why;
  EXPECT_FALSE(td.is_valid(g, &why));
  EXPECT_NE(why.find("subtree"), std::string::npos);
}

TEST(TreeDecomposition, DetectsNonTreeStructure) {
  const auto g = make_path(2);
  TreeDecomposition td({{0, 1}, {0, 1}, {0, 1}}, {{0, 1}});  // 3 bags, 1 edge
  std::string why;
  EXPECT_FALSE(td.is_valid(g, &why));
}

TEST(TreeDecomposition, RejectsBadTreeEdges) {
  EXPECT_THROW(TreeDecomposition({{0}}, {{0, 5}}), std::invalid_argument);
  EXPECT_THROW(TreeDecomposition({{0}, {0}}, {{0, 0}}), std::invalid_argument);
}

}  // namespace
}  // namespace nav::decomp
