// trace.hpp — span tracing behind the NAV_TRACE compile-time toggle.
//
// A span is one timed region of one thread: `{name, tid, t_start, t_end,
// arg}`. Spans land in per-thread ring buffers owned by the process-wide
// Tracer and are exported after the fact as chrome://tracing JSON (load in
// chrome://tracing or Perfetto) or JSONL (one event per line, for scripts).
//
// Two gates keep the cost honest:
//
//   * compile time — NAV_TRACE (default 1; the CMake option NAV_TRACE=OFF
//     defines it to 0 project-wide). With NAV_TRACE=0 the NAV_OBS_SPAN
//     macro expands to a NullSpan — an empty struct whose constructor takes
//     and ignores the arguments — so instrumented code compiles to nothing.
//     Both ScopedSpan and NullSpan are ALWAYS defined (the macro alone
//     switches), so mixed-TU builds cannot violate the ODR.
//
//   * run time — Tracer::set_enabled(). Tracing starts OFF; a disabled
//     tracer costs one relaxed atomic load per span site. Rings are only
//     allocated on a thread's first recorded span.
//
// Span names and arg names must be string literals (or otherwise outlive
// the tracer) — events store the pointers, never copies, so recording stays
// allocation-free once a thread's ring exists. Rings are fixed-capacity and
// wrap: under overload the newest events win and dropped_events() says how
// many were lost. Ring writes take a per-ring mutex — uncontended in
// practice (one writer per ring; exporters touch it only at dump time) and
// TSan-clean by construction. The wait-free guarantee belongs to the
// metrics registry; spans only promise zero-allocation-when-warm.
#pragma once

/// \file
/// \brief obs::Tracer: per-thread span ring buffers with chrome://tracing
/// and JSONL export, compiled out entirely under NAV_TRACE=0.

#include <cstdint>
#include <iosfwd>
#include <memory>

#ifndef NAV_TRACE
#define NAV_TRACE 1
#endif

namespace nav::obs {

/// One completed span. `name`/`arg_name` are unowned pointers to literals.
struct TraceEvent {
  const char* name = nullptr;      ///< span name (string literal)
  std::uint32_t tid = 0;           ///< recording thread (attach order)
  std::uint64_t start_ns = 0;      ///< steady-clock start, ns since trace t0
  std::uint64_t end_ns = 0;        ///< steady-clock end, ns since trace t0
  const char* arg_name = nullptr;  ///< optional argument label (literal)
  double arg = 0.0;                ///< optional argument value
};

namespace detail {
struct TracerState;
}

/// The process-wide span collector. Spans from any thread land in that
/// thread's ring; exporters merge the rings. Never destroyed.
class Tracer {
 public:
  /// The singleton every NAV_OBS_SPAN records into.
  [[nodiscard]] static Tracer& instance();

  /// Turns recording on or off (off by default). Span sites check this with
  /// one relaxed load; toggling does not clear recorded events.
  void set_enabled(bool on) noexcept;
  [[nodiscard]] bool enabled() const noexcept;

  /// Sets the per-thread ring capacity (events). Applies to rings created
  /// after the call; existing rings keep their size. Default 16384.
  void set_ring_capacity(std::size_t events);

  /// Records one completed span into the calling thread's ring. Allocation-
  /// free once the thread's ring exists; drops nothing unless the ring wraps.
  void record(const char* name, std::uint64_t start_ns, std::uint64_t end_ns,
              const char* arg_name = nullptr, double arg = 0.0);

  /// Events currently held across all rings (post-wrap survivors).
  [[nodiscard]] std::size_t event_count() const;
  /// Events lost to ring wrap since the last clear().
  [[nodiscard]] std::uint64_t dropped_events() const;
  /// Discards all recorded events (rings stay attached).
  void clear();

  /// Nanoseconds since the tracer's steady-clock origin — the timebase of
  /// TraceEvent::start_ns/end_ns.
  [[nodiscard]] static std::uint64_t now_ns() noexcept;

  /// Writes all events as a chrome://tracing "traceEvents" JSON document
  /// (complete events, ph:"X", microsecond timestamps).
  void write_chrome_trace(std::ostream& out) const;

  /// Writes all events as JSONL: one {"name",...} object per line.
  void write_jsonl(std::ostream& out) const;

 private:
  Tracer();
  std::shared_ptr<detail::TracerState> state_;
};

/// RAII span: captures the clock on construction (when the tracer is
/// enabled) and records on destruction. Use via NAV_OBS_SPAN.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* arg_name = nullptr,
                      double arg = 0.0) noexcept
      : name_(name), arg_name_(arg_name), arg_(arg) {
    if (Tracer::instance().enabled()) start_ns_ = Tracer::now_ns() + 1;
  }
  ~ScopedSpan() {
    if (start_ns_ != 0) {
      Tracer::instance().record(name_, start_ns_ - 1, Tracer::now_ns(),
                                arg_name_, arg_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches / replaces the span's argument after construction.
  void set_arg(const char* arg_name, double arg) noexcept {
    arg_name_ = arg_name;
    arg_ = arg;
  }

 private:
  const char* name_;
  const char* arg_name_;
  double arg_;
  std::uint64_t start_ns_ = 0;  // 0 = tracer was disabled at entry
};

/// The NAV_TRACE=0 stand-in: same constructor shape, no state, no effect.
struct NullSpan {
  explicit NullSpan(const char*, const char* = nullptr, double = 0.0) noexcept {
  }
  /// No-op mirror of ScopedSpan::set_arg.
  void set_arg(const char*, double) noexcept {}
};

}  // namespace nav::obs

// NAV_OBS_SPAN("name") / NAV_OBS_SPAN("name", "arg", value): opens a span
// covering the rest of the enclosing scope. Compiles to a NullSpan (zero
// code) when NAV_TRACE=0.
#define NAV_OBS_DETAIL_CONCAT2(a, b) a##b
#define NAV_OBS_DETAIL_CONCAT(a, b) NAV_OBS_DETAIL_CONCAT2(a, b)
#if NAV_TRACE
#define NAV_OBS_SPAN(...)                                    \
  ::nav::obs::ScopedSpan NAV_OBS_DETAIL_CONCAT(nav_obs_span_, \
                                               __COUNTER__) { \
    __VA_ARGS__                                               \
  }
#else
#define NAV_OBS_SPAN(...)                                    \
  ::nav::obs::NullSpan NAV_OBS_DETAIL_CONCAT(nav_obs_span_,  \
                                             __COUNTER__) {  \
    __VA_ARGS__                                              \
  }
#endif
