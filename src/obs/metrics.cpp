#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <mutex>
#include <ostream>
#include <unordered_map>

#include "runtime/assert.hpp"

namespace nav::obs {

namespace detail {

// One thread's private block of metric cells. Only the owning thread writes;
// scrape() reads under the registry mutex with relaxed loads (any external
// synchronisation between writer and reader makes the sums exact — see the
// header contract). The cell vector is fixed-size once constructed: when a
// metric registered later needs a cell past the end, the OWNER thread swaps
// the whole shard for a bigger copy under the registry mutex (cells keep
// their values; scrape holds the same mutex, so it sees old or new, never
// both).
struct Shard {
  explicit Shard(std::size_t n) : cells(n) {}
  std::vector<std::atomic<std::uint64_t>> cells;
};

// Cold-side registry state, shared (via shared_ptr) between the Registry
// object, every handle, and every attached thread's TLS keepalive — the
// scratch_pool co-ownership idiom: the last detaching thread can safely be
// the one that frees the shards.
struct RegistryState {
  enum class Kind { kCounter, kGauge, kHistogram };

  struct MetricInfo {
    Kind kind;
    std::string name;
    std::uint32_t cell = 0;    // counter cell / histogram base cell
    std::uint32_t gauge = 0;   // index into gauges
    double lo = 0.0, hi = 1.0; // histogram shape
    std::uint32_t bins = 0;
  };

  mutable std::mutex mutex;
  std::vector<MetricInfo> metrics;                  // registration order
  std::unordered_map<std::string, std::uint32_t> by_name;
  std::uint32_t cells_used = 0;                     // sharded cells allocated
  std::vector<std::unique_ptr<std::atomic<std::int64_t>>> gauges;
  // All shards ever attached. A thread's exit does NOT remove its shard —
  // counts must stay monotone — so entries whose owner died simply stop
  // changing. Growth replaces the entry in place (old values copied).
  std::vector<std::unique_ptr<Shard>> shards;
};

namespace {

// Shard sizing: enough headroom that registering a few late metrics does not
// force a replacement on every thread.
std::size_t shard_capacity_for(std::uint32_t cells_used) {
  std::size_t cap = 64;
  while (cap < cells_used) cap *= 2;
  return cap;
}

// Per-thread map from registry state to its shard. A one-entry last-hit
// cache makes the warm path a pointer compare; the vector scan only runs
// when a thread uses several registries. Destruction drops the keepalives —
// the shards themselves stay in RegistryState::shards.
struct TlsShards {
  struct Entry {
    RegistryState* state;
    Shard* shard;
    std::shared_ptr<RegistryState> keep;
  };
  RegistryState* last_state = nullptr;
  Shard* last_shard = nullptr;
  std::vector<Entry> entries;
};

thread_local TlsShards tls_shards;

// Attaches the calling thread to `state` (allocating its shard) or grows the
// existing shard so `cell` is addressable. The slow path — runs once per
// thread (or per late registration burst), under the registry mutex.
Shard* attach_or_grow(const std::shared_ptr<RegistryState>& state,
                      std::uint32_t cell) {
  TlsShards& tls = tls_shards;
  std::lock_guard<std::mutex> lock(state->mutex);
  const std::size_t cap =
      shard_capacity_for(std::max(state->cells_used, cell + 1));

  for (auto& entry : tls.entries) {
    if (entry.state != state.get()) continue;
    // Grow by replacement: copy values into a bigger shard and swap it into
    // the registry's list so scrape() never sees both.
    auto grown = std::make_unique<Shard>(cap);
    for (std::size_t i = 0; i < entry.shard->cells.size(); ++i) {
      grown->cells[i].store(
          entry.shard->cells[i].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    for (auto& slot : state->shards) {
      if (slot.get() == entry.shard) {
        slot = std::move(grown);
        entry.shard = slot.get();
        break;
      }
    }
    tls.last_state = state.get();
    tls.last_shard = entry.shard;
    return entry.shard;
  }

  state->shards.push_back(std::make_unique<Shard>(cap));
  Shard* shard = state->shards.back().get();
  tls.entries.push_back({state.get(), shard, state});
  tls.last_state = state.get();
  tls.last_shard = shard;
  return shard;
}

}  // namespace

std::atomic<std::uint64_t>& cell_for(
    const std::shared_ptr<RegistryState>& state, std::uint32_t cell) {
  TlsShards& tls = tls_shards;
  Shard* shard = nullptr;
  if (tls.last_state == state.get()) {
    shard = tls.last_shard;
  } else {
    for (auto& entry : tls.entries) {
      if (entry.state == state.get()) {
        shard = entry.shard;
        tls.last_state = entry.state;
        tls.last_shard = entry.shard;
        break;
      }
    }
  }
  if (shard == nullptr || cell >= shard->cells.size()) {
    shard = attach_or_grow(state, cell);
  }
  return shard->cells[cell];
}

std::uint64_t cell_sum(const RegistryState& state, std::uint32_t cell) {
  std::lock_guard<std::mutex> lock(state.mutex);
  std::uint64_t sum = 0;
  for (const auto& shard : state.shards) {
    if (cell < shard->cells.size()) {
      sum += shard->cells[cell].load(std::memory_order_relaxed);
    }
  }
  return sum;
}

}  // namespace detail

void HistogramHandle::observe(double x) const {
  if (state_ == nullptr) return;
  std::uint32_t idx;
  if (x < lo_) {
    idx = bins_;  // underflow cell
  } else if (x >= hi_) {
    idx = bins_ + 1;  // overflow cell
  } else {
    auto b = static_cast<std::uint32_t>((x - lo_) / (hi_ - lo_) *
                                        static_cast<double>(bins_));
    if (b >= bins_) b = bins_ - 1;  // float edge guard
    idx = b;
  }
  auto& cell = detail::cell_for(state_, base_ + idx);
  cell.store(cell.load(std::memory_order_relaxed) + 1,
             std::memory_order_relaxed);
  // The sum cell holds double bits; owner-only writes keep read-modify-write
  // safe without CAS.
  auto& sum = detail::cell_for(state_, base_ + bins_ + 2);
  const double cur =
      std::bit_cast<double>(sum.load(std::memory_order_relaxed));
  sum.store(std::bit_cast<std::uint64_t>(cur + x), std::memory_order_relaxed);
}

std::uint64_t MetricsSnapshot::HistogramValue::total() const noexcept {
  std::uint64_t t = underflow + overflow;
  for (const auto c : counts) t += c;
  return t;
}

double MetricsSnapshot::HistogramValue::mean() const noexcept {
  const auto t = total();
  return t ? sum / static_cast<double>(t) : 0.0;
}

double MetricsSnapshot::HistogramValue::percentile(double q) const {
  NAV_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q must be in [0,1]");
  const auto t = total();
  if (t == 0) return lo;
  const double target = q * static_cast<double>(t);
  double cumulative = static_cast<double>(underflow);
  if (target <= cumulative) return lo;
  const double width =
      (hi - lo) / static_cast<double>(counts.empty() ? 1 : counts.size());
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const auto count = static_cast<double>(counts[b]);
    if (count > 0.0 && target <= cumulative + count) {
      const double frac = (target - cumulative) / count;
      return lo + width * (static_cast<double>(b) + frac);
    }
    cumulative += count;
  }
  return hi;  // target lands in the overflow mass
}

const MetricsSnapshot::CounterValue* MetricsSnapshot::find_counter(
    const std::string& name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const MetricsSnapshot::GaugeValue* MetricsSnapshot::find_gauge(
    const std::string& name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const MetricsSnapshot::HistogramValue* MetricsSnapshot::find_histogram(
    const std::string& name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

Registry::Registry() : state_(std::make_shared<detail::RegistryState>()) {}

Counter Registry::counter(const std::string& name) {
  using Kind = detail::RegistryState::Kind;
  NAV_REQUIRE(!name.empty(), "metric name must be non-empty");
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (auto it = state_->by_name.find(name); it != state_->by_name.end()) {
    const auto& info = state_->metrics[it->second];
    NAV_REQUIRE(info.kind == Kind::kCounter,
                "metric name already registered as a different kind");
    return Counter(state_, info.cell);
  }
  detail::RegistryState::MetricInfo info;
  info.kind = Kind::kCounter;
  info.name = name;
  info.cell = state_->cells_used++;
  state_->by_name.emplace(name,
                          static_cast<std::uint32_t>(state_->metrics.size()));
  state_->metrics.push_back(std::move(info));
  return Counter(state_, state_->metrics.back().cell);
}

Gauge Registry::gauge(const std::string& name) {
  using Kind = detail::RegistryState::Kind;
  NAV_REQUIRE(!name.empty(), "metric name must be non-empty");
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (auto it = state_->by_name.find(name); it != state_->by_name.end()) {
    const auto& info = state_->metrics[it->second];
    NAV_REQUIRE(info.kind == Kind::kGauge,
                "metric name already registered as a different kind");
    return Gauge(state_, state_->gauges[info.gauge].get());
  }
  detail::RegistryState::MetricInfo info;
  info.kind = Kind::kGauge;
  info.name = name;
  info.gauge = static_cast<std::uint32_t>(state_->gauges.size());
  state_->gauges.push_back(std::make_unique<std::atomic<std::int64_t>>(0));
  state_->by_name.emplace(name,
                          static_cast<std::uint32_t>(state_->metrics.size()));
  state_->metrics.push_back(std::move(info));
  return Gauge(state_, state_->gauges.back().get());
}

HistogramHandle Registry::histogram(const std::string& name, double lo,
                                    double hi, std::size_t bins) {
  using Kind = detail::RegistryState::Kind;
  NAV_REQUIRE(!name.empty(), "metric name must be non-empty");
  NAV_REQUIRE(hi > lo, "histogram range must be non-empty");
  NAV_REQUIRE(bins >= 1, "histogram needs at least one bin");
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (auto it = state_->by_name.find(name); it != state_->by_name.end()) {
    const auto& info = state_->metrics[it->second];
    NAV_REQUIRE(info.kind == Kind::kHistogram,
                "metric name already registered as a different kind");
    NAV_REQUIRE(info.lo == lo && info.hi == hi && info.bins == bins,
                "histogram re-registered with a different shape");
    return HistogramHandle(state_, info.cell, info.lo, info.hi, info.bins);
  }
  detail::RegistryState::MetricInfo info;
  info.kind = Kind::kHistogram;
  info.name = name;
  info.cell = state_->cells_used;
  info.lo = lo;
  info.hi = hi;
  info.bins = static_cast<std::uint32_t>(bins);
  // Cell layout: bins | underflow | overflow | sum (double bits).
  state_->cells_used += info.bins + 3;
  state_->by_name.emplace(name,
                          static_cast<std::uint32_t>(state_->metrics.size()));
  state_->metrics.push_back(std::move(info));
  const auto& stored = state_->metrics.back();
  return HistogramHandle(state_, stored.cell, stored.lo, stored.hi,
                         stored.bins);
}

MetricsSnapshot Registry::scrape() const {
  using Kind = detail::RegistryState::Kind;
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(state_->mutex);
  auto sum_cell = [&](std::uint32_t cell) {
    std::uint64_t sum = 0;
    for (const auto& shard : state_->shards) {
      if (cell < shard->cells.size()) {
        sum += shard->cells[cell].load(std::memory_order_relaxed);
      }
    }
    return sum;
  };
  for (const auto& info : state_->metrics) {
    switch (info.kind) {
      case Kind::kCounter:
        snap.counters.push_back({info.name, sum_cell(info.cell)});
        break;
      case Kind::kGauge:
        snap.gauges.push_back(
            {info.name,
             state_->gauges[info.gauge]->load(std::memory_order_relaxed)});
        break;
      case Kind::kHistogram: {
        MetricsSnapshot::HistogramValue h;
        h.name = info.name;
        h.lo = info.lo;
        h.hi = info.hi;
        h.counts.resize(info.bins);
        for (std::uint32_t b = 0; b < info.bins; ++b) {
          h.counts[b] = sum_cell(info.cell + b);
        }
        h.underflow = sum_cell(info.cell + info.bins);
        h.overflow = sum_cell(info.cell + info.bins + 1);
        // Per-shard sums are double bits; add them in double space.
        h.sum = 0.0;
        for (const auto& shard : state_->shards) {
          const std::uint32_t cell = info.cell + info.bins + 2;
          if (cell < shard->cells.size()) {
            h.sum += std::bit_cast<double>(
                shard->cells[cell].load(std::memory_order_relaxed));
          }
        }
        snap.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  return snap;
}

std::size_t Registry::metric_count() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->metrics.size();
}

Registry& default_registry() {
  // Leaked on purpose: library instrumentation handles and exiting threads'
  // TLS destructors may touch it during static teardown.
  static Registry* instance = new Registry();
  return *instance;
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; everything else ('.', '-')
// becomes '_'. All exported series carry the "nav_" namespace prefix.
std::string prometheus_name(const std::string& name) {
  std::string out = "nav_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void write_json_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xF]
          << "0123456789abcdef"[c & 0xF];
    } else {
      out << c;
    }
  }
  out << '"';
}

}  // namespace

void write_prometheus(const MetricsSnapshot& snapshot, std::ostream& out) {
  for (const auto& c : snapshot.counters) {
    const std::string name = prometheus_name(c.name);
    out << "# TYPE " << name << " counter\n";
    out << name << " " << c.value << "\n";
  }
  for (const auto& g : snapshot.gauges) {
    const std::string name = prometheus_name(g.name);
    out << "# TYPE " << name << " gauge\n";
    out << name << " " << g.value << "\n";
  }
  for (const auto& h : snapshot.histograms) {
    const std::string name = prometheus_name(h.name);
    out << "# TYPE " << name << " histogram\n";
    // Prometheus buckets are cumulative; underflow (below lo) folds into the
    // first bucket, overflow rides only in the +Inf series.
    std::uint64_t cumulative = h.underflow;
    const double width =
        (h.hi - h.lo) /
        static_cast<double>(h.counts.empty() ? 1 : h.counts.size());
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      cumulative += h.counts[b];
      out << name << "_bucket{le=\""
          << h.lo + width * static_cast<double>(b + 1) << "\"} " << cumulative
          << "\n";
    }
    out << name << "_bucket{le=\"+Inf\"} " << h.total() << "\n";
    out << name << "_sum " << h.sum << "\n";
    out << name << "_count " << h.total() << "\n";
  }
}

void write_metrics_json(const MetricsSnapshot& snapshot, std::ostream& out) {
  out << "{\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i) out << ",";
    write_json_escaped(out, snapshot.counters[i].name);
    out << ":" << snapshot.counters[i].value;
  }
  out << "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i) out << ",";
    write_json_escaped(out, snapshot.gauges[i].name);
    out << ":" << snapshot.gauges[i].value;
  }
  out << "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    if (i) out << ",";
    write_json_escaped(out, h.name);
    out << ":{\"lo\":" << h.lo << ",\"hi\":" << h.hi << ",\"counts\":[";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b) out << ",";
      out << h.counts[b];
    }
    out << "],\"underflow\":" << h.underflow << ",\"overflow\":" << h.overflow
        << ",\"sum\":" << h.sum << ",\"count\":" << h.total() << "}";
  }
  out << "}}";
}

}  // namespace nav::obs
