// metrics.hpp — the zero-overhead metrics registry.
//
// The serving stack needs live, structured counters without taxing the hot
// paths that produce them: a route hit, a warm prefetch wave, or a BFS sweep
// must not pay a lock — or, worse, an allocation — to be observable. The
// registry splits the cost asymmetrically, the same way runtime/scratch_pool
// splits workspace reuse:
//
//   * registration (counter() / gauge() / histogram()) is the cold side:
//     mutex-protected, allocating, deduplicating by name — call it once at
//     construction time and keep the returned handle;
//
//   * increments are the hot side: each thread owns a private shard of
//     plain 64-bit cells, and an increment is a relaxed load + relaxed store
//     on the calling thread's own cell — WAIT-FREE (no CAS, no retry loop:
//     the owning thread is the only writer) and ZERO-ALLOCATION once the
//     thread's shard exists (it is created on the thread's first increment
//     against the registry, the one exempt moment — the same warm-up
//     contract as BfsWorkspace). The counting-allocator suite and a TSan
//     test pin both properties;
//
//   * aggregation happens only on scrape(): the registry walks every shard
//     (live threads', outgrown and exited threads' — shards are grow-only
//     and never discarded, so counts are monotone and exact) and sums cells
//     into a MetricsSnapshot.
//
// Gauges are the exception to sharding: a gauge is one shared atomic cell
// (set/add/sub are single atomic ops — a live queue depth has one logical
// value, and summing per-thread deltas would make set() meaningless).
//
// Histograms are fixed-bin (lo, hi, bins — the runtime/stats.hpp Histogram
// shape): each shard holds the bin counters plus underflow/overflow and a
// value sum, and the snapshot's HistogramValue offers the same
// interpolated percentile() the streaming Histogram does.
//
// Exact totals under concurrency: writers use relaxed atomics on private
// cells, so a scrape racing an increment may miss the very latest bump —
// but any synchronisation between writer and scraper (a mutex both sides
// hold, a joined thread) makes the sums exact. RouteService exploits this:
// its counters are written under its queue mutex, so queue_stats() reads
// are bit-identical to the pre-registry struct counters.
//
// Handles are trivially copyable POD-ish values; a default-constructed
// handle is a no-op (lets instrumentation be optional without branching on
// registry presence at every call site). Handles must not outlive their
// Registry. default_registry() is the process-wide instance (never
// destroyed) that library-level instrumentation — BFS engine, distance
// oracles, worker team — records into.
#pragma once

/// \file
/// \brief obs::Registry: wait-free per-thread-sharded counters, gauges, and
/// fixed-bin histograms, aggregated on scrape() into a MetricsSnapshot with
/// Prometheus text and JSON writers.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace nav::obs {

namespace detail {
struct RegistryState;
struct Shard;
/// Resolves the calling thread's shard cell (attaching / growing the shard
/// on first touch — the only allocating path).
[[nodiscard]] std::atomic<std::uint64_t>& cell_for(
    const std::shared_ptr<RegistryState>& state, std::uint32_t cell);
/// Aggregated value of one cell across every shard (locks the registry).
[[nodiscard]] std::uint64_t cell_sum(const RegistryState& state,
                                     std::uint32_t cell);
}  // namespace detail

/// Monotone event counter. Hot path: wait-free, zero-allocation once the
/// calling thread's shard exists.
class Counter {
 public:
  /// No-op handle (instrumentation disabled).
  Counter() = default;

  /// Adds `n` to the calling thread's cell.
  void inc(std::uint64_t n = 1) const {
    if (state_ == nullptr) return;
    auto& cell = detail::cell_for(state_, cell_);
    cell.store(cell.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
  }

  /// Aggregate value across every thread's shard (locks the registry; exact
  /// when writers are quiesced or synchronised with the caller).
  [[nodiscard]] std::uint64_t value() const {
    return state_ ? detail::cell_sum(*state_, cell_) : 0;
  }

 private:
  friend class Registry;
  Counter(std::shared_ptr<detail::RegistryState> state, std::uint32_t cell)
      : state_(std::move(state)), cell_(cell) {}

  std::shared_ptr<detail::RegistryState> state_;
  std::uint32_t cell_ = 0;
};

/// Instantaneous signed value (queue depth, resident entries). One shared
/// atomic cell: set/add/sub are single wait-free atomic ops from any thread.
class Gauge {
 public:
  /// No-op handle (instrumentation disabled).
  Gauge() = default;

  void set(std::int64_t v) const noexcept {
    if (cell_) cell_->store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) const noexcept {
    if (cell_) cell_->fetch_add(d, std::memory_order_relaxed);
  }
  void sub(std::int64_t d) const noexcept { add(-d); }

  /// Raises the gauge to `v` if above the current value (high-water marks).
  /// Lock-free CAS loop; call sites that already serialise writers (e.g.
  /// under their own mutex) never retry.
  void set_max(std::int64_t v) const noexcept {
    if (cell_ == nullptr) return;
    std::int64_t cur = cell_->load(std::memory_order_relaxed);
    while (cur < v && !cell_->compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    return cell_ ? cell_->load(std::memory_order_relaxed) : 0;
  }

 private:
  friend class Registry;
  Gauge(std::shared_ptr<detail::RegistryState> state,
        std::atomic<std::int64_t>* cell)
      : state_(std::move(state)), cell_(cell) {}

  std::shared_ptr<detail::RegistryState> state_;  // keeps the cell alive
  std::atomic<std::int64_t>* cell_ = nullptr;
};

/// Fixed-bin histogram over [lo, hi) with underflow/overflow counters and a
/// value sum — the sharded sibling of nav::Histogram. observe() is wait-free
/// and zero-allocation once the thread's shard exists.
class HistogramHandle {
 public:
  /// No-op handle (instrumentation disabled).
  HistogramHandle() = default;

  /// Records one sample into the calling thread's shard.
  void observe(double x) const;

 private:
  friend class Registry;
  HistogramHandle(std::shared_ptr<detail::RegistryState> state,
                  std::uint32_t base, double lo, double hi, std::uint32_t bins)
      : state_(std::move(state)), base_(base), lo_(lo), hi_(hi), bins_(bins) {}

  std::shared_ptr<detail::RegistryState> state_;
  std::uint32_t base_ = 0;  // cells: bins | underflow | overflow | sum bits
  double lo_ = 0.0, hi_ = 1.0;
  std::uint32_t bins_ = 0;
};

/// Point-in-time aggregation of a registry: everything scrape() saw, in
/// registration order (deterministic output for goldens and diffs).
struct MetricsSnapshot {
  /// One counter's aggregated value.
  struct CounterValue {
    std::string name;          ///< registered name
    std::uint64_t value = 0;   ///< sum across all shards
  };
  /// One gauge's current value.
  struct GaugeValue {
    std::string name;          ///< registered name
    std::int64_t value = 0;    ///< the shared cell
  };
  /// One histogram's aggregated bins.
  struct HistogramValue {
    std::string name;          ///< registered name
    double lo = 0.0;           ///< range start (inclusive)
    double hi = 1.0;           ///< range end (exclusive)
    std::vector<std::uint64_t> counts;  ///< per-bin counts
    std::uint64_t underflow = 0;        ///< samples below lo
    std::uint64_t overflow = 0;         ///< samples at or above hi
    double sum = 0.0;                   ///< sum of observed values

    /// Total samples (bins + underflow + overflow).
    [[nodiscard]] std::uint64_t total() const noexcept;
    /// Mean of observed values (0 when empty).
    [[nodiscard]] double mean() const noexcept;
    /// Interpolated percentile from the binned counts, mirroring
    /// nav::Histogram::percentile: underflow resolves to lo, overflow to hi,
    /// `q` in [0, 1]. Returns lo on an empty histogram (a snapshot is a
    /// report, not a precondition site).
    [[nodiscard]] double percentile(double q) const;
  };

  std::vector<CounterValue> counters;      ///< registration order
  std::vector<GaugeValue> gauges;          ///< registration order
  std::vector<HistogramValue> histograms;  ///< registration order

  /// Lookup by registered name; nullptr when absent.
  [[nodiscard]] const CounterValue* find_counter(const std::string& name) const;
  [[nodiscard]] const GaugeValue* find_gauge(const std::string& name) const;
  [[nodiscard]] const HistogramValue* find_histogram(
      const std::string& name) const;
};

/// The registry: cold-side registration and scrape over hot-side sharded
/// cells. Movable, not copyable (copies would silently alias cells).
class Registry {
 public:
  Registry();
  Registry(Registry&&) noexcept = default;
  Registry& operator=(Registry&&) noexcept = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registers (or re-fetches) a counter. Registering an existing name
  /// returns a handle to the same cell; a name already registered as a
  /// different metric kind throws std::invalid_argument.
  [[nodiscard]] Counter counter(const std::string& name);

  /// Registers (or re-fetches) a gauge.
  [[nodiscard]] Gauge gauge(const std::string& name);

  /// Registers (or re-fetches) a fixed-bin histogram over [lo, hi). A
  /// re-fetch with a different (lo, hi, bins) shape throws.
  [[nodiscard]] HistogramHandle histogram(const std::string& name, double lo,
                                          double hi, std::size_t bins);

  /// Aggregates every metric across every shard into a snapshot.
  [[nodiscard]] MetricsSnapshot scrape() const;

  /// Registered metrics (counters + gauges + histograms).
  [[nodiscard]] std::size_t metric_count() const;

 private:
  std::shared_ptr<detail::RegistryState> state_;
};

/// The process-wide registry library-level instrumentation records into
/// (BFS engine sweep kinds, oracle hit/miss, worker-team dispatches).
/// Never destroyed, so handles and thread shards stay valid through exit.
[[nodiscard]] Registry& default_registry();

/// Writes the snapshot in Prometheus text exposition format: metric names
/// are prefixed "nav_" and sanitised ('.' and other non-identifier bytes
/// become '_'); histograms emit cumulative _bucket{le=...} series plus
/// _sum and _count, with underflow folded into the first bucket.
void write_prometheus(const MetricsSnapshot& snapshot, std::ostream& out);

/// Writes the snapshot as one JSON object {"counters": {...}, "gauges":
/// {...}, "histograms": {...}} — the embeddable form (bench cells, traces).
void write_metrics_json(const MetricsSnapshot& snapshot, std::ostream& out);

}  // namespace nav::obs
