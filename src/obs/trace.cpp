#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <ostream>
#include <vector>

namespace nav::obs {

namespace detail {

// One thread's span ring. The owning thread appends under `mutex`; the
// mutex is uncontended except while an exporter drains, so a warm record()
// is a lock + two stores — and allocation-free, which is what the alloc
// harness pins.
struct Ring {
  explicit Ring(std::size_t capacity, std::uint32_t tid_) : tid(tid_) {
    events.resize(capacity);
  }
  mutable std::mutex mutex;
  std::uint32_t tid;                // attach order, stable across runs
  std::vector<TraceEvent> events;   // fixed-size ring storage
  std::size_t next = 0;             // write cursor
  std::uint64_t total = 0;          // events ever recorded
};

struct TracerState {
  std::atomic<bool> enabled{false};
  std::atomic<std::size_t> ring_capacity{16384};
  mutable std::mutex mutex;              // guards `rings`
  std::vector<std::unique_ptr<Ring>> rings;
};

namespace {

// Per-thread ring pointer; the keepalive lets a ring-owning thread outlive
// the (never-destroyed) singleton in any teardown order.
struct TlsRing {
  Ring* ring = nullptr;
  std::shared_ptr<TracerState> keep;
};

thread_local TlsRing tls_ring;

Ring* attach_ring(const std::shared_ptr<TracerState>& state) {
  std::lock_guard<std::mutex> lock(state->mutex);
  const auto tid = static_cast<std::uint32_t>(state->rings.size());
  state->rings.push_back(std::make_unique<Ring>(
      state->ring_capacity.load(std::memory_order_relaxed), tid));
  tls_ring.ring = state->rings.back().get();
  tls_ring.keep = state;
  return tls_ring.ring;
}

}  // namespace

}  // namespace detail

Tracer::Tracer() : state_(std::make_shared<detail::TracerState>()) {}

Tracer& Tracer::instance() {
  // Leaked on purpose: spans may close during static teardown.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::set_enabled(bool on) noexcept {
  state_->enabled.store(on, std::memory_order_relaxed);
}

bool Tracer::enabled() const noexcept {
  return state_->enabled.load(std::memory_order_relaxed);
}

void Tracer::set_ring_capacity(std::size_t events) {
  state_->ring_capacity.store(events < 16 ? 16 : events,
                              std::memory_order_relaxed);
}

std::uint64_t Tracer::now_ns() noexcept {
  // One steady origin per process makes every ring's timestamps comparable.
  static const auto t0 = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

void Tracer::record(const char* name, std::uint64_t start_ns,
                    std::uint64_t end_ns, const char* arg_name, double arg) {
  detail::Ring* ring = detail::tls_ring.ring;
  if (ring == nullptr) ring = detail::attach_ring(state_);
  std::lock_guard<std::mutex> lock(ring->mutex);
  TraceEvent& ev = ring->events[ring->next];
  ev.name = name;
  ev.tid = ring->tid;
  ev.start_ns = start_ns;
  ev.end_ns = end_ns;
  ev.arg_name = arg_name;
  ev.arg = arg;
  ring->next = (ring->next + 1) % ring->events.size();
  ++ring->total;
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  std::size_t n = 0;
  for (const auto& ring : state_->rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    n += ring->total < ring->events.size()
             ? static_cast<std::size_t>(ring->total)
             : ring->events.size();
  }
  return n;
}

std::uint64_t Tracer::dropped_events() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  std::uint64_t dropped = 0;
  for (const auto& ring : state_->rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    if (ring->total > ring->events.size()) {
      dropped += ring->total - ring->events.size();
    }
  }
  return dropped;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(state_->mutex);
  for (const auto& ring : state_->rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    ring->next = 0;
    ring->total = 0;
  }
}

namespace {

void write_json_string(std::ostream& out, const char* s) {
  out << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xF]
          << "0123456789abcdef"[c & 0xF];
    } else {
      out << c;
    }
  }
  out << '"';
}

// Visits each ring's surviving events in recording order (oldest first once
// the ring has wrapped).
template <typename Fn>
void for_each_event(const detail::TracerState& state, Fn&& fn) {
  std::lock_guard<std::mutex> lock(state.mutex);
  for (const auto& ring : state.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    const std::size_t cap = ring->events.size();
    const std::size_t held = ring->total < cap
                                 ? static_cast<std::size_t>(ring->total)
                                 : cap;
    const std::size_t first = ring->total < cap ? 0 : ring->next;
    for (std::size_t i = 0; i < held; ++i) {
      fn(ring->events[(first + i) % cap]);
    }
  }
}

void write_event_fields(std::ostream& out, const TraceEvent& ev) {
  out << "{\"name\":";
  write_json_string(out, ev.name);
  // chrome://tracing complete event: ph "X", ts/dur in microseconds.
  out << ",\"ph\":\"X\",\"pid\":1,\"tid\":" << ev.tid
      << ",\"ts\":" << static_cast<double>(ev.start_ns) / 1000.0
      << ",\"dur\":" << static_cast<double>(ev.end_ns - ev.start_ns) / 1000.0;
  if (ev.arg_name != nullptr) {
    out << ",\"args\":{";
    write_json_string(out, ev.arg_name);
    out << ":" << ev.arg << "}";
  }
  out << "}";
}

}  // namespace

void Tracer::write_chrome_trace(std::ostream& out) const {
  out << "{\"traceEvents\":[";
  bool first = true;
  for_each_event(*state_, [&](const TraceEvent& ev) {
    if (!first) out << ",";
    first = false;
    out << "\n";
    write_event_fields(out, ev);
  });
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void Tracer::write_jsonl(std::ostream& out) const {
  for_each_event(*state_, [&](const TraceEvent& ev) {
    write_event_fields(out, ev);
    out << "\n";
  });
}

}  // namespace nav::obs
