#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "runtime/assert.hpp"

namespace nav {

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  NAV_ASSERT(task != nullptr);
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  if (workers_.empty()) {
    // Inline drain: repeatedly pop and run on the calling thread.
    while (true) {
      std::function<void()> task;
      {
        std::lock_guard lock(mutex_);
        if (queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

std::size_t ThreadPool::default_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
    }
    cv_idle_.notify_all();
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t workers = std::max<std::size_t>(1, pool.thread_count());
  if (workers == 1 || total == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  // Static chunking, ~4 chunks per worker to smooth imbalance while keeping
  // scheduling deterministic in *work*, if not in interleaving.
  const std::size_t chunks = std::min(total, workers * 4);
  const std::size_t chunk_size = (total + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk_size);
    pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    });
  }
  pool.wait_idle();
}

void parallel_for_dynamic(ThreadPool& pool, std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t)>& body) {
  parallel_for_dynamic(pool, begin, end, body, /*max_workers=*/0);
}

void parallel_for_dynamic(ThreadPool& pool, std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t)>& body,
                          std::size_t max_workers) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  std::size_t workers = std::max<std::size_t>(1, pool.thread_count());
  if (max_workers != 0) workers = std::min(workers, max_workers);
  if (workers == 1 || total == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  // Shared claim counter: tasks race to fetch the next index, so a long
  // iteration occupies one worker while the rest drain the remainder.
  auto next = std::make_shared<std::atomic<std::size_t>>(begin);
  const std::size_t tasks = std::min(total, workers);
  for (std::size_t w = 0; w < tasks; ++w) {
    pool.submit([next, end, &body] {
      for (std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
           i < end; i = next->fetch_add(1, std::memory_order_relaxed)) {
        body(i);
      }
    });
  }
  pool.wait_idle();
}

void parallel_for_dynamic(std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t)>& body) {
  parallel_for_dynamic(global_pool(), begin, end, body);
}

void parallel_for_dynamic(std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t)>& body,
                          std::size_t max_workers) {
  parallel_for_dynamic(global_pool(), begin, end, body, max_workers);
}

ThreadPool& global_pool() {
  static ThreadPool pool(ThreadPool::default_threads());
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  parallel_for(global_pool(), begin, end, body);
}

}  // namespace nav
