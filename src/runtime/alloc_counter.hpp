// alloc_counter.hpp — opt-in process-wide heap allocation counting.
//
// The zero-allocation contracts of the BFS engine ("a warm workspace BFS
// performs no heap allocation"; "a steady-state oracle hit performs no heap
// allocation") are *tested*, not just asserted in comments. Proof needs a
// counting allocator, and replacing ::operator new is a per-program decision
// (the replacement must be defined exactly once per binary), so this header
// only declares the query API; a binary that wants counting places
//
//   NAV_DEFINE_ALLOC_COUNTER()
//
// at namespace scope in exactly one of its translation units (the alloc test
// suite and bench_micro do). Binaries that never invoke the macro keep the
// stock allocator and pay nothing.
//
// Counting is a single relaxed atomic increment per allocation; deallocation
// is not counted (the contracts are about allocation pressure). All replaced
// forms funnel through malloc/free, so sanitizers still interpose normally.
#pragma once

#include <cstdint>

namespace nav {

/// Allocations performed by this process so far. Only meaningful in binaries
/// that define the counting allocator via NAV_DEFINE_ALLOC_COUNTER();
/// elsewhere the symbol is simply absent (link error on misuse, not silence).
[[nodiscard]] std::uint64_t allocation_count() noexcept;

/// Bytes requested from the allocator so far (same caveats). Lets tests
/// distinguish small bookkeeping nodes from an O(n) buffer that slipped
/// through a recycling path.
[[nodiscard]] std::uint64_t allocation_bytes() noexcept;

}  // namespace nav

// The macro body needs these; include here so call sites stay one-liners.
#include <atomic>
#include <cstdlib>
#include <new>

#define NAV_DEFINE_ALLOC_COUNTER()                                            \
  namespace nav::alloc_counter_detail {                                       \
  std::atomic<std::uint64_t> g_count{0};                                      \
  std::atomic<std::uint64_t> g_bytes{0};                                      \
  inline void* counted_alloc(std::size_t size) {                              \
    g_count.fetch_add(1, std::memory_order_relaxed);                          \
    g_bytes.fetch_add(size, std::memory_order_relaxed);                       \
    return std::malloc(size == 0 ? 1 : size);                                 \
  }                                                                           \
  inline void* counted_aligned_alloc(std::size_t size, std::size_t align) {   \
    g_count.fetch_add(1, std::memory_order_relaxed);                          \
    g_bytes.fetch_add(size, std::memory_order_relaxed);                       \
    void* p = nullptr;                                                        \
    if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,     \
                       size == 0 ? 1 : size) != 0) {                          \
      return nullptr;                                                         \
    }                                                                         \
    return p;                                                                 \
  }                                                                           \
  }                                                                           \
  namespace nav {                                                             \
  std::uint64_t allocation_count() noexcept {                                 \
    return alloc_counter_detail::g_count.load(std::memory_order_relaxed);     \
  }                                                                           \
  std::uint64_t allocation_bytes() noexcept {                                 \
    return alloc_counter_detail::g_bytes.load(std::memory_order_relaxed);     \
  }                                                                           \
  }                                                                           \
  void* operator new(std::size_t size) {                                      \
    if (void* p = ::nav::alloc_counter_detail::counted_alloc(size)) return p; \
    throw std::bad_alloc();                                                   \
  }                                                                           \
  void* operator new[](std::size_t size) { return ::operator new(size); }     \
  void* operator new(std::size_t size, const std::nothrow_t&) noexcept {      \
    return ::nav::alloc_counter_detail::counted_alloc(size);                  \
  }                                                                           \
  void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {    \
    return ::nav::alloc_counter_detail::counted_alloc(size);                  \
  }                                                                           \
  void* operator new(std::size_t size, std::align_val_t align) {              \
    void* p = ::nav::alloc_counter_detail::counted_aligned_alloc(             \
        size, static_cast<std::size_t>(align));                               \
    if (p == nullptr) throw std::bad_alloc();                                 \
    return p;                                                                 \
  }                                                                           \
  void* operator new[](std::size_t size, std::align_val_t align) {            \
    return ::operator new(size, align);                                       \
  }                                                                           \
  void operator delete(void* p) noexcept { std::free(p); }                    \
  void operator delete[](void* p) noexcept { std::free(p); }                  \
  void operator delete(void* p, std::size_t) noexcept { std::free(p); }       \
  void operator delete[](void* p, std::size_t) noexcept { std::free(p); }     \
  void operator delete(void* p, const std::nothrow_t&) noexcept {             \
    std::free(p);                                                             \
  }                                                                           \
  void operator delete[](void* p, const std::nothrow_t&) noexcept {           \
    std::free(p);                                                             \
  }                                                                           \
  void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }  \
  void operator delete[](void* p, std::align_val_t) noexcept {                \
    std::free(p);                                                             \
  }                                                                           \
  void operator delete(void* p, std::size_t, std::align_val_t) noexcept {     \
    std::free(p);                                                             \
  }                                                                           \
  void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {   \
    std::free(p);                                                             \
  }                                                                           \
  static_assert(true, "NAV_DEFINE_ALLOC_COUNTER requires a trailing semicolon")
