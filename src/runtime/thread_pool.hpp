// thread_pool.hpp — a small blocking-queue thread pool plus parallel_for.
//
// The simulation workloads are embarrassingly parallel (independent routing
// trials, independent BFS sources). We only need:
//   * ThreadPool::submit(fn)                — fire-and-forget task;
//   * parallel_for(pool, begin, end, body)  — static-chunked index loop that
//                                             blocks until all chunks finish.
//
// Determinism contract: `body(i)` must derive all randomness from the index i
// (e.g. `rng.child(i)`), never from thread identity. Under that contract the
// results are identical for any pool size, including size 0 (inline fallback).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nav {

class ThreadPool {
 public:
  /// Creates `threads` workers. 0 is allowed: tasks then run inline inside
  /// wait_idle()/parallel_for, which keeps single-threaded debugging trivial.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks (unbounded queue).
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  /// With zero workers, drains the queue on the calling thread.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// A sensible default size for this machine (hardware_concurrency, >= 1).
  [[nodiscard]] static std::size_t default_threads() noexcept;

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_task_;   // signalled when a task is available
  std::condition_variable cv_idle_;   // signalled when a task completes
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs body(i) for every i in [begin, end), distributing contiguous chunks
/// over the pool. Blocks until complete. Exceptions in body() terminate the
/// program (tasks are noexcept-by-policy; simulation bodies must not throw).
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

/// Convenience overload using a process-wide pool sized to the hardware.
/// The global pool is created on first use and lives until process exit.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

/// Like parallel_for, but with dynamic (work-stealing-style) scheduling: one
/// worker task per pool thread, each claiming the next unclaimed index from a
/// shared atomic counter. Use when iteration costs are very uneven — e.g.
/// RouteService target shards, where one shard may hold most of a batch's
/// pairs — and static chunking would leave workers idle. Blocks until
/// complete; the determinism contract of parallel_for applies unchanged
/// (body(i) must derive randomness from i alone). Must not be called from
/// inside a pool task: like parallel_for it waits on pool idleness, which a
/// task can never observe for its own pool.
void parallel_for_dynamic(ThreadPool& pool, std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t)>& body);

/// parallel_for_dynamic over the process-wide pool.
void parallel_for_dynamic(std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t)>& body);

/// parallel_for_dynamic with the worker fan-out capped at `max_workers`
/// (0 = pool width): at most that many claim tasks are submitted, so callers
/// can honor a graph::ParallelPolicy narrower than the process-wide pool
/// without resizing it. max_workers == 1 runs inline on the caller.
void parallel_for_dynamic(ThreadPool& pool, std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t)>& body,
                          std::size_t max_workers);

/// The capped overload on the process-wide pool.
void parallel_for_dynamic(std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t)>& body,
                          std::size_t max_workers);

/// Access to the process-wide pool (created on first use).
ThreadPool& global_pool();

}  // namespace nav
