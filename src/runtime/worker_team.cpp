#include "runtime/worker_team.hpp"

#include "obs/metrics.hpp"
#include "runtime/thread_pool.hpp"

namespace nav {

namespace {

// Counted on the dispatching (coordinator) thread only — worker lanes never
// touch the registry, keeping warm run() calls allocation-free.
obs::Counter& team_dispatches() {
  static obs::Counter* c =
      new obs::Counter(obs::default_registry().counter("worker_team.dispatches"));
  return *c;
}

}  // namespace

WorkerTeam::WorkerTeam(std::size_t lanes)
    : lanes_(lanes == 0 ? ThreadPool::default_threads() : lanes) {}

WorkerTeam::~WorkerTeam() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_go_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void WorkerTeam::run_raw(void (*fn)(void*, std::size_t), void* ctx) {
  team_dispatches().inc();
  if (lanes_ <= 1) {
    fn(ctx, 0);
    return;
  }
  if (!started_) {
    // Lazy startup: the one moment a team allocates. Kernels warm a team
    // before entering their measured (allocation-free) steady state.
    threads_.reserve(lanes_ - 1);
    for (std::size_t lane = 1; lane < lanes_; ++lane) {
      threads_.emplace_back([this, lane] { worker_loop(lane); });
    }
    started_ = true;
  }
  {
    std::lock_guard lock(mutex_);
    fn_ = fn;
    ctx_ = ctx;
    remaining_ = lanes_ - 1;
    ++generation_;
  }
  cv_go_.notify_all();
  fn(ctx, 0);  // the caller is lane 0
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [this] { return remaining_ == 0; });
}

void WorkerTeam::worker_loop(std::size_t lane) {
  std::uint64_t seen = 0;
  while (true) {
    void (*fn)(void*, std::size_t);
    void* ctx;
    {
      std::unique_lock lock(mutex_);
      cv_go_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = fn_;
      ctx = ctx_;
    }
    fn(ctx, lane);
    bool last;
    {
      std::lock_guard lock(mutex_);
      last = --remaining_ == 0;
    }
    if (last) cv_done_.notify_one();
  }
}

}  // namespace nav
