#include "runtime/worker_team.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "runtime/assert.hpp"
#include "runtime/thread_pool.hpp"

namespace nav {

namespace {

// Counted on the dispatching (coordinator) thread only — worker lanes never
// touch the registry, keeping warm run() calls allocation-free.
obs::Counter& team_dispatches() {
  static obs::Counter* c =
      new obs::Counter(obs::default_registry().counter("worker_team.dispatches"));
  return *c;
}

}  // namespace

WorkerTeam::WorkerTeam(std::size_t lanes)
    : lanes_(lanes == 0 ? ThreadPool::default_threads() : lanes),
      failed_(lanes_, 0),
      gen_failed_(lanes_, 0) {}

WorkerTeam::~WorkerTeam() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_go_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void WorkerTeam::fail_lane(std::size_t lane, std::uint64_t after_dispatches) {
  NAV_REQUIRE(lane >= 1 && lane < lanes_,
              "fail_lane needs a worker lane in [1, lanes())");
  std::lock_guard lock(mutex_);
  if (after_dispatches == 0) {
    failed_[lane] = 1;
    any_failed_ = true;
  } else {
    pending_failures_.emplace_back(lane, after_dispatches);
  }
}

void WorkerTeam::heal_lanes() {
  std::lock_guard lock(mutex_);
  std::fill(failed_.begin(), failed_.end(), std::uint8_t{0});
  pending_failures_.clear();
  any_failed_ = false;
}

std::size_t WorkerTeam::failed_lanes() const {
  std::lock_guard lock(mutex_);
  return static_cast<std::size_t>(
      std::count(failed_.begin(), failed_.end(), std::uint8_t{1}));
}

void WorkerTeam::run_raw(void (*fn)(void*, std::size_t), void* ctx) {
  team_dispatches().inc();
  if (lanes_ <= 1) {
    fn(ctx, 0);
    return;
  }
  if (!started_) {
    // Lazy startup: the one moment a team allocates. Kernels warm a team
    // before entering their measured (allocation-free) steady state.
    threads_.reserve(lanes_ - 1);
    for (std::size_t lane = 1; lane < lanes_; ++lane) {
      threads_.emplace_back([this, lane] { worker_loop(lane); });
    }
    started_ = true;
  }
  bool take_over = false;
  {
    std::lock_guard lock(mutex_);
    // Countdown-triggered failures fire at dispatch boundaries, so a
    // "lose lane 2 after 3 sweeps" injection is deterministic: dispatch
    // counts are a pure function of the kernel's level structure.
    if (!pending_failures_.empty()) {
      // A countdown of N survives exactly N dispatches: activate when it
      // reaches zero BEFORE this dispatch, decrement otherwise.
      for (auto it = pending_failures_.begin();
           it != pending_failures_.end();) {
        if (it->second == 0) {
          failed_[it->first] = 1;
          any_failed_ = true;
          it = pending_failures_.erase(it);
        } else {
          --it->second;
          ++it;
        }
      }
    }
    // Latch this generation's failure snapshot: lanes read gen_failed_ for
    // the generation they latched, never the live mask. Same-size vector
    // assign — element copy, no allocation.
    gen_failed_ = failed_;
    take_over = any_failed_;
    fn_ = fn;
    ctx_ = ctx;
    remaining_ = lanes_ - 1;
    ++generation_;
  }
  cv_go_.notify_all();
  fn(ctx, 0);  // the caller is lane 0
  if (take_over) {
    // Coverage guarantee: execute every failed lane's body on the
    // coordinator, after lane 0's own share. Writes in team kernels are
    // lane-owned or idempotent, so output bits do not depend on which
    // thread ran the lane — only liveness does.
    for (std::size_t lane = 1; lane < lanes_; ++lane) {
      if (gen_failed_[lane] != 0) fn(ctx, lane);
    }
  }
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [this] { return remaining_ == 0; });
}

void WorkerTeam::worker_loop(std::size_t lane) {
  std::uint64_t seen = 0;
  while (true) {
    void (*fn)(void*, std::size_t);
    void* ctx;
    bool failed;
    {
      std::unique_lock lock(mutex_);
      cv_go_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = fn_;
      ctx = ctx_;
      failed = gen_failed_[lane] != 0;
    }
    // A failed lane keeps the barrier protocol (latch, decrement, notify)
    // but skips the body — the coordinator runs it instead.
    if (!failed) fn(ctx, lane);
    bool last;
    {
      std::lock_guard lock(mutex_);
      last = --remaining_ == 0;
    }
    if (last) cv_done_.notify_one();
  }
}

}  // namespace nav
