// scratch_pool.hpp — reusable per-thread / checkout-pooled scratch state.
//
// Hot loops (one BFS per routed target, one ball per contact sample) must not
// pay a heap allocation per call. The pattern used across the library is a
// *workspace*: an object owning grow-only buffers that are prepared in O(1)
// and reused for the lifetime of the thread. Two mechanisms, one header:
//
//   * thread_scratch<T>() — the per-worker-thread singleton. Each OS thread
//     (pool workers included) lazily constructs one T and keeps it until
//     thread exit. This is the production path for BfsWorkspace: calls from
//     nav::parallel_for bodies hit their worker's private instance with zero
//     synchronisation.
//
//   * ScratchPool<T> — an explicit checkout pool for code that must not key
//     scratch on thread identity (objects handed across service threads, or
//     bounded-memory scenarios where per-thread pinning is too hungry).
//     acquire() returns a RAII Lease; destruction returns the instance for
//     reuse. Steady state performs no allocation: instances recycle.
//
// T must be default-constructible. Neither mechanism ever shrinks a scratch
// instance — workspaces grow to the largest problem seen and stay there,
// which is exactly the amortised-zero-allocation contract callers want.
#pragma once

#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace nav {

/// The calling thread's lazily-constructed scratch singleton of type T.
/// Distinct T's get distinct singletons; distinct threads never share one.
template <typename T>
[[nodiscard]] T& thread_scratch() {
  thread_local T instance;
  return instance;
}

/// A mutex-protected free list of T instances. acquire() pops a recycled
/// instance (or default-constructs the first time); the Lease returns it on
/// destruction. The pool may be destroyed while leases are outstanding —
/// leases co-own the free list, so returns after pool death are safe (the
/// instance is simply dropped with the list).
template <typename T>
class ScratchPool {
 public:
  /// RAII checkout: dereference for the instance; returns it to the pool on
  /// destruction. Movable, not copyable.
  class Lease {
   public:
    Lease(Lease&&) noexcept = default;
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();  // the held instance goes back, never gets destroyed
        shared_ = std::move(other.shared_);
        instance_ = std::move(other.instance_);
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    ~Lease() { release(); }

    [[nodiscard]] T& operator*() const noexcept { return *instance_; }
    [[nodiscard]] T* operator->() const noexcept { return instance_.get(); }

   private:
    friend class ScratchPool;
    Lease(std::shared_ptr<typename ScratchPool::Shared> shared,
          std::unique_ptr<T> instance)
        : shared_(std::move(shared)), instance_(std::move(instance)) {}

    void release() noexcept {
      if (instance_ == nullptr) return;  // moved-from or already returned
      std::lock_guard lock(shared_->mutex);
      shared_->free.push_back(std::move(instance_));
    }

    std::shared_ptr<typename ScratchPool::Shared> shared_;
    std::unique_ptr<T> instance_;
  };

  /// Checks out an instance: recycled when available, fresh otherwise.
  [[nodiscard]] Lease acquire() {
    std::unique_ptr<T> instance;
    {
      std::lock_guard lock(shared_->mutex);
      if (!shared_->free.empty()) {
        instance = std::move(shared_->free.back());
        shared_->free.pop_back();
      }
    }
    if (instance == nullptr) instance = std::make_unique<T>();
    return Lease(shared_, std::move(instance));
  }

  /// Instances currently waiting for reuse (diagnostics / tests).
  [[nodiscard]] std::size_t idle() const {
    std::lock_guard lock(shared_->mutex);
    return shared_->free.size();
  }

 private:
  struct Shared {
    mutable std::mutex mutex;
    std::vector<std::unique_ptr<T>> free;
  };
  std::shared_ptr<Shared> shared_ = std::make_shared<Shared>();
};

}  // namespace nav
