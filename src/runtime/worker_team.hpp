// worker_team.hpp — a persistent fork-join team for intra-kernel parallelism.
//
// ThreadPool + parallel_for is the right tool for farming *independent* work
// items (rows of a DistanceMatrix, shards of a batch). It is the wrong tool
// for a parallel *kernel* — a single BFS sweep that fans out and rejoins many
// times per call: submit() allocates a std::function per task, wait_idle()
// waits on the whole pool (so a kernel cannot run while the pool serves other
// work), and pool width is global rather than per-kernel.
//
// WorkerTeam is the complement: a fixed set of lanes (caller thread = lane 0
// plus size()-1 private threads) that execute one body per run() call and
// rejoin at an internal barrier. Dispatch is a raw function pointer + context
// pointer — no std::function, no queue nodes — so a warm run() performs ZERO
// heap allocations, which is what lets the parallel BFS kernels keep the
// engine's allocation-free contract (tests/alloc). Threads start lazily on
// the first run() that needs them ("worker-pool startup" is the one moment
// the zero-allocation proofs exempt) and park on a condition variable
// between runs.
//
// Unlike parallel_for, run() may be called from inside a ThreadPool task:
// the team's lanes are private threads, so there is no pool-idleness wait to
// deadlock on. A team is NOT re-entrant — one run() at a time per instance.
//
// Lane-failure injection (nav::resilience): fail_lane() marks a worker lane
// failed, optionally after a countdown of dispatches (so a test can lose a
// lane MID-sweep at a deterministic point). A failed lane still participates
// in the barrier protocol — it latches each generation and decrements the
// join counter — but skips the body; the coordinator (lane 0) executes the
// skipped lane's body after its own, so every lane index in [0, lanes()) is
// still executed exactly once per run(). Kernels whose writes are lane-owned
// or idempotent (ParallelBfs bottom-up ranges, frontier rebuild prefix sums,
// CAS-published depths) therefore produce BIT-IDENTICAL output with and
// without failed lanes — only the thread that ran the range differs.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace nav {

class WorkerTeam {
 public:
  /// A team of `lanes` lanes (0 = one per hardware thread, minimum 1). Lane
  /// 0 is the caller of run(); lanes-1 private threads are started lazily by
  /// the first run() on a team wider than one lane.
  explicit WorkerTeam(std::size_t lanes = 0);

  /// Joins the private threads (after draining any parked run).
  ~WorkerTeam();

  WorkerTeam(const WorkerTeam&) = delete;
  WorkerTeam& operator=(const WorkerTeam&) = delete;

  /// Total lanes, including the calling thread's lane 0.
  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_; }

  /// True once the private threads have been spawned (diagnostics; the
  /// zero-allocation tests warm the team first and assert this).
  [[nodiscard]] bool started() const noexcept { return started_; }

  /// Runs body(lane) on every lane in [0, lanes()) concurrently — lane 0 on
  /// the calling thread — and returns when ALL lanes have finished (a full
  /// barrier). `body` must not throw (lanes are noexcept-by-policy, like
  /// pool tasks) and must not call run() on the same team. Zero heap
  /// allocations once the threads are started.
  template <typename F>
  void run(F&& body) {
    using Body = std::remove_reference_t<F>;
    run_raw(
        [](void* ctx, std::size_t lane) { (*static_cast<Body*>(ctx))(lane); },
        std::addressof(body));
  }

  /// Fault injection: marks worker lane `lane` (1 <= lane < lanes()) failed
  /// once `after_dispatches` further dispatches have completed healthily
  /// (0 = the very next run() already runs degraded). From then on the lane's body is executed by the coordinator
  /// instead — full work coverage, bit-identical kernel output (see the
  /// header comment). Lane 0 is the caller and cannot fail. Thread-safe;
  /// takes effect at dispatch boundaries only, so a sweep in flight is never
  /// torn mid-generation.
  void fail_lane(std::size_t lane, std::uint64_t after_dispatches = 0);

  /// Clears every injected lane failure (pending and active).
  void heal_lanes();

  /// Worker lanes currently marked failed.
  [[nodiscard]] std::size_t failed_lanes() const;

 private:
  void run_raw(void (*fn)(void*, std::size_t), void* ctx);
  void worker_loop(std::size_t lane);

  std::size_t lanes_;
  bool started_ = false;
  std::vector<std::thread> threads_;

  mutable std::mutex mutex_;
  std::condition_variable cv_go_;    // a new generation is ready
  std::condition_variable cv_done_;  // a lane finished the generation
  void (*fn_)(void*, std::size_t) = nullptr;
  void* ctx_ = nullptr;
  std::uint64_t generation_ = 0;  // bumped per run(); lanes latch onto it
  std::size_t remaining_ = 0;     // worker lanes still inside the generation
  bool stop_ = false;

  // Lane-failure injection state (all under mutex_). failed_/gen_failed_
  // are sized at construction so marking and latching never allocate;
  // gen_failed_ is the per-generation snapshot lanes and the coordinator
  // read (stable for the whole generation — fail_lane during a sweep only
  // affects the NEXT dispatch).
  std::vector<std::uint8_t> failed_;
  std::vector<std::uint8_t> gen_failed_;
  std::vector<std::pair<std::size_t, std::uint64_t>> pending_failures_;
  bool any_failed_ = false;
};

}  // namespace nav
