#include "runtime/discrete_distribution.hpp"

#include <numeric>

#include "runtime/assert.hpp"

namespace nav {

DiscreteDistribution::DiscreteDistribution(const std::vector<double>& weights) {
  NAV_REQUIRE(!weights.empty(), "empty weight vector");
  double total = 0.0;
  for (const double w : weights) {
    NAV_REQUIRE(w >= 0.0, "negative weight");
    total += w;
  }
  NAV_REQUIRE(total > 0.0, "all weights are zero");

  const std::size_t n = weights.size();
  prob_.resize(n);
  for (std::size_t i = 0; i < n; ++i) prob_[i] = weights[i] / total;

  // Vose's stable alias construction.
  threshold_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) scaled[i] = prob_[i] * static_cast<double>(n);
  std::vector<std::uint32_t> small, large;
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const auto s = small.back();
    small.pop_back();
    const auto l = large.back();
    large.pop_back();
    threshold_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (const auto i : large) threshold_[i] = 1.0;
  for (const auto i : small) threshold_[i] = 1.0;  // numerical leftovers
}

std::size_t DiscreteDistribution::sample(Rng& rng) const {
  const std::size_t i = rng.next_below(prob_.size());
  return rng.next_double() < threshold_[i] ? i : alias_[i];
}

double DiscreteDistribution::probability(std::size_t i) const {
  NAV_REQUIRE(i < prob_.size(), "index out of range");
  return prob_[i];
}

}  // namespace nav
