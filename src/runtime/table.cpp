#include "runtime/table.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "runtime/assert.hpp"

namespace nav {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  NAV_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  NAV_REQUIRE(cells.size() == headers_.size(),
              "row width does not match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  return out.str();
}

std::string Table::integer(std::uint64_t v) { return std::to_string(v); }

std::string Table::with_ci(double mean, double halfwidth, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << mean << " +- "
      << halfwidth;
  return out.str();
}

const std::vector<std::string>& Table::row(std::size_t i) const {
  NAV_REQUIRE(i < rows_.size(), "table row out of range");
  return rows_[i];
}

namespace {

std::vector<std::size_t> column_widths(
    const std::vector<std::string>& headers,
    const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) widths[c] = headers[c].size();
  for (const auto& row : rows)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  return widths;
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::to_ascii() const {
  const auto widths = column_widths(headers_, rows_);
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (const auto w : widths) rule += w + 2;
  out << std::string(rule, '-') << '\n';
  for (const auto& r : rows_) emit_row(r);
  return out.str();
}

std::string Table::to_markdown() const {
  std::ostringstream out;
  out << '|';
  for (const auto& h : headers_) out << ' ' << h << " |";
  out << "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) out << "---|";
  out << '\n';
  for (const auto& r : rows_) {
    out << '|';
    for (const auto& cell : r) out << ' ' << cell << " |";
    out << '\n';
  }
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out << ',';
    out << csv_escape(headers_[c]);
  }
  out << '\n';
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) out << ',';
      out << csv_escape(r[c]);
    }
    out << '\n';
  }
  return out.str();
}

void Table::save_csv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot open for write: " + path);
  file << to_csv();
  if (!file) throw std::runtime_error("write failed: " + path);
}

}  // namespace nav
