#include "runtime/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "runtime/assert.hpp"

namespace nav {

void RunningStats::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const noexcept {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double RunningStats::ci_halfwidth(double level) const noexcept {
  double z = 1.96;
  if (level >= 0.989) z = 2.576;
  else if (level >= 0.949) z = 1.96;
  else if (level >= 0.899) z = 1.645;
  return z * stderr_mean();
}

namespace {

/// percentile() on an already-sorted sample (shared with summarize, which
/// sorts once for all of its quantiles).
double percentile_sorted(const std::vector<double>& samples, double q) {
  NAV_REQUIRE(!samples.empty(), "percentile of empty sample");
  NAV_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q must be in [0,1]");
  if (samples.size() == 1) return samples[0];
  const double pos = q * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace

double percentile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  return percentile_sorted(samples, q);
}

QuantileSummary summarize(std::vector<double> samples) {
  QuantileSummary out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  out.count = samples.size();
  double sum = 0.0;
  for (const double x : samples) sum += x;
  out.mean = sum / static_cast<double>(samples.size());
  out.min = samples.front();
  out.max = samples.back();
  out.p50 = percentile_sorted(samples, 0.50);
  out.p90 = percentile_sorted(samples, 0.90);
  out.p95 = percentile_sorted(samples, 0.95);
  out.p99 = percentile_sorted(samples, 0.99);
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  NAV_REQUIRE(hi > lo, "histogram range must be non-empty");
  NAV_REQUIRE(bins >= 1, "histogram needs at least one bin");
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double span = hi_ - lo_;
  auto b = static_cast<std::size_t>((x - lo_) / span *
                                    static_cast<double>(counts_.size()));
  if (b >= counts_.size()) b = counts_.size() - 1;  // float edge guard
  ++counts_[b];
}

std::size_t Histogram::bin_count(std::size_t b) const {
  NAV_REQUIRE(b < counts_.size(), "histogram bin out of range");
  return counts_[b];
}

double Histogram::percentile(double q) const {
  NAV_REQUIRE(total_ > 0, "percentile of empty histogram");
  NAV_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q must be in [0,1]");
  const double target = q * static_cast<double>(total_);
  double cumulative = static_cast<double>(underflow_);
  if (target <= cumulative) return lo_;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto count = static_cast<double>(counts_[b]);
    if (count > 0.0 && target <= cumulative + count) {
      const double frac = (target - cumulative) / count;
      return bin_lo(b) + frac * (bin_hi(b) - bin_lo(b));
    }
    cumulative += count;
  }
  return hi_;  // target lands in the overflow mass
}

double Histogram::bin_lo(std::size_t b) const {
  NAV_REQUIRE(b < counts_.size(), "histogram bin out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(b) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t b) const {
  return bin_lo(b) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar = counts_[b] * width / peak;
    out << "[" << bin_lo(b) << ", " << bin_hi(b) << ") "
        << std::string(bar, '#') << " " << counts_[b] << "\n";
  }
  return out.str();
}

PowerFit fit_power_law(const std::vector<double>& xs,
                       const std::vector<double>& ys) {
  NAV_REQUIRE(xs.size() == ys.size(), "fit_power_law: size mismatch");
  std::vector<double> lx, ly;
  lx.reserve(xs.size());
  ly.reserve(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] > 0.0 && ys[i] > 0.0) {
      lx.push_back(std::log(xs[i]));
      ly.push_back(std::log(ys[i]));
    }
  }
  PowerFit fit;
  const std::size_t n = lx.size();
  if (n < 2) return fit;
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += lx[i];
    sy += ly[i];
    sxx += lx[i] * lx[i];
    sxy += lx[i] * ly[i];
    syy += ly[i] * ly[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return fit;
  fit.slope = (dn * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / dn;
  const double ss_tot = syy - sy * sy / dn;
  double ss_res = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double pred = fit.slope * lx[i] + fit.intercept;
    ss_res += (ly[i] - pred) * (ly[i] - pred);
  }
  fit.r_squared = ss_tot > 1e-12 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace nav
