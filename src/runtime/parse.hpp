// parse.hpp — strict numeric parsing for registry/CLI spec strings.
//
// Every spec parser in the tree ("lookahead:<d>", "zipf:<s>",
// "burst:<size>:<gap>", "bounded:<pairs>", ...) needs the same contract: a
// token is a number exactly — no signs on unsigned, no trailing garbage, no
// overflow — or the whole spec is rejected loudly. One from_chars wrapper
// serves them all so the behaviour (and the error text) cannot drift.
#pragma once

#include <charconv>
#include <stdexcept>
#include <string>
#include <vector>

namespace nav {

/// Splits "name:arg1:arg2" into its ':'-separated tokens (empty tokens
/// preserved, so "trace:" yields {"trace", ""} and parses can reject it).
[[nodiscard]] inline std::vector<std::string> split_spec(
    const std::string& spec) {
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = spec.find(':', start);
    if (colon == std::string::npos) {
      tokens.push_back(spec.substr(start));
      return tokens;
    }
    tokens.push_back(spec.substr(start, colon - start));
    start = colon + 1;
  }
}

/// Parses `token` as a T (integral or floating), rejecting empty tokens,
/// signs on unsigned types, trailing garbage, and overflow. `spec` is the
/// enclosing spec string, named in the std::invalid_argument on failure.
template <typename T>
[[nodiscard]] T parse_spec_number(const std::string& token,
                                  const std::string& spec) {
  T value{};
  const auto [end, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (token.empty() || ec != std::errc() ||
      end != token.data() + token.size()) {
    throw std::invalid_argument("bad number '" + token + "' in spec: " +
                                spec);
  }
  return value;
}

}  // namespace nav
