// stats.hpp — streaming statistics, confidence intervals, histograms, and
// log-log exponent fitting for the experiment harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace nav {

/// Welford's online mean/variance accumulator. Numerically stable; O(1) space.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean.
  [[nodiscard]] double stderr_mean() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Half-width of the normal-approximation confidence interval at the given
  /// level (supported levels: 0.90, 0.95, 0.99; others use 1.96).
  [[nodiscard]] double ci_halfwidth(double level = 0.95) const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile of a sample (linear interpolation between order statistics).
/// `q` in [0, 1]. Sorts a copy; intended for end-of-run reporting.
[[nodiscard]] double percentile(std::vector<double> samples, double q);

/// Order-statistics summary of one sample: the latency-style report
/// (p50/p90/p95/p99) the workload layer attaches to every run. Percentiles
/// use the same interpolation as percentile(); one sort serves all of them.
struct QuantileSummary {
  std::size_t count = 0;  ///< sample size (all other fields 0 when empty)
  double mean = 0.0;      ///< arithmetic mean
  double min = 0.0;       ///< smallest sample
  double max = 0.0;       ///< largest sample
  double p50 = 0.0;       ///< median
  double p90 = 0.0;       ///< 90th percentile
  double p95 = 0.0;       ///< 95th percentile
  double p99 = 0.0;       ///< 99th percentile
};

/// Summarises a sample in one pass (empty input yields a zero summary).
[[nodiscard]] QuantileSummary summarize(std::vector<double> samples);

/// Fixed-width histogram over [lo, hi) with `bins` buckets plus overflow /
/// underflow counters. Used for chain-length distributions (Milgram example).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t b) const;

  /// Percentile estimate from the binned counts (`q` in [0, 1]): walks the
  /// cumulative counts and interpolates linearly inside the crossing bin.
  /// Underflow resolves to `lo`, overflow to `hi`. Unlike percentile() this
  /// needs no retained samples — the streaming-friendly variant.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t b) const;
  [[nodiscard]] double bin_hi(std::size_t b) const;

  /// Multi-line ASCII rendering (for examples / reports).
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

/// Least-squares fit of log(y) = slope * log(x) + intercept.
/// Used to estimate the empirical exponent of steps-vs-n curves: the paper's
/// bounds predict slope ~0.5 (uniform on path), ~1/3 (ball scheme), ~0
/// (polylog schemes). Points with x <= 0 or y <= 0 are rejected.
struct PowerFit {
  double slope = 0.0;
  double intercept = 0.0;  // log-space intercept
  double r_squared = 0.0;
};
[[nodiscard]] PowerFit fit_power_law(const std::vector<double>& xs,
                                     const std::vector<double>& ys);

}  // namespace nav
