// table.hpp — paper-style result tables.
//
// Every bench binary reports its experiment as a table: one row per
// (family, n) or (scheme, parameter) point, columns for means, CIs, fitted
// exponents. Tables render to aligned ASCII for terminals, to GitHub markdown
// for EXPERIMENTS.md, and to CSV for downstream plotting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace nav {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Formatting helpers for numeric cells.
  [[nodiscard]] static std::string num(double v, int precision = 2);
  [[nodiscard]] static std::string integer(std::uint64_t v);
  /// "12.3 ± 0.4" — mean with CI half-width.
  [[nodiscard]] static std::string with_ci(double mean, double halfwidth,
                                           int precision = 2);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const;

  /// Aligned ASCII with a rule under the header.
  [[nodiscard]] std::string to_ascii() const;
  /// GitHub-flavoured markdown.
  [[nodiscard]] std::string to_markdown() const;
  /// RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  [[nodiscard]] std::string to_csv() const;

  /// Writes CSV to a file; throws std::runtime_error on I/O failure.
  void save_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nav
