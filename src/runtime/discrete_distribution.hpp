// discrete_distribution.hpp — O(1) sampling from a fixed discrete
// distribution via Walker's alias method.
//
// Used by the torus Kleinberg scheme (one table over grid offsets shared by
// all nodes) and by the rank scheme's harmonic rank table.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/rng.hpp"

namespace nav {

class DiscreteDistribution {
 public:
  /// `weights` >= 0, at least one positive. Probabilities are weights
  /// normalised by their sum.
  explicit DiscreteDistribution(const std::vector<double>& weights);

  /// Index in [0, size()) with probability proportional to its weight.
  [[nodiscard]] std::size_t sample(Rng& rng) const;

  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

  /// Exact probability of index i (normalised weight).
  [[nodiscard]] double probability(std::size_t i) const;

 private:
  std::vector<double> prob_;         // normalised input
  std::vector<double> threshold_;    // alias acceptance thresholds
  std::vector<std::uint32_t> alias_; // alias targets
};

}  // namespace nav
