// assert.hpp — precondition and invariant checking for navscheme.
//
// Two macros with distinct contracts:
//   NAV_REQUIRE(cond, msg)  — public API precondition; throws std::invalid_argument.
//                             Always active (callers may rely on it).
//   NAV_ASSERT(cond)        — internal invariant; aborts with a diagnostic.
//                             Active in all build types: the algorithms here are
//                             simulation substrates whose correctness is the
//                             product, and the checks live on cold paths.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace nav {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "NAV_ASSERT failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace nav

#define NAV_ASSERT(cond)                                  \
  do {                                                    \
    if (!(cond)) ::nav::assert_fail(#cond, __FILE__, __LINE__); \
  } while (0)

#define NAV_REQUIRE(cond, msg)                            \
  do {                                                    \
    if (!(cond)) throw std::invalid_argument(std::string("navscheme: ") + (msg)); \
  } while (0)
