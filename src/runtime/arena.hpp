// arena.hpp — slab arena of fixed-size, refcount-recycled slots.
//
// The distance oracle used to allocate one std::vector<Dist> per cached
// target: at steady state every cache miss paid a heap round trip sized by
// the graph. SlabArena replaces that with chunked slabs carved into
// fixed-size slots handed out as shared_ptr handles:
//
//   * try_acquire() pops a recycled slot from the free list — no allocation
//     in steady state. Chunks are only allocated while the arena grows
//     towards its slot budget, so memory stays proportional to what is
//     actually live (a cache with a huge MemoryBudget on a small working set
//     never touches most of its budget).
//   * The returned shared_ptr owns the *slot*: when the last copy drops, the
//     slot re-enters the free list. A consumer can therefore pin a slot past
//     eviction from whatever index structure sits on top (the LRU contract
//     of TargetDistanceCache) — the slot is recycled only when every pin is
//     gone.
//   * Handles co-own the arena state: destroying the arena object while
//     handles are live is safe; the slabs are freed with the last handle.
//
// Slots are never zeroed on acquire — callers overwrite them fully (a BFS
// kernel writes every entry of its output span). T must be trivially
// destructible (slots are recycled, not destroyed).
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

#include "runtime/assert.hpp"

namespace nav {

template <typename T>
class SlabArena {
  static_assert(std::is_trivially_destructible_v<T>,
                "SlabArena recycles slots without running destructors");

 public:
  /// An arena of up to `slot_count` slots of `slot_size` T's each. Chunks of
  /// `slots_per_chunk` slots are allocated on demand (0 = auto: ~8 MiB per
  /// chunk, at least one slot, never more than the budget).
  SlabArena(std::size_t slot_count, std::size_t slot_size,
            std::size_t slots_per_chunk = 0)
      : state_(std::make_shared<State>()),
        slot_count_(slot_count),
        slot_size_(slot_size == 0 ? 1 : slot_size) {
    NAV_REQUIRE(slot_count >= 1, "arena needs at least one slot");
    if (slots_per_chunk == 0) {
      constexpr std::size_t kChunkBytes = 8u << 20;
      slots_per_chunk = kChunkBytes / (slot_size_ * sizeof(T));
    }
    slots_per_chunk_ = std::max<std::size_t>(1, std::min(slots_per_chunk, slot_count_));
  }

  /// A writable slot of slot_size() T's (uninitialised), or nullptr when
  /// every slot is pinned. The handle returns the slot to the free list on
  /// destruction and keeps the slab alive past the arena itself.
  [[nodiscard]] std::shared_ptr<T> try_acquire() {
    T* slot = nullptr;
    {
      std::lock_guard lock(state_->mutex);
      if (!state_->free_slots.empty()) {
        slot = state_->free_slots.back();
        state_->free_slots.pop_back();
      } else if (state_->slots_allocated < slot_count_) {
        const std::size_t grow =
            std::min(slots_per_chunk_, slot_count_ - state_->slots_allocated);
        state_->chunks.emplace_back(new T[grow * slot_size_]);
        T* const chunk = state_->chunks.back().get();
        // Hand out the first slot; queue the rest for later acquires.
        slot = chunk;
        for (std::size_t i = grow; i-- > 1;) {
          state_->free_slots.push_back(chunk + i * slot_size_);
        }
        state_->slots_allocated += grow;
      }
      if (slot != nullptr) ++state_->slots_in_use;
    }
    if (slot == nullptr) return nullptr;
    // The deleter's copy of `state` keeps slabs alive until the last handle.
    std::shared_ptr<State> state = state_;
    return std::shared_ptr<T>(slot, [state](T* p) {
      std::lock_guard lock(state->mutex);
      state->free_slots.push_back(p);
      --state->slots_in_use;
    });
  }

  [[nodiscard]] std::size_t slot_size() const noexcept { return slot_size_; }
  [[nodiscard]] std::size_t slot_count() const noexcept { return slot_count_; }

  /// Slots held by live handles right now.
  [[nodiscard]] std::size_t slots_in_use() const {
    std::lock_guard lock(state_->mutex);
    return state_->slots_in_use;
  }
  /// Slots carved out of chunks so far (the arena's memory high-water mark).
  [[nodiscard]] std::size_t slots_allocated() const {
    std::lock_guard lock(state_->mutex);
    return state_->slots_allocated;
  }

 private:
  struct State {
    mutable std::mutex mutex;
    std::vector<std::unique_ptr<T[]>> chunks;
    std::vector<T*> free_slots;
    std::size_t slots_allocated = 0;
    std::size_t slots_in_use = 0;
  };

  std::shared_ptr<State> state_;
  std::size_t slot_count_;
  std::size_t slot_size_;
  std::size_t slots_per_chunk_;
};

}  // namespace nav
