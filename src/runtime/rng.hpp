// rng.hpp — deterministic, splittable random number generation.
//
// The simulation harness runs millions of Monte-Carlo routing trials, possibly
// in parallel. Reproducibility requirements:
//   * a single master seed determines every result bit-for-bit;
//   * results must not depend on thread count or scheduling.
//
// Design: Xoshiro256++ as the core engine (fast, 2^256-1 period, passes BigCrush
// in its family), seeded through SplitMix64 as recommended by the Xoshiro
// authors. Deterministic parallelism is obtained by *stream splitting*: each
// logical task derives an independent child stream via `child(i)`, which hashes
// (state, i) through SplitMix64. Two distinct split paths yield streams that
// are independent for all practical purposes.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "runtime/assert.hpp"

namespace nav {

/// SplitMix64 step: the standard 64-bit finalizer-based PRNG used for seeding.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Xoshiro256++ engine. Satisfies std::uniform_random_bit_generator, so it can
/// drive <random> distributions, but the library mostly uses the bounded
/// helpers below (Lemire rejection sampling — unbiased and allocation-free).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit state words from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0xdecafbadULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
    // All-zero state is the one forbidden fixed point; SplitMix64 cannot emit
    // four zero words in a row from any seed, but keep the guard explicit.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Unbiased uniform integer in [0, bound). Requires bound >= 1.
  /// Lemire's multiply-shift method with rejection: reject the low product
  /// word when it falls below 2^64 mod bound, which makes every residue class
  /// equally likely. Expected iterations < 2 for any bound.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept {
    NAV_ASSERT(bound >= 1);
    __extension__ using u128 = unsigned __int128;
    const std::uint64_t threshold = (0ULL - bound) % bound;  // 2^64 mod bound
    while (true) {
      const std::uint64_t x = (*this)();
      const u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
      const std::uint64_t low = static_cast<std::uint64_t>(m);
      if (low >= threshold) return static_cast<std::uint64_t>(m >> 64);
    }
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool next_bool(double p) noexcept { return next_double() < p; }

  /// Derives a deterministic, (practically) independent child stream.
  /// child(i) != child(j) streams for i != j; splitting is composable:
  /// root.child(a).child(b) is a stable address in the stream tree.
  [[nodiscard]] Rng child(std::uint64_t index) const noexcept {
    // Mix the full current state with the index through SplitMix64 twice.
    std::uint64_t h = state_[0] ^ rotl(state_[1], 13) ^ rotl(state_[2], 29) ^
                      rotl(state_[3], 47);
    std::uint64_t sm = h ^ (0x9e3779b97f4a7c15ULL + index);
    const std::uint64_t s1 = splitmix64_next(sm);
    const std::uint64_t s2 = splitmix64_next(sm);
    Rng out(0);
    out.state_ = {s1, s2, splitmix64_next(sm), splitmix64_next(sm)};
    if ((out.state_[0] | out.state_[1] | out.state_[2] | out.state_[3]) == 0)
      out.state_[0] = 1;
    return out;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Samples an index in [0, n) — the most common operation in the schemes.
[[nodiscard]] inline std::uint32_t random_index(Rng& rng, std::size_t n) noexcept {
  NAV_ASSERT(n >= 1);
  return static_cast<std::uint32_t>(rng.next_below(n));
}

}  // namespace nav
