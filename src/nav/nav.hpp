// nav/nav.hpp — the navscheme umbrella header: the whole public surface in
// one include.
//
// Bench binaries, examples, and downstream users include ONLY this header.
// The layering underneath (graph -> core -> routing -> api) remains the
// internal structure; this facade re-exports it so call sites don't wire
// subsystem headers by hand.
//
// The 60-second tour:
//
//   #include "nav/nav.hpp"
//   using namespace nav;
//
//   // One object owning graph + distance oracle + scheme + router:
//   auto engine = api::NavigationEngine::from_family("path", 4096);
//   engine.use_scheme("ball").use_router("lookahead:1");
//   auto hop_count = engine.route(0, 4095, Rng(7)).steps;
//
//   // Declarative sweep grids with structured output:
//   auto result = api::Experiment::on("cycle")
//                     .sizes({1024, 4096})
//                     .schemes({"uniform", "ball", "ml"})
//                     .routers({"greedy", "lookahead:1"})
//                     .run();
//   std::cout << result.table().to_ascii();
//
//   // Batch routing service: target-sharded oracle reuse, deterministic,
//   // always-on via submit() (see docs/ARCHITECTURE.md and docs/API.md):
//   api::RouteService service(engine);
//   auto batch = service.route_batch(pairs, Rng(9));
//
//   // Demand models + admission-controlled load driving:
//   auto zipf = workload::make_workload("zipf:1.1", engine.graph(), Rng(3));
//   workload::TrafficDriver driver(service, *zipf);
//   std::cout << driver.run(Rng(4)).table().to_ascii();
#pragma once

/// \file
/// \brief Umbrella header: the whole navscheme public surface in one
/// include.

/// \namespace nav
/// \brief Root namespace — runtime, graph, core, decomposition, routing,
/// api layers.

/// \namespace nav::api
/// \brief The facade: NavigationEngine, Experiment, RouteService,
/// ResultSink.

/// \namespace nav::workload
/// \brief Demand models (make_workload) and open-loop load driving
/// (TrafficDriver) for RouteService.

/// \namespace nav::dynamic
/// \brief Dynamic graphs: mutation streams (make_mutation_stream),
/// epoch-versioned DynamicGraph, incremental oracle invalidation
/// (DynamicOracle), and the feedback-driven RewireScheme.

/// \namespace nav::obs
/// \brief Observability: the wait-free sharded metrics Registry
/// (counters/gauges/histograms, scrape() aggregation, Prometheus and JSON
/// writers) and the NAV_TRACE span Tracer with chrome://tracing export.

// runtime — deterministic RNG, stats, tables, timing, the thread pool,
// scratch pooling and slab arenas.
#include "runtime/arena.hpp"
#include "runtime/assert.hpp"
#include "runtime/discrete_distribution.hpp"
#include "runtime/parse.hpp"
#include "runtime/rng.hpp"
#include "runtime/scratch_pool.hpp"
#include "runtime/stats.hpp"
#include "runtime/table.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"

// graph — CSR graphs, generators, the family registry, real-graph
// ingestion, distances (exact and landmark-approximate), and the
// make_oracle backend registry.
#include "graph/bfs.hpp"
#include "graph/bfs_engine.hpp"
#include "graph/connectivity.hpp"
#include "graph/diameter.hpp"
#include "graph/dist_slab.hpp"
#include "graph/distance_oracle.hpp"
#include "graph/families.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/graph_io.hpp"
#include "graph/interval_model.hpp"
#include "graph/landmark_oracle.hpp"
#include "graph/oracle_factory.hpp"
#include "graph/permutation_model.hpp"

// core — augmentation schemes and the scheme registry.
#include "core/augmentation_matrix.hpp"
#include "core/ball_scheme.hpp"
#include "core/growth_scheme.hpp"
#include "core/kleinberg_scheme.hpp"
#include "core/labeling.hpp"
#include "core/level_hierarchy.hpp"
#include "core/ml_scheme.hpp"
#include "core/name_independent.hpp"
#include "core/rank_scheme.hpp"
#include "core/restricted_label_scheme.hpp"
#include "core/scheme.hpp"
#include "core/scheme_factory.hpp"
#include "core/uniform_scheme.hpp"

// decomposition — pathshape machinery behind Theorem 2.
#include "decomposition/builders.hpp"
#include "decomposition/decomposition.hpp"
#include "decomposition/exact.hpp"
#include "decomposition/interval_decomposition.hpp"
#include "decomposition/measures.hpp"
#include "decomposition/pathshape.hpp"
#include "decomposition/permutation_decomposition.hpp"
#include "decomposition/tree_path_decomposition.hpp"

// routing — routers, the router registry, Monte-Carlo estimation.
#include "routing/exact_analysis.hpp"
#include "routing/greedy_router.hpp"
#include "routing/lookahead_router.hpp"
#include "routing/router.hpp"
#include "routing/router_factory.hpp"
#include "routing/trial_runner.hpp"

// obs — the metrics registry (wait-free sharded counters, scrape-time
// aggregation) and the NAV_TRACE span tracer.
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

// dynamic — mutation streams over epoch-versioned graphs, incremental
// oracle invalidation, and the feedback-driven rewire scheme.
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/invalidation.hpp"
#include "dynamic/mutation_stream.hpp"
#include "dynamic/rewire_scheme.hpp"

// resilience — deterministic fault injection (seeded fault schedules, the
// faulty: oracle decorator, virtual-time latency) for chaos testing the
// serving stack.
#include "resilience/fault_spec.hpp"
#include "resilience/faulty_oracle.hpp"
#include "resilience/virtual_clock.hpp"

// api — the facade: engine, experiment builder, batch service, result
// sinks, trajectory documents.
#include "api/engine.hpp"
#include "api/experiment.hpp"
#include "api/result_sink.hpp"
#include "api/route_service.hpp"
#include "api/trajectory.hpp"

// workload — demand models and admission-controlled load driving.
#include "workload/traffic_driver.hpp"
#include "workload/workload.hpp"
