// augmentation_matrix.hpp — augmentation matrices (paper Definition 1) and
// the scheme obtained by pairing a matrix with a labeling.
//
// An augmentation matrix of size n is A = (p_{i,j}) with p_{i,j} ∈ [0,1] and
// row sums Σ_j p_{i,j} <= 1 (sub-stochastic rows allowed: the residual mass
// means "no long-range link"). Rows/columns are indexed by *labels* 1..n.
//
// Matrices are exposed through an abstract MatrixView because the matrices of
// interest (uniform, the Theorem 2 hierarchy matrix A, their mix M=(A+U)/2)
// are structured — entries are computed on demand and rows are sampled in
// O(log n), never materialising n² storage. ExplicitMatrix covers small-n
// tests and the Theorem 1 adversary on arbitrary matrices.
#pragma once

#include <memory>
#include <optional>

#include "core/labeling.hpp"
#include "core/scheme.hpp"

namespace nav::core {

/// Label type: 1-based per the paper.
using Label = std::uint32_t;

class MatrixView {
 public:
  virtual ~MatrixView() = default;

  /// Matrix size n (labels range over [1, n]).
  [[nodiscard]] virtual Label size() const = 0;

  /// p_{i,j} for labels i, j in [1, n].
  [[nodiscard]] virtual double entry(Label i, Label j) const = 0;

  /// Samples from row i: a label with probability p_{i,j}, or nullopt with
  /// the residual probability 1 - Σ_j p_{i,j}.
  [[nodiscard]] virtual std::optional<Label> sample_row(Label i, Rng& rng) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Σ_j p_{i,j} (<= 1 by Definition 1).
  [[nodiscard]] virtual double row_sum(Label i) const;
};

using MatrixPtr = std::shared_ptr<const MatrixView>;

/// Uniform matrix U: u_{i,j} = 1/n.
class UniformMatrix final : public MatrixView {
 public:
  explicit UniformMatrix(Label n);
  [[nodiscard]] Label size() const override { return n_; }
  [[nodiscard]] double entry(Label i, Label j) const override;
  [[nodiscard]] std::optional<Label> sample_row(Label i, Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "U"; }

 private:
  Label n_;
};

/// Theorem 2 hierarchy matrix A: a_{i,j} = 1/(1+log2 n) for j ∈ A(i) ∩ [1,n].
class HierarchyMatrix final : public MatrixView {
 public:
  explicit HierarchyMatrix(Label n);
  [[nodiscard]] Label size() const override { return n_; }
  [[nodiscard]] double entry(Label i, Label j) const override;
  [[nodiscard]] std::optional<Label> sample_row(Label i, Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "A"; }

  /// 1/(1 + log2 n) — each ancestor's probability.
  [[nodiscard]] double ancestor_probability() const noexcept { return prob_; }

 private:
  Label n_;
  double prob_;
  std::uint32_t slots_;  // ceil(1 + log2 n): sampling grid
};

/// Even mixture M = (A + B)/2 — Theorem 2 uses M = (A + U)/2.
class MixMatrix final : public MatrixView {
 public:
  MixMatrix(MatrixPtr a, MatrixPtr b);
  [[nodiscard]] Label size() const override { return a_->size(); }
  [[nodiscard]] double entry(Label i, Label j) const override;
  [[nodiscard]] std::optional<Label> sample_row(Label i, Rng& rng) const override;
  [[nodiscard]] std::string name() const override;

 private:
  MatrixPtr a_, b_;
};

/// Dense matrix for small n (tests, Theorem 1 adversary instances).
class ExplicitMatrix final : public MatrixView {
 public:
  /// Zero matrix of size n (every row sums to 0: no links).
  explicit ExplicitMatrix(Label n);
  /// Materialises any view (requires modest n).
  explicit ExplicitMatrix(const MatrixView& view);

  void set(Label i, Label j, double p);

  [[nodiscard]] Label size() const override { return n_; }
  [[nodiscard]] double entry(Label i, Label j) const override;
  [[nodiscard]] std::optional<Label> sample_row(Label i, Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "explicit"; }

  /// Definition 1 check: entries in [0,1], row sums <= 1 (+ tolerance).
  [[nodiscard]] bool is_valid(double tolerance = 1e-9) const;

 private:
  Label n_;
  std::vector<double> cells_;  // row-major, (i-1)*n + (j-1)
};

/// The scheme "(M, L)": node u samples label j from row L(u), then a uniform
/// node labeled j (kNoContact when the class is empty or the row's residual
/// fires). Matrix size must be >= the labeling universe.
class MatrixScheme final : public AugmentationScheme {
 public:
  MatrixScheme(MatrixPtr matrix, Labeling labeling, std::string scheme_name = "");

  [[nodiscard]] NodeId sample_contact(NodeId u, Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] double probability(NodeId u, NodeId v) const override;
  [[nodiscard]] NodeId num_nodes() const override {
    return labeling_.num_nodes();
  }

  [[nodiscard]] const Labeling& labeling() const noexcept { return labeling_; }
  [[nodiscard]] const MatrixView& matrix() const noexcept { return *matrix_; }

 private:
  MatrixPtr matrix_;
  Labeling labeling_;
  std::string name_;
};

}  // namespace nav::core
