#include "core/level_hierarchy.hpp"

#include <bit>

namespace nav::core {

std::uint32_t level(std::uint64_t x) {
  NAV_REQUIRE(x >= 1, "level(x) requires x >= 1");
  return static_cast<std::uint32_t>(std::countr_zero(x));
}

std::uint64_t ancestor(std::uint64_t x, std::uint32_t j) {
  NAV_REQUIRE(x >= 1, "ancestor(x) requires x >= 1");
  const std::uint32_t k = level(x);
  const std::uint32_t bit = k + j;
  NAV_REQUIRE(bit < 63, "ancestor overflows 64 bits");
  // Keep bits strictly above `bit`, then set `bit`.
  const std::uint64_t high = (x >> (bit + 1)) << (bit + 1);
  return high | (std::uint64_t{1} << bit);
}

std::vector<std::uint64_t> ancestors_within(std::uint64_t x, std::uint64_t limit) {
  NAV_REQUIRE(x >= 1, "ancestors_within requires x >= 1");
  NAV_REQUIRE(limit >= 1, "limit must be >= 1");
  std::vector<std::uint64_t> out;
  const std::uint32_t k = level(x);
  for (std::uint32_t j = 0; k + j < 63; ++j) {
    // y(j) >= 2^{k+j}; once that power alone exceeds limit, no later ancestor
    // can fit either.
    if ((std::uint64_t{1} << (k + j)) > limit) break;
    const std::uint64_t y = ancestor(x, j);
    if (y <= limit) out.push_back(y);
  }
  return out;
}

std::uint64_t max_level_index(std::uint64_t lo, std::uint64_t hi) {
  NAV_REQUIRE(lo >= 1 && lo <= hi, "max_level_index needs 1 <= lo <= hi");
  // Highest k such that some multiple of 2^k lies in [lo, hi]; the first such
  // multiple is unique for the maximal k.
  for (std::uint32_t k = 63; k > 0; --k) {
    const std::uint64_t step = std::uint64_t{1} << k;
    const std::uint64_t candidate = ((lo + step - 1) / step) * step;
    if (candidate >= lo && candidate <= hi && candidate != 0) return candidate;
  }
  return lo;  // k = 0: every integer is a multiple of 1; lo works, but the
              // loop above would have returned any even candidate first.
}

}  // namespace nav::core
