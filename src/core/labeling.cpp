#include "core/labeling.hpp"

#include <numeric>

#include "core/level_hierarchy.hpp"

namespace nav::core {

Labeling::Labeling(std::vector<std::uint32_t> label_of, std::uint32_t universe)
    : label_of_(std::move(label_of)), universe_(universe) {
  NAV_REQUIRE(universe_ >= 1, "label universe must be >= 1");
  members_.resize(universe_ + 1);
  for (NodeId u = 0; u < label_of_.size(); ++u) {
    const auto lbl = label_of_[u];
    NAV_REQUIRE(lbl >= 1 && lbl <= universe_, "label out of [1, universe]");
    members_[lbl].push_back(u);
  }
  all_distinct_ = true;
  for (std::uint32_t lbl = 1; lbl <= universe_; ++lbl) {
    if (members_[lbl].size() > 1) {
      all_distinct_ = false;
      break;
    }
  }
}

const std::vector<NodeId>& Labeling::members(std::uint32_t lbl) const {
  NAV_REQUIRE(lbl >= 1 && lbl <= universe_, "label out of [1, universe]");
  return members_[lbl];
}

NodeId Labeling::sample_member(std::uint32_t lbl, Rng& rng) const {
  const auto& bucket = members(lbl);
  if (bucket.empty()) return graph::kNoNode;
  return bucket[random_index(rng, bucket.size())];
}

Labeling decomposition_labeling(const decomp::PathDecomposition& pd, NodeId n) {
  NAV_REQUIRE(pd.num_bags() >= 1, "decomposition has no bags");
  const auto intervals = pd.node_intervals(n);
  std::vector<std::uint32_t> labels(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    NAV_REQUIRE(!intervals[u].empty(),
                "node missing from decomposition: " + std::to_string(u));
    // Bags are 1-indexed in the paper's hierarchy (level() needs x >= 1).
    const auto lo = static_cast<std::uint64_t>(intervals[u].first) + 1;
    const auto hi = static_cast<std::uint64_t>(intervals[u].last) + 1;
    labels[u] = static_cast<std::uint32_t>(max_level_index(lo, hi));
  }
  return Labeling(std::move(labels), n);
}

Labeling identity_labeling(NodeId n) {
  NAV_REQUIRE(n >= 1, "empty labeling");
  std::vector<std::uint32_t> labels(n);
  std::iota(labels.begin(), labels.end(), 1u);
  return Labeling(std::move(labels), n);
}

Labeling random_distinct_labeling(NodeId n, Rng& rng) {
  NAV_REQUIRE(n >= 1, "empty labeling");
  std::vector<std::uint32_t> labels(n);
  std::iota(labels.begin(), labels.end(), 1u);
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    std::swap(labels[i - 1], labels[j]);
  }
  return Labeling(std::move(labels), n);
}

Labeling block_labeling(NodeId n, std::uint32_t k) {
  NAV_REQUIRE(n >= 1, "empty labeling");
  NAV_REQUIRE(k >= 1 && k <= n, "need 1 <= k <= n");
  std::vector<std::uint32_t> labels(n);
  for (NodeId u = 0; u < n; ++u) {
    labels[u] = 1 + static_cast<std::uint32_t>(
                        (static_cast<std::uint64_t>(u) * k) / n);
  }
  return Labeling(std::move(labels), k);
}

}  // namespace nav::core
