#include "core/restricted_label_scheme.hpp"

#include <algorithm>
#include <cmath>

#include "core/augmentation_matrix.hpp"

namespace nav::core {

SchemePtr make_restricted_label_scheme(const Graph& path, std::uint32_t k) {
  const auto n = path.num_nodes();
  NAV_REQUIRE(n >= 2, "path too short");
  k = std::clamp<std::uint32_t>(k, 1, n);
  auto hierarchy = std::make_shared<HierarchyMatrix>(k);
  auto uniform = std::make_shared<UniformMatrix>(k);
  auto mix = std::make_shared<MixMatrix>(std::move(hierarchy), std::move(uniform));
  return std::make_unique<MatrixScheme>(
      std::move(mix), block_labeling(n, k),
      "ml-k" + std::to_string(k));
}

std::uint32_t label_budget(graph::NodeId n, double epsilon) {
  NAV_REQUIRE(epsilon >= 0.0 && epsilon <= 1.0, "epsilon in [0,1]");
  const double k = std::pow(static_cast<double>(n), epsilon);
  return std::clamp<std::uint32_t>(
      static_cast<std::uint32_t>(std::lround(k)), 1u, n);
}

}  // namespace nav::core
