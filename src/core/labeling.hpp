// labeling.hpp — node labelings for matrix-based schemes (paper §2).
//
// Matrix-based schemes address nodes through labels in {1..universe}; labels
// need not be distinct (paper §2, remark 1): a row first samples a label j,
// then a uniform node among the nodes carrying j (failing if none does).
//
// The labeling of Theorem 2: given a path decomposition with bags numbered
// 1..b, node u occupies a contiguous bag interval I_u; L(u) is the unique
// index of maximum level in I_u.
#pragma once

#include <cstdint>
#include <vector>

#include "decomposition/decomposition.hpp"
#include "graph/graph.hpp"
#include "runtime/rng.hpp"

namespace nav::core {

using graph::NodeId;

class Labeling {
 public:
  /// Empty labeling (no nodes); placeholder for deferred initialisation.
  Labeling() : universe_(1), members_(2) {}

  /// `label_of[u]` in [1, universe] for every node.
  Labeling(std::vector<std::uint32_t> label_of, std::uint32_t universe);

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(label_of_.size());
  }
  [[nodiscard]] std::uint32_t universe() const noexcept { return universe_; }
  [[nodiscard]] std::uint32_t label(NodeId u) const {
    NAV_ASSERT(u < label_of_.size());
    return label_of_[u];
  }

  /// Nodes carrying `lbl` (empty for unused labels; lbl in [1, universe]).
  [[nodiscard]] const std::vector<NodeId>& members(std::uint32_t lbl) const;

  /// Uniform node among members(lbl); kNoNode if the class is empty.
  [[nodiscard]] NodeId sample_member(std::uint32_t lbl, Rng& rng) const;

  [[nodiscard]] bool all_distinct() const noexcept { return all_distinct_; }

 private:
  std::vector<std::uint32_t> label_of_;
  std::uint32_t universe_;
  std::vector<std::vector<NodeId>> members_;  // size universe_+1; [0] unused
  bool all_distinct_ = false;
};

/// Theorem 2's labeling: L(u) = max-level bag index of u's interval, 1-based.
/// Universe = num_nodes (the matrix M is n×n even when only b <= n labels are
/// used). Requires pd to be valid for a graph with n nodes.
[[nodiscard]] Labeling decomposition_labeling(
    const decomp::PathDecomposition& pd, NodeId n);

/// Identity labeling L(u) = u + 1 (distinct labels).
[[nodiscard]] Labeling identity_labeling(NodeId n);

/// Uniformly random distinct labeling (a random permutation of 1..n).
/// This is the "name-independent" adversary's input space (Theorem 1 measures
/// worst case over distinct labelings).
[[nodiscard]] Labeling random_distinct_labeling(NodeId n, Rng& rng);

/// Theorem 3's restricted alphabet: k contiguous equal-size blocks along node
/// ids; universe = k. (On the path graph node ids are positions, so blocks
/// are contiguous segments.)
[[nodiscard]] Labeling block_labeling(NodeId n, std::uint32_t k);

}  // namespace nav::core
