#include "core/uniform_scheme.hpp"

// Header-only implementation; this TU anchors the target.
