#include "core/growth_scheme.hpp"

#include <algorithm>

namespace nav::core {

GrowthScheme::GrowthScheme(const Graph& g) : graph_(g) {
  NAV_REQUIRE(g.num_nodes() >= 2, "need at least two nodes");
}

std::vector<double> GrowthScheme::weights(NodeId u) const {
  NAV_ASSERT(u < graph_.num_nodes());
  const auto dist = graph::bfs_distances(graph_, u);
  graph::Dist max_d = 0;
  for (const auto d : dist) {
    if (d != graph::kInfDist) max_d = std::max(max_d, d);
  }
  // |B(u, r)| via layer counting + prefix sums.
  std::vector<std::size_t> layer(max_d + 1, 0);
  for (const auto d : dist) {
    if (d != graph::kInfDist) ++layer[d];
  }
  std::vector<std::size_t> ball(max_d + 1, 0);
  std::size_t acc = 0;
  for (graph::Dist r = 0; r <= max_d; ++r) {
    acc += layer[r];
    ball[r] = acc;
  }
  std::vector<double> w(graph_.num_nodes(), 0.0);
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    if (v == u || dist[v] == graph::kInfDist) continue;
    w[v] = 1.0 / static_cast<double>(ball[dist[v]]);
  }
  return w;
}

NodeId GrowthScheme::sample_contact(NodeId u, Rng& rng) const {
  const auto w = weights(u);
  double z = 0.0;
  for (const double x : w) z += x;
  NAV_ASSERT(z > 0.0);
  double r = rng.next_double() * z;
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    r -= w[v];
    if (r < 0.0 && w[v] > 0.0) return v;
  }
  for (NodeId v = graph_.num_nodes(); v > 0; --v) {
    if (w[v - 1] > 0.0) return v - 1;  // float tail
  }
  return kNoContact;
}

double GrowthScheme::probability(NodeId u, NodeId v) const {
  NAV_ASSERT(v < graph_.num_nodes());
  const auto row = probability_row(u);
  return row[v];
}

std::vector<double> GrowthScheme::probability_row(NodeId u) const {
  auto w = weights(u);
  double z = 0.0;
  for (const double x : w) z += x;
  NAV_ASSERT(z > 0.0);
  for (auto& x : w) x /= z;
  return w;
}

}  // namespace nav::core
