#include "core/kleinberg_scheme.hpp"

#include <cmath>

namespace nav::core {

KleinbergScheme::KleinbergScheme(const Graph& g, double alpha)
    : graph_(g), alpha_(alpha) {
  NAV_REQUIRE(g.num_nodes() >= 2, "need at least two nodes");
  NAV_REQUIRE(alpha >= 0.0, "alpha must be non-negative");
}

NodeId KleinbergScheme::sample_contact(NodeId u, Rng& rng) const {
  NAV_ASSERT(u < graph_.num_nodes());
  const auto dist = graph::bfs_distances(graph_, u);
  double z = 0.0;
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    if (v == u || dist[v] == graph::kInfDist) continue;
    z += std::pow(static_cast<double>(dist[v]), -alpha_);
  }
  NAV_ASSERT(z > 0.0);
  double r = rng.next_double() * z;
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    if (v == u || dist[v] == graph::kInfDist) continue;
    r -= std::pow(static_cast<double>(dist[v]), -alpha_);
    if (r < 0.0) return v;
  }
  // Float tail: return the last reachable non-u node.
  for (NodeId v = graph_.num_nodes(); v > 0; --v) {
    if (v - 1 != u && dist[v - 1] != graph::kInfDist) return v - 1;
  }
  return kNoContact;
}

std::string KleinbergScheme::name() const {
  return "kleinberg(a=" + std::to_string(alpha_).substr(0, 4) + ")";
}

double KleinbergScheme::probability(NodeId u, NodeId v) const {
  if (u == v) return 0.0;
  const auto dist = graph::bfs_distances(graph_, u);
  if (dist[v] == graph::kInfDist) return 0.0;
  double z = 0.0;
  for (NodeId w = 0; w < graph_.num_nodes(); ++w) {
    if (w == u || dist[w] == graph::kInfDist) continue;
    z += std::pow(static_cast<double>(dist[w]), -alpha_);
  }
  return std::pow(static_cast<double>(dist[v]), -alpha_) / z;
}

std::vector<double> KleinbergScheme::probability_row(NodeId u) const {
  const auto dist = graph::bfs_distances(graph_, u);
  std::vector<double> row(graph_.num_nodes(), 0.0);
  double z = 0.0;
  for (NodeId w = 0; w < graph_.num_nodes(); ++w) {
    if (w == u || dist[w] == graph::kInfDist) continue;
    row[w] = std::pow(static_cast<double>(dist[w]), -alpha_);
    z += row[w];
  }
  NAV_ASSERT(z > 0.0);
  for (auto& p : row) p /= z;
  return row;
}

// ---- torus specialisation ---------------------------------------------------

namespace {

/// Torus L1 distance of an offset (dr, dc) on a side×side torus.
std::uint32_t torus_offset_distance(NodeId side, NodeId dr, NodeId dc) {
  const auto wrap = [side](NodeId d) { return std::min(d, side - d); };
  return wrap(dr) + wrap(dc);
}

}  // namespace

TorusKleinbergScheme::TorusKleinbergScheme(NodeId side, double alpha)
    : side_(side), alpha_(alpha) {
  NAV_REQUIRE(side >= 3, "torus side must be >= 3");
  NAV_REQUIRE(alpha >= 0.0, "alpha must be non-negative");
  std::vector<double> weights(static_cast<std::size_t>(side) * side, 0.0);
  for (NodeId dr = 0; dr < side; ++dr) {
    for (NodeId dc = 0; dc < side; ++dc) {
      if (dr == 0 && dc == 0) continue;  // no self contact
      const auto d = torus_offset_distance(side, dr, dc);
      weights[static_cast<std::size_t>(dr) * side + dc] =
          std::pow(static_cast<double>(d), -alpha_);
    }
  }
  offsets_ = std::make_unique<DiscreteDistribution>(weights);
}

NodeId TorusKleinbergScheme::sample_contact(NodeId u, Rng& rng) const {
  NAV_ASSERT(u < num_nodes());
  const auto o = static_cast<NodeId>(offsets_->sample(rng));
  const NodeId dr = o / side_;
  const NodeId dc = o % side_;
  const NodeId r = u / side_;
  const NodeId c = u % side_;
  return ((r + dr) % side_) * side_ + ((c + dc) % side_);
}

std::string TorusKleinbergScheme::name() const {
  return "kleinberg-torus(a=" + std::to_string(alpha_).substr(0, 4) + ")";
}

double TorusKleinbergScheme::probability(NodeId u, NodeId v) const {
  if (u == v) return 0.0;
  const NodeId dr = ((v / side_) + side_ - (u / side_)) % side_;
  const NodeId dc = ((v % side_) + side_ - (u % side_)) % side_;
  return offsets_->probability(static_cast<std::size_t>(dr) * side_ + dc);
}

}  // namespace nav::core
