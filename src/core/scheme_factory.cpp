#include "core/scheme_factory.hpp"

#include <stdexcept>

#include "core/augmentation_matrix.hpp"
#include "core/ball_scheme.hpp"
#include "core/growth_scheme.hpp"
#include "core/kleinberg_scheme.hpp"
#include "core/ml_scheme.hpp"
#include "core/rank_scheme.hpp"
#include "core/uniform_scheme.hpp"
#include "dynamic/rewire_scheme.hpp"

namespace nav::core {

SchemePtr make_scheme(const std::string& spec, const Graph& g, Rng& rng) {
  if (spec == "none") return nullptr;
  if (spec == "uniform") return std::make_unique<UniformScheme>(g);
  if (spec == "ball") return std::make_unique<BallScheme>(g);
  if (spec.rfind("ball-fixed:", 0) == 0) {
    const auto k = static_cast<std::uint32_t>(std::stoul(spec.substr(11)));
    return BallScheme::make_fixed_level(g, k);
  }
  if (spec == "ml") return std::make_unique<MLScheme>(g);
  if (spec == "ml-labelU") {
    MLSchemeOptions opt;
    opt.uniform_over_nodes = false;
    return std::make_unique<MLScheme>(g, opt);
  }
  if (spec == "ml-A-only") {
    MLSchemeOptions opt;
    opt.mode = MLSchemeOptions::Mode::kHierarchyOnly;
    return std::make_unique<MLScheme>(g, opt);
  }
  if (spec == "ml-U-only") {
    MLSchemeOptions opt;
    opt.mode = MLSchemeOptions::Mode::kUniformOnly;
    return std::make_unique<MLScheme>(g, opt);
  }
  if (spec == "ml-random-label") {
    // The Theorem 2 matrix with a labeling that ignores the decomposition —
    // E7c's control showing the labeling carries the polylog behaviour.
    auto hierarchy = std::make_shared<HierarchyMatrix>(g.num_nodes());
    auto uniform = std::make_shared<UniformMatrix>(g.num_nodes());
    auto mix = std::make_shared<MixMatrix>(std::move(hierarchy), std::move(uniform));
    return std::make_unique<MatrixScheme>(
        std::move(mix), random_distinct_labeling(g.num_nodes(), rng),
        "ml-random-label");
  }
  if (spec.rfind("kleinberg:", 0) == 0) {
    const double alpha = std::stod(spec.substr(10));
    return std::make_unique<KleinbergScheme>(g, alpha);
  }
  if (spec == "rank") return std::make_unique<RankScheme>(g);
  if (spec == "growth") return std::make_unique<GrowthScheme>(g);
  if (spec.rfind("rewire:", 0) == 0) {
    // Self-organizing realised augmentation (dynamic subsystem); callers
    // that drive the feedback loop use dynamic::make_rewire_scheme directly
    // to keep the concrete learn() handle.
    return dynamic::make_rewire_scheme(spec, g, rng);
  }
  throw std::invalid_argument("unknown scheme spec: " + spec);
}

std::vector<std::string> standard_scheme_specs() {
  return {"uniform", "ml", "ball"};
}

}  // namespace nav::core
