// ml_scheme.hpp — the Theorem 2 scheme (M, L):
//     M = (A + U)/2,   L = max-level bag index of a path decomposition.
//
// Greedy routing in (G, (M,L)) takes O(min{ps(G)·log²n, √n}) expected steps:
// the A half performs the hierarchical bag jumps (landmark argument), the U
// half preserves the universal O(√n) fallback.
//
// One semantic subtlety, surfaced as an option and as ablation E7c:
// the paper's remark-1 semantics route *every* matrix row through label
// classes (sample a label, then a uniform node of that class), but the proof
// of the √n fallback leans on the "name-independent nature of the uniform
// augmentation", i.e. the U half behaving as a uniform node draw regardless
// of label multiplicities. With heavily duplicated labels the two differ.
//   * uniform_over_nodes = true  (default): U half samples a uniform node —
//     matches the proof's argument and Peleg's bound exactly.
//   * uniform_over_nodes = false: U half samples a uniform label and then a
//     class member — the strict Definition-1 reading.
#pragma once

#include "core/augmentation_matrix.hpp"
#include "core/scheme.hpp"
#include "decomposition/decomposition.hpp"

namespace nav::core {

struct MLSchemeOptions {
  bool uniform_over_nodes = true;
  /// Disable one half for ablations (E7a): "a" = hierarchy jumps only,
  /// "u" = uniform only (through the same machinery), "mix" = the real M.
  enum class Mode { kMix, kHierarchyOnly, kUniformOnly };
  Mode mode = Mode::kMix;
};

class MLScheme final : public AugmentationScheme {
 public:
  /// Builds (M, L) from a given path decomposition of g (must be valid).
  MLScheme(const Graph& g, const decomp::PathDecomposition& pd,
           MLSchemeOptions options = {});

  /// Convenience: runs the decomposition portfolio
  /// (decomp::best_path_decomposition) and uses the winner.
  explicit MLScheme(const Graph& g, MLSchemeOptions options = {});

  [[nodiscard]] NodeId sample_contact(NodeId u, Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double probability(NodeId u, NodeId v) const override;
  [[nodiscard]] NodeId num_nodes() const override { return n_; }

  [[nodiscard]] const Labeling& labeling() const noexcept { return labeling_; }
  [[nodiscard]] const HierarchyMatrix& hierarchy() const noexcept {
    return *hierarchy_;
  }

 private:
  NodeId n_;
  Labeling labeling_;
  std::shared_ptr<const HierarchyMatrix> hierarchy_;
  MLSchemeOptions options_;
};

}  // namespace nav::core
