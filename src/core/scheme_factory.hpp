// scheme_factory.hpp — build schemes by name (benches, examples, CLI).
//
// Recognised specs:
//   "uniform"            φ_unif (Peleg O(√n))
//   "ball"               Theorem 4 Õ(n^{1/3}) scheme
//   "ball-fixed:<k>"     ball scheme with one fixed radius 2^k (ablation)
//   "ml"                 Theorem 2 (M, L), portfolio decomposition
//   "ml-labelU"          (M, L) with strict label-class uniform half
//   "ml-A-only"          hierarchy half alone (ablation)
//   "ml-U-only"          uniform half alone (ablation)
//   "ml-random-label"    M with a random distinct labeling (ablation E7c)
//   "kleinberg:<alpha>"  harmonic baseline, e.g. "kleinberg:2.0"
//   "rank"               rank-based extension
//   "growth"             ball-harmonic (bounded-growth predecessor [6,21])
//   "rewire:uniform"     self-organizing realised links (dynamic subsystem)
//   "none"               no long-range links (pure BFS baseline)
#pragma once

#include <optional>
#include <string>

#include "core/scheme.hpp"

namespace nav::core {

/// Builds the scheme for `spec` over graph g. Throws std::invalid_argument on
/// unknown specs. The returned scheme references g (g must outlive it).
/// "none" returns nullptr (callers treat a null scheme as "local links only").
[[nodiscard]] SchemePtr make_scheme(const std::string& spec, const Graph& g,
                                    Rng& rng);

/// All specs suitable for a cross-scheme comparison table.
[[nodiscard]] std::vector<std::string> standard_scheme_specs();

}  // namespace nav::core
