// scheme.hpp — the augmentation-scheme interface (paper §1).
//
// An augmentation scheme φ gives every node u a probability distribution φ_u
// over long-range contacts. The simulator samples contacts *lazily*: a node's
// contact is drawn the first time greedy routing visits it. This is
// distribution-identical to pre-sampling one contact per node, because greedy
// routing strictly decreases the distance to the target at every step (each
// node has a local neighbour strictly closer to the target), hence never
// visits a node twice within one routing episode. Eager pre-sampling is also
// provided (sample_all_contacts) and the equivalence is covered by tests.
//
// Contacts may be absent: substochastic matrix rows (Definition 1 allows
// row sums < 1) and empty label classes yield kNoContact, meaning the node
// only has its local links.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/rng.hpp"

namespace nav::core {

using graph::Graph;
using graph::NodeId;

/// "This node has no long-range link."
inline constexpr NodeId kNoContact = graph::kNoNode;

class AugmentationScheme {
 public:
  virtual ~AugmentationScheme() = default;

  /// Draws a fresh contact from φ_u. May return kNoContact (substochastic φ_u)
  /// or u itself (e.g. the ball scheme's B(u,2^k) contains u); both are
  /// useless-but-harmless links that greedy routing simply never follows.
  [[nodiscard]] virtual NodeId sample_contact(NodeId u, Rng& rng) const = 0;

  /// Scheme identifier for tables, e.g. "uniform", "ball", "ml".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Exact φ_u(v) where tractable; returns a negative value when the scheme
  /// does not implement exact evaluation. Used by distribution tests.
  [[nodiscard]] virtual double probability(NodeId u, NodeId v) const;

  /// The full row (φ_u(v))_v. Default loops probability(u, ·); schemes with
  /// a cheaper batch form (ball: one BFS) override it. Throws
  /// std::logic_error when exact evaluation is unsupported.
  [[nodiscard]] virtual std::vector<double> probability_row(NodeId u) const;

  /// Number of nodes of the augmented graph.
  [[nodiscard]] virtual NodeId num_nodes() const = 0;
};

/// Eager augmentation: one contact per node (the paper's static view).
[[nodiscard]] std::vector<NodeId> sample_all_contacts(
    const AugmentationScheme& scheme, Rng& rng);

/// Fixed-augmentation view with *memoised lazy* sampling: node u's contact is
/// drawn from rng.child(u) on first access and cached, so the realised
/// augmented graph is identical to an eager draw — without paying for the
/// n - O(route length) contacts a route never looks at. Needed by consumers
/// that must see a *consistent* link for a node across multiple accesses
/// (e.g. NoN lookahead reads a contact first as a neighbour's link, later as
/// the current node's own link).
///
/// Child-stream contract: the constructor takes `rng` BY VALUE, and that is
/// intentional, not an accidental copy. The memo snapshots the stream state
/// at construction and derives node u's draw from the child stream
/// snapshot.child(u), never from the parent's ongoing sequence. Hence
///   * the realised augmentation is a pure function of (scheme, snapshot) —
///     independent of the order in which routes touch nodes, and of whatever
///     the caller does with its own rng afterwards;
///   * two MemoContacts built from the same snapshot realise the SAME
///     augmented graph (lookahead tests rely on this);
///   * the caller's stream is never advanced — hand each memo a dedicated
///     child (e.g. rng.child(trial)) to vary the augmentation per trial.
class MemoContacts {
 public:
  MemoContacts(const AugmentationScheme& scheme, Rng rng)
      : scheme_(scheme), rng_(rng),
        contacts_(scheme.num_nodes(), kNoContact),
        known_(scheme.num_nodes(), 0) {}

  [[nodiscard]] NodeId operator()(NodeId u) {
    NAV_ASSERT(u < contacts_.size());
    if (!known_[u]) {
      Rng node_rng = rng_.child(u);
      contacts_[u] = scheme_.sample_contact(u, node_rng);
      known_[u] = 1;
    }
    return contacts_[u];
  }

 private:
  const AugmentationScheme& scheme_;
  Rng rng_;
  std::vector<NodeId> contacts_;
  std::vector<std::uint8_t> known_;
};

using SchemePtr = std::unique_ptr<AugmentationScheme>;

}  // namespace nav::core
