// ball_scheme.hpp — the Õ(n^{1/3}) universal scheme (paper Theorem 4).
//
// Construction (§3): every node u first draws k uniform in {1..⌈log2 n⌉},
// then its long-range contact uniform in the ball B_k(u) = B(u, 2^k). The
// resulting distribution is
//     φ_u(v) = (1/⌈log n⌉) · Σ_{k = r(v)}^{⌈log n⌉} 1/|B_k(u)|,
// where r(v) is the smallest k with v ∈ B_k(u).
//
// This is an *a posteriori* scheme: it depends on the ball structure of G
// (unlike the matrix schemes of §2, fixed before seeing the graph). Sampling
// is implemented by radius-bounded BFS from u — cost O(edges inside the
// ball). Two shortcuts keep sweeps fast without changing the distribution:
//   * 2^k >= n-1 means B_k(u) = V (connected graph): uniform node draw;
//   * a cached per-node eccentricity bound (learned when a BFS exhausts the
//     graph) turns later whole-graph balls into uniform draws too.
#pragma once

#include <atomic>
#include <memory>

#include "core/scheme.hpp"
#include "graph/bfs.hpp"

namespace nav::core {

class BallScheme final : public AugmentationScheme {
 public:
  /// `levels` = the paper's ⌈log2 n⌉ by default; overridable for the E7b
  /// ablation (fixed-k variants use make_fixed_level below).
  explicit BallScheme(const Graph& g, std::uint32_t levels = 0);

  [[nodiscard]] NodeId sample_contact(NodeId u, Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double probability(NodeId u, NodeId v) const override;
  [[nodiscard]] std::vector<double> probability_row(NodeId u) const override;
  [[nodiscard]] NodeId num_nodes() const override { return graph_.num_nodes(); }

  [[nodiscard]] std::uint32_t levels() const noexcept { return levels_; }

  /// |B(u, 2^k)| for k = 1..levels (index 0 unused). One full BFS.
  [[nodiscard]] std::vector<std::size_t> ball_sizes(NodeId u) const;

  /// E7b ablation: contact uniform in B(u, 2^k) for one fixed k (no mixture).
  [[nodiscard]] static SchemePtr make_fixed_level(const Graph& g,
                                                  std::uint32_t k);

 private:
  friend class FixedLevelBallScheme;

  /// Uniform draw from B(u, 2^k); shared by the mixture and fixed-k variants.
  [[nodiscard]] NodeId sample_from_ball(NodeId u, graph::Dist radius,
                                        Rng& rng) const;

  const Graph& graph_;
  std::uint32_t levels_;
  /// ecc_upper_[u] != 0 means B(u, r) = V for all r >= ecc_upper_[u].
  /// Written racily with relaxed atomics — all writers store the same value.
  mutable std::vector<std::atomic<graph::Dist>> ecc_upper_;
};

}  // namespace nav::core
