#include "core/scheme.hpp"

#include <stdexcept>

namespace nav::core {

double AugmentationScheme::probability(NodeId, NodeId) const { return -1.0; }

std::vector<double> AugmentationScheme::probability_row(NodeId u) const {
  std::vector<double> row(num_nodes(), 0.0);
  for (NodeId v = 0; v < num_nodes(); ++v) {
    const double p = probability(u, v);
    if (p < 0.0) {
      throw std::logic_error("scheme '" + name() +
                             "' does not support exact probabilities");
    }
    row[v] = p;
  }
  return row;
}

std::vector<NodeId> sample_all_contacts(const AugmentationScheme& scheme,
                                        Rng& rng) {
  std::vector<NodeId> contacts(scheme.num_nodes(), kNoContact);
  for (NodeId u = 0; u < scheme.num_nodes(); ++u) {
    contacts[u] = scheme.sample_contact(u, rng);
  }
  return contacts;
}

}  // namespace nav::core
