// rank_scheme.hpp — rank-based augmentation (extension / ablation comparator).
//
// Liben-Nowell et al. style: Pr(u → v) ∝ 1/rank_u(v), where rank_u(v) is v's
// position (1-based) in the distance order around u (BFS order; ties broken
// by discovery order). On growth-bounded graphs this matches the harmonic
// scheme; on general graphs it is a natural density-adaptive competitor to
// the ball scheme — included in the E7 ablations as "what if we weight by
// rank instead of mixing ball radii?".
#pragma once

#include <memory>

#include "core/scheme.hpp"
#include "graph/bfs.hpp"
#include "runtime/discrete_distribution.hpp"

namespace nav::core {

class RankScheme final : public AugmentationScheme {
 public:
  explicit RankScheme(const Graph& g);

  [[nodiscard]] NodeId sample_contact(NodeId u, Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "rank"; }
  [[nodiscard]] double probability(NodeId u, NodeId v) const override;
  [[nodiscard]] std::vector<double> probability_row(NodeId u) const override;
  [[nodiscard]] NodeId num_nodes() const override { return graph_.num_nodes(); }

 private:
  const Graph& graph_;
  /// Shared harmonic table over ranks 1..n-1 (node independent).
  std::unique_ptr<DiscreteDistribution> rank_dist_;
};

}  // namespace nav::core
