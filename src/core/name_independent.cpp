#include "core/name_independent.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace nav::core {

double internal_mass(const MatrixView& matrix, const std::vector<Label>& labels) {
  double mass = 0.0;
  for (const Label i : labels) {
    for (const Label j : labels) {
      if (i != j) mass += matrix.entry(i, j);
    }
  }
  return mass;
}

namespace {

/// Mass contributed by member `x` (row + column within the set).
double member_mass(const MatrixView& matrix, const std::vector<Label>& labels,
                   Label x) {
  double mass = 0.0;
  for (const Label j : labels) {
    if (j != x) mass += matrix.entry(x, j) + matrix.entry(j, x);
  }
  return mass;
}

}  // namespace

AdversarialSet find_sparse_label_set(const MatrixView& matrix,
                                     std::size_t set_size, Rng& rng,
                                     int max_restarts) {
  const Label n = matrix.size();
  NAV_REQUIRE(set_size >= 2 && set_size <= n, "set size out of range");

  std::vector<Label> universe(n);
  std::iota(universe.begin(), universe.end(), Label{1});

  for (int restart = 0; restart < max_restarts; ++restart) {
    // Random subset: partial Fisher-Yates over the universe.
    for (std::size_t i = 0; i < set_size; ++i) {
      const std::size_t j = i + rng.next_below(universe.size() - i);
      std::swap(universe[i], universe[j]);
    }
    std::vector<Label> candidate(universe.begin(),
                                 universe.begin() + static_cast<std::ptrdiff_t>(set_size));
    double mass = internal_mass(matrix, candidate);

    // Local search: repeatedly swap the heaviest member for a random outsider.
    for (std::size_t iter = 0; iter < 4 * set_size && mass >= 1.0; ++iter) {
      std::size_t worst = 0;
      double worst_mass = -1.0;
      for (std::size_t i = 0; i < candidate.size(); ++i) {
        const double m = member_mass(matrix, candidate, candidate[i]);
        if (m > worst_mass) {
          worst_mass = m;
          worst = i;
        }
      }
      // Random replacement outside the candidate set.
      Label replacement = 0;
      for (int tries = 0; tries < 64; ++tries) {
        const Label r = static_cast<Label>(1 + random_index(rng, n));
        if (std::find(candidate.begin(), candidate.end(), r) == candidate.end()) {
          replacement = r;
          break;
        }
      }
      if (replacement == 0) break;
      const double gain_out = worst_mass;
      std::vector<Label> next = candidate;
      next[worst] = replacement;
      const double gain_in = member_mass(matrix, next, replacement);
      if (gain_in < gain_out) {
        mass += gain_in - gain_out;
        candidate = std::move(next);
      }
    }
    if (mass < 1.0) return {std::move(candidate), mass};
  }
  throw std::runtime_error(
      "find_sparse_label_set: no sparse set found (set_size too large?)");
}

AdversarialPathInstance make_adversarial_path(const MatrixView& matrix, Rng& rng) {
  const Label n = matrix.size();
  NAV_REQUIRE(n >= 9, "path too short for the Theorem 1 construction");
  // |I| = floor(sqrt n): then s(s-1) < n, so for the uniform matrix every
  // s-set already has internal mass < 1 (with ceil(sqrt n) the uniform
  // matrix can have mass > 1 for *all* sets and the guarantee breaks).
  const auto s =
      static_cast<std::size_t>(std::floor(std::sqrt(static_cast<double>(n))));
  auto sparse = find_sparse_label_set(matrix, s, rng);

  AdversarialPathInstance out;
  out.path = graph::make_path(n);
  out.internal_mass = sparse.internal_mass;
  out.segment_begin = (n - s) / 2;
  out.segment_end = out.segment_begin + s;

  // Labels: I over the segment (shuffled), the rest shuffled elsewhere.
  std::vector<std::uint8_t> in_set(n + 1, 0);
  for (const Label l : sparse.labels) in_set[l] = 1;
  std::vector<Label> rest;
  rest.reserve(n - s);
  for (Label l = 1; l <= n; ++l) {
    if (!in_set[l]) rest.push_back(l);
  }
  auto shuffle = [&rng](std::vector<Label>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = rng.next_below(i);
      std::swap(v[i - 1], v[j]);
    }
  };
  shuffle(sparse.labels);
  shuffle(rest);

  std::vector<std::uint32_t> label_of(n, 0);
  std::size_t seg_it = 0, rest_it = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (u >= out.segment_begin && u < out.segment_end) {
      label_of[u] = sparse.labels[seg_it++];
    } else {
      label_of[u] = rest[rest_it++];
    }
  }
  out.labeling = Labeling(std::move(label_of), n);

  // s and t at |S|/3 from either extremity of the segment (mutual |S|/3).
  out.source = static_cast<NodeId>(out.segment_begin + s / 3);
  out.target = static_cast<NodeId>(out.segment_begin + (2 * s) / 3);
  return out;
}

}  // namespace nav::core
