// name_independent.hpp — Theorem 1 machinery: the Ω(√n) adversary.
//
// Theorem 1: for ANY augmentation matrix A of size n there is a labeling of
// the n-node path on which greedy routing needs Ω(√n) expected steps. The
// proof is an averaging argument: among all √n-subsets I of labels, the
// average internal probability mass Σ_{i≠j∈I} p_{i,j} is < 1, so some I has
// mass < 1; placing I's labels on √n consecutive path nodes leaves the
// segment essentially shortcut-free.
//
// This module makes the argument constructive: random subsets already meet
// the bound in expectation (Markov), and a local-search pass (swap out the
// heaviest member) certifies mass < 1 quickly. The returned instance is the
// exact object of the proof: the labeled path plus the s, t endpoints at the
// |S|/3 positions.
#pragma once

#include "core/augmentation_matrix.hpp"
#include "graph/generators.hpp"

namespace nav::core {

struct AdversarialSet {
  std::vector<Label> labels;  // |I| = size, subset of [1, n]
  double internal_mass = 0.0; // Σ_{i≠j∈I} p_{i,j}, certified < 1
};

/// Finds I with |I| = set_size and internal mass < 1. Throws std::runtime_error
/// if it fails after `max_restarts` random restarts with local search (cannot
/// happen for valid augmentation matrices unless set_size is super-√n large).
[[nodiscard]] AdversarialSet find_sparse_label_set(const MatrixView& matrix,
                                                   std::size_t set_size, Rng& rng,
                                                   int max_restarts = 64);

struct AdversarialPathInstance {
  graph::Graph path;
  Labeling labeling;       // distinct labels 1..n
  NodeId source = 0;       // at |S|/3 from the segment's left end
  NodeId target = 0;       // at |S|/3 from the segment's right end
  std::size_t segment_begin = 0;  // S = positions [segment_begin, segment_end)
  std::size_t segment_end = 0;
  double internal_mass = 0.0;
};

/// Builds the full Theorem 1 instance for `matrix` (size n = path length):
/// the sparse set I is placed on ⌈√n⌉ consecutive central positions,
/// remaining labels are shuffled over the rest.
[[nodiscard]] AdversarialPathInstance make_adversarial_path(
    const MatrixView& matrix, Rng& rng);

/// Internal probability mass of a label set (exposed for tests).
[[nodiscard]] double internal_mass(const MatrixView& matrix,
                                   const std::vector<Label>& labels);

}  // namespace nav::core
