// kleinberg_scheme.hpp — the classical distance-harmonic baseline [13].
//
// Kleinberg's small-world augmentation: Pr(u → v) ∝ dist_G(u, v)^{-α} for
// v ≠ u. On d-dimensional meshes α = d is the unique navigable exponent
// (O(log² n) greedy routing); α away from d degrades polynomially — the
// classic U-shaped curve reproduced by experiment E8.
//
// Two implementations:
//   * KleinbergScheme — any graph; one BFS per sample (exact, O(m + n)).
//   * TorusKleinbergScheme — 2D torus; by symmetry the offset distribution
//     is node-independent, so a single alias table gives O(1) samples.
#pragma once

#include <memory>

#include "core/scheme.hpp"
#include "graph/bfs.hpp"
#include "runtime/discrete_distribution.hpp"

namespace nav::core {

class KleinbergScheme final : public AugmentationScheme {
 public:
  KleinbergScheme(const Graph& g, double alpha);

  [[nodiscard]] NodeId sample_contact(NodeId u, Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double probability(NodeId u, NodeId v) const override;
  [[nodiscard]] std::vector<double> probability_row(NodeId u) const override;
  [[nodiscard]] NodeId num_nodes() const override { return graph_.num_nodes(); }

  [[nodiscard]] double alpha() const noexcept { return alpha_; }

 private:
  const Graph& graph_;
  double alpha_;
};

class TorusKleinbergScheme final : public AugmentationScheme {
 public:
  /// Node ids must follow graph::make_torus2d(side, side): id = r*side + c.
  TorusKleinbergScheme(NodeId side, double alpha);

  [[nodiscard]] NodeId sample_contact(NodeId u, Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double probability(NodeId u, NodeId v) const override;
  [[nodiscard]] NodeId num_nodes() const override { return side_ * side_; }

 private:
  NodeId side_;
  double alpha_;
  /// Offset index o = dr*side + dc over all (dr, dc) != (0,0).
  std::unique_ptr<DiscreteDistribution> offsets_;
};

}  // namespace nav::core
