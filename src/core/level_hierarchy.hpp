// level_hierarchy.hpp — the binary hierarchy on integers behind Theorem 2.
//
// Every integer x >= 1 writes uniquely as x = 2^k + α·2^{k+1}; k = level(x) is
// the position of the least significant set bit. The j-th ancestor of x keeps
// the bits above position k+j and sets bit k+j:
//     y(j) = 2^{k+j} + Σ_{i >= k+j+1} x_i 2^i.
// A(x) = { y(j) : j >= 0 } (note y(0) = x, so x ∈ A(x)). Applied between
// consecutive levels the relation forms an infinite binary tree whose level-0
// leaves are the odd integers.
//
// The Theorem 2 matrix A over the label universe {1..n} is
//     a_{i,j} = 1/(1 + log2 n)  if j ∈ A(i) ∩ [1, n],   else 0.
// Row sums are <= 1 because an index of level k has at most ν - k ancestors
// within [1, n] (2^{ν-1} <= n < 2^ν) and ν - k <= 1 + log2 n.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/assert.hpp"

namespace nav::core {

/// level(x) = index of the least significant set bit. Requires x >= 1.
[[nodiscard]] std::uint32_t level(std::uint64_t x);

/// The j-th ancestor y(j) of x (y(0) = x). Requires x >= 1.
[[nodiscard]] std::uint64_t ancestor(std::uint64_t x, std::uint32_t j);

/// A(x) ∩ [1, limit], in increasing-j order (starting with x itself whenever
/// x <= limit). At most floor(log2(limit)) + 1 entries.
[[nodiscard]] std::vector<std::uint64_t> ancestors_within(std::uint64_t x,
                                                          std::uint64_t limit);

/// The unique index of maximum level inside the non-empty integer interval
/// [lo, hi] (1 <= lo <= hi). This is Theorem 2's bag-label choice L(u):
/// uniqueness holds because two distinct multiples of 2^k in the interval
/// would sandwich a multiple of 2^{k+1}.
[[nodiscard]] std::uint64_t max_level_index(std::uint64_t lo, std::uint64_t hi);

}  // namespace nav::core
