#include "core/ml_scheme.hpp"

#include "decomposition/pathshape.hpp"

namespace nav::core {

MLScheme::MLScheme(const Graph& g, const decomp::PathDecomposition& pd,
                   MLSchemeOptions options)
    : n_(g.num_nodes()),
      labeling_(decomposition_labeling(pd, g.num_nodes())),
      hierarchy_(std::make_shared<HierarchyMatrix>(g.num_nodes())),
      options_(options) {
  NAV_REQUIRE(n_ >= 1, "empty graph");
}

MLScheme::MLScheme(const Graph& g, MLSchemeOptions options)
    : MLScheme(g, decomp::best_path_decomposition(g).decomposition, options) {}

NodeId MLScheme::sample_contact(NodeId u, Rng& rng) const {
  NAV_ASSERT(u < n_);
  using Mode = MLSchemeOptions::Mode;
  bool use_hierarchy = false;
  switch (options_.mode) {
    case Mode::kMix: use_hierarchy = rng.next_bool(0.5); break;
    case Mode::kHierarchyOnly: use_hierarchy = true; break;
    case Mode::kUniformOnly: use_hierarchy = false; break;
  }
  if (use_hierarchy) {
    const auto j = hierarchy_->sample_row(labeling_.label(u), rng);
    if (!j.has_value() || *j > labeling_.universe()) return kNoContact;
    return labeling_.sample_member(*j, rng);
  }
  if (options_.uniform_over_nodes) return random_index(rng, n_);
  const auto j = static_cast<Label>(1 + random_index(rng, n_));
  if (j > labeling_.universe()) return kNoContact;
  return labeling_.sample_member(j, rng);
}

std::string MLScheme::name() const {
  using Mode = MLSchemeOptions::Mode;
  switch (options_.mode) {
    case Mode::kHierarchyOnly: return "ml-A-only";
    case Mode::kUniformOnly: return "ml-U-only";
    case Mode::kMix: break;
  }
  return options_.uniform_over_nodes ? "ml" : "ml-labelU";
}

double MLScheme::probability(NodeId u, NodeId v) const {
  NAV_ASSERT(u < n_ && v < n_);
  const auto lv = labeling_.label(v);
  const auto class_size = static_cast<double>(labeling_.members(lv).size());
  NAV_ASSERT(class_size >= 1);
  const double a_part = hierarchy_->entry(labeling_.label(u), lv) / class_size;
  const double u_part = options_.uniform_over_nodes
                            ? 1.0 / static_cast<double>(n_)
                            : (1.0 / static_cast<double>(n_)) / class_size;
  using Mode = MLSchemeOptions::Mode;
  switch (options_.mode) {
    case Mode::kHierarchyOnly: return a_part;
    case Mode::kUniformOnly: return u_part;
    case Mode::kMix: break;
  }
  return 0.5 * (a_part + u_part);
}

}  // namespace nav::core
