// uniform_scheme.hpp — φ_unif: contact uniform over all nodes (Peleg's O(√n)
// universal scheme, paper §1).
//
// φ_u(v) = 1/n for every v (including v = u — the uniform matrix U has
// u_{i,j} = 1/n on the diagonal too; a self-contact is a wasted link that
// greedy routing never follows).
#pragma once

#include "core/scheme.hpp"

namespace nav::core {

class UniformScheme final : public AugmentationScheme {
 public:
  explicit UniformScheme(const Graph& g) : n_(g.num_nodes()) {
    NAV_REQUIRE(n_ >= 1, "empty graph");
  }

  [[nodiscard]] NodeId sample_contact(NodeId u, Rng& rng) const override {
    NAV_ASSERT(u < n_);
    (void)u;
    return random_index(rng, n_);
  }

  [[nodiscard]] std::string name() const override { return "uniform"; }

  [[nodiscard]] double probability(NodeId, NodeId) const override {
    return 1.0 / static_cast<double>(n_);
  }

  [[nodiscard]] NodeId num_nodes() const override { return n_; }

 private:
  NodeId n_;
};

}  // namespace nav::core
