#include "core/ball_scheme.hpp"

#include <algorithm>
#include <cmath>

#include "graph/bfs_engine.hpp"

namespace nav::core {

BallScheme::BallScheme(const Graph& g, std::uint32_t levels)
    : graph_(g), levels_(levels), ecc_upper_(g.num_nodes()) {
  NAV_REQUIRE(g.num_nodes() >= 1, "empty graph");
  if (levels_ == 0) {
    levels_ = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(
               std::ceil(std::log2(static_cast<double>(g.num_nodes())))));
  }
  NAV_REQUIRE(levels_ <= 31, "too many levels");
  for (auto& e : ecc_upper_) e.store(0, std::memory_order_relaxed);
}

NodeId BallScheme::sample_from_ball(NodeId u, graph::Dist radius,
                                    Rng& rng) const {
  NAV_ASSERT(u < graph_.num_nodes());
  const NodeId n = graph_.num_nodes();
  // Whole-graph shortcuts (distribution-identical, see header).
  if (radius >= n) return random_index(rng, n);
  const graph::Dist known = ecc_upper_[u].load(std::memory_order_relaxed);
  if (known != 0 && radius >= known) return random_index(rng, n);

  const auto view = graph::local_bfs_workspace().ball(graph_, u, radius);
  if (view.whole_graph) {
    // Ball exhausted the graph: remember ecc(u) <= depth for next time, and
    // sample over node ids directly so the draw is bit-identical to the
    // cached-shortcut path above (determinism across cache states).
    ecc_upper_[u].store(view.exhausted_depth, std::memory_order_relaxed);
    return random_index(rng, n);
  }
  return view.order[random_index(rng, view.order.size())];
}

NodeId BallScheme::sample_contact(NodeId u, Rng& rng) const {
  const auto k = 1 + static_cast<std::uint32_t>(rng.next_below(levels_));
  return sample_from_ball(u, graph::Dist{1} << k, rng);
}

std::string BallScheme::name() const { return "ball"; }

std::vector<std::size_t> BallScheme::ball_sizes(NodeId u) const {
  const auto dist = graph::bfs_distances(graph_, u);
  std::vector<std::size_t> sizes(levels_ + 1, 0);
  for (const auto d : dist) {
    if (d == graph::kInfDist) continue;
    for (std::uint32_t k = 1; k <= levels_; ++k) {
      if (d <= (graph::Dist{1} << k)) ++sizes[k];
    }
  }
  return sizes;
}

double BallScheme::probability(NodeId u, NodeId v) const {
  NAV_ASSERT(u < graph_.num_nodes() && v < graph_.num_nodes());
  const auto dist = graph::bfs_distances(graph_, u);
  if (dist[v] == graph::kInfDist) return 0.0;
  const auto sizes = ball_sizes(u);
  double p = 0.0;
  for (std::uint32_t k = 1; k <= levels_; ++k) {
    if (dist[v] <= (graph::Dist{1} << k)) {
      p += 1.0 / static_cast<double>(sizes[k]);
    }
  }
  return p / static_cast<double>(levels_);
}

std::vector<double> BallScheme::probability_row(NodeId u) const {
  // One BFS serves the whole row: φ_u(v) = (1/L) Σ_{k >= r(v)} 1/|B_k(u)|,
  // precomputed as suffix sums over the level index.
  NAV_ASSERT(u < graph_.num_nodes());
  const auto dist = graph::bfs_distances(graph_, u);
  std::vector<std::size_t> sizes(levels_ + 1, 0);
  for (const auto d : dist) {
    if (d == graph::kInfDist) continue;
    for (std::uint32_t k = 1; k <= levels_; ++k) {
      if (d <= (graph::Dist{1} << k)) ++sizes[k];
    }
  }
  // suffix[k] = Σ_{j=k..L} 1/|B_j(u)|.
  std::vector<double> suffix(levels_ + 2, 0.0);
  for (std::uint32_t k = levels_; k >= 1; --k) {
    suffix[k] = suffix[k + 1] + 1.0 / static_cast<double>(sizes[k]);
  }
  std::vector<double> row(graph_.num_nodes(), 0.0);
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    if (dist[v] == graph::kInfDist) continue;
    std::uint32_t r = 1;
    while (r <= levels_ && dist[v] > (graph::Dist{1} << r)) ++r;
    if (r <= levels_) row[v] = suffix[r] / static_cast<double>(levels_);
  }
  return row;
}

// ---- fixed-level ablation ---------------------------------------------------

class FixedLevelBallScheme final : public AugmentationScheme {
 public:
  FixedLevelBallScheme(const Graph& g, std::uint32_t k)
      : base_(g, std::max<std::uint32_t>(k, 1)), k_(std::max<std::uint32_t>(k, 1)) {}

  [[nodiscard]] NodeId sample_contact(NodeId u, Rng& rng) const override {
    return base_.sample_from_ball(u, graph::Dist{1} << k_, rng);
  }
  [[nodiscard]] std::string name() const override {
    return "ball-fixed-k" + std::to_string(k_);
  }
  [[nodiscard]] NodeId num_nodes() const override { return base_.num_nodes(); }

 private:
  BallScheme base_;
  std::uint32_t k_;
};

SchemePtr BallScheme::make_fixed_level(const Graph& g, std::uint32_t k) {
  return std::make_unique<FixedLevelBallScheme>(g, k);
}

}  // namespace nav::core
