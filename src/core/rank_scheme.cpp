#include "core/rank_scheme.hpp"

namespace nav::core {

RankScheme::RankScheme(const Graph& g) : graph_(g) {
  NAV_REQUIRE(g.num_nodes() >= 2, "need at least two nodes");
  std::vector<double> weights(g.num_nodes() - 1);
  for (std::size_t r = 1; r < g.num_nodes(); ++r) {
    weights[r - 1] = 1.0 / static_cast<double>(r);
  }
  rank_dist_ = std::make_unique<DiscreteDistribution>(weights);
}

NodeId RankScheme::sample_contact(NodeId u, Rng& rng) const {
  NAV_ASSERT(u < graph_.num_nodes());
  // BFS discovery order (excluding u) *is* a distance order.
  const auto order = graph::ball(graph_, u, graph::kInfDist);
  const std::size_t rank = 1 + rank_dist_->sample(rng);  // in [1, n-1]
  if (rank >= order.size()) {
    // Disconnected remainder: treat ranks beyond the component as no link.
    return kNoContact;
  }
  return order[rank];  // order[0] == u
}

double RankScheme::probability(NodeId u, NodeId v) const {
  if (u == v) return 0.0;
  const auto order = graph::ball(graph_, u, graph::kInfDist);
  for (std::size_t r = 1; r < order.size(); ++r) {
    if (order[r] == v) return rank_dist_->probability(r - 1);
  }
  return 0.0;
}

std::vector<double> RankScheme::probability_row(NodeId u) const {
  const auto order = graph::ball(graph_, u, graph::kInfDist);
  std::vector<double> row(graph_.num_nodes(), 0.0);
  for (std::size_t r = 1; r < order.size(); ++r) {
    row[order[r]] = rank_dist_->probability(r - 1);
  }
  return row;
}

}  // namespace nav::core
