// restricted_label_scheme.hpp — Theorem 3 instances: matrix schemes over a
// label alphabet of size k = n^ε on the path.
//
// Theorem 3 is a lower bound: ANY augmentation-labeling scheme with labels of
// ε·log n bits on the n-node path has greedy diameter Ω(n^β) for every
// β < (1-ε)/3 — popular labels force Θ(n^{1-ε'})-long intervals with no
// expected internal shortcut. Experiment E4 instantiates the natural
// best-effort scheme with that budget: the Theorem 2 matrix M = (A+U)/2
// shrunk to a k×k universe, paired with the contiguous block labeling
// (each label covers n/k consecutive path nodes — the decomposition labeling
// degenerates to exactly this on the path when only k labels are available).
// Measured exponents grow as ε shrinks, matching the bound's direction.
#pragma once

#include "core/scheme.hpp"
#include "graph/graph.hpp"

namespace nav::core {

/// ML-style scheme with a k-label budget on `path` (must be the path graph
/// with node ids in path order). k in [1, n].
[[nodiscard]] SchemePtr make_restricted_label_scheme(const Graph& path,
                                                     std::uint32_t k);

/// The label-budget for a given ε: k = max(1, round(n^ε)), clamped to [1, n].
[[nodiscard]] std::uint32_t label_budget(graph::NodeId n, double epsilon);

}  // namespace nav::core
