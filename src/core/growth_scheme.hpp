// growth_scheme.hpp — the density-aware "ball-harmonic" baseline.
//
// The class-specific predecessors the paper cites ([6] Duchon-Hanusse-
// Lebhar-Schabanel, [21] Slivkins) make bounded-growth graphs polylog-
// navigable with distributions that normalise by ball volume rather than
// distance:
//     φ_u(v) ∝ 1 / |B(u, dist(u, v))|.
// The normaliser is Σ_r layer_u(r)/|B(u,r)| <= ln |B| = O(log n) on any
// graph, and on bounded-growth graphs each distance *scale* receives Θ(1/log)
// probability — the Kleinberg property without knowing the dimension.
//
// Included as a baseline for E7c: on its home class (paths, grids, tori —
// all bounded growth) it beats the ball scheme, but it carries no universal
// guarantee — the contrast that motivates the paper's Theorem 4.
#pragma once

#include "core/scheme.hpp"
#include "graph/bfs.hpp"

namespace nav::core {

class GrowthScheme final : public AugmentationScheme {
 public:
  explicit GrowthScheme(const Graph& g);

  [[nodiscard]] NodeId sample_contact(NodeId u, Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "growth"; }
  [[nodiscard]] double probability(NodeId u, NodeId v) const override;
  [[nodiscard]] std::vector<double> probability_row(NodeId u) const override;
  [[nodiscard]] NodeId num_nodes() const override { return graph_.num_nodes(); }

 private:
  /// Unnormalised weights 1/|B(u, d(u,v))| (0 for u itself / unreachable).
  [[nodiscard]] std::vector<double> weights(NodeId u) const;

  const Graph& graph_;
};

}  // namespace nav::core
