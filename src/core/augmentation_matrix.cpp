#include "core/augmentation_matrix.hpp"

#include <cmath>

#include "core/level_hierarchy.hpp"

namespace nav::core {

double MatrixView::row_sum(Label i) const {
  double sum = 0.0;
  for (Label j = 1; j <= size(); ++j) sum += entry(i, j);
  return sum;
}

// ---- UniformMatrix ----------------------------------------------------------

UniformMatrix::UniformMatrix(Label n) : n_(n) {
  NAV_REQUIRE(n >= 1, "matrix size must be >= 1");
}

double UniformMatrix::entry(Label i, Label j) const {
  NAV_REQUIRE(i >= 1 && i <= n_ && j >= 1 && j <= n_, "label out of range");
  return 1.0 / static_cast<double>(n_);
}

std::optional<Label> UniformMatrix::sample_row(Label i, Rng& rng) const {
  NAV_REQUIRE(i >= 1 && i <= n_, "label out of range");
  return static_cast<Label>(1 + random_index(rng, n_));
}

// ---- HierarchyMatrix --------------------------------------------------------

HierarchyMatrix::HierarchyMatrix(Label n) : n_(n) {
  NAV_REQUIRE(n >= 1, "matrix size must be >= 1");
  const double log_n = std::log2(static_cast<double>(n));
  prob_ = 1.0 / (1.0 + log_n);
  // Sampling grid: pick slot uniform in [0, slots); slots beyond the ancestor
  // list are the residual "no link" mass. slots_ >= #ancestors always, and
  // slot probability 1/slots_ <= prob_; we use exactly prob_ per ancestor by
  // drawing a uniform double instead (simpler and exact).
  slots_ = static_cast<std::uint32_t>(std::ceil(1.0 + log_n));
}

double HierarchyMatrix::entry(Label i, Label j) const {
  NAV_REQUIRE(i >= 1 && i <= n_ && j >= 1 && j <= n_, "label out of range");
  for (const auto anc : ancestors_within(i, n_)) {
    if (anc == j) return prob_;
  }
  return 0.0;
}

std::optional<Label> HierarchyMatrix::sample_row(Label i, Rng& rng) const {
  NAV_REQUIRE(i >= 1 && i <= n_, "label out of range");
  const auto anc = ancestors_within(i, n_);
  // Each ancestor has probability prob_ exactly; residual -> no link.
  const double r = rng.next_double();
  const auto idx = static_cast<std::size_t>(r / prob_);
  if (idx < anc.size()) return static_cast<Label>(anc[idx]);
  return std::nullopt;
}

// ---- MixMatrix --------------------------------------------------------------

MixMatrix::MixMatrix(MatrixPtr a, MatrixPtr b) : a_(std::move(a)), b_(std::move(b)) {
  NAV_REQUIRE(a_ != nullptr && b_ != nullptr, "null matrix component");
  NAV_REQUIRE(a_->size() == b_->size(), "mixed matrices must agree in size");
}

double MixMatrix::entry(Label i, Label j) const {
  return 0.5 * (a_->entry(i, j) + b_->entry(i, j));
}

std::optional<Label> MixMatrix::sample_row(Label i, Rng& rng) const {
  // Fair coin between components — exactly (A+B)/2, and it mirrors the
  // proof's "run A and U in parallel" argument.
  return rng.next_bool(0.5) ? a_->sample_row(i, rng) : b_->sample_row(i, rng);
}

std::string MixMatrix::name() const {
  return "(" + a_->name() + "+" + b_->name() + ")/2";
}

// ---- ExplicitMatrix ---------------------------------------------------------

ExplicitMatrix::ExplicitMatrix(Label n) : n_(n) {
  NAV_REQUIRE(n >= 1, "matrix size must be >= 1");
  NAV_REQUIRE(n <= 1u << 14, "explicit matrix limited to n <= 16384");
  cells_.assign(static_cast<std::size_t>(n_) * n_, 0.0);
}

ExplicitMatrix::ExplicitMatrix(const MatrixView& view)
    : ExplicitMatrix(view.size()) {
  for (Label i = 1; i <= n_; ++i)
    for (Label j = 1; j <= n_; ++j) set(i, j, view.entry(i, j));
}

void ExplicitMatrix::set(Label i, Label j, double p) {
  NAV_REQUIRE(i >= 1 && i <= n_ && j >= 1 && j <= n_, "label out of range");
  NAV_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of [0,1]");
  cells_[static_cast<std::size_t>(i - 1) * n_ + (j - 1)] = p;
}

double ExplicitMatrix::entry(Label i, Label j) const {
  NAV_REQUIRE(i >= 1 && i <= n_ && j >= 1 && j <= n_, "label out of range");
  return cells_[static_cast<std::size_t>(i - 1) * n_ + (j - 1)];
}

std::optional<Label> ExplicitMatrix::sample_row(Label i, Rng& rng) const {
  NAV_REQUIRE(i >= 1 && i <= n_, "label out of range");
  double r = rng.next_double();
  const double* row = cells_.data() + static_cast<std::size_t>(i - 1) * n_;
  for (Label j = 0; j < n_; ++j) {
    r -= row[j];
    if (r < 0.0) return j + 1;
  }
  return std::nullopt;  // residual mass
}

bool ExplicitMatrix::is_valid(double tolerance) const {
  for (Label i = 1; i <= n_; ++i) {
    double sum = 0.0;
    for (Label j = 1; j <= n_; ++j) {
      const double p = entry(i, j);
      if (p < 0.0 || p > 1.0) return false;
      sum += p;
    }
    if (sum > 1.0 + tolerance) return false;
  }
  return true;
}

// ---- MatrixScheme -----------------------------------------------------------

MatrixScheme::MatrixScheme(MatrixPtr matrix, Labeling labeling,
                           std::string scheme_name)
    : matrix_(std::move(matrix)), labeling_(std::move(labeling)),
      name_(std::move(scheme_name)) {
  NAV_REQUIRE(matrix_ != nullptr, "null matrix");
  NAV_REQUIRE(matrix_->size() >= labeling_.universe(),
              "matrix smaller than label universe");
  if (name_.empty()) name_ = "matrix[" + matrix_->name() + "]";
}

NodeId MatrixScheme::sample_contact(NodeId u, Rng& rng) const {
  const auto j = matrix_->sample_row(labeling_.label(u), rng);
  if (!j.has_value()) return kNoContact;
  if (*j > labeling_.universe()) return kNoContact;  // label with no nodes
  return labeling_.sample_member(*j, rng);
}

double MatrixScheme::probability(NodeId u, NodeId v) const {
  // φ_u(v) = p_{L(u), L(v)} / |class(L(v))|.
  const auto lv = labeling_.label(v);
  const auto class_size = labeling_.members(lv).size();
  NAV_ASSERT(class_size >= 1);
  return matrix_->entry(labeling_.label(u), lv) /
         static_cast<double>(class_size);
}

}  // namespace nav::core
