// engine.hpp — NavigationEngine: one object owning the pieces every driver
// used to wire by hand.
//
// Before the facade each bench and example separately built a graph, picked
// a distance-oracle strategy (dense matrix vs. target cache, hard-coded per
// call site), constructed schemes and routers, and threaded Rngs through
// every call. NavigationEngine bundles:
//   * the graph (owned),
//   * a distance oracle, auto-selected by size: n <= dense_oracle_limit gets
//     a precomputed DistanceMatrix, larger graphs an LRU TargetDistanceCache,
//   * one augmentation scheme (registry spec or a custom SchemePtr),
//   * one router (registry spec; "greedy" by default),
// and exposes single routes, batch routing over the global thread pool
// (route_many), and greedy-diameter estimation — all deterministic given the
// caller-supplied Rng.
#pragma once

/// \file
/// \brief NavigationEngine: one owned graph + distance oracle + scheme +
/// router behind a fluent API.

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/scheme_factory.hpp"
#include "graph/distance_oracle.hpp"
#include "graph/graph.hpp"
#include "routing/router_factory.hpp"
#include "routing/trial_runner.hpp"
#include "workload/workload.hpp"

namespace nav::api {

/// Construction knobs for NavigationEngine.
struct EngineOptions {
  /// Sizes up to this use a dense all-pairs DistanceMatrix (O(n²) words);
  /// larger graphs use a per-target BFS cache of `cache_capacity` vectors.
  graph::NodeId dense_oracle_limit = 4096;
  /// Number of target distance vectors the BFS cache keeps resident.
  std::size_t cache_capacity = 64;
};

/// The facade's one oracle-selection policy: dense matrix up to
/// `dense_limit` nodes, LRU target cache of `cache_capacity` above (shared
/// by NavigationEngine and Experiment).
[[nodiscard]] std::unique_ptr<graph::DistanceOracle> make_distance_oracle(
    const graph::Graph& g, graph::NodeId dense_limit,
    std::size_t cache_capacity);

/// One object owning graph + distance oracle + augmentation scheme + router:
/// the facade's single-instance entry point. Fluent to configure
/// (use_scheme/use_router), deterministic given the caller-supplied Rng.
class NavigationEngine {
 public:
  /// Takes ownership of `g` and builds the size-appropriate oracle.
  explicit NavigationEngine(graph::Graph g, EngineOptions options = {});

  /// Builds the named graph::families instance of ~n nodes.
  [[nodiscard]] static NavigationEngine from_family(const std::string& family,
                                                    graph::NodeId n,
                                                    std::uint64_t graph_seed = 0x5eed,
                                                    EngineOptions options = {});

  /// Loads a graph in the nav-graph text format (graph/graph_io.hpp).
  [[nodiscard]] static NavigationEngine from_file(const std::string& path,
                                                  EngineOptions options = {});

  /// Selects the augmentation by registry spec (core::make_scheme; "none"
  /// clears it). Scheme construction randomness derives from `scheme_seed`.
  NavigationEngine& use_scheme(const std::string& spec,
                               std::uint64_t scheme_seed = 0x5eed);

  /// Installs a custom scheme (may be null = no long-range links).
  NavigationEngine& use_scheme(core::SchemePtr scheme);

  /// Selects the routing process by registry spec (routing::make_router).
  NavigationEngine& use_router(const std::string& spec);

  /// The owned graph.
  [[nodiscard]] const graph::Graph& graph() const noexcept { return *graph_; }
  /// The size-selected distance oracle (dense matrix or target cache).
  [[nodiscard]] const graph::DistanceOracle& oracle() const noexcept {
    return *oracle_;
  }
  /// The current augmentation scheme; nullptr means local links only.
  [[nodiscard]] const core::AugmentationScheme* scheme() const noexcept {
    return scheme_.get();
  }
  /// The current routing process.
  [[nodiscard]] const routing::Router& router() const noexcept {
    return *router_;
  }
  /// The scheme registry spec currently in force ("none" default; the
  /// scheme's own name when installed via SchemePtr).
  [[nodiscard]] const std::string& scheme_spec() const noexcept {
    return scheme_spec_;
  }
  /// The router registry spec currently in force ("greedy" default).
  [[nodiscard]] const std::string& router_spec() const noexcept {
    return router_spec_;
  }

  /// Routes one message under the current scheme + router.
  [[nodiscard]] routing::RouteResult route(graph::NodeId s, graph::NodeId t,
                                           Rng rng,
                                           bool record_trace = false) const;

  /// Batch routing, executed through a target-sharded RouteService: pairs
  /// sharing a target share one BFS, shards fan across the global thread
  /// pool. Pair i uses rng.child(i), so the results are bit-identical to
  /// sequential routing whatever the shard layout or thread count.
  [[nodiscard]] std::vector<routing::RouteResult> route_many(
      std::span<const std::pair<graph::NodeId, graph::NodeId>> pairs, Rng rng,
      bool parallel = true) const;

  /// Greedy-diameter estimation under the current scheme + router.
  [[nodiscard]] routing::GreedyDiameterEstimate estimate_diameter(
      const routing::TrialConfig& config, Rng rng) const;

  /// Builds a demand model over the engine's graph
  /// (workload::make_workload registry); `seed` pins construction-time
  /// randomness (hot sets, popularity permutations). The engine must
  /// outlive the returned workload.
  [[nodiscard]] workload::WorkloadPtr make_workload(
      const std::string& spec, std::uint64_t seed = 0x5eed) const;

 private:
  // unique_ptrs keep graph/oracle addresses stable, so the router's internal
  // references survive moves of the engine itself.
  std::unique_ptr<graph::Graph> graph_;
  std::unique_ptr<graph::DistanceOracle> oracle_;
  core::SchemePtr scheme_;
  std::string scheme_spec_ = "none";
  routing::RouterPtr router_;
  std::string router_spec_ = "greedy";
};

}  // namespace nav::api
