// engine.hpp — NavigationEngine: one object owning the pieces every driver
// used to wire by hand.
//
// Before the facade each bench and example separately built a graph, picked
// a distance-oracle strategy (dense matrix vs. target cache, hard-coded per
// call site), constructed schemes and routers, and threaded Rngs through
// every call. NavigationEngine bundles:
//   * the graph (owned),
//   * a distance oracle built by graph::make_oracle from options.oracle_spec
//     ("auto" keeps the historical size rule: n <= dense_oracle_limit gets a
//     precomputed DistanceMatrix, larger graphs an LRU TargetDistanceCache),
//   * one augmentation scheme (registry spec or a custom SchemePtr),
//   * one router (registry spec; "greedy" by default),
// and exposes single routes, batch routing over the global thread pool
// (route_many), and greedy-diameter estimation — all deterministic given the
// caller-supplied Rng.
#pragma once

/// \file
/// \brief NavigationEngine: one owned graph + distance oracle + scheme +
/// router behind a fluent API.

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/scheme_factory.hpp"
#include "graph/distance_oracle.hpp"
#include "graph/graph.hpp"
#include "routing/router_factory.hpp"
#include "routing/trial_runner.hpp"
#include "workload/workload.hpp"

namespace nav::api {

/// Construction knobs for NavigationEngine.
struct EngineOptions {
  /// Distance backend, as a graph::make_oracle spec ("auto" | "matrix[:w]" |
  /// "cache[:cap][:w]" | "landmark:k[:sel]" — grammar in docs/API.md).
  std::string oracle_spec = "auto";
  /// "auto" only: sizes up to this use a dense all-pairs DistanceMatrix
  /// (O(n²) words); larger graphs use a per-target BFS cache.
  graph::NodeId dense_oracle_limit = 4096;
  /// "auto" / bare "cache": resident target-vector count for the BFS cache.
  std::size_t cache_capacity = 64;
};

/// One object owning graph + distance oracle + augmentation scheme + router:
/// the facade's single-instance entry point. Fluent to configure
/// (use_scheme/use_router), deterministic given the caller-supplied Rng.
class NavigationEngine {
 public:
  /// Takes ownership of `g` and builds the size-appropriate oracle.
  explicit NavigationEngine(graph::Graph g, EngineOptions options = {});

  /// Builds the named graph::families instance of ~n nodes.
  [[nodiscard]] static NavigationEngine from_family(const std::string& family,
                                                    graph::NodeId n,
                                                    std::uint64_t graph_seed = 0x5eed,
                                                    EngineOptions options = {});

  /// Loads a graph in the nav-graph text format (graph/graph_io.hpp).
  [[nodiscard]] static NavigationEngine from_file(const std::string& path,
                                                  EngineOptions options = {});

  /// Loads a real graph by spec or bare path: "file:<path>" (format
  /// auto-detected: nav-graph, DIMACS, or SNAP edge list), "dimacs:<path>",
  /// or a plain path (treated as "file:<path>"). Disconnected inputs reduce
  /// to their largest component — see graph::load_edge_list.
  [[nodiscard]] static NavigationEngine load_graph(const std::string& spec,
                                                   EngineOptions options = {});

  /// Selects the augmentation by registry spec (core::make_scheme; "none"
  /// clears it). Scheme construction randomness derives from `scheme_seed`.
  NavigationEngine& use_scheme(const std::string& spec,
                               std::uint64_t scheme_seed = 0x5eed);

  /// Installs a custom scheme (may be null = no long-range links).
  NavigationEngine& use_scheme(core::SchemePtr scheme);

  /// Selects the routing process by registry spec (routing::make_router).
  NavigationEngine& use_router(const std::string& spec);

  /// The owned graph.
  [[nodiscard]] const graph::Graph& graph() const noexcept { return *graph_; }
  /// The spec-selected distance oracle (graph::make_oracle).
  [[nodiscard]] const graph::DistanceOracle& oracle() const noexcept {
    return *oracle_;
  }
  /// The current augmentation scheme; nullptr means local links only.
  [[nodiscard]] const core::AugmentationScheme* scheme() const noexcept {
    return scheme_.get();
  }
  /// The current routing process.
  [[nodiscard]] const routing::Router& router() const noexcept {
    return *router_;
  }
  /// The scheme registry spec currently in force ("none" default; the
  /// scheme's own name when installed via SchemePtr).
  [[nodiscard]] const std::string& scheme_spec() const noexcept {
    return scheme_spec_;
  }
  /// The router registry spec currently in force ("greedy" default).
  [[nodiscard]] const std::string& router_spec() const noexcept {
    return router_spec_;
  }

  /// Routes one message under the current scheme + router.
  [[nodiscard]] routing::RouteResult route(graph::NodeId s, graph::NodeId t,
                                           Rng rng,
                                           bool record_trace = false) const;

  /// Batch routing, executed through a target-sharded RouteService: pairs
  /// sharing a target share one BFS, shards fan across the global thread
  /// pool. Pair i uses rng.child(i), so the results are bit-identical to
  /// sequential routing whatever the shard layout or thread count.
  [[nodiscard]] std::vector<routing::RouteResult> route_many(
      std::span<const std::pair<graph::NodeId, graph::NodeId>> pairs, Rng rng,
      bool parallel = true) const;

  /// Greedy-diameter estimation under the current scheme + router.
  [[nodiscard]] routing::GreedyDiameterEstimate estimate_diameter(
      const routing::TrialConfig& config, Rng rng) const;

  /// Builds a demand model over the engine's graph
  /// (workload::make_workload registry); `seed` pins construction-time
  /// randomness (hot sets, popularity permutations). The engine must
  /// outlive the returned workload.
  [[nodiscard]] workload::WorkloadPtr make_workload(
      const std::string& spec, std::uint64_t seed = 0x5eed) const;

 private:
  // unique_ptrs keep graph/oracle addresses stable, so the router's internal
  // references survive moves of the engine itself.
  std::unique_ptr<graph::Graph> graph_;
  std::unique_ptr<graph::DistanceOracle> oracle_;
  core::SchemePtr scheme_;
  std::string scheme_spec_ = "none";
  routing::RouterPtr router_;
  std::string router_spec_ = "greedy";
};

}  // namespace nav::api
