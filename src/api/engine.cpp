#include "api/engine.hpp"

#include "api/route_service.hpp"
#include "graph/families.hpp"
#include "graph/graph_io.hpp"
#include "graph/oracle_factory.hpp"
#include "runtime/thread_pool.hpp"

namespace nav::api {

NavigationEngine::NavigationEngine(graph::Graph g, EngineOptions options)
    : graph_(std::make_unique<graph::Graph>(std::move(g))) {
  NAV_REQUIRE(graph_->num_nodes() >= 2, "engine needs a routable graph");
  graph::OracleConfig config;
  config.dense_limit = options.dense_oracle_limit;
  config.cache_slots = options.cache_capacity;
  oracle_ = graph::make_oracle(options.oracle_spec, *graph_, config);
  router_ = routing::make_router(router_spec_, *graph_, *oracle_);
}

NavigationEngine NavigationEngine::from_family(const std::string& family,
                                               graph::NodeId n,
                                               std::uint64_t graph_seed,
                                               EngineOptions options) {
  Rng rng(graph_seed);
  return NavigationEngine(graph::family(family).make(n, rng), options);
}

NavigationEngine NavigationEngine::from_file(const std::string& path,
                                             EngineOptions options) {
  return NavigationEngine(graph::load_graph(path), options);
}

NavigationEngine NavigationEngine::load_graph(const std::string& spec,
                                              EngineOptions options) {
  const std::string resolved =
      graph::is_graph_spec(spec) ? spec : "file:" + spec;
  Rng rng(0);  // file sources ignore both arguments of make
  return NavigationEngine(graph::graph_source(resolved).make(0, rng), options);
}

NavigationEngine& NavigationEngine::use_scheme(const std::string& spec,
                                               std::uint64_t scheme_seed) {
  Rng rng(scheme_seed);
  scheme_ = core::make_scheme(spec, *graph_, rng);
  scheme_spec_ = spec;
  return *this;
}

NavigationEngine& NavigationEngine::use_scheme(core::SchemePtr scheme) {
  if (scheme != nullptr) {
    NAV_REQUIRE(scheme->num_nodes() == graph_->num_nodes(),
                "scheme/graph size mismatch");
  }
  scheme_ = std::move(scheme);
  scheme_spec_ = scheme_ ? scheme_->name() : "none";
  return *this;
}

NavigationEngine& NavigationEngine::use_router(const std::string& spec) {
  router_ = routing::make_router(spec, *graph_, *oracle_);
  router_spec_ = spec;
  return *this;
}

routing::RouteResult NavigationEngine::route(graph::NodeId s, graph::NodeId t,
                                             Rng rng,
                                             bool record_trace) const {
  return router_->route(s, t, scheme_.get(), rng, record_trace);
}

std::vector<routing::RouteResult> NavigationEngine::route_many(
    std::span<const std::pair<graph::NodeId, graph::NodeId>> pairs, Rng rng,
    bool parallel) const {
  RouteServiceOptions options;
  options.parallel = parallel;
  return RouteService(*this, options).route_batch(pairs, rng);
}

routing::GreedyDiameterEstimate NavigationEngine::estimate_diameter(
    const routing::TrialConfig& config, Rng rng) const {
  return RouteService(*this).estimate_diameter(config, rng);
}

workload::WorkloadPtr NavigationEngine::make_workload(
    const std::string& spec, std::uint64_t seed) const {
  return workload::make_workload(spec, *graph_, Rng(seed));
}

}  // namespace nav::api
