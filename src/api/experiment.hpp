// experiment.hpp — fluent sweep grids: family × sizes × workloads × schemes
// × routers.
//
// Replaces the SweepConfig plumbing every bench binary used to re-wire by
// hand. A sweep is declared in one expression and returns structured rows:
//
//   auto result = api::Experiment::on("cycle")
//                     .sizes({1024, 4096})
//                     .workloads({"uniform", "zipf:1.1"})
//                     .schemes({"ball", "ml"})
//                     .routers({"greedy", "lookahead:1"})
//                     .run();
//   std::cout << result.table().to_ascii();
//
// Routers are a sweep axis like schemes ("Navigability is a Robust Property"
// -style grids need both), workloads are a fourth axis (navigability under
// non-uniform demand — the same robustness question from the demand side),
// and results stream to any attached ResultSink (table / CSV / JSON Lines)
// as cells finish, so long sweeps emit trajectories natively.
//
// The workload axis value "uniform" (the default) denotes the classic trial
// pair selection — TrialConfig::policy via select_trial_pairs, bit-identical
// to pre-workload grids. Any other value replaces pair selection with
// workload::make_workload(spec) draws: num_pairs pairs from the demand
// model, the policy field ignored.
//
// Determinism: one seed fixes the whole grid. Cell (size si, workload wi,
// scheme ki, router ri) derives graph, workload, scheme, and trial
// randomness from disjoint child streams of the root, so adding an axis
// value does not perturb the other columns; "uniform" cells keep their
// legacy stream addresses exactly.
#pragma once

/// \file
/// \brief Experiment: fluent sweep grids (family × sizes × mutations ×
/// workloads × schemes × routers) with streamed results.

#include <cstdint>
#include <string>
#include <vector>

#include "api/result_sink.hpp"
#include "graph/graph.hpp"
#include "routing/trial_runner.hpp"
#include "runtime/stats.hpp"

namespace nav::api {

/// One grid cell: (graph source, n) × mutation × oracle × workload × scheme
/// × router.
struct CellResult {
  std::string family;              ///< graph source: family name or file spec
  std::string workload;            ///< workload spec ("uniform" = legacy)
  std::string scheme;              ///< core::make_scheme spec
  std::string router;              ///< routing::make_router spec
  std::string mutations = "none";  ///< dynamic::make_mutation_stream spec
  std::string oracle = "auto";     ///< graph::make_oracle spec
  graph::NodeId n_requested = 0;   ///< size asked of the family
  graph::NodeId n_actual = 0;      ///< size the family produced
  graph::EdgeId m = 0;             ///< edge count (after mutation)
  graph::Dist diameter_lb = 0;     ///< double-sweep lower bound
  double greedy_diameter = 0.0;    ///< max over pairs of mean steps
  double mean_steps = 0.0;         ///< mean over pairs
  double ci_halfwidth = 0.0;       ///< CI at the maximising pair
  double success_rate = 1.0;       ///< fraction of pairs still connected
  double seconds = 0.0;            ///< wall time of the cell
  /// True when the sweep carries an explicit mutations axis; gates the
  /// "mutations"/"success_rate" fields so legacy grids keep their exact
  /// record layout (the BENCH_*.quick.json goldens pin it).
  bool show_mutations = false;
  /// Same gating for the "oracle" field: only an explicit oracles() axis
  /// emits it.
  bool show_oracle = false;

  /// Flat record for ResultSink streaming.
  [[nodiscard]] Record record() const;
};

/// Per-(workload, scheme, router, mutations, oracle) power-law fit of greedy
/// diameter vs n.
struct AxisFit {
  std::string workload;            ///< workload spec of this fit's cells
  std::string scheme;              ///< scheme spec of this fit's cells
  std::string router;              ///< router spec of this fit's cells
  std::string mutations = "none";  ///< mutation spec of this fit's cells
  std::string oracle = "auto";     ///< oracle spec of this fit's cells
  nav::PowerFit fit;               ///< log-log slope (the exponent) and R²
};

/// The finished grid: every cell plus table/fit renderings.
struct ExperimentResult {
  /// Cells ordered size-major, then workload, then scheme, then router.
  std::vector<CellResult> cells;

  /// Paper-style table: family | workload | scheme | router | n | m |
  /// diam>= | greedy-diam | mean | ci | sec.
  [[nodiscard]] Table table() const;

  /// Exponent fits, grid order (workload-major, then scheme, then router).
  [[nodiscard]] std::vector<AxisFit> fits() const;

  /// Renders the fits: workload | scheme | router | exponent | R².
  [[nodiscard]] Table fit_table() const;

  /// Replays every cell into a sink (for post-hoc export).
  void write(ResultSink& sink) const;
};

/// Fluent sweep-grid builder: graph sources × sizes × schemes × routers.
class Experiment {
 public:
  /// Starts a sweep over the named graph::families entry.
  [[nodiscard]] static Experiment on(std::string family);

  /// Starts a sweep over several graph sources — family names and/or
  /// file-backed specs ("file:<path>", "dimacs:<path>"; see
  /// graph::graph_source). on(f) is exactly graphs({f}); a single-source
  /// sweep keeps the legacy RNG streams bit for bit, later sources get
  /// disjoint streams. File-backed sources ignore the sizes() axis value
  /// (the file decides n) and a sweep whose sources are ALL file-backed may
  /// omit sizes() entirely.
  [[nodiscard]] static Experiment graphs(std::vector<std::string> specs);

  /// Node counts to sweep (requested; families may round).
  Experiment& sizes(std::vector<graph::NodeId> sizes);
  /// Workload axis: workload::make_workload specs (default {"uniform"},
  /// which keeps the legacy TrialConfig pair selection bit for bit).
  Experiment& workloads(std::vector<std::string> workload_specs);
  /// Scheme axis: core::make_scheme specs (default {"uniform"}).
  Experiment& schemes(std::vector<std::string> scheme_specs);
  /// Router axis: routing::make_router specs (default {"greedy"}).
  Experiment& routers(std::vector<std::string> router_specs);
  /// Mutation axis: dynamic::make_mutation_stream specs plus the sentinel
  /// "none" (the default {"none"} keeps the legacy static-graph path bit
  /// for bit). Any other spec is applied — one stream step — to a
  /// DynamicGraph copy of the cell's graph before measurement; the scheme
  /// stays the one built on the pristine graph (stale augmentation is the
  /// robustness question), distances come from a fresh oracle on the
  /// mutated graph, and pairs the mutation disconnected are dropped from
  /// the estimate and reported via CellResult::success_rate.
  Experiment& mutations(std::vector<std::string> mutation_specs);
  /// Oracle axis: graph::make_oracle specs (default {"auto"}, the legacy
  /// size-selected backend, bit for bit). Cells across oracle values share
  /// their trial streams — same pairs, same contact draws — so a
  /// landmark-vs-exact column difference isolates the backend's stretch.
  /// Non-"auto" backends are built once per (size, mutation, oracle) cell
  /// block, outside the cell timers.
  Experiment& oracles(std::vector<std::string> oracle_specs);
  /// Random (s, t) pairs per cell (routing::TrialConfig::num_pairs).
  Experiment& pairs(std::size_t num_pairs);
  /// Augmentation redraws per pair (routing::TrialConfig::resamples).
  Experiment& resamples(std::size_t resamples);
  /// How cells pick their (s, t) pairs.
  Experiment& pair_policy(routing::TrialConfig::PairPolicy policy);
  /// Full trial configuration in one call (overrides pairs/resamples).
  Experiment& trials(const routing::TrialConfig& config);
  /// Master seed: one value pins every graph, scheme, and trial draw.
  Experiment& seed(std::uint64_t seed);
  /// Cap on oracle memory: sizes <= this use a full DistanceMatrix, larger
  /// ones a TargetDistanceCache.
  Experiment& dense_oracle_limit(graph::NodeId limit);
  /// Streams each finished cell to `sink` (call repeatedly to stack sinks;
  /// the sink must outlive run()).
  Experiment& stream_to(ResultSink& sink);

  /// The first (often only) graph source this sweep runs on.
  [[nodiscard]] const std::string& family() const noexcept {
    return graph_specs_.front();
  }

  /// Runs the grid; cells ordered source-major, then size, then mutation,
  /// then oracle, then workload, then scheme, then router. Throws
  /// std::invalid_argument on an empty grid or unknown specs.
  [[nodiscard]] ExperimentResult run() const;

 private:
  explicit Experiment(std::vector<std::string> specs)
      : graph_specs_(std::move(specs)) {}

  std::vector<std::string> graph_specs_;
  std::vector<graph::NodeId> sizes_;
  std::vector<std::string> workloads_ = {"uniform"};
  std::vector<std::string> schemes_ = {"uniform"};
  std::vector<std::string> routers_ = {"greedy"};
  std::vector<std::string> mutations_ = {"none"};
  std::vector<std::string> oracles_ = {"auto"};
  routing::TrialConfig trials_;
  std::uint64_t seed_ = 0x5eed;
  graph::NodeId dense_oracle_limit_ = 4096;
  std::vector<ResultSink*> sinks_;
};

}  // namespace nav::api
