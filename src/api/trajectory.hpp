// trajectory.hpp — the nav-bench-trajectory-v1 document writer.
//
// Grown out of bench/harness.cpp so the emission logic has exactly one
// home: the bench Harness delegates here, and CLI drivers (examples/
// sweep_cli) emit the same schema without linking the bench harness —
// making their sweeps diffable by scripts/compare_bench.py against bench
// baselines. The output is byte-identical to what the harness historically
// wrote (the BENCH_*.quick.json goldens pin it).
//
// A document is: header (schema/bench/id/quick), rendering hint
// ("group_by"), the field classification, and the recorded cells. Fields
// classify by name, preserving first-seen order:
//   * string-valued fields and the grid-coordinate numerics listed in
//     numeric_key_fields() are KEYS — together they identify a cell's
//     series across runs (compare_bench.py matches on them);
//   * every other numeric is a METRIC, compared strictly — except names in
//     loose_metric_names() (wall-clock observations: seconds, rates,
//     sojourn quantiles, queue gauges), listed in the document's
//     "loose_metrics" so golden tests mask them and the regression gate
//     thresholds them loosely.
#pragma once

/// \file
/// \brief TrajectoryWriter: shared nav-bench-trajectory-v1 emission
/// (BENCH_<id>.json + merged BENCH_all.json) for benches and CLI sweeps.

#include <string>
#include <vector>

#include "api/result_sink.hpp"

namespace nav::api {

/// True for wall-clock-dependent metric names ("loose_metrics" entries).
[[nodiscard]] bool is_loose_metric_name(const std::string& name);

/// True for numeric field names that are grid coordinates (cell keys).
[[nodiscard]] bool is_numeric_key_field(const std::string& name);

/// Accumulates cells and writes the trajectory documents. One writer per
/// produced BENCH_<id>.json.
class TrajectoryWriter {
 public:
  /// `id` names the document file (BENCH_<id>.json); `name` is the bench
  /// identity inside it; `quick` is echoed in the header; files land in
  /// `out_dir` ("." keeps bare names).
  TrajectoryWriter(std::string id, std::string name, bool quick,
                   std::string out_dir = ".");

  /// Records one cell. A non-empty `section` is prepended as the cell's
  /// "section" field (keeps keys unique across sections measuring the same
  /// grid coordinates).
  void add_cell(Record cell, const std::string& section = "");

  /// Overrides the document's "group_by" rendering hint (default: the
  /// first two non-section string-valued key fields observed).
  void group_by(std::vector<std::string> fields);

  /// Cells recorded so far.
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return cells_.size();
  }

  /// Writes BENCH_<id>.json; returns false (with a stderr warning) when the
  /// file cannot be opened. Logs "trajectory written: ..." on success.
  bool write_document();

  /// Refreshes BENCH_all.json from every per-bench trajectory document
  /// present in the output directory (each writer call re-merges, so a
  /// suite run accumulates incrementally).
  void write_merged();

  /// `file_name` placed in the output directory (bare when out_dir is ".").
  [[nodiscard]] std::string out_path(const std::string& file_name) const;

 private:
  std::string id_;
  std::string name_;
  bool quick_;
  std::string out_dir_;
  std::vector<Record> cells_;
  std::vector<std::string> group_by_;
};

}  // namespace nav::api
