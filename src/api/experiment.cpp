#include "api/experiment.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <tuple>

#include "api/route_service.hpp"
#include "core/scheme_factory.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/mutation_stream.hpp"
#include "graph/diameter.hpp"
#include "graph/families.hpp"
#include "graph/oracle_factory.hpp"
#include "routing/router_factory.hpp"
#include "runtime/timer.hpp"
#include "workload/workload.hpp"

namespace nav::api {

Record CellResult::record() const {
  Record out = {
      {"family", family},
      {"workload", workload},
      {"scheme", scheme},
      {"router", router},
      {"n_requested", static_cast<std::uint64_t>(n_requested)},
      {"n", static_cast<std::uint64_t>(n_actual)},
      {"m", static_cast<std::uint64_t>(m)},
      {"diameter_lb", static_cast<std::uint64_t>(diameter_lb)},
      {"greedy_diameter", greedy_diameter},
      {"mean_steps", mean_steps},
      {"ci95", ci_halfwidth},
      {"seconds", seconds},
  };
  if (show_mutations) {
    // Only an explicit mutations axis emits these two fields, so legacy
    // grids (and their golden files) keep the exact record layout above.
    out.insert(out.begin() + 4, {"mutations", mutations});
    out.insert(out.end() - 1, {"success_rate", success_rate});
  }
  if (show_oracle) {
    // Same gating: only an explicit oracles() axis emits the field, right
    // after "router" (and after "mutations" when that axis is active too).
    out.insert(out.begin() + (show_mutations ? 5 : 4), {"oracle", oracle});
  }
  return out;
}

Table ExperimentResult::table() const {
  const bool with_mutations =
      std::any_of(cells.begin(), cells.end(),
                  [](const CellResult& c) { return c.show_mutations; });
  const bool with_oracle =
      std::any_of(cells.begin(), cells.end(),
                  [](const CellResult& c) { return c.show_oracle; });
  std::vector<std::string> header = {"family", "workload"};
  if (with_mutations) header.push_back("mutations");
  if (with_oracle) header.push_back("oracle");
  header.insert(header.end(), {"scheme", "router", "n", "m", "diam>=",
                               "greedy-diam", "mean", "ci95"});
  if (with_mutations) header.push_back("success");
  header.push_back("sec");
  Table out(std::move(header));
  for (const auto& c : cells) {
    std::vector<std::string> row = {c.family, c.workload};
    if (with_mutations) row.push_back(c.mutations);
    if (with_oracle) row.push_back(c.oracle);
    row.insert(row.end(),
               {c.scheme, c.router, Table::integer(c.n_actual),
                Table::integer(c.m), Table::integer(c.diameter_lb),
                Table::num(c.greedy_diameter, 1), Table::num(c.mean_steps, 1),
                Table::num(c.ci_halfwidth, 1)});
    if (with_mutations) row.push_back(Table::num(c.success_rate, 3));
    row.push_back(Table::num(c.seconds, 2));
    out.add_row(std::move(row));
  }
  return out;
}

std::vector<AxisFit> ExperimentResult::fits() const {
  using Key = std::tuple<std::string, std::string, std::string, std::string,
                         std::string>;
  std::map<Key, std::pair<std::vector<double>, std::vector<double>>> by;
  std::vector<Key> order;
  for (const auto& c : cells) {
    const Key key{c.workload, c.scheme, c.router, c.mutations, c.oracle};
    if (by.find(key) == by.end()) order.push_back(key);
    by[key].first.push_back(static_cast<double>(c.n_actual));
    by[key].second.push_back(c.greedy_diameter);
  }
  std::vector<AxisFit> fits;
  fits.reserve(order.size());
  for (const auto& key : order) {
    fits.push_back({std::get<0>(key), std::get<1>(key), std::get<2>(key),
                    std::get<3>(key), std::get<4>(key),
                    nav::fit_power_law(by[key].first, by[key].second)});
  }
  return fits;
}

Table ExperimentResult::fit_table() const {
  const auto all = fits();
  const bool with_mutations =
      std::any_of(all.begin(), all.end(),
                  [](const AxisFit& f) { return f.mutations != "none"; });
  const bool with_oracle = std::any_of(
      all.begin(), all.end(),
      [](const AxisFit& f) { return f.oracle != "auto"; });
  std::vector<std::string> header = {"workload"};
  if (with_mutations) header.push_back("mutations");
  if (with_oracle) header.push_back("oracle");
  header.insert(header.end(), {"scheme", "router", "exponent", "R^2"});
  Table out(std::move(header));
  for (const auto& f : all) {
    std::vector<std::string> row = {f.workload};
    if (with_mutations) row.push_back(f.mutations);
    if (with_oracle) row.push_back(f.oracle);
    row.insert(row.end(), {f.scheme, f.router, Table::num(f.fit.slope, 3),
                           Table::num(f.fit.r_squared, 3)});
    out.add_row(std::move(row));
  }
  return out;
}

void ExperimentResult::write(ResultSink& sink) const {
  for (const auto& cell : cells) sink.write(cell.record());
  sink.flush();
}

Experiment Experiment::on(std::string family) {
  return graphs({std::move(family)});
}

Experiment Experiment::graphs(std::vector<std::string> specs) {
  NAV_REQUIRE(!specs.empty(), "sweep needs a graph source");
  return Experiment(std::move(specs));
}

Experiment& Experiment::sizes(std::vector<graph::NodeId> sizes) {
  sizes_ = std::move(sizes);
  return *this;
}

Experiment& Experiment::workloads(std::vector<std::string> workload_specs) {
  workloads_ = std::move(workload_specs);
  return *this;
}

Experiment& Experiment::schemes(std::vector<std::string> scheme_specs) {
  schemes_ = std::move(scheme_specs);
  return *this;
}

Experiment& Experiment::routers(std::vector<std::string> router_specs) {
  routers_ = std::move(router_specs);
  return *this;
}

Experiment& Experiment::mutations(std::vector<std::string> mutation_specs) {
  mutations_ = std::move(mutation_specs);
  return *this;
}

Experiment& Experiment::oracles(std::vector<std::string> oracle_specs) {
  oracles_ = std::move(oracle_specs);
  return *this;
}

Experiment& Experiment::pairs(std::size_t num_pairs) {
  trials_.num_pairs = num_pairs;
  return *this;
}

Experiment& Experiment::resamples(std::size_t resamples) {
  trials_.resamples = resamples;
  return *this;
}

Experiment& Experiment::pair_policy(routing::TrialConfig::PairPolicy policy) {
  trials_.policy = policy;
  return *this;
}

Experiment& Experiment::trials(const routing::TrialConfig& config) {
  trials_ = config;
  return *this;
}

Experiment& Experiment::seed(std::uint64_t seed) {
  seed_ = seed;
  return *this;
}

Experiment& Experiment::dense_oracle_limit(graph::NodeId limit) {
  dense_oracle_limit_ = limit;
  return *this;
}

Experiment& Experiment::stream_to(ResultSink& sink) {
  sinks_.push_back(&sink);
  return *this;
}

ExperimentResult Experiment::run() const {
  NAV_REQUIRE(!graph_specs_.empty(), "sweep needs a graph source");
  NAV_REQUIRE(!workloads_.empty(), "sweep needs workloads");
  NAV_REQUIRE(!schemes_.empty(), "sweep needs schemes");
  NAV_REQUIRE(!routers_.empty(), "sweep needs routers");
  NAV_REQUIRE(!mutations_.empty(), "sweep needs mutation specs");
  NAV_REQUIRE(!oracles_.empty(), "sweep needs oracle specs");
  // File-backed sources decide their own n, so a sweep over only files may
  // omit sizes(); a single placeholder size keeps the loop shape.
  std::vector<graph::NodeId> sizes = sizes_;
  if (sizes.empty()) {
    NAV_REQUIRE(std::all_of(graph_specs_.begin(), graph_specs_.end(),
                            graph::is_graph_spec),
                "sweep needs sizes");
    sizes = {0};
  }
  // The axis is "active" once any non-sentinel spec appears; only then do
  // cells carry the mutations/success_rate (resp. oracle) fields, so legacy
  // grids keep their exact record layout.
  const bool mutation_axis =
      mutations_.size() > 1 || mutations_.front() != "none";
  const bool oracle_axis = oracles_.size() > 1 || oracles_.front() != "auto";
  // The "auto" cell reuses the shared per-size oracle below; this config
  // only serves explicit non-"auto" axis values.
  graph::OracleConfig oracle_config;
  oracle_config.dense_limit = dense_oracle_limit_;
  oracle_config.cache_slots = trials_.num_pairs + 8;

  ExperimentResult result;
  Rng master(seed_);
  for (std::size_t gi = 0; gi < graph_specs_.size(); ++gi) {
    const auto& graph_spec = graph_specs_[gi];
    const graph::FamilySpec fam = graph::graph_source(graph_spec);
    // Source 0 keeps the legacy stream addresses bit for bit (on(f) grids
    // are unchanged); later sources re-root every derivation under a salted
    // child so adding a source never perturbs the others' columns.
    const Rng root = gi == 0 ? master : master.child(0x6ea9).child(gi);

  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const auto n_req = sizes[si];
    Rng graph_rng = root.child(0x6aaf).child(si);
    const graph::Graph g = fam.make(n_req, graph_rng);
    NAV_REQUIRE(g.num_nodes() >= 2, "graph source produced a trivial graph");

    const auto oracle = graph::make_oracle("auto", g, oracle_config);
    const auto diameter_lb = graph::double_sweep_lower_bound(g);

    // Schemes depend only on (size, scheme index) — their streams carry no
    // workload term — so build each once per size and share it across the
    // workload axis instead of rebuilding identical schemes per workload.
    // The mutation axis shares them too: the scheme is deliberately built
    // on the PRISTINE graph, so a mutated cell measures routing with a
    // stale augmentation — the robustness question.
    std::vector<core::SchemePtr> schemes_built(schemes_.size());
    std::vector<double> scheme_build_seconds(schemes_.size(), 0.0);
    for (std::size_t ki = 0; ki < schemes_.size(); ++ki) {
      nav::Timer scheme_timer;
      Rng scheme_rng = root.child(0x5c4e).child(si).child(ki);
      schemes_built[ki] = core::make_scheme(schemes_[ki], g, scheme_rng);
      scheme_build_seconds[ki] = scheme_timer.seconds();
    }

    for (std::size_t mi = 0; mi < mutations_.size(); ++mi) {
      const auto& mutation_spec = mutations_[mi];
      // "none" keeps the legacy static-graph path — streams, oracle, and
      // graph object untouched — so the sentinel column of an active-axis
      // sweep is bit-identical to the same sweep without the axis. Any
      // other spec perturbs a DynamicGraph copy by ONE stream step before
      // measurement and rebuilds distances on the mutated topology.
      const bool mutated = mutation_spec != "none";
      std::unique_ptr<dynamic::DynamicGraph> dyn;
      std::unique_ptr<graph::DistanceOracle> mutated_oracle;
      graph::Dist cell_diameter_lb = diameter_lb;
      if (mutated) {
        dyn = std::make_unique<dynamic::DynamicGraph>(g);
        const auto stream = dynamic::make_mutation_stream(mutation_spec);
        Rng mutation_rng = root.child(0xD1f5).child(si).child(mi);
        dyn->apply(stream->step(*dyn, mutation_rng));
        mutated_oracle = graph::make_oracle("auto", dyn->graph(),
                                            oracle_config);
        cell_diameter_lb = graph::double_sweep_lower_bound(dyn->graph());
      }
      const graph::Graph& cell_graph = mutated ? dyn->graph() : g;

      for (std::size_t oi = 0; oi < oracles_.size(); ++oi) {
        const auto& oracle_spec = oracles_[oi];
        // "auto" shares the per-size (or per-mutation) oracle built above;
        // any other spec builds its backend once per (size, mutation)
        // block, OUTSIDE the cell timers — the cells measure routing on the
        // backend, not its construction. Trial streams carry no oracle
        // term, so cells across this axis route the SAME pairs with the
        // SAME contact draws: the column difference isolates the backend.
        std::unique_ptr<graph::DistanceOracle> custom_oracle;
        if (oracle_spec != "auto") {
          custom_oracle =
              graph::make_oracle(oracle_spec, cell_graph, oracle_config);
        }
        const graph::DistanceOracle& cell_oracle =
            custom_oracle ? *custom_oracle
                          : (mutated ? *mutated_oracle : *oracle);

      for (std::size_t wi = 0; wi < workloads_.size(); ++wi) {
        const auto& workload_spec = workloads_[wi];
        // "uniform" keeps the legacy path: TrialConfig pair selection AND
        // the pre-workload-axis stream addresses, so existing grids (and
        // their golden files) are bit-identical. Any other spec swaps pair
        // selection for the demand model, with streams salted by the
        // workload index. Built once per (size, mutation, workload) — the
        // construction stream carries no mutation term, so the demand model
        // redraws identically across the mutation axis; reset() before each
        // cell rewinds stateful generators (trace replay), so adding a
        // scheme or router never perturbs the demand.
        const bool legacy_uniform = workload_spec == "uniform";
        workload::WorkloadPtr demand;
        if (!legacy_uniform) {
          demand = workload::make_workload(
              workload_spec, cell_graph,
              root.child(0x301d).child(si).child(wi));
        }

        for (std::size_t ki = 0; ki < schemes_.size(); ++ki) {
          const auto& scheme_spec = schemes_[ki];
          const auto& scheme = schemes_built[ki];
          // Construction cost is billed once, to the first cell that uses
          // the scheme (mi == 0, oi == 0, wi == 0, ri == 0) — the legacy
          // per-cell accounting for single-workload single-router grids.
          const double scheme_seconds =
              (mi == 0 && oi == 0 && wi == 0) ? scheme_build_seconds[ki] : 0.0;

          for (std::size_t ri = 0; ri < routers_.size(); ++ri) {
            const auto& router_spec = routers_[ri];
            nav::Timer timer;
            const auto router =
                routing::make_router(router_spec, cell_graph, cell_oracle);
            // The cell's whole pair × replicate grid routes as one
            // target-sharded batch; numbers are bit-identical to the
            // sequential estimator (see RouteService::estimate_diameter).
            RouteServiceOptions service_options;
            service_options.parallel = trials_.parallel;
            const RouteService service(cell_graph, cell_oracle, scheme.get(),
                                       *router, service_options);
            routing::GreedyDiameterEstimate estimate;
            double success_rate = 1.0;
            if (!mutated && legacy_uniform) {
              estimate = service.estimate_diameter(
                  trials_, root.child(0x7a1a).child(si).child(ki).child(ri));
            } else if (!mutated) {
              demand->reset();
              const Rng cell_rng =
                  root.child(0x77a1).child(wi).child(si).child(ki).child(ri);
              // Pair generation sits at the same child address (0xA11) the
              // selecting overload uses for select_trial_pairs.
              Rng demand_rng = cell_rng.child(0xA11);
              estimate = service.estimate_diameter(
                  trials_, cell_rng,
                  demand->batch(trials_.num_pairs, demand_rng));
            } else {
              // Mutated cell: draw the pair grid exactly as the matching
              // static path would (same 0xA11 sub-stream of the cell rng),
              // then drop pairs the mutation disconnected — a greedy route
              // to an unreachable target never terminates, and the
              // surviving fraction IS the robustness metric.
              const Rng cell_rng = root.child(0xD7a1)
                                       .child(mi)
                                       .child(si)
                                       .child(wi)
                                       .child(ki)
                                       .child(ri);
              Rng pair_rng = cell_rng.child(0xA11);
              std::vector<std::pair<graph::NodeId, graph::NodeId>> selected;
              if (legacy_uniform) {
                selected =
                    routing::select_trial_pairs(cell_graph, trials_, pair_rng);
              } else {
                demand->reset();
                selected = demand->batch(trials_.num_pairs, pair_rng);
              }
              std::vector<std::pair<graph::NodeId, graph::NodeId>> kept;
              kept.reserve(selected.size());
              for (const auto& [s, t] : selected) {
                if (cell_oracle.distance(s, t) != graph::kInfDist) {
                  kept.push_back({s, t});
                }
              }
              success_rate = static_cast<double>(kept.size()) /
                             static_cast<double>(selected.size());
              if (!kept.empty()) {
                estimate = service.estimate_diameter(trials_, cell_rng, kept);
              }
              // All pairs disconnected: the zero-initialised estimate
              // stands (greedy diameter 0 over an empty trial set) with
              // success_rate pinned at 0 — the cell still records.
            }

            CellResult cell;
            cell.family = graph_spec;
            cell.workload = workload_spec;
            cell.scheme = scheme_spec;
            cell.router = router_spec;
            cell.mutations = mutation_spec;
            cell.oracle = oracle_spec;
            // Sizeless file-backed sweeps report the loaded size as the
            // request too (0 would poison power-law fits' log n).
            cell.n_requested = n_req == 0 ? cell_graph.num_nodes() : n_req;
            cell.n_actual = cell_graph.num_nodes();
            cell.m = cell_graph.num_edges();
            cell.diameter_lb = cell_diameter_lb;
            cell.greedy_diameter = estimate.max_mean_steps;
            cell.mean_steps = estimate.overall_mean_steps;
            cell.ci_halfwidth = estimate.max_ci_halfwidth;
            cell.success_rate = success_rate;
            cell.show_mutations = mutation_axis;
            cell.show_oracle = oracle_axis;
            // Scheme construction is shared across routers; bill it to the
            // first router's cell (reproducing the legacy per-cell
            // accounting for single-router grids).
            cell.seconds = timer.seconds() + (ri == 0 ? scheme_seconds : 0.0);
            for (auto* sink : sinks_) sink->write(cell.record());
            result.cells.push_back(std::move(cell));
          }
        }
      }
      }
    }
  }
  }
  for (auto* sink : sinks_) sink->flush();
  return result;
}

}  // namespace nav::api
