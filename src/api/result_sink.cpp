#include "api/result_sink.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "runtime/assert.hpp"

namespace nav::api {

namespace {

/// Shortest string that parses back to exactly the same double; guaranteed
/// to contain a '.', 'e', or sign so it re-parses as a double, not an int.
/// JSON has no NaN/Infinity literal, so non-finite values become null (the
/// parser maps null back to a quiet NaN).
std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buffer[32];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), v);
  NAV_ASSERT(ec == std::errc());
  std::string out(buffer, end);
  if (out.find_first_of(".e-") == std::string::npos) out += ".0";
  return out;
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Minimal parser for the flat objects to_json_line emits.
class JsonLineParser {
 public:
  explicit JsonLineParser(const std::string& text) : text_(text) {}

  Record parse() {
    Record record;
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      finish();
      return record;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      record.push_back({std::move(key), parse_value()});
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    finish();
    return record;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("bad JSON line at offset " +
                                std::to_string(pos_) + ": " + why);
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char want) {
    if (next() != want) fail(std::string("expected '") + want + "'");
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r' ||
            text_[pos_] == '\n')) {
      ++pos_;
    }
  }
  void finish() {
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after object");
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = next();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The writer only emits \u00xx control escapes; decode the
          // Latin-1 range and refuse the rest rather than mis-decode.
          if (code > 0xFF) fail("\\u escape outside the emitted range");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  FieldValue parse_value() {
    const char c = peek();
    if (c == '"') return parse_string();
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;  // the writer's encoding of a non-finite double
      return std::numeric_limits<double>::quiet_NaN();
    }
    fail("expected a string, number, or null value");
  }

  FieldValue parse_number() {
    const std::size_t start = pos_;
    bool integral = true;
    if (peek() == '-') {
      integral = false;  // Field integers are unsigned; negatives -> double.
      ++pos_;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty()) fail("empty number");
    if (integral) {
      std::uint64_t value = 0;
      const auto [end, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && end == token.data() + token.size()) {
        return value;
      }
    }
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || end != token.data() + token.size()) {
      fail("bad number: " + token);
    }
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string format_field_value(const FieldValue& value, int double_precision) {
  if (const auto* s = std::get_if<std::string>(&value)) return *s;
  if (const auto* u = std::get_if<std::uint64_t>(&value)) {
    return Table::integer(*u);
  }
  return Table::num(std::get<double>(value), double_precision);
}

std::string to_json_line(const Record& record) {
  std::string out = "{";
  bool first = true;
  for (const auto& field : record) {
    if (!first) out += ", ";
    first = false;
    append_json_string(out, field.key);
    out += ": ";
    if (const auto* s = std::get_if<std::string>(&field.value)) {
      append_json_string(out, *s);
    } else if (const auto* u = std::get_if<std::uint64_t>(&field.value)) {
      out += std::to_string(*u);
    } else {
      out += json_double(std::get<double>(field.value));
    }
  }
  out += "}";
  return out;
}

Record parse_json_line(const std::string& line) {
  return JsonLineParser(line).parse();
}

void TableSink::write(const Record& record) {
  if (!table_) {
    std::vector<std::string> headers;
    headers.reserve(record.size());
    for (const auto& field : record) headers.push_back(field.key);
    table_.emplace(std::move(headers));
  }
  std::vector<std::string> cells;
  for (const auto& header : table_->header()) {
    std::string cell;
    for (const auto& field : record) {
      if (field.key == header) {
        cell = format_field_value(field.value, double_precision_);
        break;
      }
    }
    cells.push_back(std::move(cell));
  }
  table_->add_row(std::move(cells));
}

const Table& TableSink::table() const {
  NAV_REQUIRE(table_.has_value(), "TableSink has received no records");
  return *table_;
}

void CsvSink::write(const Record& record) {
  auto csv_cell = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (const char c : cell) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  if (columns_.empty()) {
    for (const auto& field : record) columns_.push_back(field.key);
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      if (i) out_ << ',';
      out_ << csv_cell(columns_[i]);
    }
    out_ << '\n';
  }
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i) out_ << ',';
    for (const auto& field : record) {
      if (field.key == columns_[i]) {
        out_ << csv_cell(format_field_value(field.value, double_precision_));
        break;
      }
    }
  }
  out_ << '\n';
}

void CsvSink::flush() { out_.flush(); }

void JsonLinesSink::write(const Record& record) {
  out_ << to_json_line(record) << '\n';
}

void JsonLinesSink::flush() { out_.flush(); }

}  // namespace nav::api
