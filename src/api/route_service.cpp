#include "api/route_service.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "obs/trace.hpp"
#include "resilience/fault_spec.hpp"
#include "resilience/virtual_clock.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"

namespace nav::api {

namespace {

/// Per-wave row provenance (see ResilienceOptions): how each pinned slot's
/// distance vector was obtained.
enum class RowSource : std::uint8_t {
  kPrimary,   ///< the service's own oracle (possibly after retries)
  kFallback,  ///< the degraded fallback oracle
  kNone       ///< no usable row — retries exhausted, no fallback, tolerated
};

/// Degradation bookkeeping for one execute_jobs call; folded into the
/// caller's RouteReport (when asked for) and the resilience counters.
struct ResilLog {
  std::vector<DegradationStatus> status;
  std::size_t retries = 0;
  std::size_t fallback_pairs = 0;
  bool deadline_breached = false;
};

}  // namespace

RouteService::RouteService(const graph::Graph& g,
                           const graph::DistanceOracle& oracle,
                           const core::AugmentationScheme* scheme,
                           const routing::Router& router,
                           RouteServiceOptions options)
    : graph_(g),
      oracle_(oracle),
      scheme_(scheme),
      router_(router),
      options_(options) {
  if (scheme_ != nullptr) {
    NAV_REQUIRE(scheme_->num_nodes() == graph_.num_nodes(),
                "scheme/graph size mismatch");
  }
  NAV_REQUIRE(!options_.tolerate_unreachable || options_.shard_by_target,
              "tolerate_unreachable requires shard_by_target");
  if (options_.admission.kind == AdmissionPolicy::Kind::kAdaptive) {
    NAV_REQUIRE(options_.virtual_pair_cost_seconds > 0.0,
                "adaptive admission needs virtual_pair_cost_seconds > 0");
    NAV_REQUIRE(options_.admission.slo_seconds > 0.0,
                "adaptive admission needs an SLO > 0");
    NAV_REQUIRE(options_.admission.adaptive_beta > 0.0 &&
                    options_.admission.adaptive_beta < 1.0,
                "adaptive beta must be in (0, 1)");
    NAV_REQUIRE(options_.admission.adaptive_min_pairs >= 1,
                "adaptive window floor must be >= 1");
  }
  metrics_ = options_.metrics != nullptr ? options_.metrics : &owned_metrics_;
  submitted_batches_ = metrics_->counter("route_service.submitted_batches");
  submitted_pairs_ = metrics_->counter("route_service.submitted_pairs");
  executed_batches_ = metrics_->counter("route_service.executed_batches");
  shed_batches_ = metrics_->counter("route_service.shed_batches");
  shed_pairs_ = metrics_->counter("route_service.shed_pairs");
  blocked_submits_ = metrics_->counter("route_service.blocked_submits");
  queued_batches_ = metrics_->gauge("route_service.queued_batches");
  queued_pairs_ = metrics_->gauge("route_service.queued_pairs");
  peak_queued_pairs_ = metrics_->gauge("route_service.peak_queued_pairs");
  batch_pairs_hist_ =
      metrics_->histogram("route_service.batch_pairs", 0.0, 4096.0, 64);
  queue_wait_ms_hist_ =
      metrics_->histogram("route_service.queue_wait_ms", 0.0, 1000.0, 50);
  exec_ms_hist_ =
      metrics_->histogram("route_service.exec_ms", 0.0, 1000.0, 50);
  // The adaptive and resilience metrics register LAZILY — adaptive ones
  // here (the policy is explicit opt-in), resilience ones on the first
  // degradation event (ensure_resilience_metrics) — so a fault-free,
  // non-adaptive service scrapes byte-identically to the pre-resilience
  // schema. Default-constructed handles are no-op / read-as-zero.
  if (options_.admission.kind == AdmissionPolicy::Kind::kAdaptive) {
    rejected_batches_ = metrics_->counter("route_service.rejected_batches");
    rejected_pairs_ = metrics_->counter("route_service.rejected_pairs");
    slo_breaches_ = metrics_->counter("route_service.slo_breaches");
    adaptive_window_ = metrics_->gauge("route_service.adaptive_window_pairs");
  }
}

void RouteService::ensure_resilience_metrics() const {
  // Callers hold queue_mutex_. counter() dedups by name, so the flag is
  // only an idempotence fast path.
  if (resilience_metrics_registered_) return;
  retries_ = metrics_->counter("resilience.retries");
  fallback_routes_ = metrics_->counter("resilience.fallback_routes");
  deadline_breaches_ = metrics_->counter("resilience.deadline_breaches");
  degraded_pairs_ = metrics_->counter("resilience.degraded_pairs");
  failed_pairs_ = metrics_->counter("resilience.failed_pairs");
  resilience_metrics_registered_ = true;
}

RouteService::RouteService(const NavigationEngine& engine,
                           RouteServiceOptions options)
    : RouteService(engine.graph(), engine.oracle(), engine.scheme(),
                   engine.router(), options) {}

RouteService::~RouteService() {
  {
    std::lock_guard lock(queue_mutex_);
    stopping_ = true;
  }
  // Wake the service thread (stopping_ overrides pause) and any producers
  // blocked on a full Bounded queue — those throw from submit().
  queue_cv_.notify_all();
  queue_space_cv_.notify_all();
  if (service_thread_.joinable()) service_thread_.join();
}

std::vector<routing::RouteResult> RouteService::route_batch(
    std::span<const std::pair<graph::NodeId, graph::NodeId>> pairs,
    Rng rng) const {
  std::vector<RouteJob> jobs;
  jobs.reserve(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    jobs.push_back({pairs[i].first, pairs[i].second, rng.child(i)});
  }
  return route_jobs(std::move(jobs));
}

RouteReport RouteService::route_batch_report(
    std::span<const std::pair<graph::NodeId, graph::NodeId>> pairs,
    Rng rng) const {
  std::vector<RouteJob> jobs;
  jobs.reserve(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    jobs.push_back({pairs[i].first, pairs[i].second, rng.child(i)});
  }
  RouteReport report;
  report.results = execute_jobs(jobs, options_.parallel, &report);
  return report;
}

std::vector<routing::RouteResult> RouteService::route_jobs(
    std::vector<RouteJob> jobs) const {
  return execute_jobs(jobs, options_.parallel, nullptr);
}

std::vector<routing::RouteResult> RouteService::execute_jobs(
    const std::vector<RouteJob>& jobs, bool parallel,
    RouteReport* report) const {
  NAV_OBS_SPAN("route_service.execute_jobs", "pairs",
               static_cast<double>(jobs.size()));
  nav::Timer timer;
  // Validate before building shards: endpoints reach BFS (prefetch) before
  // they reach the router's own precondition checks.
  for (const auto& job : jobs) {
    NAV_REQUIRE(
        job.source < graph_.num_nodes() && job.target < graph_.num_nodes(),
        "route endpoint out of range");
  }
  std::vector<routing::RouteResult> results(jobs.size());
  std::size_t distinct_targets = 0;
  std::size_t shards = 0;
  ResilLog resil;
  resil.status.assign(jobs.size(), DegradationStatus::kExact);

  if (!options_.shard_by_target) {
    // Legacy schedule: one job per loop index, request order, no grouping.
    // Pool tasks are noexcept-by-policy (see thread_pool.hpp): a throwing
    // route terminates the process, exactly as the pre-service route_many
    // did — this mode exists as the bench baseline, not for serving, and
    // the resilience machinery (which needs the prefetch choke point)
    // deliberately does not apply here.
    std::unordered_set<graph::NodeId> targets;
    for (const auto& job : jobs) targets.insert(job.target);
    distinct_targets = targets.size();
    shards = jobs.size();
    auto body = [&](std::size_t i) {
      results[i] = router_.route(jobs[i].source, jobs[i].target, scheme_,
                                 jobs[i].rng);
    };
    if (parallel) {
      nav::parallel_for(0, jobs.size(), body);
    } else {
      for (std::size_t i = 0; i < jobs.size(); ++i) body(i);
    }
  } else {
    // Shard index: shard k holds the job indices of the k-th distinct
    // target, in order of first appearance — a deterministic function of
    // the batch.
    std::unordered_map<graph::NodeId, std::size_t> shard_of;
    shard_of.reserve(jobs.size());
    std::vector<graph::NodeId> shard_target;
    std::vector<std::vector<std::size_t>> shard_jobs;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const auto [it, inserted] =
          shard_of.try_emplace(jobs[i].target, shard_target.size());
      if (inserted) {
        shard_target.push_back(jobs[i].target);
        shard_jobs.emplace_back();
      }
      shard_jobs[it->second].push_back(i);
    }
    distinct_targets = shard_target.size();
    shards = shard_jobs.size();

    const ResilienceOptions& rz = options_.resilience;
    resilience::VirtualClock& vclock = resilience::global_virtual_clock();
    const double batch_v0 = vclock.seconds();
    const auto budget_spent = [&] {
      return rz.batch_deadline_seconds > 0.0 &&
             vclock.seconds() - batch_v0 > rz.batch_deadline_seconds;
    };

    // Wave by wave: prefetch the wave's distance vectors in one batch (one
    // parallel BFS sweep over the misses, pinned past any eviction), then
    // route every shard through its pinned vector via route_resolved —
    // shards never touch the oracle, so exactly one BFS per distinct
    // target regardless of cache capacity, concurrency, or batch order.
    const std::size_t wave =
        std::max<std::size_t>(1, options_.max_pinned_targets);
    // One pin vector reused across waves: prefetch_into clears and refills
    // it, so after the first wave the container itself allocates nothing.
    std::vector<graph::DistVecPtr> pinned;
    std::vector<RowSource> slot_source;
    for (std::size_t lo = 0; lo < shard_jobs.size(); lo += wave) {
      const std::size_t hi = std::min(shard_jobs.size(), lo + wave);
      const std::size_t slots = hi - lo;
      slot_source.assign(slots, RowSource::kPrimary);
      // Sequential mode must stay pool-free end to end (callers may rely on
      // it from inside a pool task), so the batched prefetch — which fans
      // its BFS sweep across the pool — is parallel-only; inline
      // distances_to computes the identical vectors one by one.
      bool wave_clean = true;
      try {
        if (parallel) {
          oracle_.prefetch_into(
              std::span<const graph::NodeId>(shard_target).subspan(lo, slots),
              pinned);
        } else {
          pinned.clear();
          pinned.reserve(slots);
          for (std::size_t k = lo; k < hi; ++k) {
            pinned.push_back(oracle_.distances_to(shard_target[k]));
          }
        }
      } catch (const resilience::TransientOracleError&) {
        // Partial success: a well-behaved thrower (FaultyOracle) has filled
        // every non-failing slot already; a sequential inline loop stopped
        // at the first failure. Normalise to one shape — slots-sized with
        // nulls at the holes — and let the retry loop finish the job.
        wave_clean = false;
        pinned.resize(slots);
      }
      if (!wave_clean || pinned.size() != slots) {
        pinned.resize(slots);
        // The still-missing slots, retried as a shrinking subset with
        // exponential VIRTUAL backoff: deterministic, never a real sleep.
        std::vector<std::size_t> pending;
        for (std::size_t s = 0; s < slots; ++s) {
          if (!pinned[s]) pending.push_back(s);
        }
        double backoff = rz.backoff_base_seconds;
        std::size_t round = 0;
        while (!pending.empty() && round < rz.max_retries) {
          if (budget_spent()) {
            resil.deadline_breached = true;
            break;
          }
          ++round;
          ++resil.retries;
          vclock.advance_seconds(backoff);
          backoff *= 2.0;
          std::vector<std::size_t> still;
          for (const std::size_t s : pending) {
            try {
              pinned[s] = oracle_.distances_to(shard_target[lo + s]);
            } catch (const resilience::TransientOracleError&) {
              still.push_back(s);
            }
          }
          pending.swap(still);
        }
        if (!pending.empty()) {
          if (rz.fallback_oracle != nullptr) {
            for (const std::size_t s : pending) {
              pinned[s] = rz.fallback_oracle->distances_to(shard_target[lo + s]);
              slot_source[s] = RowSource::kFallback;
            }
          } else if (rz.tolerate_faults) {
            for (const std::size_t s : pending) {
              slot_source[s] = RowSource::kNone;
            }
          } else {
            std::vector<graph::NodeId> dead;
            dead.reserve(pending.size());
            for (const std::size_t s : pending) {
              dead.push_back(shard_target[lo + s]);
            }
            throw resilience::TransientOracleError(std::move(dead));
          }
        }
      }
      // Reachability check BEFORE the fan-out: pool tasks are noexcept by
      // policy, so every route precondition must be established on this
      // thread, where a throw reaches the caller (or a submit() future).
      // Under tolerate_unreachable a disconnected pair becomes a
      // reached = false result here and its job is excluded from routing;
      // rowless (kNone) and fallback-sourced pairs are classified here too.
      for (std::size_t k = lo; k < hi; ++k) {
        const std::size_t s = k - lo;
        if (slot_source[s] == RowSource::kNone) {
          for (const std::size_t i : shard_jobs[k]) {
            results[i].reached = false;
            results[i].initial_distance = graph::kInfDist;
            resil.status[i] = DegradationStatus::kFailed;
          }
          continue;
        }
        if (slot_source[s] == RowSource::kFallback) {
          for (const std::size_t i : shard_jobs[k]) {
            resil.status[i] = DegradationStatus::kDegraded;
          }
          resil.fallback_pairs += shard_jobs[k].size();
        }
        const auto& dist = *pinned[s];
        for (const std::size_t i : shard_jobs[k]) {
          if (dist[jobs[i].source] != graph::kInfDist) continue;
          NAV_REQUIRE(
              options_.tolerate_unreachable ||
                  slot_source[s] == RowSource::kFallback,
              "target unreachable from source");
          results[i].reached = false;
          results[i].initial_distance = graph::kInfDist;
          resil.status[i] = DegradationStatus::kDegraded;
        }
      }
      auto shard_body = [&](std::size_t k) {
        const std::size_t s = k - lo;
        if (slot_source[s] == RowSource::kNone) return;
        const routing::Router& shard_router =
            slot_source[s] == RowSource::kFallback &&
                    rz.fallback_router != nullptr
                ? *rz.fallback_router
                : router_;
        const graph::DistView& dist = *pinned[s];
        for (const std::size_t i : shard_jobs[k]) {
          if (dist[jobs[i].source] == graph::kInfDist) {
            continue;  // already reported as unreached
          }
          results[i] = shard_router.route_resolved(
              jobs[i].source, jobs[i].target, dist, scheme_, jobs[i].rng);
        }
      };
      if (parallel) {
        // Dynamic scheduling: shard sizes are as skewed as the workload.
        nav::parallel_for_dynamic(lo, hi, shard_body);
      } else {
        for (std::size_t k = lo; k < hi; ++k) shard_body(k);
      }
    }
  }

  // A pair that executed on a primary row but did not reach its target
  // (a stalled bound-only row starved the greedy descent) completed
  // degraded, not exact.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (resil.status[i] == DegradationStatus::kExact && !results[i].reached) {
      resil.status[i] = DegradationStatus::kDegraded;
    }
  }

  const double seconds = timer.seconds();
  exec_ms_hist_.observe(seconds * 1000.0);
  {
    std::lock_guard lock(report_mutex_);
    last_report_.pairs = jobs.size();
    last_report_.distinct_targets = distinct_targets;
    last_report_.shards = shards;
    last_report_.seconds = seconds;
    ++totals_.batches;
    totals_.pairs += jobs.size();
    totals_.seconds += seconds;
  }
  std::size_t exact = 0;
  std::size_t degraded = 0;
  std::size_t failed = 0;
  for (const DegradationStatus s : resil.status) {
    if (s == DegradationStatus::kExact) ++exact;
    else if (s == DegradationStatus::kDegraded) ++degraded;
    else if (s == DegradationStatus::kFailed) ++failed;
  }
  if (resil.retries != 0 || resil.fallback_pairs != 0 || degraded != 0 ||
      failed != 0 || resil.deadline_breached) {
    // Written under queue_mutex_ so queue_stats() sees exact values; the
    // fault-free fast path never takes this lock.
    std::lock_guard lock(queue_mutex_);
    ensure_resilience_metrics();
    retries_.inc(resil.retries);
    fallback_routes_.inc(resil.fallback_pairs);
    degraded_pairs_.inc(degraded);
    failed_pairs_.inc(failed);
    if (resil.deadline_breached) deadline_breaches_.inc();
  }
  if (report != nullptr) {
    report->status = std::move(resil.status);
    report->exact_pairs = exact;
    report->degraded_pairs = degraded;
    report->failed_pairs = failed;
    report->retries = resil.retries;
    report->fallback_pairs = resil.fallback_pairs;
    report->deadline_breached = resil.deadline_breached;
    report->batch.pairs = jobs.size();
    report->batch.distinct_targets = distinct_targets;
    report->batch.shards = shards;
    report->batch.seconds = seconds;
  }
  return results;
}

std::future<std::vector<routing::RouteResult>> RouteService::submit(
    std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs, Rng rng) {
  PendingBatch batch;
  batch.pairs = std::move(pairs);
  batch.rng = rng;
  return submit_impl(std::move(batch));
}

std::future<std::vector<routing::RouteResult>> RouteService::submit(
    std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs, Rng rng,
    double arrival_vtime) {
  PendingBatch batch;
  batch.pairs = std::move(pairs);
  batch.rng = rng;
  batch.arrival_vtime = arrival_vtime;
  batch.has_vtime = true;
  return submit_impl(std::move(batch));
}

std::future<std::vector<routing::RouteResult>> RouteService::submit_impl(
    PendingBatch batch) {
  auto future = batch.promise.get_future();
  const std::size_t incoming = batch.pairs.size();
  {
    std::unique_lock lock(queue_mutex_);
    NAV_REQUIRE(!stopping_, "submit on a stopping RouteService");
    if (!service_thread_.joinable()) {
      service_thread_ = std::thread([this] { service_loop(); });
    }
    if (options_.admission.kind == AdmissionPolicy::Kind::kBounded) {
      // Backpressure: wait for room. An oversized batch is admitted once the
      // queue is empty (the bound throttles the producer; it must not make a
      // batch unserviceable). The gauge is only written under queue_mutex_,
      // so reading it in the predicate is race-free.
      const auto has_room = [&] {
        const auto depth = static_cast<std::size_t>(queued_pairs_.value());
        return stopping_ || depth == 0 ||
               depth + incoming <= options_.admission.max_queued_pairs;
      };
      bool waited = false;
      while (!has_room()) {
        waited = true;
        queue_space_cv_.wait(lock);
      }
      NAV_REQUIRE(!stopping_, "submit on a stopping RouteService");
      if (waited) blocked_submits_.inc();
    }
    batch.enqueued_at = std::chrono::steady_clock::now();
    queue_.push_back(std::move(batch));
    submitted_batches_.inc();
    submitted_pairs_.inc(incoming);
    batch_pairs_hist_.observe(static_cast<double>(incoming));
    queued_batches_.add(1);
    queued_pairs_.add(static_cast<std::int64_t>(incoming));
    peak_queued_pairs_.set_max(queued_pairs_.value());
  }
  queue_cv_.notify_one();
  return future;
}

void RouteService::pause() {
  {
    std::lock_guard lock(queue_mutex_);
    paused_ = true;
  }
  queue_cv_.notify_all();
}

void RouteService::resume() {
  {
    std::lock_guard lock(queue_mutex_);
    paused_ = false;
  }
  queue_cv_.notify_all();
}

QueueStats RouteService::queue_stats() const {
  // Holding queue_mutex_ while reading makes the view exact: every writer
  // updated the registry under this mutex, so its relaxed shard stores
  // happen-before these reads. Lock order is queue_mutex_ -> registry
  // mutex (Counter::value sums shards under the registry lock); no path
  // acquires them in the opposite order.
  std::lock_guard lock(queue_mutex_);
  QueueStats stats;
  stats.queued_batches = static_cast<std::size_t>(queued_batches_.value());
  stats.queued_pairs = static_cast<std::size_t>(queued_pairs_.value());
  stats.peak_queued_pairs =
      static_cast<std::size_t>(peak_queued_pairs_.value());
  stats.submitted_batches =
      static_cast<std::size_t>(submitted_batches_.value());
  stats.submitted_pairs = static_cast<std::size_t>(submitted_pairs_.value());
  stats.executed_batches = static_cast<std::size_t>(executed_batches_.value());
  stats.shed_batches = static_cast<std::size_t>(shed_batches_.value());
  stats.shed_pairs = static_cast<std::size_t>(shed_pairs_.value());
  stats.rejected_batches =
      static_cast<std::size_t>(rejected_batches_.value());
  stats.rejected_pairs = static_cast<std::size_t>(rejected_pairs_.value());
  stats.blocked_submits = static_cast<std::size_t>(blocked_submits_.value());
  stats.retries = static_cast<std::size_t>(retries_.value());
  stats.fallback_pairs = static_cast<std::size_t>(fallback_routes_.value());
  stats.deadline_breaches =
      static_cast<std::size_t>(deadline_breaches_.value());
  stats.degraded_pairs = static_cast<std::size_t>(degraded_pairs_.value());
  stats.failed_pairs = static_cast<std::size_t>(failed_pairs_.value());
  stats.slo_breaches = static_cast<std::size_t>(slo_breaches_.value());
  stats.adaptive_window_pairs = adaptive_window_pairs_;
  return stats;
}

std::vector<double> RouteService::virtual_sojourns() const {
  std::lock_guard lock(queue_mutex_);
  return virtual_sojourns_;
}

void RouteService::service_loop() {
  resilience::VirtualClock& vclock = resilience::global_virtual_clock();
  while (true) {
    PendingBatch batch;
    bool use_virtual = false;
    double arrival_v = 0.0;
    {
      std::unique_lock lock(queue_mutex_);
      // stopping_ overrides pause: destruction always drains the queue.
      queue_cv_.wait(lock, [this] {
        return stopping_ || (!paused_ && !queue_.empty());
      });
      if (queue_.empty()) return;  // stopping and drained
      batch = std::move(queue_.front());
      queue_.pop_front();
      queued_batches_.sub(1);
      queued_pairs_.sub(static_cast<std::int64_t>(batch.pairs.size()));
      // Virtual evaluation only when BOTH sides opted in: the submitter
      // supplied an arrival vtime and the service has a pair cost. All
      // other combinations keep the historical wall-clock semantics.
      use_virtual =
          batch.has_vtime && options_.virtual_pair_cost_seconds > 0.0;
      arrival_v = batch.arrival_vtime;
      // The wait this batch pays before the server can start it: virtual
      // backlog under virtual evaluation, wall queue age otherwise.
      const double waited =
          use_virtual
              ? std::max(0.0, vfree_ - arrival_v)
              : std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - batch.enqueued_at)
                    .count();
      queue_wait_ms_hist_.observe(waited * 1000.0);
      const auto depth = static_cast<std::size_t>(queued_pairs_.value());
      if (options_.admission.kind == AdmissionPolicy::Kind::kShed &&
          waited > options_.admission.deadline_seconds) {
        shed_batches_.inc();
        shed_pairs_.inc(batch.pairs.size());
        lock.unlock();
        queue_space_cv_.notify_all();
        batch.promise.set_exception(std::make_exception_ptr(
            ShedError(ShedError::Reason::kDeadline, waited,
                      batch.pairs.size(), depth)));
        continue;
      }
      if (options_.admission.kind == AdmissionPolicy::Kind::kAdaptive &&
          use_virtual) {
        if (adaptive_window_pairs_ == 0) {
          adaptive_window_pairs_ = options_.admission.adaptive_start_pairs;
          adaptive_window_.set(
              static_cast<std::int64_t>(adaptive_window_pairs_));
        }
        // Reject iff the server is already behind AND admitting this batch
        // would push the backlog past the window. An idle server always
        // admits (no single-batch livelock, mirroring Bounded).
        const double backlog_pairs =
            std::max(0.0, vfree_ - arrival_v) /
            options_.virtual_pair_cost_seconds;
        if (backlog_pairs > 0.0 &&
            backlog_pairs + static_cast<double>(batch.pairs.size()) >
                static_cast<double>(adaptive_window_pairs_)) {
          rejected_batches_.inc();
          rejected_pairs_.inc(batch.pairs.size());
          lock.unlock();
          queue_space_cv_.notify_all();
          batch.promise.set_exception(std::make_exception_ptr(
              ShedError(ShedError::Reason::kRejected, waited,
                        batch.pairs.size(), depth)));
          continue;
        }
      }
    }
    queue_space_cv_.notify_all();
    try {
      NAV_OBS_SPAN("route_service.batch", "pairs",
                   static_cast<double>(batch.pairs.size()));
      // Injected virtual latency (slow faults, retry backoffs) during this
      // batch's execution counts toward its virtual service time.
      const double vexec_before = vclock.seconds();
      std::vector<RouteJob> jobs;
      jobs.reserve(batch.pairs.size());
      for (std::size_t i = 0; i < batch.pairs.size(); ++i) {
        jobs.push_back({batch.pairs[i].first, batch.pairs[i].second,
                        batch.rng.child(i)});
      }
      RouteReport report;
      auto results = execute_jobs(jobs, options_.parallel, &report);
      const double vexec_injected = vclock.seconds() - vexec_before;
      {
        // Counted only on success — "executed" keeps meaning "dequeued AND
        // routed" when a bad batch fails its future below — and before the
        // future resolves, so a caller returning from get() observes it.
        std::lock_guard lock(queue_mutex_);
        executed_batches_.inc();
        if (use_virtual) {
          const double start_v = std::max(arrival_v, vfree_);
          const double exec_v = static_cast<double>(batch.pairs.size()) *
                                    options_.virtual_pair_cost_seconds +
                                vexec_injected;
          vfree_ = start_v + exec_v;
          const double sojourn_v = vfree_ - arrival_v;
          virtual_sojourns_.push_back(sojourn_v);
          if (options_.admission.kind == AdmissionPolicy::Kind::kAdaptive) {
            if (sojourn_v > options_.admission.slo_seconds) {
              // Multiplicative decrease, floored: stay serving even when
              // every batch breaches.
              slo_breaches_.inc();
              adaptive_window_pairs_ = std::max(
                  options_.admission.adaptive_min_pairs,
                  static_cast<std::size_t>(
                      static_cast<double>(adaptive_window_pairs_) *
                      options_.admission.adaptive_beta));
            } else {
              adaptive_window_pairs_ +=
                  options_.admission.adaptive_increase_pairs;
            }
            adaptive_window_.set(
                static_cast<std::int64_t>(adaptive_window_pairs_));
          }
        }
      }
      batch.promise.set_value(std::move(results));
    } catch (...) {
      // A bad batch (e.g. an out-of-range endpoint, or a transient fault
      // that outlived its retries with no fallback configured) fails its
      // own future; the service thread lives on to serve the rest of the
      // queue.
      batch.promise.set_exception(std::current_exception());
    }
  }
}

routing::GreedyDiameterEstimate RouteService::estimate_diameter(
    const routing::TrialConfig& config, Rng rng) const {
  Rng pair_rng = rng.child(0xA11);
  return estimate_diameter(
      config, rng, routing::select_trial_pairs(graph_, config, pair_rng));
}

routing::GreedyDiameterEstimate RouteService::estimate_diameter(
    const routing::TrialConfig& config, Rng rng,
    const std::vector<std::pair<graph::NodeId, graph::NodeId>>& pairs) const {
  NAV_REQUIRE(graph_.num_nodes() >= 2, "graph too small to route");
  NAV_REQUIRE(config.resamples >= 1, "need at least one resample");
  NAV_REQUIRE(!pairs.empty(), "no source/target pairs selected");

  // The full pair × replicate grid as one batch. Job (p, r) keeps the
  // trial_runner stream address rng.child(p + 1).child(r), so the Monte
  // Carlo draws — and hence every statistic below — match the sequential
  // estimator bit for bit.
  const std::size_t resamples = config.resamples;
  std::vector<RouteJob> jobs;
  jobs.reserve(pairs.size() * resamples);
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    const Rng pair_stream = rng.child(p + 1);
    for (std::size_t r = 0; r < resamples; ++r) {
      jobs.push_back({pairs[p].first, pairs[p].second, pair_stream.child(r)});
    }
  }
  const auto results =
      execute_jobs(jobs, options_.parallel && config.parallel, nullptr);

  // Accumulation mirrors estimate_routed_pair / estimate_routed_diameter:
  // replicates in index order per pair, then pair means in pair order.
  routing::GreedyDiameterEstimate out;
  out.pairs.resize(pairs.size());
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    nav::RunningStats step_stats, long_stats;
    for (std::size_t r = 0; r < resamples; ++r) {
      const auto& result = results[p * resamples + r];
      step_stats.add(static_cast<double>(result.steps));
      long_stats.add(static_cast<double>(result.long_links_used));
    }
    auto& est = out.pairs[p];
    est.s = pairs[p].first;
    est.t = pairs[p].second;
    // Every route already resolved dist(s, t); re-querying the oracle here
    // could re-BFS targets the LRU has since evicted.
    est.distance = results[p * resamples].initial_distance;
    est.mean_steps = step_stats.mean();
    est.ci_halfwidth = step_stats.ci_halfwidth();
    est.max_steps = step_stats.max();
    est.mean_long_links = long_stats.mean();
  }
  nav::RunningStats all;
  for (const auto& pe : out.pairs) {
    all.add(pe.mean_steps);
    if (pe.mean_steps > out.max_mean_steps) {
      out.max_mean_steps = pe.mean_steps;
      out.max_ci_halfwidth = pe.ci_halfwidth;
    }
  }
  out.overall_mean_steps = all.mean();
  out.trials = pairs.size() * resamples;
  return out;
}

BatchReport RouteService::last_report() const {
  std::lock_guard lock(report_mutex_);
  return last_report_;
}

ServiceTotals RouteService::totals() const {
  std::lock_guard lock(report_mutex_);
  return totals_;
}

}  // namespace nav::api
