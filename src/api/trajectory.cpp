#include "api/trajectory.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <variant>

namespace nav::api {

namespace {

/// Wall-clock-dependent metric names: listed as "loose_metrics" in the
/// trajectory document so golden tests mask them and compare_bench.py
/// thresholds them loosely (or ignores them) instead of strictly.
const char* const kLooseMetrics[] = {
    "seconds",         "sec",
    "routes_per_sec",  "pairs_per_sec",
    "speedup",         "sojourn_ms_p50",
    "sojourn_ms_p95",  "sojourn_ms_p99",
    "peak_queued_pairs", "blocked_submits",
    "real_time_ns",    "cpu_time_ns",
    "items_per_second", "bytes_per_second",
    "nodes_per_sec",   "speedup_vs_scalar",
};

/// Numeric fields that identify a cell (grid coordinates) rather than
/// measure it; string-valued fields are always keys.
const char* const kNumericKeyFields[] = {
    "n",     "n_requested", "side",    "pairs",      "targets",
    "eps",   "k",           "alpha",   "batches",    "batch_size",
    "cache_capacity", "workers",
    // dynamic subsystem grid axes (bench_e13_dynamic, sweep_cli):
    "fail_frac", "round", "mutate_every",
    // oracle-backend grid axes (bench_micro M4, sweep_cli --oracle; the
    // "oracle" spec itself is a string field, hence a key already):
    "landmarks",
};

bool contains(const char* const* first, const char* const* last,
              const std::string& name) {
  return std::find_if(first, last, [&](const char* s) {
           return name == s;
         }) != last;
}

bool is_key_field(const Field& field) {
  if (std::holds_alternative<std::string>(field.value)) return true;
  return is_numeric_key_field(field.key);
}

void push_unique(std::vector<std::string>& names, const std::string& name) {
  if (std::find(names.begin(), names.end(), name) == names.end()) {
    names.push_back(name);
  }
}

std::string json_string_array(const std::vector<std::string>& names) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < names.size(); ++i) {
    out << (i ? ", " : "") << '"' << names[i] << '"';
  }
  out << "]";
  return out.str();
}

}  // namespace

bool is_loose_metric_name(const std::string& name) {
  // Scraped observability-registry values (Harness::add_metrics_cell embeds
  // them under an obs_ prefix) are runtime observations — queue depths, shed
  // counts, timing histograms — never a deterministic surface to gate on.
  if (name.starts_with("obs_")) return true;
  return contains(std::begin(kLooseMetrics), std::end(kLooseMetrics), name);
}

bool is_numeric_key_field(const std::string& name) {
  return contains(std::begin(kNumericKeyFields), std::end(kNumericKeyFields),
                  name);
}

TrajectoryWriter::TrajectoryWriter(std::string id, std::string name,
                                   bool quick, std::string out_dir)
    : id_(std::move(id)),
      name_(std::move(name)),
      quick_(quick),
      out_dir_(std::move(out_dir)) {}

void TrajectoryWriter::add_cell(Record cell, const std::string& section) {
  Record traj;
  traj.reserve(cell.size() + 1);
  if (!section.empty()) traj.push_back({"section", section});
  for (auto& field : cell) traj.push_back(std::move(field));
  cells_.push_back(std::move(traj));
}

void TrajectoryWriter::group_by(std::vector<std::string> fields) {
  group_by_ = std::move(fields);
}

std::string TrajectoryWriter::out_path(const std::string& file_name) const {
  // The default directory keeps bare file names (they appear inside
  // golden-pinned records, e.g. E12's trace:<path> workload spec).
  if (out_dir_.empty() || out_dir_ == ".") return file_name;
  return (std::filesystem::path(out_dir_) / file_name).string();
}

bool TrajectoryWriter::write_document() {
  // Classify every field seen across the recorded cells, preserving
  // first-seen order: string-valued fields and grid-coordinate numerics are
  // keys; every other numeric is a metric, loose when wall-clock-dependent.
  std::vector<std::string> key_fields, metrics, loose;
  std::vector<std::string> string_keys;
  for (const auto& cell : cells_) {
    for (const auto& field : cell) {
      if (is_key_field(field)) {
        push_unique(key_fields, field.key);
        if (std::holds_alternative<std::string>(field.value) &&
            field.key != "section") {
          push_unique(string_keys, field.key);
        }
      } else if (is_loose_metric_name(field.key)) {
        push_unique(loose, field.key);
      } else {
        push_unique(metrics, field.key);
      }
    }
  }
  auto group_by = group_by_;
  if (group_by.empty()) {
    for (const auto& key : string_keys) {
      if (group_by.size() < 2) group_by.push_back(key);
    }
  }

  const std::string path = out_path("BENCH_" + id_ + ".json");
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot open " << path
              << " — skipping trajectory output\n";
    return false;
  }
  out << "{\n"
      << "  \"schema\": \"nav-bench-trajectory-v1\",\n"
      << "  \"bench\": \"" << name_ << "\",\n"
      << "  \"id\": \"" << id_ << "\",\n"
      << "  \"quick\": " << (quick_ ? "true" : "false") << ",\n"
      << "  \"group_by\": " << json_string_array(group_by) << ",\n"
      << "  \"key_fields\": " << json_string_array(key_fields) << ",\n"
      << "  \"metrics\": " << json_string_array(metrics) << ",\n"
      << "  \"loose_metrics\": " << json_string_array(loose) << ",\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    out << "    " << to_json_line(cells_[i])
        << (i + 1 < cells_.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "trajectory written: BENCH_" << id_ << ".json\n";
  return true;
}

void TrajectoryWriter::write_merged() {
  // Re-merge every per-bench document present in the output directory, so
  // running the bench suite in one directory accumulates BENCH_all.json
  // incrementally (each binary refreshes it on exit).
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(out_dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    const auto file = entry.path().filename().string();
    if (file.rfind("BENCH_", 0) != 0 || file.size() < 11 ||
        file.substr(file.size() - 5) != ".json" || file == "BENCH_all.json") {
      continue;
    }
    names.push_back(file);
  }
  if (ec) {
    std::cerr << "warning: cannot scan " << out_dir_ << ": " << ec.message()
              << "\n";
    return;
  }
  std::sort(names.begin(), names.end());

  std::vector<std::string> documents;
  for (const auto& file : names) {
    std::ifstream in(out_path(file));
    std::ostringstream text;
    text << in.rdbuf();
    std::string doc = text.str();
    // Only fold in documents this schema wrote (a stray BENCH_*.json from
    // another tool must not corrupt the merge).
    if (doc.find("\"schema\": \"nav-bench-trajectory-v1\"") ==
            std::string::npos ||
        doc.find("\"merged\": true") != std::string::npos) {
      continue;
    }
    while (!doc.empty() && (doc.back() == '\n' || doc.back() == ' ')) {
      doc.pop_back();
    }
    documents.push_back(std::move(doc));
  }
  if (documents.empty()) return;

  const std::string path = out_path("BENCH_all.json");
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot open " << path << " — skipping merge\n";
    return;
  }
  out << "{\n"
      << "  \"schema\": \"nav-bench-trajectory-v1\",\n"
      << "  \"merged\": true,\n"
      << "  \"benches\": [\n";
  for (std::size_t i = 0; i < documents.size(); ++i) {
    out << documents[i] << (i + 1 < documents.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "merged trajectory written: BENCH_all.json ("
            << documents.size() << " benches)\n";
}

}  // namespace nav::api
