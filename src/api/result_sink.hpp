// result_sink.hpp — structured result output for experiment drivers.
//
// The seed printed one ASCII table per sweep and optionally a CSV file —
// fine for a terminal, opaque to tooling that wants BENCH_*.json style
// trajectories. ResultSink decouples result *production* (api::Experiment,
// NavigationEngine drivers) from *rendering*: a producer emits one flat
// Record per result row; sinks render the stream as an ASCII table, CSV, or
// JSON Lines. Sinks are cheap to stack — an experiment can stream to a
// table for the terminal and a .jsonl file for the plotting pipeline in the
// same run.
//
// JSON Lines round-trips: to_json_line / parse_json_line preserve field
// order, values, and types (string vs double vs unsigned integer), which the
// test suite checks.
#pragma once

/// \file
/// \brief ResultSink: structured result streaming (ASCII table, CSV, JSON
/// Lines) with exact round-tripping.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "runtime/table.hpp"

namespace nav::api {

/// One cell value: string, double, or unsigned integer (the distinction is
/// preserved through JSON round-trips).
using FieldValue = std::variant<std::string, double, std::uint64_t>;

/// One key/value cell of a result row.
struct Field {
  std::string key;   ///< column name
  FieldValue value;  ///< cell value
};

/// One result row: ordered key/value pairs (the order defines columns).
using Record = std::vector<Field>;

/// Renders a value for human-facing sinks (table, CSV). Doubles use a fixed
/// precision; JSON uses exact shortest-round-trip formatting instead.
[[nodiscard]] std::string format_field_value(const FieldValue& value,
                                             int double_precision = 3);

/// One line of JSON: {"key": value, ...} with exact double round-tripping.
/// Non-finite doubles (JSON has no NaN/Infinity) are written as null;
/// parse_json_line maps null back to a quiet NaN.
[[nodiscard]] std::string to_json_line(const Record& record);

/// Parses a line produced by to_json_line (a flat JSON object of strings and
/// numbers). Numbers with a '.', exponent, or sign parse as double, plain
/// digit runs as std::uint64_t. Throws std::invalid_argument on malformed
/// input or non-flat documents.
[[nodiscard]] Record parse_json_line(const std::string& line);

/// Abstract consumer of a result-record stream (table / CSV / JSON Lines).
class ResultSink {
 public:
  virtual ~ResultSink() = default;  ///< Sinks are deleted through the base.

  /// Consumes one result row. Records in one stream should share keys, but
  /// sinks tolerate missing fields (rendered empty) for ragged producers.
  virtual void write(const Record& record) = 0;

  /// Flushes any buffered output (no-op by default).
  virtual void flush() {}
};

/// Accumulates records into a nav::Table; columns come from the first
/// record's keys.
class TableSink final : public ResultSink {
 public:
  /// `double_precision` = digits after the decimal point in rendered cells.
  explicit TableSink(int double_precision = 3)
      : double_precision_(double_precision) {}

  void write(const Record& record) override;

  /// The accumulated table. Requires at least one record.
  [[nodiscard]] const Table& table() const;

 private:
  int double_precision_;
  std::optional<Table> table_;
};

/// Streams RFC-4180-ish CSV; the header row comes from the first record.
class CsvSink final : public ResultSink {
 public:
  /// Streams to `out` (must outlive the sink) with the given double
  /// precision.
  explicit CsvSink(std::ostream& out, int double_precision = 6)
      : out_(out), double_precision_(double_precision) {}

  void write(const Record& record) override;
  void flush() override;

 private:
  std::ostream& out_;
  int double_precision_;
  std::vector<std::string> columns_;
};

/// Streams one JSON object per line (JSON Lines / ndjson).
class JsonLinesSink final : public ResultSink {
 public:
  /// Streams to `out` (must outlive the sink).
  explicit JsonLinesSink(std::ostream& out) : out_(out) {}

  void write(const Record& record) override;
  void flush() override;

 private:
  std::ostream& out_;
};

}  // namespace nav::api
