// route_service.hpp — always-on batch routing with target-sharded oracle
// prefetch.
//
// Engine::route_many used to hand every (source, target) pair its own child
// stream and fire them at the thread pool in request order. Correct, but at
// cache-oracle sizes (n above EngineOptions::dense_oracle_limit) a mixed
// batch thrashes the TargetDistanceCache: each pair whose target has been
// evicted pays a fresh BFS, so a batch with T distinct targets can cost far
// more than T BFS runs. RouteService closes that gap:
//
//   1. shard the batch by target (order of first appearance),
//   2. prefetch shard targets in waves through the oracle's batch interface
//      (one parallel BFS sweep over the misses; the returned vectors stay
//      pinned for the wave, immune to LRU eviction),
//   3. execute the wave's shards across the thread pool with dynamic
//      scheduling (parallel_for_dynamic — shards are uneven), each shard
//      routing through its pinned vector (Router::route_resolved), so the
//      oracle is never queried from inside a pool task,
//   4. inside a shard, route pairs in request order.
//
// Net effect: exactly one BFS per distinct target per batch, whatever the
// cache capacity, concurrency, or request order. Like parallel_for, batch
// execution waits on pool idleness — do not call route_batch/route_jobs/
// estimate_diameter from inside a pool task (submit() is fine: its batches
// run on the service's own thread).
//
// Determinism is unchanged from route_many: pair i of a batch draws from
// rng.child(i) whatever shard it lands in, and routes are pure functions of
// (s, t, scheme, rng state), so the results are bit-identical to sequential
// routing — the test suite asserts this across shard and batch splits.
//
// "Always-on": submit() enqueues a batch on an internal service thread and
// returns a std::future, so a driver can keep feeding mixed-size batches
// while earlier ones execute (examples/route_server.cpp). The service thread
// is started lazily on first submit and drained on destruction.
#pragma once

/// \file
/// \brief RouteService: always-on batch routing with target-sharded oracle
/// prefetch.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "api/engine.hpp"
#include "routing/router.hpp"
#include "routing/trial_runner.hpp"

namespace nav::api {

/// One routing job: a (source, target) pair plus the private rng stream the
/// route consumes. Batch drivers that need a custom stream layout (e.g. the
/// trial estimator's pair×replicate grid) build jobs directly; plain batches
/// go through route_batch, which derives job i's stream as rng.child(i).
struct RouteJob {
  /// Start node of the route.
  graph::NodeId source = 0;
  /// Destination node; jobs sharing a target share one BFS.
  graph::NodeId target = 0;
  /// Private randomness for this route's lazy contact draws.
  Rng rng;
};

/// Execution knobs for RouteService.
struct RouteServiceOptions {
  /// Execute shards across the global thread pool; false routes everything
  /// on the calling thread (still sharded, still the same results).
  bool parallel = true;
  /// Group jobs by target before executing. Disabling this reproduces the
  /// legacy per-pair route_many schedule — kept as the bench baseline
  /// (bench_e11_service) and for A/B-ing the prefetch win.
  bool shard_by_target = true;
  /// Shards execute in waves of at most this many targets; each wave's
  /// distance vectors are prefetched in one batch and pinned for the wave's
  /// duration, bounding peak pinned memory at
  /// max_pinned_targets × n × sizeof(Dist) bytes per batch.
  std::size_t max_pinned_targets = 512;
};

/// Telemetry for the most recent batch (route_batch / route_jobs / submit).
struct BatchReport {
  /// Jobs in the batch.
  std::size_t pairs = 0;
  /// Distinct route targets in the batch.
  std::size_t distinct_targets = 0;
  /// Execution units handed to the pool (== distinct targets when sharding,
  /// == pairs when not).
  std::size_t shards = 0;
  /// Wall-clock seconds spent executing the batch.
  double seconds = 0.0;
};

/// Cumulative telemetry across the service's lifetime.
struct ServiceTotals {
  /// Batches executed so far.
  std::size_t batches = 0;
  /// Jobs routed so far.
  std::size_t pairs = 0;
  /// Wall-clock seconds spent executing batches.
  double seconds = 0.0;
};

/// Batch routing engine over one graph + oracle + scheme + router. All
/// referenced components must outlive the service; the service itself is
/// immutable apart from telemetry and safe for concurrent route_batch calls.
class RouteService {
 public:
  /// Wraps explicit components (the Experiment per-cell path). `scheme` may
  /// be null: local links only.
  RouteService(const graph::Graph& g, const graph::DistanceOracle& oracle,
               const core::AugmentationScheme* scheme,
               const routing::Router& router, RouteServiceOptions options = {});

  /// Wraps a NavigationEngine's current components. The engine must outlive
  /// the service and keep its scheme/router selection unchanged meanwhile.
  explicit RouteService(const NavigationEngine& engine,
                        RouteServiceOptions options = {});

  /// Drains the submit() queue (every returned future completes), then
  /// stops the service thread.
  ~RouteService();

  /// Non-copyable: the service owns a queue and (lazily) a thread.
  RouteService(const RouteService&) = delete;
  /// Non-copyable: the service owns a queue and (lazily) a thread.
  RouteService& operator=(const RouteService&) = delete;

  /// Routes a batch; result i corresponds to pairs[i] and draws from
  /// rng.child(i) — bit-identical to routing the pairs one by one.
  [[nodiscard]] std::vector<routing::RouteResult> route_batch(
      std::span<const std::pair<graph::NodeId, graph::NodeId>> pairs,
      Rng rng) const;

  /// Core primitive: executes pre-built jobs (result i = jobs[i]), sharded
  /// by target per the options. Used by route_batch and the estimator.
  [[nodiscard]] std::vector<routing::RouteResult> route_jobs(
      std::vector<RouteJob> jobs) const;

  /// Enqueues a batch on the service thread and returns its future. Batches
  /// execute FIFO; each still fans its shards across the thread pool.
  [[nodiscard]] std::future<std::vector<routing::RouteResult>> submit(
      std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs, Rng rng);

  /// Greedy-diameter estimation routed through the batch path: the whole
  /// pair × replicate grid becomes one target-sharded batch. Numbers are
  /// bit-identical to routing::estimate_routed_diameter with the same
  /// arguments (same pair selection, same child streams, same accumulation
  /// order); only the execution schedule differs.
  [[nodiscard]] routing::GreedyDiameterEstimate estimate_diameter(
      const routing::TrialConfig& config, Rng rng) const;

  /// Telemetry for the most recently executed batch.
  [[nodiscard]] BatchReport last_report() const;

  /// Cumulative telemetry since construction.
  [[nodiscard]] ServiceTotals totals() const;

 private:
  [[nodiscard]] std::vector<routing::RouteResult> execute_jobs(
      const std::vector<RouteJob>& jobs, bool parallel) const;

  struct PendingBatch {
    std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs;
    Rng rng;
    std::promise<std::vector<routing::RouteResult>> promise;
  };

  void service_loop();

  const graph::Graph& graph_;
  const graph::DistanceOracle& oracle_;
  const core::AugmentationScheme* scheme_;  // may be null
  const routing::Router& router_;
  RouteServiceOptions options_;

  mutable std::mutex report_mutex_;
  mutable BatchReport last_report_;
  mutable ServiceTotals totals_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<PendingBatch> queue_;
  bool stopping_ = false;
  std::thread service_thread_;  // started lazily by submit()
};

}  // namespace nav::api
