// route_service.hpp — always-on batch routing with target-sharded oracle
// prefetch.
//
// Engine::route_many used to hand every (source, target) pair its own child
// stream and fire them at the thread pool in request order. Correct, but at
// cache-oracle sizes (n above EngineOptions::dense_oracle_limit) a mixed
// batch thrashes the TargetDistanceCache: each pair whose target has been
// evicted pays a fresh BFS, so a batch with T distinct targets can cost far
// more than T BFS runs. RouteService closes that gap:
//
//   1. shard the batch by target (order of first appearance),
//   2. prefetch shard targets in waves through the oracle's batch interface
//      (one parallel BFS sweep over the misses; the returned vectors stay
//      pinned for the wave, immune to LRU eviction),
//   3. execute the wave's shards across the thread pool with dynamic
//      scheduling (parallel_for_dynamic — shards are uneven), each shard
//      routing through its pinned vector (Router::route_resolved), so the
//      oracle is never queried from inside a pool task,
//   4. inside a shard, route pairs in request order.
//
// Net effect: exactly one BFS per distinct target per batch, whatever the
// cache capacity, concurrency, or request order. Like parallel_for, batch
// execution waits on pool idleness — do not call route_batch/route_jobs/
// estimate_diameter from inside a pool task (submit() is fine: its batches
// run on the service's own thread).
//
// Determinism is unchanged from route_many: pair i of a batch draws from
// rng.child(i) whatever shard it lands in, and routes are pure functions of
// (s, t, scheme, rng state), so the results are bit-identical to sequential
// routing — the test suite asserts this across shard and batch splits.
//
// "Always-on": submit() enqueues a batch on an internal service thread and
// returns a std::future, so a driver can keep feeding mixed-size batches
// while earlier ones execute (examples/route_server.cpp). The service thread
// is started lazily on first submit and drained on destruction.
//
// Admission (RouteServiceOptions::admission) bounds the submit() queue for
// open-loop drivers (workload::TrafficDriver):
//   * Unbounded — the original FIFO: every batch is queued, no backpressure;
//   * Bounded{max_queued_pairs} — submit() blocks the producer until the
//     queue has room (an oversized batch is still admitted when the queue is
//     empty, so a single batch can never deadlock);
//   * Shed{deadline_seconds} — batches that waited in the queue longer than
//     the deadline are dropped at dequeue: their future fails with ShedError
//     and the service moves on.
// queue_stats() exposes the live depth and the admission counters;
// pause()/resume() freeze dequeueing so tests and drain-style drivers can
// fill the queue deterministically.
#pragma once

/// \file
/// \brief RouteService: always-on batch routing with target-sharded oracle
/// prefetch.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <span>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "api/engine.hpp"
#include "obs/metrics.hpp"
#include "routing/router.hpp"
#include "routing/trial_runner.hpp"
#include "runtime/assert.hpp"

namespace nav::api {

/// One routing job: a (source, target) pair plus the private rng stream the
/// route consumes. Batch drivers that need a custom stream layout (e.g. the
/// trial estimator's pair×replicate grid) build jobs directly; plain batches
/// go through route_batch, which derives job i's stream as rng.child(i).
struct RouteJob {
  /// Start node of the route.
  graph::NodeId source = 0;
  /// Destination node; jobs sharing a target share one BFS.
  graph::NodeId target = 0;
  /// Private randomness for this route's lazy contact draws.
  Rng rng;
};

/// Thrown through a submit() future when Shed admission drops the batch
/// (it waited in the queue longer than the policy's deadline).
class ShedError : public std::runtime_error {
 public:
  /// `what` describes the shed batch (size, measured wait).
  explicit ShedError(const std::string& what) : std::runtime_error(what) {}
};

/// Admission policy for the submit() queue (route_batch/route_jobs run on
/// the caller's thread and are never queued, so admission does not apply).
struct AdmissionPolicy {
  /// How submit() reacts when demand outruns the service.
  enum class Kind : std::uint8_t {
    kUnbounded,  ///< queue every batch (the original FIFO)
    kBounded,    ///< block the producer until the queue has room
    kShed        ///< drop batches that queued longer than the deadline
  };
  /// Selected behaviour; the other fields apply per kind.
  Kind kind = Kind::kUnbounded;
  /// kBounded: max pairs waiting in the queue. A batch larger than the bound
  /// is admitted when the queue is empty (no single-batch deadlock).
  std::size_t max_queued_pairs = 0;
  /// kShed: a batch that waited longer than this many wall-clock seconds is
  /// shed at dequeue (its future fails with ShedError).
  double deadline_seconds = 0.0;

  /// The original unbounded FIFO (default).
  [[nodiscard]] static AdmissionPolicy unbounded() { return {}; }
  /// Backpressure: block submit() while `max_queued_pairs` pairs wait.
  /// bounded(0) is the degenerate-but-valid full serialization: every batch
  /// waits for an empty queue.
  [[nodiscard]] static AdmissionPolicy bounded(std::size_t max_queued_pairs) {
    AdmissionPolicy policy;
    policy.kind = Kind::kBounded;
    policy.max_queued_pairs = max_queued_pairs;
    return policy;
  }
  /// Load shedding: drop batches older than `deadline_seconds` at dequeue.
  /// Throws std::invalid_argument on a negative deadline (which would shed
  /// every batch — say shed(0.0) if that is really what you mean).
  [[nodiscard]] static AdmissionPolicy shed(double deadline_seconds) {
    NAV_REQUIRE(deadline_seconds >= 0.0, "shed deadline must be >= 0");
    AdmissionPolicy policy;
    policy.kind = Kind::kShed;
    policy.deadline_seconds = deadline_seconds;
    return policy;
  }
};

/// Live queue depth plus cumulative admission counters (queue_stats()).
/// Since the obs migration this struct is a point-in-time VIEW over the
/// service's metrics registry — the counters live in `route_service.*`
/// registry metrics and queue_stats() materialises them under the queue
/// mutex, so the values stay bit-identical to the pre-registry struct.
struct QueueStats {
  std::size_t queued_batches = 0;     ///< batches waiting right now
  std::size_t queued_pairs = 0;       ///< pairs waiting right now
  std::size_t peak_queued_pairs = 0;  ///< high-water mark of queued_pairs
  std::size_t submitted_batches = 0;  ///< batches ever accepted by submit()
  std::size_t submitted_pairs = 0;    ///< pairs ever accepted by submit()
  std::size_t executed_batches = 0;   ///< batches dequeued and routed
  std::size_t shed_batches = 0;       ///< batches dropped by Shed admission
  std::size_t shed_pairs = 0;         ///< pairs dropped by Shed admission
  std::size_t blocked_submits = 0;    ///< submits that had to wait (Bounded)
};

/// Execution knobs for RouteService.
struct RouteServiceOptions {
  /// Execute shards across the global thread pool; false routes everything
  /// on the calling thread (still sharded, still the same results).
  bool parallel = true;
  /// Group jobs by target before executing. Disabling this reproduces the
  /// legacy per-pair route_many schedule — kept as the bench baseline
  /// (bench_e11_service) and for A/B-ing the prefetch win.
  bool shard_by_target = true;
  /// Shards execute in waves of at most this many targets; each wave's
  /// distance vectors are prefetched in one batch and pinned for the wave's
  /// duration, bounding peak pinned memory at
  /// max_pinned_targets × n × sizeof(Dist) bytes per batch.
  std::size_t max_pinned_targets = 512;
  /// How submit() admits batches when demand outruns the service.
  AdmissionPolicy admission;
  /// Report an unreachable (source, target) pair as RouteResult{reached =
  /// false, initial_distance = kInfDist, steps = 0} instead of throwing.
  /// The dynamic-graph posture: edge failures can disconnect pairs mid-run,
  /// and a robustness bench wants the success *rate*, not an exception.
  /// Requires shard_by_target (checked at construction) — the legacy
  /// schedule routes inside noexcept pool tasks where the router's own
  /// precondition would abort the process.
  bool tolerate_unreachable = false;
  /// Registry the service records its `route_service.*` metrics into.
  /// nullptr (default) gives the service a private registry — multiple
  /// services never collide on metric names — reachable via metrics().
  /// Pass &obs::default_registry() to fold the service into the process-wide
  /// scrape surface (what examples/route_server.cpp does for --metrics-out).
  obs::Registry* metrics = nullptr;
};

/// Telemetry for the most recent batch (route_batch / route_jobs / submit).
struct BatchReport {
  /// Jobs in the batch.
  std::size_t pairs = 0;
  /// Distinct route targets in the batch.
  std::size_t distinct_targets = 0;
  /// Execution units handed to the pool (== distinct targets when sharding,
  /// == pairs when not).
  std::size_t shards = 0;
  /// Wall-clock seconds spent executing the batch.
  double seconds = 0.0;
};

/// Cumulative telemetry across the service's lifetime.
struct ServiceTotals {
  /// Batches executed so far.
  std::size_t batches = 0;
  /// Jobs routed so far.
  std::size_t pairs = 0;
  /// Wall-clock seconds spent executing batches.
  double seconds = 0.0;
};

/// Batch routing engine over one graph + oracle + scheme + router. All
/// referenced components must outlive the service; the service itself is
/// immutable apart from telemetry and safe for concurrent route_batch calls.
class RouteService {
 public:
  /// Wraps explicit components (the Experiment per-cell path). `scheme` may
  /// be null: local links only.
  RouteService(const graph::Graph& g, const graph::DistanceOracle& oracle,
               const core::AugmentationScheme* scheme,
               const routing::Router& router, RouteServiceOptions options = {});

  /// Wraps a NavigationEngine's current components. The engine must outlive
  /// the service and keep its scheme/router selection unchanged meanwhile.
  explicit RouteService(const NavigationEngine& engine,
                        RouteServiceOptions options = {});

  /// Drains the submit() queue (every returned future completes), then
  /// stops the service thread.
  ~RouteService();

  /// Non-copyable: the service owns a queue and (lazily) a thread.
  RouteService(const RouteService&) = delete;
  /// Non-copyable: the service owns a queue and (lazily) a thread.
  RouteService& operator=(const RouteService&) = delete;

  /// Routes a batch; result i corresponds to pairs[i] and draws from
  /// rng.child(i) — bit-identical to routing the pairs one by one.
  [[nodiscard]] std::vector<routing::RouteResult> route_batch(
      std::span<const std::pair<graph::NodeId, graph::NodeId>> pairs,
      Rng rng) const;

  /// Core primitive: executes pre-built jobs (result i = jobs[i]), sharded
  /// by target per the options. Used by route_batch and the estimator.
  [[nodiscard]] std::vector<routing::RouteResult> route_jobs(
      std::vector<RouteJob> jobs) const;

  /// Enqueues a batch on the service thread and returns its future. Batches
  /// execute FIFO; each still fans its shards across the thread pool.
  /// Admission applies here (see RouteServiceOptions::admission): Bounded
  /// may block the caller until the queue has room; Shed may later fail the
  /// returned future with ShedError. Throws std::invalid_argument when the
  /// service is stopping (including producers woken from a Bounded wait by
  /// destruction).
  [[nodiscard]] std::future<std::vector<routing::RouteResult>> submit(
      std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs, Rng rng);

  /// Freezes dequeueing: submitted batches accumulate (and age, under Shed)
  /// until resume(). Lets tests and drain-style drivers build a queue of
  /// known depth deterministically. Destruction drains even while paused.
  void pause();

  /// Resumes dequeueing after pause().
  void resume();

  /// Live queue depth and cumulative admission counters — a snapshot view
  /// over the `route_service.*` registry metrics (see metrics()).
  [[nodiscard]] QueueStats queue_stats() const;

  /// The registry this service records into: the injected one
  /// (RouteServiceOptions::metrics) or the service's own. Scrape it for the
  /// queue/admission counters plus the sojourn and execution histograms.
  [[nodiscard]] obs::Registry& metrics() const { return *metrics_; }

  /// Greedy-diameter estimation routed through the batch path: the whole
  /// pair × replicate grid becomes one target-sharded batch. Numbers are
  /// bit-identical to routing::estimate_routed_diameter with the same
  /// arguments (same pair selection, same child streams, same accumulation
  /// order); only the execution schedule differs.
  [[nodiscard]] routing::GreedyDiameterEstimate estimate_diameter(
      const routing::TrialConfig& config, Rng rng) const;

  /// Estimation over caller-selected pairs (the Experiment workload axis:
  /// pairs come from a workload::Workload instead of select_trial_pairs).
  /// Streams and accumulation order match the selecting overload exactly —
  /// pair p, replicate r still draws from rng.child(p + 1).child(r) — so
  /// passing the select_trial_pairs output reproduces it bit for bit.
  [[nodiscard]] routing::GreedyDiameterEstimate estimate_diameter(
      const routing::TrialConfig& config, Rng rng,
      const std::vector<std::pair<graph::NodeId, graph::NodeId>>& pairs)
      const;

  /// Telemetry for the most recently executed batch.
  [[nodiscard]] BatchReport last_report() const;

  /// Cumulative telemetry since construction.
  [[nodiscard]] ServiceTotals totals() const;

 private:
  [[nodiscard]] std::vector<routing::RouteResult> execute_jobs(
      const std::vector<RouteJob>& jobs, bool parallel) const;

  struct PendingBatch {
    std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs;
    Rng rng;
    std::promise<std::vector<routing::RouteResult>> promise;
    /// When the batch entered the queue (Shed measures its wait from here).
    std::chrono::steady_clock::time_point enqueued_at;
  };

  void service_loop();

  const graph::Graph& graph_;
  const graph::DistanceOracle& oracle_;
  const core::AugmentationScheme* scheme_;  // may be null
  const routing::Router& router_;
  RouteServiceOptions options_;

  mutable std::mutex report_mutex_;
  mutable BatchReport last_report_;
  mutable ServiceTotals totals_;

  // Metric storage. The owned registry backs metrics_ unless options.metrics
  // injected an external one; handles are registered once at construction.
  // Every queue counter/gauge is written ONLY under queue_mutex_, so
  // queue_stats() (which reads under the same mutex) sees exact values —
  // the mutex provides the happens-before the relaxed shard cells need.
  obs::Registry owned_metrics_;
  obs::Registry* metrics_ = nullptr;
  obs::Counter submitted_batches_;
  obs::Counter submitted_pairs_;
  obs::Counter executed_batches_;
  obs::Counter shed_batches_;
  obs::Counter shed_pairs_;
  obs::Counter blocked_submits_;
  obs::Gauge queued_batches_;
  obs::Gauge queued_pairs_;
  obs::Gauge peak_queued_pairs_;
  obs::HistogramHandle batch_pairs_hist_;
  obs::HistogramHandle queue_wait_ms_hist_;
  obs::HistogramHandle exec_ms_hist_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;        // work available / stopping
  std::condition_variable queue_space_cv_;  // room freed (Bounded waiters)
  std::deque<PendingBatch> queue_;
  bool stopping_ = false;
  bool paused_ = false;
  std::thread service_thread_;  // started lazily by submit()
};

}  // namespace nav::api
