// route_service.hpp — always-on batch routing with target-sharded oracle
// prefetch.
//
// Engine::route_many used to hand every (source, target) pair its own child
// stream and fire them at the thread pool in request order. Correct, but at
// cache-oracle sizes (n above EngineOptions::dense_oracle_limit) a mixed
// batch thrashes the TargetDistanceCache: each pair whose target has been
// evicted pays a fresh BFS, so a batch with T distinct targets can cost far
// more than T BFS runs. RouteService closes that gap:
//
//   1. shard the batch by target (order of first appearance),
//   2. prefetch shard targets in waves through the oracle's batch interface
//      (one parallel BFS sweep over the misses; the returned vectors stay
//      pinned for the wave, immune to LRU eviction),
//   3. execute the wave's shards across the thread pool with dynamic
//      scheduling (parallel_for_dynamic — shards are uneven), each shard
//      routing through its pinned vector (Router::route_resolved), so the
//      oracle is never queried from inside a pool task,
//   4. inside a shard, route pairs in request order.
//
// Net effect: exactly one BFS per distinct target per batch, whatever the
// cache capacity, concurrency, or request order. Like parallel_for, batch
// execution waits on pool idleness — do not call route_batch/route_jobs/
// estimate_diameter from inside a pool task (submit() is fine: its batches
// run on the service's own thread).
//
// Determinism is unchanged from route_many: pair i of a batch draws from
// rng.child(i) whatever shard it lands in, and routes are pure functions of
// (s, t, scheme, rng state), so the results are bit-identical to sequential
// routing — the test suite asserts this across shard and batch splits.
//
// "Always-on": submit() enqueues a batch on an internal service thread and
// returns a std::future, so a driver can keep feeding mixed-size batches
// while earlier ones execute (examples/route_server.cpp). The service thread
// is started lazily on first submit and drained on destruction.
//
// Admission (RouteServiceOptions::admission) bounds the submit() queue for
// open-loop drivers (workload::TrafficDriver):
//   * Unbounded — the original FIFO: every batch is queued, no backpressure;
//   * Bounded{max_queued_pairs} — submit() blocks the producer until the
//     queue has room (an oversized batch is still admitted when the queue is
//     empty, so a single batch can never deadlock);
//   * Shed{deadline_seconds} — batches that waited in the queue longer than
//     the deadline are dropped at dequeue: their future fails with ShedError
//     and the service moves on. When the submitter supplies a virtual
//     arrival time (submit's vtime overload) AND virtual_pair_cost_seconds
//     is set, the wait is evaluated in VIRTUAL time — a deterministic
//     function of arrival times and batch sizes, never of scheduler luck;
//   * Adaptive{slo_seconds} — an AIMD controller over an admitted-work
//     window: a batch whose virtual backlog would overflow the window is
//     rejected at dequeue (ShedError with Reason::kRejected); each served
//     batch's virtual sojourn is compared against the SLO, shrinking the
//     window multiplicatively on a breach and growing it additively
//     otherwise. Fully virtual-time driven, hence deterministic.
// queue_stats() exposes the live depth and the admission counters;
// pause()/resume() freeze dequeueing so tests and drain-style drivers can
// fill the queue deterministically.
//
// Resilience (RouteServiceOptions::resilience): when the oracle injects
// transient faults (resilience::FaultyOracle, "faulty:" specs), batch
// execution retries the FAILED SUBSET of each prefetch wave with
// exponential virtual-time backoff, falls back to a degraded oracle/router
// pair when retries or the batch's deadline budget are exhausted, and
// reports a per-pair DegradationStatus in RouteReport. With a fault-free
// oracle every code path below is byte-identical to the pre-resilience
// service: the try block costs nothing until a TransientOracleError flies.
#pragma once

/// \file
/// \brief RouteService: always-on batch routing with target-sharded oracle
/// prefetch.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <span>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "api/engine.hpp"
#include "obs/metrics.hpp"
#include "routing/router.hpp"
#include "routing/trial_runner.hpp"
#include "runtime/assert.hpp"

namespace nav::api {

/// One routing job: a (source, target) pair plus the private rng stream the
/// route consumes. Batch drivers that need a custom stream layout (e.g. the
/// trial estimator's pair×replicate grid) build jobs directly; plain batches
/// go through route_batch, which derives job i's stream as rng.child(i).
struct RouteJob {
  /// Start node of the route.
  graph::NodeId source = 0;
  /// Destination node; jobs sharing a target share one BFS.
  graph::NodeId target = 0;
  /// Private randomness for this route's lazy contact draws.
  Rng rng;
};

/// Thrown through a submit() future when admission drops the batch: Shed
/// (it aged past the deadline in the queue) or Adaptive (the controller's
/// window had no room). Carries the structured context of the drop — wait,
/// batch size, queue depth — so drivers can aggregate without parsing what().
class ShedError : public std::runtime_error {
 public:
  /// Why the batch was dropped.
  enum class Reason : std::uint8_t {
    kDeadline,  ///< Shed: queued longer than the policy deadline
    kRejected   ///< Adaptive: admitting it would overflow the AIMD window
  };

  ShedError(Reason reason, double waited_seconds, std::size_t batch_pairs,
            std::size_t queue_depth_pairs)
      : std::runtime_error(
            "batch of " + std::to_string(batch_pairs) + " pairs " +
            (reason == Reason::kDeadline ? "shed after " : "rejected after ") +
            std::to_string(waited_seconds) + "s in queue (" +
            std::to_string(queue_depth_pairs) + " pairs behind it)"),
        reason_(reason),
        waited_seconds_(waited_seconds),
        batch_pairs_(batch_pairs),
        queue_depth_pairs_(queue_depth_pairs) {}

  /// Deadline aging (Shed) vs window rejection (Adaptive).
  [[nodiscard]] Reason reason() const noexcept { return reason_; }
  /// How long the batch waited before the drop — wall-clock seconds under
  /// wall evaluation, virtual seconds under virtual-time evaluation.
  [[nodiscard]] double waited_seconds() const noexcept {
    return waited_seconds_;
  }
  /// Pairs in the dropped batch.
  [[nodiscard]] std::size_t batch_pairs() const noexcept {
    return batch_pairs_;
  }
  /// Pairs still queued behind the batch at the moment it was dropped.
  [[nodiscard]] std::size_t queue_depth_pairs() const noexcept {
    return queue_depth_pairs_;
  }

 private:
  Reason reason_;
  double waited_seconds_;
  std::size_t batch_pairs_;
  std::size_t queue_depth_pairs_;
};

/// Admission policy for the submit() queue (route_batch/route_jobs run on
/// the caller's thread and are never queued, so admission does not apply).
struct AdmissionPolicy {
  /// How submit() reacts when demand outruns the service.
  enum class Kind : std::uint8_t {
    kUnbounded,  ///< queue every batch (the original FIFO)
    kBounded,    ///< block the producer until the queue has room
    kShed,       ///< drop batches that queued longer than the deadline
    kAdaptive    ///< AIMD window targeting a p99 virtual-sojourn SLO
  };
  /// Selected behaviour; the other fields apply per kind.
  Kind kind = Kind::kUnbounded;
  /// kBounded: max pairs waiting in the queue. A batch larger than the bound
  /// is admitted when the queue is empty (no single-batch deadlock).
  std::size_t max_queued_pairs = 0;
  /// kShed: a batch that waited longer than this many seconds is shed at
  /// dequeue (its future fails with ShedError). Wall-clock seconds unless
  /// the submitter supplied a virtual arrival time AND
  /// RouteServiceOptions::virtual_pair_cost_seconds is set, in which case
  /// the wait is virtual (deterministic).
  double deadline_seconds = 0.0;
  /// kAdaptive: the controller's target — a served batch whose virtual
  /// sojourn (arrival -> completion) exceeds this breaches the SLO and
  /// shrinks the window. Requires virtual arrival times and
  /// virtual_pair_cost_seconds > 0 (checked at construction).
  double slo_seconds = 0.0;
  /// kAdaptive: initial admitted-work window, in pairs.
  std::size_t adaptive_start_pairs = 1024;
  /// kAdaptive: the window never shrinks below this floor (so the service
  /// keeps serving SOMETHING under any overload).
  std::size_t adaptive_min_pairs = 64;
  /// kAdaptive: additive window growth per SLO-respecting batch.
  std::size_t adaptive_increase_pairs = 64;
  /// kAdaptive: multiplicative window decrease on an SLO breach (in (0,1)).
  double adaptive_beta = 0.5;

  /// The original unbounded FIFO (default).
  [[nodiscard]] static AdmissionPolicy unbounded() { return {}; }
  /// Backpressure: block submit() while `max_queued_pairs` pairs wait.
  /// bounded(0) is the degenerate-but-valid full serialization: every batch
  /// waits for an empty queue.
  [[nodiscard]] static AdmissionPolicy bounded(std::size_t max_queued_pairs) {
    AdmissionPolicy policy;
    policy.kind = Kind::kBounded;
    policy.max_queued_pairs = max_queued_pairs;
    return policy;
  }
  /// Load shedding: drop batches older than `deadline_seconds` at dequeue.
  /// Throws std::invalid_argument on a negative deadline (which would shed
  /// every batch — say shed(0.0) if that is really what you mean).
  [[nodiscard]] static AdmissionPolicy shed(double deadline_seconds) {
    NAV_REQUIRE(deadline_seconds >= 0.0, "shed deadline must be >= 0");
    AdmissionPolicy policy;
    policy.kind = Kind::kShed;
    policy.deadline_seconds = deadline_seconds;
    return policy;
  }
  /// SLO-driven adaptive admission: AIMD over an admitted-work window in
  /// pairs, targeting a virtual-sojourn SLO of `slo_seconds` per batch.
  /// Deterministic: every decision is a pure function of virtual arrival
  /// times, batch sizes, and FIFO order.
  [[nodiscard]] static AdmissionPolicy adaptive(double slo_seconds) {
    NAV_REQUIRE(slo_seconds > 0.0, "adaptive SLO must be > 0");
    AdmissionPolicy policy;
    policy.kind = Kind::kAdaptive;
    policy.slo_seconds = slo_seconds;
    return policy;
  }
};

/// Live queue depth plus cumulative admission counters (queue_stats()).
/// Since the obs migration this struct is a point-in-time VIEW over the
/// service's metrics registry — the counters live in `route_service.*`
/// registry metrics and queue_stats() materialises them under the queue
/// mutex, so the values stay bit-identical to the pre-registry struct.
struct QueueStats {
  std::size_t queued_batches = 0;     ///< batches waiting right now
  std::size_t queued_pairs = 0;       ///< pairs waiting right now
  std::size_t peak_queued_pairs = 0;  ///< high-water mark of queued_pairs
  std::size_t submitted_batches = 0;  ///< batches ever accepted by submit()
  std::size_t submitted_pairs = 0;    ///< pairs ever accepted by submit()
  std::size_t executed_batches = 0;   ///< batches dequeued and routed
  std::size_t shed_batches = 0;       ///< batches aged out by Shed admission
  std::size_t shed_pairs = 0;         ///< pairs aged out by Shed admission
  std::size_t rejected_batches = 0;   ///< batches refused by Adaptive window
  std::size_t rejected_pairs = 0;     ///< pairs refused by Adaptive window
  std::size_t blocked_submits = 0;    ///< submits that had to wait (Bounded)
  // Degradation counters (resilience.* metrics; zero on a fault-free stack).
  std::size_t retries = 0;             ///< prefetch retry rounds taken
  std::size_t fallback_pairs = 0;      ///< pairs routed via the fallback
  std::size_t deadline_breaches = 0;   ///< batches whose budget ran out
  std::size_t degraded_pairs = 0;      ///< pairs completed degraded
  std::size_t failed_pairs = 0;        ///< pairs with no usable row at all
  std::size_t slo_breaches = 0;        ///< Adaptive: served-over-SLO batches
  std::size_t adaptive_window_pairs = 0;  ///< Adaptive: live window size
};

/// How a pair's route was produced, per RouteReport entry. Order matters:
/// later values are strictly worse, so drivers can fold with std::max.
enum class DegradationStatus : std::uint8_t {
  kExact,     ///< routed on the primary oracle's row and reached the target
  kDegraded,  ///< completed, but via fallback rows, a stalled (bound-only)
              ///< row that did not reach, or a tolerated-unreachable pair
  kShed,      ///< never executed: dropped by Shed/Adaptive admission
  kFailed     ///< executed but unroutable: no usable distance row survived
};

/// Degraded-mode knobs: what the service does when the oracle throws
/// resilience::TransientOracleError mid-batch. Defaults keep retrying
/// enabled everywhere (the retry loop is free when no fault fires) and the
/// fallback chain empty.
struct ResilienceOptions {
  /// Retry rounds per prefetch wave before giving up on a target. Each
  /// round retries only the still-failing subset (the oracle's partial-
  /// success contract fills everything else), so convergence is per-target.
  std::size_t max_retries = 3;
  /// Virtual backoff before retry round k: base * 2^(k-1) seconds, advanced
  /// on the global virtual clock — deterministic, never a real sleep.
  double backoff_base_seconds = 1e-3;
  /// Per-batch degradation budget in virtual seconds (0 = unlimited): once
  /// a batch has accumulated this much injected virtual time, remaining
  /// faulted targets skip further retries and go straight to the fallback.
  double batch_deadline_seconds = 0.0;
  /// Degraded oracle consulted for targets whose retries are exhausted
  /// (e.g. a landmark oracle — approximate but fault-free). Must outlive
  /// the service. nullptr = no fallback tier.
  const graph::DistanceOracle* fallback_oracle = nullptr;
  /// Router used for fallback rows; must accept inexact distances
  /// (Router{exact = false}). nullptr falls back to the primary router.
  const routing::Router* fallback_router = nullptr;
  /// With no fallback tier: report pairs whose target has no usable row as
  /// DegradationStatus::kFailed (reached = false) instead of failing the
  /// whole batch with the oracle's TransientOracleError.
  bool tolerate_faults = false;
};

/// Execution knobs for RouteService.
struct RouteServiceOptions {
  /// Execute shards across the global thread pool; false routes everything
  /// on the calling thread (still sharded, still the same results).
  bool parallel = true;
  /// Group jobs by target before executing. Disabling this reproduces the
  /// legacy per-pair route_many schedule — kept as the bench baseline
  /// (bench_e11_service) and for A/B-ing the prefetch win.
  bool shard_by_target = true;
  /// Shards execute in waves of at most this many targets; each wave's
  /// distance vectors are prefetched in one batch and pinned for the wave's
  /// duration, bounding peak pinned memory at
  /// max_pinned_targets × n × sizeof(Dist) bytes per batch.
  std::size_t max_pinned_targets = 512;
  /// How submit() admits batches when demand outruns the service.
  AdmissionPolicy admission;
  /// Report an unreachable (source, target) pair as RouteResult{reached =
  /// false, initial_distance = kInfDist, steps = 0} instead of throwing.
  /// The dynamic-graph posture: edge failures can disconnect pairs mid-run,
  /// and a robustness bench wants the success *rate*, not an exception.
  /// Requires shard_by_target (checked at construction) — the legacy
  /// schedule routes inside noexcept pool tasks where the router's own
  /// precondition would abort the process.
  bool tolerate_unreachable = false;
  /// Registry the service records its `route_service.*` metrics into.
  /// nullptr (default) gives the service a private registry — multiple
  /// services never collide on metric names — reachable via metrics().
  /// Pass &obs::default_registry() to fold the service into the process-wide
  /// scrape surface (what examples/route_server.cpp does for --metrics-out).
  obs::Registry* metrics = nullptr;
  /// Virtual service cost per pair, in seconds. 0 keeps the historical
  /// wall-clock admission semantics untouched. > 0 (with vtime submits)
  /// switches Shed aging and the Adaptive controller to virtual time:
  /// a batch of P pairs "costs" P * this, plus any virtual time the fault
  /// layer injected while executing it.
  double virtual_pair_cost_seconds = 0.0;
  /// Degraded-mode behaviour under transient oracle faults.
  ResilienceOptions resilience;
};

/// Telemetry for the most recent batch (route_batch / route_jobs / submit).
struct BatchReport {
  /// Jobs in the batch.
  std::size_t pairs = 0;
  /// Distinct route targets in the batch.
  std::size_t distinct_targets = 0;
  /// Execution units handed to the pool (== distinct targets when sharding,
  /// == pairs when not).
  std::size_t shards = 0;
  /// Wall-clock seconds spent executing the batch.
  double seconds = 0.0;
};

/// A batch's results plus its per-pair degradation story — what
/// route_batch_report returns and what submit() paths tally into the
/// resilience counters. With a fault-free oracle every status is kExact
/// (or kDegraded only for tolerated-unreachable pairs).
struct RouteReport {
  /// Route result i corresponds to input pair i, as in route_batch.
  std::vector<routing::RouteResult> results;
  /// status[i] classifies how results[i] was produced.
  std::vector<DegradationStatus> status;
  std::size_t exact_pairs = 0;     ///< status == kExact
  std::size_t degraded_pairs = 0;  ///< status == kDegraded
  std::size_t failed_pairs = 0;    ///< status == kFailed
  /// Prefetch retry rounds this batch consumed.
  std::size_t retries = 0;
  /// Pairs routed through the fallback oracle/router tier.
  std::size_t fallback_pairs = 0;
  /// True when the batch's virtual deadline budget ran out mid-execution.
  bool deadline_breached = false;
  /// The plain execution telemetry (same values as last_report()).
  BatchReport batch;
};

/// Cumulative telemetry across the service's lifetime.
struct ServiceTotals {
  /// Batches executed so far.
  std::size_t batches = 0;
  /// Jobs routed so far.
  std::size_t pairs = 0;
  /// Wall-clock seconds spent executing batches.
  double seconds = 0.0;
};

/// Batch routing engine over one graph + oracle + scheme + router. All
/// referenced components must outlive the service; the service itself is
/// immutable apart from telemetry and safe for concurrent route_batch calls.
class RouteService {
 public:
  /// Wraps explicit components (the Experiment per-cell path). `scheme` may
  /// be null: local links only.
  RouteService(const graph::Graph& g, const graph::DistanceOracle& oracle,
               const core::AugmentationScheme* scheme,
               const routing::Router& router, RouteServiceOptions options = {});

  /// Wraps a NavigationEngine's current components. The engine must outlive
  /// the service and keep its scheme/router selection unchanged meanwhile.
  explicit RouteService(const NavigationEngine& engine,
                        RouteServiceOptions options = {});

  /// Drains the submit() queue (every returned future completes), then
  /// stops the service thread.
  ~RouteService();

  /// Non-copyable: the service owns a queue and (lazily) a thread.
  RouteService(const RouteService&) = delete;
  /// Non-copyable: the service owns a queue and (lazily) a thread.
  RouteService& operator=(const RouteService&) = delete;

  /// Routes a batch; result i corresponds to pairs[i] and draws from
  /// rng.child(i) — bit-identical to routing the pairs one by one.
  [[nodiscard]] std::vector<routing::RouteResult> route_batch(
      std::span<const std::pair<graph::NodeId, graph::NodeId>> pairs,
      Rng rng) const;

  /// Core primitive: executes pre-built jobs (result i = jobs[i]), sharded
  /// by target per the options. Used by route_batch and the estimator.
  [[nodiscard]] std::vector<routing::RouteResult> route_jobs(
      std::vector<RouteJob> jobs) const;

  /// route_batch plus the per-pair degradation story: statuses, retry and
  /// fallback tallies, deadline verdict. Same results, same determinism.
  [[nodiscard]] RouteReport route_batch_report(
      std::span<const std::pair<graph::NodeId, graph::NodeId>> pairs,
      Rng rng) const;

  /// Enqueues a batch on the service thread and returns its future. Batches
  /// execute FIFO; each still fans its shards across the thread pool.
  /// Admission applies here (see RouteServiceOptions::admission): Bounded
  /// may block the caller until the queue has room; Shed may later fail the
  /// returned future with ShedError. Throws std::invalid_argument when the
  /// service is stopping (including producers woken from a Bounded wait by
  /// destruction).
  [[nodiscard]] std::future<std::vector<routing::RouteResult>> submit(
      std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs, Rng rng);

  /// submit() with a VIRTUAL arrival time (seconds on the driver's virtual
  /// axis, e.g. workload::ArrivalSchedule times). When
  /// options().virtual_pair_cost_seconds > 0, Shed aging and the Adaptive
  /// controller evaluate this batch in virtual time — bit-identical across
  /// runs and machines. Arrival times must be non-decreasing across
  /// submits (FIFO order is the virtual order).
  [[nodiscard]] std::future<std::vector<routing::RouteResult>> submit(
      std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs, Rng rng,
      double arrival_vtime);

  /// Freezes dequeueing: submitted batches accumulate (and age, under Shed)
  /// until resume(). Lets tests and drain-style drivers build a queue of
  /// known depth deterministically. Destruction drains even while paused.
  void pause();

  /// Resumes dequeueing after pause().
  void resume();

  /// Live queue depth and cumulative admission counters — a snapshot view
  /// over the `route_service.*` registry metrics (see metrics()).
  [[nodiscard]] QueueStats queue_stats() const;

  /// The registry this service records into: the injected one
  /// (RouteServiceOptions::metrics) or the service's own. Scrape it for the
  /// queue/admission counters plus the sojourn and execution histograms.
  [[nodiscard]] obs::Registry& metrics() const { return *metrics_; }

  /// Greedy-diameter estimation routed through the batch path: the whole
  /// pair × replicate grid becomes one target-sharded batch. Numbers are
  /// bit-identical to routing::estimate_routed_diameter with the same
  /// arguments (same pair selection, same child streams, same accumulation
  /// order); only the execution schedule differs.
  [[nodiscard]] routing::GreedyDiameterEstimate estimate_diameter(
      const routing::TrialConfig& config, Rng rng) const;

  /// Estimation over caller-selected pairs (the Experiment workload axis:
  /// pairs come from a workload::Workload instead of select_trial_pairs).
  /// Streams and accumulation order match the selecting overload exactly —
  /// pair p, replicate r still draws from rng.child(p + 1).child(r) — so
  /// passing the select_trial_pairs output reproduces it bit for bit.
  [[nodiscard]] routing::GreedyDiameterEstimate estimate_diameter(
      const routing::TrialConfig& config, Rng rng,
      const std::vector<std::pair<graph::NodeId, graph::NodeId>>& pairs)
      const;

  /// Telemetry for the most recently executed batch.
  [[nodiscard]] BatchReport last_report() const;

  /// Cumulative telemetry since construction.
  [[nodiscard]] ServiceTotals totals() const;

  /// The options the service was built with (drivers read the virtual pair
  /// cost and the admission policy back).
  [[nodiscard]] const RouteServiceOptions& options() const noexcept {
    return options_;
  }

  /// Virtual sojourn (arrival -> completion, virtual seconds) of every
  /// batch served so far through the vtime submit path, in completion
  /// order. Drivers slice this to compute windowed p99s against an SLO.
  [[nodiscard]] std::vector<double> virtual_sojourns() const;

 private:
  [[nodiscard]] std::vector<routing::RouteResult> execute_jobs(
      const std::vector<RouteJob>& jobs, bool parallel,
      RouteReport* report) const;

  struct PendingBatch {
    std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs;
    Rng rng;
    std::promise<std::vector<routing::RouteResult>> promise;
    /// When the batch entered the queue (Shed measures its wait from here).
    std::chrono::steady_clock::time_point enqueued_at;
    /// Virtual arrival time (submit's vtime overload); valid iff has_vtime.
    double arrival_vtime = 0.0;
    bool has_vtime = false;
  };

  /// submit() body shared by both overloads.
  [[nodiscard]] std::future<std::vector<routing::RouteResult>> submit_impl(
      PendingBatch batch);

  /// Registers the `resilience.*` counters on first use (under
  /// queue_mutex_); a fault-free service never registers them, keeping its
  /// scrape schema byte-identical to the pre-resilience service.
  void ensure_resilience_metrics() const;

  void service_loop();

  const graph::Graph& graph_;
  const graph::DistanceOracle& oracle_;
  const core::AugmentationScheme* scheme_;  // may be null
  const routing::Router& router_;
  RouteServiceOptions options_;

  mutable std::mutex report_mutex_;
  mutable BatchReport last_report_;
  mutable ServiceTotals totals_;

  // Metric storage. The owned registry backs metrics_ unless options.metrics
  // injected an external one; handles are registered once at construction.
  // Every queue counter/gauge is written ONLY under queue_mutex_, so
  // queue_stats() (which reads under the same mutex) sees exact values —
  // the mutex provides the happens-before the relaxed shard cells need.
  obs::Registry owned_metrics_;
  obs::Registry* metrics_ = nullptr;
  obs::Counter submitted_batches_;
  obs::Counter submitted_pairs_;
  obs::Counter executed_batches_;
  obs::Counter shed_batches_;
  obs::Counter shed_pairs_;
  obs::Counter rejected_batches_;
  obs::Counter rejected_pairs_;
  obs::Counter blocked_submits_;
  obs::Gauge queued_batches_;
  obs::Gauge queued_pairs_;
  obs::Gauge peak_queued_pairs_;
  obs::HistogramHandle batch_pairs_hist_;
  obs::HistogramHandle queue_wait_ms_hist_;
  obs::HistogramHandle exec_ms_hist_;
  // Resilience counters (`resilience.*`): written on the thread that ran
  // execute_jobs, after the batch completes — never from pool tasks.
  // Registered LAZILY on the first degradation event (so a fault-free
  // service's scrape schema is unchanged); mutable because registration may
  // happen inside const execute_jobs. Adaptive handles register at
  // construction, but only under the kAdaptive policy.
  mutable obs::Counter retries_;
  mutable obs::Counter fallback_routes_;
  mutable obs::Counter deadline_breaches_;
  mutable obs::Counter degraded_pairs_;
  mutable obs::Counter failed_pairs_;
  mutable bool resilience_metrics_registered_ = false;
  obs::Counter slo_breaches_;
  obs::Gauge adaptive_window_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;        // work available / stopping
  std::condition_variable queue_space_cv_;  // room freed (Bounded waiters)
  std::deque<PendingBatch> queue_;
  bool stopping_ = false;
  bool paused_ = false;
  std::thread service_thread_;  // started lazily by submit()

  // Virtual-time serving state (all under queue_mutex_). vfree_ is the
  // virtual instant the single logical server becomes free; the Adaptive
  // window and the sojourn log are pure functions of (arrival vtimes, batch
  // sizes, FIFO order, injected fault latency) — no wall clock anywhere.
  double vfree_ = 0.0;
  std::size_t adaptive_window_pairs_ = 0;  // 0 until first adaptive dequeue
  std::vector<double> virtual_sojourns_;
};

}  // namespace nav::api
