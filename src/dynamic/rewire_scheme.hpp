// rewire_scheme.hpp — long-range links that evolve from routing feedback.
//
// "Self-organized Emergence of Navigability on Small-World Networks" (Zhuo
// et al.) shows that a population of nodes re-drawing their long-range
// links based on whether routes actually *use* them converges towards a
// navigable augmentation — navigability as an attractor, not a designed
// distribution. RewireScheme is that process over this codebase's fixed
// contact model:
//
//   * every node holds ONE concrete long-range contact (drawn uniformly at
//     construction) — the scheme is a realised augmentation, not a
//     distribution, so sample_contact is deterministic and probability()
//     is exact (an indicator);
//   * learn() consumes a feedback batch of traced RouteResults: a hop out
//     of node x over its long link scores a success for x, a visit to x
//     that ignored the link scores a failure. Nodes whose failures exceed
//     their successes re-draw uniformly (the "uniform" rule) and restart
//     their evidence; everyone else keeps accumulating.
//
// Feedback requires hop traces: routes produced with record_trace = false
// contribute nothing to learn(). The driver loop — route a batch with
// traces, learn, repeat — lives in bench_e13_dynamic (section E13d) and the
// rewire tests.
//
// Registry: "rewire:uniform" via core::make_scheme (so the Experiment /
// sweep_cli scheme axis can carry it); make_rewire_scheme returns the
// concrete type when the caller needs learn().
#pragma once

/// \file
/// \brief RewireScheme: a realised augmentation whose links evolve from
/// per-node routing feedback ("rewire:<rule>" registry entry).

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/scheme.hpp"
#include "routing/router.hpp"

namespace nav::dynamic {

/// Fixed-contact augmentation with feedback-driven re-drawing.
class RewireScheme final : public core::AugmentationScheme {
 public:
  /// Evidence-update rule for learn().
  enum class Rule : std::uint8_t {
    kUniform  ///< losing nodes re-draw uniformly over V \ {u}
  };

  /// Draws every node's initial contact uniformly from `rng`. The scheme
  /// references g (g must outlive it); a DynamicGraph's in-place mutations
  /// are observed automatically.
  RewireScheme(const graph::Graph& g, Rule rule, Rng rng);

  // ---- core::AugmentationScheme -----------------------------------------
  /// The node's current (fixed) contact; the rng is unused — the realised
  /// link only changes through learn().
  [[nodiscard]] graph::NodeId sample_contact(graph::NodeId u,
                                             Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double probability(graph::NodeId u,
                                   graph::NodeId v) const override;
  [[nodiscard]] graph::NodeId num_nodes() const override;

  // ---- the self-organization step ---------------------------------------
  /// What one learn() batch did.
  struct LearnReport {
    std::size_t traced_routes = 0;   ///< results that carried a hop trace
    std::size_t nodes_rewired = 0;   ///< contacts re-drawn this batch
    std::size_t successes = 0;       ///< long-link hops credited
    std::size_t failures = 0;        ///< ignored-link visits debited
  };

  /// Scores every traced route's hops, then re-draws the contact of each
  /// node whose accumulated failures exceed its successes (resetting that
  /// node's evidence). Deterministic given (results order, rng).
  LearnReport learn(std::span<const routing::RouteResult> results, Rng& rng);

  /// The current realised augmentation (tests, diagnostics).
  [[nodiscard]] const std::vector<graph::NodeId>& contacts() const noexcept {
    return contacts_;
  }

 private:
  const graph::Graph& graph_;
  Rule rule_;
  std::vector<graph::NodeId> contacts_;
  std::vector<std::uint32_t> successes_;
  std::vector<std::uint32_t> failures_;
};

/// Builds a "rewire:<rule>" scheme (currently: "rewire:uniform"). Throws
/// std::invalid_argument on unknown rules. core::make_scheme dispatches
/// here; call directly when learn() access is needed.
[[nodiscard]] std::unique_ptr<RewireScheme> make_rewire_scheme(
    const std::string& spec, const graph::Graph& g, Rng& rng);

}  // namespace nav::dynamic
