#include "dynamic/dynamic_graph.hpp"

#include <algorithm>

#include "runtime/assert.hpp"

namespace nav::dynamic {

namespace {

/// Canonical (min, max) form every edge is stored and reported in.
[[nodiscard]] std::pair<NodeId, NodeId> canonical(NodeId u, NodeId v) {
  return u < v ? std::make_pair(u, v) : std::make_pair(v, u);
}

}  // namespace

DynamicGraph::DynamicGraph(Graph base)
    : graph_(std::move(base)), edges_(graph_.edge_list()) {}

bool DynamicGraph::has_edge(NodeId u, NodeId v) const {
  const auto e = canonical(u, v);
  return std::binary_search(edges_.begin(), edges_.end(), e);
}

MutationDelta DynamicGraph::apply(std::span<const EdgeMutation> events) {
  MutationDelta delta;
  delta.requested = events.size();

  // Stage the new edge set; the CSR is rebuilt once at the end.
  for (const EdgeMutation& event : events) {
    switch (event.op) {
      case EdgeMutation::Op::kAddEdge: {
        NAV_REQUIRE(event.u < graph_.num_nodes() &&
                        event.v < graph_.num_nodes(),
                    "mutation endpoint out of range");
        NAV_REQUIRE(event.u != event.v, "self loops are not allowed");
        const auto e = canonical(event.u, event.v);
        const auto it = std::lower_bound(edges_.begin(), edges_.end(), e);
        if (it != edges_.end() && *it == e) break;  // already present: no-op
        edges_.insert(it, e);
        ++delta.edges_added;
        delta.events.push_back(
            {EdgeMutation::Op::kAddEdge, e.first, e.second});
        break;
      }
      case EdgeMutation::Op::kRemoveEdge: {
        NAV_REQUIRE(event.u < graph_.num_nodes() &&
                        event.v < graph_.num_nodes(),
                    "mutation endpoint out of range");
        NAV_REQUIRE(event.u != event.v, "self loops are not allowed");
        const auto e = canonical(event.u, event.v);
        const auto it = std::lower_bound(edges_.begin(), edges_.end(), e);
        if (it == edges_.end() || *it != e) break;  // absent: no-op
        edges_.erase(it);
        ++delta.edges_removed;
        delta.events.push_back(
            {EdgeMutation::Op::kRemoveEdge, e.first, e.second});
        break;
      }
      case EdgeMutation::Op::kFailNode: {
        NAV_REQUIRE(event.u < graph_.num_nodes(),
                    "mutation endpoint out of range");
        // Expand to the removal of every currently incident edge. Collect
        // first: erasing while scanning would skip neighbours.
        std::vector<std::pair<NodeId, NodeId>> incident;
        for (const auto& e : edges_) {
          if (e.first == event.u || e.second == event.u) incident.push_back(e);
        }
        for (const auto& e : incident) {
          const auto it = std::lower_bound(edges_.begin(), edges_.end(), e);
          NAV_ASSERT(it != edges_.end() && *it == e);
          edges_.erase(it);
          ++delta.edges_removed;
          delta.events.push_back(
              {EdgeMutation::Op::kRemoveEdge, e.first, e.second});
        }
        break;
      }
    }
  }

  if (delta.events.empty()) {
    delta.epoch = epoch_;
    return delta;  // nothing changed: no rebuild, no epoch bump, no notify
  }

  graph_ = Graph(graph_.num_nodes(), edges_);  // in-place: address stable
  delta.epoch = ++epoch_;
  for (MutationListener* listener : listeners_) {
    listener->on_mutation(*this, delta);
  }
  return delta;
}

void DynamicGraph::subscribe(MutationListener& listener) {
  listeners_.push_back(&listener);
}

void DynamicGraph::unsubscribe(MutationListener& listener) {
  std::erase(listeners_, &listener);
}

}  // namespace nav::dynamic
