#include "dynamic/rewire_scheme.hpp"

#include <stdexcept>

#include "runtime/assert.hpp"
#include "runtime/parse.hpp"

namespace nav::dynamic {

namespace {

using graph::NodeId;

/// Uniform draw over V \ {u} — the initial distribution and the kUniform
/// re-draw rule.
[[nodiscard]] NodeId draw_other(NodeId u, NodeId n, Rng& rng) {
  NodeId v = static_cast<NodeId>(rng.next_below(n - 1));
  if (v >= u) ++v;
  return v;
}

}  // namespace

RewireScheme::RewireScheme(const graph::Graph& g, Rule rule, Rng rng)
    : graph_(g),
      rule_(rule),
      contacts_(g.num_nodes(), core::kNoContact),
      successes_(g.num_nodes(), 0),
      failures_(g.num_nodes(), 0) {
  NAV_REQUIRE(g.num_nodes() >= 2, "rewire scheme needs at least two nodes");
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    contacts_[u] = draw_other(u, g.num_nodes(), rng);
  }
}

NodeId RewireScheme::sample_contact(NodeId u, Rng& /*rng*/) const {
  NAV_ASSERT(u < contacts_.size());
  return contacts_[u];
}

std::string RewireScheme::name() const { return "rewire:uniform"; }

double RewireScheme::probability(NodeId u, NodeId v) const {
  NAV_ASSERT(u < contacts_.size() && v < contacts_.size());
  // A realised augmentation: the row is the indicator of the current link.
  return contacts_[u] == v ? 1.0 : 0.0;
}

NodeId RewireScheme::num_nodes() const {
  return static_cast<NodeId>(contacts_.size());
}

RewireScheme::LearnReport RewireScheme::learn(
    std::span<const routing::RouteResult> results, Rng& rng) {
  LearnReport report;
  for (const routing::RouteResult& result : results) {
    if (result.trace.empty()) continue;  // no feedback without a hop trace
    ++report.traced_routes;
    // Hop i leaves trace[i]; long_flags[i] says whether it rode the long
    // link. The final node takes no hop and accrues no evidence.
    NAV_ASSERT(result.long_flags.size() + 1 == result.trace.size() ||
               (result.trace.size() <= 1 && result.long_flags.empty()));
    for (std::size_t i = 0; i < result.long_flags.size(); ++i) {
      const NodeId x = result.trace[i];
      NAV_ASSERT(x < contacts_.size());
      if (result.long_flags[i]) {
        ++successes_[x];
        ++report.successes;
      } else {
        ++failures_[x];
        ++report.failures;
      }
    }
  }
  const NodeId n = static_cast<NodeId>(contacts_.size());
  for (NodeId u = 0; u < n; ++u) {
    if (failures_[u] > successes_[u]) {
      switch (rule_) {
        case Rule::kUniform:
          contacts_[u] = draw_other(u, n, rng);
          break;
      }
      successes_[u] = 0;  // fresh link, fresh evidence
      failures_[u] = 0;
      ++report.nodes_rewired;
    }
  }
  return report;
}

std::unique_ptr<RewireScheme> make_rewire_scheme(const std::string& spec,
                                                 const graph::Graph& g,
                                                 Rng& rng) {
  const std::vector<std::string> tokens = split_spec(spec);
  if (tokens.size() == 2 && tokens[0] == "rewire" && tokens[1] == "uniform") {
    return std::make_unique<RewireScheme>(g, RewireScheme::Rule::kUniform,
                                          rng.child(0x5e1f));
  }
  throw std::invalid_argument("unknown rewire spec: " + spec +
                              " (expected rewire:uniform)");
}

}  // namespace nav::dynamic
