// dynamic_graph.hpp — the time-varying view of a graph::Graph.
//
// The paper's model is static ("G is an n-node connected graph"), but the
// robustness question — Achlioptas & Siminelakis, "Navigability is a Robust
// Property" — is what survives when edges churn, fail, or are attacked.
// DynamicGraph makes the graph a versioned object: it owns one graph::Graph
// whose *address never changes* (mutations assign a freshly built CSR into
// the same member), so every component holding a `const Graph&` — oracles,
// schemes, routers, RouteService — observes mutations in place without
// rebinding. Each effective batch of mutations bumps a monotonic epoch
// counter, the version number the invalidation layer (dynamic/invalidation)
// watermarks cached distance rows against.
//
// Mutation model: edges toggle; the node set is fixed. kFailNode is sugar —
// it expands to the removal of every edge currently incident to the node
// (the node stays, isolated), so listeners only ever see edge events.
// Applying a batch rebuilds the CSR once, O(n + m); the right trade for this
// codebase, where a mutation step is rare next to the millions of
// neighbour-scans between steps, and it keeps graph::Graph immutable.
//
// Concurrency contract: apply() requires quiescence — no concurrent readers
// of graph() during the call. Drivers get this for free by mutating only
// between drained batches (workload::TrafficDriver closed-loop mode);
// benches and tests mutate from the single driving thread.
#pragma once

/// \file
/// \brief DynamicGraph: epoch-versioned mutable wrapper over the immutable
/// CSR graph, with listener notification for incremental invalidation.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace nav::dynamic {

using graph::Graph;
using graph::NodeId;

/// One requested change to the graph's edge set.
struct EdgeMutation {
  /// What to change.
  enum class Op : std::uint8_t {
    kAddEdge,     ///< insert edge {u, v} (no-op if present)
    kRemoveEdge,  ///< delete edge {u, v} (no-op if absent)
    kFailNode     ///< remove every edge incident to u (v ignored)
  };
  Op op = Op::kAddEdge;  ///< requested operation
  NodeId u = 0;          ///< first endpoint (the node, for kFailNode)
  NodeId v = 0;          ///< second endpoint (unused by kFailNode)
};

/// What one apply() actually did: the effective edge events, in application
/// order, with kFailNode already expanded to its removals. Only kAddEdge /
/// kRemoveEdge appear here, normalised to u < v — the form the invalidation
/// layer's tightness test consumes.
struct MutationDelta {
  std::uint64_t epoch = 0;   ///< graph epoch after this batch
  std::size_t requested = 0; ///< input events (before no-op filtering)
  std::size_t edges_added = 0;    ///< effective insertions
  std::size_t edges_removed = 0;  ///< effective deletions
  /// Effective events in the order they were applied (u < v each).
  std::vector<EdgeMutation> events;

  /// True when the batch changed nothing (every event was a no-op).
  [[nodiscard]] bool empty() const noexcept { return events.empty(); }
};

class DynamicGraph;

/// Observer of graph mutations (the oracle-invalidation hook). on_mutation
/// runs inside apply(), on the mutating thread, after the CSR has been
/// rebuilt — listeners may read g.graph() and see the post-mutation state.
class MutationListener {
 public:
  virtual ~MutationListener() = default;
  /// Called once per effective apply() with the batch's delta.
  virtual void on_mutation(const DynamicGraph& g,
                           const MutationDelta& delta) = 0;
};

/// Epoch-versioned owner of one mutable graph. See the header comment for
/// the address-stability and quiescence contracts.
class DynamicGraph {
 public:
  /// Takes ownership of the starting graph (epoch 0).
  explicit DynamicGraph(Graph base);

  /// The current graph. The returned reference (and the Graph's address)
  /// stays valid across apply() calls for the DynamicGraph's lifetime.
  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }

  /// Number of effective mutation batches applied so far.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// Current edges as (u, v) with u < v, sorted lexicographically — the
  /// sampling surface for churn/attack streams (uniform edge = uniform
  /// index).
  [[nodiscard]] std::span<const std::pair<NodeId, NodeId>> edges()
      const noexcept {
    return edges_;
  }

  /// O(log m) membership test on the current edge set.
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// Applies a batch: filters no-ops, expands kFailNode, rebuilds the CSR
  /// once, bumps the epoch (only when something changed), and notifies
  /// listeners. Throws std::invalid_argument on out-of-range endpoints or
  /// self loops. Requires quiescence (no concurrent graph() readers).
  MutationDelta apply(std::span<const EdgeMutation> events);

  /// Registers a listener (not owned; must unsubscribe before destruction).
  void subscribe(MutationListener& listener);
  /// Removes a previously subscribed listener (no-op when absent).
  void unsubscribe(MutationListener& listener);

 private:
  Graph graph_;  // address-stable: mutations assign into this member
  std::vector<std::pair<NodeId, NodeId>> edges_;  // sorted, u < v
  std::uint64_t epoch_ = 0;
  std::vector<MutationListener*> listeners_;
};

}  // namespace nav::dynamic
