#include "dynamic/mutation_stream.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "api/result_sink.hpp"
#include "runtime/assert.hpp"
#include "runtime/parse.hpp"

namespace nav::dynamic {

namespace {

using Op = EdgeMutation::Op;

/// "churn:<rate>" — steady-state edge turnover: per step, <rate> events,
/// each a fair coin between remove-uniform-edge and add-uniform-absent-pair.
class ChurnStream final : public MutationStream {
 public:
  explicit ChurnStream(double rate, std::string spec)
      : rate_(rate), spec_(std::move(spec)) {}

  [[nodiscard]] std::string name() const override { return spec_; }

  [[nodiscard]] std::vector<EdgeMutation> step(const DynamicGraph& g,
                                               Rng& rng) override {
    std::size_t count = static_cast<std::size_t>(rate_);
    const double remainder = rate_ - static_cast<double>(count);
    if (remainder > 0.0 && rng.next_bool(remainder)) ++count;

    const NodeId n = g.graph().num_nodes();
    std::vector<EdgeMutation> events;
    events.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const bool remove = rng.next_bool(0.5);
      if (remove) {
        const auto edges = g.edges();
        if (edges.empty()) continue;  // nothing left to remove
        const auto& e = edges[rng.next_below(edges.size())];
        events.push_back({Op::kRemoveEdge, e.first, e.second});
      } else {
        if (n < 2) continue;
        // Rejection-sample an absent pair. Skip the draw (rather than spin)
        // on a hit: near-complete graphs stay bounded, and the no-op is
        // filtered by apply() anyway.
        const NodeId u = static_cast<NodeId>(rng.next_below(n));
        NodeId v = static_cast<NodeId>(rng.next_below(n - 1));
        if (v >= u) ++v;  // uniform over nodes != u
        events.push_back({Op::kAddEdge, u, v});
      }
    }
    return events;
  }

 private:
  double rate_;
  std::string spec_;
};

/// "fail:<fraction>" — one-shot uniform edge failures.
class FailStream final : public MutationStream {
 public:
  explicit FailStream(double fraction, std::string spec)
      : fraction_(fraction), spec_(std::move(spec)) {}

  [[nodiscard]] std::string name() const override { return spec_; }

  [[nodiscard]] std::vector<EdgeMutation> step(const DynamicGraph& g,
                                               Rng& rng) override {
    if (fired_) return {};
    fired_ = true;
    const auto edges = g.edges();
    const std::size_t kill =
        static_cast<std::size_t>(fraction_ * static_cast<double>(edges.size()));
    // Partial Fisher–Yates over the edge indices: the first `kill` entries
    // of a uniform permutation are a uniform subset.
    std::vector<std::size_t> index(edges.size());
    for (std::size_t i = 0; i < index.size(); ++i) index[i] = i;
    std::vector<EdgeMutation> events;
    events.reserve(kill);
    for (std::size_t i = 0; i < kill && i < index.size(); ++i) {
      const std::size_t j = i + rng.next_below(index.size() - i);
      std::swap(index[i], index[j]);
      const auto& e = edges[index[i]];
      events.push_back({Op::kRemoveEdge, e.first, e.second});
    }
    return events;
  }

  void reset() override { fired_ = false; }

 private:
  double fraction_;
  std::string spec_;
  bool fired_ = false;
};

/// "targeted:<k>" — one-shot failure of the k highest-degree nodes.
class TargetedStream final : public MutationStream {
 public:
  explicit TargetedStream(std::size_t k, std::string spec)
      : k_(k), spec_(std::move(spec)) {}

  [[nodiscard]] std::string name() const override { return spec_; }

  [[nodiscard]] std::vector<EdgeMutation> step(const DynamicGraph& g,
                                               Rng& /*rng*/) override {
    if (fired_) return {};
    fired_ = true;
    const Graph& graph = g.graph();
    std::vector<NodeId> nodes(graph.num_nodes());
    for (NodeId u = 0; u < graph.num_nodes(); ++u) nodes[u] = u;
    const std::size_t kill = std::min<std::size_t>(k_, nodes.size());
    // Highest degree first, ties by lower id — a deterministic attack.
    std::partial_sort(nodes.begin(), nodes.begin() + kill, nodes.end(),
                      [&](NodeId a, NodeId b) {
                        if (graph.degree(a) != graph.degree(b)) {
                          return graph.degree(a) > graph.degree(b);
                        }
                        return a < b;
                      });
    std::vector<EdgeMutation> events;
    events.reserve(kill);
    for (std::size_t i = 0; i < kill; ++i) {
      events.push_back({Op::kFailNode, nodes[i], 0});
    }
    return events;
  }

  void reset() override { fired_ = false; }

 private:
  std::size_t k_;
  std::string spec_;
  bool fired_ = false;
};

/// "trace:<path>" — JSONL replay: call i returns the events recorded for
/// step i, empty after the last recorded step.
class TraceStream final : public MutationStream {
 public:
  explicit TraceStream(std::string path, std::string spec)
      : steps_(load_mutation_trace(path)), spec_(std::move(spec)) {}

  [[nodiscard]] std::string name() const override { return spec_; }

  [[nodiscard]] std::vector<EdgeMutation> step(const DynamicGraph& /*g*/,
                                               Rng& /*rng*/) override {
    if (position_ >= steps_.size()) return {};
    return steps_[position_++];
  }

  void reset() override { position_ = 0; }

 private:
  std::vector<std::vector<EdgeMutation>> steps_;
  std::string spec_;
  std::size_t position_ = 0;
};

[[nodiscard]] std::string op_token(Op op) {
  switch (op) {
    case Op::kAddEdge: return "add";
    case Op::kRemoveEdge: return "remove";
    case Op::kFailNode: return "fail";
  }
  NAV_ASSERT(false);
  return {};
}

[[nodiscard]] Op parse_op_token(const std::string& token,
                                const std::string& where) {
  if (token == "add") return Op::kAddEdge;
  if (token == "remove") return Op::kRemoveEdge;
  if (token == "fail") return Op::kFailNode;
  throw std::invalid_argument(where + ": unknown mutation op '" + token +
                              "' (expected add/remove/fail)");
}

}  // namespace

MutationStreamPtr make_mutation_stream(const std::string& spec) {
  const std::vector<std::string> tokens = split_spec(spec);
  const std::string& kind = tokens[0];
  if (kind == "churn" && tokens.size() == 2) {
    const double rate = parse_spec_number<double>(tokens[1], spec);
    NAV_REQUIRE(rate >= 0.0, "churn rate must be >= 0");
    return std::make_unique<ChurnStream>(rate, spec);
  }
  if (kind == "fail" && tokens.size() == 2) {
    const double fraction = parse_spec_number<double>(tokens[1], spec);
    NAV_REQUIRE(fraction >= 0.0 && fraction <= 1.0,
                "fail fraction must be in [0, 1]");
    return std::make_unique<FailStream>(fraction, spec);
  }
  if (kind == "targeted" && tokens.size() == 2) {
    const auto k = parse_spec_number<std::size_t>(tokens[1], spec);
    return std::make_unique<TargetedStream>(k, spec);
  }
  if (kind == "trace" && tokens.size() >= 2) {
    // Paths may contain ':' (rare, but cheap to honour): rejoin the tail.
    std::string path = spec.substr(kind.size() + 1);
    NAV_REQUIRE(!path.empty(), "trace spec needs a path");
    return std::make_unique<TraceStream>(std::move(path), spec);
  }
  throw std::invalid_argument("unknown mutation spec: " + spec);
}

const std::vector<MutationInfo>& mutation_catalog() {
  static const std::vector<MutationInfo> catalog = {
      {"churn:<rate>", "per step, <rate> events: coin flip between removing "
                       "a uniform edge and adding a uniform absent pair"},
      {"fail:<fraction>", "one-shot removal of floor(fraction * m) distinct "
                          "uniform edges"},
      {"targeted:<k>", "one-shot failure of the k highest-degree nodes "
                       "(ties by lower id)"},
      {"trace:<path>", "replay a JSONL trace of {\"step\",\"op\",\"u\",\"v\"} "
                       "records; empty after the last recorded step"},
  };
  return catalog;
}

void save_mutation_trace(const std::string& path,
                         const std::vector<std::vector<EdgeMutation>>& steps) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open mutation trace for write: " + path);
  }
  for (std::size_t s = 0; s < steps.size(); ++s) {
    for (const EdgeMutation& e : steps[s]) {
      out << api::to_json_line({{"step", static_cast<std::uint64_t>(s)},
                                {"op", op_token(e.op)},
                                {"u", static_cast<std::uint64_t>(e.u)},
                                {"v", static_cast<std::uint64_t>(e.v)}})
          << '\n';
    }
  }
  if (!out) throw std::runtime_error("failed writing mutation trace: " + path);
}

std::vector<std::vector<EdgeMutation>> load_mutation_trace(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open mutation trace: " + path);
  std::vector<std::vector<EdgeMutation>> steps;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;  // graph_io-style comments
    const std::string where = path + ":" + std::to_string(line_number);
    const auto record = api::parse_json_line(line);
    const auto uint_field = [&](const char* key) -> std::uint64_t {
      for (const auto& f : record) {
        if (f.key == key) {
          if (const auto* v = std::get_if<std::uint64_t>(&f.value)) return *v;
          throw std::invalid_argument(where + ": trace field '" + key +
                                      "' must be an unsigned integer");
        }
      }
      throw std::invalid_argument(where + ": trace record missing field '" +
                                  std::string(key) + "'");
    };
    const auto string_field = [&](const char* key) -> std::string {
      for (const auto& f : record) {
        if (f.key == key) {
          if (const auto* v = std::get_if<std::string>(&f.value)) return *v;
          throw std::invalid_argument(where + ": trace field '" + key +
                                      "' must be a string");
        }
      }
      throw std::invalid_argument(where + ": trace record missing field '" +
                                  std::string(key) + "'");
    };
    const std::size_t step = static_cast<std::size_t>(uint_field("step"));
    if (step >= steps.size()) steps.resize(step + 1);
    steps[step].push_back({parse_op_token(string_field("op"), where),
                           static_cast<NodeId>(uint_field("u")),
                           static_cast<NodeId>(uint_field("v"))});
  }
  return steps;
}

}  // namespace nav::dynamic
