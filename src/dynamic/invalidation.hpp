// invalidation.hpp — incremental distance-oracle repair under mutation.
//
// A mutation invalidates a cached distance row only if it can actually
// change it. For an exact row d(·) = dist(·, t) on the pre-event graph and
// an edge event on {u, v}, write Δ = max(d(u), d(v)) − min(d(u), d(v)):
//
//   * removing {u, v} can change the row  iff Δ == 1  — an edge lies on some
//     shortest-path DAG towards t exactly when its endpoints sit on adjacent
//     BFS levels; any other edge is slack and its removal moves nothing.
//   * adding {u, v} can change the row    iff Δ >= 2  — the new edge offers
//     a shortcut x→u→v (or x→v→u) only when it skips at least one level.
//
// The unsigned max−min form handles unreachability for free: both endpoints
// at kInfDist give Δ == 0 (retained — an edge inside a foreign component
// cannot touch t's distances), one endpoint at kInfDist gives a huge Δ
// (an addition that bridges into t's component is invalidated; a removal
// with exactly one infinite endpoint cannot occur in an exact row, since an
// existing edge bounds its endpoints' distances within 1 of each other).
//
// Scanning a mutation batch sequentially per row is sound by induction: a
// row that passes event i's test is still exact after event i, so event
// i+1's test reads correct values; the first failing event invalidates the
// row and the scan stops.
//
// DynamicOracle wraps either oracle backend behind the same
// graph::DistanceOracle interface and subscribes to a DynamicGraph:
//
//   * TargetDistanceCache backend — invalidated residents are erased (their
//     arena slots recycle; the next query lazily re-BFSes against the
//     mutated CSR); retained residents keep serving hits.
//   * DistanceMatrix backend — every target is always resident, so
//     invalidated rows are eagerly repaired in place (rebuild_rows), one
//     parallel sweep over exactly the affected targets.
//
// The watermark channel reuses the PR 5 epoch-stamp idiom (BfsWorkspace):
// a 16-bit generation counter bumps per effective mutation; every row
// validated under the current generation carries its stamp, and serving a
// row whose stamp disagrees with the watermark is an invalidation bug
// caught by NAV_ASSERT rather than a silently wrong route. On wraparound
// (every 65536 mutations) the oracle takes one defensive full flush — the
// same amortised-O(1) reset the workspace performs — counted separately in
// InvalidationStats::wrap_flushes and covered by a >2^16-epoch stress test.
//
// Mode::kFullFlush keeps the obvious reference behaviour (drop/recompute
// everything per mutation) alive as the differential baseline: the test
// suite proves routed results under kIncremental are bit-identical to
// kFullFlush and to a cold rebuild, across families × churn rates.
//
// Concurrency: queries are as thread-safe as the backend; on_mutation
// requires the DynamicGraph's quiescence contract (no concurrent queries
// during apply()).
#pragma once

/// \file
/// \brief DynamicOracle: epoch-watermarked incremental invalidation of
/// cached distance rows under graph mutation, with a full-flush reference
/// mode and differential counters.

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "dynamic/dynamic_graph.hpp"
#include "graph/distance_oracle.hpp"

namespace nav::dynamic {

using graph::Dist;
using graph::DistVecPtr;

/// Differential counters for the invalidation layer. The bench's acceptance
/// assertion — incremental invalidates strictly fewer targets than a flush —
/// reads targets_retained > 0 here.
struct InvalidationStats {
  std::uint64_t mutations_seen = 0;   ///< effective deltas observed
  std::uint64_t events_seen = 0;      ///< edge events across those deltas
  std::uint64_t targets_scanned = 0;  ///< resident rows tested
  std::uint64_t targets_invalidated = 0;  ///< rows dropped / repaired
  std::uint64_t targets_retained = 0;     ///< rows proven still exact
  std::uint64_t rows_rebuilt = 0;     ///< eager repairs (matrix backend)
  std::uint64_t full_flushes = 0;     ///< whole-oracle drops (kFullFlush)
  std::uint64_t wrap_flushes = 0;     ///< defensive flushes at 2^16 wrap
};

/// Distance oracle over a DynamicGraph that stays exact across mutations.
class DynamicOracle final : public graph::DistanceOracle,
                            public MutationListener {
 public:
  /// Invalidation strategy.
  enum class Mode : std::uint8_t {
    kIncremental,  ///< per-row tightness test; drop/repair only affected rows
    kFullFlush     ///< reference: drop/recompute everything per mutation
  };

  /// Storage strategy behind the oracle interface.
  enum class Backend : std::uint8_t {
    kAuto,    ///< matrix when n <= dense_limit, cache otherwise (engine rule)
    kCache,   ///< TargetDistanceCache (lazy repair)
    kMatrix   ///< DistanceMatrix (eager in-place repair)
  };

  /// Construction knobs; defaults mirror api::EngineOptions.
  struct Options {
    Mode mode = Mode::kIncremental;      ///< invalidation strategy
    Backend backend = Backend::kAuto;    ///< storage selection
    graph::NodeId dense_limit = 4096;    ///< kAuto: matrix up to this n
    std::size_t cache_capacity = 64;     ///< cache backend: LRU entries
  };

  /// Builds the backend over g.graph() and subscribes to g (g must outlive
  /// the oracle).
  DynamicOracle(DynamicGraph& g, Options options);

  /// Default options (kIncremental, kAuto backend).
  explicit DynamicOracle(DynamicGraph& g) : DynamicOracle(g, Options{}) {}

  /// Unsubscribes from the graph.
  ~DynamicOracle() override;

  DynamicOracle(const DynamicOracle&) = delete;             ///< non-copyable
  DynamicOracle& operator=(const DynamicOracle&) = delete;  ///< non-copyable

  // ---- graph::DistanceOracle --------------------------------------------
  [[nodiscard]] Dist distance(graph::NodeId u,
                              graph::NodeId target) const override;
  [[nodiscard]] DistVecPtr distances_to(graph::NodeId target) const override;
  void prefetch_into(std::span<const graph::NodeId> targets,
                     std::vector<DistVecPtr>& out) const override;

  // ---- MutationListener --------------------------------------------------
  /// Runs the per-row tightness test (or the reference flush) against the
  /// delta. Called by DynamicGraph::apply under the quiescence contract.
  void on_mutation(const DynamicGraph& g, const MutationDelta& delta) override;

  // ---- introspection -----------------------------------------------------
  /// Cumulative differential counters.
  [[nodiscard]] InvalidationStats stats() const;
  /// Current 16-bit generation (diagnostics; lets the wraparound stress
  /// assert it actually wrapped).
  [[nodiscard]] std::uint16_t watermark() const;
  /// The selected invalidation strategy.
  [[nodiscard]] Mode mode() const noexcept { return options_.mode; }
  /// The resolved storage backend (kAuto decided at construction).
  [[nodiscard]] Backend backend() const noexcept { return backend_; }

 private:
  /// True when the event can change an exact row d (see header comment).
  [[nodiscard]] static bool event_affects_row(const EdgeMutation& event,
                                              const graph::DistView& row);
  void flush(const DynamicGraph& g);
  void stamp_validated(graph::NodeId target) const;

  DynamicGraph& graph_;
  Options options_;
  Backend backend_;  // resolved (never kAuto)
  std::unique_ptr<graph::DistanceMatrix> matrix_;      // kMatrix backend
  std::unique_ptr<graph::TargetDistanceCache> cache_;  // kCache backend

  mutable std::mutex mutex_;  // guards stamps_, watermark_, stats_
  mutable std::unordered_map<graph::NodeId, std::uint16_t> stamps_;
  std::uint16_t watermark_ = 0;
  InvalidationStats stats_;
};

}  // namespace nav::dynamic
