#include "dynamic/invalidation.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "runtime/assert.hpp"

namespace nav::dynamic {

namespace {

// Registry mirrors of InvalidationStats. The struct stays the per-oracle
// source of truth (and the bench's acceptance surface); these counters fold
// every DynamicOracle in the process into one scrape.
struct DynMetrics {
  obs::Counter mutations;
  obs::Counter events;
  obs::Counter scanned;
  obs::Counter invalidated;
  obs::Counter retained;
  obs::Counter rebuilt;
  obs::Counter full_flushes;
  obs::Counter wrap_flushes;

  DynMetrics()
      : mutations(
            obs::default_registry().counter("dynamic_oracle.mutations_seen")),
        events(obs::default_registry().counter("dynamic_oracle.events_seen")),
        scanned(
            obs::default_registry().counter("dynamic_oracle.targets_scanned")),
        invalidated(obs::default_registry().counter(
            "dynamic_oracle.targets_invalidated")),
        retained(obs::default_registry().counter(
            "dynamic_oracle.targets_retained")),
        rebuilt(obs::default_registry().counter("dynamic_oracle.rows_rebuilt")),
        full_flushes(
            obs::default_registry().counter("dynamic_oracle.full_flushes")),
        wrap_flushes(
            obs::default_registry().counter("dynamic_oracle.wrap_flushes")) {}
};

DynMetrics& dyn_metrics() {
  static DynMetrics* m = new DynMetrics();
  return *m;
}

// Posts the InvalidationStats delta accumulated during one on_mutation to
// the registry on scope exit — one place instead of thirteen increment
// sites, and it covers every early-return path.
class ScopedStatsMirror {
 public:
  explicit ScopedStatsMirror(const InvalidationStats& live)
      : live_(live), before_(live) {}

  ~ScopedStatsMirror() {
    DynMetrics& m = dyn_metrics();
    post(m.mutations, live_.mutations_seen, before_.mutations_seen);
    post(m.events, live_.events_seen, before_.events_seen);
    post(m.scanned, live_.targets_scanned, before_.targets_scanned);
    post(m.invalidated, live_.targets_invalidated,
         before_.targets_invalidated);
    post(m.retained, live_.targets_retained, before_.targets_retained);
    post(m.rebuilt, live_.rows_rebuilt, before_.rows_rebuilt);
    post(m.full_flushes, live_.full_flushes, before_.full_flushes);
    post(m.wrap_flushes, live_.wrap_flushes, before_.wrap_flushes);
  }

  ScopedStatsMirror(const ScopedStatsMirror&) = delete;
  ScopedStatsMirror& operator=(const ScopedStatsMirror&) = delete;

 private:
  static void post(obs::Counter& c, std::uint64_t now, std::uint64_t then) {
    if (now > then) c.inc(now - then);
  }

  const InvalidationStats& live_;
  InvalidationStats before_;
};

}  // namespace

DynamicOracle::DynamicOracle(DynamicGraph& g, Options options)
    : graph_(g), options_(options) {
  const graph::NodeId n = g.graph().num_nodes();
  backend_ = options_.backend;
  if (backend_ == Backend::kAuto) {
    backend_ = n <= options_.dense_limit ? Backend::kMatrix : Backend::kCache;
  }
  if (backend_ == Backend::kMatrix) {
    matrix_ = std::make_unique<graph::DistanceMatrix>(g.graph());
    // Every row is resident and exact at generation 0.
    stamps_.reserve(n);
    for (graph::NodeId t = 0; t < n; ++t) stamps_.emplace(t, watermark_);
  } else {
    cache_ = std::make_unique<graph::TargetDistanceCache>(
        g.graph(), options_.cache_capacity);
  }
  graph_.subscribe(*this);
}

DynamicOracle::~DynamicOracle() { graph_.unsubscribe(*this); }

Dist DynamicOracle::distance(graph::NodeId u, graph::NodeId target) const {
  return (*distances_to(target))[u];
}

void DynamicOracle::stamp_validated(graph::NodeId target) const {
  std::lock_guard lock(mutex_);
  const auto [it, inserted] = stamps_.try_emplace(target, watermark_);
  // A pre-existing stamp must agree with the watermark: rows validated
  // before the last mutation were either retained (re-stamped) or erased,
  // so a stale stamp here means the invalidation scan missed a row.
  NAV_ASSERT(inserted || it->second == watermark_);
}

DistVecPtr DynamicOracle::distances_to(graph::NodeId target) const {
  DistVecPtr row = backend_ == Backend::kMatrix
                       ? matrix_->distances_to(target)
                       : cache_->distances_to(target);
  stamp_validated(target);
  return row;
}

void DynamicOracle::prefetch_into(std::span<const graph::NodeId> targets,
                                  std::vector<DistVecPtr>& out) const {
  if (backend_ == Backend::kMatrix) {
    matrix_->prefetch_into(targets, out);
  } else {
    cache_->prefetch_into(targets, out);
  }
  for (const graph::NodeId t : targets) stamp_validated(t);
}

bool DynamicOracle::event_affects_row(const EdgeMutation& event,
                                      const graph::DistView& row) {
  const Dist du = row[event.u];
  const Dist dv = row[event.v];
  const Dist delta = std::max(du, dv) - std::min(du, dv);
  // Remove: only shortest-path-DAG edges (adjacent levels) matter.
  // Add: only level-skipping shortcuts matter. kInfDist endpoints resolve
  // correctly through the unsigned max-min (see header comment).
  return event.op == EdgeMutation::Op::kRemoveEdge ? delta == 1 : delta >= 2;
}

void DynamicOracle::flush(const DynamicGraph& g) {
  // Callers hold mutex_.
  stamps_.clear();
  if (backend_ == Backend::kMatrix) {
    const graph::NodeId n = g.graph().num_nodes();
    matrix_->rebuild_all(g.graph());
    stats_.rows_rebuilt += n;
    for (graph::NodeId t = 0; t < n; ++t) stamps_.emplace(t, watermark_);
  } else {
    cache_->clear();
  }
}

void DynamicOracle::on_mutation(const DynamicGraph& g,
                                const MutationDelta& delta) {
  std::lock_guard lock(mutex_);
  const ScopedStatsMirror mirror(stats_);
  ++stats_.mutations_seen;
  stats_.events_seen += delta.events.size();
  ++watermark_;  // uint16: wraps every 65536 effective mutations

  if (watermark_ == 0) {
    // Wraparound: one defensive flush, mirroring BfsWorkspace's re-zero —
    // no stamp from generation 0 of the previous era can alias the new one.
    ++stats_.wrap_flushes;
    flush(g);
    return;
  }

  if (options_.mode == Mode::kFullFlush) {
    ++stats_.full_flushes;
    const std::uint64_t residents =
        backend_ == Backend::kMatrix
            ? static_cast<std::uint64_t>(g.graph().num_nodes())
            : static_cast<std::uint64_t>(cache_->resident_targets().size());
    stats_.targets_scanned += residents;
    stats_.targets_invalidated += residents;
    flush(g);
    return;
  }

  if (backend_ == Backend::kMatrix) {
    const graph::NodeId n = g.graph().num_nodes();
    std::vector<graph::NodeId> affected;
    for (graph::NodeId t = 0; t < n; ++t) {
      const DistVecPtr row = matrix_->distances_to(t);
      bool hit = false;
      for (const EdgeMutation& event : delta.events) {
        if (event_affects_row(event, *row)) {
          hit = true;
          break;
        }
      }
      if (hit) affected.push_back(t);
    }
    matrix_->rebuild_rows(g.graph(), affected);
    stats_.targets_scanned += n;
    stats_.targets_invalidated += affected.size();
    stats_.targets_retained += n - affected.size();
    stats_.rows_rebuilt += affected.size();
    // Repaired and retained rows alike are exact at the new generation.
    stamps_.clear();
    for (graph::NodeId t = 0; t < n; ++t) stamps_.emplace(t, watermark_);
    return;
  }

  const std::vector<graph::NodeId> residents = cache_->resident_targets();
  std::unordered_map<graph::NodeId, std::uint16_t> retained_stamps;
  retained_stamps.reserve(residents.size());
  for (const graph::NodeId t : residents) {
    const DistVecPtr row = cache_->peek(t);
    NAV_ASSERT(row != nullptr);
    bool hit = false;
    for (const EdgeMutation& event : delta.events) {
      if (event_affects_row(event, *row)) {
        hit = true;
        break;
      }
    }
    if (hit) {
      cache_->erase(t);  // lazily recomputed against the mutated CSR
      ++stats_.targets_invalidated;
    } else {
      retained_stamps.emplace(t, watermark_);
      ++stats_.targets_retained;
    }
  }
  stats_.targets_scanned += residents.size();
  // Rebuild rather than patch: targets evicted by LRU pressure since the
  // last mutation must not keep stale stamps (their next query recomputes
  // fresh rows that are valid at the current generation).
  stamps_ = std::move(retained_stamps);
}

InvalidationStats DynamicOracle::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::uint16_t DynamicOracle::watermark() const {
  std::lock_guard lock(mutex_);
  return watermark_;
}

}  // namespace nav::dynamic
