// mutation_stream.hpp — perturbation processes behind a registry.
//
// A MutationStream says HOW the graph moves: each step() inspects the
// current DynamicGraph and emits the next batch of EdgeMutations for the
// driver to apply. Streams mirror the workload registry's contract exactly:
// construction from a spec string, all randomness from the caller's Rng at
// step time, reset() to replay the process — so one seed pins the whole
// perturbation trajectory, independent of thread count.
//
// Registry specs (make_mutation_stream):
//   "churn:<rate>"    per step, <rate> random edge events: each a coin flip
//                     between removing a uniform existing edge and adding a
//                     uniform absent pair. A fractional <rate> contributes
//                     its remainder as a Bernoulli extra event. The
//                     steady-state perturbation of Achlioptas–Siminelakis.
//   "fail:<fraction>" one-shot: the first step removes floor(fraction * m)
//                     distinct uniform edges; later steps are empty. The
//                     robustness-surface axis of bench_e13_dynamic.
//   "targeted:<k>"    one-shot attack: fail the k highest-degree nodes
//                     (ties by lower id) — the classic scale-free attack
//                     contrast to uniform failures.
//   "trace:<path>"    replay of a recorded JSONL trace (one
//                     {"step":..,"op":..,"u":..,"v":..} object per line;
//                     save_mutation_trace / load_mutation_trace round-trip).
//                     Call i returns the events recorded for step i; the
//                     stream is empty after the last recorded step.
//
// Streams emit *requests*: DynamicGraph::apply filters no-ops (churn can
// race itself across steps; replayed traces may hit an already-mutated
// graph), so the delta — not the stream — is the ground truth of change.
#pragma once

/// \file
/// \brief MutationStream: churn / failure / attack / trace-replay
/// perturbation generators behind a spec-string registry.

#include <memory>
#include <string>
#include <vector>

#include "dynamic/dynamic_graph.hpp"
#include "runtime/rng.hpp"

namespace nav::dynamic {

/// A deterministic perturbation process over one DynamicGraph. Stateful
/// only where the model demands it (one-shot arming, trace position); all
/// randomness comes from the caller's Rng.
class MutationStream {
 public:
  virtual ~MutationStream() = default;  ///< deleted through the base

  /// The registry spec this stream was built from (tables, jsonl rows).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Emits the next batch of mutation requests against the current graph
  /// state. An empty batch means "nothing this step" (exhausted one-shots,
  /// drained traces).
  [[nodiscard]] virtual std::vector<EdgeMutation> step(const DynamicGraph& g,
                                                       Rng& rng) = 0;

  /// Rewinds internal state (re-arms one-shots, restarts traces) so one
  /// constructed stream can serve many grid cells with identical
  /// perturbations.
  virtual void reset() {}
};

/// Owning handle for registry-built streams.
using MutationStreamPtr = std::unique_ptr<MutationStream>;

/// Builds the stream for `spec`. Throws std::invalid_argument on unknown or
/// malformed specs ("none" is not a stream — drivers treat the absence of a
/// stream as the static case).
[[nodiscard]] MutationStreamPtr make_mutation_stream(const std::string& spec);

/// One registry entry: spec template plus a one-line description.
struct MutationInfo {
  std::string spec;         ///< spec template, e.g. "churn:<rate>"
  std::string description;  ///< what perturbation it models
};

/// The registry contents, in stable order (docs, --help text).
[[nodiscard]] const std::vector<MutationInfo>& mutation_catalog();

/// Writes per-step event batches as a JSONL trace that "trace:<path>"
/// replays: one {"step":..,"op":"add"|"remove"|"fail","u":..,"v":..} object
/// per event. Throws std::runtime_error on I/O failure.
void save_mutation_trace(const std::string& path,
                         const std::vector<std::vector<EdgeMutation>>& steps);

/// Parses a JSONL mutation trace back into per-step batches (index = step).
/// Throws std::runtime_error when the file can't be opened and
/// std::invalid_argument on malformed lines.
[[nodiscard]] std::vector<std::vector<EdgeMutation>> load_mutation_trace(
    const std::string& path);

}  // namespace nav::dynamic
