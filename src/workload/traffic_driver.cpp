#include "workload/traffic_driver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/parse.hpp"
#include "runtime/timer.hpp"

namespace nav::workload {

ArrivalSchedule ArrivalSchedule::parse(const std::string& spec) {
  ArrivalSchedule schedule;
  schedule.spec = spec;
  const auto tokens = split_spec(spec);
  if (tokens.front() == "poisson" && tokens.size() == 2) {
    schedule.kind = Kind::kPoisson;
    schedule.rate = parse_spec_number<double>(tokens[1], spec);
    NAV_REQUIRE(schedule.rate > 0.0, "poisson rate must be > 0: " + spec);
    return schedule;
  }
  if (tokens.front() == "burst" && tokens.size() == 3) {
    schedule.kind = Kind::kBurst;
    schedule.burst_size = parse_spec_number<std::size_t>(tokens[1], spec);
    schedule.gap_seconds = parse_spec_number<double>(tokens[2], spec);
    NAV_REQUIRE(schedule.burst_size >= 1, "burst size must be >= 1: " + spec);
    NAV_REQUIRE(schedule.gap_seconds >= 0.0,
                "burst gap must be >= 0: " + spec);
    return schedule;
  }
  throw std::invalid_argument(
      "schedule spec must be poisson:<rate> or burst:<size>:<gap>: " + spec);
}

std::vector<double> ArrivalSchedule::arrival_times(std::size_t count,
                                                   Rng rng) const {
  std::vector<double> times;
  times.reserve(count);
  if (kind == Kind::kPoisson) {
    double t = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      // Exponential gap by inversion; next_double() < 1 keeps the log finite.
      t += -std::log(1.0 - rng.next_double()) / rate;
      times.push_back(t);
    }
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      times.push_back(gap_seconds * static_cast<double>(i / burst_size));
    }
  }
  return times;
}

TrafficDriver::TrafficDriver(api::RouteService& service, Workload& workload,
                             TrafficOptions options)
    : service_(service),
      workload_(workload),
      options_(std::move(options)),
      schedule_(ArrivalSchedule::parse(options_.schedule)) {
  NAV_REQUIRE(options_.batches >= 1, "traffic needs at least one batch");
  NAV_REQUIRE(options_.batch_size >= 1, "traffic needs non-empty batches");
  NAV_REQUIRE((options_.mutations == nullptr) ==
                  (options_.dynamic_graph == nullptr),
              "mutations and dynamic_graph must be set together");
  NAV_REQUIRE(options_.mutate_every >= 1, "mutate_every must be >= 1");
}

WorkloadReport TrafficDriver::run(Rng rng) {
  NAV_OBS_SPAN("traffic.run", "batches",
               static_cast<double>(options_.batches));
  // Registered against the SERVICE's registry (not necessarily the default
  // one), so a scrape of the service sees its demand and its admissions side
  // by side. counter()/histogram() dedup by name, so repeat runs share
  // handles.
  obs::Registry& reg = service_.metrics();
  obs::Counter batches_submitted = reg.counter("traffic.batches_submitted");
  obs::Counter pairs_submitted = reg.counter("traffic.pairs_submitted");
  obs::Counter pairs_admitted = reg.counter("traffic.pairs_admitted");
  obs::Counter pairs_shed = reg.counter("traffic.pairs_shed");
  obs::Counter pairs_rejected = reg.counter("traffic.pairs_rejected");
  obs::Counter pairs_failed = reg.counter("traffic.pairs_failed");
  obs::Counter mutation_steps = reg.counter("traffic.mutation_steps");
  obs::Counter mutation_events = reg.counter("traffic.mutation_events");
  obs::HistogramHandle sojourn_hist =
      reg.histogram("traffic.sojourn_ms", 0.0, 1000.0, 50);

  WorkloadReport report;
  report.workload = workload_.name();
  report.schedule = schedule_.spec;
  // Snapshot so the report attributes only THIS run's admissions to itself
  // even when the service is shared across driver runs (bench_e12 reuses
  // one service per scheme).
  const api::QueueStats before = service_.queue_stats();
  const std::size_t vsojourns_before = service_.virtual_sojourns().size();
  const auto arrivals =
      schedule_.arrival_times(options_.batches, rng.child(0xA881));
  Rng gen_rng = rng.child(0x6e4);

  // Submission phase: generate and submit in arrival order, never waiting on
  // completions (open loop). Bounded admission may still block inside
  // submit() — that is the backpressure under test, not a closed loop.
  // With a MutationStream configured the loop CLOSES: each batch is
  // collected right after submission so the graph is quiescent at every
  // mutation point. The demand/routing streams are identical either way.
  const bool mutating = options_.mutations != nullptr;
  Rng mutation_rng = rng.child(0xD71);  // dedicated subtree, like 0xB47
  std::vector<std::future<std::vector<routing::RouteResult>>> futures;
  std::vector<double> submitted_at(options_.batches, 0.0);
  futures.reserve(options_.batches);
  report.batches.reserve(options_.batches);
  std::vector<double> hops, stretch, sojourn_ms;
  if (options_.keep_results) report.results.resize(options_.batches);
  Timer wall;

  // Collects batch b's future into the report (FIFO completion order).
  const auto collect = [&](std::size_t b) {
    try {
      auto results = futures[b].get();
      report.batches[b].sojourn_seconds = wall.seconds() - submitted_at[b];
      sojourn_ms.push_back(report.batches[b].sojourn_seconds * 1e3);
      sojourn_hist.observe(report.batches[b].sojourn_seconds * 1e3);
      report.pairs_admitted += results.size();
      pairs_admitted.inc(results.size());
      for (const auto& result : results) {
        if (!result.reached) {
          ++report.pairs_unreached;
          continue;  // no hops/stretch sample from a non-route
        }
        hops.push_back(static_cast<double>(result.steps));
        if (result.initial_distance >= 1) {
          stretch.push_back(static_cast<double>(result.steps) /
                            static_cast<double>(result.initial_distance));
        }
      }
      if (options_.keep_results) report.results[b] = std::move(results);
    } catch (const api::ShedError& e) {
      report.batches[b].sojourn_seconds = wall.seconds() - submitted_at[b];
      if (e.reason() == api::ShedError::Reason::kRejected) {
        report.batches[b].rejected = true;
        report.pairs_rejected += report.batches[b].pairs;
        pairs_rejected.inc(report.batches[b].pairs);
      } else {
        report.batches[b].shed = true;
        report.pairs_shed += report.batches[b].pairs;
        pairs_shed.inc(report.batches[b].pairs);
      }
    } catch (const std::exception&) {
      // A batch that failed routing (e.g. an out-of-range endpoint from a
      // custom Workload) must not abandon the rest of the run: the report
      // keeps every other batch and accounts this one as failed.
      report.batches[b].failed = true;
      report.batches[b].sojourn_seconds = wall.seconds() - submitted_at[b];
      report.pairs_failed += report.batches[b].pairs;
      pairs_failed.inc(report.batches[b].pairs);
    }
  };

  for (std::size_t b = 0; b < options_.batches; ++b) {
    auto pairs = workload_.batch(options_.batch_size, gen_rng);
    if (options_.pace) {
      while (wall.seconds() < arrivals[b]) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            std::min(arrivals[b] - wall.seconds(), 0.01)));
      }
    }
    BatchTrace trace;
    trace.index = b;
    trace.arrival_vtime = arrivals[b];
    trace.pairs = pairs.size();
    trace.queued_pairs_at_submit = service_.queue_stats().queued_pairs;
    report.pairs_submitted += pairs.size();
    batches_submitted.inc();
    pairs_submitted.inc(pairs.size());
    submitted_at[b] = wall.seconds();
    // Routing streams live in their own subtree (0xB47) so no batch index
    // can collide with the generation (0x6e4) or arrival (0xA881) streams.
    // The virtual arrival time rides along: the service only evaluates it
    // when its own virtual_pair_cost_seconds opts in (deterministic Shed /
    // Adaptive); otherwise the submit is identical to the vtime-free one.
    futures.push_back(service_.submit(std::move(pairs),
                                      rng.child(0xB47).child(b), arrivals[b]));
    report.batches.push_back(trace);
    if (mutating) {
      collect(b);  // drain before any mutation may touch the graph
      if ((b + 1) % options_.mutate_every == 0 && b + 1 < options_.batches) {
        const auto events =
            options_.mutations->step(*options_.dynamic_graph, mutation_rng);
        const dynamic::MutationDelta delta =
            options_.dynamic_graph->apply(events);
        ++report.mutation_steps;
        report.mutation_events += delta.events.size();
        mutation_steps.inc();
        mutation_events.inc(delta.events.size());
      }
    }
  }

  // Collection phase: batches complete FIFO, so waiting in submission order
  // observes each completion promptly. (Closed-loop runs collected inline.)
  if (!mutating) {
    for (std::size_t b = 0; b < options_.batches; ++b) collect(b);
  }
  if (options_.dynamic_graph != nullptr) {
    report.final_epoch = options_.dynamic_graph->epoch();
  }
  report.seconds = wall.seconds();
  report.hops = summarize(std::move(hops));
  report.stretch = summarize(std::move(stretch));
  report.sojourn_ms = summarize(std::move(sojourn_ms));
  report.queue = service_.queue_stats();
  // Cumulative counters become this-run deltas; the live gauges
  // (queued_*) and peak_queued_pairs stay as the service reports them —
  // the peak is a service-lifetime high-water mark by definition.
  report.queue.submitted_batches -= before.submitted_batches;
  report.queue.submitted_pairs -= before.submitted_pairs;
  report.queue.executed_batches -= before.executed_batches;
  report.queue.shed_batches -= before.shed_batches;
  report.queue.shed_pairs -= before.shed_pairs;
  report.queue.rejected_batches -= before.rejected_batches;
  report.queue.rejected_pairs -= before.rejected_pairs;
  report.queue.blocked_submits -= before.blocked_submits;
  report.queue.retries -= before.retries;
  report.queue.fallback_pairs -= before.fallback_pairs;
  report.queue.deadline_breaches -= before.deadline_breaches;
  report.queue.degraded_pairs -= before.degraded_pairs;
  report.queue.failed_pairs -= before.failed_pairs;
  report.queue.slo_breaches -= before.slo_breaches;

  // Adaptive-run summary: deterministic virtual sojourns of the batches
  // this run actually served, and the strict p99-vs-SLO verdict.
  const auto& admission = service_.options().admission;
  if (admission.kind == api::AdmissionPolicy::Kind::kAdaptive &&
      service_.options().virtual_pair_cost_seconds > 0.0) {
    report.adaptive = true;
    report.slo_seconds = admission.slo_seconds;
    const auto vsojourns = service_.virtual_sojourns();
    std::vector<double> run_v_ms;
    run_v_ms.reserve(vsojourns.size() - vsojourns_before);
    for (std::size_t i = vsojourns_before; i < vsojourns.size(); ++i) {
      run_v_ms.push_back(vsojourns[i] * 1e3);
    }
    report.sojourn_v_ms = summarize(std::move(run_v_ms));
    report.slo_breaches = report.queue.slo_breaches;
    report.p99_under_slo =
        report.sojourn_v_ms.p99 <= report.slo_seconds * 1e3;
    report.adaptive_window_pairs = report.queue.adaptive_window_pairs;
  }
  return report;
}

Table WorkloadReport::table() const {
  Table out({"batch", "vtime", "pairs", "depth@submit", "sojourn ms",
             "status"});
  for (const auto& b : batches) {
    out.add_row({Table::integer(b.index), Table::num(b.arrival_vtime, 3),
                 Table::integer(b.pairs),
                 Table::integer(b.queued_pairs_at_submit),
                 Table::num(b.sojourn_seconds * 1e3, 2),
                 b.shed ? "shed"
                        : (b.rejected ? "rejected"
                                      : (b.failed ? "failed" : "ok"))});
  }
  return out;
}

api::Record WorkloadReport::record() const {
  const double routes_per_sec =
      static_cast<double>(pairs_admitted) / std::max(seconds, 1e-9);
  api::Record row = {
      {"workload", workload},
      {"schedule", schedule},
      {"batches", static_cast<std::uint64_t>(batches.size())},
      {"pairs_submitted", static_cast<std::uint64_t>(pairs_submitted)},
      {"pairs_admitted", static_cast<std::uint64_t>(pairs_admitted)},
      {"pairs_shed", static_cast<std::uint64_t>(pairs_shed)},
      {"pairs_failed", static_cast<std::uint64_t>(pairs_failed)},
      {"hops_mean", hops.mean},
      {"hops_p50", hops.p50},
      {"hops_p95", hops.p95},
      {"hops_p99", hops.p99},
      {"hops_max", hops.max},
      {"stretch_p50", stretch.p50},
      {"stretch_p95", stretch.p95},
      {"stretch_p99", stretch.p99},
      {"sojourn_ms_p50", sojourn_ms.p50},
      {"sojourn_ms_p95", sojourn_ms.p95},
      {"sojourn_ms_p99", sojourn_ms.p99},
      {"peak_queued_pairs", static_cast<std::uint64_t>(queue.peak_queued_pairs)},
      {"blocked_submits", static_cast<std::uint64_t>(queue.blocked_submits)},
      {"seconds", seconds},
      {"routes_per_sec", routes_per_sec},
  };
  // Adaptive fields are appended ONLY for adaptive runs: the static schema
  // above — and every golden pinned to it — stays byte-identical when the
  // controller is off. sojourn_v_* and p99_under_slo are virtual-time
  // numbers, hence STRICT under golden comparison (unlike sojourn_ms_*).
  if (adaptive) {
    row.push_back({"pairs_rejected", static_cast<std::uint64_t>(pairs_rejected)});
    row.push_back({"slo_ms", slo_seconds * 1e3});
    row.push_back({"sojourn_v_ms_p50", sojourn_v_ms.p50});
    row.push_back({"sojourn_v_ms_p95", sojourn_v_ms.p95});
    row.push_back({"sojourn_v_ms_p99", sojourn_v_ms.p99});
    row.push_back({"slo_breaches", static_cast<std::uint64_t>(slo_breaches)});
    row.push_back(
        {"p99_under_slo", static_cast<std::uint64_t>(p99_under_slo ? 1 : 0)});
    row.push_back({"adaptive_window_pairs",
                   static_cast<std::uint64_t>(adaptive_window_pairs)});
  }
  return row;
}

}  // namespace nav::workload
