#include "workload/workload.hpp"

#include <cmath>
#include <fstream>
#include <numeric>
#include <stdexcept>

#include "api/result_sink.hpp"
#include "graph/bfs.hpp"
#include "graph/bfs_engine.hpp"
#include "graph/diameter.hpp"
#include "runtime/assert.hpp"
#include "runtime/discrete_distribution.hpp"
#include "runtime/parse.hpp"

namespace nav::workload {

namespace {

using graph::NodeId;

/// s, t uniform with s != t. The draw order (s first, then t, redrawing both
/// on collision) matches routing::select_trial_pairs exactly, which the test
/// suite pins: an existing bench rerun under the uniform workload sees the
/// same pairs bit for bit.
class UniformWorkload final : public Workload {
 public:
  explicit UniformWorkload(const graph::Graph& g) : n_(g.num_nodes()) {
    NAV_REQUIRE(n_ >= 2, "workload needs n >= 2");
  }

  [[nodiscard]] std::string name() const override { return "uniform"; }

  [[nodiscard]] Pair next(Rng& rng) override {
    while (true) {
      const auto s = static_cast<NodeId>(random_index(rng, n_));
      const auto t = static_cast<NodeId>(random_index(rng, n_));
      if (s != t) return {s, t};
    }
  }

 private:
  NodeId n_;
};

/// Zipf-popular targets: target ranks follow p(rank) ∝ (rank + 1)^(-s) over
/// a construction-time random permutation of the nodes (so the hot targets
/// are arbitrary nodes, not low ids); sources uniform.
class ZipfWorkload final : public Workload {
 public:
  ZipfWorkload(std::string spec, const graph::Graph& g, double exponent,
               Rng rng)
      : spec_(std::move(spec)),
        n_(g.num_nodes()),
        by_rank_(n_),
        dist_(zipf_weights(n_, exponent)) {
    NAV_REQUIRE(n_ >= 2, "workload needs n >= 2");
    NAV_REQUIRE(exponent >= 0.0, "zipf exponent must be >= 0");
    std::iota(by_rank_.begin(), by_rank_.end(), NodeId{0});
    for (NodeId i = n_; i > 1; --i) {  // Fisher-Yates over popularity ranks
      const auto j = static_cast<NodeId>(random_index(rng, i));
      std::swap(by_rank_[i - 1], by_rank_[j]);
    }
  }

  [[nodiscard]] std::string name() const override { return spec_; }

  [[nodiscard]] Pair next(Rng& rng) override {
    while (true) {
      const auto s = static_cast<NodeId>(random_index(rng, n_));
      const auto t = by_rank_[dist_.sample(rng)];
      if (s != t) return {s, t};
    }
  }

 private:
  static std::vector<double> zipf_weights(NodeId n, double exponent) {
    std::vector<double> weights(n);
    for (NodeId r = 0; r < n; ++r) {
      weights[r] = 1.0 / std::pow(static_cast<double>(r) + 1.0, exponent);
    }
    return weights;
  }

  std::string spec_;
  NodeId n_;
  std::vector<NodeId> by_rank_;  // by_rank_[r] = the rank-r popular node
  DiscreteDistribution dist_;
};

/// Locality-biased demand: s uniform, t uniform in B(s, radius) \ {s}.
/// Sources whose radius-ball is just themselves are redrawn (can't happen on
/// a connected graph with radius >= 1, but isolated nodes stay safe).
class LocalWorkload final : public Workload {
 public:
  LocalWorkload(std::string spec, const graph::Graph& g, graph::Dist radius)
      : spec_(std::move(spec)), graph_(g), radius_(radius) {
    NAV_REQUIRE(g.num_nodes() >= 2, "workload needs n >= 2");
    NAV_REQUIRE(radius >= 1, "local workload needs radius >= 1");
  }

  [[nodiscard]] std::string name() const override { return spec_; }

  [[nodiscard]] Pair next(Rng& rng) override {
    // The engine's epoch-stamped ball kernel costs O(|ball|) per draw, so
    // small-radius demand never pays an O(n) reset (the reason this class
    // used to carry its own stamped scratch).
    auto& ws = graph::local_bfs_workspace();
    while (true) {
      const auto s = static_cast<NodeId>(random_index(rng, graph_.num_nodes()));
      const auto members = ws.ball(graph_, s, radius_).order;
      if (members.size() < 2) continue;  // isolated within the radius
      // members is in BFS (distance, id) order with s first; skip it.
      const auto pick = 1 + random_index(rng, members.size() - 1);
      return {s, members[pick]};
    }
  }

 private:
  std::string spec_;
  const graph::Graph& graph_;
  graph::Dist radius_;
};

/// Far pairs by construction: s uniform, t whichever double-sweep peripheral
/// endpoint lies farther from s — every pair's distance is at least half the
/// diameter lower bound, the regime where the sqrt(n)-barrier bites.
class AdversarialWorkload final : public Workload {
 public:
  explicit AdversarialWorkload(const graph::Graph& g) : n_(g.num_nodes()) {
    NAV_REQUIRE(n_ >= 2, "workload needs n >= 2");
    const auto peripheral = graph::peripheral_pair(g);
    a_ = peripheral.a;
    b_ = peripheral.b;
    dist_a_ = graph::bfs_distances(g, a_);
    dist_b_ = graph::bfs_distances(g, b_);
  }

  [[nodiscard]] std::string name() const override { return "adversarial"; }

  [[nodiscard]] Pair next(Rng& rng) override {
    while (true) {
      const auto s = static_cast<NodeId>(random_index(rng, n_));
      NodeId t = dist_a_[s] >= dist_b_[s] ? a_ : b_;
      if (s == t) t = (t == a_) ? b_ : a_;
      if (s != t) return {s, t};
    }
  }

 private:
  NodeId n_;
  NodeId a_ = 0, b_ = 0;
  std::vector<graph::Dist> dist_a_, dist_b_;
};

/// k hot targets absorb probability p; the rest of the demand is uniform.
/// The hot set is fixed at construction from the registry rng.
class HotsetWorkload final : public Workload {
 public:
  HotsetWorkload(std::string spec, const graph::Graph& g, std::size_t k,
                 double p, Rng rng)
      : spec_(std::move(spec)), n_(g.num_nodes()), p_(p) {
    NAV_REQUIRE(n_ >= 2, "workload needs n >= 2");
    NAV_REQUIRE(k >= 1 && k <= n_, "hotset size must be in [1, n]");
    NAV_REQUIRE(p >= 0.0 && p <= 1.0, "hotset probability must be in [0, 1]");
    std::vector<bool> taken(n_, false);
    while (hot_.size() < k) {  // rejection keeps the k targets distinct
      const auto t = static_cast<NodeId>(random_index(rng, n_));
      if (taken[t]) continue;
      taken[t] = true;
      hot_.push_back(t);
    }
  }

  [[nodiscard]] std::string name() const override { return spec_; }

  [[nodiscard]] Pair next(Rng& rng) override {
    while (true) {
      const auto s = static_cast<NodeId>(random_index(rng, n_));
      const NodeId t = rng.next_bool(p_)
                           ? hot_[random_index(rng, hot_.size())]
                           : static_cast<NodeId>(random_index(rng, n_));
      if (s != t) return {s, t};
    }
  }

 private:
  std::string spec_;
  NodeId n_;
  double p_;
  std::vector<NodeId> hot_;
};

/// Replays a recorded trace, cycling when the demand outlives it. Pure
/// replay: next() ignores the rng entirely.
class TraceWorkload final : public Workload {
 public:
  TraceWorkload(const graph::Graph& g, std::string path)
      : path_(std::move(path)), pairs_(load_trace(path_)) {
    NAV_REQUIRE(!pairs_.empty(), "empty workload trace: " + path_);
    for (const auto& [s, t] : pairs_) {
      NAV_REQUIRE(s < g.num_nodes() && t < g.num_nodes(),
                  "trace pair endpoint out of range: " + path_);
      NAV_REQUIRE(s != t, "trace pair with source == target: " + path_);
    }
  }

  [[nodiscard]] std::string name() const override { return "trace:" + path_; }

  [[nodiscard]] Pair next(Rng& /*rng*/) override {
    const Pair pair = pairs_[position_];
    position_ = (position_ + 1) % pairs_.size();
    return pair;
  }

  void reset() override { position_ = 0; }

 private:
  std::string path_;
  std::vector<Pair> pairs_;
  std::size_t position_ = 0;
};

}  // namespace

std::vector<Pair> Workload::batch(std::size_t count, Rng& rng) {
  std::vector<Pair> pairs;
  pairs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) pairs.push_back(next(rng));
  return pairs;
}

WorkloadPtr make_workload(const std::string& spec, const graph::Graph& g,
                          Rng rng) {
  const auto tokens = split_spec(spec);
  const std::string& kind = tokens.front();
  const auto expect_args = [&](std::size_t count) {
    if (tokens.size() != count + 1) {
      throw std::invalid_argument("workload spec '" + kind + "' takes " +
                                  std::to_string(count) +
                                  " argument(s): " + spec);
    }
  };
  if (kind == "uniform") {
    expect_args(0);
    return std::make_unique<UniformWorkload>(g);
  }
  if (kind == "zipf") {
    expect_args(1);
    return std::make_unique<ZipfWorkload>(
        spec, g, parse_spec_number<double>(tokens[1], spec), rng);
  }
  if (kind == "local") {
    expect_args(1);
    return std::make_unique<LocalWorkload>(
        spec, g, parse_spec_number<graph::Dist>(tokens[1], spec));
  }
  if (kind == "adversarial") {
    expect_args(0);
    return std::make_unique<AdversarialWorkload>(g);
  }
  if (kind == "hotset") {
    expect_args(2);
    return std::make_unique<HotsetWorkload>(
        spec, g, parse_spec_number<std::size_t>(tokens[1], spec),
        parse_spec_number<double>(tokens[2], spec), rng);
  }
  if (kind == "trace") {
    // The path may itself contain ':' — take everything after the prefix.
    if (tokens.size() < 2 || spec.size() <= 6) {
      throw std::invalid_argument("trace workload needs a path: " + spec);
    }
    return std::make_unique<TraceWorkload>(g, spec.substr(6));
  }
  throw std::invalid_argument("unknown workload spec: " + spec);
}

const std::vector<WorkloadInfo>& workload_catalog() {
  static const std::vector<WorkloadInfo> catalog = {
      {"uniform", "s, t uniform with s != t (the paper's demand; reproduces "
                  "select_trial_pairs draws exactly)"},
      {"zipf:<s>", "Zipf(s)-popular targets over a random popularity "
                   "permutation; sources uniform"},
      {"local:<r>", "s uniform, t uniform in B(s, r) \\ {s} — short-range "
                    "demand"},
      {"adversarial", "s uniform, t the farther double-sweep peripheral "
                      "endpoint — far pairs by construction"},
      {"hotset:<k>:<p>", "k fixed hot targets absorb probability p; the rest "
                         "of the demand is uniform"},
      {"trace:<path>", "replay a JSONL trace of {\"s\":..,\"t\":..} records, "
                       "cycling when exhausted"},
  };
  return catalog;
}

std::vector<std::string> standard_workload_specs() {
  return {"uniform", "zipf:1.1", "local:8", "adversarial", "hotset:8:0.9"};
}

void save_trace(const std::string& path, const std::vector<Pair>& pairs) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open trace for write: " + path);
  for (const auto& [s, t] : pairs) {
    out << api::to_json_line({{"s", static_cast<std::uint64_t>(s)},
                              {"t", static_cast<std::uint64_t>(t)}})
        << '\n';
  }
  if (!out) throw std::runtime_error("failed writing trace: " + path);
}

std::vector<Pair> load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace: " + path);
  std::vector<Pair> pairs;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;  // graph_io-style comments
    const auto record = api::parse_json_line(line);
    const auto field = [&](const char* key) -> graph::NodeId {
      for (const auto& f : record) {
        if (f.key == key) {
          if (const auto* v = std::get_if<std::uint64_t>(&f.value)) {
            return static_cast<graph::NodeId>(*v);
          }
          throw std::invalid_argument(path + ":" +
                                      std::to_string(line_number) +
                                      ": trace field '" + key +
                                      "' must be an unsigned integer");
        }
      }
      throw std::invalid_argument(path + ":" + std::to_string(line_number) +
                                  ": trace record missing field '" + key +
                                  "'");
    };
    pairs.emplace_back(field("s"), field("t"));
  }
  return pairs;
}

}  // namespace nav::workload
