// workload.hpp — demand models: who routes to whom.
//
// The paper evaluates augmentation schemes on uniform random (s, t) pairs,
// but navigability is sensitive to the demand distribution (Achlioptas &
// Siminelakis, "Navigability is a Robust Property"), and a routing service
// sees skewed, bursty, locality-biased traffic — not uniform draws. A
// Workload is a deterministic pair generator: given a graph at construction
// and an Rng at draw time, it yields (source, target) pairs; everything
// downstream (TrafficDriver, bench_e12_workload, the Experiment workload
// axis) consumes pairs through this one interface.
//
// Registry specs (make_workload):
//   "uniform"          s, t uniform, s != t — draw-for-draw identical to
//                      routing::select_trial_pairs under PairPolicy::kRandom
//                      (asserted by test), so uniform workloads reproduce
//                      every existing bench's pair stream.
//   "zipf:<s>"         Zipf-popular targets with exponent s over a random
//                      popularity permutation of the nodes; sources uniform.
//                      The skewed-demand case target-sharded prefetch
//                      (api::RouteService) was built for.
//   "local:<r>"        s uniform, t uniform in B(s, r) \ {s}: short-range
//                      demand. Contrast with uniform stresses the far-pair
//                      regime where the sqrt(n)-barrier bites.
//   "adversarial"      far pairs by construction: s uniform, t the farther
//                      of the two double-sweep peripheral endpoints.
//   "hotset:<k>:<p>"   k hot targets (chosen at construction) absorb
//                      probability p; the rest of the demand is uniform.
//   "trace:<path>"     replay of a recorded JSONL trace (one {"s":..,"t":..}
//                      object per line; save_trace/load_trace round-trip),
//                      cycled when the trace is shorter than the demand.
//
// Determinism: a workload's construction randomness (hot sets, popularity
// permutations) comes from the Rng passed to make_workload; draw randomness
// comes from the Rng passed to next()/batch(). Same seeds, same pairs —
// independent of thread count, because generation is always sequential.
#pragma once

/// \file
/// \brief Workload: deterministic (source, target) demand generators behind
/// a registry (uniform / zipf / local / adversarial / hotset / trace).

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/rng.hpp"

namespace nav::workload {

/// One demand unit: route from `first` to `second`.
using Pair = std::pair<graph::NodeId, graph::NodeId>;

/// A deterministic (source, target) pair generator over one graph. Stateful
/// only where the model demands it (trace replay position); all randomness
/// comes from the caller's Rng, so one seed pins the full demand stream.
class Workload {
 public:
  virtual ~Workload() = default;  ///< Workloads are deleted through the base.

  /// The registry spec this workload was built from (tables, jsonl rows).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Draws the next (source, target) pair; source != target.
  [[nodiscard]] virtual Pair next(Rng& rng) = 0;

  /// Rewinds internal replay state (trace position). Stateless generators
  /// are no-ops. Lets one constructed workload serve many grid cells with
  /// identical demand — the Experiment axis resets before every cell
  /// instead of reconstructing (adversarial pays BFS sweeps, trace rereads
  /// its file).
  virtual void reset() {}

  /// Draws `count` pairs by repeated next() — the batch shape TrafficDriver
  /// and the Experiment workload axis consume.
  [[nodiscard]] std::vector<Pair> batch(std::size_t count, Rng& rng);
};

/// Owning handle for registry-built workloads.
using WorkloadPtr = std::unique_ptr<Workload>;

/// Builds the workload for `spec` over g (which must outlive the workload).
/// `rng` seeds construction-time randomness only (hot-set choice, zipf
/// popularity permutation); uniform/local/adversarial/trace ignore it.
/// Throws std::invalid_argument on unknown or malformed specs.
[[nodiscard]] WorkloadPtr make_workload(const std::string& spec,
                                        const graph::Graph& g, Rng rng);

/// One registry entry: spec template plus a one-line description.
struct WorkloadInfo {
  std::string spec;         ///< spec template, e.g. "zipf:<s>"
  std::string description;  ///< what demand it models
};

/// The registry contents, in stable order (docs, --help text).
[[nodiscard]] const std::vector<WorkloadInfo>& workload_catalog();

/// All concrete specs suitable for a cross-workload comparison sweep.
[[nodiscard]] std::vector<std::string> standard_workload_specs();

/// Writes pairs as a JSONL trace ({"s": ..., "t": ...} per line) that
/// "trace:<path>" replays. Throws std::runtime_error on I/O failure.
void save_trace(const std::string& path, const std::vector<Pair>& pairs);

/// Parses a JSONL trace file. Throws std::runtime_error when the file can't
/// be opened and std::invalid_argument on malformed lines.
[[nodiscard]] std::vector<Pair> load_trace(const std::string& path);

}  // namespace nav::workload
