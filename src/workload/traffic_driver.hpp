// traffic_driver.hpp — open-loop load driving for api::RouteService.
//
// A Workload says WHO routes to whom; the TrafficDriver adds WHEN. It turns
// a workload into an arrival process of batches, feeds them to a
// RouteService through submit() without waiting for completions (open loop —
// demand does not slow down when the service falls behind, which is exactly
// when queues grow and admission policies earn their keep), and distils the
// run into a WorkloadReport: per-batch queue depth and sojourn, and
// p50/p95/p99 summaries of hops, stretch, and latency via runtime/stats.
//
// Arrival schedules are deterministic virtual-time sequences:
//   "poisson:<rate>"      exponential inter-arrival gaps at `rate` batches
//                         per virtual second, drawn from the run's Rng;
//   "burst:<size>:<gap>"  groups of `size` simultaneous batches separated by
//                         `gap` virtual seconds — the saturating shape that
//                         drives a Bounded/Shed queue into its limits.
// By default the driver floods: batches are submitted back-to-back in
// arrival order and the virtual times only annotate the report. With
// `pace = true` it sleeps to align wall clock with virtual time (demos).
//
// Determinism: batch b's routing stream is rng.child(0xB47).child(b) (a
// dedicated subtree, collision-free with the other streams at any batch
// count) and pair generation consumes rng.child(0x6e4) sequentially, so
// every admitted batch routes bit-identically to
// `service.route_batch(workload.batch(size, g), rng.child(0xB47).child(b))`
// — asserted by the test suite. Queue depths and sojourn times are
// wall-clock observations and are NOT deterministic; everything about the
// demand and the routes is.
#pragma once

/// \file
/// \brief TrafficDriver: admission-controlled open-loop load driving of
/// RouteService under a Workload, with a quantile-summarised WorkloadReport.

#include <cstdint>
#include <string>
#include <vector>

#include "api/result_sink.hpp"
#include "api/route_service.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/mutation_stream.hpp"
#include "runtime/stats.hpp"
#include "runtime/table.hpp"
#include "workload/workload.hpp"

namespace nav::workload {

/// Deterministic virtual-time arrival process for batches.
struct ArrivalSchedule {
  /// Process shape.
  enum class Kind : std::uint8_t {
    kPoisson,  ///< exponential gaps (memoryless open-loop arrivals)
    kBurst     ///< groups of simultaneous arrivals separated by a fixed gap
  };
  Kind kind = Kind::kBurst;     ///< selected shape
  double rate = 1.0;            ///< kPoisson: batches per virtual second
  std::size_t burst_size = 1;   ///< kBurst: batches per burst
  double gap_seconds = 0.0;     ///< kBurst: gap between bursts
  std::string spec = "burst:1:0";  ///< the text this schedule was parsed from

  /// Parses "poisson:<rate>" / "burst:<size>:<gap>"; throws
  /// std::invalid_argument on unknown or malformed specs.
  [[nodiscard]] static ArrivalSchedule parse(const std::string& spec);

  /// The first `count` virtual arrival times (seconds, non-decreasing).
  /// Poisson gaps draw from `rng`; burst times are rng-free.
  [[nodiscard]] std::vector<double> arrival_times(std::size_t count,
                                                  Rng rng) const;
};

/// Shape of one TrafficDriver run.
struct TrafficOptions {
  std::string schedule = "burst:4:0.0";  ///< ArrivalSchedule::parse spec
  std::size_t batches = 16;              ///< batches to submit
  std::size_t batch_size = 64;           ///< pairs per batch
  /// Sleep so wall-clock submission tracks the virtual arrival times
  /// (demos); false floods the queue in arrival order (benches, tests).
  bool pace = false;
  /// Retain every admitted batch's RouteResults in the report (tests that
  /// check bit-identity; costs memory on big runs).
  bool keep_results = false;

  // ---- dynamic-graph interleaving (both pointers set together) -----------
  /// The versioned graph the service routes over; mutations apply here.
  dynamic::DynamicGraph* dynamic_graph = nullptr;
  /// Perturbation process stepped between batches. Setting it switches the
  /// driver to a CLOSED loop: each batch's future is collected before the
  /// next mutation point, so no route ever runs concurrently with a CSR
  /// rebuild (the DynamicGraph quiescence contract). The demand and routing
  /// streams are unchanged — a mutation-free stream (e.g. "churn:0")
  /// reproduces the open-loop routes bit for bit.
  dynamic::MutationStream* mutations = nullptr;
  /// Apply one stream step after every `mutate_every` collected batches.
  std::size_t mutate_every = 1;
};

/// One submitted batch as the driver saw it.
struct BatchTrace {
  std::size_t index = 0;                 ///< submission order
  double arrival_vtime = 0.0;            ///< virtual arrival time (seconds)
  std::size_t pairs = 0;                 ///< pairs in the batch
  std::size_t queued_pairs_at_submit = 0;  ///< queue depth seen at submit
  double sojourn_seconds = 0.0;          ///< wall submit -> future ready
  bool shed = false;                     ///< aged out by Shed admission
  bool rejected = false;                 ///< refused by the Adaptive window
  /// Failed in routing (its future carried a non-shed exception, e.g. an
  /// out-of-range endpoint from a custom Workload). The run continues.
  bool failed = false;
};

/// The distilled run: per-batch traces plus quantile summaries.
struct WorkloadReport {
  std::string workload;   ///< Workload::name()
  std::string schedule;   ///< arrival spec
  std::vector<BatchTrace> batches;  ///< per-batch traces, submission order

  std::size_t pairs_submitted = 0;  ///< total pairs handed to submit()
  std::size_t pairs_admitted = 0;   ///< pairs whose batch executed
  std::size_t pairs_shed = 0;       ///< pairs whose batch aged out (Shed)
  std::size_t pairs_rejected = 0;   ///< pairs refused by Adaptive admission
  std::size_t pairs_failed = 0;     ///< pairs whose batch failed routing

  QuantileSummary hops;        ///< steps per admitted route
  QuantileSummary stretch;     ///< steps / dist(s, t) (distance >= 1 routes)
  QuantileSummary sojourn_ms;  ///< per-batch queue+execute latency, ms

  /// Admission counters attributed to this run: cumulative fields are
  /// deltas against the service's state when run() started; the live
  /// gauges and peak_queued_pairs remain service-lifetime values.
  api::QueueStats queue;
  double seconds = 0.0;  ///< wall clock, first submit to last completion

  // ---- dynamic-run observations (not part of record(): the jsonl row and
  // its goldens are the static schema) --------------------------------------
  std::size_t mutation_steps = 0;   ///< stream steps applied this run
  std::size_t mutation_events = 0;  ///< effective edge events across them
  std::uint64_t final_epoch = 0;    ///< graph epoch when the run ended
  /// Admitted routes reported unreached (needs the service's
  /// tolerate_unreachable; always 0 on a static connected graph).
  std::size_t pairs_unreached = 0;

  // ---- adaptive-admission observations (appended to record() ONLY when
  // adaptive is true, so the static jsonl schema — and its goldens — stay
  // byte-identical for every non-adaptive run) ------------------------------
  /// True when the service ran AdmissionPolicy::kAdaptive in virtual time.
  bool adaptive = false;
  double slo_seconds = 0.0;        ///< the controller's target
  /// Virtual sojourns of THIS run's served batches, milliseconds.
  /// Deterministic (virtual time), unlike sojourn_ms.
  QuantileSummary sojourn_v_ms;
  std::size_t slo_breaches = 0;    ///< served batches over the SLO this run
  /// The strict acceptance metric: p99 virtual sojourn within the SLO.
  bool p99_under_slo = false;
  /// The controller's window when the run ended (live value).
  std::size_t adaptive_window_pairs = 0;

  /// Admitted batches' results (submission order), only when
  /// TrafficOptions::keep_results was set; shed batches leave empty slots.
  std::vector<std::vector<routing::RouteResult>> results;

  /// Per-batch rendering: batch | vtime | pairs | depth | sojourn | status.
  [[nodiscard]] Table table() const;

  /// One flat summary row (jsonl trajectories: bench_e12_workload). Counts
  /// and hop/stretch quantiles are seed-deterministic; sojourn quantiles,
  /// seconds, routes_per_sec, and queue-depth fields are wall-clock
  /// observations (golden tests mask them).
  [[nodiscard]] api::Record record() const;
};

/// Feeds workload batches into a RouteService as an open-loop arrival
/// process. The service and workload must outlive the driver; the service's
/// own RouteServiceOptions::admission decides what happens when the driver
/// outruns it.
class TrafficDriver {
 public:
  /// Binds driver to service + workload. Throws on a malformed schedule
  /// spec or zero batches/batch_size.
  TrafficDriver(api::RouteService& service, Workload& workload,
                TrafficOptions options = {});

  /// Runs the full arrival process and waits for every future. One rng pins
  /// the demand (see header comment for the stream layout).
  [[nodiscard]] WorkloadReport run(Rng rng);

 private:
  api::RouteService& service_;
  Workload& workload_;
  TrafficOptions options_;
  ArrivalSchedule schedule_;
};

}  // namespace nav::workload
