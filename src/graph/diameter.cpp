#include "graph/diameter.hpp"

#include <algorithm>

#include "graph/bfs_engine.hpp"
#include "graph/connectivity.hpp"
#include "runtime/thread_pool.hpp"

namespace nav::graph {

std::vector<Dist> eccentricities(const Graph& g) {
  std::vector<Dist> ecc(g.num_nodes(), 0);
  nav::parallel_for(0, g.num_nodes(), [&](std::size_t u) {
    // Workspace kernel: no per-source distance array at all — the BFS level
    // count is the within-component eccentricity.
    ecc[u] = local_bfs_workspace().eccentricity(g, static_cast<NodeId>(u));
  });
  return ecc;
}

Dist exact_diameter(const Graph& g) {
  if (g.num_nodes() <= 1) return 0;
  NAV_REQUIRE(is_connected(g), "exact_diameter requires a connected graph");
  const auto ecc = eccentricities(g);
  return *std::max_element(ecc.begin(), ecc.end());
}

Dist double_sweep_lower_bound(const Graph& g) { return peripheral_pair(g).distance; }

NodePair peripheral_pair(const Graph& g) {
  NAV_REQUIRE(g.num_nodes() >= 1, "peripheral_pair on empty graph");
  const auto first = farthest_node(g, 0);
  const auto second = farthest_node(g, first.node);
  return {first.node, second.node, second.distance};
}

}  // namespace nav::graph
