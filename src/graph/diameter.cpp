#include "graph/diameter.hpp"

#include <algorithm>

#include "graph/connectivity.hpp"
#include "runtime/thread_pool.hpp"

namespace nav::graph {

std::vector<Dist> eccentricities(const Graph& g) {
  std::vector<Dist> ecc(g.num_nodes(), 0);
  nav::parallel_for(0, g.num_nodes(), [&](std::size_t u) {
    const auto dist = bfs_distances(g, static_cast<NodeId>(u));
    Dist e = 0;
    for (const Dist d : dist) {
      if (d != kInfDist) e = std::max(e, d);  // within-component eccentricity
    }
    ecc[u] = e;
  });
  return ecc;
}

Dist exact_diameter(const Graph& g) {
  if (g.num_nodes() <= 1) return 0;
  NAV_REQUIRE(is_connected(g), "exact_diameter requires a connected graph");
  const auto ecc = eccentricities(g);
  return *std::max_element(ecc.begin(), ecc.end());
}

Dist double_sweep_lower_bound(const Graph& g) { return peripheral_pair(g).distance; }

NodePair peripheral_pair(const Graph& g) {
  NAV_REQUIRE(g.num_nodes() >= 1, "peripheral_pair on empty graph");
  const auto first = farthest_node(g, 0);
  const auto second = farthest_node(g, first.node);
  return {first.node, second.node, second.distance};
}

}  // namespace nav::graph
