#include "graph/families.hpp"

#include <cmath>

#include "graph/generators.hpp"
#include "graph/graph_io.hpp"
#include "graph/interval_model.hpp"
#include "graph/permutation_model.hpp"

namespace nav::graph {

namespace {

NodeId iroot(NodeId n) {
  auto side = static_cast<NodeId>(std::lround(std::sqrt(static_cast<double>(n))));
  return std::max<NodeId>(side, 2);
}

std::vector<FamilySpec> build_registry() {
  std::vector<FamilySpec> fams;

  fams.push_back({"path", false, "path P_n; diameter n-1",
                  [](NodeId n, Rng&) { return make_path(n); }});
  fams.push_back({"cycle", false, "cycle C_n; diameter n/2",
                  [](NodeId n, Rng&) { return make_cycle(std::max<NodeId>(n, 3)); }});
  fams.push_back({"caterpillar", false,
                  "spine n/2 with one leg per spine node; diameter ~n/2",
                  [](NodeId n, Rng&) {
                    return make_caterpillar(std::max<NodeId>(n / 2, 1), 1);
                  }});
  fams.push_back({"comb", false, "spine sqrt(n), teeth sqrt(n)",
                  [](NodeId n, Rng&) {
                    const NodeId s = iroot(n);
                    return make_comb(s, s > 1 ? s - 1 : 1);
                  }});
  fams.push_back({"balanced_tree", false, "complete binary tree",
                  [](NodeId n, Rng&) { return make_balanced_tree(n, 2); }});
  fams.push_back({"random_tree", true, "uniform labelled tree (Pruefer)",
                  [](NodeId n, Rng& rng) { return make_random_tree(n, rng); }});
  fams.push_back({"grid2d", false, "square grid, diameter ~2 sqrt(n)",
                  [](NodeId n, Rng&) {
                    const NodeId s = iroot(n);
                    return make_grid2d(s, s);
                  }});
  fams.push_back({"torus2d", false, "square torus (Kleinberg base)",
                  [](NodeId n, Rng&) {
                    const NodeId s = std::max<NodeId>(iroot(n), 3);
                    return make_torus2d(s, s);
                  }});
  fams.push_back({"hypercube", false, "hypercube Q_d, n rounded to 2^d",
                  [](NodeId n, Rng&) {
                    std::uint32_t d = 1;
                    while ((NodeId{1} << (d + 1)) <= n && d < 20) ++d;
                    return make_hypercube(d);
                  }});
  fams.push_back({"gnp", true, "connected G(n, p) with p = 3 ln n / n",
                  [](NodeId n, Rng& rng) {
                    const double p =
                        3.0 * std::log(static_cast<double>(std::max<NodeId>(n, 3))) /
                        static_cast<double>(std::max<NodeId>(n, 3));
                    return make_connected_gnp(n, std::min(1.0, p), rng);
                  }});
  fams.push_back({"random_regular", true, "random 4-regular (pairing model)",
                  [](NodeId n, Rng& rng) {
                    return make_random_regular(n + (n % 2), 4, rng);
                  }});
  fams.push_back({"interval", true, "random connected interval graph",
                  [](NodeId n, Rng& rng) {
                    return connected_random_interval_model(n, rng).to_graph();
                  }});
  fams.push_back({"permutation", true,
                  "banded random permutation graph (window 8)",
                  [](NodeId n, Rng& rng) {
                    return banded_permutation_model(n, 8, rng).to_graph();
                  }});
  fams.push_back({"ring_of_cliques", false, "sqrt(n) cliques of size sqrt(n)",
                  [](NodeId n, Rng&) {
                    const NodeId s = std::max<NodeId>(iroot(n), 3);
                    return make_ring_of_cliques(s, s);
                  }});
  fams.push_back({"lollipop", false, "clique sqrt(n) + tail n - sqrt(n)",
                  [](NodeId n, Rng&) {
                    const NodeId c = std::max<NodeId>(iroot(n), 2);
                    return make_lollipop(c, n > c ? n - c : 1);
                  }});
  fams.push_back({"subdivided_clique", false,
                  "K_q with edges subdivided, q = n^(1/4)",
                  [](NodeId n, Rng&) {
                    const auto q = std::max<NodeId>(
                        3, static_cast<NodeId>(std::lround(
                               std::pow(static_cast<double>(n), 0.25))));
                    const NodeId pairs = q * (q - 1) / 2;
                    const NodeId seg = std::max<NodeId>(1, (n - q) / pairs);
                    return make_subdivided_complete(q, seg);
                  }});
  return fams;
}

}  // namespace

const std::vector<FamilySpec>& all_families() {
  static const std::vector<FamilySpec> registry = build_registry();
  return registry;
}

const FamilySpec& family(const std::string& name) {
  for (const auto& fam : all_families()) {
    if (fam.name == name) return fam;
  }
  throw std::invalid_argument("unknown graph family: " + name);
}

bool has_family(const std::string& name) {
  for (const auto& fam : all_families()) {
    if (fam.name == name) return true;
  }
  return false;
}

bool is_graph_spec(const std::string& spec) {
  return spec.rfind("file:", 0) == 0 || spec.rfind("dimacs:", 0) == 0;
}

FamilySpec graph_source(const std::string& spec) {
  if (!is_graph_spec(spec)) return family(spec);
  const bool dimacs = spec.rfind("dimacs:", 0) == 0;
  const std::string path = spec.substr(dimacs ? 7 : 5);
  if (path.empty()) {
    throw std::invalid_argument("graph spec needs a path: " + spec);
  }
  EdgeListOptions options;
  options.format = dimacs ? EdgeListFormat::kDimacs : EdgeListFormat::kAuto;
  return {spec, /*randomized=*/false,
          (dimacs ? "DIMACS edge list " : "edge list ") + path,
          // The file decides the size: n is ignored, and repeated makes are
          // deterministic (the loader ignores the rng too).
          [path, options](NodeId, Rng&) {
            return load_edge_list(path, options).graph;
          }};
}

}  // namespace nav::graph
