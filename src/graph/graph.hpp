// graph.hpp — immutable undirected simple graph in CSR form.
//
// The whole library operates on connected, undirected, unweighted simple
// graphs, matching the paper's model ("G is an n-node connected graph").
// Nodes are dense ids 0..n-1 (the paper's labels 1..n are a separate concept,
// handled by core/augmentation_matrix — labels are *data*, not identity).
//
// CSR (compressed sparse row): neighbour lists concatenated into one array
// with per-node offsets. Immutable after construction; all algorithms take
// `const Graph&` and may be called concurrently without synchronisation.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "runtime/assert.hpp"

namespace nav::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint64_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

class Graph {
 public:
  Graph() = default;

  /// Builds from an edge list. Requirements (else std::invalid_argument):
  /// endpoints < n, no self loops. Parallel edges are deduplicated.
  Graph(NodeId n, std::vector<std::pair<NodeId, NodeId>> edges);

  [[nodiscard]] NodeId num_nodes() const noexcept { return n_; }
  [[nodiscard]] EdgeId num_edges() const noexcept { return m_; }

  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const {
    NAV_ASSERT(u < n_);
    return {adj_.data() + offsets_[u], adj_.data() + offsets_[u + 1]};
  }

  [[nodiscard]] std::uint32_t degree(NodeId u) const {
    NAV_ASSERT(u < n_);
    return static_cast<std::uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

  /// O(log deg(u)) membership test (neighbour lists are sorted).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  [[nodiscard]] std::uint32_t max_degree() const noexcept { return max_degree_; }

  /// All edges as (u, v) with u < v, sorted lexicographically.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> edge_list() const;

  /// Human-readable one-line summary, e.g. "Graph(n=100, m=99)".
  [[nodiscard]] std::string summary() const;

 private:
  NodeId n_ = 0;
  EdgeId m_ = 0;
  std::uint32_t max_degree_ = 0;
  std::vector<std::uint64_t> offsets_;  // size n_+1
  std::vector<NodeId> adj_;             // size 2*m_, sorted per node
};

/// Incremental edge collector with the same validation as the Graph ctor.
/// Convenient for generators: add_edge ignores duplicates lazily (dedup
/// happens at build time) and checks bounds eagerly.
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId n) : n_(n) {}

  void add_edge(NodeId u, NodeId v) {
    NAV_REQUIRE(u < n_ && v < n_, "edge endpoint out of range");
    NAV_REQUIRE(u != v, "self loops are not allowed");
    edges_.emplace_back(u, v);
  }

  [[nodiscard]] NodeId num_nodes() const noexcept { return n_; }
  [[nodiscard]] std::size_t pending_edges() const noexcept { return edges_.size(); }

  /// Consumes the builder.
  [[nodiscard]] Graph build() && { return Graph(n_, std::move(edges_)); }
  /// Non-consuming build (copies the edge list).
  [[nodiscard]] Graph build() const& { return Graph(n_, edges_); }

 private:
  NodeId n_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace nav::graph
