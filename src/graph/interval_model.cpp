#include "graph/interval_model.hpp"

#include <algorithm>
#include <cmath>

#include "graph/connectivity.hpp"

namespace nav::graph {

IntervalModel::IntervalModel(std::vector<Interval> intervals)
    : intervals_(std::move(intervals)) {
  NAV_REQUIRE(!intervals_.empty(), "interval model needs at least one interval");
  NAV_REQUIRE(intervals_.size() <= kNoNode, "too many intervals");
  for (const auto& iv : intervals_) {
    NAV_REQUIRE(iv.lo <= iv.hi, "interval with lo > hi");
  }
}

Graph IntervalModel::to_graph() const {
  // Sweep by start coordinate; keep an "active" set ordered by end coordinate.
  // Every interval intersects exactly the active intervals whose end >= its
  // start at insertion time.
  const NodeId n = num_nodes();
  std::vector<NodeId> order(n);
  for (NodeId u = 0; u < n; ++u) order[u] = u;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return intervals_[a].lo < intervals_[b].lo ||
           (intervals_[a].lo == intervals_[b].lo && a < b);
  });

  // Active set as a vector sorted by (hi, id); intervals are removed lazily.
  // Worst case O(n·m) but fine at library scale (m dominates anyway since we
  // must emit every edge).
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<NodeId> active;
  for (const NodeId u : order) {
    const auto lo_u = intervals_[u].lo;
    // Drop expired intervals, emit edges to the rest.
    std::vector<NodeId> still_active;
    still_active.reserve(active.size() + 1);
    for (const NodeId v : active) {
      if (intervals_[v].hi >= lo_u) {
        edges.emplace_back(std::min(u, v), std::max(u, v));
        still_active.push_back(v);
      }
    }
    still_active.push_back(u);
    active.swap(still_active);
  }
  return Graph(n, std::move(edges));
}

std::vector<std::int64_t> IntervalModel::event_points() const {
  std::vector<std::int64_t> points;
  points.reserve(intervals_.size() * 2);
  for (const auto& iv : intervals_) {
    points.push_back(iv.lo);
    points.push_back(iv.hi);
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  return points;
}

std::vector<NodeId> IntervalModel::stab(std::int64_t x) const {
  std::vector<NodeId> hit;
  for (NodeId u = 0; u < num_nodes(); ++u) {
    if (intervals_[u].lo <= x && x <= intervals_[u].hi) hit.push_back(u);
  }
  return hit;
}

IntervalModel random_interval_model(NodeId n, Rng& rng, std::int64_t span,
                                    std::int64_t max_len) {
  NAV_REQUIRE(n >= 1, "need at least one interval");
  if (span <= 0) span = static_cast<std::int64_t>(n) * 4;
  if (max_len <= 0) {
    // Connectivity needs the union of intervals to cover the span without
    // gaps; with expected length E the per-point gap probability is
    // ~exp(-nE/span), so E must scale like (span/n)·log(span) — hence the
    // log factor (constant expected length disconnects w.h.p. at large n).
    const double log_n = std::log2(static_cast<double>(n) + 2.0);
    max_len = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               2.0 * (log_n + 2.0) * static_cast<double>(span) /
               static_cast<double>(n)));
  }
  std::vector<Interval> intervals(n);
  for (auto& iv : intervals) {
    iv.lo = static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(span)));
    const auto len =
        1 + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(max_len)));
    iv.hi = iv.lo + len;
  }
  return IntervalModel(std::move(intervals));
}

IntervalModel connected_random_interval_model(NodeId n, Rng& rng) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    auto model = random_interval_model(n, rng);
    if (is_connected(model.to_graph())) return model;
  }
  // Fall back: stitch a connected instance by forcing overlaps — a chain of
  // unit-overlapping intervals plus random ones cannot be disconnected.
  std::vector<Interval> intervals(n);
  const std::int64_t span = static_cast<std::int64_t>(n) * 2;
  for (NodeId u = 0; u < n; ++u) {
    const auto base = static_cast<std::int64_t>(u) * span / n;
    intervals[u] = {base, base + span / n + 1};
  }
  return IntervalModel(std::move(intervals));
}

}  // namespace nav::graph
