#include "graph/distance_oracle.hpp"

#include "runtime/thread_pool.hpp"

namespace nav::graph {

DistanceMatrix::DistanceMatrix(const Graph& g) : n_(g.num_nodes()) {
  rows_.resize(n_);
  nav::parallel_for(0, n_, [&](std::size_t t) {
    rows_[t] = std::make_shared<const std::vector<Dist>>(
        bfs_distances(g, static_cast<NodeId>(t)));
  });
}

Dist DistanceMatrix::distance(NodeId u, NodeId target) const {
  NAV_ASSERT(u < n_ && target < n_);
  return (*rows_[target])[u];
}

DistVecPtr DistanceMatrix::distances_to(NodeId target) const {
  NAV_ASSERT(target < n_);
  return rows_[target];
}

TargetDistanceCache::TargetDistanceCache(const Graph& g, std::size_t capacity)
    : graph_(g), capacity_(capacity == 0 ? 1 : capacity) {}

Dist TargetDistanceCache::distance(NodeId u, NodeId target) const {
  return (*distances_to(target))[u];
}

DistVecPtr TargetDistanceCache::distances_to(NodeId target) const {
  NAV_ASSERT(target < graph_.num_nodes());
  {
    std::lock_guard lock(mutex_);
    const auto it = cache_.find(target);
    if (it != cache_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // bump to front
      return it->second.distances;
    }
    ++misses_;
  }
  // BFS outside the lock: concurrent misses on the same target may compute it
  // twice; both results are identical, the second insert wins harmlessly.
  auto dist = std::make_shared<const std::vector<Dist>>(
      bfs_distances(graph_, target));
  std::lock_guard lock(mutex_);
  const auto it = cache_.find(target);
  if (it != cache_.end()) return it->second.distances;  // lost the race
  lru_.push_front(target);
  cache_.emplace(target, Entry{lru_.begin(), dist});
  while (cache_.size() > capacity_) {
    const NodeId victim = lru_.back();
    lru_.pop_back();
    cache_.erase(victim);
  }
  return dist;
}

}  // namespace nav::graph
