#include "graph/distance_oracle.hpp"

#include <algorithm>

#include "graph/bfs_engine.hpp"
#include "runtime/thread_pool.hpp"

namespace nav::graph {

std::vector<DistVecPtr> DistanceOracle::prefetch(
    std::span<const NodeId> targets) const {
  std::vector<DistVecPtr> pinned;
  pinned.reserve(targets.size());
  for (const NodeId t : targets) pinned.push_back(distances_to(t));
  return pinned;
}

DistanceMatrix::DistanceMatrix(const Graph& g)
    : n_(g.num_nodes()),
      slab_(std::make_shared<std::vector<Dist>>(
          static_cast<std::size_t>(n_) * n_)) {
  Dist* const rows = slab_->data();
  nav::parallel_for(0, n_, [&](std::size_t t) {
    // Each worker reuses its pooled workspace; rows are disjoint slab slices.
    local_bfs_workspace().distances_into(
        g, static_cast<NodeId>(t), {rows + t * n_, static_cast<std::size_t>(n_)});
  });
}

Dist DistanceMatrix::distance(NodeId u, NodeId target) const {
  NAV_ASSERT(u < n_ && target < n_);
  return (*slab_)[static_cast<std::size_t>(target) * n_ + u];
}

DistVecPtr DistanceMatrix::distances_to(NodeId target) const {
  NAV_ASSERT(target < n_);
  // Aliasing handle: pins the whole slab, views one row.
  return {std::shared_ptr<const Dist>(
              slab_, slab_->data() + static_cast<std::size_t>(target) * n_),
          n_};
}

void DistanceMatrix::rebuild_rows(const Graph& g,
                                  std::span<const NodeId> targets) {
  NAV_REQUIRE(g.num_nodes() == n_, "rebuild graph/matrix size mismatch");
  Dist* const rows = slab_->data();
  nav::parallel_for(0, targets.size(), [&](std::size_t i) {
    const NodeId t = targets[i];
    NAV_ASSERT(t < n_);
    local_bfs_workspace().distances_into(
        g, t, {rows + static_cast<std::size_t>(t) * n_,
               static_cast<std::size_t>(n_)});
  });
}

void DistanceMatrix::rebuild_all(const Graph& g) {
  NAV_REQUIRE(g.num_nodes() == n_, "rebuild graph/matrix size mismatch");
  Dist* const rows = slab_->data();
  nav::parallel_for(0, n_, [&](std::size_t t) {
    local_bfs_workspace().distances_into(
        g, static_cast<NodeId>(t),
        {rows + t * n_, static_cast<std::size_t>(n_)});
  });
}

TargetDistanceCache::TargetDistanceCache(const Graph& g, std::size_t capacity)
    : graph_(g),
      capacity_(capacity == 0 ? 1 : capacity),
      // One slot beyond the LRU capacity: a miss on a full cache computes its
      // row BEFORE evicting (the victim's slot frees only after the insert),
      // so without the spare every such miss would spill to the heap.
      arena_(capacity_ + 1, g.num_nodes()) {}

TargetDistanceCache::TargetDistanceCache(const Graph& g, MemoryBudget budget)
    : TargetDistanceCache(g, capacity_for_budget(budget, g.num_nodes())) {}

std::size_t TargetDistanceCache::capacity_for_budget(MemoryBudget budget,
                                                     NodeId n) noexcept {
  const std::size_t vector_bytes =
      std::max<std::size_t>(1, static_cast<std::size_t>(n) * sizeof(Dist));
  return std::max<std::size_t>(1, budget.bytes / vector_bytes);
}

Dist TargetDistanceCache::distance(NodeId u, NodeId target) const {
  return (*distances_to(target))[u];
}

DistVecPtr TargetDistanceCache::compute_row(NodeId target) const {
  const std::size_t n = graph_.num_nodes();
  // Steady state: a recycled arena slot, zero heap allocations. When every
  // slot is pinned (a prefetch wave larger than the budget), spill to a
  // plain heap row — correctness never depends on the arena having room.
  std::shared_ptr<Dist> row = arena_.try_acquire();
  if (row == nullptr) {
    row = std::shared_ptr<Dist>(new Dist[n], std::default_delete<Dist[]>());
  }
  local_bfs_workspace().distances_into(graph_, target, {row.get(), n});
  return {std::move(row), n};
}

DistVecPtr TargetDistanceCache::distances_to(NodeId target) const {
  NAV_ASSERT(target < graph_.num_nodes());
  {
    std::lock_guard lock(mutex_);
    const auto it = cache_.find(target);
    if (it != cache_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // bump to front
      return it->second.distances;
    }
    ++misses_;
  }
  // BFS outside the lock: concurrent misses on the same target may compute it
  // twice; both results are identical, the second insert wins harmlessly.
  DistVecPtr dist = compute_row(target);
  std::lock_guard lock(mutex_);
  const auto it = cache_.find(target);
  if (it != cache_.end()) return it->second.distances;  // lost the race
  lru_.push_front(target);
  cache_.emplace(target, Entry{lru_.begin(), dist});
  while (cache_.size() > capacity_) {
    const NodeId victim = lru_.back();
    lru_.pop_back();
    cache_.erase(victim);  // the slot recycles once the last pin drops
  }
  return dist;
}

std::vector<NodeId> TargetDistanceCache::resident_targets() const {
  std::lock_guard lock(mutex_);
  return {lru_.begin(), lru_.end()};
}

DistVecPtr TargetDistanceCache::peek(NodeId target) const {
  std::lock_guard lock(mutex_);
  const auto it = cache_.find(target);
  return it == cache_.end() ? DistVecPtr{} : it->second.distances;
}

bool TargetDistanceCache::erase(NodeId target) {
  std::lock_guard lock(mutex_);
  const auto it = cache_.find(target);
  if (it == cache_.end()) return false;
  lru_.erase(it->second.lru_it);
  cache_.erase(it);  // the slot recycles once the last pin drops
  return true;
}

void TargetDistanceCache::clear() {
  std::lock_guard lock(mutex_);
  lru_.clear();
  cache_.clear();
}

std::vector<DistVecPtr> TargetDistanceCache::prefetch(
    std::span<const NodeId> targets) const {
  // Pass 1 (under the lock): serve residents and dedicate the misses.
  std::unordered_map<NodeId, DistVecPtr> by_target;
  by_target.reserve(targets.size());
  std::vector<NodeId> missing;
  {
    std::lock_guard lock(mutex_);
    for (const NodeId t : targets) {
      NAV_ASSERT(t < graph_.num_nodes());
      if (by_target.count(t) != 0) {  // duplicate: served by this batch's BFS
        ++hits_;
        continue;
      }
      const auto it = cache_.find(t);
      if (it != cache_.end()) {
        ++hits_;
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        by_target.emplace(t, it->second.distances);
      } else {
        ++misses_;
        missing.push_back(t);
        by_target.emplace(t, DistVecPtr{});  // reserve the slot
      }
    }
  }
  // Pass 2 (no lock): one parallel BFS sweep over the distinct misses —
  // this is the batched-prefetch win over miss-by-miss distances_to.
  std::vector<DistVecPtr> fresh(missing.size());
  nav::parallel_for(0, missing.size(), [&](std::size_t i) {
    fresh[i] = compute_row(missing[i]);
  });
  // Pass 3 (under the lock): install the new vectors, newest-first LRU.
  if (!missing.empty()) {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < missing.size(); ++i) {
      const NodeId t = missing[i];
      const auto it = cache_.find(t);
      if (it != cache_.end()) {  // a concurrent caller raced us: keep theirs
        by_target[t] = it->second.distances;
        continue;
      }
      lru_.push_front(t);
      cache_.emplace(t, Entry{lru_.begin(), fresh[i]});
      by_target[t] = fresh[i];
    }
    while (cache_.size() > capacity_) {
      const NodeId victim = lru_.back();
      lru_.pop_back();
      cache_.erase(victim);
    }
  }
  std::vector<DistVecPtr> pinned;
  pinned.reserve(targets.size());
  for (const NodeId t : targets) pinned.push_back(by_target.at(t));
  return pinned;
}

}  // namespace nav::graph
