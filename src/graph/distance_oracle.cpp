#include "graph/distance_oracle.hpp"

#include <algorithm>
#include <bit>

#include "graph/bfs_engine.hpp"
#include "runtime/scratch_pool.hpp"
#include "runtime/thread_pool.hpp"

namespace nav::graph {

void DistanceOracle::prefetch_into(std::span<const NodeId> targets,
                                   std::vector<DistVecPtr>& out) const {
  out.clear();
  out.reserve(targets.size());
  for (const NodeId t : targets) out.push_back(distances_to(t));
}

DistanceMatrix::DistanceMatrix(const Graph& g, ParallelPolicy policy)
    : n_(g.num_nodes()),
      policy_(policy),
      // Deliberately uninitialised (default-init, not value-init): every
      // entry is BFS-filled below, and skipping the zero pass means the
      // first touch of each row happens on the worker that computes it —
      // on NUMA hosts the pages land near that worker's socket.
      slab_(new Dist[static_cast<std::size_t>(n_) * n_]) {
  nav::parallel_for_dynamic(
      0, n_, [&](std::size_t t) { fill_row(g, static_cast<NodeId>(t)); },
      policy_.resolved_workers());
}

void DistanceMatrix::fill_row(const Graph& g, NodeId target) {
  // Each worker reuses its pooled workspace; rows are disjoint slab slices.
  local_bfs_workspace().distances_into(
      g, target,
      {slab_.get() + static_cast<std::size_t>(target) * n_,
       static_cast<std::size_t>(n_)});
}

Dist DistanceMatrix::distance(NodeId u, NodeId target) const {
  NAV_ASSERT(u < n_ && target < n_);
  return slab_[static_cast<std::size_t>(target) * n_ + u];
}

DistVecPtr DistanceMatrix::distances_to(NodeId target) const {
  NAV_ASSERT(target < n_);
  // Aliasing handle: pins the whole slab, views one row.
  return {std::shared_ptr<const Dist>(
              slab_, slab_.get() + static_cast<std::size_t>(target) * n_),
          n_};
}

void DistanceMatrix::rebuild_rows(const Graph& g,
                                  std::span<const NodeId> targets) {
  NAV_REQUIRE(g.num_nodes() == n_, "rebuild graph/matrix size mismatch");
  nav::parallel_for_dynamic(
      0, targets.size(),
      [&](std::size_t i) {
        NAV_ASSERT(targets[i] < n_);
        fill_row(g, targets[i]);
      },
      policy_.resolved_workers());
}

void DistanceMatrix::rebuild_all(const Graph& g) {
  NAV_REQUIRE(g.num_nodes() == n_, "rebuild graph/matrix size mismatch");
  nav::parallel_for_dynamic(
      0, n_, [&](std::size_t t) { fill_row(g, static_cast<NodeId>(t)); },
      policy_.resolved_workers());
}

TargetDistanceCache::TargetDistanceCache(const Graph& g, std::size_t capacity,
                                         ParallelPolicy policy)
    : graph_(g),
      capacity_(capacity == 0 ? 1 : capacity),
      policy_(policy),
      // One slot beyond the LRU capacity: a miss on a full cache computes its
      // row BEFORE evicting (the victim's slot frees only after the insert),
      // so without the spare every such miss would spill to the heap.
      arena_(capacity_ + 1, g.num_nodes()) {}

TargetDistanceCache::TargetDistanceCache(const Graph& g, MemoryBudget budget,
                                         ParallelPolicy policy)
    : TargetDistanceCache(g, capacity_for_budget(budget, g.num_nodes()),
                          policy) {}

std::size_t TargetDistanceCache::capacity_for_budget(MemoryBudget budget,
                                                     NodeId n) noexcept {
  const std::size_t vector_bytes =
      std::max<std::size_t>(1, static_cast<std::size_t>(n) * sizeof(Dist));
  return std::max<std::size_t>(1, budget.bytes / vector_bytes);
}

Dist TargetDistanceCache::distance(NodeId u, NodeId target) const {
  return (*distances_to(target))[u];
}

std::shared_ptr<Dist> TargetDistanceCache::acquire_slot() const {
  // Steady state: a recycled arena slot (O(1) control-block bookkeeping).
  // When every slot is pinned (a prefetch wave larger than the budget),
  // spill to a plain heap row — correctness never depends on the arena
  // having room.
  std::shared_ptr<Dist> row = arena_.try_acquire();
  if (row == nullptr) {
    const std::size_t n = graph_.num_nodes();
    row = std::shared_ptr<Dist>(new Dist[n], std::default_delete<Dist[]>());
  }
  return row;
}

DistVecPtr TargetDistanceCache::compute_row(NodeId target) const {
  const std::size_t n = graph_.num_nodes();
  std::shared_ptr<Dist> row = acquire_slot();
  local_bfs_workspace().distances_into(graph_, target, {row.get(), n});
  return {std::move(row), n};
}

DistVecPtr TargetDistanceCache::compute_row_with(ParallelBfs& engine,
                                                 NodeId target) const {
  const std::size_t n = graph_.num_nodes();
  std::shared_ptr<Dist> row = acquire_slot();
  engine.distances_into(graph_, target, {row.get(), n});
  return {std::move(row), n};
}

DistVecPtr TargetDistanceCache::distances_to(NodeId target) const {
  NAV_ASSERT(target < graph_.num_nodes());
  {
    std::lock_guard lock(mutex_);
    const auto it = cache_.find(target);
    if (it != cache_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // bump to front
      return it->second.distances;
    }
    ++misses_;
  }
  // BFS outside the lock: concurrent misses on the same target may compute it
  // twice; both results are identical, the second insert wins harmlessly.
  DistVecPtr dist = compute_row(target);
  std::lock_guard lock(mutex_);
  const auto it = cache_.find(target);
  if (it != cache_.end()) return it->second.distances;  // lost the race
  lru_.push_front(target);
  cache_.emplace(target, Entry{lru_.begin(), dist});
  while (cache_.size() > capacity_) {
    const NodeId victim = lru_.back();
    lru_.pop_back();
    cache_.erase(victim);  // the slot recycles once the last pin drops
  }
  return dist;
}

std::vector<NodeId> TargetDistanceCache::resident_targets() const {
  std::lock_guard lock(mutex_);
  return {lru_.begin(), lru_.end()};
}

DistVecPtr TargetDistanceCache::peek(NodeId target) const {
  std::lock_guard lock(mutex_);
  const auto it = cache_.find(target);
  return it == cache_.end() ? DistVecPtr{} : it->second.distances;
}

bool TargetDistanceCache::erase(NodeId target) {
  std::lock_guard lock(mutex_);
  const auto it = cache_.find(target);
  if (it == cache_.end()) return false;
  lru_.erase(it->second.lru_it);
  cache_.erase(it);  // the slot recycles once the last pin drops
  return true;
}

void TargetDistanceCache::clear() {
  std::lock_guard lock(mutex_);
  lru_.clear();
  cache_.clear();
}

namespace {

// Grow-only per-thread scratch for TargetDistanceCache::prefetch_into: an
// open-addressing probe table for intra-wave dedup plus the miss lists. No
// node-based containers, so a warm all-hit wave allocates nothing.
struct PrefetchScratch {
  std::vector<std::size_t> table;      // probe slot -> input index + 1; 0 = empty
  std::vector<std::size_t> first_of;   // input index -> first occurrence index
  std::vector<NodeId> missing;         // distinct targets needing a BFS
  std::vector<std::size_t> miss_slot;  // their positions in the output
  std::vector<DistVecPtr> fresh;       // rows computed for `missing`
};

}  // namespace

void TargetDistanceCache::prefetch_into(std::span<const NodeId> targets,
                                        std::vector<DistVecPtr>& out) const {
  out.clear();
  out.resize(targets.size());
  if (targets.empty()) return;

  auto& scratch = nav::thread_scratch<PrefetchScratch>();
  std::size_t cap = 16;
  while (cap < targets.size() * 2) cap <<= 1;
  if (scratch.table.size() < cap) scratch.table.resize(cap);
  std::fill(scratch.table.begin(), scratch.table.begin() + cap, std::size_t{0});
  if (scratch.first_of.size() < targets.size()) {
    scratch.first_of.resize(targets.size());
  }
  scratch.missing.clear();
  scratch.miss_slot.clear();
  const unsigned shift =
      64u - static_cast<unsigned>(std::countr_zero(cap));  // cap is a power of 2

  // Pass 1 (under the lock): dedup the wave, serve residents, list misses.
  {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      const NodeId t = targets[i];
      NAV_ASSERT(t < graph_.num_nodes());
      std::size_t slot = static_cast<std::size_t>(
          (std::uint64_t{t} * 0x9E3779B97F4A7C15ull) >> shift);
      bool duplicate = false;
      while (true) {
        const std::size_t stored = scratch.table[slot];
        if (stored == 0) {
          scratch.table[slot] = i + 1;
          scratch.first_of[i] = i;
          break;
        }
        if (targets[stored - 1] == t) {
          scratch.first_of[i] = stored - 1;
          duplicate = true;  // served by the first occurrence's row
          break;
        }
        slot = (slot + 1) & (cap - 1);
      }
      if (duplicate) {
        ++hits_;
        continue;
      }
      const auto it = cache_.find(t);
      if (it != cache_.end()) {
        ++hits_;
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        out[i] = it->second.distances;
      } else {
        ++misses_;
        scratch.missing.push_back(t);
        scratch.miss_slot.push_back(i);
      }
    }
  }

  // Pass 2 (no lock): BFS the distinct misses, adaptively in the policy.
  auto& fresh = scratch.fresh;
  fresh.clear();
  fresh.resize(scratch.missing.size());
  const std::size_t workers = policy_.resolved_workers();
  if (workers > 1 && scratch.missing.size() >= workers) {
    // Wide wave: farm whole rows across the pool, one scalar sweep each —
    // this is the batched-prefetch win over miss-by-miss distances_to.
    nav::parallel_for_dynamic(
        0, scratch.missing.size(),
        [&](std::size_t k) { fresh[k] = compute_row(scratch.missing[k]); },
        workers);
  } else if (workers > 1 && !scratch.missing.empty()) {
    // Narrow wave: fewer misses than workers, so row farming would idle
    // most lanes — run each miss as one multi-worker sweep instead.
    std::lock_guard engine_lock(engine_mutex_);
    if (engine_ == nullptr) engine_ = std::make_unique<ParallelBfs>(policy_);
    for (std::size_t k = 0; k < scratch.missing.size(); ++k) {
      fresh[k] = compute_row_with(*engine_, scratch.missing[k]);
    }
  } else {
    for (std::size_t k = 0; k < scratch.missing.size(); ++k) {
      fresh[k] = compute_row(scratch.missing[k]);
    }
  }

  // Pass 3 (under the lock): install the new vectors, newest-first LRU.
  if (!scratch.missing.empty()) {
    std::lock_guard lock(mutex_);
    for (std::size_t k = 0; k < scratch.missing.size(); ++k) {
      const NodeId t = scratch.missing[k];
      const auto it = cache_.find(t);
      if (it != cache_.end()) {  // a concurrent caller raced us: keep theirs
        out[scratch.miss_slot[k]] = it->second.distances;
        continue;
      }
      lru_.push_front(t);
      cache_.emplace(t, Entry{lru_.begin(), fresh[k]});
      out[scratch.miss_slot[k]] = fresh[k];
    }
    while (cache_.size() > capacity_) {
      const NodeId victim = lru_.back();
      lru_.pop_back();
      cache_.erase(victim);
    }
  }
  fresh.clear();  // drop the scratch pins: rows now live via cache_/out

  // Final pass: duplicates alias their first occurrence's pin.
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (scratch.first_of[i] != i) out[i] = out[scratch.first_of[i]];
  }
}

}  // namespace nav::graph
