#include "graph/distance_oracle.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <string>

#include "graph/bfs_engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/scratch_pool.hpp"
#include "runtime/thread_pool.hpp"

namespace nav::graph {

namespace {

// Library-level oracle telemetry lands in the process-wide registry: every
// oracle instance feeds the same `oracle.*` series (route_server scrapes
// them via --metrics-out). Handles are registered once (magic static);
// increments are wait-free shard writes, mirroring — not replacing — the
// per-instance hits()/misses() accessors.
struct OracleMetrics {
  obs::Counter hits = obs::default_registry().counter("oracle.cache_hits");
  obs::Counter misses = obs::default_registry().counter("oracle.cache_misses");
  obs::Counter evictions = obs::default_registry().counter("oracle.evictions");
  obs::Counter pin_spills =
      obs::default_registry().counter("oracle.pin_spills");
  obs::Counter matrix_rows =
      obs::default_registry().counter("oracle.matrix_rows_built");
  obs::HistogramHandle wave_width =
      obs::default_registry().histogram("oracle.wave_width", 0.0, 512.0, 64);
  obs::HistogramHandle wave_misses =
      obs::default_registry().histogram("oracle.wave_misses", 0.0, 512.0, 64);
};

OracleMetrics& oracle_metrics() {
  static OracleMetrics metrics;
  return metrics;
}

// Per-thread Dist-typed staging row for narrow-width slabs: the BFS kernel
// writes full Dist rows, which are then packed to the storage width. Grow
// only, so warm fills allocate nothing.
struct WideRowScratch {
  std::vector<Dist> row;
};

std::span<Dist> wide_row_scratch(std::size_t n) {
  auto& scratch = nav::thread_scratch<WideRowScratch>();
  if (scratch.row.size() < n) scratch.row.resize(n);
  return {scratch.row.data(), n};
}

[[noreturn]] void throw_width_saturated(DistWidth width) {
  throw std::invalid_argument(
      std::string("distance exceeds ") + width_token(width) +
      " storage (max finite " + std::to_string(max_finite(width)) +
      "); declare a wider oracle width");
}

}  // namespace

void DistanceOracle::prefetch_into(std::span<const NodeId> targets,
                                   std::vector<DistVecPtr>& out) const {
  out.clear();
  out.reserve(targets.size());
  for (const NodeId t : targets) out.push_back(distances_to(t));
}

DistanceMatrix::DistanceMatrix(const Graph& g, ParallelPolicy policy,
                               DistWidth width)
    : n_(g.num_nodes()), policy_(policy), width_(width) {
  NAV_OBS_SPAN("oracle.matrix_build", "rows", static_cast<double>(n_));
  const std::size_t cells = static_cast<std::size_t>(n_) * n_;
  // Deliberately uninitialised (default-init, not value-init): every entry
  // is BFS-filled below, and skipping the zero pass means the first touch of
  // each row happens on the worker that computes it — on NUMA hosts the
  // pages land near that worker's socket.
  if (width_ == DistWidth::kU32) {
    slab_ = std::shared_ptr<Dist[]>(new Dist[cells]);
  } else {
    packed_ = std::shared_ptr<std::uint8_t[]>(
        new std::uint8_t[cells * width_bytes(width_)]);
  }
  nav::parallel_for_dynamic(
      0, n_, [&](std::size_t t) { fill_row(g, static_cast<NodeId>(t)); },
      policy_.resolved_workers());
  check_saturation();
  // Counted from the coordinator, not the pool workers: one shard write
  // instead of n, and lane threads stay metrics-free (the warm-parallel
  // zero-allocation contract).
  oracle_metrics().matrix_rows.inc(n_);
}

void DistanceMatrix::fill_row(const Graph& g, NodeId target) {
  const std::size_t n = n_;
  if (width_ == DistWidth::kU32) {
    // Each worker reuses its pooled workspace; rows are disjoint slab slices.
    local_bfs_workspace().distances_into(
        g, target, {slab_.get() + static_cast<std::size_t>(target) * n, n});
    return;
  }
  // Narrow storage: BFS into the thread's Dist staging row, then pack it.
  // Saturation is flagged, not thrown — workers must not throw across the
  // parallel_for; the coordinator turns the flag into an error.
  const std::span<Dist> wide = wide_row_scratch(n);
  local_bfs_workspace().distances_into(g, target, wide);
  if (narrow_row(wide, width_,
                 packed_.get() +
                     static_cast<std::size_t>(target) * n * width_bytes(width_))) {
    saturated_.store(true, std::memory_order_relaxed);
  }
}

void DistanceMatrix::check_saturation() const {
  if (saturated_.load(std::memory_order_relaxed)) {
    throw_width_saturated(width_);
  }
}

Dist DistanceMatrix::distance(NodeId u, NodeId target) const {
  NAV_ASSERT(u < n_ && target < n_);
  if (width_ == DistWidth::kU32) {
    return slab_[static_cast<std::size_t>(target) * n_ + u];
  }
  return widen_entry(
      packed_.get() + static_cast<std::size_t>(target) * n_ * width_bytes(width_),
      width_, u);
}

DistVecPtr DistanceMatrix::distances_to(NodeId target) const {
  NAV_ASSERT(target < n_);
  if (width_ == DistWidth::kU32) {
    // Aliasing handle: pins the whole slab, views one row.
    return {std::shared_ptr<const Dist>(
                slab_, slab_.get() + static_cast<std::size_t>(target) * n_),
            n_};
  }
  // Narrow storage keeps no Dist rows: materialise a widened copy. Point
  // queries should use distance(), which reads packed entries in place.
  const std::size_t n = n_;
  std::shared_ptr<Dist> row(new Dist[n], std::default_delete<Dist[]>());
  widen_row(packed_.get() + static_cast<std::size_t>(target) * n * width_bytes(width_),
            width_, {row.get(), n});
  return {std::move(row), n};
}

std::span<const std::uint8_t> DistanceMatrix::packed_slab() const noexcept {
  const std::size_t cells = static_cast<std::size_t>(n_) * n_;
  if (width_ == DistWidth::kU32) {
    return {reinterpret_cast<const std::uint8_t*>(slab_.get()),
            cells * sizeof(Dist)};
  }
  return {packed_.get(), cells * width_bytes(width_)};
}

void DistanceMatrix::rebuild_rows(const Graph& g,
                                  std::span<const NodeId> targets) {
  NAV_REQUIRE(g.num_nodes() == n_, "rebuild graph/matrix size mismatch");
  NAV_OBS_SPAN("oracle.rebuild_rows", "rows",
               static_cast<double>(targets.size()));
  nav::parallel_for_dynamic(
      0, targets.size(),
      [&](std::size_t i) {
        NAV_ASSERT(targets[i] < n_);
        fill_row(g, targets[i]);
      },
      policy_.resolved_workers());
  check_saturation();
  oracle_metrics().matrix_rows.inc(targets.size());
}

void DistanceMatrix::rebuild_all(const Graph& g) {
  NAV_REQUIRE(g.num_nodes() == n_, "rebuild graph/matrix size mismatch");
  NAV_OBS_SPAN("oracle.rebuild_all", "rows", static_cast<double>(n_));
  nav::parallel_for_dynamic(
      0, n_, [&](std::size_t t) { fill_row(g, static_cast<NodeId>(t)); },
      policy_.resolved_workers());
  check_saturation();
  oracle_metrics().matrix_rows.inc(n_);
}

TargetDistanceCache::TargetDistanceCache(const Graph& g, std::size_t capacity,
                                         ParallelPolicy policy,
                                         DistWidth width)
    : graph_(g),
      capacity_(capacity == 0 ? 1 : capacity),
      policy_(policy),
      width_(width),
      // u32: one Dist-row slot per resident entry plus a spare (a miss on a
      // full cache computes its row BEFORE evicting, so without the spare
      // every such miss would spill to the heap). Narrow: the Dist arena is
      // only the widened window; packed_arena_ carries the capacity.
      arena_(width == DistWidth::kU32
                 ? capacity_ + 1
                 : std::min(capacity_, kWideWindow) + 1,
             g.num_nodes()) {
  if (width_ != DistWidth::kU32) {
    packed_arena_.emplace(
        capacity_ + 1,
        static_cast<std::size_t>(g.num_nodes()) * width_bytes(width_));
  }
}

TargetDistanceCache::TargetDistanceCache(const Graph& g, MemoryBudget budget,
                                         ParallelPolicy policy,
                                         DistWidth width)
    : TargetDistanceCache(g, capacity_for_budget(budget, g.num_nodes(), width),
                          policy, width) {}

std::size_t TargetDistanceCache::capacity_for_budget(MemoryBudget budget,
                                                     NodeId n) noexcept {
  return capacity_for_budget(budget, n, DistWidth::kU32);
}

std::size_t TargetDistanceCache::capacity_for_budget(MemoryBudget budget,
                                                     NodeId n,
                                                     DistWidth width) noexcept {
  const std::size_t vector_bytes = std::max<std::size_t>(
      1, static_cast<std::size_t>(n) * width_bytes(width));
  return std::max<std::size_t>(1, budget.bytes / vector_bytes);
}

Dist TargetDistanceCache::distance(NodeId u, NodeId target) const {
  if (width_ == DistWidth::kU32) return (*distances_to(target))[u];
  NAV_ASSERT(u < graph_.num_nodes() && target < graph_.num_nodes());
  {
    std::lock_guard lock(mutex_);
    const auto it = cache_.find(target);
    if (it != cache_.end()) {
      ++hits_;
      oracle_metrics().hits.inc();
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      // Point query straight off the packed row: no widening, no
      // allocation — the narrow cache's fast path.
      return widen_entry(it->second.packed.get(), width_, u);
    }
  }
  return (*narrow_distances_to(target))[u];
}

std::shared_ptr<Dist> TargetDistanceCache::acquire_slot() const {
  // Steady state: a recycled arena slot (O(1) control-block bookkeeping).
  // When every slot is pinned (a prefetch wave larger than the budget),
  // spill to a plain heap row — correctness never depends on the arena
  // having room.
  std::shared_ptr<Dist> row = arena_.try_acquire();
  if (row == nullptr) {
    const std::size_t n = graph_.num_nodes();
    row = std::shared_ptr<Dist>(new Dist[n], std::default_delete<Dist[]>());
    // Already off the zero-allocation path (the row itself came from the
    // heap), so the counter costs nothing extra.
    oracle_metrics().pin_spills.inc();
  }
  return row;
}

DistVecPtr TargetDistanceCache::compute_row(NodeId target) const {
  const std::size_t n = graph_.num_nodes();
  std::shared_ptr<Dist> row = acquire_slot();
  local_bfs_workspace().distances_into(graph_, target, {row.get(), n});
  return {std::move(row), n};
}

DistVecPtr TargetDistanceCache::compute_row_with(ParallelBfs& engine,
                                                 NodeId target) const {
  const std::size_t n = graph_.num_nodes();
  std::shared_ptr<Dist> row = acquire_slot();
  engine.distances_into(graph_, target, {row.get(), n});
  return {std::move(row), n};
}

// ---- narrow-width internals -----------------------------------------------

std::shared_ptr<Dist> TargetDistanceCache::acquire_wide_locked() const {
  std::shared_ptr<Dist> slot = arena_.try_acquire();
  while (slot == nullptr && !wide_lru_.empty()) {
    // Window full: drop the least-recently-widened copy. Its slot recycles
    // immediately unless a caller still pins the row — then the drop frees
    // nothing and the loop moves to the next victim.
    const NodeId victim = wide_lru_.back();
    wide_lru_.pop_back();
    const auto it = cache_.find(victim);
    NAV_ASSERT(it != cache_.end());
    it->second.distances = DistVecPtr{};
    slot = arena_.try_acquire();
  }
  if (slot == nullptr) {
    slot = std::shared_ptr<Dist>(new Dist[graph_.num_nodes()],
                                 std::default_delete<Dist[]>());
    oracle_metrics().pin_spills.inc();
  }
  return slot;
}

std::shared_ptr<std::uint8_t> TargetDistanceCache::acquire_packed() const {
  std::shared_ptr<std::uint8_t> slot = packed_arena_->try_acquire();
  if (slot == nullptr) {
    slot = std::shared_ptr<std::uint8_t>(
        new std::uint8_t[packed_arena_->slot_size()],
        std::default_delete<std::uint8_t[]>());
    oracle_metrics().pin_spills.inc();
  }
  return slot;
}

DistVecPtr TargetDistanceCache::ensure_wide_locked(NodeId target,
                                                   Entry& entry) const {
  std::shared_ptr<Dist> wide = acquire_wide_locked();
  const std::size_t n = graph_.num_nodes();
  widen_row(entry.packed.get(), width_, {wide.get(), n});
  entry.distances = DistVecPtr{std::move(wide), n};
  wide_lru_.push_front(target);
  entry.wide_it = wide_lru_.begin();
  return entry.distances;
}

DistVecPtr TargetDistanceCache::install_narrow_locked(
    NodeId target, std::shared_ptr<Dist> wide,
    std::shared_ptr<std::uint8_t> packed) const {
  const std::size_t n = graph_.num_nodes();
  lru_.push_front(target);
  Entry entry;
  entry.lru_it = lru_.begin();
  entry.distances = DistVecPtr{std::move(wide), n};
  entry.packed = std::move(packed);
  wide_lru_.push_front(target);
  entry.wide_it = wide_lru_.begin();
  DistVecPtr result = entry.distances;
  cache_.emplace(target, std::move(entry));
  const std::size_t evicted = evict_overflow_locked();
  if (evicted > 0) oracle_metrics().evictions.inc(evicted);
  return result;
}

std::size_t TargetDistanceCache::evict_overflow_locked() const {
  std::size_t evicted = 0;
  while (cache_.size() > capacity_) {
    const NodeId victim = lru_.back();
    lru_.pop_back();
    const auto it = cache_.find(victim);
    if (it->second.distances != nullptr) wide_lru_.erase(it->second.wide_it);
    cache_.erase(it);  // slots recycle once the last pins drop
    ++evicted;
  }
  return evicted;
}

void TargetDistanceCache::throw_saturated() const {
  throw_width_saturated(width_);
}

DistVecPtr TargetDistanceCache::narrow_distances_to(NodeId target) const {
  NAV_ASSERT(target < graph_.num_nodes());
  const std::size_t n = graph_.num_nodes();
  {
    std::lock_guard lock(mutex_);
    const auto it = cache_.find(target);
    if (it != cache_.end()) {
      ++hits_;
      oracle_metrics().hits.inc();
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      if (it->second.distances != nullptr) {
        // Wide-resident hit: a refcount copy, zero allocations.
        wide_lru_.splice(wide_lru_.begin(), wide_lru_, it->second.wide_it);
        return it->second.distances;
      }
      // Packed-only hit: widen into the window under the lock (an O(n)
      // decode — much cheaper than the BFS a miss would pay).
      return ensure_wide_locked(target, it->second);
    }
    ++misses_;
    oracle_metrics().misses.inc();
  }
  // Miss: wide slot first (window eviction needs the lock), BFS outside it.
  std::shared_ptr<Dist> wide;
  {
    std::lock_guard lock(mutex_);
    wide = acquire_wide_locked();
  }
  local_bfs_workspace().distances_into(graph_, target, {wide.get(), n});
  std::shared_ptr<std::uint8_t> packed = acquire_packed();
  if (narrow_row({wide.get(), n}, width_, packed.get())) throw_saturated();
  std::lock_guard lock(mutex_);
  const auto it = cache_.find(target);
  if (it != cache_.end()) {  // lost the race: keep the winner's row
    if (it->second.distances != nullptr) return it->second.distances;
    return ensure_wide_locked(target, it->second);
  }
  return install_narrow_locked(target, std::move(wide), std::move(packed));
}

DistVecPtr TargetDistanceCache::distances_to(NodeId target) const {
  if (width_ != DistWidth::kU32) return narrow_distances_to(target);
  NAV_ASSERT(target < graph_.num_nodes());
  {
    std::lock_guard lock(mutex_);
    const auto it = cache_.find(target);
    if (it != cache_.end()) {
      ++hits_;
      oracle_metrics().hits.inc();
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // bump to front
      return it->second.distances;
    }
    ++misses_;
    oracle_metrics().misses.inc();
  }
  // BFS outside the lock: concurrent misses on the same target may compute it
  // twice; both results are identical, the second insert wins harmlessly.
  DistVecPtr dist = compute_row(target);
  std::lock_guard lock(mutex_);
  const auto it = cache_.find(target);
  if (it != cache_.end()) return it->second.distances;  // lost the race
  lru_.push_front(target);
  cache_.emplace(target, Entry{lru_.begin(), dist, nullptr, {}});
  while (cache_.size() > capacity_) {
    const NodeId victim = lru_.back();
    lru_.pop_back();
    cache_.erase(victim);  // the slot recycles once the last pin drops
    oracle_metrics().evictions.inc();
  }
  return dist;
}

std::vector<NodeId> TargetDistanceCache::resident_targets() const {
  std::lock_guard lock(mutex_);
  return {lru_.begin(), lru_.end()};
}

DistVecPtr TargetDistanceCache::peek(NodeId target) const {
  std::lock_guard lock(mutex_);
  const auto it = cache_.find(target);
  if (it == cache_.end()) return {};
  if (width_ == DistWidth::kU32 || it->second.distances != nullptr) {
    return it->second.distances;
  }
  // Packed-only resident on a narrow cache: hand out a private widened copy
  // without perturbing the window (peek must not change cache state).
  const std::size_t n = graph_.num_nodes();
  std::shared_ptr<Dist> row(new Dist[n], std::default_delete<Dist[]>());
  widen_row(it->second.packed.get(), width_, {row.get(), n});
  return {std::move(row), n};
}

bool TargetDistanceCache::erase(NodeId target) {
  std::lock_guard lock(mutex_);
  const auto it = cache_.find(target);
  if (it == cache_.end()) return false;
  if (width_ != DistWidth::kU32 && it->second.distances != nullptr) {
    wide_lru_.erase(it->second.wide_it);
  }
  lru_.erase(it->second.lru_it);
  cache_.erase(it);  // the slot recycles once the last pin drops
  return true;
}

void TargetDistanceCache::clear() {
  std::lock_guard lock(mutex_);
  lru_.clear();
  wide_lru_.clear();
  cache_.clear();
}

namespace {

// Grow-only per-thread scratch for TargetDistanceCache::prefetch_into: an
// open-addressing probe table for intra-wave dedup plus the miss lists. No
// node-based containers, so a warm all-hit wave allocates nothing.
struct PrefetchScratch {
  std::vector<std::size_t> table;      // probe slot -> input index + 1; 0 = empty
  std::vector<std::size_t> first_of;   // input index -> first occurrence index
  std::vector<NodeId> missing;         // distinct targets needing a BFS
  std::vector<std::size_t> miss_slot;  // their positions in the output
  std::vector<DistVecPtr> fresh;       // rows computed for `missing`
  // Narrow-width waves: pre-acquired storage for the misses.
  std::vector<std::shared_ptr<Dist>> wide_slots;
  std::vector<std::shared_ptr<std::uint8_t>> packed_slots;
};

/// Sizes the dedup probe table for a wave; returns the hash shift.
unsigned prepare_dedup(PrefetchScratch& scratch, std::size_t wave) {
  std::size_t cap = 16;
  while (cap < wave * 2) cap <<= 1;
  if (scratch.table.size() < cap) scratch.table.resize(cap);
  std::fill(scratch.table.begin(), scratch.table.begin() + cap, std::size_t{0});
  if (scratch.first_of.size() < wave) scratch.first_of.resize(wave);
  scratch.missing.clear();
  scratch.miss_slot.clear();
  return 64u - static_cast<unsigned>(std::countr_zero(cap));
}

/// Dedup probe: returns the first-occurrence index of targets[i] (i itself
/// when this is the first sighting).
std::size_t dedup_probe(PrefetchScratch& scratch,
                        std::span<const NodeId> targets, std::size_t i,
                        unsigned shift) {
  const NodeId t = targets[i];
  const std::size_t cap = std::size_t{1}
                          << (64u - shift);  // table size in use
  std::size_t slot = static_cast<std::size_t>(
      (std::uint64_t{t} * 0x9E3779B97F4A7C15ull) >> shift);
  while (true) {
    const std::size_t stored = scratch.table[slot];
    if (stored == 0) {
      scratch.table[slot] = i + 1;
      scratch.first_of[i] = i;
      return i;
    }
    if (targets[stored - 1] == t) {
      scratch.first_of[i] = stored - 1;
      return stored - 1;
    }
    slot = (slot + 1) & (cap - 1);
  }
}

}  // namespace

void TargetDistanceCache::narrow_prefetch_into(
    std::span<const NodeId> targets, std::vector<DistVecPtr>& out) const {
  NAV_OBS_SPAN("oracle.prefetch_wave", "targets",
               static_cast<double>(targets.size()));
  out.clear();
  out.resize(targets.size());
  if (targets.empty()) return;
  oracle_metrics().wave_width.observe(static_cast<double>(targets.size()));

  auto& scratch = nav::thread_scratch<PrefetchScratch>();
  const unsigned shift = prepare_dedup(scratch, targets.size());
  const std::size_t n = graph_.num_nodes();

  // Pass 1 (under the lock): dedup, serve residents (widening packed-only
  // rows into the window), list misses, and pre-acquire their storage —
  // window eviction needs the lock anyway, so the misses leave this pass
  // holding both their Dist staging slot and their packed slot.
  std::size_t wave_hits = 0;
  {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      const NodeId t = targets[i];
      NAV_ASSERT(t < graph_.num_nodes());
      if (dedup_probe(scratch, targets, i, shift) != i) {
        ++hits_;  // served by the first occurrence's row
        ++wave_hits;
        continue;
      }
      const auto it = cache_.find(t);
      if (it != cache_.end()) {
        ++hits_;
        ++wave_hits;
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        if (it->second.distances != nullptr) {
          wide_lru_.splice(wide_lru_.begin(), wide_lru_, it->second.wide_it);
          out[i] = it->second.distances;
        } else {
          out[i] = ensure_wide_locked(t, it->second);
        }
      } else {
        ++misses_;
        scratch.missing.push_back(t);
        scratch.miss_slot.push_back(i);
      }
    }
    scratch.wide_slots.clear();
    scratch.packed_slots.clear();
    scratch.wide_slots.resize(scratch.missing.size());
    scratch.packed_slots.resize(scratch.missing.size());
    for (std::size_t k = 0; k < scratch.missing.size(); ++k) {
      scratch.wide_slots[k] = acquire_wide_locked();
      scratch.packed_slots[k] = acquire_packed();
    }
  }
  if (wave_hits > 0) oracle_metrics().hits.inc(wave_hits);
  if (!scratch.missing.empty()) {
    oracle_metrics().misses.inc(scratch.missing.size());
  }
  oracle_metrics().wave_misses.observe(
      static_cast<double>(scratch.missing.size()));

  // Pass 2 (no lock): BFS + pack each distinct miss, adaptive in the policy.
  // Saturation is flagged (pool tasks are noexcept by policy) and thrown by
  // the coordinator after the fan-out.
  std::atomic<bool> saturated{false};
  const auto fill = [&](std::size_t k) {
    const std::span<Dist> wide{scratch.wide_slots[k].get(), n};
    local_bfs_workspace().distances_into(graph_, scratch.missing[k], wide);
    if (narrow_row(wide, width_, scratch.packed_slots[k].get())) {
      saturated.store(true, std::memory_order_relaxed);
    }
  };
  const std::size_t workers = policy_.resolved_workers();
  if (workers > 1 && scratch.missing.size() >= workers) {
    nav::parallel_for_dynamic(0, scratch.missing.size(), fill, workers);
  } else if (workers > 1 && !scratch.missing.empty()) {
    // Narrow wave: each miss as one multi-worker sweep; packing stays on
    // the coordinator.
    std::lock_guard engine_lock(engine_mutex_);
    if (engine_ == nullptr) engine_ = std::make_unique<ParallelBfs>(policy_);
    for (std::size_t k = 0; k < scratch.missing.size(); ++k) {
      const std::span<Dist> wide{scratch.wide_slots[k].get(), n};
      engine_->distances_into(graph_, scratch.missing[k], wide);
      if (narrow_row(wide, width_, scratch.packed_slots[k].get())) {
        saturated.store(true, std::memory_order_relaxed);
      }
    }
  } else {
    for (std::size_t k = 0; k < scratch.missing.size(); ++k) fill(k);
  }
  if (saturated.load(std::memory_order_relaxed)) {
    scratch.wide_slots.clear();
    scratch.packed_slots.clear();
    throw_saturated();
  }

  // Pass 3 (under the lock): install the new rows, newest-first LRU.
  if (!scratch.missing.empty()) {
    std::lock_guard lock(mutex_);
    for (std::size_t k = 0; k < scratch.missing.size(); ++k) {
      const NodeId t = scratch.missing[k];
      const auto it = cache_.find(t);
      if (it != cache_.end()) {  // a concurrent caller raced us: keep theirs
        out[scratch.miss_slot[k]] =
            it->second.distances != nullptr
                ? it->second.distances
                : ensure_wide_locked(t, it->second);
        continue;
      }
      out[scratch.miss_slot[k]] =
          install_narrow_locked(t, std::move(scratch.wide_slots[k]),
                                std::move(scratch.packed_slots[k]));
    }
  }
  scratch.wide_slots.clear();
  scratch.packed_slots.clear();

  // Final pass: duplicates alias their first occurrence's pin.
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (scratch.first_of[i] != i) out[i] = out[scratch.first_of[i]];
  }
}

void TargetDistanceCache::prefetch_into(std::span<const NodeId> targets,
                                        std::vector<DistVecPtr>& out) const {
  if (width_ != DistWidth::kU32) {
    narrow_prefetch_into(targets, out);
    return;
  }
  NAV_OBS_SPAN("oracle.prefetch_wave", "targets",
               static_cast<double>(targets.size()));
  out.clear();
  out.resize(targets.size());
  if (targets.empty()) return;
  oracle_metrics().wave_width.observe(static_cast<double>(targets.size()));

  auto& scratch = nav::thread_scratch<PrefetchScratch>();
  const unsigned shift = prepare_dedup(scratch, targets.size());

  // Pass 1 (under the lock): dedup the wave, serve residents, list misses.
  // Registry increments are batched per wave (one shard write per counter,
  // after the loop) instead of per target.
  std::size_t wave_hits = 0;
  {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      const NodeId t = targets[i];
      NAV_ASSERT(t < graph_.num_nodes());
      if (dedup_probe(scratch, targets, i, shift) != i) {
        ++hits_;  // served by the first occurrence's row
        ++wave_hits;
        continue;
      }
      const auto it = cache_.find(t);
      if (it != cache_.end()) {
        ++hits_;
        ++wave_hits;
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        out[i] = it->second.distances;
      } else {
        ++misses_;
        scratch.missing.push_back(t);
        scratch.miss_slot.push_back(i);
      }
    }
  }
  if (wave_hits > 0) oracle_metrics().hits.inc(wave_hits);
  if (!scratch.missing.empty()) {
    oracle_metrics().misses.inc(scratch.missing.size());
  }
  oracle_metrics().wave_misses.observe(
      static_cast<double>(scratch.missing.size()));

  // Pass 2 (no lock): BFS the distinct misses, adaptively in the policy.
  auto& fresh = scratch.fresh;
  fresh.clear();
  fresh.resize(scratch.missing.size());
  const std::size_t workers = policy_.resolved_workers();
  if (workers > 1 && scratch.missing.size() >= workers) {
    // Wide wave: farm whole rows across the pool, one scalar sweep each —
    // this is the batched-prefetch win over miss-by-miss distances_to.
    nav::parallel_for_dynamic(
        0, scratch.missing.size(),
        [&](std::size_t k) { fresh[k] = compute_row(scratch.missing[k]); },
        workers);
  } else if (workers > 1 && !scratch.missing.empty()) {
    // Narrow wave: fewer misses than workers, so row farming would idle
    // most lanes — run each miss as one multi-worker sweep instead.
    std::lock_guard engine_lock(engine_mutex_);
    if (engine_ == nullptr) engine_ = std::make_unique<ParallelBfs>(policy_);
    for (std::size_t k = 0; k < scratch.missing.size(); ++k) {
      fresh[k] = compute_row_with(*engine_, scratch.missing[k]);
    }
  } else {
    for (std::size_t k = 0; k < scratch.missing.size(); ++k) {
      fresh[k] = compute_row(scratch.missing[k]);
    }
  }

  // Pass 3 (under the lock): install the new vectors, newest-first LRU.
  if (!scratch.missing.empty()) {
    std::lock_guard lock(mutex_);
    for (std::size_t k = 0; k < scratch.missing.size(); ++k) {
      const NodeId t = scratch.missing[k];
      const auto it = cache_.find(t);
      if (it != cache_.end()) {  // a concurrent caller raced us: keep theirs
        out[scratch.miss_slot[k]] = it->second.distances;
        continue;
      }
      lru_.push_front(t);
      cache_.emplace(t, Entry{lru_.begin(), fresh[k], nullptr, {}});
      out[scratch.miss_slot[k]] = fresh[k];
    }
    std::size_t wave_evictions = 0;
    while (cache_.size() > capacity_) {
      const NodeId victim = lru_.back();
      lru_.pop_back();
      cache_.erase(victim);
      ++wave_evictions;
    }
    if (wave_evictions > 0) oracle_metrics().evictions.inc(wave_evictions);
  }
  fresh.clear();  // drop the scratch pins: rows now live via cache_/out

  // Final pass: duplicates alias their first occurrence's pin.
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (scratch.first_of[i] != i) out[i] = out[scratch.first_of[i]];
  }
}

}  // namespace nav::graph
