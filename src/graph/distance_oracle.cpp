#include "graph/distance_oracle.hpp"

#include <algorithm>
#include <bit>

#include "graph/bfs_engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/scratch_pool.hpp"
#include "runtime/thread_pool.hpp"

namespace nav::graph {

namespace {

// Library-level oracle telemetry lands in the process-wide registry: every
// oracle instance feeds the same `oracle.*` series (route_server scrapes
// them via --metrics-out). Handles are registered once (magic static);
// increments are wait-free shard writes, mirroring — not replacing — the
// per-instance hits()/misses() accessors.
struct OracleMetrics {
  obs::Counter hits = obs::default_registry().counter("oracle.cache_hits");
  obs::Counter misses = obs::default_registry().counter("oracle.cache_misses");
  obs::Counter evictions = obs::default_registry().counter("oracle.evictions");
  obs::Counter pin_spills =
      obs::default_registry().counter("oracle.pin_spills");
  obs::Counter matrix_rows =
      obs::default_registry().counter("oracle.matrix_rows_built");
  obs::HistogramHandle wave_width =
      obs::default_registry().histogram("oracle.wave_width", 0.0, 512.0, 64);
  obs::HistogramHandle wave_misses =
      obs::default_registry().histogram("oracle.wave_misses", 0.0, 512.0, 64);
};

OracleMetrics& oracle_metrics() {
  static OracleMetrics metrics;
  return metrics;
}

}  // namespace

void DistanceOracle::prefetch_into(std::span<const NodeId> targets,
                                   std::vector<DistVecPtr>& out) const {
  out.clear();
  out.reserve(targets.size());
  for (const NodeId t : targets) out.push_back(distances_to(t));
}

DistanceMatrix::DistanceMatrix(const Graph& g, ParallelPolicy policy)
    : n_(g.num_nodes()),
      policy_(policy),
      // Deliberately uninitialised (default-init, not value-init): every
      // entry is BFS-filled below, and skipping the zero pass means the
      // first touch of each row happens on the worker that computes it —
      // on NUMA hosts the pages land near that worker's socket.
      slab_(new Dist[static_cast<std::size_t>(n_) * n_]) {
  NAV_OBS_SPAN("oracle.matrix_build", "rows", static_cast<double>(n_));
  nav::parallel_for_dynamic(
      0, n_, [&](std::size_t t) { fill_row(g, static_cast<NodeId>(t)); },
      policy_.resolved_workers());
  // Counted from the coordinator, not the pool workers: one shard write
  // instead of n, and lane threads stay metrics-free (the warm-parallel
  // zero-allocation contract).
  oracle_metrics().matrix_rows.inc(n_);
}

void DistanceMatrix::fill_row(const Graph& g, NodeId target) {
  // Each worker reuses its pooled workspace; rows are disjoint slab slices.
  local_bfs_workspace().distances_into(
      g, target,
      {slab_.get() + static_cast<std::size_t>(target) * n_,
       static_cast<std::size_t>(n_)});
}

Dist DistanceMatrix::distance(NodeId u, NodeId target) const {
  NAV_ASSERT(u < n_ && target < n_);
  return slab_[static_cast<std::size_t>(target) * n_ + u];
}

DistVecPtr DistanceMatrix::distances_to(NodeId target) const {
  NAV_ASSERT(target < n_);
  // Aliasing handle: pins the whole slab, views one row.
  return {std::shared_ptr<const Dist>(
              slab_, slab_.get() + static_cast<std::size_t>(target) * n_),
          n_};
}

void DistanceMatrix::rebuild_rows(const Graph& g,
                                  std::span<const NodeId> targets) {
  NAV_REQUIRE(g.num_nodes() == n_, "rebuild graph/matrix size mismatch");
  NAV_OBS_SPAN("oracle.rebuild_rows", "rows",
               static_cast<double>(targets.size()));
  nav::parallel_for_dynamic(
      0, targets.size(),
      [&](std::size_t i) {
        NAV_ASSERT(targets[i] < n_);
        fill_row(g, targets[i]);
      },
      policy_.resolved_workers());
  oracle_metrics().matrix_rows.inc(targets.size());
}

void DistanceMatrix::rebuild_all(const Graph& g) {
  NAV_REQUIRE(g.num_nodes() == n_, "rebuild graph/matrix size mismatch");
  NAV_OBS_SPAN("oracle.rebuild_all", "rows", static_cast<double>(n_));
  nav::parallel_for_dynamic(
      0, n_, [&](std::size_t t) { fill_row(g, static_cast<NodeId>(t)); },
      policy_.resolved_workers());
  oracle_metrics().matrix_rows.inc(n_);
}

TargetDistanceCache::TargetDistanceCache(const Graph& g, std::size_t capacity,
                                         ParallelPolicy policy)
    : graph_(g),
      capacity_(capacity == 0 ? 1 : capacity),
      policy_(policy),
      // One slot beyond the LRU capacity: a miss on a full cache computes its
      // row BEFORE evicting (the victim's slot frees only after the insert),
      // so without the spare every such miss would spill to the heap.
      arena_(capacity_ + 1, g.num_nodes()) {}

TargetDistanceCache::TargetDistanceCache(const Graph& g, MemoryBudget budget,
                                         ParallelPolicy policy)
    : TargetDistanceCache(g, capacity_for_budget(budget, g.num_nodes()),
                          policy) {}

std::size_t TargetDistanceCache::capacity_for_budget(MemoryBudget budget,
                                                     NodeId n) noexcept {
  const std::size_t vector_bytes =
      std::max<std::size_t>(1, static_cast<std::size_t>(n) * sizeof(Dist));
  return std::max<std::size_t>(1, budget.bytes / vector_bytes);
}

Dist TargetDistanceCache::distance(NodeId u, NodeId target) const {
  return (*distances_to(target))[u];
}

std::shared_ptr<Dist> TargetDistanceCache::acquire_slot() const {
  // Steady state: a recycled arena slot (O(1) control-block bookkeeping).
  // When every slot is pinned (a prefetch wave larger than the budget),
  // spill to a plain heap row — correctness never depends on the arena
  // having room.
  std::shared_ptr<Dist> row = arena_.try_acquire();
  if (row == nullptr) {
    const std::size_t n = graph_.num_nodes();
    row = std::shared_ptr<Dist>(new Dist[n], std::default_delete<Dist[]>());
    // Already off the zero-allocation path (the row itself came from the
    // heap), so the counter costs nothing extra.
    oracle_metrics().pin_spills.inc();
  }
  return row;
}

DistVecPtr TargetDistanceCache::compute_row(NodeId target) const {
  const std::size_t n = graph_.num_nodes();
  std::shared_ptr<Dist> row = acquire_slot();
  local_bfs_workspace().distances_into(graph_, target, {row.get(), n});
  return {std::move(row), n};
}

DistVecPtr TargetDistanceCache::compute_row_with(ParallelBfs& engine,
                                                 NodeId target) const {
  const std::size_t n = graph_.num_nodes();
  std::shared_ptr<Dist> row = acquire_slot();
  engine.distances_into(graph_, target, {row.get(), n});
  return {std::move(row), n};
}

DistVecPtr TargetDistanceCache::distances_to(NodeId target) const {
  NAV_ASSERT(target < graph_.num_nodes());
  {
    std::lock_guard lock(mutex_);
    const auto it = cache_.find(target);
    if (it != cache_.end()) {
      ++hits_;
      oracle_metrics().hits.inc();
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // bump to front
      return it->second.distances;
    }
    ++misses_;
    oracle_metrics().misses.inc();
  }
  // BFS outside the lock: concurrent misses on the same target may compute it
  // twice; both results are identical, the second insert wins harmlessly.
  DistVecPtr dist = compute_row(target);
  std::lock_guard lock(mutex_);
  const auto it = cache_.find(target);
  if (it != cache_.end()) return it->second.distances;  // lost the race
  lru_.push_front(target);
  cache_.emplace(target, Entry{lru_.begin(), dist});
  while (cache_.size() > capacity_) {
    const NodeId victim = lru_.back();
    lru_.pop_back();
    cache_.erase(victim);  // the slot recycles once the last pin drops
    oracle_metrics().evictions.inc();
  }
  return dist;
}

std::vector<NodeId> TargetDistanceCache::resident_targets() const {
  std::lock_guard lock(mutex_);
  return {lru_.begin(), lru_.end()};
}

DistVecPtr TargetDistanceCache::peek(NodeId target) const {
  std::lock_guard lock(mutex_);
  const auto it = cache_.find(target);
  return it == cache_.end() ? DistVecPtr{} : it->second.distances;
}

bool TargetDistanceCache::erase(NodeId target) {
  std::lock_guard lock(mutex_);
  const auto it = cache_.find(target);
  if (it == cache_.end()) return false;
  lru_.erase(it->second.lru_it);
  cache_.erase(it);  // the slot recycles once the last pin drops
  return true;
}

void TargetDistanceCache::clear() {
  std::lock_guard lock(mutex_);
  lru_.clear();
  cache_.clear();
}

namespace {

// Grow-only per-thread scratch for TargetDistanceCache::prefetch_into: an
// open-addressing probe table for intra-wave dedup plus the miss lists. No
// node-based containers, so a warm all-hit wave allocates nothing.
struct PrefetchScratch {
  std::vector<std::size_t> table;      // probe slot -> input index + 1; 0 = empty
  std::vector<std::size_t> first_of;   // input index -> first occurrence index
  std::vector<NodeId> missing;         // distinct targets needing a BFS
  std::vector<std::size_t> miss_slot;  // their positions in the output
  std::vector<DistVecPtr> fresh;       // rows computed for `missing`
};

}  // namespace

void TargetDistanceCache::prefetch_into(std::span<const NodeId> targets,
                                        std::vector<DistVecPtr>& out) const {
  NAV_OBS_SPAN("oracle.prefetch_wave", "targets",
               static_cast<double>(targets.size()));
  out.clear();
  out.resize(targets.size());
  if (targets.empty()) return;
  oracle_metrics().wave_width.observe(static_cast<double>(targets.size()));

  auto& scratch = nav::thread_scratch<PrefetchScratch>();
  std::size_t cap = 16;
  while (cap < targets.size() * 2) cap <<= 1;
  if (scratch.table.size() < cap) scratch.table.resize(cap);
  std::fill(scratch.table.begin(), scratch.table.begin() + cap, std::size_t{0});
  if (scratch.first_of.size() < targets.size()) {
    scratch.first_of.resize(targets.size());
  }
  scratch.missing.clear();
  scratch.miss_slot.clear();
  const unsigned shift =
      64u - static_cast<unsigned>(std::countr_zero(cap));  // cap is a power of 2

  // Pass 1 (under the lock): dedup the wave, serve residents, list misses.
  // Registry increments are batched per wave (one shard write per counter,
  // after the loop) instead of per target.
  std::size_t wave_hits = 0;
  {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      const NodeId t = targets[i];
      NAV_ASSERT(t < graph_.num_nodes());
      std::size_t slot = static_cast<std::size_t>(
          (std::uint64_t{t} * 0x9E3779B97F4A7C15ull) >> shift);
      bool duplicate = false;
      while (true) {
        const std::size_t stored = scratch.table[slot];
        if (stored == 0) {
          scratch.table[slot] = i + 1;
          scratch.first_of[i] = i;
          break;
        }
        if (targets[stored - 1] == t) {
          scratch.first_of[i] = stored - 1;
          duplicate = true;  // served by the first occurrence's row
          break;
        }
        slot = (slot + 1) & (cap - 1);
      }
      if (duplicate) {
        ++hits_;
        ++wave_hits;
        continue;
      }
      const auto it = cache_.find(t);
      if (it != cache_.end()) {
        ++hits_;
        ++wave_hits;
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        out[i] = it->second.distances;
      } else {
        ++misses_;
        scratch.missing.push_back(t);
        scratch.miss_slot.push_back(i);
      }
    }
  }
  if (wave_hits > 0) oracle_metrics().hits.inc(wave_hits);
  if (!scratch.missing.empty()) {
    oracle_metrics().misses.inc(scratch.missing.size());
  }
  oracle_metrics().wave_misses.observe(
      static_cast<double>(scratch.missing.size()));

  // Pass 2 (no lock): BFS the distinct misses, adaptively in the policy.
  auto& fresh = scratch.fresh;
  fresh.clear();
  fresh.resize(scratch.missing.size());
  const std::size_t workers = policy_.resolved_workers();
  if (workers > 1 && scratch.missing.size() >= workers) {
    // Wide wave: farm whole rows across the pool, one scalar sweep each —
    // this is the batched-prefetch win over miss-by-miss distances_to.
    nav::parallel_for_dynamic(
        0, scratch.missing.size(),
        [&](std::size_t k) { fresh[k] = compute_row(scratch.missing[k]); },
        workers);
  } else if (workers > 1 && !scratch.missing.empty()) {
    // Narrow wave: fewer misses than workers, so row farming would idle
    // most lanes — run each miss as one multi-worker sweep instead.
    std::lock_guard engine_lock(engine_mutex_);
    if (engine_ == nullptr) engine_ = std::make_unique<ParallelBfs>(policy_);
    for (std::size_t k = 0; k < scratch.missing.size(); ++k) {
      fresh[k] = compute_row_with(*engine_, scratch.missing[k]);
    }
  } else {
    for (std::size_t k = 0; k < scratch.missing.size(); ++k) {
      fresh[k] = compute_row(scratch.missing[k]);
    }
  }

  // Pass 3 (under the lock): install the new vectors, newest-first LRU.
  if (!scratch.missing.empty()) {
    std::lock_guard lock(mutex_);
    for (std::size_t k = 0; k < scratch.missing.size(); ++k) {
      const NodeId t = scratch.missing[k];
      const auto it = cache_.find(t);
      if (it != cache_.end()) {  // a concurrent caller raced us: keep theirs
        out[scratch.miss_slot[k]] = it->second.distances;
        continue;
      }
      lru_.push_front(t);
      cache_.emplace(t, Entry{lru_.begin(), fresh[k]});
      out[scratch.miss_slot[k]] = fresh[k];
    }
    std::size_t wave_evictions = 0;
    while (cache_.size() > capacity_) {
      const NodeId victim = lru_.back();
      lru_.pop_back();
      cache_.erase(victim);
      ++wave_evictions;
    }
    if (wave_evictions > 0) oracle_metrics().evictions.inc(wave_evictions);
  }
  fresh.clear();  // drop the scratch pins: rows now live via cache_/out

  // Final pass: duplicates alias their first occurrence's pin.
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (scratch.first_of[i] != i) out[i] = out[scratch.first_of[i]];
  }
}

}  // namespace nav::graph
