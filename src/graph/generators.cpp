#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>
#include <vector>

#include "graph/connectivity.hpp"

namespace nav::graph {

namespace {

using EdgeVec = std::vector<std::pair<NodeId, NodeId>>;

}  // namespace

Graph make_path(NodeId n) {
  NAV_REQUIRE(n >= 1, "path needs n >= 1");
  EdgeVec edges;
  edges.reserve(n > 0 ? n - 1 : 0);
  for (NodeId u = 0; u + 1 < n; ++u) edges.emplace_back(u, u + 1);
  return Graph(n, std::move(edges));
}

Graph make_cycle(NodeId n) {
  NAV_REQUIRE(n >= 3, "cycle needs n >= 3");
  EdgeVec edges;
  edges.reserve(n);
  for (NodeId u = 0; u + 1 < n; ++u) edges.emplace_back(u, u + 1);
  edges.emplace_back(n - 1, 0);
  return Graph(n, std::move(edges));
}

Graph make_complete(NodeId n) {
  NAV_REQUIRE(n >= 1, "complete graph needs n >= 1");
  EdgeVec edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  return Graph(n, std::move(edges));
}

Graph make_star(NodeId n) {
  NAV_REQUIRE(n >= 2, "star needs n >= 2");
  EdgeVec edges;
  edges.reserve(n - 1);
  for (NodeId v = 1; v < n; ++v) edges.emplace_back(0, v);
  return Graph(n, std::move(edges));
}

Graph make_balanced_tree(NodeId n, std::uint32_t arity) {
  NAV_REQUIRE(n >= 1, "tree needs n >= 1");
  NAV_REQUIRE(arity >= 2, "arity must be >= 2");
  EdgeVec edges;
  edges.reserve(n > 0 ? n - 1 : 0);
  for (NodeId v = 1; v < n; ++v) {
    const NodeId parent = (v - 1) / arity;
    edges.emplace_back(parent, v);
  }
  return Graph(n, std::move(edges));
}

Graph make_caterpillar(NodeId spine, NodeId legs) {
  NAV_REQUIRE(spine >= 1, "caterpillar needs spine >= 1");
  const std::uint64_t total =
      static_cast<std::uint64_t>(spine) * (1 + static_cast<std::uint64_t>(legs));
  NAV_REQUIRE(total <= kNoNode, "caterpillar too large");
  const auto n = static_cast<NodeId>(total);
  EdgeVec edges;
  for (NodeId s = 0; s + 1 < spine; ++s) edges.emplace_back(s, s + 1);
  NodeId next = spine;
  for (NodeId s = 0; s < spine; ++s)
    for (NodeId l = 0; l < legs; ++l) edges.emplace_back(s, next++);
  return Graph(n, std::move(edges));
}

Graph make_comb(NodeId spine, NodeId tooth) {
  NAV_REQUIRE(spine >= 1, "comb needs spine >= 1");
  const std::uint64_t total =
      static_cast<std::uint64_t>(spine) * (1 + static_cast<std::uint64_t>(tooth));
  NAV_REQUIRE(total <= kNoNode, "comb too large");
  const auto n = static_cast<NodeId>(total);
  EdgeVec edges;
  for (NodeId s = 0; s + 1 < spine; ++s) edges.emplace_back(s, s + 1);
  NodeId next = spine;
  for (NodeId s = 0; s < spine; ++s) {
    NodeId prev = s;
    for (NodeId t = 0; t < tooth; ++t) {
      edges.emplace_back(prev, next);
      prev = next++;
    }
  }
  return Graph(n, std::move(edges));
}

Graph make_spider(NodeId legs, NodeId leg_len) {
  NAV_REQUIRE(legs >= 1 && leg_len >= 1, "spider needs legs, leg_len >= 1");
  const std::uint64_t total =
      1 + static_cast<std::uint64_t>(legs) * static_cast<std::uint64_t>(leg_len);
  NAV_REQUIRE(total <= kNoNode, "spider too large");
  const auto n = static_cast<NodeId>(total);
  EdgeVec edges;
  NodeId next = 1;
  for (NodeId l = 0; l < legs; ++l) {
    NodeId prev = 0;
    for (NodeId s = 0; s < leg_len; ++s) {
      edges.emplace_back(prev, next);
      prev = next++;
    }
  }
  return Graph(n, std::move(edges));
}

Graph make_grid2d(NodeId rows, NodeId cols) {
  NAV_REQUIRE(rows >= 1 && cols >= 1, "grid needs rows, cols >= 1");
  const std::uint64_t total = static_cast<std::uint64_t>(rows) * cols;
  NAV_REQUIRE(total <= kNoNode, "grid too large");
  const auto n = static_cast<NodeId>(total);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  EdgeVec edges;
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return Graph(n, std::move(edges));
}

Graph make_torus2d(NodeId rows, NodeId cols) {
  NAV_REQUIRE(rows >= 3 && cols >= 3, "torus needs rows, cols >= 3");
  const std::uint64_t total = static_cast<std::uint64_t>(rows) * cols;
  NAV_REQUIRE(total <= kNoNode, "torus too large");
  const auto n = static_cast<NodeId>(total);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  EdgeVec edges;
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      edges.emplace_back(id(r, c), id(r, (c + 1) % cols));
      edges.emplace_back(id(r, c), id((r + 1) % rows, c));
    }
  }
  return Graph(n, std::move(edges));
}

Graph make_grid3d(NodeId x, NodeId y, NodeId z) {
  NAV_REQUIRE(x >= 1 && y >= 1 && z >= 1, "grid3d needs positive dims");
  const std::uint64_t total =
      static_cast<std::uint64_t>(x) * y * z;
  NAV_REQUIRE(total <= kNoNode, "grid3d too large");
  const auto n = static_cast<NodeId>(total);
  auto id = [y, z](NodeId i, NodeId j, NodeId k) { return (i * y + j) * z + k; };
  EdgeVec edges;
  for (NodeId i = 0; i < x; ++i)
    for (NodeId j = 0; j < y; ++j)
      for (NodeId k = 0; k < z; ++k) {
        if (i + 1 < x) edges.emplace_back(id(i, j, k), id(i + 1, j, k));
        if (j + 1 < y) edges.emplace_back(id(i, j, k), id(i, j + 1, k));
        if (k + 1 < z) edges.emplace_back(id(i, j, k), id(i, j, k + 1));
      }
  return Graph(n, std::move(edges));
}

Graph make_hypercube(std::uint32_t dim) {
  NAV_REQUIRE(dim >= 1 && dim <= 20, "hypercube dim in [1, 20]");
  const NodeId n = NodeId{1} << dim;
  EdgeVec edges;
  edges.reserve(static_cast<std::size_t>(n) * dim / 2);
  for (NodeId u = 0; u < n; ++u)
    for (std::uint32_t b = 0; b < dim; ++b) {
      const NodeId v = u ^ (NodeId{1} << b);
      if (u < v) edges.emplace_back(u, v);
    }
  return Graph(n, std::move(edges));
}

Graph make_lollipop(NodeId clique, NodeId tail) {
  NAV_REQUIRE(clique >= 2, "lollipop clique >= 2");
  const std::uint64_t total = static_cast<std::uint64_t>(clique) + tail;
  NAV_REQUIRE(total <= kNoNode, "lollipop too large");
  const auto n = static_cast<NodeId>(total);
  EdgeVec edges;
  for (NodeId u = 0; u < clique; ++u)
    for (NodeId v = u + 1; v < clique; ++v) edges.emplace_back(u, v);
  NodeId prev = clique - 1;
  for (NodeId t = 0; t < tail; ++t) {
    edges.emplace_back(prev, clique + t);
    prev = clique + t;
  }
  return Graph(n, std::move(edges));
}

Graph make_barbell(NodeId clique, NodeId bridge) {
  NAV_REQUIRE(clique >= 2, "barbell clique >= 2");
  const std::uint64_t total =
      2 * static_cast<std::uint64_t>(clique) + bridge;
  NAV_REQUIRE(total <= kNoNode, "barbell too large");
  const auto n = static_cast<NodeId>(total);
  EdgeVec edges;
  for (NodeId u = 0; u < clique; ++u)
    for (NodeId v = u + 1; v < clique; ++v) edges.emplace_back(u, v);
  const NodeId second = clique + bridge;
  for (NodeId u = 0; u < clique; ++u)
    for (NodeId v = u + 1; v < clique; ++v)
      edges.emplace_back(second + u, second + v);
  // Bridge path: clique-1 -> bridge nodes -> second clique node 0.
  NodeId prev = clique - 1;
  for (NodeId b = 0; b < bridge; ++b) {
    edges.emplace_back(prev, clique + b);
    prev = clique + b;
  }
  edges.emplace_back(prev, second);
  return Graph(n, std::move(edges));
}

Graph make_ring_of_cliques(NodeId count, NodeId clique) {
  NAV_REQUIRE(count >= 3, "ring needs >= 3 cliques");
  NAV_REQUIRE(clique >= 2, "cliques need >= 2 nodes");
  const std::uint64_t total =
      static_cast<std::uint64_t>(count) * clique;
  NAV_REQUIRE(total <= kNoNode, "ring of cliques too large");
  const auto n = static_cast<NodeId>(total);
  EdgeVec edges;
  for (NodeId c = 0; c < count; ++c) {
    const NodeId base = c * clique;
    for (NodeId u = 0; u < clique; ++u)
      for (NodeId v = u + 1; v < clique; ++v)
        edges.emplace_back(base + u, base + v);
    // Bridge: last node of this clique to first node of the next.
    const NodeId next_base = ((c + 1) % count) * clique;
    edges.emplace_back(base + clique - 1, next_base);
  }
  return Graph(n, std::move(edges));
}

Graph make_subdivided_complete(NodeId q, NodeId seg) {
  NAV_REQUIRE(q >= 2, "subdivided complete needs q >= 2");
  const std::uint64_t pairs = static_cast<std::uint64_t>(q) * (q - 1) / 2;
  const std::uint64_t total = q + pairs * seg;
  NAV_REQUIRE(total <= kNoNode, "subdivided complete too large");
  const auto n = static_cast<NodeId>(total);
  EdgeVec edges;
  NodeId next = q;
  for (NodeId u = 0; u < q; ++u) {
    for (NodeId v = u + 1; v < q; ++v) {
      if (seg == 0) {
        edges.emplace_back(u, v);
        continue;
      }
      NodeId prev = u;
      for (NodeId s = 0; s < seg; ++s) {
        edges.emplace_back(prev, next);
        prev = next++;
      }
      edges.emplace_back(prev, v);
    }
  }
  return Graph(n, std::move(edges));
}

Graph make_gnp(NodeId n, double p, Rng& rng) {
  NAV_REQUIRE(n >= 1, "gnp needs n >= 1");
  NAV_REQUIRE(p >= 0.0 && p <= 1.0, "gnp needs p in [0,1]");
  EdgeVec edges;
  if (p <= 0.0) return Graph(n, std::move(edges));
  if (p >= 1.0) return make_complete(n);
  // Geometric skipping (Batagelj–Brandes): expected O(n + m) time.
  const double log1mp = std::log1p(-p);
  std::int64_t v = 1;
  std::int64_t w = -1;
  while (v < static_cast<std::int64_t>(n)) {
    const double r = rng.next_double();
    w += 1 + static_cast<std::int64_t>(std::floor(std::log1p(-r) / log1mp));
    while (w >= v && v < static_cast<std::int64_t>(n)) {
      w -= v;
      ++v;
    }
    if (v < static_cast<std::int64_t>(n)) {
      edges.emplace_back(static_cast<NodeId>(w), static_cast<NodeId>(v));
    }
  }
  return Graph(n, std::move(edges));
}

Graph make_connected_gnp(NodeId n, double p, Rng& rng) {
  for (int attempt = 0; attempt < 32; ++attempt) {
    Graph g = make_gnp(n, p, rng);
    if (is_connected(g)) return g;
  }
  // Repair: connect components along a random spanning chain.
  Graph g = make_gnp(n, p, rng);
  const auto comps = connected_components(g);
  std::vector<NodeId> representative(comps.count, kNoNode);
  for (NodeId u = 0; u < n; ++u) {
    if (representative[comps.component_of[u]] == kNoNode)
      representative[comps.component_of[u]] = u;
  }
  auto edges = g.edge_list();
  for (std::size_t c = 1; c < comps.count; ++c) {
    edges.emplace_back(representative[c - 1], representative[c]);
  }
  return Graph(n, std::move(edges));
}

Graph make_random_tree(NodeId n, Rng& rng) {
  NAV_REQUIRE(n >= 1, "tree needs n >= 1");
  if (n == 1) return Graph(1, {});
  if (n == 2) return Graph(2, {{0, 1}});
  // Prüfer decoding: uniform over the n^(n-2) labelled trees.
  std::vector<NodeId> prufer(n - 2);
  for (auto& x : prufer) x = random_index(rng, n);
  std::vector<std::uint32_t> degree(n, 1);
  for (const NodeId x : prufer) ++degree[x];
  EdgeVec edges;
  edges.reserve(n - 1);
  // Min-leaf extraction with a pointer scan (O(n log n)-ish via set would be
  // fine too; this is the classic O(n) two-pointer variant).
  NodeId ptr = 0;
  while (degree[ptr] != 1) ++ptr;
  NodeId leaf = ptr;
  for (const NodeId v : prufer) {
    edges.emplace_back(leaf, v);
    if (--degree[v] == 1 && v < ptr) {
      leaf = v;
    } else {
      ++ptr;
      while (degree[ptr] != 1) ++ptr;
      leaf = ptr;
    }
  }
  edges.emplace_back(leaf, n - 1);
  return Graph(n, std::move(edges));
}

Graph make_random_caterpillar(NodeId n, Rng& rng) {
  NAV_REQUIRE(n >= 2, "caterpillar needs n >= 2");
  const NodeId lo = std::max<NodeId>(1, n / 4);
  const NodeId hi = std::max<NodeId>(lo + 1, n / 2);
  const NodeId spine =
      lo + static_cast<NodeId>(rng.next_below(hi - lo));
  EdgeVec edges;
  for (NodeId s = 0; s + 1 < spine; ++s) edges.emplace_back(s, s + 1);
  for (NodeId v = spine; v < n; ++v) {
    edges.emplace_back(random_index(rng, spine), v);
  }
  return Graph(n, std::move(edges));
}

Graph make_random_regular(NodeId n, std::uint32_t d, Rng& rng) {
  NAV_REQUIRE(d >= 3, "random regular needs d >= 3");
  NAV_REQUIRE(static_cast<std::uint64_t>(n) * d % 2 == 0, "n*d must be even");
  NAV_REQUIRE(d < n, "need d < n");
  // Pairing model: n*d stubs, random perfect matching; drop defects.
  std::vector<NodeId> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * d);
  for (NodeId u = 0; u < n; ++u)
    for (std::uint32_t k = 0; k < d; ++k) stubs.push_back(u);
  // Fisher-Yates shuffle.
  for (std::size_t i = stubs.size(); i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    std::swap(stubs[i - 1], stubs[j]);
  }
  EdgeVec edges;
  edges.reserve(stubs.size() / 2);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    if (stubs[i] != stubs[i + 1]) edges.emplace_back(stubs[i], stubs[i + 1]);
  }
  Graph g(n, std::move(edges));  // dedups multi-edges
  if (is_connected(g)) return g;
  // Repair connectivity (rare for d >= 3): chain component representatives.
  const auto comps = connected_components(g);
  std::vector<NodeId> representative(comps.count, kNoNode);
  for (NodeId u = 0; u < n; ++u) {
    if (representative[comps.component_of[u]] == kNoNode)
      representative[comps.component_of[u]] = u;
  }
  auto all = g.edge_list();
  for (std::size_t c = 1; c < comps.count; ++c)
    all.emplace_back(representative[c - 1], representative[c]);
  return Graph(n, std::move(all));
}

Graph make_kleinberg_base(NodeId side) { return make_torus2d(side, side); }

}  // namespace nav::graph
