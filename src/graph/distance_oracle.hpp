// distance_oracle.hpp — distance services for the greedy router.
//
// Greedy routing only ever asks "dist_G(x, t)" for the *current target* t.
// Two strategies, behind one interface:
//   * DistanceMatrix — all-pairs table (parallel all-source BFS). O(n²) words;
//     right choice for n up to ~2·10⁴ and for tests needing arbitrary queries.
//   * TargetDistanceCache — one BFS per distinct target, LRU-capped. Right
//     choice for big sweeps where each target serves thousands of trials.
//
// distances_to() hands out shared ownership so a routing episode can keep the
// vector alive even if the cache evicts the entry concurrently.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"

namespace nav::graph {

using DistVecPtr = std::shared_ptr<const std::vector<Dist>>;

/// Abstract distance-to-target service (thread-safe).
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  /// dist_G(u, target); kInfDist when unreachable.
  [[nodiscard]] virtual Dist distance(NodeId u, NodeId target) const = 0;

  /// Full distance vector towards `target` (size n), shared ownership.
  [[nodiscard]] virtual DistVecPtr distances_to(NodeId target) const = 0;
};

/// Dense all-pairs table. Memory: n² × 4 bytes. Built with a parallel
/// all-source BFS sweep at construction.
class DistanceMatrix final : public DistanceOracle {
 public:
  explicit DistanceMatrix(const Graph& g);

  [[nodiscard]] Dist distance(NodeId u, NodeId target) const override;
  [[nodiscard]] DistVecPtr distances_to(NodeId target) const override;

  [[nodiscard]] NodeId num_nodes() const noexcept { return n_; }

 private:
  NodeId n_;
  std::vector<DistVecPtr> rows_;  // rows_[t] maps u -> dist(u, t)
};

/// Per-target BFS cache with LRU eviction.
class TargetDistanceCache final : public DistanceOracle {
 public:
  /// `capacity` = number of target distance vectors kept alive in the cache.
  explicit TargetDistanceCache(const Graph& g, std::size_t capacity = 64);

  [[nodiscard]] Dist distance(NodeId u, NodeId target) const override;
  [[nodiscard]] DistVecPtr distances_to(NodeId target) const override;

  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }

 private:
  struct Entry {
    std::list<NodeId>::iterator lru_it;
    DistVecPtr distances;
  };

  const Graph& graph_;
  std::size_t capacity_;
  mutable std::mutex mutex_;
  mutable std::list<NodeId> lru_;  // front = most recently used
  mutable std::unordered_map<NodeId, Entry> cache_;
  mutable std::size_t hits_ = 0, misses_ = 0;
};

}  // namespace nav::graph
