// distance_oracle.hpp — distance services for the greedy router.
//
// Greedy routing only ever asks "dist_G(x, t)" for the *current target* t.
// Two strategies, behind one interface:
//   * DistanceMatrix — all-pairs table (parallel all-source BFS). O(n²) words;
//     right choice for n up to ~2·10⁴ and for tests needing arbitrary queries.
//   * TargetDistanceCache — one BFS per distinct target, LRU-capped. Right
//     choice for big sweeps where each target serves thousands of trials.
//
// Storage is arena-backed (runtime/arena.hpp): both oracles carve per-target
// distance rows out of slabs instead of allocating one std::vector<Dist> per
// target — the cache's slab budget is MemoryBudget, and a steady-state miss
// BFS-fills a recycled slot, so the O(n) row never touches the heap (the
// BFS runs on the worker thread's pooled BfsWorkspace, also allocation-free;
// only O(1) LRU/map bookkeeping nodes are allocated per miss, and hits
// allocate nothing at all).
//
// distances_to() hands out a shared-ownership DistVecPtr so a routing episode
// can keep the row alive even if the cache evicts the entry concurrently —
// the slot returns to the arena only when the last pin drops.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/bfs_engine.hpp"
#include "graph/dist_slab.hpp"
#include "graph/graph.hpp"
#include "runtime/arena.hpp"

namespace nav::graph {

/// Read-only view of one target's distance vector (size n, indexed by node).
/// Converts implicitly to std::span<const Dist> — the type
/// Router::route_resolved takes.
class DistView {
 public:
  DistView() = default;
  DistView(const Dist* data, std::size_t size) noexcept
      : data_(data), size_(size) {}

  [[nodiscard]] const Dist& operator[](std::size_t i) const noexcept {
    return data_[i];
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] const Dist* data() const noexcept { return data_; }
  [[nodiscard]] const Dist* begin() const noexcept { return data_; }
  [[nodiscard]] const Dist* end() const noexcept { return data_ + size_; }
  operator std::span<const Dist>() const noexcept { return {data_, size_}; }

  /// Element-wise equality against any contiguous Dist range (vectors
  /// convert): the form differential tests want.
  friend bool operator==(const DistView& a, std::span<const Dist> b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  const Dist* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Shared-ownership handle to one target's distance row. Holding it pins the
/// underlying storage — an arena slot or matrix-slab row — even if a caching
/// oracle evicts the entry concurrently. Pointer-like: *p is the DistView,
/// p->size() works, handles compare by identity (same storage).
class DistVecPtr {
 public:
  DistVecPtr() = default;
  DistVecPtr(std::shared_ptr<const Dist> data, std::size_t size) noexcept
      : owner_(std::move(data)), view_(owner_.get(), size) {}

  [[nodiscard]] const DistView& operator*() const noexcept { return view_; }
  [[nodiscard]] const DistView* operator->() const noexcept { return &view_; }
  explicit operator bool() const noexcept { return owner_ != nullptr; }

  /// Identity (not element) comparison, matching shared_ptr semantics:
  /// handles are equal iff they pin the same storage.
  friend bool operator==(const DistVecPtr& a, const DistVecPtr& b) noexcept {
    return a.owner_ == b.owner_;
  }
  friend bool operator==(const DistVecPtr& a, std::nullptr_t) noexcept {
    return a.owner_ == nullptr;
  }

 private:
  std::shared_ptr<const Dist> owner_;
  DistView view_;
};

/// Abstract distance-to-target service (thread-safe).
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  /// True when the oracle returns exact graph distances. Approximate
  /// backends (LandmarkOracle's triangle upper bound) override to false;
  /// routers read this once at construction to swap the strict-descent
  /// invariant (which only an exact field guarantees) for stall-tolerant
  /// termination.
  [[nodiscard]] virtual bool exact() const noexcept { return true; }

  /// dist_G(u, target); kInfDist when unreachable.
  [[nodiscard]] virtual Dist distance(NodeId u, NodeId target) const = 0;

  /// Full distance vector towards `target` (size n), shared ownership.
  /// The graphs here are undirected, so this is also the distance vector
  /// *from* `target`; one BFS serves every query sharing the target.
  [[nodiscard]] virtual DistVecPtr distances_to(NodeId target) const = 0;

  /// Batch interface: materialises (or fetches) the vectors for `targets`
  /// into `out` (cleared and resized to targets.size()), pinned, in input
  /// order. out[i] stays valid for as long as the caller holds it,
  /// independent of any cache eviction — the contract RouteService target
  /// shards rely on. Duplicate targets are allowed and share one vector.
  /// Callers reusing `out` across waves pay no allocation for the container
  /// once it has grown to the largest wave. The base implementation loops
  /// distances_to; caching oracles override it to batch the misses.
  virtual void prefetch_into(std::span<const NodeId> targets,
                             std::vector<DistVecPtr>& out) const;

  /// Allocating convenience wrapper over prefetch_into.
  [[nodiscard]] std::vector<DistVecPtr> prefetch(
      std::span<const NodeId> targets) const {
    std::vector<DistVecPtr> pinned;
    prefetch_into(targets, pinned);
    return pinned;
  }
};

/// Dense all-pairs table. Memory: one n² slab at the chosen storage width
/// (4-byte Dist by default; 1- or 2-byte packed rows for low-diameter
/// graphs — see dist_slab.hpp), rows aliased or widened out of it. Built
/// with a parallel all-source BFS sweep at construction: rows are farmed to
/// the worker pool (capped by the policy) and the slab is handed out
/// UNINITIALISED, so each page is first touched by the worker that
/// BFS-fills it — on NUMA hosts the rows land near the cores that wrote
/// them. The policy also caps rebuild_rows/rebuild_all. Distances are
/// level-synchronous, so the slab is byte-identical for every worker count
/// (the determinism suite hashes it to prove this).
///
/// Narrow widths are a pure storage decision: distance() and distances_to()
/// still speak Dist (single entries widen in place; full rows materialise a
/// widened copy), and a row whose true distances exceed the width's
/// max_finite makes construction/rebuild throw std::invalid_argument
/// instead of storing a saturated lie.
class DistanceMatrix final : public DistanceOracle {
 public:
  explicit DistanceMatrix(const Graph& g, ParallelPolicy policy = {},
                          DistWidth width = DistWidth::kU32);

  [[nodiscard]] Dist distance(NodeId u, NodeId target) const override;
  [[nodiscard]] DistVecPtr distances_to(NodeId target) const override;

  [[nodiscard]] NodeId num_nodes() const noexcept { return n_; }
  /// Storage width of the backing slab.
  [[nodiscard]] DistWidth width() const noexcept { return width_; }

  /// The backing slab: n*n entries, row-major by target. Determinism tests
  /// hash this to pin worker-count independence byte for byte. Only the
  /// default u32 storage exposes Dist entries directly; narrow matrices
  /// throw (use packed_slab()).
  [[nodiscard]] std::span<const Dist> slab() const {
    NAV_REQUIRE(width_ == DistWidth::kU32,
                "slab() needs u32 storage; narrow widths expose packed_slab()");
    return {slab_.get(), static_cast<std::size_t>(n_) * n_};
  }

  /// The packed backing bytes at any width (n*n*width_bytes(width())).
  [[nodiscard]] std::span<const std::uint8_t> packed_slab() const noexcept;

  /// Recomputes the given targets' rows in place against `g` (which must
  /// have the same node count) — the incremental-repair hook for
  /// dynamic::DynamicOracle. Rows are written through the shared slab, so
  /// callers must guarantee quiescence: no concurrent queries, and no
  /// outstanding pins expected to keep their pre-mutation values.
  void rebuild_rows(const Graph& g, std::span<const NodeId> targets);

  /// Recomputes every row (the full-flush reference path).
  void rebuild_all(const Graph& g);

 private:
  void fill_row(const Graph& g, NodeId target);
  void check_saturation() const;

  NodeId n_;
  ParallelPolicy policy_;
  DistWidth width_;
  std::shared_ptr<Dist[]> slab_;  // u32 storage: n_ rows of n_ entries
  std::shared_ptr<std::uint8_t[]> packed_;  // narrow storage (else null)
  std::atomic<bool> saturated_{false};
};

/// Cache sizing by bytes instead of entry count: the number of resident
/// target vectors becomes budget / (n × sizeof(Dist)), clamped to >= 1.
struct MemoryBudget {
  /// Total bytes the cache may spend on distance vectors.
  std::size_t bytes = 64u << 20;
};

/// Per-target BFS cache with LRU eviction over arena-slab rows.
///
/// Narrow storage widths (dist_slab.hpp) pack resident rows at 1 or 2 bytes
/// per entry, so the same MemoryBudget keeps 4x (or 2x) more targets
/// resident. Routers still consume Dist rows: a small window of widened
/// rows (kWideWindow slots, LRU over the resident set) backs distances_to,
/// so a warm working set is served by refcount copies — zero allocations —
/// while the packed slabs carry the capacity. distance() reads single
/// packed entries in place and never widens a row. A BFS row whose true
/// distances exceed the width's max_finite throws std::invalid_argument.
class TargetDistanceCache final : public DistanceOracle {
 public:
  /// Widened rows kept alive for narrow-width caches: enough for every
  /// in-flight prefetch shard of a RouteService wave to pin its row while
  /// staying far below the packed capacity the budget buys.
  static constexpr std::size_t kWideWindow = 16;

  /// `capacity` = number of target distance vectors kept alive in the cache.
  /// The arena holds capacity + 1 slots (slabs grow lazily towards it): the
  /// spare serves the miss-on-full-cache window where the new row is
  /// computed before the victim's slot frees. `policy` caps how much of the
  /// machine prefetch waves may use.
  explicit TargetDistanceCache(const Graph& g, std::size_t capacity = 64,
                               ParallelPolicy policy = {},
                               DistWidth width = DistWidth::kU32);

  /// Sizes the LRU from a byte budget via capacity_for_budget.
  TargetDistanceCache(const Graph& g, MemoryBudget budget,
                      ParallelPolicy policy = {},
                      DistWidth width = DistWidth::kU32);

  /// Entry count affordable under `budget` for n-node vectors (>= 1: the
  /// cache always keeps at least the vector it just computed).
  [[nodiscard]] static std::size_t capacity_for_budget(MemoryBudget budget,
                                                       NodeId n) noexcept;

  /// The same, at a storage width: narrow rows cost width_bytes(width) per
  /// entry, so the budget buys proportionally more resident targets.
  [[nodiscard]] static std::size_t capacity_for_budget(MemoryBudget budget,
                                                       NodeId n,
                                                       DistWidth width) noexcept;

  [[nodiscard]] Dist distance(NodeId u, NodeId target) const override;
  [[nodiscard]] DistVecPtr distances_to(NodeId target) const override;

  /// Batched miss handling, adaptive in the policy: a wave with at least as
  /// many distinct misses as workers farms whole rows across the global
  /// thread pool (callers must therefore not invoke this from inside a pool
  /// task); a narrower wave runs each miss as one multi-worker ParallelBfs
  /// sweep instead, so a single cold target still saturates the machine.
  /// Resident targets are bumped, not recomputed, and a warm all-hit wave
  /// performs ZERO heap allocations (dedup runs on thread-pooled scratch,
  /// pins are refcount copies). Returned pins outlive eviction, so a batch
  /// larger than the capacity is still served correctly — the LRU just ends
  /// at its capacity. (Pins in excess of the arena budget spill to plain
  /// heap rows; they free on release rather than recycling.)
  void prefetch_into(std::span<const NodeId> targets,
                     std::vector<DistVecPtr>& out) const override;

  /// Number of resident vectors the LRU may hold.
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Storage width of resident rows.
  [[nodiscard]] DistWidth width() const noexcept { return width_; }
  /// Queries served from a resident vector.
  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  /// Queries that had to run a BFS.
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }

  // ---- invalidation surface (dynamic::DynamicOracle) ----------------------
  /// Snapshot of the currently resident targets, LRU order (front = most
  /// recently used). The set a mutation's tightness test scans.
  [[nodiscard]] std::vector<NodeId> resident_targets() const;

  /// The resident row for `target` without bumping the LRU or the hit/miss
  /// counters; empty handle when not resident. Lets the invalidation scan
  /// read rows without perturbing cache telemetry or eviction order.
  [[nodiscard]] DistVecPtr peek(NodeId target) const;

  /// Drops `target` if resident (its arena slot recycles once the last pin
  /// drops); returns whether anything was evicted. Stale rows removed this
  /// way recompute lazily on the next query — against the *current* graph.
  bool erase(NodeId target);

  /// Drops every resident row (the full-flush reference path).
  void clear();

 private:
  struct Entry {
    std::list<NodeId>::iterator lru_it;
    /// u32 storage: the row itself. Narrow storage: the widened copy when
    /// this target is inside the wide window (empty handle otherwise).
    DistVecPtr distances;
    /// Narrow storage only: the packed row (width_bytes per entry).
    std::shared_ptr<std::uint8_t> packed;
    /// Valid iff `distances` is non-empty on a narrow cache: this target's
    /// position in wide_lru_.
    std::list<NodeId>::iterator wide_it;
  };

  /// One BFS into a fresh row (arena slot, or heap when all slots are
  /// pinned) on the calling thread's workspace.
  [[nodiscard]] DistVecPtr compute_row(NodeId target) const;

  /// The same, but the sweep itself fans out over `engine`'s worker team —
  /// the narrow-wave prefetch path.
  [[nodiscard]] DistVecPtr compute_row_with(ParallelBfs& engine,
                                            NodeId target) const;

  /// Acquires the row storage (arena slot, heap spill fallback).
  [[nodiscard]] std::shared_ptr<Dist> acquire_slot() const;

  // ---- narrow-width internals (width_ != kU32; all *_locked under mutex_)
  /// A wide-window slot, evicting other entries' widened copies (LRU) when
  /// the window is full; spills to the heap when every slot is pinned.
  [[nodiscard]] std::shared_ptr<Dist> acquire_wide_locked() const;
  /// A packed-row slot (heap spill when the arena is exhausted).
  [[nodiscard]] std::shared_ptr<std::uint8_t> acquire_packed() const;
  /// Widens a packed-only resident entry into the wide window.
  DistVecPtr ensure_wide_locked(NodeId target, Entry& entry) const;
  /// Installs a freshly computed narrow row (packed + widened) for `target`.
  DistVecPtr install_narrow_locked(NodeId target,
                                   std::shared_ptr<Dist> wide,
                                   std::shared_ptr<std::uint8_t> packed) const;
  /// Evicts main-LRU overflow, maintaining the wide window; returns the
  /// number of entries dropped.
  std::size_t evict_overflow_locked() const;
  /// Throws the saturation error for this cache's width.
  [[noreturn]] void throw_saturated() const;

  [[nodiscard]] DistVecPtr narrow_distances_to(NodeId target) const;
  void narrow_prefetch_into(std::span<const NodeId> targets,
                            std::vector<DistVecPtr>& out) const;

  const Graph& graph_;
  std::size_t capacity_;
  ParallelPolicy policy_;
  DistWidth width_;
  /// u32 storage: the row arena (capacity + 1 slots). Narrow storage: the
  /// wide window (min(capacity, kWideWindow) + 1 slots of widened rows).
  mutable SlabArena<Dist> arena_;
  /// Narrow storage only: packed rows, capacity + 1 slots of n bytes*width.
  mutable std::optional<SlabArena<std::uint8_t>> packed_arena_;
  mutable std::mutex mutex_;
  mutable std::list<NodeId> lru_;  // front = most recently used
  /// Narrow storage: targets with a live widened copy, front = most recent.
  mutable std::list<NodeId> wide_lru_;
  mutable std::unordered_map<NodeId, Entry> cache_;
  mutable std::size_t hits_ = 0, misses_ = 0;
  // Lazily-built multi-worker engine for narrow prefetch waves (fewer
  // misses than workers). ParallelBfs is not re-entrant, so concurrent
  // narrow waves serialise on engine_mutex_ — never held with mutex_.
  mutable std::mutex engine_mutex_;
  mutable std::unique_ptr<ParallelBfs> engine_;
};

}  // namespace nav::graph
