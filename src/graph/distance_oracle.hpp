// distance_oracle.hpp — distance services for the greedy router.
//
// Greedy routing only ever asks "dist_G(x, t)" for the *current target* t.
// Two strategies, behind one interface:
//   * DistanceMatrix — all-pairs table (parallel all-source BFS). O(n²) words;
//     right choice for n up to ~2·10⁴ and for tests needing arbitrary queries.
//   * TargetDistanceCache — one BFS per distinct target, LRU-capped. Right
//     choice for big sweeps where each target serves thousands of trials.
//
// distances_to() hands out shared ownership so a routing episode can keep the
// vector alive even if the cache evicts the entry concurrently.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"

namespace nav::graph {

/// Shared-ownership handle to one target's distance vector. Holding it pins
/// the vector even if a caching oracle evicts the entry concurrently.
using DistVecPtr = std::shared_ptr<const std::vector<Dist>>;

/// Abstract distance-to-target service (thread-safe).
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  /// dist_G(u, target); kInfDist when unreachable.
  [[nodiscard]] virtual Dist distance(NodeId u, NodeId target) const = 0;

  /// Full distance vector towards `target` (size n), shared ownership.
  /// The graphs here are undirected, so this is also the distance vector
  /// *from* `target`; one BFS serves every query sharing the target.
  [[nodiscard]] virtual DistVecPtr distances_to(NodeId target) const = 0;

  /// Batch interface: materialises (or fetches) the vectors for `targets`
  /// and returns them pinned, in input order. result[i] stays valid for as
  /// long as the caller holds it, independent of any cache eviction — the
  /// contract RouteService target shards rely on. Duplicate targets are
  /// allowed and share one vector. The base implementation loops
  /// distances_to; caching oracles override it to batch the misses.
  [[nodiscard]] virtual std::vector<DistVecPtr> prefetch(
      std::span<const NodeId> targets) const;
};

/// Dense all-pairs table. Memory: n² × 4 bytes. Built with a parallel
/// all-source BFS sweep at construction.
class DistanceMatrix final : public DistanceOracle {
 public:
  explicit DistanceMatrix(const Graph& g);

  [[nodiscard]] Dist distance(NodeId u, NodeId target) const override;
  [[nodiscard]] DistVecPtr distances_to(NodeId target) const override;

  [[nodiscard]] NodeId num_nodes() const noexcept { return n_; }

 private:
  NodeId n_;
  std::vector<DistVecPtr> rows_;  // rows_[t] maps u -> dist(u, t)
};

/// Cache sizing by bytes instead of entry count: the number of resident
/// target vectors becomes budget / (n × sizeof(Dist)), clamped to >= 1.
struct MemoryBudget {
  /// Total bytes the cache may spend on distance vectors.
  std::size_t bytes = 64u << 20;
};

/// Per-target BFS cache with LRU eviction.
class TargetDistanceCache final : public DistanceOracle {
 public:
  /// `capacity` = number of target distance vectors kept alive in the cache.
  explicit TargetDistanceCache(const Graph& g, std::size_t capacity = 64);

  /// Sizes the LRU from a byte budget via capacity_for_budget.
  TargetDistanceCache(const Graph& g, MemoryBudget budget);

  /// Entry count affordable under `budget` for n-node vectors (>= 1: the
  /// cache always keeps at least the vector it just computed).
  [[nodiscard]] static std::size_t capacity_for_budget(MemoryBudget budget,
                                                       NodeId n) noexcept;

  [[nodiscard]] Dist distance(NodeId u, NodeId target) const override;
  [[nodiscard]] DistVecPtr distances_to(NodeId target) const override;

  /// Batched miss handling: missing targets are BFS'd in one parallel sweep
  /// over the global thread pool (callers must therefore not invoke this
  /// from inside a pool task), then inserted; resident ones are bumped.
  /// Returned pins outlive eviction, so a batch larger than the capacity is
  /// still served correctly — the LRU just ends at its capacity.
  [[nodiscard]] std::vector<DistVecPtr> prefetch(
      std::span<const NodeId> targets) const override;

  /// Number of resident vectors the LRU may hold.
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Queries served from a resident vector.
  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  /// Queries that had to run a BFS.
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }

 private:
  struct Entry {
    std::list<NodeId>::iterator lru_it;
    DistVecPtr distances;
  };

  const Graph& graph_;
  std::size_t capacity_;
  mutable std::mutex mutex_;
  mutable std::list<NodeId> lru_;  // front = most recently used
  mutable std::unordered_map<NodeId, Entry> cache_;
  mutable std::size_t hits_ = 0, misses_ = 0;
};

}  // namespace nav::graph
