// permutation_model.hpp — permutation graph representations.
//
// Permutation graphs are the paper's second AT-free exemplar (Corollary 1).
// Model: a permutation π of {0..n-1}; nodes u, v are adjacent iff the pair is
// *inverted*: (u < v) XOR (π(u) < π(v)). Equivalently, in the matching diagram
// (segment from position u on the top line to position π⁻¹? on the bottom)
// two segments cross iff the nodes are adjacent.
//
// The cut structure (segments crossing the vertical line between positions i
// and i+1) yields a path decomposition whose bags have small length — the
// decomposition substrate measures it (tests pin it at <= 2).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/rng.hpp"

namespace nav::graph {

class PermutationModel {
 public:
  /// `perm[u]` = π(u); must be a permutation of 0..n-1.
  explicit PermutationModel(std::vector<NodeId> perm);

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(perm_.size());
  }
  [[nodiscard]] NodeId pi(NodeId u) const {
    NAV_ASSERT(u < perm_.size());
    return perm_[u];
  }
  [[nodiscard]] const std::vector<NodeId>& permutation() const noexcept {
    return perm_;
  }

  /// Inversion graph: edge (u,v), u<v, iff π(u) > π(v). O(n²) construction
  /// (the graph itself can have Θ(n²) edges).
  [[nodiscard]] Graph to_graph() const;

  /// Nodes whose diagram segment crosses the vertical cut between top
  /// positions c-1 and c (c in 1..n-1): { u : (u < c) XOR (π(u) < c) }.
  [[nodiscard]] std::vector<NodeId> cut_set(NodeId c) const;

 private:
  std::vector<NodeId> perm_;
};

/// Uniformly random permutation model. Note: a uniform permutation graph is
/// dense (≈ n²/2 inversions) and connected w.h.p.
[[nodiscard]] PermutationModel random_permutation_model(NodeId n, Rng& rng);

/// A *sparse-ish* connected permutation model: composes the identity with
/// random adjacent-ish transpositions within a window `w`, giving expected
/// degree O(w). Used to get larger AT-free instances that are not cliques.
[[nodiscard]] PermutationModel banded_permutation_model(NodeId n, NodeId window,
                                                        Rng& rng);

}  // namespace nav::graph
