// bfs.hpp — breadth-first search primitives.
//
// Everything in the paper reduces to unweighted shortest-path distances:
// greedy routing compares dist_G(·, t); the ball scheme of Theorem 4 samples
// from B(u, 2^k); the pathlength measure needs pairwise bag distances.
//
// These free functions are convenience wrappers over the reusable engine in
// bfs_engine.hpp (epoch-stamped workspaces, direction-optimizing full
// sweeps): they allocate only the returned container. Allocation-sensitive
// callers should hold a BfsWorkspace and use its kernels directly.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace nav::graph {

using Dist = std::uint32_t;
inline constexpr Dist kInfDist = std::numeric_limits<Dist>::max();

/// Full single-source BFS. Unreachable nodes get kInfDist.
[[nodiscard]] std::vector<Dist> bfs_distances(const Graph& g, NodeId source);

/// BFS truncated at `radius`: nodes farther than radius keep kInfDist.
/// Touches only the subgraph within the radius (frontier-bounded cost).
[[nodiscard]] std::vector<Dist> bfs_distances_bounded(const Graph& g,
                                                      NodeId source,
                                                      Dist radius);

/// The ball B(u, r) = { v : dist(u, v) <= r }, in BFS (distance, id) order.
/// This is the sampling domain of the Theorem 4 scheme. Cost O(|edges in
/// ball|) — the visited set is epoch-stamped workspace state, not a fresh
/// O(n) array per call.
[[nodiscard]] std::vector<NodeId> ball(const Graph& g, NodeId center, Dist radius);

/// |B(u, r)| without materialising the ball. Allocation-free once the
/// calling thread's workspace is warm.
[[nodiscard]] std::size_t ball_size(const Graph& g, NodeId center, Dist radius);

/// Multi-source BFS: distance to the nearest source.
[[nodiscard]] std::vector<Dist> multi_source_bfs(const Graph& g,
                                                 const std::vector<NodeId>& sources);

/// Farthest node from `source` (smallest id among ties) and its distance.
/// Building block of the double-sweep diameter heuristic.
struct FarthestResult {
  NodeId node = kNoNode;
  Dist distance = 0;
};
[[nodiscard]] FarthestResult farthest_node(const Graph& g, NodeId source);

/// One shortest path from source to target (inclusive), via parent pointers.
/// Empty vector if unreachable.
[[nodiscard]] std::vector<NodeId> shortest_path(const Graph& g, NodeId source,
                                                NodeId target);

}  // namespace nav::graph
