// landmark_oracle.hpp — approximate distances from k landmark BFS sweeps.
//
// DistanceMatrix is exact but O(n²); TargetDistanceCache is exact but pays a
// full BFS per distinct target. For graphs too big for either, the classic
// landmark (a.k.a. pivot/sketch) construction trades accuracy for an O(k·n)
// footprint: pick k landmarks, store their exact BFS rows, and estimate
//
//   d̂(u, t) = min over landmarks l of  d(u, l) + d(l, t)  >=  d(u, t),
//
// the triangle upper bound. The estimate is exact whenever some shortest
// u–t path passes through a landmark — and always exact AT a landmark, since
// l = u (or l = t) collapses the bound to the true distance.
//
// Routing on an upper bound: d̂(·, t) is still 1-Lipschitz along edges (each
// term d(u, l) changes by at most 1 per hop), so a greedy descent on the
// landmark field cannot jump over the target but CAN stall at a local
// minimum where no neighbour improves. Two mitigations, both here:
//   * exact()-aware routers (greedy/lookahead) terminate cleanly at a stall
//     instead of asserting strict descent;
//   * the exact-ball patch: each materialised row overlays a bounded BFS
//     from the target (radius `exact_radius`), making the field exact — and
//     hence strictly descending — inside that ball, so routes that get near
//     the target finish instead of orbiting it.
//
// Rows are materialised per target and LRU-cached over an arena
// (runtime/arena.hpp), mirroring TargetDistanceCache's pin semantics: a warm
// hit is a refcount copy, zero allocations.
#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/bfs_engine.hpp"
#include "graph/distance_oracle.hpp"
#include "graph/graph.hpp"
#include "runtime/arena.hpp"

namespace nav::graph {

/// How landmarks are picked.
enum class LandmarkSelection : std::uint8_t {
  kDegree,    ///< top-k by degree (ties: smaller id) — cheap, hub-biased
  kFarthest,  ///< farthest-point traversal from the max-degree seed —
              ///< spread-out cover, the better default on flat-degree graphs
};

struct LandmarkOptions {
  /// Number of landmarks (clamped to the node count; must be >= 1).
  std::size_t k = 16;
  LandmarkSelection selection = LandmarkSelection::kFarthest;
  /// Radius of the exact BFS patch overlaid on every materialised row
  /// (0 disables everything but the row[t] = 0 anchor).
  Dist exact_radius = 2;
  /// LRU capacity for materialised target rows.
  std::size_t row_cache_slots = 64;
  /// Worker cap for the k construction sweeps.
  ParallelPolicy policy;
};

/// Approximate distance oracle: min-over-landmarks triangle upper bound with
/// an exact patch around each target. exact() is false — routers switch to
/// stall-tolerant termination.
class LandmarkOracle final : public DistanceOracle {
 public:
  explicit LandmarkOracle(const Graph& g, LandmarkOptions options = {});

  [[nodiscard]] bool exact() const noexcept override { return false; }

  /// The triangle upper bound (patched near the target): always
  /// >= the true distance, equal at landmarks and inside the patch ball.
  [[nodiscard]] Dist distance(NodeId u, NodeId target) const override;
  [[nodiscard]] DistVecPtr distances_to(NodeId target) const override;

  /// The selected landmarks, in selection order.
  [[nodiscard]] std::span<const NodeId> landmarks() const noexcept {
    return landmarks_;
  }
  [[nodiscard]] std::size_t num_landmarks() const noexcept {
    return landmarks_.size();
  }
  [[nodiscard]] Dist exact_radius() const noexcept {
    return options_.exact_radius;
  }
  /// Row-cache telemetry (mirrors TargetDistanceCache's accessors).
  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }

 private:
  struct Entry {
    std::list<NodeId>::iterator lru_it;
    DistVecPtr row;
  };

  /// Writes d̂(·, target) into `row`: min over landmarks, then the exact-ball
  /// patch. Runs without the cache lock (BFS on the caller's workspace).
  void materialize_row(NodeId target, std::span<Dist> row) const;
  [[nodiscard]] std::shared_ptr<Dist> acquire_slot() const;

  const Graph& graph_;
  LandmarkOptions options_;
  std::vector<NodeId> landmarks_;
  /// k rows of n exact distances, row-major in selection order.
  std::shared_ptr<Dist[]> rows_;

  mutable SlabArena<Dist> arena_;
  mutable std::mutex mutex_;
  mutable std::list<NodeId> lru_;  // front = most recently used
  mutable std::unordered_map<NodeId, Entry> cache_;
  mutable std::size_t hits_ = 0, misses_ = 0;
};

}  // namespace nav::graph
