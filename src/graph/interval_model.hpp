// interval_model.hpp — interval graph representations.
//
// Interval graphs are the paper's flagship AT-free family (Corollary 1):
// their clique-path decomposition has length <= 1, hence pathshape <= 1, so
// the (M,L) scheme routes them in O(log² n) expected steps.
//
// An IntervalModel holds one closed interval [lo, hi] per node; nodes are
// adjacent iff their intervals intersect. The canonical endpoint sweep that
// builds the graph is also what decomposition/interval_decomposition.cpp uses
// to emit the clique path, so both views stay consistent by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/rng.hpp"

namespace nav::graph {

struct Interval {
  std::int64_t lo = 0;
  std::int64_t hi = 0;  // inclusive; requires lo <= hi
};

class IntervalModel {
 public:
  explicit IntervalModel(std::vector<Interval> intervals);

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(intervals_.size());
  }
  [[nodiscard]] const Interval& interval(NodeId u) const {
    NAV_ASSERT(u < intervals_.size());
    return intervals_[u];
  }
  [[nodiscard]] const std::vector<Interval>& intervals() const noexcept {
    return intervals_;
  }

  /// Intersection graph: edge (u,v) iff [lo_u,hi_u] ∩ [lo_v,hi_v] ≠ ∅.
  /// Sweep-line construction, O(n log n + m).
  [[nodiscard]] Graph to_graph() const;

  /// Sorted distinct endpoint coordinates (sweep event points).
  [[nodiscard]] std::vector<std::int64_t> event_points() const;

  /// Nodes whose interval contains coordinate x (a clique of the graph).
  [[nodiscard]] std::vector<NodeId> stab(std::int64_t x) const;

 private:
  std::vector<Interval> intervals_;
};

/// Random interval model: n intervals with uniform start in [0, span) and
/// uniform length in [1, max_len]. With the defaults the intersection graph
/// is connected w.h.p.; `connected_random_interval_model` retries until it is.
[[nodiscard]] IntervalModel random_interval_model(NodeId n, Rng& rng,
                                                  std::int64_t span = 0,
                                                  std::int64_t max_len = 0);

/// Retries random_interval_model until the intersection graph is connected.
[[nodiscard]] IntervalModel connected_random_interval_model(NodeId n, Rng& rng);

}  // namespace nav::graph
