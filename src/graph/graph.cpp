#include "graph/graph.hpp"

#include <algorithm>
#include <sstream>

namespace nav::graph {

Graph::Graph(NodeId n, std::vector<std::pair<NodeId, NodeId>> edges) : n_(n) {
  for (auto& [u, v] : edges) {
    NAV_REQUIRE(u < n_ && v < n_, "edge endpoint out of range");
    NAV_REQUIRE(u != v, "self loops are not allowed");
    if (u > v) std::swap(u, v);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  m_ = edges.size();

  // Degree counting pass, then prefix sums, then fill.
  std::vector<std::uint64_t> degree(n_ + 1, 0);
  for (const auto& [u, v] : edges) {
    ++degree[u];
    ++degree[v];
  }
  offsets_.assign(n_ + 1, 0);
  for (NodeId u = 0; u < n_; ++u) offsets_[u + 1] = offsets_[u] + degree[u];
  adj_.resize(2 * m_);
  std::vector<std::uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    adj_[cursor[u]++] = v;
    adj_[cursor[v]++] = u;
  }
  for (NodeId u = 0; u < n_; ++u) {
    std::sort(adj_.begin() + static_cast<std::ptrdiff_t>(offsets_[u]),
              adj_.begin() + static_cast<std::ptrdiff_t>(offsets_[u + 1]));
    max_degree_ = std::max(max_degree_, this->degree(u));
  }
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  NAV_ASSERT(u < n_ && v < n_);
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<std::pair<NodeId, NodeId>> Graph::edge_list() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(m_);
  for (NodeId u = 0; u < n_; ++u) {
    for (const NodeId v : neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

std::string Graph::summary() const {
  std::ostringstream out;
  out << "Graph(n=" << n_ << ", m=" << m_ << ")";
  return out.str();
}

}  // namespace nav::graph
