// oracle_factory.hpp — the one place distance oracles are constructed.
//
// Every front end (api::NavigationEngine, api::Experiment, sweep_cli,
// route_server, the benches) used to hand-roll its own "matrix below this n,
// cache above it" policy. make_oracle replaces all of that with a spec
// string, so backends — including the approximate landmark oracle and the
// narrow storage widths — are reachable from every surface without new
// plumbing:
//
//   auto                      legacy size rule: matrix for n <= dense_limit,
//                             else a cache with cache_slots entries
//   matrix[:WIDTH]            dense all-pairs DistanceMatrix
//   cache[:CAP][:WIDTH]       TargetDistanceCache; CAP is an entry count
//                             ("256") or a byte budget ("64M"; K/M/G suffix)
//   landmark:K[:SELECTION]    LandmarkOracle with K landmarks; SELECTION is
//                             "degree" or "farthest" (default)
//   faulty:BASE:FAULTS        resilience::FaultyOracle over any BASE spec;
//                             FAULTS combines stall:<p>, fail:<p>,
//                             slow:<p>:<us>, seed:<n> (deterministic chaos)
//
// WIDTH is "u8" | "u16" | "u32" | "auto"; "auto" measures an eccentricity
// from node 0 and picks the narrowest width covering 2x that bound (the
// diameter is at most twice any eccentricity), falling back to u32 on
// disconnected graphs. The full grammar is documented in docs/API.md.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/bfs_engine.hpp"
#include "graph/distance_oracle.hpp"
#include "graph/graph.hpp"

namespace nav::graph {

/// Tunables `make_oracle` folds into spec parsing; the defaults reproduce the
/// historical hard-wired policy of api::NavigationEngine.
struct OracleConfig {
  /// "auto": graphs up to this many nodes get a DistanceMatrix.
  NodeId dense_limit = 4096;
  /// "auto" above dense_limit / bare "cache": resident-entry count.
  std::size_t cache_slots = 64;
  /// Worker cap for construction sweeps and prefetch waves.
  ParallelPolicy policy;
};

/// Builds the oracle described by `spec` over `g`. Throws
/// std::invalid_argument on malformed specs, and on narrow widths that
/// cannot hold the graph's distances (saturation is an error, never a wrong
/// answer).
[[nodiscard]] std::unique_ptr<DistanceOracle> make_oracle(
    const std::string& spec, const Graph& g, const OracleConfig& config = {});

/// One registered spec family, for CLI help text.
struct OracleInfo {
  std::string spec;
  std::string description;
};

/// The spec families make_oracle understands, in stable order.
[[nodiscard]] const std::vector<OracleInfo>& oracle_catalog();

}  // namespace nav::graph
